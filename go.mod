module voltage

go 1.22
