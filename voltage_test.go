package voltage_test

import (
	"context"
	"testing"

	"voltage"
)

func TestFacadeEndToEnd(t *testing.T) {
	engine, err := voltage.NewEngine(voltage.Tiny(), 3, voltage.ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer engine.Close()
	ctx := context.Background()
	ids := []int{1, 2, 3, 4, 5}
	pv, err := engine.ClassifyTokens(ctx, voltage.StrategyVoltage, ids)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := engine.ClassifyTokens(ctx, voltage.StrategySingle, ids)
	if err != nil {
		t.Fatal(err)
	}
	if pv.Class != ps.Class {
		t.Fatalf("distributed class %d != single %d", pv.Class, ps.Class)
	}
}

func TestFacadePresets(t *testing.T) {
	for _, name := range []string{"bert", "gpt2", "vit"} {
		cfg, err := voltage.Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := voltage.Preset("bogus"); err == nil {
		t.Fatal("want error")
	}
}

func TestFacadeSchemes(t *testing.T) {
	s, err := voltage.EvenScheme(4)
	if err != nil {
		t.Fatal(err)
	}
	if s.K() != 4 {
		t.Fatal("even scheme size")
	}
	w, err := voltage.WeightedScheme([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if w.Ratios()[1] != 2.0/3.0 {
		t.Fatal("weighted scheme ratios")
	}
}

func TestFacadeAttentionOrderSelection(t *testing.T) {
	// P = N: naive; tiny partition of long input: reordered.
	full := voltage.SelectAttentionOrder(200, 200, 1024, 64)
	small := voltage.SelectAttentionOrder(1000, 1, 1024, 64)
	if full == small {
		t.Fatalf("order selection insensitive to partition size: %v", full)
	}
}

func TestFacadeImageAndWorkers(t *testing.T) {
	im := voltage.RandomImage(1, 3, 16)
	if im.Channels != 3 || im.Width != 16 {
		t.Fatal("RandomImage shape")
	}
	prev := voltage.SetComputeWorkers(1)
	voltage.SetComputeWorkers(prev)
}

func TestFacadeCalibrate(t *testing.T) {
	cal := voltage.Calibrate(4)
	if cal.Zero() {
		t.Fatal("calibration came back zero")
	}
	if cal.DeviceFlops <= 0 || cal.BwScale <= 0 {
		t.Fatalf("calibration %+v", cal)
	}
	p := cal.Apply(voltage.NetworkProfile{BandwidthMbps: 500})
	if p.BandwidthMbps <= 0 || p.BandwidthMbps > 500 {
		t.Fatalf("applied bandwidth %v", p.BandwidthMbps)
	}
}

func TestFacadeEngineWithCalibration(t *testing.T) {
	cal := voltage.Calibration{DeviceFlops: 1e9, BwScale: 0.1}
	engine, err := voltage.NewEngine(voltage.Tiny(), 2, voltage.ClusterOptions{
		Profile:     cal.Apply(voltage.EdgeDefaultProfile),
		DeviceFlops: cal.DeviceFlops,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer engine.Close()
	if _, err := engine.ClassifyTokens(context.Background(), voltage.StrategyVoltage, []int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
}
