package main

import (
	"net"
	"strings"
	"sync"
	"testing"
)

// freePorts reserves n loopback addresses.
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		_ = l.Close()
	}
	return addrs
}

func TestWorkerValidation(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-addrs", "onlyone"}, &sb); err == nil {
		t.Fatal("want error for single address")
	}
	if err := run([]string{"-addrs", "a,b", "-model", "bogus"}, &sb); err == nil {
		t.Fatal("want error for unknown model")
	}
	if err := run([]string{"-addrs", "a,b,c", "-terminal", "-rank", "0"}, &sb); err == nil {
		t.Fatal("want error for terminal at non-last rank")
	}
	if err := run([]string{"-bad-flag"}, &sb); err == nil {
		t.Fatal("want error for bad flag")
	}
}

func TestWorkerEndToEndInProcess(t *testing.T) {
	// Two workers + a terminal as goroutines over real TCP: the same code
	// paths as three separate processes.
	addrs := freePorts(t, 3)
	addrList := strings.Join(addrs, ",")
	var wg sync.WaitGroup
	errs := make([]error, 3)
	outs := make([]strings.Builder, 3)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = run([]string{
				"-rank", itoa(r), "-addrs", addrList, "-model", "tiny", "-words", "16",
				"-timeout", "30s",
			}, &outs[r])
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		errs[2] = run([]string{
			"-rank", "2", "-terminal", "-addrs", addrList, "-model", "tiny",
			"-words", "16", "-requests", "2", "-timeout", "30s",
		}, &outs[2])
	}()
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v\n%s", r, err, outs[r].String())
		}
	}
	term := outs[2].String()
	if !strings.Contains(term, "request 0: class=") || !strings.Contains(term, "request 1: class=") {
		t.Fatalf("terminal output:\n%s", term)
	}
	for r := 0; r < 2; r++ {
		if !strings.Contains(outs[r].String(), "shutting down") {
			t.Fatalf("worker %d did not shut down cleanly:\n%s", r, outs[r].String())
		}
	}
}

func itoa(n int) string {
	return string(rune('0' + n))
}

func TestWorkerTensorParallelStrategy(t *testing.T) {
	addrs := freePorts(t, 3)
	addrList := strings.Join(addrs, ",")
	var wg sync.WaitGroup
	errs := make([]error, 3)
	outs := make([]strings.Builder, 3)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = run([]string{
				"-rank", itoa(r), "-addrs", addrList, "-model", "tiny",
				"-strategy", "tensor-parallel", "-timeout", "30s",
			}, &outs[r])
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		errs[2] = run([]string{
			"-rank", "2", "-terminal", "-addrs", addrList, "-model", "tiny",
			"-strategy", "tensor-parallel", "-words", "12", "-timeout", "30s",
		}, &outs[2])
	}()
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v\n%s", r, err, outs[r].String())
		}
	}
	if !strings.Contains(outs[2].String(), "request 0: class=") {
		t.Fatalf("terminal output:\n%s", outs[2].String())
	}
}

func TestWorkerSingleStrategy(t *testing.T) {
	addrs := freePorts(t, 3)
	addrList := strings.Join(addrs, ",")
	var wg sync.WaitGroup
	errs := make([]error, 3)
	outs := make([]strings.Builder, 3)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = run([]string{
				"-rank", itoa(r), "-addrs", addrList, "-model", "tiny",
				"-strategy", "single", "-timeout", "30s",
			}, &outs[r])
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		errs[2] = run([]string{
			"-rank", "2", "-terminal", "-addrs", addrList, "-model", "tiny",
			"-strategy", "single", "-words", "12", "-timeout", "30s",
		}, &outs[2])
	}()
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v\n%s", r, err, outs[r].String())
		}
	}
	if !strings.Contains(outs[2].String(), "request 0: class=") {
		t.Fatalf("terminal output:\n%s", outs[2].String())
	}
}
