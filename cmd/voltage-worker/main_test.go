package main

import (
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// freePorts reserves n loopback addresses.
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		_ = l.Close()
	}
	return addrs
}

func TestWorkerValidation(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-addrs", "onlyone"}, &sb); err == nil {
		t.Fatal("want error for single address")
	}
	if err := run([]string{"-addrs", "a,b", "-model", "bogus"}, &sb); err == nil {
		t.Fatal("want error for unknown model")
	}
	if err := run([]string{"-addrs", "a,b,c", "-terminal", "-rank", "0"}, &sb); err == nil {
		t.Fatal("want error for terminal at non-last rank")
	}
	if err := run([]string{"-bad-flag"}, &sb); err == nil {
		t.Fatal("want error for bad flag")
	}
}

func TestWorkerEndToEndInProcess(t *testing.T) {
	// Two workers + a terminal as goroutines over real TCP: the same code
	// paths as three separate processes.
	addrs := freePorts(t, 3)
	addrList := strings.Join(addrs, ",")
	var wg sync.WaitGroup
	errs := make([]error, 3)
	outs := make([]strings.Builder, 3)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = run([]string{
				"-rank", itoa(r), "-addrs", addrList, "-model", "tiny", "-words", "16",
				"-timeout", "30s",
			}, &outs[r])
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		errs[2] = run([]string{
			"-rank", "2", "-terminal", "-addrs", addrList, "-model", "tiny",
			"-words", "16", "-requests", "2", "-timeout", "30s",
		}, &outs[2])
	}()
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v\n%s", r, err, outs[r].String())
		}
	}
	term := outs[2].String()
	if !strings.Contains(term, "request 0: class=") || !strings.Contains(term, "request 1: class=") {
		t.Fatalf("terminal output:\n%s", term)
	}
	for r := 0; r < 2; r++ {
		if !strings.Contains(outs[r].String(), "shutting down") {
			t.Fatalf("worker %d did not shut down cleanly:\n%s", r, outs[r].String())
		}
	}
}

func itoa(n int) string {
	return string(rune('0' + n))
}

func TestWorkerTensorParallelStrategy(t *testing.T) {
	addrs := freePorts(t, 3)
	addrList := strings.Join(addrs, ",")
	var wg sync.WaitGroup
	errs := make([]error, 3)
	outs := make([]strings.Builder, 3)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = run([]string{
				"-rank", itoa(r), "-addrs", addrList, "-model", "tiny",
				"-strategy", "tensor-parallel", "-timeout", "30s",
			}, &outs[r])
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		errs[2] = run([]string{
			"-rank", "2", "-terminal", "-addrs", addrList, "-model", "tiny",
			"-strategy", "tensor-parallel", "-words", "12", "-timeout", "30s",
		}, &outs[2])
	}()
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v\n%s", r, err, outs[r].String())
		}
	}
	if !strings.Contains(outs[2].String(), "request 0: class=") {
		t.Fatalf("terminal output:\n%s", outs[2].String())
	}
}

func TestWorkerSingleStrategy(t *testing.T) {
	addrs := freePorts(t, 3)
	addrList := strings.Join(addrs, ",")
	var wg sync.WaitGroup
	errs := make([]error, 3)
	outs := make([]strings.Builder, 3)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = run([]string{
				"-rank", itoa(r), "-addrs", addrList, "-model", "tiny",
				"-strategy", "single", "-timeout", "30s",
			}, &outs[r])
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		errs[2] = run([]string{
			"-rank", "2", "-terminal", "-addrs", addrList, "-model", "tiny",
			"-strategy", "single", "-words", "12", "-timeout", "30s",
		}, &outs[2])
	}()
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v\n%s", r, err, outs[r].String())
		}
	}
	if !strings.Contains(outs[2].String(), "request 0: class=") {
		t.Fatalf("terminal output:\n%s", outs[2].String())
	}
}

// TestLocalModeServesAdminEndpoints drives the -local smoke mode the CI
// admin stage uses: an in-process engine serves requests while the admin
// listener exposes the serving runtime's metrics and health.
func TestLocalModeServesAdminEndpoints(t *testing.T) {
	addr := freePorts(t, 1)[0]
	done := make(chan error, 1)
	var out lockedBuilder
	go func() {
		done <- run([]string{
			"-local", "2", "-model", "tiny", "-requests", "2", "-words", "8",
			"-admin", addr, "-hold", "5s", "-timeout", "30s",
		}, &out)
	}()

	deadline := time.Now().Add(10 * time.Second)
	var body string
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/metrics")
		if err == nil {
			b, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil && strings.Contains(string(b), `voltage_requests_total{outcome="ok"} 2`) {
				body = string(b)
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	if body == "" {
		t.Fatalf("admin never served both completed requests; output so far:\n%s", out.String())
	}
	for _, series := range []string{
		"voltage_request_latency_seconds_bucket",
		`voltage_comm_bytes_sent_total{rank="terminal"}`,
		`voltage_health_state{rank="0"} 0`,
	} {
		if !strings.Contains(body, series) {
			t.Errorf("/metrics missing %q", series)
		}
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	hb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(hb), `"ok":true`) {
		t.Fatalf("healthz = %d %q, want 200 ok", resp.StatusCode, hb)
	}
	// The run itself completes once the hold elapses; don't wait for it.
}

// lockedBuilder is a strings.Builder safe for the test's cross-goroutine
// reads.
type lockedBuilder struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *lockedBuilder) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *lockedBuilder) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}
