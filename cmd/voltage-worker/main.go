// Command voltage-worker runs a genuinely distributed Voltage deployment
// across processes (or machines): every device runs one process, the
// processes assemble a TCP mesh from a shared address list, and the
// terminal process drives inference requests through the worker pool with
// Algorithm 2.
//
// Start K workers and one terminal, all with the same -addrs list (worker
// ranks 0..K-1, terminal last):
//
//	voltage-worker -rank 0 -addrs 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002
//	voltage-worker -rank 1 -addrs 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002
//	voltage-worker -rank 2 -terminal -words 200 \
//	    -addrs 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002
//
// Every process materializes identical model weights from -seed, so no
// weights cross the network — only activations, exactly as in the paper.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"voltage/internal/cluster"
	"voltage/internal/comm"
	"voltage/internal/core"
	"voltage/internal/metrics"
	"voltage/internal/model"
	"voltage/internal/netem"
	"voltage/internal/partition"
	"voltage/internal/tensor"
	"voltage/internal/tokenizer"
	"voltage/internal/tparallel"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "voltage-worker:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("voltage-worker", flag.ContinueOnError)
	rank := fs.Int("rank", 0, "this process's rank in the address list")
	addrList := fs.String("addrs", "", "comma-separated host:port list; last entry is the terminal")
	terminal := fs.Bool("terminal", false, "run as the terminal device (must be the last rank)")
	modelName := fs.String("model", "bert", "model preset")
	layers := fs.Int("layers", 2, "stack depth (0 = full paper depth)")
	seed := fs.Int64("seed", 1, "shared weight seed")
	strategy := fs.String("strategy", "voltage", "voltage | tensor-parallel | single")
	text := fs.String("text", "", "input text (terminal only)")
	words := fs.Int("words", 200, "synthetic word count when -text is empty")
	requests := fs.Int("requests", 1, "number of inference requests (terminal only)")
	bandwidth := fs.Float64("bandwidth", 0, "egress shaping in Mbps (0 = unshaped)")
	timeout := fs.Duration("timeout", 10*time.Minute, "mesh formation + serving budget")
	opTimeout := fs.Duration("op-timeout", 0, "per-message watchdog deadline (0 = none)")
	admin := fs.String("admin", "", "HTTP admin listener address (serves /metrics, /healthz, pprof; port 0 picks a free port)")
	local := fs.Int("local", 0, "run an in-process engine with this many emulated workers instead of joining a TCP mesh")
	hold := fs.Duration("hold", 0, "with -local: keep the process (and its admin listener) alive this long after the requests finish")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := model.Presets(*modelName)
	if err != nil {
		return err
	}
	if *layers > 0 {
		cfg = cfg.Scaled(*layers)
	}
	tensor.SetWorkers(1) // single-CPU device emulation
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	if *local > 0 {
		return runLocal(ctx, w, cfg, *local, localOptions{
			strategy: *strategy, seed: *seed, text: *text, words: *words,
			requests: *requests, bandwidth: *bandwidth, opTimeout: *opTimeout,
			admin: *admin, hold: *hold,
		})
	}

	addrs := strings.Split(*addrList, ",")
	if len(addrs) < 2 {
		return fmt.Errorf("need at least one worker and one terminal in -addrs")
	}
	if *terminal && *rank != len(addrs)-1 {
		return fmt.Errorf("terminal must be the last rank (%d)", len(addrs)-1)
	}

	// The admin listener starts before the (blocking) mesh formation so a
	// forming or wedged deployment can still be probed; the traffic
	// counters read through a holder that is populated once the mesh is up.
	var holder peerHolder
	if *admin != "" {
		srv, err := startMeshAdmin(*admin, *rank, &holder)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(w, "admin listening on %s\n", srv.Addr())
	}

	profile := netem.Profile{BandwidthMbps: *bandwidth}
	mesh, err := comm.NewTCPMesh(ctx, *rank, addrs, profile)
	if err != nil {
		return err
	}
	// Every payload crossing the mesh rides in a checksummed frame, and an
	// optional watchdog turns silent drops into typed comm.ErrTimeout. All
	// ranks must agree on the framing, so it is unconditional.
	peer := comm.WithOpTimeout(comm.NewFramed(mesh), *opTimeout)
	defer peer.Close()
	holder.set(peer)

	k := len(addrs) - 1
	if *terminal {
		return runTerminal(ctx, w, peer, cfg, k, *strategy, *seed, *text, *words, *requests)
	}
	return runWorker(ctx, w, peer, cfg, k, *rank, *strategy, *seed)
}

// peerHolder hands the admin listener a peer that does not exist yet when
// the listener starts (mesh formation blocks). Reads before set() see zero
// stats.
type peerHolder struct {
	mu sync.Mutex
	p  comm.Peer
}

func (h *peerHolder) set(p comm.Peer) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.p = p
}

func (h *peerHolder) stats() comm.Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.p == nil {
		return comm.Stats{}
	}
	return h.p.Stats()
}

func (h *peerHolder) formed() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.p != nil
}

// startMeshAdmin serves this process's transport counters and liveness for
// a TCP-mesh deployment. (The richer serving metrics live in the cluster
// runtime; a mesh process exposes what it has — its own link traffic.)
func startMeshAdmin(addr string, rank int, holder *peerHolder) (*metrics.AdminServer, error) {
	reg := metrics.NewRegistry()
	reg.CounterFunc("voltage_comm_bytes_sent_total",
		"Payload bytes sent by this process (framing overhead excluded).",
		func() float64 { return float64(holder.stats().BytesSent) })
	reg.CounterFunc("voltage_comm_bytes_recv_total",
		"Payload bytes received by this process.",
		func() float64 { return float64(holder.stats().BytesRecv) })
	reg.CounterFunc("voltage_comm_msgs_sent_total",
		"Messages sent by this process.",
		func() float64 { return float64(holder.stats().MsgsSent) })
	reg.CounterFunc("voltage_comm_msgs_recv_total",
		"Messages received by this process.",
		func() float64 { return float64(holder.stats().MsgsRecv) })
	reg.GaugeFunc("voltage_mesh_formed",
		"1 once this process's TCP mesh is connected.",
		func() float64 {
			if holder.formed() {
				return 1
			}
			return 0
		})
	health := func() metrics.Health {
		return metrics.Health{OK: true, Detail: map[string]any{
			"rank": rank, "mesh_formed": holder.formed(),
		}}
	}
	return metrics.StartAdmin(addr, reg, health)
}

// localOptions bundles runLocal's knobs.
type localOptions struct {
	strategy  string
	seed      int64
	text      string
	words     int
	requests  int
	bandwidth float64
	opTimeout time.Duration
	admin     string
	hold      time.Duration
}

// parseStrategy maps the -strategy flag to a cluster strategy.
func parseStrategy(s string) (cluster.Strategy, error) {
	switch s {
	case "single":
		return cluster.StrategySingle, nil
	case "tensor-parallel", "tp":
		return cluster.StrategyTensorParallel, nil
	case "voltage", "":
		return cluster.StrategyVoltage, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", s)
	}
}

// runLocal serves requests on an in-process engine — the emulated cluster
// with its full serving runtime, so the admin listener exposes the real
// serving metrics (request latency, per-rank traffic, health states). This
// is the smoke-test mode scripts/ci.sh drives.
func runLocal(ctx context.Context, w io.Writer, cfg model.Config, k int, lo localOptions) error {
	strat, err := parseStrategy(lo.strategy)
	if err != nil {
		return err
	}
	eng, err := core.New(cfg, k, cluster.Options{
		Profile:   netem.Profile{BandwidthMbps: lo.bandwidth},
		OpTimeout: lo.opTimeout,
		Seed:      lo.seed,
		AdminAddr: lo.admin,
	})
	if err != nil {
		return err
	}
	defer eng.Close()
	if lo.admin != "" {
		fmt.Fprintf(w, "admin listening on %s\n", eng.AdminAddr())
	}
	tok, err := tokenizer.New(cfg.VocabSize)
	if err != nil {
		return err
	}
	var ids []int
	if lo.text != "" {
		ids = tok.Encode(lo.text)
	} else {
		n := lo.words
		if n+2 > cfg.MaxSeq {
			n = cfg.MaxSeq - 2
		}
		ids = tok.EncodeWords(n, 7)
	}
	for req := 0; req < lo.requests; req++ {
		pred, err := eng.ClassifyTokens(ctx, strat, ids)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "request %d: class=%d latency=%v N=%d K=%d\n",
			req, pred.Class, pred.Run.Latency.Round(time.Millisecond), len(ids), k)
	}
	if lo.hold > 0 {
		fmt.Fprintf(w, "holding for %v\n", lo.hold)
		select {
		case <-time.After(lo.hold):
		case <-ctx.Done():
		}
	}
	return nil
}

// runWorker serves layer computations under the chosen strategy until the
// terminal sends an empty shutdown frame.
func runWorker(ctx context.Context, w io.Writer, peer comm.Peer, cfg model.Config, k, rank int, strategy string, seed int64) error {
	m, err := model.NewRandom(cfg, seed)
	if err != nil {
		return err
	}
	scheme, err := partition.Even(k)
	if err != nil {
		return err
	}
	members := make([]int, k)
	for i := range members {
		members[i] = i
	}
	group, err := comm.NewSubgroup(peer, members)
	if err != nil {
		return err
	}
	var shards []*tparallel.ShardedLayer
	if strategy == "tensor-parallel" || strategy == "tp" {
		if shards, err = tparallel.ShardModel(m, rank, k); err != nil {
			return err
		}
	}
	term := k
	fmt.Fprintf(w, "worker %d ready (%s, %d layers, %s)\n", rank, cfg.Name, cfg.Layers, strategy)
	for {
		blob, err := peer.Recv(ctx, term)
		if err != nil {
			return err
		}
		if len(blob) == 0 {
			fmt.Fprintf(w, "worker %d shutting down\n", rank)
			return nil
		}
		x, _, err := tensor.Decode(blob)
		if err != nil {
			return err
		}
		switch strategy {
		case "single":
			if rank != 0 {
				continue
			}
			out, err := m.ForwardFeatures(x)
			if err != nil {
				return err
			}
			if err := peer.Send(ctx, term, tensor.Encode(nil, out)); err != nil {
				return err
			}
		case "tensor-parallel", "tp":
			cur := x
			for li, shard := range shards {
				out, err := shard.Forward(ctx, group, cur, true)
				if err != nil {
					return fmt.Errorf("layer %d: %w", li, err)
				}
				cur = out
			}
			if rank == 0 {
				if err := peer.Send(ctx, term, tensor.Encode(nil, cur)); err != nil {
					return err
				}
			}
		default: // voltage
			ranges, err := scheme.Ranges(x.Rows())
			if err != nil {
				return err
			}
			for li, layer := range m.Layers {
				part, _, err := layer.ForwardPartition(x, ranges[rank])
				if err != nil {
					return fmt.Errorf("layer %d: %w", li, err)
				}
				if li == len(m.Layers)-1 {
					if err := peer.Send(ctx, term, tensor.Encode(nil, part)); err != nil {
						return err
					}
					break
				}
				x, err = comm.AllGatherMatrix(ctx, group, part, ranges, false)
				if err != nil {
					return fmt.Errorf("layer %d allgather: %w", li, err)
				}
			}
		}
	}
}

// runTerminal drives requests: pre-process, broadcast, collect, classify.
func runTerminal(ctx context.Context, w io.Writer, peer comm.Peer, cfg model.Config,
	k int, strategy string, seed int64, text string, words, requests int) error {
	m, err := model.NewRandom(cfg, seed)
	if err != nil {
		return err
	}
	scheme, err := partition.Even(k)
	if err != nil {
		return err
	}
	tok, err := tokenizer.New(cfg.VocabSize)
	if err != nil {
		return err
	}
	var ids []int
	if text != "" {
		ids = tok.Encode(text)
	} else {
		n := words
		if n+2 > cfg.MaxSeq {
			n = cfg.MaxSeq - 2
		}
		ids = tok.EncodeWords(n, 7)
	}
	for req := 0; req < requests; req++ {
		x, err := m.Embed.EmbedTokens(ids)
		if err != nil {
			return err
		}
		start := time.Now()
		blob := tensor.Encode(nil, x)
		for r := 0; r < k; r++ {
			if err := peer.Send(ctx, r, blob); err != nil {
				return err
			}
		}
		var out *tensor.Matrix
		switch strategy {
		case "single", "tensor-parallel", "tp":
			// A single reporter (worker 0) returns the full output.
			got, err := peer.Recv(ctx, 0)
			if err != nil {
				return err
			}
			if out, _, err = tensor.Decode(got); err != nil {
				return err
			}
		default: // voltage: assemble partitions in rank order
			ranges, err := scheme.Ranges(x.Rows())
			if err != nil {
				return err
			}
			out = tensor.New(x.Rows(), x.Cols())
			for r := 0; r < k; r++ {
				got, err := peer.Recv(ctx, r)
				if err != nil {
					return err
				}
				part, _, err := tensor.Decode(got)
				if err != nil {
					return err
				}
				if ranges[r].Empty() {
					continue
				}
				if err := out.SetRowSlice(ranges[r].From, part); err != nil {
					return err
				}
			}
		}
		latency := time.Since(start)
		class, err := m.Classifier.Predict(out)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "request %d: class=%d latency=%v N=%d K=%d\n",
			req, class, latency.Round(time.Millisecond), x.Rows(), k)
	}
	// Shutdown: empty frame to every worker.
	for r := 0; r < k; r++ {
		if err := peer.Send(ctx, r, []byte{}); err != nil {
			return err
		}
	}
	return nil
}
