// Command voltage-worker runs a genuinely distributed Voltage deployment
// across processes (or machines): every device runs one process, the
// processes assemble a TCP mesh from a shared address list, and the
// terminal process drives inference requests through the worker pool with
// Algorithm 2.
//
// Start K workers and one terminal, all with the same -addrs list (worker
// ranks 0..K-1, terminal last):
//
//	voltage-worker -rank 0 -addrs 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002
//	voltage-worker -rank 1 -addrs 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002
//	voltage-worker -rank 2 -terminal -words 200 \
//	    -addrs 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002
//
// Every process materializes identical model weights from -seed, so no
// weights cross the network — only activations, exactly as in the paper.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"voltage/internal/comm"
	"voltage/internal/model"
	"voltage/internal/netem"
	"voltage/internal/partition"
	"voltage/internal/tensor"
	"voltage/internal/tokenizer"
	"voltage/internal/tparallel"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "voltage-worker:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("voltage-worker", flag.ContinueOnError)
	rank := fs.Int("rank", 0, "this process's rank in the address list")
	addrList := fs.String("addrs", "", "comma-separated host:port list; last entry is the terminal")
	terminal := fs.Bool("terminal", false, "run as the terminal device (must be the last rank)")
	modelName := fs.String("model", "bert", "model preset")
	layers := fs.Int("layers", 2, "stack depth (0 = full paper depth)")
	seed := fs.Int64("seed", 1, "shared weight seed")
	strategy := fs.String("strategy", "voltage", "voltage | tensor-parallel | single")
	text := fs.String("text", "", "input text (terminal only)")
	words := fs.Int("words", 200, "synthetic word count when -text is empty")
	requests := fs.Int("requests", 1, "number of inference requests (terminal only)")
	bandwidth := fs.Float64("bandwidth", 0, "egress shaping in Mbps (0 = unshaped)")
	timeout := fs.Duration("timeout", 10*time.Minute, "mesh formation + serving budget")
	opTimeout := fs.Duration("op-timeout", 0, "per-message watchdog deadline (0 = none)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	addrs := strings.Split(*addrList, ",")
	if len(addrs) < 2 {
		return fmt.Errorf("need at least one worker and one terminal in -addrs")
	}
	cfg, err := model.Presets(*modelName)
	if err != nil {
		return err
	}
	if *layers > 0 {
		cfg = cfg.Scaled(*layers)
	}
	if *terminal && *rank != len(addrs)-1 {
		return fmt.Errorf("terminal must be the last rank (%d)", len(addrs)-1)
	}

	tensor.SetWorkers(1) // single-CPU device emulation
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	profile := netem.Profile{BandwidthMbps: *bandwidth}
	mesh, err := comm.NewTCPMesh(ctx, *rank, addrs, profile)
	if err != nil {
		return err
	}
	// Every payload crossing the mesh rides in a checksummed frame, and an
	// optional watchdog turns silent drops into typed comm.ErrTimeout. All
	// ranks must agree on the framing, so it is unconditional.
	peer := comm.WithOpTimeout(comm.NewFramed(mesh), *opTimeout)
	defer peer.Close()

	k := len(addrs) - 1
	if *terminal {
		return runTerminal(ctx, w, peer, cfg, k, *strategy, *seed, *text, *words, *requests)
	}
	return runWorker(ctx, w, peer, cfg, k, *rank, *strategy, *seed)
}

// runWorker serves layer computations under the chosen strategy until the
// terminal sends an empty shutdown frame.
func runWorker(ctx context.Context, w io.Writer, peer comm.Peer, cfg model.Config, k, rank int, strategy string, seed int64) error {
	m, err := model.NewRandom(cfg, seed)
	if err != nil {
		return err
	}
	scheme, err := partition.Even(k)
	if err != nil {
		return err
	}
	members := make([]int, k)
	for i := range members {
		members[i] = i
	}
	group, err := comm.NewSubgroup(peer, members)
	if err != nil {
		return err
	}
	var shards []*tparallel.ShardedLayer
	if strategy == "tensor-parallel" || strategy == "tp" {
		if shards, err = tparallel.ShardModel(m, rank, k); err != nil {
			return err
		}
	}
	term := k
	fmt.Fprintf(w, "worker %d ready (%s, %d layers, %s)\n", rank, cfg.Name, cfg.Layers, strategy)
	for {
		blob, err := peer.Recv(ctx, term)
		if err != nil {
			return err
		}
		if len(blob) == 0 {
			fmt.Fprintf(w, "worker %d shutting down\n", rank)
			return nil
		}
		x, _, err := tensor.Decode(blob)
		if err != nil {
			return err
		}
		switch strategy {
		case "single":
			if rank != 0 {
				continue
			}
			out, err := m.ForwardFeatures(x)
			if err != nil {
				return err
			}
			if err := peer.Send(ctx, term, tensor.Encode(nil, out)); err != nil {
				return err
			}
		case "tensor-parallel", "tp":
			cur := x
			for li, shard := range shards {
				out, err := shard.Forward(ctx, group, cur, true)
				if err != nil {
					return fmt.Errorf("layer %d: %w", li, err)
				}
				cur = out
			}
			if rank == 0 {
				if err := peer.Send(ctx, term, tensor.Encode(nil, cur)); err != nil {
					return err
				}
			}
		default: // voltage
			ranges, err := scheme.Ranges(x.Rows())
			if err != nil {
				return err
			}
			for li, layer := range m.Layers {
				part, _, err := layer.ForwardPartition(x, ranges[rank])
				if err != nil {
					return fmt.Errorf("layer %d: %w", li, err)
				}
				if li == len(m.Layers)-1 {
					if err := peer.Send(ctx, term, tensor.Encode(nil, part)); err != nil {
						return err
					}
					break
				}
				x, err = comm.AllGatherMatrix(ctx, group, part, ranges, false)
				if err != nil {
					return fmt.Errorf("layer %d allgather: %w", li, err)
				}
			}
		}
	}
}

// runTerminal drives requests: pre-process, broadcast, collect, classify.
func runTerminal(ctx context.Context, w io.Writer, peer comm.Peer, cfg model.Config,
	k int, strategy string, seed int64, text string, words, requests int) error {
	m, err := model.NewRandom(cfg, seed)
	if err != nil {
		return err
	}
	scheme, err := partition.Even(k)
	if err != nil {
		return err
	}
	tok, err := tokenizer.New(cfg.VocabSize)
	if err != nil {
		return err
	}
	var ids []int
	if text != "" {
		ids = tok.Encode(text)
	} else {
		n := words
		if n+2 > cfg.MaxSeq {
			n = cfg.MaxSeq - 2
		}
		ids = tok.EncodeWords(n, 7)
	}
	for req := 0; req < requests; req++ {
		x, err := m.Embed.EmbedTokens(ids)
		if err != nil {
			return err
		}
		start := time.Now()
		blob := tensor.Encode(nil, x)
		for r := 0; r < k; r++ {
			if err := peer.Send(ctx, r, blob); err != nil {
				return err
			}
		}
		var out *tensor.Matrix
		switch strategy {
		case "single", "tensor-parallel", "tp":
			// A single reporter (worker 0) returns the full output.
			got, err := peer.Recv(ctx, 0)
			if err != nil {
				return err
			}
			if out, _, err = tensor.Decode(got); err != nil {
				return err
			}
		default: // voltage: assemble partitions in rank order
			ranges, err := scheme.Ranges(x.Rows())
			if err != nil {
				return err
			}
			out = tensor.New(x.Rows(), x.Cols())
			for r := 0; r < k; r++ {
				got, err := peer.Recv(ctx, r)
				if err != nil {
					return err
				}
				part, _, err := tensor.Decode(got)
				if err != nil {
					return err
				}
				if ranges[r].Empty() {
					continue
				}
				if err := out.SetRowSlice(ranges[r].From, part); err != nil {
					return err
				}
			}
		}
		latency := time.Since(start)
		class, err := m.Classifier.Predict(out)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "request %d: class=%d latency=%v N=%d K=%d\n",
			req, class, latency.Round(time.Millisecond), x.Rows(), k)
	}
	// Shutdown: empty frame to every worker.
	for r := 0; r < k; r++ {
		if err := peer.Send(ctx, r, []byte{}); err != nil {
			return err
		}
	}
	return nil
}
