// Command voltage-load is the trace-driven load harness: it replays
// reproducible traffic traces against a voltage-server gateway and records
// what the serving stack delivered — latency percentiles (queue wait,
// TTFT, per-token, end-to-end), shed counts by cause and class, and
// achieved request/token throughput.
//
// Modes (exactly one):
//
//	-trace cfg.json -target http://host:port
//	    replay one trace against a running gateway; write the summary
//	    JSON to -out (default stdout). With -trace-out FILE, also
//	    download the gateway's Chrome trace export (/debug/trace) for
//	    chrome://tracing / Perfetto
//	-grid cfg.json
//	    run the experiment grid (offered load × MaxBatch × workers,
//	    N repeats) over hermetic in-process gateways; write the
//	    BENCH_<pr>.json contract plus a sibling .csv to -out
//	-check file.json
//	    schema-check a harness output file (bench or summary); exit
//	    nonzero when malformed
//	-compare BENCH_old.json
//	    compare a bench (the one just produced by -grid, else the file
//	    named by -out) against a recorded baseline; exit nonzero when
//	    aggregate tok/s regresses more than -threshold
//
// A 2-second smoke against a local server:
//
//	voltage-server -local 3 -model tiny-decoder -listen 127.0.0.1:8080 &
//	voltage-load -trace trace.json -target http://127.0.0.1:8080 -require-served
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"voltage/internal/loadgen"
	"voltage/internal/tensor"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "voltage-load:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("voltage-load", flag.ContinueOnError)
	tracePath := fs.String("trace", "", "trace config JSON: replay one trace against -target")
	target := fs.String("target", "", "gateway base URL for -trace (e.g. http://127.0.0.1:8080)")
	gridPath := fs.String("grid", "", "grid config JSON: run the experiment grid over in-process gateways")
	out := fs.String("out", "", "output path (summary or bench JSON; default stdout for -trace)")
	check := fs.String("check", "", "schema-check a harness output file and exit")
	compare := fs.String("compare", "", "baseline BENCH_*.json to compare aggregate tok/s against")
	threshold := fs.Float64("threshold", 0.10, "fractional regression tolerance for -compare")
	requireServed := fs.Bool("require-served", false, "-trace: exit nonzero unless both classes completed at least one request")
	traceOut := fs.String("trace-out", "", "-trace: after the run, download the gateway's Chrome trace export (/debug/trace) to this file (open in chrome://tracing or Perfetto)")
	seed := fs.Int64("seed", 0, "override the trace config's seed (0 = keep)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *check != "" {
		if err := loadgen.CheckFile(*check); err != nil {
			return err
		}
		fmt.Fprintf(w, "%s: well-formed\n", *check)
		return nil
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	var bench *loadgen.Bench
	switch {
	case *tracePath != "" && *gridPath != "":
		return fmt.Errorf("-trace and -grid are mutually exclusive")
	case *tracePath != "":
		cfg, err := loadgen.LoadTraceConfig(*tracePath)
		if err != nil {
			return err
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		if *target == "" {
			return fmt.Errorf("-trace needs -target")
		}
		sum, err := loadgen.NewRunner(cfg, *target).Run(ctx)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, sum.TableRow("trace"))
		blob, err := json.MarshalIndent(sum, "", "  ")
		if err != nil {
			return err
		}
		if *out != "" {
			if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
				return err
			}
		} else {
			fmt.Fprintln(w, string(blob))
		}
		if *requireServed {
			if sum.Interactive.OK == 0 || sum.Generate.OK == 0 {
				return fmt.Errorf("served counts interactive=%d generate=%d, want both > 0",
					sum.Interactive.OK, sum.Generate.OK)
			}
		}
		if *traceOut != "" {
			blob, events, err := loadgen.FetchChromeTrace(nil, *target)
			if err != nil {
				return err
			}
			if err := os.WriteFile(*traceOut, blob, 0o644); err != nil {
				return err
			}
			fmt.Fprintf(w, "chrome trace: %d events → %s\n", events, *traceOut)
		}
	case *gridPath != "":
		cfg, err := loadgen.LoadGridConfig(*gridPath)
		if err != nil {
			return err
		}
		if *seed != 0 {
			cfg.Trace.Seed = *seed
		}
		tensor.SetWorkers(1) // single-CPU device emulation, as voltage-server does
		bench, err = loadgen.RunGrid(ctx, cfg, w)
		if err != nil {
			return err
		}
		path := *out
		if path == "" {
			path = fmt.Sprintf("BENCH_%d.json", cfg.Issue)
		}
		if err := loadgen.WriteBench(bench, path); err != nil {
			return err
		}
		fmt.Fprintf(w, "best %s: %.1f tok/s, %.1f req/s, p99 %.1f ms → %s\n",
			bench.Aggregate.BestConfig, bench.Aggregate.TokensPerSec,
			bench.Aggregate.ReqPerSec, bench.Aggregate.P99EndToEndMS, path)
	case *compare == "":
		return fmt.Errorf("pick a mode: -trace, -grid, -check, or -compare (see -h)")
	}

	if *compare != "" {
		if bench == nil {
			if *out == "" {
				return fmt.Errorf("-compare without -grid needs -out naming the current bench")
			}
			blob, err := os.ReadFile(*out)
			if err != nil {
				return err
			}
			bench = &loadgen.Bench{}
			if err := json.Unmarshal(blob, bench); err != nil {
				return fmt.Errorf("parse current bench %s: %w", *out, err)
			}
		}
		verdict, err := loadgen.Compare(bench, *compare, *threshold)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "no regression: %s\n", verdict)
	}
	return nil
}
