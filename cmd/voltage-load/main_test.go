package main

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"voltage/internal/cluster"
	"voltage/internal/core"
	"voltage/internal/model"
	"voltage/internal/server"
)

// writeJSON drops a JSON fixture into dir.
func writeJSON(t *testing.T, dir, name string, v any) string {
	t.Helper()
	blob, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestModeValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Fatal("no mode accepted")
	}
	if err := run([]string{"-trace", "a.json", "-grid", "b.json"}, &out); err == nil {
		t.Fatal("-trace plus -grid accepted")
	}
	if err := run([]string{"-trace", "nope.json"}, &out); err == nil {
		t.Fatal("missing trace file accepted")
	}
}

func TestGridCheckCompareEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("grid run in -short mode")
	}
	dir := t.TempDir()
	grid := writeJSON(t, dir, "grid.json", map[string]any{
		"name": "cmd-test", "issue": 8, "layers": 1,
		"local_workers": []int{2}, "max_batch": []int{2}, "offered_rps": []float64{40},
		"repeats": 1, "gateway_workers": 4,
		"trace": map[string]any{
			"seed": 9, "duration_ms": 250, "arrival": "poisson",
			"steps": map[string]any{"dist": "uniform", "min": 2, "max": 3},
		},
	})
	bench := filepath.Join(dir, "BENCH_t.json")
	var out bytes.Buffer
	if err := run([]string{"-grid", grid, "-out", bench}, &out); err != nil {
		t.Fatalf("grid run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "tok/s") {
		t.Fatalf("grid output carries no summary table:\n%s", out.String())
	}
	if err := run([]string{"-check", bench}, &out); err != nil {
		t.Fatalf("check rejected fresh bench: %v", err)
	}
	// Self-compare passes; a 10x-inflated legacy baseline fails nonzero.
	if err := run([]string{"-compare", bench, "-out", bench}, &out); err != nil {
		t.Fatalf("self-compare: %v", err)
	}
	var b struct {
		Aggregate struct {
			TokensPerSec float64 `json:"tokens_per_sec"`
		} `json:"aggregate"`
	}
	blob, err := os.ReadFile(bench)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(blob, &b); err != nil {
		t.Fatal(err)
	}
	legacy := writeJSON(t, dir, "legacy.json", map[string]any{
		"after": map[string]any{"tokens_per_sec": b.Aggregate.TokensPerSec * 10},
	})
	if err := run([]string{"-compare", legacy, "-out", bench}, &out); err == nil {
		t.Fatal("regression vs inflated baseline not flagged")
	}
}

func TestTraceModeAgainstGateway(t *testing.T) {
	eng, err := core.New(model.TinyDecoder().Scaled(1), 2, cluster.Options{MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	gw, err := server.New(eng, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: gw.Handler()}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })

	dir := t.TempDir()
	trace := writeJSON(t, dir, "trace.json", map[string]any{
		"seed": 4, "duration_ms": 300, "arrival": "poisson", "rate_per_sec": 40,
		"steps": map[string]any{"dist": "uniform", "min": 2, "max": 3},
	})
	sumPath := filepath.Join(dir, "summary.json")
	var out bytes.Buffer
	err = run([]string{
		"-trace", trace, "-target", "http://" + ln.Addr().String(),
		"-out", sumPath, "-require-served",
	}, &out)
	if err != nil {
		t.Fatalf("trace run: %v\n%s", err, out.String())
	}
	if err := run([]string{"-check", sumPath}, &out); err != nil {
		t.Fatalf("check rejected trace summary: %v", err)
	}
}
