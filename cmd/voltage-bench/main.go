// Command voltage-bench regenerates the paper's evaluation: Figures 4, 5
// and 6 plus the in-text communication-volume and theorem-verification
// tables, in predicted (analytic cost model, full paper scale) and/or
// measured (real execution on the emulated cluster) mode.
//
// Usage:
//
//	voltage-bench -experiment all                 # everything, predicted
//	voltage-bench -experiment fig4 -mode both     # Fig. 4 predicted + measured
//	voltage-bench -experiment fig6 -mode measured # attention speed-up timings
//	voltage-bench -experiment comm                # Table A (comm volume)
//	voltage-bench -experiment theorems            # Table B (Theorem 2 sweep)
//	voltage-bench -experiment breakdown -mode measured  # compute/comm split
//	voltage-bench -experiment pipeline  -mode measured  # pipeline batch study
//	voltage-bench -experiment quantized -mode measured  # int8 gathers ablation
//
// Measured mode executes real transformer math with this repository's Go
// kernels; -layers scales the stack depth so full-width models stay
// tractable (per-layer behaviour, which the figures show, is unchanged).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"voltage/internal/harness"
	"voltage/internal/model"
	"voltage/internal/netem"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "voltage-bench:", err)
		os.Exit(1)
	}
}

type options struct {
	experiment string
	mode       string
	models     string
	format     string
	maxK       int
	layers     int
	bandwidth  float64
	seed       int64
	timeout    time.Duration
	calibrate  bool
	cal        harness.Calibration
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("voltage-bench", flag.ContinueOnError)
	var o options
	fs.StringVar(&o.experiment, "experiment", "all", "fig4 | fig5 | fig6 | comm | theorems | all")
	fs.StringVar(&o.mode, "mode", "predicted", "predicted | measured | both")
	fs.StringVar(&o.models, "models", "bert,vit,gpt2", "comma-separated model presets")
	fs.StringVar(&o.format, "format", "markdown", "markdown | csv")
	fs.IntVar(&o.maxK, "maxk", 6, "maximum device count")
	fs.IntVar(&o.layers, "layers", 2, "stack depth for measured mode (0 = full paper depth)")
	fs.Float64Var(&o.bandwidth, "bandwidth", 500, "default bandwidth in Mbps")
	fs.Int64Var(&o.seed, "seed", 1, "weight seed")
	fs.DurationVar(&o.timeout, "timeout", 30*time.Minute, "measured-mode time budget")
	fs.BoolVar(&o.calibrate, "calibrate", true,
		"measured mode: rescale bandwidth by this host's kernel speed so the paper's compute:comm balance holds")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if o.calibrate && o.measured() {
		o.cal = harness.Calibrate(o.maxK)
		fmt.Fprintf(w, "calibration: emulated device rate %.2f GMAC/s, bandwidth scale %.4f "+
			"(emulated \"500 Mbps\" runs at %.1f Mbps to preserve the paper's compute:comm balance)\n\n",
			o.cal.DeviceFlops/1e9, o.cal.BwScale, 500*o.cal.BwScale)
	}

	models, err := parseModels(o.models)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), o.timeout)
	defer cancel()

	experiments := strings.Split(o.experiment, ",")
	if o.experiment == "all" {
		experiments = []string{"fig4", "fig5", "fig6", "comm", "theorems"}
	}
	for _, exp := range experiments {
		if err := runExperiment(ctx, w, strings.TrimSpace(exp), models, o); err != nil {
			return fmt.Errorf("%s: %w", exp, err)
		}
	}
	return nil
}

func parseModels(s string) ([]model.Config, error) {
	var out []model.Config
	for _, name := range strings.Split(s, ",") {
		cfg, err := model.Presets(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, cfg)
	}
	return out, nil
}

func (o options) predicted() bool { return o.mode == "predicted" || o.mode == "both" }
func (o options) measured() bool  { return o.mode == "measured" || o.mode == "both" }

// measuredConfig depth-scales a preset for tractable pure-Go execution.
func (o options) measuredConfig(cfg model.Config) model.Config {
	if o.layers > 0 {
		return cfg.Scaled(o.layers)
	}
	return cfg
}

func emit(w io.Writer, format string, t harness.Table) error {
	if format == "csv" {
		if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
			return err
		}
		return t.WriteCSV(w)
	}
	return t.WriteMarkdown(w)
}

func runExperiment(ctx context.Context, w io.Writer, exp string, models []model.Config, o options) error {
	profile := netem.Profile{BandwidthMbps: o.bandwidth, Latency: 200 * time.Microsecond}
	switch exp {
	case "fig4":
		for _, cfg := range models {
			if o.predicted() {
				rows, err := harness.Fig4Predicted(cfg, o.maxK, o.bandwidth)
				if err != nil {
					return err
				}
				title := fmt.Sprintf("Fig. 4 predicted — %s, latency vs device count @%.0f Mbps", cfg.Name, o.bandwidth)
				if err := emit(w, o.format, harness.Fig4Table(title, rows)); err != nil {
					return err
				}
			}
			if o.measured() {
				mc := o.measuredConfig(cfg)
				rows, err := harness.Fig4Measured(ctx, mc, o.maxK, profile, o.cal, o.seed)
				if err != nil {
					return err
				}
				title := fmt.Sprintf("Fig. 4 measured — %s (%d layers), latency vs device count @%.0f Mbps",
					cfg.Name, mc.Layers, o.bandwidth)
				if err := emit(w, o.format, harness.Fig4Table(title, rows)); err != nil {
					return err
				}
			}
		}
	case "fig5":
		for _, cfg := range models {
			if o.predicted() {
				rows, err := harness.Fig5Predicted(cfg, o.maxK, harness.DefaultBandwidths)
				if err != nil {
					return err
				}
				title := fmt.Sprintf("Fig. 5 predicted — %s, latency vs bandwidth @K=%d", cfg.Name, o.maxK)
				if err := emit(w, o.format, harness.Fig5Table(title, rows)); err != nil {
					return err
				}
			}
			if o.measured() {
				mc := o.measuredConfig(cfg)
				rows, err := harness.Fig5Measured(ctx, mc, o.maxK, harness.DefaultBandwidths, o.cal, o.seed)
				if err != nil {
					return err
				}
				title := fmt.Sprintf("Fig. 5 measured — %s (%d layers), latency vs bandwidth @K=%d",
					cfg.Name, mc.Layers, o.maxK)
				if err := emit(w, o.format, harness.Fig5Table(title, rows)); err != nil {
					return err
				}
			}
		}
	case "fig6":
		maxK := 10
		if o.predicted() {
			rows := harness.Fig6Predicted(harness.DefaultFig6Settings, harness.DefaultFig6Lengths, maxK)
			if err := emit(w, o.format, harness.Fig6Table("Fig. 6 predicted — attention partition speed-up", rows)); err != nil {
				return err
			}
		}
		if o.measured() {
			rows, err := harness.Fig6Measured(harness.DefaultFig6Settings, harness.DefaultFig6Lengths, maxK, o.seed)
			if err != nil {
				return err
			}
			if err := emit(w, o.format, harness.Fig6Table("Fig. 6 measured — attention partition speed-up", rows)); err != nil {
				return err
			}
		}
	case "comm":
		// Communication volume is scale-independent per layer; a tiny
		// model measures it exactly.
		rows, err := harness.CommVolume(ctx, model.Tiny(), o.maxK, o.seed)
		if err != nil {
			return err
		}
		return emit(w, o.format, harness.CommTable(
			"Table A — per-inference worker traffic (Voltage vs tensor parallelism)", rows))
	case "theorems":
		rep := harness.VerifyTheorems(300)
		return emit(w, o.format, harness.TheoremTable(
			"Table B — Theorem 2 predicate vs brute-force optimum", rep))
	case "breakdown":
		// Extension: measured compute/comm split per strategy.
		mc := o.measuredConfig(models[0])
		rows, err := harness.BreakdownMeasured(ctx, mc, o.maxK, profile, o.cal, o.seed)
		if err != nil {
			return err
		}
		title := fmt.Sprintf("Breakdown — %s (%d layers), K=%d @%.0f Mbps: where the time goes",
			mc.Name, mc.Layers, o.maxK, o.bandwidth)
		return emit(w, o.format, harness.BreakdownTable(title, rows))
	case "pipeline":
		// Extension: pipeline parallelism's throughput-vs-latency trade.
		mc := o.measuredConfig(models[0])
		rows, err := harness.PipelineMeasured(ctx, mc, o.maxK, []int{1, 2, 4, 8}, o.cal, o.seed)
		if err != nil {
			return err
		}
		title := fmt.Sprintf("Pipeline parallelism — %s (%d layers), K=%d: batch-1 latency never improves",
			mc.Name, mc.Layers, o.maxK)
		return emit(w, o.format, harness.PipelineTable(title, rows))
	case "quantized":
		// Extension: int8 All-Gather payloads (the paper's future work).
		mc := o.measuredConfig(models[0])
		rows, err := harness.QuantizedCommMeasured(ctx, mc, o.maxK, harness.DefaultBandwidths, o.cal, o.seed)
		if err != nil {
			return err
		}
		title := fmt.Sprintf("Quantized communication — %s (%d layers), K=%d", mc.Name, mc.Layers, o.maxK)
		return emit(w, o.format, harness.QuantTable(title, rows))
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
