package main

import (
	"strings"
	"testing"
)

func TestBenchPredictedFig4(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-experiment", "fig4", "-models", "gpt2", "-maxk", "3"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Fig. 4 predicted — gpt2") {
		t.Fatalf("missing fig4 title:\n%s", out)
	}
	if !strings.Contains(out, "| gpt2 | 3 |") {
		t.Fatalf("missing K=3 row:\n%s", out)
	}
}

func TestBenchPredictedAll(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-experiment", "all", "-models", "tiny", "-maxk", "2"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Fig. 4", "Fig. 5", "Fig. 6", "Table A", "Table B"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in all-experiment output", want)
		}
	}
}

func TestBenchCSVFormat(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-experiment", "comm", "-maxk", "3", "-format", "csv"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "K,voltage-bytes,tp-bytes") {
		t.Fatalf("csv header missing:\n%s", sb.String())
	}
}

func TestBenchMeasuredTinyFig4(t *testing.T) {
	var sb strings.Builder
	// -calibrate=false keeps the tiny measured run fast and deterministic.
	err := run([]string{"-experiment", "fig4", "-mode", "measured", "-models", "tiny",
		"-maxk", "2", "-calibrate=false"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Fig. 4 measured — tiny") {
		t.Fatalf("missing measured title:\n%s", sb.String())
	}
}

func TestBenchTheorems(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-experiment", "theorems"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "| 0 |") { // zero predicate errors
		t.Fatalf("theorem sweep reported errors:\n%s", out)
	}
}

func TestBenchExtensions(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-experiment", "breakdown,pipeline,quantized", "-mode", "measured",
		"-models", "tiny", "-maxk", "2", "-calibrate=false"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Breakdown", "Pipeline parallelism", "Quantized communication"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestBenchErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-experiment", "bogus"}, &sb); err == nil {
		t.Fatal("want error for unknown experiment")
	}
	if err := run([]string{"-models", "bogus"}, &sb); err == nil {
		t.Fatal("want error for unknown model")
	}
	if err := run([]string{"-no-such-flag"}, &sb); err == nil {
		t.Fatal("want error for bad flag")
	}
}

func TestParseModels(t *testing.T) {
	ms, err := parseModels("bert, gpt2")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || ms[1].Name != "gpt2" {
		t.Fatalf("parseModels = %v", ms)
	}
}
