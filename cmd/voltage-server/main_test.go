package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

type lockedBuilder struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *lockedBuilder) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *lockedBuilder) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}

var listenRe = regexp.MustCompile(`gateway listening on (\S+)`)

// startLocal runs the binary in -local mode with -hold and returns the
// gateway's base URL plus the run error channel.
func startLocal(t *testing.T, out *lockedBuilder, extra ...string) (string, <-chan error) {
	t.Helper()
	args := append([]string{
		"-listen", "127.0.0.1:0", "-local", "2", "-layers", "1",
		"-hold", "15s", "-drain-timeout", "5s",
	}, extra...)
	errCh := make(chan error, 1)
	go func() { errCh <- run(args, out) }()
	deadline := time.Now().Add(15 * time.Second)
	for {
		if m := listenRe.FindStringSubmatch(out.String()); m != nil {
			return "http://" + m[1], errCh
		}
		select {
		case err := <-errCh:
			t.Fatalf("server exited before listening: %v\n%s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never listened:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestServeLocalEndToEnd(t *testing.T) {
	var out lockedBuilder
	base, errCh := startLocal(t, &out)

	// Classification round-trips through the gateway.
	body, _ := json.Marshal(map[string]any{"text": "edge meets transformers"})
	resp, err := http.Post(base+"/v1/classify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var classify struct {
		Class  int       `json:"class"`
		Logits []float32 `json:"logits"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&classify); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(classify.Logits) == 0 {
		t.Fatalf("classify = %d %+v, want 200 with logits", resp.StatusCode, classify)
	}

	// Queue introspection names both classes.
	resp, err = http.Get(base + "/v1/queue")
	if err != nil {
		t.Fatal(err)
	}
	qb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(qb), `"interactive"`) || !strings.Contains(string(qb), `"batch"`) {
		t.Fatalf("/v1/queue = %s, want both classes", qb)
	}

	// Gateway and cluster metric families share one /metrics page.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"voltage_gateway_queue_depth", "voltage_gateway_admitted_total", "voltage_requests_total"} {
		if !strings.Contains(string(mb), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}

	// SIGINT-equivalent: the -hold path drains; don't wait the full hold.
	// (run exits on its own; just make sure nothing crashed so far.)
	select {
	case err := <-errCh:
		t.Fatalf("server exited early: %v\n%s", err, out.String())
	default:
	}
}

func TestServeLocalShedsWithTinyQueue(t *testing.T) {
	var out lockedBuilder
	// Queue of 1 with 1 worker and paced compute: a burst must shed.
	base, _ := startLocal(t, &out,
		"-queue-interactive", "1", "-gateway-workers", "1", "-device-flops", "2e4")

	const burst = 6
	codes := make(chan int, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(map[string]any{"tokens": []int{1, 2, 3, 4}})
			resp, err := http.Post(base+"/v1/classify", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				codes <- 0
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes <- resp.StatusCode
		}()
	}
	wg.Wait()
	close(codes)
	var ok, shed int
	for code := range codes {
		switch code {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
		default:
			t.Errorf("unexpected status %d", code)
		}
	}
	if ok == 0 || shed == 0 {
		t.Fatalf("burst resolved %d ok / %d shed, want both > 0", ok, shed)
	}
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(mb), `voltage_gateway_shed_total{cause="queue_full"}`) {
		t.Errorf("/metrics missing queue_full shed counter")
	}
}

func TestServeGenerateStreams(t *testing.T) {
	var out lockedBuilder
	base, _ := startLocal(t, &out, "-model", "tiny-decoder")

	body, _ := json.Marshal(map[string]any{"prompt": []int{1, 2, 3}, "steps": 3})
	resp, err := http.Post(base+"/v1/generate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("generate = %d: %s", resp.StatusCode, raw)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 4 { // 3 token lines + 1 summary
		t.Fatalf("stream = %d lines, want 4:\n%s", len(lines), raw)
	}
	var final struct {
		Done   bool   `json:"done"`
		Tokens []int  `json:"tokens"`
		Error  string `json:"error"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &final); err != nil {
		t.Fatal(err)
	}
	if !final.Done || final.Error != "" || len(final.Tokens) != 6 {
		t.Fatalf("final line = %+v, want done with 6 tokens", final)
	}
}

func TestRunFlagValidation(t *testing.T) {
	var out lockedBuilder
	if err := run([]string{"-local", "0"}, &out); err == nil {
		t.Error("-local 0 accepted")
	}
	if err := run([]string{"-addrs", "127.0.0.1:1"}, &out); err == nil {
		t.Error("single-address mesh accepted")
	}
	if err := run([]string{"-model", "wat"}, &out); err == nil {
		t.Error("unknown model accepted")
	}
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestAdminListener(t *testing.T) {
	var out lockedBuilder
	base, _ := startLocal(t, &out, "-admin", "127.0.0.1:0")
	_ = base
	adminRe := regexp.MustCompile(`admin listening on (\S+)`)
	deadline := time.Now().Add(10 * time.Second)
	var admin string
	for {
		if m := adminRe.FindStringSubmatch(out.String()); m != nil {
			admin = "http://" + m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("admin never listened:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, err := http.Get(admin + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin /healthz = %d: %s", resp.StatusCode, hb)
	}
	resp, err = http.Get(admin + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(mb), "voltage_gateway_queue_depth") {
		t.Errorf("admin /metrics missing gateway families:\n%.300s", mb)
	}
}
