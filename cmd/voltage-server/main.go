// Command voltage-server is the inference gateway: the network front door
// of the Voltage serving runtime. It exposes the HTTP JSON API
// (/v1/classify, streaming /v1/generate, /v1/queue) over an admission
// scheduler with per-class bounded queues, deadline-aware ordering and
// explicit load shedding, in front of either
//
//   - a local in-process engine (-local K): the emulated cluster with its
//     full serving runtime, health tracking and metrics — the default; or
//   - a TCP mesh (-addrs ...): the server joins an existing voltage-worker
//     fleet as the terminal device and drives classification requests
//     through it (generation requires the local engine).
//
// A quick local deployment:
//
//	voltage-server -local 3 -model tiny -listen 127.0.0.1:8080
//	curl -s localhost:8080/v1/classify -d '{"text":"hello edge"}'
//	curl -sN localhost:8080/v1/generate -d '{"prompt":[1,2,3],"steps":8}'
//	curl -s localhost:8080/v1/queue
//
// The gateway sheds rather than blocks: a full class queue answers 429, a
// draining or degraded cluster answers 503, and every shed is counted on
// /metrics (voltage_gateway_shed_total). SIGINT/SIGTERM drains gracefully:
// in-flight requests finish, new ones are rejected, and the process exits
// once the queues are empty or -drain-timeout elapses.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"voltage/internal/cluster"
	"voltage/internal/comm"
	"voltage/internal/core"
	"voltage/internal/metrics"
	"voltage/internal/model"
	"voltage/internal/netem"
	"voltage/internal/partition"
	"voltage/internal/sched"
	"voltage/internal/server"
	"voltage/internal/tensor"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "voltage-server:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("voltage-server", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:8080", "gateway HTTP listen address (port 0 picks a free port)")
	admin := fs.String("admin", "", "separate admin listener address (metrics + pprof; empty = gateway-only)")
	local := fs.Int("local", 3, "emulated worker count for the in-process engine")
	addrs := fs.String("addrs", "", "join a TCP worker mesh as the terminal instead of -local (comma-separated host:port list, this process last)")
	modelName := fs.String("model", "tiny", "model preset")
	layers := fs.Int("layers", 2, "stack depth (0 = full paper depth)")
	seed := fs.Int64("seed", 1, "shared weight seed")
	strategy := fs.String("strategy", "voltage", "mesh-mode strategy: voltage | tensor-parallel | single (must match the worker fleet)")
	bandwidth := fs.Float64("bandwidth", 0, "emulated link bandwidth in Mbps (0 = unshaped)")
	deviceFlops := fs.Float64("device-flops", 0, "emulated per-device compute rate in MAC/s (0 = unpaced)")
	opTimeout := fs.Duration("op-timeout", 0, "per-message watchdog deadline (0 = none)")
	requestTimeout := fs.Duration("request-timeout", 0, "engine-level per-request deadline (0 = none)")
	retries := fs.Int("retries", 0, "degraded-mode retry budget (0 = fail fast)")
	traceReq := fs.Bool("trace", false, "attach span traces to every request")
	engineQueue := fs.Int("engine-queue", 0, "engine admission-queue depth (0 = default; gateways set this low to avoid double-buffering)")
	maxBatch := fs.Int("max-batch", 0, "max generate sequences fused per decode step (0 = default 8, 1 = serial)")
	batchWindow := fs.Duration("batch-window", 0, "how long the first sequence of a batch waits for others to coalesce (0 = start immediately)")
	qInteractive := fs.Int("queue-interactive", 0, "interactive class queue depth (0 = default 64)")
	qBatch := fs.Int("queue-batch", 0, "batch class queue depth (0 = default 16)")
	gwWorkers := fs.Int("gateway-workers", 0, "concurrent requests in service (0 = default 4)")
	burst := fs.Int("interactive-burst", 0, "interactive dispatches per batch dispatch under contention (0 = default 4)")
	defaultDeadline := fs.Duration("default-deadline", 0, "deadline applied to requests that carry none (0 = unbounded)")
	estInteractive := fs.Duration("estimate-interactive", 0, "expected interactive service time for deadline shedding")
	estBatch := fs.Duration("estimate-batch", 0, "expected batch service time for deadline shedding")
	chaosKillRank := fs.Int("chaos-kill-rank", -1, "fault injection (-local only): worker rank whose transport dies mid-run (-1 = none; pair with -chaos-kill-after and -retries)")
	chaosKillAfter := fs.Int64("chaos-kill-after", 0, "fault injection: the doomed rank's n-th transport receive, and every later one, fails")
	chaosSlowRank := fs.Int("chaos-slow-rank", -1, "fault injection (-local only): worker rank to throttle by -chaos-slow-factor (-1 = none; requires -device-flops)")
	chaosSlowFactor := fs.Float64("chaos-slow-factor", 0, "fault injection: divide the slow rank's emulated compute rate by this factor (> 1)")
	adapt := fs.Bool("adapt", false, "enable the closed-loop re-partitioning controller (-local only)")
	adaptInterval := fs.Duration("adapt-interval", 0, "controller evaluation period (0 = default 50ms)")
	adaptThreshold := fs.Float64("adapt-threshold", 0, "minimum predicted round-time gain to arm a re-partition (0 = default 0.10)")
	adaptEvals := fs.Int("adapt-evals", 0, "consecutive over-threshold evaluations before a move (0 = default 3)")
	adaptCooldown := fs.Duration("adapt-cooldown", 0, "minimum spacing between installed schemes (0 = default 2s)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful-drain budget on shutdown")
	hold := fs.Duration("hold", 0, "exit (with drain) after this long instead of waiting for a signal (tests, smoke)")
	meshTimeout := fs.Duration("mesh-timeout", 10*time.Minute, "TCP mesh formation budget")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := model.Presets(*modelName)
	if err != nil {
		return err
	}
	if *layers > 0 {
		cfg = cfg.Scaled(*layers)
	}
	tensor.SetWorkers(1) // single-CPU device emulation

	// Assemble the backend: in-process engine or TCP-mesh terminal.
	var (
		backend  server.Backend
		registry *metrics.Registry
		closers  []func()
	)
	if *addrs != "" {
		list := strings.Split(*addrs, ",")
		if len(list) < 2 {
			return fmt.Errorf("need at least one worker and one terminal in -addrs")
		}
		ctx, cancel := context.WithTimeout(context.Background(), *meshTimeout)
		defer cancel()
		mb, err := newMeshBackend(ctx, cfg, list, *strategy, *seed, *bandwidth, *opTimeout)
		if err != nil {
			return err
		}
		closers = append(closers, mb.close)
		backend = mb
		registry = metrics.NewRegistry()
		metrics.RegisterRuntime(registry)
		fmt.Fprintf(w, "mesh formed: terminal of %d workers\n", len(list)-1)
	} else {
		if *local < 1 {
			return fmt.Errorf("-local %d < 1", *local)
		}
		eng, err := core.New(cfg, *local, cluster.Options{
			Profile:         netem.Profile{BandwidthMbps: *bandwidth},
			Seed:            *seed,
			DeviceFlops:     *deviceFlops,
			OpTimeout:       *opTimeout,
			RequestTimeout:  *requestTimeout,
			MaxRetries:      *retries,
			TraceRequests:   *traceReq,
			QueueDepth:      *engineQueue,
			MaxBatch:        *maxBatch,
			BatchWindow:     *batchWindow,
			Adapt:           *adapt,
			AdaptInterval:   *adaptInterval,
			AdaptThreshold:  *adaptThreshold,
			AdaptEvals:      *adaptEvals,
			AdaptCooldown:   *adaptCooldown,
			ChaosSlowRank:   *chaosSlowRank,
			ChaosSlowFactor: *chaosSlowFactor,
			WrapTransport:   chaosWrap(*chaosKillRank, *chaosKillAfter),
			// Dump the flight recorder to stderr on request failures, so a
			// crashed deployment leaves its last-moments diagnostics in the
			// process log even when nobody curled /debug/flight in time.
			FlightSink: os.Stderr,
		})
		if err != nil {
			return err
		}
		closers = append(closers, eng.Close)
		backend = eng
		registry = eng.Cluster().MetricsRegistry()
		if registry == nil {
			registry = metrics.NewRegistry()
		}
	}
	defer func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}()

	gw, err := server.New(backend, server.Options{
		Registry: registry,
		Sched: sched.Options{
			InteractiveDepth: *qInteractive,
			BatchDepth:       *qBatch,
			Workers:          *gwWorkers,
			InteractiveBurst: *burst,
			DefaultDeadline:  *defaultDeadline,
		},
		EstimateInteractive: *estInteractive,
		EstimateBatch:       *estBatch,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: gw.Handler(), ReadHeaderTimeout: 5 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Fprintf(w, "gateway listening on %s\n", ln.Addr())

	if *admin != "" {
		adminSrv, err := metrics.StartAdmin(*admin, registry, func() metrics.Health {
			ranks := backend.Health()
			ok := len(ranks) == 0
			for _, rh := range ranks {
				if rh.State != cluster.Unhealthy {
					ok = true
				}
			}
			return metrics.Health{OK: ok}
		})
		if err != nil {
			return err
		}
		closers = append(closers, func() { _ = adminSrv.Close() })
		fmt.Fprintf(w, "admin listening on %s\n", adminSrv.Addr())
	}

	// Wait for a shutdown signal (or the -hold budget), then drain: stop
	// admitting, let in-flight work finish, stop the listener.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	var holdCh <-chan time.Time
	if *hold > 0 {
		holdCh = time.After(*hold)
	}
	select {
	case sig := <-sigCh:
		fmt.Fprintf(w, "%v: draining\n", sig)
	case <-holdCh:
		fmt.Fprintf(w, "hold elapsed: draining\n")
	case err := <-serveErr:
		return fmt.Errorf("gateway listener: %w", err)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := gw.Drain(drainCtx); err != nil {
		fmt.Fprintf(w, "drain incomplete: %v\n", err)
	} else {
		fmt.Fprintln(w, "drained")
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		_ = srv.Close()
	}
	<-serveErr
	return nil
}

// meshBackend drives classification requests through an existing
// voltage-worker TCP mesh, with this process as the terminal device. The
// hand-rolled mesh protocol is not request-tagged, so requests are
// serialized; the gateway's queues still provide admission control and
// shedding in front of it.
type meshBackend struct {
	cfg      model.Config
	peer     comm.Peer
	m        *model.Model
	scheme   *partition.Scheme
	k        int
	strategy string
	nextID   atomic.Uint64

	mu sync.Mutex // one request on the mesh at a time
}

func newMeshBackend(ctx context.Context, cfg model.Config, addrs []string, strategy string, seed int64, bandwidth float64, opTimeout time.Duration) (*meshBackend, error) {
	switch strategy {
	case "voltage", "single", "tensor-parallel", "tp":
	default:
		return nil, fmt.Errorf("unknown mesh strategy %q", strategy)
	}
	k := len(addrs) - 1
	m, err := model.NewRandom(cfg, seed)
	if err != nil {
		return nil, err
	}
	scheme, err := partition.Even(k)
	if err != nil {
		return nil, err
	}
	mesh, err := comm.NewTCPMesh(ctx, k, addrs, netem.Profile{BandwidthMbps: bandwidth})
	if err != nil {
		return nil, err
	}
	peer := comm.WithOpTimeout(comm.NewFramed(mesh), opTimeout)
	return &meshBackend{
		cfg: cfg, peer: peer, m: m, scheme: scheme, k: k, strategy: strategy,
	}, nil
}

// close shuts the worker fleet down (empty frame per worker) and closes
// the mesh.
func (b *meshBackend) close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for r := 0; r < b.k; r++ {
		_ = b.peer.Send(ctx, r, []byte{})
	}
	_ = b.peer.Close()
}

func (b *meshBackend) Config() model.Config { return b.cfg }

// Health: the raw mesh has no health tracker; report every rank healthy so
// the scheduler applies no degradation shedding.
func (b *meshBackend) Health() []cluster.RankHealth { return nil }

func (b *meshBackend) GenerateStream(context.Context, []int, int, func(int)) (*cluster.GenerateResult, error) {
	return nil, fmt.Errorf("voltage-server: generation requires the -local engine (mesh workers serve classification)")
}

// ClassifyTokens runs one request through the mesh: embed, broadcast,
// collect per the fleet's strategy, classify. The deployment's workers
// must have been started with the matching -strategy.
func (b *meshBackend) ClassifyTokens(ctx context.Context, strategy cluster.Strategy, ids []int) (*core.Prediction, error) {
	want, err := parseMeshStrategy(b.strategy)
	if err != nil {
		return nil, err
	}
	if strategy != want {
		return nil, fmt.Errorf("voltage-server: mesh fleet runs %v, request asked %v", want, strategy)
	}
	x, err := b.m.Embed.EmbedTokens(ids)
	if err != nil {
		return nil, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	start := time.Now()
	blob := tensor.Encode(nil, x)
	for r := 0; r < b.k; r++ {
		if err := b.peer.Send(ctx, r, blob); err != nil {
			return nil, err
		}
	}
	var out *tensor.Matrix
	switch b.strategy {
	case "single", "tensor-parallel", "tp":
		got, err := b.peer.Recv(ctx, 0)
		if err != nil {
			return nil, err
		}
		if out, _, err = tensor.Decode(got); err != nil {
			return nil, err
		}
		comm.ReleaseBuffer(got)
	default: // voltage: assemble partitions in rank order
		ranges, err := b.scheme.Ranges(x.Rows())
		if err != nil {
			return nil, err
		}
		out = tensor.New(x.Rows(), x.Cols())
		for r := 0; r < b.k; r++ {
			got, err := b.peer.Recv(ctx, r)
			if err != nil {
				return nil, err
			}
			part, _, err := tensor.Decode(got)
			if err != nil {
				return nil, err
			}
			comm.ReleaseBuffer(got)
			if ranges[r].Empty() {
				continue
			}
			if err := out.SetRowSlice(ranges[r].From, part); err != nil {
				return nil, err
			}
		}
	}
	latency := time.Since(start)
	logits, err := b.m.Classifier.Logits(out)
	if err != nil {
		return nil, err
	}
	return &core.Prediction{
		Class:  model.Argmax(logits),
		Logits: logits,
		Run: &cluster.Result{
			ID:       b.nextID.Add(1),
			Output:   out,
			Latency:  latency,
			Strategy: want,
			Attempts: 1,
		},
	}, nil
}

// chaosWrap builds the transport hook for -chaos-kill-rank: the doomed
// rank's n-th receive (and every later one) fails, emulating a device that
// dies at a deterministic protocol step — CI's end-to-end worker-kill smoke
// drives the batched recovery path with it.
func chaosWrap(rank int, after int64) func(int, comm.Peer) comm.Peer {
	if rank < 0 || after <= 0 {
		return nil
	}
	return func(r int, p comm.Peer) comm.Peer {
		if r != rank {
			return p
		}
		return &comm.FlakyPeer{Inner: p, FailRecvAfter: after}
	}
}

// parseMeshStrategy maps the fleet strategy flag to the cluster enum.
func parseMeshStrategy(s string) (cluster.Strategy, error) {
	switch s {
	case "voltage", "":
		return cluster.StrategyVoltage, nil
	case "single":
		return cluster.StrategySingle, nil
	case "tensor-parallel", "tp":
		return cluster.StrategyTensorParallel, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", s)
	}
}
