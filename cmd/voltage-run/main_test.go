package main

import (
	"strings"
	"testing"
)

func TestRunTinyCompare(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-model", "tiny", "-k", "2", "-compare", "-words", "20"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"[single]", "[voltage]", "[tensor-parallel]", "class="} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunSingleStrategy(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-model", "tiny", "-k", "3", "-strategy", "voltage", "-text", "hello world"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "[voltage]") {
		t.Fatalf("output: %s", sb.String())
	}
}

func TestRunTPAlias(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-model", "tiny", "-k", "2", "-strategy", "tp", "-words", "8"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "[tensor-parallel]") {
		t.Fatalf("output: %s", sb.String())
	}
}

func TestRunGeneration(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-model", "tiny-decoder", "-k", "2", "-generate", "3", "-words", "5"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "generated 3 tokens") {
		t.Fatalf("output: %s", sb.String())
	}
}

func TestRunVision(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-model", "tiny-vision", "-k", "2", "-strategy", "voltage"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "class=") {
		t.Fatalf("output: %s", sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-model", "bogus"}, &sb); err == nil {
		t.Fatal("want error for unknown model")
	}
	if err := run([]string{"-model", "tiny", "-strategy", "bogus"}, &sb); err == nil {
		t.Fatal("want error for unknown strategy")
	}
	if err := run([]string{"-definitely-not-a-flag"}, &sb); err == nil {
		t.Fatal("want error for bad flag")
	}
}

func TestParseStrategy(t *testing.T) {
	for _, name := range []string{"voltage", "tensor-parallel", "tp", "single"} {
		if _, err := parseStrategy(name); err != nil {
			t.Errorf("parseStrategy(%q): %v", name, err)
		}
	}
	if _, err := parseStrategy("nope"); err == nil {
		t.Fatal("want error")
	}
}

func TestRunWordClamping(t *testing.T) {
	// tiny's MaxSeq is 64; -words 500 must be clamped, not fail.
	var sb strings.Builder
	if err := run([]string{"-model", "tiny", "-k", "2", "-words", "500"}, &sb); err != nil {
		t.Fatal(err)
	}
}
