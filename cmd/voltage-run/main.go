// Command voltage-run serves one inference request on an emulated edge
// cluster and reports the latency and communication breakdown — the
// smallest end-to-end demonstration of the system.
//
// Usage:
//
//	voltage-run -model bert -k 4 -strategy voltage -text "an example request"
//	voltage-run -model vit  -k 6 -strategy tensor-parallel
//	voltage-run -model gpt2 -k 3 -strategy voltage -generate 8 -text "a prompt"
//	voltage-run -model bert -k 4 -words 200 -compare
//
// By default the model runs at a 2-layer depth so full-width models finish
// quickly under the pure-Go kernels; -layers 0 restores the paper depth.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"voltage"
	"voltage/internal/tokenizer"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "voltage-run:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("voltage-run", flag.ContinueOnError)
	modelName := fs.String("model", "bert", "model preset (bert | gpt2 | vit | tiny | ...)")
	k := fs.Int("k", 4, "number of worker devices")
	strategyName := fs.String("strategy", "voltage", "voltage | tensor-parallel | single")
	text := fs.String("text", "", "input text (token models)")
	words := fs.Int("words", 200, "synthetic word count when -text is empty")
	layers := fs.Int("layers", 2, "stack depth (0 = full paper depth)")
	bandwidth := fs.Float64("bandwidth", 500, "link bandwidth in Mbps (0 = unlimited)")
	generate := fs.Int("generate", 0, "decode this many tokens (decoder models)")
	compare := fs.Bool("compare", false, "run all three strategies and compare")
	seed := fs.Int64("seed", 1, "weight seed")
	timeout := fs.Duration("timeout", 10*time.Minute, "request time budget")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg, err := voltage.Preset(*modelName)
	if err != nil {
		return err
	}
	if *layers > 0 {
		cfg = cfg.Scaled(*layers)
	}
	strategy, err := parseStrategy(*strategyName)
	if err != nil {
		return err
	}

	// Single-threaded math per emulated device, as in the paper's testbed.
	prev := voltage.SetComputeWorkers(1)
	defer voltage.SetComputeWorkers(prev)

	engine, err := voltage.NewEngine(cfg, *k, voltage.ClusterOptions{
		Profile: voltage.NetworkProfile{BandwidthMbps: *bandwidth, Latency: 200 * time.Microsecond},
		Seed:    *seed,
	})
	if err != nil {
		return err
	}
	defer engine.Close()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	fmt.Fprintf(w, "model=%s layers=%d K=%d bandwidth=%.0fMbps\n", cfg.Name, cfg.Layers, *k, *bandwidth)

	if *compare {
		for _, s := range []voltage.Strategy{voltage.StrategySingle, voltage.StrategyVoltage, voltage.StrategyTensorParallel} {
			if err := serveOne(ctx, w, engine, s, cfg, *text, *words, *generate); err != nil {
				return err
			}
		}
		return nil
	}
	return serveOne(ctx, w, engine, strategy, cfg, *text, *words, *generate)
}

func parseStrategy(s string) (voltage.Strategy, error) {
	switch s {
	case "voltage":
		return voltage.StrategyVoltage, nil
	case "tensor-parallel", "tp":
		return voltage.StrategyTensorParallel, nil
	case "single":
		return voltage.StrategySingle, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", s)
	}
}

func serveOne(ctx context.Context, w io.Writer, engine *voltage.Engine, strategy voltage.Strategy,
	cfg voltage.Config, text string, words, generate int) error {
	switch {
	case cfg.Kind.String() == "vision":
		im := voltage.RandomImage(99, cfg.Channels, cfg.ImageSize)
		pred, err := engine.ClassifyImage(ctx, strategy, im)
		if err != nil {
			return err
		}
		report(w, strategy, pred)
	case generate > 0:
		ids, err := encode(cfg, text, words)
		if err != nil {
			return err
		}
		gen, err := engine.Generate(ctx, strategy, ids, generate)
		if err != nil {
			return err
		}
		var total time.Duration
		var bytes int64
		for _, r := range gen.Runs {
			total += r.Latency
			bytes += r.TotalBytesSent()
		}
		fmt.Fprintf(w, "[%s] generated %d tokens in %v (%d worker bytes): %v\n",
			strategy, len(gen.Tokens)-len(ids), total.Round(time.Millisecond), bytes,
			gen.Tokens[len(ids):])
	default:
		ids, err := encode(cfg, text, words)
		if err != nil {
			return err
		}
		pred, err := engine.ClassifyTokens(ctx, strategy, ids)
		if err != nil {
			return err
		}
		report(w, strategy, pred)
	}
	return nil
}

func encode(cfg voltage.Config, text string, words int) ([]int, error) {
	tok, err := tokenizer.New(cfg.VocabSize)
	if err != nil {
		return nil, err
	}
	if text != "" {
		return tok.Encode(text), nil
	}
	n := words
	if n+2 > cfg.MaxSeq {
		n = cfg.MaxSeq - 2
	}
	return tok.EncodeWords(n, 7), nil
}

func report(w io.Writer, strategy voltage.Strategy, pred *voltage.Prediction) {
	fmt.Fprintf(w, "[%s] class=%d latency=%v worker-bytes=%d\n",
		strategy, pred.Class, pred.Run.Latency.Round(time.Millisecond), pred.Run.TotalBytesSent())
}
