#!/usr/bin/env bash
# Repository CI gate: vet, build, full test suite, then the concurrency
# suites under the race detector (the serving runtime's correctness claims —
# overlapping requests, per-request stat scopes, pooled buffers — only mean
# something raced).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go test -race ./internal/cluster/... ./internal/comm/..."
go test -race ./internal/cluster/... ./internal/comm/...

echo "CI OK"
