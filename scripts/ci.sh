#!/usr/bin/env bash
# Repository CI gate: vet, build, full test suite, then the concurrency
# suites under the race detector (the serving runtime's correctness claims —
# overlapping requests, per-request stat scopes, pooled buffers — only mean
# something raced), and finally the chaos stage: the fault-injection suite
# twice under -race, since its bugs are scheduling-dependent by nature.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go vet ./cmd/..."
go vet ./cmd/...

echo "== go build ./..."
go build ./...

echo "== go build ./cmd/..."
go build ./cmd/...

echo "== go test ./..."
go test ./...

echo "== go test -race ./internal/cluster/... ./internal/comm/... ./internal/trace/... ./internal/obs/... ./internal/adapt/... ./internal/balance/..."
go test -race ./internal/cluster/... ./internal/comm/... ./internal/trace/... ./internal/obs/... ./internal/adapt/... ./internal/balance/...

echo "== chaos: go test -race -count=2 (fault-injection suite)"
go test -race -count=2 -run \
    'Chaos|Killed|Dropped|Corrupt|Stalled|AllWorkersDead|Probation|NonRetryable|Flaky|OpTimeout|VerifyFrame|Framed|TCPSend|DecodeHostile|DecodeDeclared' \
    ./internal/cluster/... ./internal/comm/... ./internal/tensor/...

echo "== chaos: go test -race -count=3 (batched recovery suite)"
# The batched fault-tolerance claims — a worker killed mid-fused-step parks
# the co-batched survivors and resumes them bit-identically — are
# scheduling-dependent; run them three times under the race detector.
go test -race -count=3 -run 'TestBatchedGenerate|TestBatchWindow' ./internal/cluster/

echo "== admin smoke: worker -local serves /metrics and /healthz"
# Start an in-process engine with the admin listener, serve two requests,
# and hold; scrape the listener while it holds and require the serving
# metric families the dashboards depend on.
ADMIN_ADDR="127.0.0.1:19155"
ADMIN_LOG="$(mktemp)"
go run ./cmd/voltage-worker -local 2 -model tiny -requests 2 -words 8 \
    -admin "$ADMIN_ADDR" -hold 30s -timeout 2m >"$ADMIN_LOG" 2>&1 &
ADMIN_PID=$!
trap 'kill "$ADMIN_PID" 2>/dev/null || true; rm -f "$ADMIN_LOG"' EXIT
METRICS=""
for _ in $(seq 1 100); do
    if METRICS="$(curl -fsS "http://$ADMIN_ADDR/metrics" 2>/dev/null)" \
        && grep -q 'voltage_requests_total{outcome="ok"} 2' <<<"$METRICS"; then
        break
    fi
    METRICS=""
    sleep 0.3
done
if [ -z "$METRICS" ]; then
    echo "admin smoke: listener never served 2 completed requests" >&2
    cat "$ADMIN_LOG" >&2
    exit 1
fi
for family in \
    'voltage_request_latency_seconds_bucket' \
    'voltage_comm_bytes_sent_total{rank="terminal"}' \
    'voltage_errors_total{type="timeout"}' \
    'voltage_health_state{rank="0"}' \
    'voltage_queue_length'; do
    grep -qF "$family" <<<"$METRICS" || {
        echo "admin smoke: /metrics missing $family" >&2
        exit 1
    }
done
curl -fsS "http://$ADMIN_ADDR/healthz" | grep -q '"ok":true' || {
    echo "admin smoke: /healthz not ok" >&2
    exit 1
}
kill "$ADMIN_PID" 2>/dev/null || true
wait "$ADMIN_PID" 2>/dev/null || true

echo "== gateway smoke: voltage-server -local serves /v1/classify, /metrics, and sheds"
# Start the inference gateway over a 3-worker in-process engine with a
# deliberately tiny interactive queue (cap 1, one worker, paced compute),
# serve one classification, then fire a burst and require at least one
# typed 429 shed plus the gateway metric families.
GW_ADDR="127.0.0.1:19156"
GW_LOG="$(mktemp)"
go run ./cmd/voltage-server -local 3 -model tiny -layers 1 -listen "$GW_ADDR" \
    -queue-interactive 1 -gateway-workers 1 -device-flops 2e4 \
    -hold 60s -drain-timeout 5s >"$GW_LOG" 2>&1 &
GW_PID=$!
trap 'kill "$ADMIN_PID" "$GW_PID" 2>/dev/null || true; rm -f "$ADMIN_LOG" "$GW_LOG"' EXIT
CLASSIFY=""
for _ in $(seq 1 100); do
    if CLASSIFY="$(curl -fsS -X POST "http://$GW_ADDR/v1/classify" \
        -d '{"tokens":[1,2,3,4]}' 2>/dev/null)" \
        && grep -q '"logits"' <<<"$CLASSIFY"; then
        break
    fi
    CLASSIFY=""
    sleep 0.3
done
if [ -z "$CLASSIFY" ]; then
    echo "gateway smoke: /v1/classify never answered" >&2
    cat "$GW_LOG" >&2
    exit 1
fi
# Burst past the queue cap: with one paced worker and a cap-1 queue, at
# least one of six concurrent requests must shed with HTTP 429.
BURST_CODES="$(for _ in $(seq 1 6); do
    curl -s -o /dev/null -w '%{http_code}\n' -X POST \
        "http://$GW_ADDR/v1/classify" -d '{"tokens":[1,2,3,4]}' &
done; wait)"
grep -q '429' <<<"$BURST_CODES" || {
    echo "gateway smoke: burst produced no 429 shed (codes: $BURST_CODES)" >&2
    cat "$GW_LOG" >&2
    exit 1
}
GW_METRICS="$(curl -fsS "http://$GW_ADDR/metrics")"
for family in \
    'voltage_gateway_queue_depth{class="interactive"}' \
    'voltage_gateway_queue_depth{class="batch"}' \
    'voltage_gateway_shed_total{cause="queue_full"}' \
    'voltage_gateway_queue_wait_seconds_bucket' \
    'voltage_requests_total'; do
    grep -qF "$family" <<<"$GW_METRICS" || {
        echo "gateway smoke: /metrics missing $family" >&2
        exit 1
    }
done
curl -fsS "http://$GW_ADDR/v1/queue" | grep -q '"interactive"' || {
    echo "gateway smoke: /v1/queue missing class report" >&2
    exit 1
}
kill "$GW_PID" 2>/dev/null || true
wait "$GW_PID" 2>/dev/null || true

echo "== batched-decode smoke: concurrent /v1/generate streams fuse into one batch"
# Start the gateway over a decoder engine with continuous batching on and a
# generous coalescing window, fire 4 concurrent streaming generates, require
# every stream to complete, then require the batch metrics to show fused
# steps at width > 1 (the streams actually co-batched, not serialized).
BD_ADDR="127.0.0.1:19157"
BD_LOG="$(mktemp)"
go run ./cmd/voltage-server -local 3 -model tiny-decoder -listen "$BD_ADDR" \
    -gateway-workers 4 -max-batch 8 -batch-window 200ms \
    -hold 60s -drain-timeout 5s >"$BD_LOG" 2>&1 &
BD_PID=$!
trap 'kill "$ADMIN_PID" "$GW_PID" "$BD_PID" 2>/dev/null || true; rm -f "$ADMIN_LOG" "$GW_LOG" "$BD_LOG"' EXIT
BD_READY=""
for _ in $(seq 1 100); do
    if curl -fsS "http://$BD_ADDR/healthz" 2>/dev/null | grep -q '"ok":true'; then
        BD_READY=1
        break
    fi
    sleep 0.3
done
if [ -z "$BD_READY" ]; then
    echo "batched-decode smoke: gateway never became healthy" >&2
    cat "$BD_LOG" >&2
    exit 1
fi
BD_DIR="$(mktemp -d)"
(
    for i in 1 2 3 4; do
        curl -sN -X POST "http://$BD_ADDR/v1/generate" \
            -d "{\"prompt\":[$i,$((i+3)),$((i+7))],\"steps\":8}" \
            >"$BD_DIR/stream$i" &
    done
    wait
)
for i in 1 2 3 4; do
    grep -q '"done":true' "$BD_DIR/stream$i" || {
        echo "batched-decode smoke: stream $i never completed" >&2
        cat "$BD_DIR/stream$i" "$BD_LOG" >&2
        exit 1
    }
    grep -q '"error"' "$BD_DIR/stream$i" && {
        echo "batched-decode smoke: stream $i reported an error" >&2
        cat "$BD_DIR/stream$i" >&2
        exit 1
    }
done
rm -rf "$BD_DIR"
BD_METRICS="$(curl -fsS "http://$BD_ADDR/metrics")"
for family in \
    'voltage_batch_size_count' \
    'voltage_fused_steps_total' \
    'voltage_batch_joins_total' \
    'voltage_batch_wait_seconds_count'; do
    grep -qF "$family" <<<"$BD_METRICS" || {
        echo "batched-decode smoke: /metrics missing $family" >&2
        exit 1
    }
done
# Mean fused width > 1 ⟺ histogram sum exceeds its count.
awk '
    /^voltage_batch_size_sum /   { sum = $2 }
    /^voltage_batch_size_count / { count = $2 }
    END {
        if (count == 0 || sum <= count) {
            printf "batched-decode smoke: mean batch width %.3f over %d steps, want > 1\n", \
                (count ? sum / count : 0), count > "/dev/stderr"
            exit 1
        }
    }' <<<"$BD_METRICS"
kill "$BD_PID" 2>/dev/null || true
wait "$BD_PID" 2>/dev/null || true

echo "== batched-chaos smoke: worker killed mid-batch, streams still complete"
# Same concurrent-generate workload, but rank 1's transport dies after 21
# receives — past the 4 co-batched prefills (4 receives each), into the
# fused decode steps (1 receive per step). With -retries 2 the batcher must
# blame rank 1, re-slice over the survivors, and resume: every stream still
# finishes cleanly and /metrics records the recovery.
BC_ADDR="127.0.0.1:19158"
BC_LOG="$(mktemp)"
go run ./cmd/voltage-server -local 3 -model tiny-decoder -listen "$BC_ADDR" \
    -gateway-workers 4 -max-batch 8 -batch-window 200ms -retries 2 \
    -chaos-kill-rank 1 -chaos-kill-after 21 \
    -hold 60s -drain-timeout 5s >"$BC_LOG" 2>&1 &
BC_PID=$!
trap 'kill "$ADMIN_PID" "$GW_PID" "$BD_PID" "$BC_PID" 2>/dev/null || true; rm -f "$ADMIN_LOG" "$GW_LOG" "$BD_LOG" "$BC_LOG"' EXIT
BC_READY=""
for _ in $(seq 1 100); do
    if curl -fsS "http://$BC_ADDR/healthz" 2>/dev/null | grep -q '"ok":true'; then
        BC_READY=1
        break
    fi
    sleep 0.3
done
if [ -z "$BC_READY" ]; then
    echo "batched-chaos smoke: gateway never became healthy" >&2
    cat "$BC_LOG" >&2
    exit 1
fi
BC_DIR="$(mktemp -d)"
(
    for i in 1 2 3 4; do
        curl -sN -X POST "http://$BC_ADDR/v1/generate" \
            -d "{\"prompt\":[$i,$((i+3)),$((i+7))],\"steps\":8}" \
            >"$BC_DIR/stream$i" &
    done
    wait
)
BC_DONE=0
for i in 1 2 3 4; do
    if grep -q '"done":true' "$BC_DIR/stream$i" && ! grep -q '"error"' "$BC_DIR/stream$i"; then
        BC_DONE=$((BC_DONE + 1))
    fi
done
if [ "$BC_DONE" -lt 1 ]; then
    echo "batched-chaos smoke: no stream survived the mid-batch worker kill" >&2
    cat "$BC_DIR"/stream* "$BC_LOG" >&2
    exit 1
fi
# The recovery must be visible on the stream tails and the metrics: at
# least one sequence reports retries, and the recovery counter moved.
grep -hq '"retries":' "$BC_DIR"/stream* || {
    echo "batched-chaos smoke: no stream reported retries on its done line" >&2
    cat "$BC_DIR"/stream* >&2
    exit 1
}
rm -rf "$BC_DIR"
BC_METRICS="$(curl -fsS "http://$BC_ADDR/metrics")"
for family in \
    'voltage_batch_recoveries_total' \
    'voltage_batch_seqs_resumed_total'; do
    grep -E "^${family}.* [1-9]" <<<"$BC_METRICS" >/dev/null || {
        echo "batched-chaos smoke: /metrics $family never moved" >&2
        grep -F "$family" <<<"$BC_METRICS" >&2 || true
        exit 1
    }
done
kill "$BC_PID" 2>/dev/null || true
wait "$BC_PID" 2>/dev/null || true

echo "== load smoke: voltage-load replays a seeded mixed trace, summary schema-checked"
# Start a batching gateway, replay the checked-in 2-second mixed-class
# trace with the load harness, and gate on the harness's own checks:
# -require-served fails unless both classes completed requests, and -check
# validates the summary JSON against the harness schema (the same Go
# helper that guards BENCH_<pr>.json files — no external deps).
LS_ADDR="127.0.0.1:19159"
LS_LOG="$(mktemp)"
LS_SUM="$(mktemp)"
go run ./cmd/voltage-server -local 3 -model tiny-decoder -listen "$LS_ADDR" \
    -gateway-workers 8 -max-batch 8 -batch-window 2ms \
    -hold 120s -drain-timeout 5s >"$LS_LOG" 2>&1 &
LS_PID=$!
trap 'kill "$ADMIN_PID" "$GW_PID" "$BD_PID" "$BC_PID" "$LS_PID" 2>/dev/null || true; rm -f "$ADMIN_LOG" "$GW_LOG" "$BD_LOG" "$BC_LOG" "$LS_LOG" "$LS_SUM"' EXIT
LS_READY=""
for _ in $(seq 1 100); do
    if curl -fsS "http://$LS_ADDR/healthz" 2>/dev/null | grep -q '"ok":true'; then
        LS_READY=1
        break
    fi
    sleep 0.3
done
if [ -z "$LS_READY" ]; then
    echo "load smoke: gateway never became healthy" >&2
    cat "$LS_LOG" >&2
    exit 1
fi
go run ./cmd/voltage-load -trace scripts/bench/trace-smoke.json \
    -target "http://$LS_ADDR" -out "$LS_SUM" -require-served || {
    echo "load smoke: harness run failed" >&2
    cat "$LS_LOG" >&2
    exit 1
}
go run ./cmd/voltage-load -check "$LS_SUM" || {
    echo "load smoke: summary JSON failed the schema check" >&2
    cat "$LS_SUM" >&2
    exit 1
}
kill "$LS_PID" 2>/dev/null || true
wait "$LS_PID" 2>/dev/null || true

echo "== obs smoke: flight recorder and Chrome trace export over a live gateway"
# Boot a batching gateway with request tracing on, replay the seeded smoke
# trace, then require the diagnostics surface: /debug/flight answers with
# recorded events, and the harness downloads a Chrome trace export that
# validates as trace JSON (-trace-out fails unless the document carries a
# traceEvents array).
OBS_ADDR="127.0.0.1:19160"
OBS_LOG="$(mktemp)"
OBS_SUM="$(mktemp)"
OBS_TRACE="$(mktemp)"
go run ./cmd/voltage-server -local 3 -model tiny-decoder -listen "$OBS_ADDR" \
    -gateway-workers 8 -max-batch 8 -batch-window 2ms -trace \
    -hold 120s -drain-timeout 5s >"$OBS_LOG" 2>&1 &
OBS_PID=$!
trap 'kill "$ADMIN_PID" "$GW_PID" "$BD_PID" "$BC_PID" "$LS_PID" "$OBS_PID" 2>/dev/null || true; rm -f "$ADMIN_LOG" "$GW_LOG" "$BD_LOG" "$BC_LOG" "$LS_LOG" "$LS_SUM" "$OBS_LOG" "$OBS_SUM" "$OBS_TRACE"' EXIT
OBS_READY=""
for _ in $(seq 1 100); do
    if curl -fsS "http://$OBS_ADDR/healthz" 2>/dev/null | grep -q '"ok":true'; then
        OBS_READY=1
        break
    fi
    sleep 0.3
done
if [ -z "$OBS_READY" ]; then
    echo "obs smoke: gateway never became healthy" >&2
    cat "$OBS_LOG" >&2
    exit 1
fi
go run ./cmd/voltage-load -trace scripts/bench/trace-smoke.json \
    -target "http://$OBS_ADDR" -out "$OBS_SUM" -require-served \
    -trace-out "$OBS_TRACE" || {
    echo "obs smoke: harness run or trace export failed" >&2
    cat "$OBS_LOG" >&2
    exit 1
}
grep -q '"traceEvents"' "$OBS_TRACE" || {
    echo "obs smoke: exported Chrome trace missing traceEvents" >&2
    head -c 500 "$OBS_TRACE" >&2
    exit 1
}
grep -q '"ph":"X"' "$OBS_TRACE" || {
    echo "obs smoke: exported Chrome trace carries no spans" >&2
    head -c 500 "$OBS_TRACE" >&2
    exit 1
}
OBS_FLIGHT="$(curl -fsS "http://$OBS_ADDR/debug/flight")"
grep -q '"kind"' <<<"$OBS_FLIGHT" || {
    echo "obs smoke: /debug/flight returned no events" >&2
    echo "$OBS_FLIGHT" >&2
    exit 1
}
grep -q '"profile"' <<<"$OBS_FLIGHT" || {
    echo "obs smoke: /debug/flight dump missing profile" >&2
    exit 1
}
kill "$OBS_PID" 2>/dev/null || true
wait "$OBS_PID" 2>/dev/null || true

echo "== adapt smoke: controller re-slices the partition around a throttled rank"
# Boot a paced 3-worker engine with rank 2 throttled 4x and the adaptive
# controller on a fast evaluation cadence, drive two rounds of concurrent
# generates so the fused-step profile sees the skew, then require the loop
# to have closed: voltage_repartitions_total moved and the slow rank's
# installed partition share shrank well below its even third.
AD_ADDR="127.0.0.1:19161"
AD_LOG="$(mktemp)"
go run ./cmd/voltage-server -local 3 -model tiny-decoder -listen "$AD_ADDR" \
    -gateway-workers 8 -max-batch 8 -batch-window 2ms \
    -device-flops 4e6 -chaos-slow-rank 2 -chaos-slow-factor 4 \
    -adapt -adapt-interval 25ms -adapt-evals 2 -adapt-cooldown 250ms \
    -hold 120s -drain-timeout 5s >"$AD_LOG" 2>&1 &
AD_PID=$!
trap 'kill "$ADMIN_PID" "$GW_PID" "$BD_PID" "$BC_PID" "$LS_PID" "$OBS_PID" "$AD_PID" 2>/dev/null || true; rm -f "$ADMIN_LOG" "$GW_LOG" "$BD_LOG" "$BC_LOG" "$LS_LOG" "$LS_SUM" "$OBS_LOG" "$OBS_SUM" "$OBS_TRACE" "$AD_LOG"' EXIT
AD_READY=""
for _ in $(seq 1 100); do
    if curl -fsS "http://$AD_ADDR/healthz" 2>/dev/null | grep -q '"ok":true'; then
        AD_READY=1
        break
    fi
    sleep 0.3
done
if [ -z "$AD_READY" ]; then
    echo "adapt smoke: gateway never became healthy" >&2
    cat "$AD_LOG" >&2
    exit 1
fi
for _ in 1 2; do
    (
        for i in 1 2 3 4; do
            curl -sN -X POST "http://$AD_ADDR/v1/generate" \
                -d "{\"prompt\":[$i,$((i+3)),$((i+7))],\"steps\":12}" >/dev/null &
        done
        wait
    )
done
# The controller keeps evaluating the stored profile after the burst
# drains; poll for the install.
AD_METRICS=""
for _ in $(seq 1 100); do
    AD_METRICS="$(curl -fsS "http://$AD_ADDR/metrics")"
    if awk '
        /^voltage_repartitions_total\{/ { moved += $2 }
        END { exit !(moved >= 1) }' <<<"$AD_METRICS"; then
        break
    fi
    AD_METRICS=""
    sleep 0.3
done
if [ -z "$AD_METRICS" ]; then
    echo "adapt smoke: voltage_repartitions_total never moved" >&2
    curl -fsS "http://$AD_ADDR/metrics" | grep -E 'repartition|partition_ratio' >&2 || true
    cat "$AD_LOG" >&2
    exit 1
fi
awk '
    /^voltage_partition_ratio\{rank="2"\} / { ratio = $2; seen = 1 }
    END {
        if (!seen || ratio >= 0.3) {
            printf "adapt smoke: slow rank partition share %.3f, want < 0.3\n", ratio > "/dev/stderr"
            exit 1
        }
    }' <<<"$AD_METRICS"
grep -qF 'voltage_batch_migrations_total' <<<"$AD_METRICS" || {
    echo "adapt smoke: /metrics missing voltage_batch_migrations_total" >&2
    exit 1
}
kill "$AD_PID" 2>/dev/null || true
wait "$AD_PID" 2>/dev/null || true

echo "CI OK"
