#!/usr/bin/env bash
# Repository CI gate: vet, build, full test suite, then the concurrency
# suites under the race detector (the serving runtime's correctness claims —
# overlapping requests, per-request stat scopes, pooled buffers — only mean
# something raced), and finally the chaos stage: the fault-injection suite
# twice under -race, since its bugs are scheduling-dependent by nature.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go vet ./cmd/..."
go vet ./cmd/...

echo "== go build ./..."
go build ./...

echo "== go build ./cmd/..."
go build ./cmd/...

echo "== go test ./..."
go test ./...

echo "== go test -race ./internal/cluster/... ./internal/comm/..."
go test -race ./internal/cluster/... ./internal/comm/...

echo "== chaos: go test -race -count=2 (fault-injection suite)"
go test -race -count=2 -run \
    'Chaos|Killed|Dropped|Corrupt|Stalled|AllWorkersDead|Probation|NonRetryable|Flaky|OpTimeout|VerifyFrame|Framed|TCPSend|DecodeHostile|DecodeDeclared' \
    ./internal/cluster/... ./internal/comm/... ./internal/tensor/...

echo "CI OK"
