// Package voltage is the public API of this repository: a from-scratch Go
// implementation of Voltage, the cross-device distributed inference system
// for transformer models from "When the Edge Meets Transformers:
// Distributed Inference with Transformer Models" (ICDCS 2024).
//
// Voltage partitions each transformer layer position-wise across K edge
// devices: every device computes the layer output for a slice of sequence
// positions, re-ordering the self-attention matrix products per Theorem 2
// so the per-device work is O(1/K), and a single All-Gather per layer
// re-assembles the activations — ¼ of tensor parallelism's communication.
//
// # Quick start
//
//	engine, err := voltage.NewEngine(voltage.Tiny(), 3, voltage.ClusterOptions{
//		Profile: voltage.EdgeDefaultProfile,
//	})
//	if err != nil { ... }
//	defer engine.Close()
//	pred, err := engine.ClassifyTokens(ctx, voltage.StrategyVoltage, tokens)
//
// The engine is a persistent serving runtime: Engine.SubmitTokens admits
// requests without blocking and overlapping requests are pipelined through
// the device mesh (see the "Serving runtime" section of DESIGN.md);
// ClassifyTokens is the blocking wrapper.
//
// The facade re-exports the stable surface of the internal packages; the
// examples/ directory shows complete programs for text classification,
// image classification, autoregressive generation and bandwidth studies.
package voltage

import (
	"voltage/internal/cluster"
	"voltage/internal/comm"
	"voltage/internal/core"
	"voltage/internal/costmodel"
	"voltage/internal/flopcount"
	"voltage/internal/harness"
	"voltage/internal/metrics"
	"voltage/internal/model"
	"voltage/internal/netem"
	"voltage/internal/partition"
	"voltage/internal/sched"
	"voltage/internal/server"
	"voltage/internal/tensor"
	"voltage/internal/trace"
)

// Re-exported core types. See the internal packages for full documentation.
type (
	// Engine is an end-to-end distributed inference deployment.
	Engine = core.Engine
	// Prediction is a classification result with its run report.
	Prediction = core.Prediction
	// PendingRun is an admitted (non-blocking) raw inference request.
	PendingRun = cluster.Pending
	// PendingPrediction is an admitted classification request; Wait
	// post-processes once the distributed run resolves.
	PendingPrediction = core.PendingPrediction
	// Generation is an autoregressive decoding result.
	Generation = core.Generation
	// Config describes a transformer architecture.
	Config = model.Config
	// Image is a dense input image for vision models.
	Image = model.Image
	// Strategy selects how inference is distributed.
	Strategy = cluster.Strategy
	// ClusterOptions configures the emulated device cluster.
	ClusterOptions = cluster.Options
	// RunResult reports one distributed inference (latency, traffic).
	RunResult = cluster.Result
	// NetworkProfile sets emulated bandwidth and latency.
	NetworkProfile = netem.Profile
	// PartitionScheme is a ratio vector over devices (§V-B).
	PartitionScheme = partition.Scheme
	// Matrix is the dense float32 matrix type of the tensor substrate.
	Matrix = tensor.Matrix
	// AttentionOrder identifies a self-attention computation order.
	AttentionOrder = flopcount.Order
	// CostSystem is the analytic latency model of a deployment.
	CostSystem = costmodel.System
	// RankHealth is one worker device's health snapshot.
	RankHealth = cluster.RankHealth
	// HealthState is a device's serving eligibility.
	HealthState = cluster.HealthState
	// MetricsSnapshot is a point-in-time copy of every metric series the
	// serving runtime maintains (Engine.Metrics).
	MetricsSnapshot = metrics.Snapshot
	// HistogramSnapshot is one histogram series in a MetricsSnapshot.
	HistogramSnapshot = metrics.HistogramSnapshot
	// MetricBucket is one bucket of a HistogramSnapshot.
	MetricBucket = metrics.Bucket
	// RequestTrace is one request's span trace, surfaced on
	// RunResult.Trace when ClusterOptions.TraceRequests is set.
	RequestTrace = trace.RequestTrace
	// TraceSpan is one timed step of one request on one device.
	TraceSpan = trace.Span
	// TracePhase classifies a span: compute, comm, or boundary.
	TracePhase = trace.Phase
	// GatewayServer is the HTTP inference gateway: admission scheduling
	// plus the /v1 JSON API over an Engine (internal/server).
	GatewayServer = server.Server
	// GatewayOptions configures a GatewayServer.
	GatewayOptions = server.Options
	// GatewayBackend is the engine interface a GatewayServer fronts;
	// *Engine implements it.
	GatewayBackend = server.Backend
	// Scheduler is the gateway's admission scheduler: bounded per-class
	// EDF queues with explicit load shedding (internal/sched).
	Scheduler = sched.Scheduler
	// SchedulerOptions configures a Scheduler.
	SchedulerOptions = sched.Options
	// SchedulerJob is one unit of admitted work.
	SchedulerJob = sched.Job
	// SchedulerStats is the scheduler's point-in-time queue report.
	SchedulerStats = sched.Stats
	// RequestClass is a request's SLO class (interactive or batch).
	RequestClass = sched.Class
)

// Request SLO classes of the admission scheduler.
const (
	// ClassInteractive is latency-sensitive work (classification).
	ClassInteractive = sched.Interactive
	// ClassBatch is throughput work (generation), first to shed.
	ClassBatch = sched.Batch
)

// Typed load-shedding errors of the gateway, matchable with errors.Is.
var (
	// ErrQueueFull rejects a request whose class queue is at capacity (429).
	ErrQueueFull = sched.ErrQueueFull
	// ErrDeadlineBeforeService rejects a request whose deadline would
	// expire before it could be served (429).
	ErrDeadlineBeforeService = sched.ErrDeadlineBeforeService
	// ErrDraining rejects new requests during graceful shutdown (503).
	ErrDraining = sched.ErrDraining
	// ErrDegraded sheds load because the cluster lost workers (503).
	ErrDegraded = sched.ErrDegraded
)

// NewGateway builds an HTTP inference gateway over backend and starts its
// admission scheduler; mount NewGateway(...).Handler() on any net/http
// server, or use the voltage-server binary.
func NewGateway(backend GatewayBackend, opts GatewayOptions) (*GatewayServer, error) {
	return server.New(backend, opts)
}

// Span phases of a RequestTrace.
const (
	// PhaseCompute is local tensor math (including emulated pacing).
	PhaseCompute = trace.PhaseCompute
	// PhaseComm is blocking collective communication.
	PhaseComm = trace.PhaseComm
	// PhaseBoundary is terminal input distribution / output collection.
	PhaseBoundary = trace.PhaseBoundary
	// PhaseQueue is admission-queue wait before any device touched the
	// request.
	PhaseQueue = trace.PhaseQueue
	// PhaseBatchWait is time a generate sequence waited to join the fused
	// decode batch (see ClusterOptions.MaxBatch).
	PhaseBatchWait = trace.PhaseBatchWait
)

// Device health states (see ClusterOptions.MaxRetries / ProbeAfter).
const (
	// DeviceHealthy serves requests normally.
	DeviceHealthy = cluster.Healthy
	// DeviceProbation is an unhealthy device being offered a probing request.
	DeviceProbation = cluster.Probation
	// DeviceUnhealthy is excluded from new requests.
	DeviceUnhealthy = cluster.Unhealthy
)

// Typed fault-tolerance errors, matchable with errors.Is on any failure a
// request resolves with.
var (
	// ErrTimeout marks a dropped or stalled message that a deadline resolved.
	ErrTimeout = comm.ErrTimeout
	// ErrCorrupt marks a frame whose checksum did not verify.
	ErrCorrupt = comm.ErrCorrupt
	// ErrInjected marks a fault injected by a test transport.
	ErrInjected = comm.ErrInjected
)

// Inference strategies.
const (
	// StrategySingle runs the whole model on one device.
	StrategySingle = cluster.StrategySingle
	// StrategyVoltage is the paper's position-wise partitioning.
	StrategyVoltage = cluster.StrategyVoltage
	// StrategyTensorParallel is the Megatron-style baseline.
	StrategyTensorParallel = cluster.StrategyTensorParallel
)

// EdgeDefaultProfile mirrors the paper's default 500 Mbps edge network.
var EdgeDefaultProfile = netem.EdgeDefault

// NewEngine builds a distributed inference engine over k emulated devices.
func NewEngine(cfg Config, k int, opts ClusterOptions) (*Engine, error) {
	return core.New(cfg, k, opts)
}

// Model presets (the paper's evaluation set plus small test variants).
var (
	// BERTLarge is BERT-Large-Uncased (24 layers, F=1024, H=16).
	BERTLarge = model.BERTLarge
	// GPT2 is the 12-layer GPT-2 decoder.
	GPT2 = model.GPT2
	// ViTBase is ViT-Base/16 for 224×224 images.
	ViTBase = model.ViTBase
	// Tiny is a 2-layer encoder for experiments and tests.
	Tiny = model.Tiny
	// TinyDecoder is a 2-layer causal decoder for experiments and tests.
	TinyDecoder = model.TinyDecoder
	// TinyVision is a 2-layer vision model for experiments and tests.
	TinyVision = model.TinyVision
)

// Preset resolves a model preset by name ("bert", "gpt2", "vit", ...).
func Preset(name string) (Config, error) { return model.Presets(name) }

// EvenScheme returns the uniform partition scheme over k devices.
func EvenScheme(k int) (*PartitionScheme, error) { return partition.Even(k) }

// WeightedScheme returns a scheme proportional to device weights
// (heterogeneous clusters, §V-B).
func WeightedScheme(weights []float64) (*PartitionScheme, error) {
	return partition.Weighted(weights)
}

// RandomImage generates a deterministic synthetic image for vision
// workloads.
func RandomImage(seed int64, channels, size int) *Image {
	return model.RandomImage(tensor.NewRNG(seed), channels, size)
}

// Calibration fixes the emulated per-device compute rate and the matching
// bandwidth scale so measured experiments keep the paper's compute:comm
// balance on any host.
type Calibration = harness.Calibration

// Calibrate measures this host and returns a calibration that lets maxK
// paced devices run faithfully on the available cores.
func Calibrate(maxK int) Calibration { return harness.Calibrate(maxK) }

// SetComputeWorkers pins the number of goroutines each matrix
// multiplication may use. Set 1 to emulate single-CPU edge devices (the
// paper's setting); 0 restores GOMAXPROCS. Returns the previous value.
func SetComputeWorkers(n int) int { return tensor.SetWorkers(n) }

// SelectAttentionOrder returns the Theorem 2-optimal self-attention
// computation order for input length n, partition length p, feature size f
// and per-head size fh.
func SelectAttentionOrder(n, p, f, fh int) AttentionOrder {
	return flopcount.SelectOrder(flopcount.Shape{N: n, P: p, F: f, FH: fh})
}
