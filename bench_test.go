// Benchmarks regenerating the paper's evaluation, one family per figure or
// table. cmd/voltage-bench prints the full paper-style series; these
// testing.B benches measure the same experiments at benchmark-friendly
// scale so `go test -bench=.` exercises every experiment code path and
// reports per-configuration latencies and communication volumes.
//
// Mapping (see DESIGN.md §3):
//
//	Fig. 4  → BenchmarkFig4DeviceScaling
//	Fig. 5  → BenchmarkFig5Bandwidth
//	Fig. 6  → BenchmarkFig6AttentionPartition (paper-scale settings)
//	Table A → BenchmarkTableACommVolume (bytes/op metrics)
//	Table B → BenchmarkTableBTheoremSweep
//	Ablations → BenchmarkAblation*
package voltage_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"voltage"
	"voltage/internal/attention"
	"voltage/internal/cluster"
	"voltage/internal/comm"
	"voltage/internal/flopcount"
	"voltage/internal/harness"
	"voltage/internal/model"
	"voltage/internal/netem"
	"voltage/internal/partition"
	"voltage/internal/tensor"
)

// benchCfg is the benchmark-scale transformer: the paper models'
// architecture shrunk (F=256, H=8, 2 layers) so a full distributed
// inference fits in tens of milliseconds. All figure *shapes* are
// dimension-generic; cmd/voltage-bench runs the full-size presets.
func benchCfg() model.Config {
	return model.Config{
		Name: "bench-encoder", Kind: model.KindEncoder,
		Layers: 2, F: 256, Heads: 8, FFN: 1024, Act: tensor.GELU,
		VocabSize: 1000, MaxSeq: 256, NumClasses: 2,
	}
}

const benchSeqLen = 128

func benchInput(b *testing.B, c *cluster.Cluster) *tensor.Matrix {
	b.Helper()
	ids := make([]int, benchSeqLen)
	for i := range ids {
		ids[i] = (i*31 + 7) % c.Config().VocabSize
	}
	x, err := c.Model(0).Embed.EmbedTokens(ids)
	if err != nil {
		b.Fatal(err)
	}
	return x
}

// BenchmarkFig4DeviceScaling measures end-to-end latency per strategy and
// device count at the paper's default 500 Mbps (Fig. 4).
func BenchmarkFig4DeviceScaling(b *testing.B) {
	prev := voltage.SetComputeWorkers(1)
	defer voltage.SetComputeWorkers(prev)
	for _, k := range []int{1, 2, 4, 6} {
		for _, strategy := range []cluster.Strategy{
			cluster.StrategySingle, cluster.StrategyVoltage, cluster.StrategyTensorParallel,
		} {
			b.Run(fmt.Sprintf("K=%d/%s", k, strategy), func(b *testing.B) {
				c, err := cluster.NewMem(benchCfg(), k, cluster.Options{
					Profile: netem.Profile{BandwidthMbps: 500, Latency: 200 * time.Microsecond},
				})
				if err != nil {
					b.Fatal(err)
				}
				defer c.Close()
				x := benchInput(b, c)
				ctx := context.Background()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := c.Infer(ctx, strategy, x); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig5Bandwidth measures Voltage and tensor parallelism across
// the paper's bandwidth sweep at fixed K (Fig. 5).
func BenchmarkFig5Bandwidth(b *testing.B) {
	prev := voltage.SetComputeWorkers(1)
	defer voltage.SetComputeWorkers(prev)
	const k = 4
	for _, mbps := range []float64{200, 500, 1000} {
		for _, strategy := range []cluster.Strategy{cluster.StrategyVoltage, cluster.StrategyTensorParallel} {
			b.Run(fmt.Sprintf("bw=%.0fMbps/%s", mbps, strategy), func(b *testing.B) {
				c, err := cluster.NewMem(benchCfg(), k, cluster.Options{
					Profile: netem.Profile{BandwidthMbps: mbps, Latency: 200 * time.Microsecond},
				})
				if err != nil {
					b.Fatal(err)
				}
				defer c.Close()
				x := benchInput(b, c)
				ctx := context.Background()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := c.Infer(ctx, strategy, x); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig6AttentionPartition times the isolated multi-head
// self-attention partition at the paper's exact synthetic settings
// (Fig. 6): (H,FH) ∈ {(16,64),(8,128),(4,256)}, N=200, Voltage's adaptive
// order vs the naive order.
func BenchmarkFig6AttentionPartition(b *testing.B) {
	prev := voltage.SetComputeWorkers(1)
	defer voltage.SetComputeWorkers(prev)
	const n = 200
	for _, st := range harness.DefaultFig6Settings {
		f := st.H * st.FH
		mh, err := attention.RandomMultiHead(tensor.NewRNG(1), st.H, f, st.FH)
		if err != nil {
			b.Fatal(err)
		}
		x := tensor.NewRNG(2).Normal(n, f, 1)
		for _, k := range []int{2, 6, 10} {
			xp, err := x.RowSlice(0, n/k)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("H=%d_FH=%d/K=%d/voltage", st.H, st.FH, k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := mh.ForwardAdaptive(x, xp); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("H=%d_FH=%d/K=%d/naive", st.H, st.FH, k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := mh.Forward(x, xp, flopcount.OrderNaive); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTableACommVolume reports per-inference worker traffic as
// custom metrics (Table A: Voltage vs tensor parallelism, 4× gap).
func BenchmarkTableACommVolume(b *testing.B) {
	for _, strategy := range []cluster.Strategy{cluster.StrategyVoltage, cluster.StrategyTensorParallel} {
		b.Run(strategy.String(), func(b *testing.B) {
			c, err := cluster.NewMem(benchCfg(), 4, cluster.Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			x := benchInput(b, c)
			ctx := context.Background()
			var bytes int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := c.Infer(ctx, strategy, x)
				if err != nil {
					b.Fatal(err)
				}
				bytes = res.TotalBytesSent()
			}
			b.ReportMetric(float64(bytes), "workerB/op")
		})
	}
}

// BenchmarkTableBTheoremSweep measures the exhaustive Theorem 2
// verification sweep (Table B).
func BenchmarkTableBTheoremSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := harness.VerifyTheorems(150)
		if rep.PredicateErrors != 0 {
			b.Fatalf("%d predicate errors", rep.PredicateErrors)
		}
	}
}

// BenchmarkAblationOrder compares the three per-layer attention policies
// (adaptive, always-naive, always-reordered) at a partition size where
// Theorem 2 favours reordering — the DESIGN.md ablation 1.
func BenchmarkAblationOrder(b *testing.B) {
	prev := voltage.SetComputeWorkers(1)
	defer voltage.SetComputeWorkers(prev)
	l, err := model.NewRandomLayer(benchCfg(), tensor.NewRNG(3))
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.NewRNG(4).Normal(benchSeqLen, l.F(), 1)
	r := partition.Range{From: 0, To: benchSeqLen / 8}
	cases := []struct {
		name  string
		order flopcount.Order
		adapt bool
	}{
		{name: "adaptive", adapt: true},
		{name: "naive", order: flopcount.OrderNaive},
		{name: "reordered", order: flopcount.OrderReordered},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var err error
				if c.adapt {
					_, _, err = l.ForwardPartition(x, r)
				} else {
					_, err = l.ForwardPartitionFixedOrder(x, r, c.order)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationCollective compares naive vs ring collectives on a
// bandwidth-shaped mesh — the DESIGN.md ablation 2.
func BenchmarkAblationCollective(b *testing.B) {
	const k = 4
	m := tensor.NewRNG(5).Normal(benchSeqLen, 256, 1)
	scheme, err := partition.Even(k)
	if err != nil {
		b.Fatal(err)
	}
	ranges, err := scheme.Ranges(benchSeqLen)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, fn func(p comm.Peer, rank int) error) {
		peers, err := comm.NewMemMesh(k, netem.Profile{BandwidthMbps: 500})
		if err != nil {
			b.Fatal(err)
		}
		defer peers[0].Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			errs := make(chan error, k)
			for r := 0; r < k; r++ {
				go func(r int) { errs <- fn(peers[r], r) }(r)
			}
			for j := 0; j < k; j++ {
				if err := <-errs; err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("allgather/naive", func(b *testing.B) {
		run(b, func(p comm.Peer, rank int) error {
			mine, err := m.RowSlice(ranges[rank].From, ranges[rank].To)
			if err != nil {
				return err
			}
			_, err = comm.AllGatherMatrix(context.Background(), p, mine, ranges, false)
			return err
		})
	})
	b.Run("allgather/ring", func(b *testing.B) {
		run(b, func(p comm.Peer, rank int) error {
			mine, err := m.RowSlice(ranges[rank].From, ranges[rank].To)
			if err != nil {
				return err
			}
			_, err = comm.AllGatherMatrix(context.Background(), p, mine, ranges, true)
			return err
		})
	})
	b.Run("allreduce/naive", func(b *testing.B) {
		run(b, func(p comm.Peer, rank int) error {
			_, err := comm.AllReduceSum(context.Background(), p, m)
			return err
		})
	})
	b.Run("allreduce/ring", func(b *testing.B) {
		run(b, func(p comm.Peer, rank int) error {
			_, err := comm.RingAllReduceSum(context.Background(), p, m)
			return err
		})
	})
}

// BenchmarkAblationFusedQK measures the paper's "deceptive" optimization:
// precomputing WQ·WKᵀ helps single-head attention but loses to the
// Theorem 2 pick in the multi-head setting — the DESIGN.md ablation 3.
func BenchmarkAblationFusedQK(b *testing.B) {
	prev := voltage.SetComputeWorkers(1)
	defer voltage.SetComputeWorkers(prev)
	const n, p = 256, 16
	bench := func(b *testing.B, f, fh int, order flopcount.Order) {
		rng := tensor.NewRNG(6)
		h, err := attention.NewHeadWeights(rng.XavierNormal(f, fh), rng.XavierNormal(f, fh), rng.XavierNormal(f, fh))
		if err != nil {
			b.Fatal(err)
		}
		x := rng.Normal(n, f, 1)
		xp, err := x.RowSlice(0, p)
		if err != nil {
			b.Fatal(err)
		}
		// Warm the fused cache outside the timed loop (it is precomputed
		// once before inference, as in the paper's analysis).
		if _, err := attention.Compute(h, x, xp, order); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := attention.Compute(h, x, xp, order); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("single-head/fused", func(b *testing.B) { bench(b, 256, 256, flopcount.OrderFusedQKLate) })
	b.Run("single-head/reordered", func(b *testing.B) { bench(b, 256, 256, flopcount.OrderReordered) })
	b.Run("multi-head/fused", func(b *testing.B) { bench(b, 256, 32, flopcount.OrderFusedQKLate) })
	b.Run("multi-head/reordered", func(b *testing.B) { bench(b, 256, 32, flopcount.OrderReordered) })
}

// BenchmarkAblationScheme compares even vs skewed partition schemes on a
// homogeneous cluster (the even scheme should win) — the DESIGN.md
// ablation 4 on §V-B's ratio-vector flexibility.
func BenchmarkAblationScheme(b *testing.B) {
	prev := voltage.SetComputeWorkers(1)
	defer voltage.SetComputeWorkers(prev)
	const k = 4
	schemes := map[string][]float64{
		"even":   {0.25, 0.25, 0.25, 0.25},
		"skewed": {0.55, 0.15, 0.15, 0.15},
	}
	for name, ratios := range schemes {
		b.Run(name, func(b *testing.B) {
			scheme, err := partition.New(ratios)
			if err != nil {
				b.Fatal(err)
			}
			c, err := cluster.NewMem(benchCfg(), k, cluster.Options{Scheme: scheme})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			x := benchInput(b, c)
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Infer(ctx, cluster.StrategyVoltage, x); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExtCachedDecode compares full-recompute generation against the
// distributed KV-cached decoder (per generated token).
func BenchmarkExtCachedDecode(b *testing.B) {
	prev := voltage.SetComputeWorkers(1)
	defer voltage.SetComputeWorkers(prev)
	cfg := model.TinyDecoder()
	cfg.MaxSeq = 4096
	prompt := make([]int, 64)
	for i := range prompt {
		prompt[i] = (i*13 + 5) % cfg.VocabSize
	}
	const steps = 8
	b.Run("recompute", func(b *testing.B) {
		c, err := cluster.NewMem(cfg, 3, cluster.Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		m := c.Model(0)
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tokens := append([]int(nil), prompt...)
			for s := 0; s < steps; s++ {
				x, err := m.Embed.EmbedTokens(tokens)
				if err != nil {
					b.Fatal(err)
				}
				res, err := c.Infer(ctx, cluster.StrategyVoltage, x)
				if err != nil {
					b.Fatal(err)
				}
				logits, err := m.LM.NextTokenLogits(res.Output)
				if err != nil {
					b.Fatal(err)
				}
				tokens = append(tokens, model.Argmax(logits))
			}
		}
	})
	b.Run("kv-cached", func(b *testing.B) {
		c, err := cluster.NewMem(cfg, 3, cluster.Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.GenerateVoltage(ctx, prompt, steps); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBatchedGenerate measures aggregate decode throughput for
// concurrent generate streams, serial (MaxBatch=1: one sequence holds the
// mesh until it finishes) vs continuously batched (streams join the fused
// decode batch and each step is one matmul round for the whole batch).
// Fusion does not reduce MACs — the paced compute per token is identical —
// so the win is amortizing the per-step frame exchange and scheduling over
// the batch width. Reported as aggregate tok/s across all streams.
func BenchmarkBatchedGenerate(b *testing.B) {
	prev := voltage.SetComputeWorkers(1)
	defer voltage.SetComputeWorkers(prev)
	cfg := model.TinyDecoder()
	cfg.MaxSeq = 4096
	const (
		k       = 3
		streams = 8
		steps   = 16
	)
	prompts := make([][]int, streams)
	for s := range prompts {
		p := make([]int, 12+s) // staggered lengths: varied cache positions
		for i := range p {
			p[i] = (i*13 + s*7 + 5) % cfg.VocabSize
		}
		prompts[s] = p
	}
	run := func(b *testing.B, opts cluster.Options) {
		opts.Profile = netem.Profile{BandwidthMbps: 500, Latency: 2 * time.Millisecond}
		c, err := cluster.NewMem(cfg, k, opts)
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		c.Serve()
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			errs := make([]error, streams)
			for s := 0; s < streams; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					_, errs[s] = c.GenerateVoltage(ctx, prompts[s], steps)
				}(s)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(b.N*streams*steps)/b.Elapsed().Seconds(), "tok/s")
	}
	b.Run("serial", func(b *testing.B) { run(b, cluster.Options{MaxBatch: 1}) })
	b.Run("batched", func(b *testing.B) {
		run(b, cluster.Options{MaxBatch: streams, BatchWindow: 2 * time.Millisecond})
	})
}

// BenchmarkExtQuantizedComm measures exact vs int8 All-Gather inference at
// a constrained bandwidth (low enough that the 4× payload reduction beats
// the quantize/dequantize CPU cost).
func BenchmarkExtQuantizedComm(b *testing.B) {
	prev := voltage.SetComputeWorkers(1)
	defer voltage.SetComputeWorkers(prev)
	for _, quantized := range []bool{false, true} {
		name := "exact"
		if quantized {
			name = "int8"
		}
		b.Run(name, func(b *testing.B) {
			c, err := cluster.NewMem(benchCfg(), 4, cluster.Options{
				Profile:       netem.Profile{BandwidthMbps: 10},
				QuantizedComm: quantized,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			x := benchInput(b, c)
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Infer(ctx, cluster.StrategyVoltage, x); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExtDynamicScheme measures even vs dynamic partitioning on a
// heterogeneous (one slow device) cluster.
func BenchmarkExtDynamicScheme(b *testing.B) {
	prev := voltage.SetComputeWorkers(1)
	defer voltage.SetComputeWorkers(prev)
	base := 2e9
	for _, dynamic := range []bool{false, true} {
		name := "even"
		if dynamic {
			name = "dynamic"
		}
		b.Run(name, func(b *testing.B) {
			c, err := cluster.NewMem(benchCfg(), 3, cluster.Options{
				HeteroDeviceFlops: []float64{base, base, base / 4},
				DynamicScheme:     dynamic,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			x := benchInput(b, c)
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Infer(ctx, cluster.StrategyVoltage, x); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExtPipelineBatch measures the pipeline baseline's makespan per
// batch size (throughput is its only win; first-request latency never
// improves).
func BenchmarkExtPipelineBatch(b *testing.B) {
	prev := voltage.SetComputeWorkers(1)
	defer voltage.SetComputeWorkers(prev)
	for _, batch := range []int{1, 4} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			c, err := cluster.NewMem(benchCfg(), 3, cluster.Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			x := benchInput(b, c)
			xs := make([]*tensor.Matrix, batch)
			for i := range xs {
				xs[i] = x
			}
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.InferPipeline(ctx, xs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServeThroughput measures the serving runtime's gain over
// back-to-back blocking calls at K=3 on the Tiny model: "blocking" issues
// Infer calls sequentially (each pays broadcast, All-Gather and collect
// propagation delays in series), while "serve-*" keeps a window of
// outstanding Submits so the dispatcher broadcasts request i+1 while the
// workers compute request i and the collector drains request i−1. The
// pooled/unpooled pair isolates the matrix- and buffer-pool savings in
// allocs/op.
func BenchmarkServeThroughput(b *testing.B) {
	prev := voltage.SetComputeWorkers(1)
	defer voltage.SetComputeWorkers(prev)
	const (
		k      = 3
		seqLen = 48
		window = 8
	)
	profile := netem.Profile{BandwidthMbps: 500, Latency: 5 * time.Millisecond}
	newServeCluster := func(b *testing.B, opts cluster.Options) *cluster.Cluster {
		b.Helper()
		opts.Profile = profile
		c, err := cluster.NewMem(model.Tiny(), k, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(c.Close)
		return c
	}
	serveInput := func(b *testing.B, c *cluster.Cluster) *tensor.Matrix {
		b.Helper()
		ids := make([]int, seqLen)
		for i := range ids {
			ids[i] = (i*13 + 5) % c.Config().VocabSize
		}
		x, err := c.Model(0).Embed.EmbedTokens(ids)
		if err != nil {
			b.Fatal(err)
		}
		return x
	}
	reportRate := func(b *testing.B) {
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	}

	b.Run("blocking", func(b *testing.B) {
		c := newServeCluster(b, cluster.Options{})
		x := serveInput(b, c)
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Infer(ctx, cluster.StrategyVoltage, x); err != nil {
				b.Fatal(err)
			}
		}
		reportRate(b)
	})

	serve := func(b *testing.B, opts cluster.Options) {
		c := newServeCluster(b, opts)
		c.Serve()
		x := serveInput(b, c)
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		inflight := make([]*cluster.Pending, window)
		for i := 0; i < b.N; i++ {
			if pend := inflight[i%window]; pend != nil {
				if _, err := pend.Wait(ctx); err != nil {
					b.Fatal(err)
				}
			}
			pend, err := c.Submit(ctx, cluster.StrategyVoltage, x)
			if err != nil {
				b.Fatal(err)
			}
			inflight[i%window] = pend
		}
		for _, pend := range inflight {
			if pend == nil {
				continue
			}
			if _, err := pend.Wait(ctx); err != nil {
				b.Fatal(err)
			}
		}
		reportRate(b)
	}
	b.Run("serve-pooled", func(b *testing.B) { serve(b, cluster.Options{}) })
	b.Run("serve-unpooled", func(b *testing.B) { serve(b, cluster.Options{NoPooling: true}) })
	// The metrics-disabled variant bounds the observability layer's cost:
	// serve-pooled (metrics on, the default) must stay within noise of it —
	// the instruments are pre-resolved atomics, nothing on the data path
	// takes a lock or allocates.
	b.Run("serve-nometrics", func(b *testing.B) { serve(b, cluster.Options{NoMetrics: true}) })
}
