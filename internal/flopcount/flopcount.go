// Package flopcount implements the computation-complexity accounting of
// Section IV of the Voltage paper.
//
// Following the paper, the cost Γ(·) of a matrix product of an m×k matrix by
// a k×n matrix is counted as m·k·n floating point operations, and
// element-wise steps (softmax, scaling) are counted as O(number of
// elements). The package provides:
//
//   - the cost of each candidate computation order for the partitioned
//     attention output Ap(x) (Eq. 3, Eq. 8 and the intermediate orders in
//     Eqs. 10–14 and Eq. 6),
//   - the closed forms of Theorems 1 and 3,
//   - the optimal-order predicate of Theorem 2, and
//   - a brute-force argmin over all orders used by tests to verify the
//     theorems.
package flopcount

import "fmt"

// Shape captures the variables of the paper's analysis for one attention
// head: input length N, partition length P, model feature size F and
// per-head feature size FH. The multi-head constraint is F = H·FH.
type Shape struct {
	N  int // full input sequence length
	P  int // partition (output slice) length, 1 ≤ P ≤ N
	F  int // model feature dimensionality
	FH int // attention-head feature dimensionality
}

// Validate reports whether the shape is internally consistent.
func (s Shape) Validate() error {
	switch {
	case s.N < 1:
		return fmt.Errorf("flopcount: N = %d < 1", s.N)
	case s.P < 1 || s.P > s.N:
		return fmt.Errorf("flopcount: P = %d outside [1, %d]", s.P, s.N)
	case s.F < 1 || s.FH < 1:
		return fmt.Errorf("flopcount: F = %d, FH = %d must be ≥ 1", s.F, s.FH)
	}
	return nil
}

// Heads returns H = F / FH (0 if not divisible).
func (s Shape) Heads() int {
	if s.FH == 0 || s.F%s.FH != 0 {
		return 0
	}
	return s.F / s.FH
}

// Order identifies one complete computation order for the attention output
// partition Ap(x) = softmax(x_p·WQ·WKᵀ·xᵀ/√FH)·x·WV.
//
// The first step (computing the score matrix argument x_p·WQ·WKᵀ·xᵀ) has
// five associations (paper Eqs. 10–14); the second step (applying S to
// x·WV) has two (paper Eq. 6). The paper's two surviving candidates are:
//
//   - Naive (Eq. 3):   S = (x_p·WQ)·(x·WK)ᵀ, then S·(x·WV)
//   - Reordered (Eq. 8): S = ((x_p·WQ)·WKᵀ)·xᵀ, then (S·x)·WV
type Order int

// Score-step association × value-step association. Names use Q=x_p·WQ,
// K=x·WK, and explicit parenthesization.
const (
	// OrderNaive is Eq. 3: compute Q, K, V in advance.
	// S = (x_p WQ)(x WK)ᵀ; out = S·(x WV).
	OrderNaive Order = iota + 1
	// OrderReordered is Eq. 8: never materialize K or V.
	// S = ((x_p WQ) WKᵀ)xᵀ; out = (S x)·WV.
	OrderReordered
	// OrderQKtLateV is Eq. 11's score step with the late-V value step:
	// S = (x_p WQ)(WKᵀ xᵀ); out = (S x)·WV.
	OrderQKtLateV
	// OrderQWkEarlyV is Eq. 10's score step with the early-V value step:
	// S = ((x_p WQ) WKᵀ)xᵀ; out = S·(x WV).
	OrderQWkEarlyV
	// OrderFusedQKEarly is Eq. 12: precompute WQ·WKᵀ (F×F), left to right,
	// with the early-V value step. The paper's "deceptive" optimization.
	OrderFusedQKEarly
	// OrderFusedQKLate is Eq. 12's score step with the late-V value step.
	OrderFusedQKLate
	// OrderFusedQKRight is Eq. 13: x_p·((WQ WKᵀ)·xᵀ) with early V.
	OrderFusedQKRight
	// OrderInsideOut is Eq. 14: x_p·(WQ·(WKᵀ xᵀ)) with early V.
	OrderInsideOut
)

// AllOrders lists every order the package can cost, in declaration order.
var AllOrders = []Order{
	OrderNaive, OrderReordered, OrderQKtLateV, OrderQWkEarlyV,
	OrderFusedQKEarly, OrderFusedQKLate, OrderFusedQKRight, OrderInsideOut,
}

// String implements fmt.Stringer.
func (o Order) String() string {
	switch o {
	case OrderNaive:
		return "naive(Eq3)"
	case OrderReordered:
		return "reordered(Eq8)"
	case OrderQKtLateV:
		return "qkt-lateV"
	case OrderQWkEarlyV:
		return "qwk-earlyV"
	case OrderFusedQKEarly:
		return "fusedQK-earlyV"
	case OrderFusedQKLate:
		return "fusedQK-lateV"
	case OrderFusedQKRight:
		return "fusedQK-right"
	case OrderInsideOut:
		return "inside-out"
	default:
		return fmt.Sprintf("Order(%d)", int(o))
	}
}

// MatMulCost returns the paper's Γ for an m×k by k×n product.
func MatMulCost(m, k, n int) int64 {
	return int64(m) * int64(k) * int64(n)
}

// scoreCost returns the FLOPs of computing the P×N score matrix argument
// x_p·WQ·WKᵀ·xᵀ under each association (paper Eqs. 10–14). Softmax and the
// 1/√FH scaling are O(PN) and charged separately in elementwiseCost.
func scoreCost(s Shape, o Order) int64 {
	n, p, f, fh := int64(s.N), int64(s.P), int64(s.F), int64(s.FH)
	switch o {
	case OrderNaive:
		// Q = x_p WQ (P·F·FH), K = x WK (N·F·FH), Q·Kᵀ (P·FH·N).
		return p*f*fh + n*f*fh + p*fh*n
	case OrderReordered, OrderQWkEarlyV:
		// Eq. 10: ((x_p WQ) WKᵀ) xᵀ = P·F·FH + P·FH·F + P·F·N.
		return 2*p*f*fh + p*f*n
	case OrderQKtLateV:
		// Eq. 11: (x_p WQ)(WKᵀ xᵀ) = P·F·FH + N·F·FH + P·FH·N.
		return p*f*fh + n*f*fh + p*fh*n
	case OrderFusedQKEarly, OrderFusedQKLate:
		// Eq. 12: (x_p (WQ WKᵀ)) xᵀ = P·F·F + P·F·N. WQ·WKᵀ itself is a
		// one-time constant precomputed before inference and excluded, as
		// in the paper.
		return p*f*f + p*f*n
	case OrderFusedQKRight:
		// Eq. 13: x_p ((WQ WKᵀ) xᵀ) = N·F·F + P·F·N.
		return n*f*f + p*f*n
	case OrderInsideOut:
		// Eq. 14: x_p (WQ (WKᵀ xᵀ)) = N·F·FH + F·FH·N + P·F·N.
		// The paper condenses this as 2NFFH + PNFH by associating the last
		// product differently; we follow the literal parenthesization
		// x_p·(WQ·(WKᵀ·xᵀ)): WKᵀxᵀ is FH×N (N·F·FH), WQ·that is F×N
		// (F·FH·N), x_p·that is P×N (P·F·N).
		return n*f*fh + f*fh*n + p*f*n
	default:
		return -1
	}
}

// valueCost returns the FLOPs of applying the P×N matrix S to x·WV under
// the order's value-step association (paper Eq. 6).
func valueCost(s Shape, o Order) int64 {
	n, p, f, fh := int64(s.N), int64(s.P), int64(s.F), int64(s.FH)
	switch o {
	case OrderNaive, OrderQWkEarlyV, OrderFusedQKEarly, OrderFusedQKRight, OrderInsideOut:
		// S·(x WV): V = x WV (N·F·FH) + S·V (P·N·FH).
		return n*f*fh + p*n*fh
	case OrderReordered, OrderQKtLateV, OrderFusedQKLate:
		// (S·x)·WV: S·x (P·N·F) + ·WV (P·F·FH).
		return p*n*f + p*f*fh
	default:
		return -1
	}
}

// elementwiseCost charges the softmax and scaling of the P×N score matrix.
// Both are linear in the element count; we charge 2 ops per element
// (divide + softmax pass) to keep a concrete constant.
func elementwiseCost(s Shape) int64 {
	return 2 * int64(s.P) * int64(s.N)
}

// Cost returns the total Γ of computing one head's output partition Ap(x)
// under order o.
func Cost(s Shape, o Order) (int64, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	sc, vc := scoreCost(s, o), valueCost(s, o)
	if sc < 0 || vc < 0 {
		return 0, fmt.Errorf("flopcount: unknown order %v", o)
	}
	return sc + vc + elementwiseCost(s), nil
}

// MustCost is Cost for known-valid inputs; it panics on error.
func MustCost(s Shape, o Order) int64 {
	c, err := Cost(s, o)
	if err != nil {
		panic(err)
	}
	return c
}

// BestOrderBruteForce returns the order with minimal Cost by enumeration,
// breaking ties in favour of the order listed earlier in AllOrders.
func BestOrderBruteForce(s Shape) (Order, int64, error) {
	if err := s.Validate(); err != nil {
		return 0, 0, err
	}
	best := AllOrders[0]
	bestCost := MustCost(s, best)
	for _, o := range AllOrders[1:] {
		if c := MustCost(s, o); c < bestCost {
			best, bestCost = o, c
		}
	}
	return best, bestCost, nil
}

// PreferReordered implements the Theorem 2 predicate: it reports whether
// 1/P − 1/N > (F−FH)/(F·FH), i.e. whether the reordered computation (Eq. 8)
// beats the naive one (Eq. 3). Evaluated in exact integer arithmetic:
//
//	(N−P)·F·FH > P·N·(F−FH)
func PreferReordered(s Shape) bool {
	lhs := int64(s.N-s.P) * int64(s.F) * int64(s.FH)
	rhs := int64(s.P) * int64(s.N) * int64(s.F-s.FH)
	return lhs > rhs
}

// SelectOrder returns the order Algorithm 1 uses for the given shape: the
// reordered computation when Theorem 2's condition holds, otherwise the
// naive one.
func SelectOrder(s Shape) Order {
	if PreferReordered(s) {
		return OrderReordered
	}
	return OrderNaive
}

// Theorem1Cost returns the closed-form cost of the naive method (Eq. 4):
//
//	P·F·FH + 2·P·N·FH + 2·N·F·FH + O(PN)
//
// with the O(PN) term charged as elementwiseCost for consistency with Cost.
func Theorem1Cost(s Shape) int64 {
	n, p, f, fh := int64(s.N), int64(s.P), int64(s.F), int64(s.FH)
	return p*f*fh + 2*p*n*fh + 2*n*f*fh + elementwiseCost(s)
}

// Theorem3Cost returns the closed-form cost of the reordered method used in
// the proof of Theorem 3:
//
//	3·P·F·FH + 2·P·N·F + O(PN)
func Theorem3Cost(s Shape) int64 {
	n, p, f, fh := int64(s.N), int64(s.P), int64(s.F), int64(s.FH)
	return 3*p*f*fh + 2*p*n*f + elementwiseCost(s)
}

// CrossoverK returns the smallest integer partition count K ≥ 1 such that
// with P = N/K the reordered order wins, i.e. K > (F−FH)/(F·FH)·N + 1
// (from the proof of Theorem 3). It is the point where Fig. 6's curves
// separate.
func CrossoverK(n, f, fh int) int {
	// Need the smallest integer K with K−1 > t where t = (F−FH)·N/(F·FH).
	// K−1 = floor(t)+1 satisfies strict inequality whether or not t is an
	// integer, so K = floor(t)+2.
	num := int64(f-fh) * int64(n)
	den := int64(f) * int64(fh)
	k := num/den + 2
	if k < 1 {
		k = 1
	}
	return int(k)
}

// LayerCost returns the total Γ of one partitioned transformer layer
// (Algorithm 1) for H heads plus the position-wise remainder: the output
// projection (P·F·F), the feed-forward network (2·P·F·Dff) and the
// layer norms / residuals (O(P·F)).
func LayerCost(s Shape, heads, dff int, o Order) (int64, error) {
	headCost, err := Cost(s, o)
	if err != nil {
		return 0, err
	}
	p, f := int64(s.P), int64(s.F)
	proj := p * f * f
	ffn := p*f*int64(dff) + p*int64(dff)*f
	rest := 4 * p * f // residuals + two layer norms, linear terms
	return int64(heads)*headCost + proj + ffn + rest, nil
}
