package flopcount

import (
	"strings"
	"testing"
	"testing/quick"
)

func shape(n, p, f, fh int) Shape { return Shape{N: n, P: p, F: f, FH: fh} }

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		s    Shape
		ok   bool
	}{
		{"valid", shape(100, 10, 512, 64), true},
		{"P equals N", shape(100, 100, 512, 64), true},
		{"P one", shape(100, 1, 512, 64), true},
		{"zero N", shape(0, 1, 512, 64), false},
		{"P zero", shape(100, 0, 512, 64), false},
		{"P above N", shape(100, 101, 512, 64), false},
		{"zero F", shape(100, 10, 0, 64), false},
		{"zero FH", shape(100, 10, 512, 0), false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.s.Validate()
			if (err == nil) != c.ok {
				t.Fatalf("Validate(%+v) = %v, want ok=%v", c.s, err, c.ok)
			}
		})
	}
}

func TestHeads(t *testing.T) {
	if h := shape(10, 5, 512, 64).Heads(); h != 8 {
		t.Fatalf("Heads = %d, want 8", h)
	}
	if h := shape(10, 5, 500, 64).Heads(); h != 0 {
		t.Fatalf("Heads = %d for non-divisible, want 0", h)
	}
}

func TestMatMulCost(t *testing.T) {
	if got := MatMulCost(3, 4, 5); got != 60 {
		t.Fatalf("MatMulCost = %d, want 60", got)
	}
}

func TestCostUnknownOrder(t *testing.T) {
	if _, err := Cost(shape(10, 5, 64, 8), Order(99)); err == nil {
		t.Fatal("want error for unknown order")
	}
	if _, err := Cost(shape(0, 0, 0, 0), OrderNaive); err == nil {
		t.Fatal("want error for invalid shape")
	}
}

func TestCostMatchesTheorem1ClosedForm(t *testing.T) {
	// Γ(Eq. 3) = P·F·FH + 2·P·N·FH + 2·N·F·FH + elementwise.
	f := func(seed int64) bool {
		s := randomShape(seed, 2)
		return MustCost(s, OrderNaive) == Theorem1Cost(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCostMatchesTheorem3ClosedForm(t *testing.T) {
	// Γ(Eq. 8) = 3·P·F·FH + 2·P·N·F + elementwise.
	f := func(seed int64) bool {
		s := randomShape(seed, 2)
		return MustCost(s, OrderReordered) == Theorem3Cost(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// randomShape builds a multi-head-consistent shape (F = H·FH, H ≥ minHeads)
// from a seed, deterministically.
func randomShape(seed int64, minHeads int) Shape {
	x := uint64(seed)
	next := func(mod int) int {
		x = x*6364136223846793005 + 1442695040888963407
		return int(x>>33) % mod
	}
	h := minHeads + next(15)
	fh := 1 + next(96)
	n := 1 + next(400)
	p := 1 + next(n)
	return Shape{N: n, P: p, F: h * fh, FH: fh}
}

func TestTheorem2PredicateMatchesDirectComparison(t *testing.T) {
	// PreferReordered ⟺ Cost(reordered) < Cost(naive)... up to the
	// elementwise term which is identical for both, so the comparison is
	// exact.
	f := func(seed int64) bool {
		s := randomShape(seed, 2)
		return PreferReordered(s) == (MustCost(s, OrderReordered) < MustCost(s, OrderNaive))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTheorem2OnlyTwoCandidatesOptimal(t *testing.T) {
	// For multi-head shapes (H ≥ 2), the brute-force optimum over all
	// orders must equal the minimum of the two Theorem 2 candidates.
	f := func(seed int64) bool {
		s := randomShape(seed, 2)
		_, bestCost, err := BestOrderBruteForce(s)
		if err != nil {
			return false
		}
		c1 := MustCost(s, OrderNaive)
		c2 := MustCost(s, OrderReordered)
		minC := c1
		if c2 < minC {
			minC = c2
		}
		return bestCost == minC
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectOrderIsOptimal(t *testing.T) {
	f := func(seed int64) bool {
		s := randomShape(seed, 2)
		_, bestCost, err := BestOrderBruteForce(s)
		if err != nil {
			return false
		}
		return MustCost(s, SelectOrder(s)) == bestCost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleHeadFusedQKCanWin(t *testing.T) {
	// The paper's "deceptive" optimization: precomputing WQ·WKᵀ genuinely
	// helps single-head attention (F == FH) but not multi-head.
	s := Shape{N: 100, P: 10, F: 64, FH: 64}
	fused := MustCost(s, OrderFusedQKLate)
	reordered := MustCost(s, OrderReordered)
	if fused >= reordered {
		t.Fatalf("single-head: fused %d should beat reordered %d", fused, reordered)
	}
	// Multi-head (H = 8): fused is never better than the Theorem 2 pick.
	m := Shape{N: 100, P: 10, F: 512, FH: 64}
	pick := MustCost(m, SelectOrder(m))
	for _, o := range []Order{OrderFusedQKEarly, OrderFusedQKLate, OrderFusedQKRight} {
		if MustCost(m, o) < pick {
			t.Fatalf("multi-head: %v beats Theorem 2 pick", o)
		}
	}
}

func TestFullPartitionPrefersNaive(t *testing.T) {
	// Theorem 2 remark: with P = N (single device) the original
	// computation flow is already optimal.
	for _, fh := range []int{32, 64, 128} {
		s := Shape{N: 200, P: 200, F: 8 * fh, FH: fh}
		if PreferReordered(s) {
			t.Fatalf("P=N should prefer naive for FH=%d", fh)
		}
		if got := SelectOrder(s); got != OrderNaive {
			t.Fatalf("SelectOrder(P=N) = %v", got)
		}
	}
}

func TestSmallPartitionPrefersReordered(t *testing.T) {
	// With a tiny partition of a long sequence the K,V bottleneck makes
	// the reordered method win.
	s := Shape{N: 1000, P: 1, F: 1024, FH: 64}
	if !PreferReordered(s) {
		t.Fatal("P=1, N=1000 should prefer reordered")
	}
	if got := SelectOrder(s); got != OrderReordered {
		t.Fatalf("SelectOrder = %v", got)
	}
}

func TestCrossoverK(t *testing.T) {
	// CrossoverK must be the first K whose P = ceil(N/K) partition flips
	// the predicate. We verify against the inequality K > (F−FH)N/(F·FH)+1.
	cases := []struct{ n, f, fh int }{
		{100, 1024, 64}, {200, 1024, 64}, {300, 1024, 64},
		{100, 1024, 128}, {200, 1024, 256}, {300, 512, 64},
	}
	for _, c := range cases {
		k := CrossoverK(c.n, c.f, c.fh)
		if k < 1 {
			t.Fatalf("CrossoverK = %d", k)
		}
		// K strictly above the analytic threshold.
		lhs := int64(k-1) * int64(c.f) * int64(c.fh) // (K−1)·F·FH
		rhs := int64(c.f-c.fh) * int64(c.n)          // (F−FH)·N
		if lhs <= rhs {
			t.Fatalf("CrossoverK(%+v) = %d does not satisfy K−1 > (F−FH)N/(F·FH)", c, k)
		}
		// K−1 must NOT satisfy it (minimality), unless K == 1.
		if k > 1 {
			lhsPrev := int64(k-2) * int64(c.f) * int64(c.fh)
			if lhsPrev > rhs {
				t.Fatalf("CrossoverK(%+v) = %d not minimal", c, k)
			}
		}
	}
}

func TestCrossoverKConsistentWithPredicate(t *testing.T) {
	n, f, fh := 300, 1024, 256
	k := CrossoverK(n, f, fh)
	// At K the predicate holds for P = N/K (exact division not required:
	// use floor, the largest partition).
	pAt := n / k
	if pAt < 1 {
		pAt = 1
	}
	if !PreferReordered(Shape{N: n, P: pAt, F: f, FH: fh}) {
		t.Fatalf("predicate false at K=%d (P=%d)", k, pAt)
	}
}

func TestNaiveHasConstantTermBottleneck(t *testing.T) {
	// Theorem 1: as K→∞ (P→1) the naive cost approaches 2·N·F·FH, a
	// constant independent of P; the reordered cost keeps shrinking.
	n, f, fh := 300, 1024, 64
	naiveAtP1 := MustCost(Shape{N: n, P: 1, F: f, FH: fh}, OrderNaive)
	floor := 2 * int64(n) * int64(f) * int64(fh)
	if naiveAtP1 < floor {
		t.Fatalf("naive cost %d below its constant term %d", naiveAtP1, floor)
	}
	reorderedAtP1 := MustCost(Shape{N: n, P: 1, F: f, FH: fh}, OrderReordered)
	if reorderedAtP1 >= floor {
		t.Fatalf("reordered cost %d did not escape the bottleneck %d", reorderedAtP1, floor)
	}
}

func TestTheorem3LinearScaling(t *testing.T) {
	// Γ(Algorithm 1) = O(1/K): doubling K should roughly halve the
	// selected-order cost once past the crossover.
	n, f, fh := 300, 1024, 256
	cost := func(k int) int64 {
		p := n / k
		s := Shape{N: n, P: p, F: f, FH: fh}
		return MustCost(s, SelectOrder(s))
	}
	k0 := CrossoverK(n, f, fh)
	c1 := cost(k0)
	c2 := cost(2 * k0)
	ratio := float64(c1) / float64(c2)
	if ratio < 1.6 || ratio > 2.4 {
		t.Fatalf("doubling K gave speed-up %.2f, want ≈2", ratio)
	}
}

func TestLayerCost(t *testing.T) {
	s := Shape{N: 128, P: 16, F: 512, FH: 64}
	got, err := LayerCost(s, 8, 2048, SelectOrder(s))
	if err != nil {
		t.Fatal(err)
	}
	head := MustCost(s, SelectOrder(s))
	p, f, dff := int64(16), int64(512), int64(2048)
	want := 8*head + p*f*f + 2*p*f*dff + 4*p*f
	if got != want {
		t.Fatalf("LayerCost = %d, want %d", got, want)
	}
	if _, err := LayerCost(Shape{}, 8, 2048, OrderNaive); err == nil {
		t.Fatal("want error for invalid shape")
	}
}

func TestLayerCostScalesWithP(t *testing.T) {
	// Theorem 3 at the layer level: the whole partitioned layer is O(P)
	// once the reordered branch is active.
	n, f, fh, h, dff := 400, 1024, 256, 4, 4096
	costAt := func(p int) int64 {
		s := Shape{N: n, P: p, F: f, FH: fh}
		c, err := LayerCost(s, h, dff, SelectOrder(s))
		if err != nil {
			panic(err)
		}
		return c
	}
	c40 := costAt(40) // K = 10
	c20 := costAt(20) // K = 20
	ratio := float64(c40) / float64(c20)
	if ratio < 1.7 || ratio > 2.3 {
		t.Fatalf("halving P gave ratio %.2f, want ≈2", ratio)
	}
}

func TestOrderStrings(t *testing.T) {
	for _, o := range AllOrders {
		if s := o.String(); s == "" || strings.HasPrefix(s, "Order(") {
			t.Fatalf("missing String for %d", int(o))
		}
	}
	if Order(42).String() != "Order(42)" {
		t.Fatal("unknown order String")
	}
}
