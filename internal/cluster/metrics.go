package cluster

import (
	"context"
	"errors"
	"strconv"
	"time"

	"voltage/internal/comm"
	"voltage/internal/metrics"
	"voltage/internal/trace"
)

// Observability wiring (see DESIGN.md "Observability"). clusterMetrics
// resolves every instrument once at construction, so the serving loops
// record with plain atomic operations — no label lookups, no locks, no
// allocation on the data path. Every method is nil-receiver-safe:
// Options.NoMetrics leaves c.metrics nil and each record site costs one
// branch, which keeps the metrics-enabled and -disabled paths within
// benchmark noise of each other.
//
// Metrics observe the existing accounting (comm.Stats scopes, trace
// phases); they never alter it, so the paper's communication-volume
// assertions are unaffected by the metrics layer.
type clusterMetrics struct {
	reg *metrics.Registry

	// Request/attempt outcomes. An "attempt" is one dispatch through the
	// mesh; a "request" is the caller-visible unit (one or more attempts
	// under supervision).
	requestsOK     *metrics.Counter
	requestsErr    *metrics.Counter
	attemptsOK     *metrics.Counter
	attemptsErr    *metrics.Counter
	retries        *metrics.Counter
	degraded       *metrics.Counter
	localFallbacks *metrics.Counter

	// canceled counts requests dropped by the dispatcher because their
	// context ended while they were still queued (never dispatched).
	canceled *metrics.Counter

	// Queue fencing: exclusive runners (generation, pipeline) and fenced
	// fault-tolerant attempts own the mesh alone, stalling every queued
	// request behind them.
	fenceExclusive *metrics.Counter
	fenceIsolation *metrics.Counter
	fenceDur       *metrics.Histogram

	latency      *metrics.Histogram
	queueDepth   *metrics.Histogram
	attemptsHist *metrics.Histogram

	// Continuous batching: fused decode-step widths, join/leave churn, and
	// how long each sequence waited before joining a batch.
	batchSize   *metrics.Histogram
	fusedSteps  *metrics.Counter
	batchJoins  *metrics.Counter
	batchLeaves *metrics.Counter
	batchWait   *metrics.Histogram
	stepDur     *metrics.Histogram

	// Straggler/skew detection: per-fused-round compute-time skew (max/mean
	// across live ranks) and the per-rank persistent-straggler flags.
	roundSkew      *metrics.Gauge
	roundSkewEWMA  *metrics.Gauge
	stragglerRanks []*metrics.Gauge
	stragglerOn    *metrics.Counter
	stragglerOff   *metrics.Counter

	// Batch fault recovery: failed fused rounds whose survivors were
	// re-sliced and resumed (by cause), plus blast-radius accounting — how
	// many co-batched sequences a fault actually killed versus how many were
	// parked and resumed.
	recTimeout  *metrics.Counter
	recCorrupt  *metrics.Counter
	recInjected *metrics.Counter
	recOther    *metrics.Counter
	seqsFailed  *metrics.Counter
	seqsResumed *metrics.Counter

	// Adaptive re-partitioning: installed moves by controller cause, the
	// currently serving per-rank ratios, the promised vs. measured
	// round-time improvement per move, and sequences re-prefilled to
	// migrate a live batch onto a new scheme.
	repartStraggler *metrics.Counter
	repartSkew      *metrics.Counter
	repartManual    *metrics.Counter
	partitionRatio  []*metrics.Gauge
	gainPredicted   *metrics.Histogram
	gainRealized    *metrics.Histogram
	seqsMigrated    *metrics.Counter

	queueLen *metrics.Gauge
	inflight *metrics.Gauge

	// Typed-error counters, both at the cause level (the error a request
	// resolves with) and at the transport level (the comm layer's fault
	// taps, which also count faults that a retry later masks).
	errTimeout  *metrics.Counter
	errCorrupt  *metrics.Counter
	errInjected *metrics.Counter
	errOther    *metrics.Counter
	tapCorrupt  *metrics.Counter
	tapTimeout  *metrics.Counter

	// Per-rank traffic (payload bytes, matching the Stats contract). Index
	// r = worker rank r; index k = the terminal.
	bytesSent []*metrics.Counter
	bytesRecv []*metrics.Counter
	msgsSent  []*metrics.Counter
	msgsRecv  []*metrics.Counter

	// Health: current state per rank plus transition counts by target
	// state.
	healthState   []*metrics.Gauge
	transitions   *metrics.CounterVec
	toHealthy     *metrics.Counter
	toProbation   *metrics.Counter
	toUnhealthy   *metrics.Counter
	phaseCompute  *metrics.Counter
	phaseComm     *metrics.Counter
	phaseBoundary *metrics.Counter
	phaseRecover  *metrics.Counter
}

// rankLabel names a mesh rank for metric labels; the terminal (rank k)
// reads "terminal" so dashboards need no knowledge of the mesh layout.
func rankLabel(rank, k int) string {
	if rank == k {
		return "terminal"
	}
	return strconv.Itoa(rank)
}

// newClusterMetrics registers the cluster's metric families on a fresh
// registry and pre-resolves every per-rank child so families render
// complete (at zero) from the first scrape.
func newClusterMetrics(k int) *clusterMetrics {
	reg := metrics.NewRegistry()
	m := &clusterMetrics{reg: reg}

	requests := reg.CounterVec("voltage_requests_total",
		"Caller-visible requests resolved, by outcome.", "outcome")
	m.requestsOK = requests.With("ok")
	m.requestsErr = requests.With("error")
	attempts := reg.CounterVec("voltage_attempts_total",
		"Dispatched attempts through the mesh, by outcome (retries count each attempt).", "outcome")
	m.attemptsOK = attempts.With("ok")
	m.attemptsErr = attempts.With("error")
	m.retries = reg.Counter("voltage_retries_total",
		"Degraded-mode re-dispatches after a retryable failure.")
	m.degraded = reg.Counter("voltage_degraded_requests_total",
		"Requests whose final attempt ran on fewer than K workers.")
	m.localFallbacks = reg.Counter("voltage_local_fallbacks_total",
		"Requests served by the terminal alone with no surviving worker.")

	m.canceled = reg.Counter("voltage_requests_canceled_total",
		"Requests whose context ended while still queued, dropped before dispatch (not counted as served requests).")

	fences := reg.CounterVec("voltage_queue_fences_total",
		"Requests that fenced the admission queue (owned the mesh exclusively), by reason.", "reason")
	m.fenceExclusive = fences.With("exclusive")
	m.fenceIsolation = fences.With("fault_isolation")
	m.fenceDur = reg.Histogram("voltage_fence_duration_seconds",
		"How long each queue fence held the mesh (time no other request could dispatch).",
		metrics.LatencyBuckets)

	m.latency = reg.Histogram("voltage_request_latency_seconds",
		"Terminal-observed attempt latency (input broadcast to result assembly).",
		metrics.LatencyBuckets)
	m.queueDepth = reg.Histogram("voltage_queue_depth",
		"Admission-queue depth observed at each submit.", metrics.DepthBuckets)
	m.attemptsHist = reg.Histogram("voltage_request_attempts",
		"Dispatches needed per completed request (1 = clean first try).",
		metrics.AttemptBuckets)

	m.batchSize = reg.Histogram("voltage_batch_size",
		"Sequences fused per batched decode step.", metrics.DepthBuckets)
	m.fusedSteps = reg.Counter("voltage_fused_steps_total",
		"Fused decode steps executed (one broadcast round per step, any width).")
	m.batchJoins = reg.Counter("voltage_batch_joins_total",
		"Sequences that joined a decode batch (prefill admitted).")
	m.batchLeaves = reg.Counter("voltage_batch_leaves_total",
		"Sequences that left a decode batch (completed, canceled, or failed).")
	m.batchWait = reg.Histogram("voltage_batch_wait_seconds",
		"Time each generate sequence waited before joining a decode batch.",
		metrics.LatencyBuckets)
	m.stepDur = reg.Histogram("voltage_fused_step_seconds",
		"Per-rank fused decode-step time (pace-inclusive emulated device time).",
		metrics.StepBuckets)

	m.roundSkew = reg.Gauge("voltage_round_skew",
		"Last fused round's compute-time skew: max/mean across live ranks (1.0 = balanced).")
	m.roundSkewEWMA = reg.Gauge("voltage_round_skew_ewma",
		"Rolling average of per-round compute-time skew.")
	stragglers := reg.GaugeVec("voltage_straggler",
		"1 while the rank is flagged as a persistent straggler by the skew detector.", "rank")
	m.stragglerRanks = make([]*metrics.Gauge, k)
	for r := 0; r < k; r++ {
		m.stragglerRanks[r] = stragglers.With(rankLabel(r, k))
		m.stragglerRanks[r].Set(0)
	}
	stragglerFlips := reg.CounterVec("voltage_straggler_transitions_total",
		"Straggler-flag transitions, by direction.", "state")
	m.stragglerOn = stragglerFlips.With("flagged")
	m.stragglerOff = stragglerFlips.With("cleared")

	recoveries := reg.CounterVec("voltage_batch_recoveries_total",
		"Batch rounds that died to a retryable fault and were re-dispatched over the surviving workers, by cause.", "cause")
	m.recTimeout = recoveries.With("timeout")
	m.recCorrupt = recoveries.With("corrupt")
	m.recInjected = recoveries.With("injected")
	m.recOther = recoveries.With("other")
	m.seqsFailed = reg.Counter("voltage_batch_seqs_failed_total",
		"Co-batched sequences resolved with a fault error — the blast radius actually paid.")
	m.seqsResumed = reg.Counter("voltage_batch_seqs_resumed_total",
		"Co-batched sequences parked across a batch fault and requeued for resumption — the blast radius avoided.")

	reparts := reg.CounterVec("voltage_repartitions_total",
		"Partition schemes installed by the adaptive controller, by cause.", "cause")
	m.repartStraggler = reparts.With("straggler")
	m.repartSkew = reparts.With("skew")
	m.repartManual = reparts.With("manual")
	ratioVec := reg.GaugeVec("voltage_partition_ratio",
		"Currently installed partition ratio per worker rank (fraction of sequence positions).", "rank")
	m.partitionRatio = make([]*metrics.Gauge, k)
	for r := 0; r < k; r++ {
		m.partitionRatio[r] = ratioVec.With(rankLabel(r, k))
	}
	m.gainPredicted = reg.Histogram("voltage_repartition_predicted_gain",
		"Fractional round-time improvement the controller predicted at each install.", gainBuckets)
	m.gainRealized = reg.Histogram("voltage_repartition_realized_gain",
		"Fractional improvement measured after each move settled (negative = the move hurt).", gainBuckets)
	m.seqsMigrated = reg.Counter("voltage_batch_migrations_total",
		"Live sequences parked and re-prefilled to migrate onto a newly installed scheme.")

	m.queueLen = reg.Gauge("voltage_queue_length",
		"Requests currently waiting in the admission queue.")
	m.inflight = reg.Gauge("voltage_inflight_requests",
		"Requests currently occupying the mesh (dispatched, not yet resolved).")

	causes := reg.CounterVec("voltage_errors_total",
		"Requests resolved with a typed error, by cause.", "type")
	m.errTimeout = causes.With("timeout")
	m.errCorrupt = causes.With("corrupt")
	m.errInjected = causes.With("injected")
	m.errOther = causes.With("other")
	m.tapCorrupt = reg.Counter("voltage_frames_corrupt_total",
		"Frames that failed their integrity check on receive (transport tap; counts faults retries later mask).")
	m.tapTimeout = reg.Counter("voltage_op_timeouts_total",
		"Send/Recv operations that exceeded the per-op watchdog deadline (transport tap).")

	bytesSent := reg.CounterVec("voltage_comm_bytes_sent_total",
		"Payload bytes sent per mesh rank (framing overhead excluded).", "rank")
	bytesRecv := reg.CounterVec("voltage_comm_bytes_recv_total",
		"Payload bytes received per mesh rank.", "rank")
	msgsSent := reg.CounterVec("voltage_comm_msgs_sent_total",
		"Messages sent per mesh rank.", "rank")
	msgsRecv := reg.CounterVec("voltage_comm_msgs_recv_total",
		"Messages received per mesh rank.", "rank")
	health := reg.GaugeVec("voltage_health_state",
		"Per-rank health (0 healthy, 1 probation, 2 unhealthy).", "rank")
	m.bytesSent = make([]*metrics.Counter, k+1)
	m.bytesRecv = make([]*metrics.Counter, k+1)
	m.msgsSent = make([]*metrics.Counter, k+1)
	m.msgsRecv = make([]*metrics.Counter, k+1)
	m.healthState = make([]*metrics.Gauge, k)
	for r := 0; r <= k; r++ {
		lbl := rankLabel(r, k)
		m.bytesSent[r] = bytesSent.With(lbl)
		m.bytesRecv[r] = bytesRecv.With(lbl)
		m.msgsSent[r] = msgsSent.With(lbl)
		m.msgsRecv[r] = msgsRecv.With(lbl)
		if r < k {
			m.healthState[r] = health.With(lbl)
			m.healthState[r].Set(float64(Healthy))
		}
	}

	m.transitions = reg.CounterVec("voltage_health_transitions_total",
		"Health-state transitions, by target state.", "state")
	m.toHealthy = m.transitions.With(Healthy.String())
	m.toProbation = m.transitions.With(Probation.String())
	m.toUnhealthy = m.transitions.With(Unhealthy.String())

	phase := reg.CounterVec("voltage_phase_seconds_total",
		"Accumulated time by execution phase across all devices.", "phase")
	m.phaseCompute = phase.With(trace.PhaseCompute.String())
	m.phaseComm = phase.With(trace.PhaseComm.String())
	m.phaseBoundary = phase.With(trace.PhaseBoundary.String())
	m.phaseRecover = phase.With(trace.PhaseRecover.String())

	metrics.RegisterRuntime(reg)

	return m
}

// registry returns the backing registry (nil when metrics are disabled).
func (m *clusterMetrics) registry() *metrics.Registry {
	if m == nil {
		return nil
	}
	return m.reg
}

// fault is the comm.FaultTap wired beneath the framing/watchdog wrappers.
func (m *clusterMetrics) fault(kind comm.FaultKind, _ int) {
	if m == nil {
		return
	}
	switch kind {
	case comm.FaultCorrupt:
		m.tapCorrupt.Inc()
	case comm.FaultTimeout:
		m.tapTimeout.Inc()
	}
}

// observeQueue records the admission queue's depth after a submit.
func (m *clusterMetrics) observeQueue(depth int) {
	if m == nil {
		return
	}
	m.queueLen.Set(float64(depth))
	m.queueDepth.Observe(float64(depth))
}

// dequeued tracks the queue gauge as the dispatcher drains it.
func (m *clusterMetrics) dequeued(depth int) {
	if m == nil {
		return
	}
	m.queueLen.Set(float64(depth))
}

// canceledInQueue counts a request dropped before dispatch because its
// context ended while it waited in the admission queue.
func (m *clusterMetrics) canceledInQueue() {
	if m == nil {
		return
	}
	m.canceled.Inc()
}

// fenceBegin counts a queue fence starting: exclusive terminal protocols
// (generation, pipeline) or fault-isolation fencing of supervised attempts.
func (m *clusterMetrics) fenceBegin(exclusive bool) {
	if m == nil {
		return
	}
	if exclusive {
		m.fenceExclusive.Inc()
	} else {
		m.fenceIsolation.Inc()
	}
}

// fenceEnd records how long a fence held the mesh.
func (m *clusterMetrics) fenceEnd(d time.Duration) {
	if m == nil {
		return
	}
	m.fenceDur.Observe(d.Seconds())
}

// observeBatchStep records one fused decode step of the given width.
func (m *clusterMetrics) observeBatchStep(width int) {
	if m == nil {
		return
	}
	m.batchSize.Observe(float64(width))
	m.fusedSteps.Inc()
}

// observeStepDur records one rank's fused decode-step time.
func (m *clusterMetrics) observeStepDur(d time.Duration) {
	if m == nil {
		return
	}
	m.stepDur.Observe(d.Seconds())
}

// observeSkew mirrors the profile store's per-round skew into gauges.
func (m *clusterMetrics) observeSkew(skew, ewma float64) {
	if m == nil {
		return
	}
	m.roundSkew.Set(skew)
	m.roundSkewEWMA.Set(ewma)
}

// stragglerFlag mirrors a persistent-straggler flag flip.
func (m *clusterMetrics) stragglerFlag(rank int, flagged bool) {
	if m == nil || rank < 0 || rank >= len(m.stragglerRanks) {
		return
	}
	if flagged {
		m.stragglerRanks[rank].Set(1)
		m.stragglerOn.Inc()
	} else {
		m.stragglerRanks[rank].Set(0)
		m.stragglerOff.Inc()
	}
}

// batchJoin counts a sequence joining the decode batch.
func (m *clusterMetrics) batchJoin() {
	if m == nil {
		return
	}
	m.batchJoins.Inc()
}

// batchLeave counts a sequence leaving the decode batch.
func (m *clusterMetrics) batchLeave() {
	if m == nil {
		return
	}
	m.batchLeaves.Inc()
}

// batchRecovery counts one failed batch round being recovered from,
// classified by the fault's typed cause.
func (m *clusterMetrics) batchRecovery(err error) {
	if m == nil {
		return
	}
	switch {
	case errors.Is(err, comm.ErrTimeout) || errors.Is(err, context.DeadlineExceeded):
		m.recTimeout.Inc()
	case errors.Is(err, comm.ErrCorrupt):
		m.recCorrupt.Inc()
	case errors.Is(err, comm.ErrInjected):
		m.recInjected.Inc()
	default:
		m.recOther.Inc()
	}
}

// batchSeqFailed counts a co-batched sequence resolved with a fault error.
func (m *clusterMetrics) batchSeqFailed() {
	if m == nil {
		return
	}
	m.seqsFailed.Inc()
}

// batchSeqResumed counts a co-batched sequence parked across a fault for
// resumption instead of being killed with the batch.
func (m *clusterMetrics) batchSeqResumed() {
	if m == nil {
		return
	}
	m.seqsResumed.Inc()
}

// batchSeqMigrated counts a sequence re-prefilled across a scheme install.
func (m *clusterMetrics) batchSeqMigrated() {
	if m == nil {
		return
	}
	m.seqsMigrated.Inc()
}

// gainBuckets resolve the predicted/realized improvement histograms:
// fractions of round time, negatives included so regressions register.
var gainBuckets = []float64{-0.25, -0.1, -0.05, 0, 0.05, 0.1, 0.2, 0.3, 0.5, 0.75}

// setPartitionRatios mirrors the installed scheme into the per-rank
// ratio gauges.
func (m *clusterMetrics) setPartitionRatios(ratios []float64) {
	if m == nil {
		return
	}
	for r, g := range m.partitionRatio {
		if r < len(ratios) {
			g.Set(ratios[r])
		}
	}
}

// repartition records one installed scheme: the cause counter, the new
// ratio gauges, and the predicted improvement.
func (m *clusterMetrics) repartition(cause string, ratios []float64, predicted float64) {
	if m == nil {
		return
	}
	switch cause {
	case "straggler":
		m.repartStraggler.Inc()
	case "skew":
		m.repartSkew.Inc()
	default:
		m.repartManual.Inc()
	}
	m.setPartitionRatios(ratios)
	m.gainPredicted.Observe(predicted)
}

// observeRealizedGain records a settled move's measured improvement.
func (m *clusterMetrics) observeRealizedGain(gain float64) {
	if m == nil {
		return
	}
	m.gainRealized.Observe(gain)
}

// observeBatchWait records how long a sequence waited to join a batch.
func (m *clusterMetrics) observeBatchWait(d time.Duration) {
	if m == nil {
		return
	}
	m.batchWait.Observe(d.Seconds())
}

// inflightAdd tracks requests occupying the mesh.
func (m *clusterMetrics) inflightAdd(delta float64) {
	if m == nil {
		return
	}
	m.inflight.Add(delta)
}

// observeAttempt records one resolved dispatch: its latency, outcome, typed
// cause, and the per-rank traffic it moved.
func (m *clusterMetrics) observeAttempt(latency time.Duration, perDevice []comm.Stats, err error) {
	if m == nil {
		return
	}
	m.latency.Observe(latency.Seconds())
	if err == nil {
		m.attemptsOK.Inc()
	} else {
		m.attemptsErr.Inc()
		m.countCause(err)
	}
	for r, s := range perDevice {
		if r >= len(m.bytesSent) {
			break
		}
		m.bytesSent[r].Add(float64(s.BytesSent))
		m.bytesRecv[r].Add(float64(s.BytesRecv))
		m.msgsSent[r].Add(float64(s.MsgsSent))
		m.msgsRecv[r].Add(float64(s.MsgsRecv))
	}
}

// observeRequest records one caller-visible resolution.
func (m *clusterMetrics) observeRequest(attempts int, degraded bool, err error) {
	if m == nil {
		return
	}
	if err == nil {
		m.requestsOK.Inc()
	} else {
		m.requestsErr.Inc()
	}
	if attempts < 1 {
		attempts = 1
	}
	m.attemptsHist.Observe(float64(attempts))
	if attempts > 1 {
		m.retries.Add(float64(attempts - 1))
	}
	if degraded {
		m.degraded.Inc()
	}
}

// fallbackServed counts a terminal-only resolution (no surviving worker).
func (m *clusterMetrics) fallbackServed() {
	if m == nil {
		return
	}
	m.localFallbacks.Inc()
}

// countCause classifies a resolved error into the typed-cause counters.
func (m *clusterMetrics) countCause(err error) {
	switch {
	case errors.Is(err, comm.ErrTimeout) || errors.Is(err, context.DeadlineExceeded):
		m.errTimeout.Inc()
	case errors.Is(err, comm.ErrCorrupt):
		m.errCorrupt.Inc()
	case errors.Is(err, comm.ErrInjected):
		m.errInjected.Inc()
	default:
		m.errOther.Inc()
	}
}

// healthTransition mirrors the health tracker's state machine into the
// per-rank gauge and the transition counter.
func (m *clusterMetrics) healthTransition(rank int, _, to HealthState) {
	if m == nil || rank < 0 || rank >= len(m.healthState) {
		return
	}
	m.healthState[rank].Set(float64(to))
	switch to {
	case Healthy:
		m.toHealthy.Inc()
	case Probation:
		m.toProbation.Inc()
	case Unhealthy:
		m.toUnhealthy.Inc()
	}
}

// phase accumulates execution-phase time.
func (m *clusterMetrics) phase(ph trace.Phase, d time.Duration) {
	if m == nil || d <= 0 {
		return
	}
	switch ph {
	case trace.PhaseCompute:
		m.phaseCompute.Add(d.Seconds())
	case trace.PhaseComm:
		m.phaseComm.Add(d.Seconds())
	case trace.PhaseBoundary:
		m.phaseBoundary.Add(d.Seconds())
	case trace.PhaseRecover:
		m.phaseRecover.Add(d.Seconds())
	}
}
