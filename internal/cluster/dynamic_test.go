package cluster

import (
	"context"
	"testing"

	"voltage/internal/model"
)

// heteroOpts builds a 3-device cluster where device 2 is 4× slower. The
// base rate is slow enough that pacing (the emulated device speed)
// dominates the tiny model's real math and scheduling noise.
func heteroOpts(dynamic bool) Options {
	base := 1e7
	return Options{
		HeteroDeviceFlops: []float64{base, base, base / 4},
		DynamicScheme:     dynamic,
	}
}

func TestHeteroValidation(t *testing.T) {
	if _, err := NewMem(model.Tiny(), 2, Options{HeteroDeviceFlops: []float64{1e9}}); err == nil {
		t.Fatal("want error for rate/worker count mismatch")
	}
}

func TestDynamicSchemeOutputUnchanged(t *testing.T) {
	// Re-balancing must never change the computed function.
	cfg := model.Tiny().Scaled(6) // enough layers for the scheme to move
	c, err := NewMem(cfg, 3, heteroOpts(true))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	x := embedTiny(t, c, 24)
	ctx := context.Background()
	single, err := c.Infer(ctx, StrategySingle, x)
	if err != nil {
		t.Fatal(err)
	}
	dynamic, err := c.Infer(ctx, StrategyVoltage, x)
	if err != nil {
		t.Fatal(err)
	}
	if !dynamic.Output.AlmostEqual(single.Output, 1e-2) {
		d, _ := dynamic.Output.MaxAbsDiff(single.Output)
		t.Fatalf("dynamic scheme changed the output by %v", d)
	}
}

func TestDynamicSchemeBeatsEvenOnHeterogeneousCluster(t *testing.T) {
	// With one 4×-slower device, the even scheme is bottlenecked by the
	// straggler at every layer; dynamic re-balancing shrinks its share
	// and reduces end-to-end latency.
	if raceEnabled {
		t.Skip("pacing-based timing comparison unreliable under -race")
	}
	cfg := model.Tiny().Scaled(8)
	run := func(dynamic bool) float64 {
		c, err := NewMem(cfg, 3, heteroOpts(dynamic))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		in := embedTiny(t, c, 48)
		res, err := c.Infer(context.Background(), StrategyVoltage, in)
		if err != nil {
			t.Fatal(err)
		}
		return res.Latency.Seconds()
	}
	even := run(false)
	dynamic := run(true)
	if dynamic >= even {
		t.Fatalf("dynamic scheme (%.4fs) not faster than even scheme (%.4fs) on heterogeneous cluster",
			dynamic, even)
	}
	t.Logf("heterogeneous K=3 (one 4x-slower device): even=%.4fs dynamic=%.4fs (%.0f%% faster)",
		even, dynamic, 100*(1-dynamic/even))
}

func TestDynamicSchemeHomogeneousStaysCorrect(t *testing.T) {
	// On a homogeneous cluster the tracker should keep roughly even
	// schemes and the result must stay correct.
	c, err := NewMem(model.Tiny().Scaled(4), 3, Options{DynamicScheme: true, DeviceFlops: 2e9})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	x := embedTiny(t, c, 30)
	ctx := context.Background()
	single, err := c.Infer(ctx, StrategySingle, x)
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := c.Infer(ctx, StrategyVoltage, x)
	if err != nil {
		t.Fatal(err)
	}
	if !dyn.Output.AlmostEqual(single.Output, 1e-2) {
		t.Fatal("homogeneous dynamic output differs")
	}
}
