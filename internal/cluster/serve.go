package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"voltage/internal/comm"
	"voltage/internal/partition"
	"voltage/internal/tensor"
	"voltage/internal/trace"
)

// The persistent serving runtime. A cluster serves requests with K+2
// long-lived goroutines instead of spawning K+1 per call:
//
//   - the dispatcher pulls admitted requests off the queue, tags every
//     worker loop with the request, and runs the terminal's input broadcast;
//   - K worker loops execute the strategy's device protocol for one request
//     at a time, in admission order;
//   - the collector drains the terminal's result side and completes
//     requests.
//
// Requests are sequenced, not locked: the dispatcher may broadcast request
// i+1 while the workers compute request i and the collector drains request
// i−1. The SPMD collectives stay correct because every role processes
// requests in the same admission order and every mesh link is FIFO — request
// identity rides on ordering, so the data plane carries byte-for-byte the
// same traffic as a lone blocking call and the paper's communication
// formulas stay directly measurable. Runners that interleave terminal sends
// and receives (generation, pipeline) are marked exclusive and fence the
// queue instead.
//
// Per-request traffic is attributed through comm.Scoped stat scopes — one
// per (request, device) — rather than by diffing the mesh's cumulative
// counters, which would double-count under overlap.

// errServingStopped reports submission to (or abandonment by) a closed
// cluster.
var errServingStopped = errors.New("cluster: serving stopped")

// Default queue depths: queueDepth bounds admission, inflightDepth bounds
// how many requests may occupy the mesh at once (which in turn keeps
// per-link queues well under the transport's limits), admitDepth lets
// worker loops lag the dispatcher without blocking it. Options.QueueDepth/
// InflightDepth/AdmitDepth override them.
const (
	defaultQueueDepth    = 64
	defaultInflightDepth = 8
	defaultAdmitDepth    = 16
)

// depthOr resolves a configured queue depth against its default.
func depthOr(configured, def int) int {
	if configured > 0 {
		return configured
	}
	return def
}

// request is one in-flight unit of work flowing through the serving
// runtime.
type request struct {
	id       uint64
	strategy Strategy
	runner   strategyRunner

	// Exactly one input set is populated, per runner kind. Batched
	// generation (batch.go) carries no input here: its sequences flow
	// through the batcher and join the mesh request at step boundaries.
	x  *tensor.Matrix   // Infer strategies
	xs []*tensor.Matrix // pipeline

	// scopes, when non-nil, pre-creates the per-rank stat scopes the
	// serving loops would otherwise open themselves — batched generation
	// snapshots them at each sequence's join and leave to carve
	// per-sequence traffic out of one long-lived request.
	scopes []*comm.ScopedPeer
	// noTimeout exempts the request from Options.RequestTimeout: the
	// batched-generate request lives as long as sequences keep arriving,
	// so per-sequence deadlines ride on each sequence's own context.
	noTimeout bool

	// Fault-tolerance state (see retry.go). live lists the worker ranks
	// serving this request (nil = all k); scheme overrides the cluster's
	// partition scheme for degraded attempts re-sliced over the survivors.
	// fenced requests own the mesh exclusively (like exclusive runners), so
	// a failed attempt's residual traffic can be flushed before the next
	// request enters — supervision sets it on every attempt.
	live     []int
	scheme   *partition.Scheme
	attempts int
	degraded bool
	fenced   bool
	// schemeGen is the scheme generation a batch round was planned under;
	// the fused decode loop migrates at a step boundary when the installed
	// generation moves past it (see adapt.go).
	schemeGen uint64
	// supervised attempts are counted as requests by their supervisor, not
	// by collect (which counts each as an attempt only).
	supervised bool

	// trace collects per-layer spans when Options.TraceRequests is set.
	trace *trace.RequestTrace

	// ctx governs the whole request; cancel releases every role on the
	// first error so no goroutine blocks on a dead request.
	ctx    context.Context
	cancel context.CancelFunc

	start      time.Time
	output     *tensor.Matrix
	pipeRes    *PipelineResult
	latency    time.Duration
	admitStats comm.Stats
	perDevice  []comm.Stats // slot r written only by rank r (terminal = k)
	errs       []error      // same ownership discipline as perDevice

	workers sync.WaitGroup // one count per worker rank
	once    sync.Once
	err     error
	done    chan struct{}
}

// scope returns rank's stat scope for this request: the pre-created one
// when the submitter needs shared visibility (batched generation), a fresh
// one otherwise.
func (req *request) scope(c *Cluster, rank int) *comm.ScopedPeer {
	if req.scopes != nil {
		return req.scopes[rank]
	}
	return comm.Scoped(c.peers[rank])
}

// finish resolves the request exactly once.
func (req *request) finish(err error) {
	req.once.Do(func() {
		req.err = err
		close(req.done)
		req.cancel()
	})
}

// liveRanks returns the worker ranks serving this request.
func (req *request) liveRanks(c *Cluster) []int {
	if req.live == nil {
		return c.allRanks()
	}
	return req.live
}

// liveIndex returns rank's position in the request's live set, or -1 when
// the rank sits this request out (it is excluded from a degraded attempt).
func (req *request) liveIndex(c *Cluster, rank int) int {
	if req.live == nil {
		return rank
	}
	for i, r := range req.live {
		if r == rank {
			return i
		}
	}
	return -1
}

// partitionScheme returns the scheme partitioning this request's positions.
// submit pins the installed scheme on every request (and degraded attempts
// re-slice their own), so the fallback read only covers requests built
// outside the submit path.
func (req *request) partitionScheme(c *Cluster) *partition.Scheme {
	if req.scheme != nil {
		return req.scheme
	}
	return c.currentScheme()
}

// abort releases the other roles of a failed request. Fenced attempts
// whose every op carries a watchdog skip the immediate cancel: each
// blocked role then resolves within OpTimeout with an attributed timeout
// naming the rank it waited on — the evidence blame voting needs. An
// early cancel would collapse those votes into anonymous context.Canceled
// knock-ons, letting whichever watchdog happened to fire first (possibly
// the faulty rank's own, blaming an innocent peer) decide the vote alone.
// finish still cancels once the request resolves, so nothing outlives it.
func (c *Cluster) abort(req *request) {
	if req.fenced && c.opts.OpTimeout > 0 {
		return
	}
	req.cancel()
}

// Pending is a submitted request's handle.
type Pending struct {
	c   *Cluster
	req *request
}

// ID returns the request's cluster-unique id.
func (p *Pending) ID() uint64 { return p.req.id }

// Done is closed when the request has completed (successfully or not).
func (p *Pending) Done() <-chan struct{} { return p.req.done }

// wait blocks until the request resolves, the cluster closes, or ctx ends.
func (p *Pending) wait(ctx context.Context) error {
	select {
	case <-p.req.done:
		return p.req.err
	case <-p.c.serveCtx.Done():
		select {
		case <-p.req.done: // resolution raced the shutdown; prefer it
			return p.req.err
		default:
			return errServingStopped
		}
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Wait blocks until the request completes and returns its result.
func (p *Pending) Wait(ctx context.Context) (*Result, error) {
	if err := p.wait(ctx); err != nil {
		return nil, err
	}
	req := p.req
	attempts := req.attempts
	if attempts == 0 {
		attempts = 1
	}
	// A nil live set means "full cluster"; an empty one means the terminal
	// served the request alone, so the distinction must survive the copy.
	var live []int
	if req.live != nil {
		live = append(make([]int, 0, len(req.live)), req.live...)
	}
	return &Result{
		ID:        req.id,
		Output:    req.output,
		Latency:   req.latency,
		PerDevice: append([]comm.Stats(nil), req.perDevice...),
		Strategy:  req.strategy,
		Attempts:  attempts,
		Degraded:  req.degraded,
		Live:      live,
		Trace:     req.trace,
	}, nil
}

// Serve starts the persistent serving goroutines. It is idempotent and is
// called implicitly by the first Submit; clusters that never serve never
// spawn them.
func (c *Cluster) Serve() {
	c.serveOnce.Do(func() {
		c.flight.Eventf("serving", -1, "serving runtime started: %d workers + terminal, max batch %d",
			c.k, c.maxBatch())
		for r := 0; r < c.k; r++ {
			go c.workerLoop(r)
		}
		go c.dispatchLoop()
		go c.collectLoop()
	})
}

// Submit admits one inference request and returns immediately with its
// handle. Requests execute in admission order; many may be in flight at
// once, overlapping the terminal's I/O for one request with the workers'
// compute for another.
func (c *Cluster) Submit(ctx context.Context, strategy Strategy, x *tensor.Matrix) (*Pending, error) {
	runner, err := runnerFor(strategy)
	if err != nil {
		return nil, err
	}
	if x == nil {
		return nil, fmt.Errorf("cluster: nil input")
	}
	if c.opts.MaxRetries > 0 {
		return c.submitSupervised(ctx, strategy, x)
	}
	return c.submit(ctx, &request{strategy: strategy, runner: runner, x: x})
}

// submit finalizes the request's bookkeeping and enqueues it.
func (c *Cluster) submit(ctx context.Context, req *request) (*Pending, error) {
	c.Serve()
	if req.scheme == nil {
		// Pin the installed scheme for the request's whole lifetime: every
		// rank partitions identically, and an adaptive install mid-flight
		// only affects work admitted after it (the between-requests safe
		// boundary). Degraded attempts arrive with their own re-slice.
		req.scheme, req.schemeGen = c.schemeSnapshot()
	}
	req.id = c.nextID.Add(1)
	if c.opts.TraceRequests {
		req.trace = trace.NewRequestTrace()
		req.trace.SetID(req.id)
	}
	req.done = make(chan struct{})
	req.errs = make([]error, c.k+1)
	req.perDevice = make([]comm.Stats, c.k+1)
	if d := c.opts.RequestTimeout; d > 0 && !req.noTimeout {
		// The deadline bounds one attempt end to end; a drop anywhere in the
		// mesh resolves as comm.ErrTimeout (normalized in collect) instead of
		// hanging the serving loops.
		deadlineCtx, deadlineCancel := context.WithTimeout(ctx, d)
		req.ctx, req.cancel = context.WithCancel(deadlineCtx)
		inner := req.cancel
		req.cancel = func() { inner(); deadlineCancel() }
	} else {
		req.ctx, req.cancel = context.WithCancel(ctx)
	}
	req.workers.Add(c.k)
	// Deterministic fast-fail: a select with a ready queue slot could
	// otherwise accept a request after Close.
	if c.serveCtx.Err() != nil {
		req.cancel()
		return nil, errServingStopped
	}
	select {
	case c.queue <- req:
		c.metrics.observeQueue(len(c.queue))
		return &Pending{c: c, req: req}, nil
	case <-c.serveCtx.Done():
		req.cancel()
		return nil, errServingStopped
	case <-ctx.Done():
		req.cancel()
		return nil, ctx.Err()
	}
}

// dispatchLoop sequences admitted requests into the mesh.
func (c *Cluster) dispatchLoop() {
	ex := comm.NewExchange(c.pool)
	for {
		select {
		case req := <-c.queue:
			c.metrics.dequeued(len(c.queue))
			if err := req.ctx.Err(); err != nil {
				// The caller abandoned the request while it waited in the
				// queue: drop it here instead of spending a mesh slot
				// broadcasting input nobody will collect. These resolve with
				// the caller's context error and are counted only under
				// voltage_requests_canceled_total — they report caller
				// behaviour, not the workload.
				c.metrics.canceledInQueue()
				req.finish(err)
				continue
			}
			if !c.dispatch(req, ex) {
				c.drainQueue()
				return
			}
		case <-c.serveCtx.Done():
			c.drainQueue()
			return
		}
	}
}

// dispatch tags every worker loop with the request and runs the terminal's
// admission side. Returns false when the cluster shut down mid-dispatch.
func (c *Cluster) dispatch(req *request, ex *comm.Exchange) bool {
	c.metrics.inflightAdd(1)
	for r := 0; r < c.k; r++ {
		select {
		case c.admitCh[r] <- req:
		case <-c.serveCtx.Done():
			req.finish(errServingStopped)
			c.metrics.inflightAdd(-1)
			return false
		}
	}
	if !req.runner.exclusive() {
		scope := comm.Scoped(c.peers[c.terminalRank()])
		req.start = time.Now()
		err := req.runner.admit(req.ctx, c, scope, ex, req)
		c.recordPhase(req, c.terminalRank(), -1, trace.PhaseBoundary, time.Since(req.start))
		if err != nil {
			req.errs[c.k] = err
			c.abort(req) // unblock workers waiting on input
		}
		req.admitStats = scope.Stats()
	}
	select {
	case c.collectCh <- req:
	case <-c.serveCtx.Done():
		req.finish(errServingStopped)
		c.metrics.inflightAdd(-1)
		return false
	}
	if req.runner.exclusive() || req.fenced {
		// The exclusive terminal protocol interleaves sends and receives,
		// and fenced (fault-tolerant) attempts need failure isolation, so
		// nothing else may enter the mesh until the request resolves. The
		// fence stalls every queued request behind it — generation blocking
		// classification traffic — so its frequency and duration are
		// metered for gateway operators.
		fenceStart := time.Now()
		c.metrics.fenceBegin(req.runner.exclusive())
		defer func() { c.metrics.fenceEnd(time.Since(fenceStart)) }()
		select {
		case <-req.done:
			if req.err != nil {
				// An aborted protocol can leave undelivered messages queued
				// on the FIFO links; flush so the next request's streams
				// start aligned.
				c.flushResidue()
			}
		case <-c.serveCtx.Done():
			// Shutdown landed mid-attempt. The abandoned attempt's residue
			// must still drain — before this fix it stayed queued, pinning
			// pooled buffers past Close. finish is once-guarded, so racing
			// the collector (which may be resolving the request right now,
			// or may already have exited without adopting it) is harmless;
			// either way the request is resolved before the flush runs.
			req.finish(errServingStopped)
			c.flushResidue()
			return false
		}
	}
	return true
}

// flushResidue drops whatever undelivered messages an aborted attempt left
// queued on the FIFO links, so the next request's streams start aligned.
// The flush goes through the wrapped peer stack (flushing the raw mesh
// directly would bypass any state a wrapper layers on top); when an opaque
// WrapTransport hides the Flusher, it falls back to the raw mesh so the
// links still drain.
func (c *Cluster) flushResidue() {
	if comm.TryFlush(c.peers[0]) {
		return
	}
	c.mesh[0].Flush()
}

// recordPhase feeds one timed step to every observer: the lifetime
// Recorder, the request's span trace, the phase counters, and the rolling
// per-rank profile — each of which may individually be disabled (all four
// sinks are nil-safe). layer is -1 for boundary work that belongs to no
// layer.
func (c *Cluster) recordPhase(req *request, rank, layer int, phase trace.Phase, d time.Duration) {
	c.opts.Recorder.Add(rank, phase, d)
	req.trace.Add(rank, layer, phase, d)
	c.metrics.phase(phase, d)
	c.obs.RecordPhase(rank, phase, d)
}

// drainQueue fails every queued-but-undispatched request at shutdown.
func (c *Cluster) drainQueue() {
	for {
		select {
		case req := <-c.queue:
			req.finish(errServingStopped)
		default:
			return
		}
	}
}

// workerLoop is rank's persistent device goroutine: it executes the device
// side of each tagged request, in admission order.
func (c *Cluster) workerLoop(rank int) {
	ex := comm.NewExchange(c.pool)
	for {
		select {
		case req := <-c.admitCh[rank]:
			scope := req.scope(c, rank)
			err := req.runner.worker(req.ctx, c, scope, ex, rank, req)
			req.errs[rank] = err
			req.perDevice[rank] = scope.Stats()
			if err != nil {
				c.abort(req) // release the other roles
			}
			req.workers.Done()
		case <-c.serveCtx.Done():
			// Unblock the collector for requests this loop will never run.
			for {
				select {
				case req := <-c.admitCh[rank]:
					req.errs[rank] = errServingStopped
					req.workers.Done()
				default:
					return
				}
			}
		}
	}
}

// collectLoop completes requests: it drains the terminal's result side,
// waits for the workers, and resolves the handle.
func (c *Cluster) collectLoop() {
	ex := comm.NewExchange(c.pool)
	for {
		select {
		case req := <-c.collectCh:
			c.collect(req, ex)
		case <-c.serveCtx.Done():
			for {
				select {
				case req := <-c.collectCh:
					req.finish(errServingStopped)
					c.metrics.inflightAdd(-1)
				default:
					return
				}
			}
		}
	}
}

// collect runs the terminal's result side of one request and finalizes its
// latency, stats, and error.
func (c *Cluster) collect(req *request, ex *comm.Exchange) {
	scope := req.scope(c, c.terminalRank())
	if req.runner.exclusive() {
		req.start = time.Now()
	}
	drainStart := time.Now()
	err := req.runner.collect(req.ctx, c, scope, ex, req)
	req.latency = time.Since(req.start)
	c.recordPhase(req, c.terminalRank(), -1, trace.PhaseBoundary, time.Since(drainStart))
	if err != nil {
		c.abort(req) // release workers blocked on a failed terminal
		if req.errs[c.k] == nil {
			req.errs[c.k] = err
		}
	}
	req.workers.Wait()
	req.perDevice[c.k] = req.admitStats.Add(scope.Stats())
	cause := c.rootCause(req)
	// Every dispatched attempt is observed here; the caller-visible request
	// is observed here too unless a supervisor owns it (retry.go), which
	// counts the request once its attempts conclude.
	c.metrics.observeAttempt(req.latency, req.perDevice, cause)
	if !req.supervised {
		c.metrics.observeRequest(1, req.degraded, cause)
	}
	c.observeResolved(req, cause)
	c.metrics.inflightAdd(-1)
	req.finish(cause)
}

// rootCause elects the request's reported error from its per-role slots.
// Attributed errors (comm.RemoteError names a culprit rank) outrank plain
// failures, which outrank deadline expiries, which outrank the secondary
// context.Canceled knock-ons that every other role resolves with once the
// request context is torn down. A deadline expiry from the per-request
// watchdog is normalized to the typed comm.ErrTimeout so callers (and the
// retry supervisor) can match it with errors.Is.
func (c *Cluster) rootCause(req *request) error {
	var first error
	rank := -1
	for r, e := range req.errs {
		if e == nil {
			continue
		}
		if first == nil || causePriority(e) > causePriority(first) {
			first, rank = e, r
		}
	}
	if first == nil {
		return nil
	}
	if errors.Is(first, context.DeadlineExceeded) && !errors.Is(first, comm.ErrTimeout) {
		first = fmt.Errorf("%w: %w", comm.ErrTimeout, first)
	}
	return fmt.Errorf("cluster: rank %d (%s): %w", rank, req.runner.name(), first)
}

// causePriority ranks candidate root causes; higher wins.
func causePriority(err error) int {
	if _, ok := comm.RemoteRank(err); ok {
		return 3
	}
	if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		return 2
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return 1
	}
	return 0 // context.Canceled — a knock-on from the shared request cancel
}
