package cluster

import (
	"context"
	"errors"
	"sync"
	"time"

	"voltage/internal/comm"
)

// Device health tracking for degraded-mode serving. The tracker records
// per-rank failure causes gathered from a failed request's error slots and
// drives three states:
//
//	Healthy   — serves requests normally.
//	Unhealthy — excluded from new requests; entered on a blamed failure.
//	Probation — an unhealthy rank whose ProbeAfter window has elapsed: it
//	            is offered the next request and recovers to Healthy on
//	            success (or returns to Unhealthy on failure).
//
// Blame is attributed by voting: every error slot that carries a
// comm.RemoteError names a culprit (a corrupt frame names its sender, a
// receive timeout names the silent source), and a worker that failed with
// a directly-injected or local fault blames itself. Secondary
// cancellations — healthy ranks released by the request context after the
// first failure — carry no vote.

// HealthState is one rank's serving eligibility.
type HealthState int

// Health states.
const (
	// Healthy ranks serve requests normally.
	Healthy HealthState = iota
	// Probation ranks are unhealthy ranks being offered a probing request.
	Probation
	// Unhealthy ranks are excluded from new requests.
	Unhealthy
)

// String implements fmt.Stringer.
func (s HealthState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Probation:
		return "probation"
	case Unhealthy:
		return "unhealthy"
	default:
		return "unknown"
	}
}

// RankHealth is one worker's health snapshot.
type RankHealth struct {
	// Rank is the worker rank.
	Rank int
	// State is the current serving eligibility.
	State HealthState
	// Failures counts blamed failures over the cluster's lifetime.
	Failures int
	// LastErr is the cause of the most recent blamed failure (nil when the
	// rank has never failed).
	LastErr error
}

// healthTracker is the cluster's shared rank-health state. All methods are
// safe for concurrent use by the per-request supervisors.
type healthTracker struct {
	mu         sync.Mutex
	probeAfter time.Duration
	ranks      []rankHealth
	// onTransition, when non-nil, observes every state change (set once at
	// construction, before any request flows — the metrics mirror). Called
	// with the tracker's lock held; observers must not call back in.
	onTransition func(rank int, from, to HealthState)
}

// transition moves one rank's state, notifying the observer on change.
func (h *healthTracker) transition(rank int, to HealthState) {
	from := h.ranks[rank].state
	if from == to {
		return
	}
	h.ranks[rank].state = to
	if h.onTransition != nil {
		h.onTransition(rank, from, to)
	}
}

type rankHealth struct {
	state     HealthState
	failures  int
	lastErr   error
	downSince time.Time
}

func newHealthTracker(k int, probeAfter time.Duration) *healthTracker {
	return &healthTracker{probeAfter: probeAfter, ranks: make([]rankHealth, k)}
}

// live returns the worker ranks eligible for a new request: healthy ranks
// plus unhealthy ranks whose probation window has elapsed (marked
// Probation as a side effect).
func (h *healthTracker) live(now time.Time) []int {
	h.mu.Lock()
	defer h.mu.Unlock()
	live := make([]int, 0, len(h.ranks))
	for r := range h.ranks {
		rh := &h.ranks[r]
		if rh.state == Unhealthy && h.probeAfter > 0 && now.Sub(rh.downSince) >= h.probeAfter {
			h.transition(r, Probation)
		}
		if rh.state != Unhealthy {
			live = append(live, r)
		}
	}
	return live
}

// recordFailure blames rank for a failed attempt, moving it to Unhealthy.
func (h *healthTracker) recordFailure(rank int, cause error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if rank < 0 || rank >= len(h.ranks) {
		return
	}
	rh := &h.ranks[rank]
	h.transition(rank, Unhealthy)
	rh.failures++
	rh.lastErr = cause
	rh.downSince = time.Now()
}

// recordSuccess marks the given ranks healthy — probing ranks recover here.
func (h *healthTracker) recordSuccess(ranks []int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, r := range ranks {
		if r >= 0 && r < len(h.ranks) {
			h.transition(r, Healthy)
		}
	}
}

// snapshot returns every rank's health.
func (h *healthTracker) snapshot() []RankHealth {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]RankHealth, len(h.ranks))
	for r, rh := range h.ranks {
		out[r] = RankHealth{Rank: r, State: rh.state, Failures: rh.failures, LastErr: rh.lastErr}
	}
	return out
}

// Health returns a snapshot of every worker rank's health state.
func (c *Cluster) Health() []RankHealth {
	return c.health.snapshot()
}

// blameRank inspects a failed request's per-role errors (worker ranks
// first, terminal last) and elects the culprit worker by vote count:
// every attributed error names its remote rank, and a worker whose own
// failure is unattributed but not a secondary cancellation names itself.
// Returns -1 when no worker can be blamed (e.g. a caller cancellation).
func blameRank(errs []error, k int) (int, error) {
	votes := make([]int, k)
	causes := make([]error, k)
	for role, err := range errs {
		if err == nil || isSecondary(err) {
			continue
		}
		if r, ok := comm.RemoteRank(err); ok {
			if r >= 0 && r < k {
				votes[r]++
				if causes[r] == nil {
					causes[r] = err
				}
			}
			continue
		}
		if role < k { // a worker's own unattributed failure
			votes[role]++
			// The rank's own error states the cause directly (e.g. the
			// injected fault), where peers' attributed timeouts only record
			// the symptom — prefer it even when a peer's vote landed first.
			causes[role] = err
		}
	}
	best, bestVotes := -1, 0
	for r, v := range votes {
		if v > bestVotes {
			best, bestVotes = r, v
		}
	}
	if best < 0 {
		return -1, nil
	}
	return best, causes[best]
}

// isSecondary reports whether an error is a knock-on cancellation rather
// than a root cause: once one role fails, the request context is cancelled
// and every other blocked role resolves with context.Canceled.
func isSecondary(err error) bool {
	return errors.Is(err, context.Canceled) && !errors.Is(err, comm.ErrTimeout)
}

// retryable reports whether a failure is worth a degraded re-dispatch:
// injected faults, watchdog timeouts, corrupt frames, and request-deadline
// expiries. Logic errors (shape mismatches, strategy misuse) and caller
// cancellations are final.
func retryable(err error) bool {
	return errors.Is(err, comm.ErrInjected) ||
		errors.Is(err, comm.ErrTimeout) ||
		errors.Is(err, comm.ErrCorrupt) ||
		errors.Is(err, context.DeadlineExceeded)
}
