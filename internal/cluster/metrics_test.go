package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"voltage/internal/comm"
	"voltage/internal/trace"
)

func TestMetricsObserveHealthyServing(t *testing.T) {
	c := newTiny(t, 2, Options{})
	x := embedTiny(t, c, 8)
	const reqs = 3
	var wantSent [3]float64 // per mesh rank, from the per-request stats
	for i := 0; i < reqs; i++ {
		res, err := c.Infer(context.Background(), StrategyVoltage, x)
		if err != nil {
			t.Fatal(err)
		}
		for r, s := range res.PerDevice {
			wantSent[r] += float64(s.BytesSent)
		}
	}
	snap := c.Metrics()
	if got := snap.Counter(`voltage_requests_total{outcome="ok"}`); got != reqs {
		t.Errorf("requests ok = %v, want %d", got, reqs)
	}
	if got := snap.Counter(`voltage_attempts_total{outcome="ok"}`); got != reqs {
		t.Errorf("attempts ok = %v, want %d", got, reqs)
	}
	if got := snap.Counter(`voltage_requests_total{outcome="error"}`); got != 0 {
		t.Errorf("requests error = %v, want 0", got)
	}
	h, ok := snap.Histograms["voltage_request_latency_seconds"]
	if !ok || h.Count != reqs || h.Sum <= 0 {
		t.Errorf("latency histogram = %+v ok=%v, want %d observations", h, ok, reqs)
	}
	if h, ok := snap.Histograms["voltage_request_attempts"]; !ok || h.Count != reqs {
		t.Errorf("attempts histogram count = %d, want %d", h.Count, reqs)
	}
	// The traffic counters must observe exactly the per-request accounting —
	// metrics ride on the existing stat scopes, never a second count.
	for r, lbl := range []string{"0", "1", "terminal"} {
		key := fmt.Sprintf("voltage_comm_bytes_sent_total{rank=%q}", lbl)
		if got := snap.Counter(key); got != wantSent[r] {
			t.Errorf("%s = %v, want %v", key, got, wantSent[r])
		}
	}
	if got := snap.Gauge(`voltage_health_state{rank="0"}`); got != float64(Healthy) {
		t.Errorf("health gauge rank 0 = %v, want healthy", got)
	}
	if got := snap.Counter(`voltage_errors_total{type="timeout"}`); got != 0 {
		t.Errorf("timeout errors = %v on a healthy run", got)
	}
	if got := snap.Counter(`voltage_phase_seconds_total{phase="compute"}`); got <= 0 {
		t.Errorf("compute phase seconds = %v, want > 0", got)
	}
}

func TestNoMetricsServesUnobserved(t *testing.T) {
	c := newTiny(t, 2, Options{NoMetrics: true})
	if _, err := c.Infer(context.Background(), StrategyVoltage, embedTiny(t, c, 8)); err != nil {
		t.Fatal(err)
	}
	if c.MetricsRegistry() != nil {
		t.Fatal("NoMetrics should leave the registry nil")
	}
	snap := c.Metrics()
	if n := len(snap.Counters) + len(snap.Gauges) + len(snap.Histograms); n != 0 {
		t.Fatalf("NoMetrics snapshot has %d series, want 0", n)
	}
}

func httpGetBody(t *testing.T, url string, wantStatus int) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s = %d, want %d (body %q)", url, resp.StatusCode, wantStatus, body)
	}
	return string(body)
}

func TestAdminListenerServesClusterEndpoints(t *testing.T) {
	c := newTiny(t, 2, Options{AdminAddr: "127.0.0.1:0"})
	if _, err := c.Infer(context.Background(), StrategyVoltage, embedTiny(t, c, 8)); err != nil {
		t.Fatal(err)
	}
	addr := c.AdminAddr()
	if addr == "" {
		t.Fatal("AdminAddr empty after requesting a listener")
	}
	body := httpGetBody(t, "http://"+addr+"/metrics", http.StatusOK)
	for _, series := range []string{
		"# TYPE voltage_request_latency_seconds histogram",
		"voltage_request_latency_seconds_bucket",
		`voltage_requests_total{outcome="ok"} 1`,
		`voltage_comm_bytes_sent_total{rank="terminal"}`,
		`voltage_errors_total{type="timeout"} 0`,
		`voltage_health_state{rank="0"} 0`,
	} {
		if !strings.Contains(body, series) {
			t.Errorf("/metrics missing %q", series)
		}
	}
	health := httpGetBody(t, "http://"+addr+"/healthz", http.StatusOK)
	if !strings.Contains(health, `"ok":true`) || !strings.Contains(health, `"state":"healthy"`) {
		t.Errorf("/healthz body %q, want ok with per-rank detail", health)
	}
	c.Close()
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("admin listener survived Close")
	}
}

// TestChaosCountersNonzero runs the stalled-worker chaos scenario and
// asserts the observability layer saw it: transport-level op timeouts, a
// failed attempt with a typed timeout cause, a retry, a degraded request,
// and the blamed rank's health transition — all nonzero after one degraded
// inference.
func TestChaosCountersNonzero(t *testing.T) {
	c := newTiny(t, 3, Options{
		OpTimeout:      150 * time.Millisecond,
		RequestTimeout: 5 * time.Second,
		MaxRetries:     2,
		WrapTransport:  wrapRank(1, func(p comm.Peer) comm.Peer { return &comm.FlakyPeer{Inner: p, StallRecvAfter: 1} }),
	})
	res, err := c.Infer(context.Background(), StrategyVoltage, embedTiny(t, c, 9))
	if err != nil {
		t.Fatalf("stalled worker should degrade, not fail: %v", err)
	}
	if res.Attempts < 2 || !res.Degraded {
		t.Fatalf("attempts=%d degraded=%v, want a degraded retry", res.Attempts, res.Degraded)
	}
	snap := c.Metrics()
	for _, key := range []string{
		"voltage_op_timeouts_total",
		"voltage_retries_total",
		`voltage_attempts_total{outcome="error"}`,
		`voltage_attempts_total{outcome="ok"}`,
		`voltage_errors_total{type="timeout"}`,
		`voltage_requests_total{outcome="ok"}`,
		"voltage_degraded_requests_total",
		`voltage_health_transitions_total{state="unhealthy"}`,
	} {
		if got := snap.Counter(key); got <= 0 {
			t.Errorf("%s = %v, want > 0 after chaos", key, got)
		}
	}
	if got := snap.Gauge(`voltage_health_state{rank="1"}`); got != float64(Unhealthy) {
		t.Errorf("health gauge rank 1 = %v, want unhealthy (%d)", got, Unhealthy)
	}
}

// TestRequestTraceOnResult pins the per-request span trace: every live
// rank contributes one compute span per layer and one comm span per
// All-Gather, the terminal's boundary work appears as layer −1 spans, and
// the trace carries the request's admission id.
func TestRequestTraceOnResult(t *testing.T) {
	c := newTiny(t, 2, Options{TraceRequests: true})
	res, err := c.Infer(context.Background(), StrategyVoltage, embedTiny(t, c, 8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("TraceRequests set but Result.Trace nil")
	}
	if res.Trace.ID() != res.ID {
		t.Fatalf("trace id %d, want request id %d", res.Trace.ID(), res.ID)
	}
	layers := len(c.Model(0).Layers)
	compute := make(map[int]int) // rank -> compute spans
	comms := make(map[int]int)
	boundary := 0
	for _, s := range res.Trace.Spans() {
		switch s.Phase {
		case trace.PhaseCompute:
			compute[s.Rank]++
		case trace.PhaseComm:
			comms[s.Rank]++
		case trace.PhaseBoundary:
			if s.Rank != c.K() || s.Layer != -1 {
				t.Errorf("boundary span %+v, want terminal rank %d layer -1", s, c.K())
			}
			boundary++
		}
	}
	for r := 0; r < c.K(); r++ {
		if compute[r] != layers {
			t.Errorf("rank %d compute spans = %d, want %d", r, compute[r], layers)
		}
		if comms[r] != layers-1 {
			t.Errorf("rank %d comm spans = %d, want %d", r, comms[r], layers-1)
		}
	}
	if boundary < 2 {
		t.Errorf("boundary spans = %d, want admit + collect", boundary)
	}
	if totals := res.Trace.PhaseTotals(); totals[trace.PhaseCompute] <= 0 {
		t.Errorf("compute total = %v, want > 0", totals[trace.PhaseCompute])
	}

	// Untraced clusters pay nothing and surface nothing.
	plain := newTiny(t, 2, Options{})
	pres, err := plain.Infer(context.Background(), StrategyVoltage, embedTiny(t, plain, 8))
	if err != nil {
		t.Fatal(err)
	}
	if pres.Trace != nil {
		t.Fatal("Result.Trace set without TraceRequests")
	}
}
