package cluster

import (
	"context"
	"testing"
	"time"

	"voltage/internal/model"
	"voltage/internal/netem"
)

func newTinyDecoder(t testing.TB, k int, opts Options) *Cluster {
	t.Helper()
	c, err := NewMem(model.TinyDecoder(), k, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestGenerateVoltageMatchesSingleDeviceIncremental(t *testing.T) {
	c := newTinyDecoder(t, 3, Options{})
	prompt := []int{4, 8, 15}
	const steps = 6
	res, err := c.GenerateVoltage(context.Background(), prompt, steps)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: single-device KV-cached generation on an identical
	// replica.
	ref, err := model.NewRandom(model.TinyDecoder(), 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.GenerateIncremental(prompt, steps)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tokens) != len(want) {
		t.Fatalf("lengths differ: %d vs %d (%v vs %v)", len(res.Tokens), len(want), res.Tokens, want)
	}
	for i := range want {
		if res.Tokens[i] != want[i] {
			t.Fatalf("distributed decoding diverges at %d: %v vs %v", i, res.Tokens, want)
		}
	}
	if res.PrefillLatency <= 0 || res.DecodeLatency <= 0 {
		t.Fatalf("latencies %v / %v", res.PrefillLatency, res.DecodeLatency)
	}
	if len(res.PerDevice) != 4 {
		t.Fatalf("PerDevice %d entries", len(res.PerDevice))
	}
}

func TestGenerateVoltageMatchesFullRecomputeGeneration(t *testing.T) {
	// And against the non-cached distributed path used by Engine.Generate.
	c := newTinyDecoder(t, 2, Options{})
	prompt := []int{1, 2, 3, 4}
	const steps = 4
	fast, err := c.GenerateVoltage(context.Background(), prompt, steps)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := model.NewRandom(model.TinyDecoder(), 1)
	if err != nil {
		t.Fatal(err)
	}
	slow := append([]int(nil), prompt...)
	for i := 0; i < steps; i++ {
		next, err := ref.NextToken(slow)
		if err != nil {
			t.Fatal(err)
		}
		slow = append(slow, next)
	}
	for i := range slow {
		if fast.Tokens[i] != slow[i] {
			t.Fatalf("cached and full decoding diverge at %d: %v vs %v", i, fast.Tokens, slow)
		}
	}
}

func TestGenerateVoltageValidation(t *testing.T) {
	enc := newTiny(t, 2, Options{})
	if _, err := enc.GenerateVoltage(context.Background(), []int{1}, 2); err == nil {
		t.Fatal("want error for encoder model")
	}
	dec := newTinyDecoder(t, 2, Options{})
	if _, err := dec.GenerateVoltage(context.Background(), nil, 2); err == nil {
		t.Fatal("want error for empty prompt")
	}
	if _, err := dec.GenerateVoltage(context.Background(), []int{1}, -1); err == nil {
		t.Fatal("want error for negative steps")
	}
}

func TestGenerateVoltageMaxSeqCap(t *testing.T) {
	cfg := model.TinyDecoder()
	cfg.MaxSeq = 6
	c, err := NewMem(cfg, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	res, err := c.GenerateVoltage(context.Background(), []int{1, 2, 3}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tokens) > 6 {
		t.Fatalf("generated %d tokens past MaxSeq", len(res.Tokens))
	}
}

func TestGenerateVoltageDecodeTrafficTiny(t *testing.T) {
	// The point of the KV-cached path: decode-step traffic per worker is
	// tiny (a 4-byte frame in; worker 0 sends one F-row back), far below
	// one prefill All-Gather.
	c := newTinyDecoder(t, 3, Options{})
	prompt := []int{2, 4, 6, 8, 10, 12, 14, 16}
	res, err := c.GenerateVoltage(context.Background(), prompt, 5)
	if err != nil {
		t.Fatal(err)
	}
	f := c.Config().F
	// Worker 1 (not the reporter): receives prompt + gathers + 4-byte
	// frames; sends only All-Gather partitions during prefill.
	w1 := res.PerDevice[1]
	prefillSend := int64(c.Config().Layers-1) * int64(2) * (int64(4*len(prompt)*f/3) + 12)
	if w1.BytesSent > 2*prefillSend+1024 {
		t.Fatalf("worker 1 sent %d bytes, expected ≈prefill-only (%d)", w1.BytesSent, prefillSend)
	}
	// Terminal's decode sends: 4 bytes per worker per step.
	if res.DecodeLatency > res.PrefillLatency*100 {
		t.Fatalf("decode %v unreasonably slow vs prefill %v", res.DecodeLatency, res.PrefillLatency)
	}
}

func TestGenerateVoltageUnderBandwidthLimit(t *testing.T) {
	c := newTinyDecoder(t, 2, Options{Profile: netem.Profile{BandwidthMbps: 50, Latency: time.Millisecond}})
	res, err := c.GenerateVoltage(context.Background(), []int{1, 2, 3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tokens) != 6 {
		t.Fatalf("tokens %d", len(res.Tokens))
	}
}

func TestGenerateVoltageContextCancel(t *testing.T) {
	c := newTinyDecoder(t, 2, Options{Profile: netem.Profile{BandwidthMbps: 0.05}})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := c.GenerateVoltage(ctx, []int{1, 2, 3, 4, 5, 6, 7, 8}, 3); err == nil {
		t.Fatal("want error from cancelled generation")
	}
}
