package cluster

import (
	"context"
	"fmt"
	"time"

	"voltage/internal/comm"
	"voltage/internal/pipeline"
	"voltage/internal/tensor"
)

// PipelineResult reports a pipelined multi-request run.
type PipelineResult struct {
	// Outputs are the final hidden states per request, in order.
	Outputs []*tensor.Matrix
	// FirstLatency is the terminal-observed latency of the first request
	// (what a single user experiences — the paper's point: pipelining
	// cannot reduce this).
	FirstLatency time.Duration
	// Makespan is the time from the first send to the last result; the
	// throughput is len(Outputs)/Makespan.
	Makespan time.Duration
	// PerDevice holds each device's traffic (workers first, terminal
	// last).
	PerDevice []comm.Stats
}

// Throughput returns completed requests per second over the makespan.
func (r *PipelineResult) Throughput() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(len(r.Outputs)) / r.Makespan.Seconds()
}

// InferPipeline runs the requests through the pipeline-parallel baseline:
// the layer stack is split across the K workers and the microbatches
// stream through the stages. All requests must share the same shape.
//
// The pipeline's terminal feeds and drains concurrently, so the serving
// runtime treats it as exclusive: sequenced with other requests, nothing
// overlapping it.
func (c *Cluster) InferPipeline(ctx context.Context, xs []*tensor.Matrix) (*PipelineResult, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("cluster: no pipeline requests")
	}
	req := &request{
		runner:  pipelineRunner{},
		xs:      xs,
		pipeRes: &PipelineResult{},
	}
	pend, err := c.submit(ctx, req)
	if err != nil {
		return nil, err
	}
	if err := pend.wait(ctx); err != nil {
		return nil, err
	}
	res := req.pipeRes
	res.PerDevice = append([]comm.Stats(nil), req.perDevice...)
	return res, nil
}

// pipelineRunner is the pipeline-parallel baseline protocol.
type pipelineRunner struct{}

func (pipelineRunner) name() string    { return "pipeline" }
func (pipelineRunner) exclusive() bool { return true }

// admit is unused: exclusive runners run their whole terminal side in
// collect.
func (pipelineRunner) admit(ctx context.Context, c *Cluster, p comm.Peer, ex *comm.Exchange, req *request) error {
	return nil
}

func (pipelineRunner) collect(ctx context.Context, c *Cluster, p comm.Peer, ex *comm.Exchange, req *request) error {
	return c.pipelineTerminal(ctx, p, ex, req.xs, req.pipeRes)
}

func (pipelineRunner) worker(ctx context.Context, c *Cluster, p comm.Peer, ex *comm.Exchange, rank int, req *request) error {
	stage, err := pipeline.ShardLayers(c.models[rank], rank, c.k)
	if err != nil {
		return err
	}
	pace := func(ctx context.Context, start time.Time, flops int64) error {
		return c.paceRank(ctx, rank, start, flops)
	}
	return pipeline.RunStage(ctx, p, c.terminalRank(), stage, rank, c.k, len(req.xs), pace)
}

// pipelineTerminal feeds requests into stage 0 and drains results from the
// last stage concurrently, so the pipeline actually fills.
func (c *Cluster) pipelineTerminal(ctx context.Context, p comm.Peer, ex *comm.Exchange, xs []*tensor.Matrix, res *PipelineResult) error {
	lastStage := c.k - 1
	start := time.Now()

	sendErr := make(chan error, 1)
	go func() {
		// The feeder runs concurrently with the drain loop (and may outlive
		// an errored collect), so it keeps its own scratch buffer instead of
		// sharing the collector's Exchange.
		var buf []byte
		for _, x := range xs {
			buf = tensor.Encode(buf[:0], x)
			if err := p.Send(ctx, 0, buf); err != nil {
				sendErr <- err
				return
			}
		}
		sendErr <- nil
	}()

	outputs := make([]*tensor.Matrix, 0, len(xs))
	for i := range xs {
		blob, err := p.Recv(ctx, lastStage)
		if err != nil {
			return err
		}
		out, _, err := tensor.Decode(blob)
		if err != nil {
			return err
		}
		comm.ReleaseBuffer(blob)
		if i == 0 {
			res.FirstLatency = time.Since(start)
		}
		outputs = append(outputs, out)
	}
	res.Makespan = time.Since(start)
	res.Outputs = outputs
	return <-sendErr
}
