package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"voltage/internal/comm"
	"voltage/internal/pipeline"
	"voltage/internal/tensor"
)

// PipelineResult reports a pipelined multi-request run.
type PipelineResult struct {
	// Outputs are the final hidden states per request, in order.
	Outputs []*tensor.Matrix
	// FirstLatency is the terminal-observed latency of the first request
	// (what a single user experiences — the paper's point: pipelining
	// cannot reduce this).
	FirstLatency time.Duration
	// Makespan is the time from the first send to the last result; the
	// throughput is len(Outputs)/Makespan.
	Makespan time.Duration
	// PerDevice holds each device's traffic (workers first, terminal
	// last).
	PerDevice []comm.Stats
}

// Throughput returns completed requests per second over the makespan.
func (r *PipelineResult) Throughput() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(len(r.Outputs)) / r.Makespan.Seconds()
}

// InferPipeline runs the requests through the pipeline-parallel baseline:
// the layer stack is split across the K workers and the microbatches
// stream through the stages. All requests must share the same shape.
func (c *Cluster) InferPipeline(ctx context.Context, xs []*tensor.Matrix) (*PipelineResult, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("cluster: no pipeline requests")
	}
	before := make([]comm.Stats, c.k+1)
	for r := 0; r <= c.k; r++ {
		before[r] = c.peers[r].Stats()
	}
	res := &PipelineResult{}
	errs := make([]error, c.k+1)
	var wg sync.WaitGroup
	for r := 0; r < c.k; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			stage, err := pipeline.ShardLayers(c.models[r], r, c.k)
			if err != nil {
				errs[r] = err
				return
			}
			pace := func(ctx context.Context, start time.Time, flops int64) error {
				return c.paceRank(ctx, r, start, flops)
			}
			errs[r] = pipeline.RunStage(ctx, c.peers[r], c.terminalRank(), stage, r, c.k, len(xs), pace)
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		errs[c.k] = c.pipelineTerminal(ctx, xs, res)
	}()
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cluster: pipeline rank %d: %w", r, err)
		}
	}
	res.PerDevice = make([]comm.Stats, c.k+1)
	for r := 0; r <= c.k; r++ {
		after := c.peers[r].Stats()
		res.PerDevice[r] = comm.Stats{
			BytesSent: after.BytesSent - before[r].BytesSent,
			BytesRecv: after.BytesRecv - before[r].BytesRecv,
			MsgsSent:  after.MsgsSent - before[r].MsgsSent,
			MsgsRecv:  after.MsgsRecv - before[r].MsgsRecv,
		}
	}
	return res, nil
}

// pipelineTerminal feeds requests into stage 0 and drains results from the
// last stage concurrently, so the pipeline actually fills.
func (c *Cluster) pipelineTerminal(ctx context.Context, xs []*tensor.Matrix, res *PipelineResult) error {
	p := c.peers[c.terminalRank()]
	lastStage := c.k - 1
	start := time.Now()

	sendErr := make(chan error, 1)
	go func() {
		for _, x := range xs {
			if err := p.Send(ctx, 0, tensor.Encode(nil, x)); err != nil {
				sendErr <- err
				return
			}
		}
		sendErr <- nil
	}()

	outputs := make([]*tensor.Matrix, 0, len(xs))
	for i := range xs {
		blob, err := p.Recv(ctx, lastStage)
		if err != nil {
			return err
		}
		out, _, err := tensor.Decode(blob)
		if err != nil {
			return err
		}
		if i == 0 {
			res.FirstLatency = time.Since(start)
		}
		outputs = append(outputs, out)
	}
	res.Makespan = time.Since(start)
	res.Outputs = outputs
	return <-sendErr
}
