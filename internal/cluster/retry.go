package cluster

import (
	"context"
	"fmt"
	"time"

	"voltage/internal/comm"
	"voltage/internal/partition"
	"voltage/internal/tensor"
)

// Degraded-mode serving. When Options.MaxRetries > 0, every Submit runs
// under a per-request supervisor: a failed attempt is diagnosed (blame a
// rank from the request's error slots, mark it unhealthy) and the request
// is transparently re-dispatched over the surviving workers. The retry is
// cheap by construction — Voltage's position-wise partition means any
// contiguous re-slice of the sequence over the survivors is a valid plan,
// so a dead rank costs a re-partition, not a redesign:
//
//	attempt 1: K workers, the configured strategy
//	attempt n: the survivors, Voltage partition re-sliced over them
//	0 workers: the terminal computes the request locally (unpaced)
//
// Degraded outputs are bit-identical to a healthy cluster of the same
// surviving size: every worker holds a full model replica from the shared
// seed, so the surviving ranks run exactly the math a smaller cluster
// would.

// submitSupervised admits one fault-tolerant request: the returned handle
// resolves when an attempt succeeds or the retry budget is exhausted.
func (c *Cluster) submitSupervised(ctx context.Context, strategy Strategy, x *tensor.Matrix) (*Pending, error) {
	c.Serve()
	outer := &request{strategy: strategy, x: x, done: make(chan struct{})}
	outer.ctx, outer.cancel = context.WithCancel(ctx)
	if c.serveCtx.Err() != nil {
		outer.cancel()
		return nil, errServingStopped
	}
	go c.supervise(ctx, outer)
	return &Pending{c: c, req: outer}, nil
}

// supervise drives one request through its attempts.
func (c *Cluster) supervise(ctx context.Context, outer *request) {
	live := c.health.live(time.Now())
	var lastErr error
	maxAttempts := 1 + c.opts.MaxRetries
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		outer.attempts = attempt
		if len(live) == 0 {
			err := c.localFallback(outer)
			c.metrics.fallbackServed()
			c.metrics.observeRequest(attempt, true, err)
			outer.finish(err)
			return
		}
		inner, err := c.submitAttempt(ctx, outer.strategy, outer.x, live)
		if err != nil {
			c.metrics.observeRequest(attempt, false, err)
			outer.finish(err)
			return
		}
		ireq := inner.req
		select {
		case <-ireq.done:
		case <-c.serveCtx.Done():
			select {
			case <-ireq.done: // resolution raced the shutdown; prefer it
			default:
				// Shutdown-drain resolutions are deliberately not counted as
				// requests: they report the cluster dying, not the workload.
				outer.finish(errServingStopped)
				return
			}
		}
		outer.trace = ireq.trace // final attempt's trace wins
		if ireq.err == nil {
			outer.output = ireq.output
			outer.latency = ireq.latency
			outer.perDevice = ireq.perDevice
			outer.live = ireq.live
			outer.degraded = ireq.degraded
			c.health.recordSuccess(ireq.live)
			c.metrics.observeRequest(attempt, ireq.degraded, nil)
			outer.finish(nil)
			return
		}
		lastErr = ireq.err
		if !retryable(ireq.err) || ctx.Err() != nil || c.serveCtx.Err() != nil {
			c.metrics.observeRequest(attempt, ireq.degraded, ireq.err)
			outer.finish(ireq.err)
			return
		}
		// ireq.errs is safe to read here: collect() waits for every worker
		// before resolving the request.
		if blamed, cause := blameRank(ireq.errs, c.k); blamed >= 0 {
			c.health.recordFailure(blamed, cause)
			live = removeRank(live, blamed)
		}
	}
	c.metrics.observeRequest(maxAttempts, false, lastErr)
	outer.finish(fmt.Errorf("cluster: %d attempts exhausted: %w", maxAttempts, lastErr))
}

// submitAttempt enqueues one attempt over the given live ranks. A full
// complement runs the requested strategy; a degraded set always runs the
// Voltage partition re-sliced over the survivors.
func (c *Cluster) submitAttempt(ctx context.Context, strategy Strategy, x *tensor.Matrix, live []int) (*Pending, error) {
	// Fenced: the attempt owns the mesh exclusively so that, if it fails
	// mid-collective, the dispatcher can flush its residual traffic before
	// anything else enters. Fault tolerance trades mesh-level pipelining
	// for failure isolation; the admission queue still overlaps requests.
	req := &request{strategy: strategy, x: x, live: append([]int(nil), live...), fenced: true, supervised: true}
	if len(live) == c.k {
		runner, err := runnerFor(strategy)
		if err != nil {
			return nil, err
		}
		req.runner = runner
	} else {
		scheme, err := c.degradedScheme(live)
		if err != nil {
			return nil, err
		}
		req.runner = voltageRunner{}
		req.scheme = scheme
		req.degraded = true
	}
	return c.submit(ctx, req)
}

// degradedScheme re-partitions the sequence positions over the surviving
// ranks. Once the adaptive controller has installed a weighted scheme, a
// failure re-slice keeps the survivors' learned relative shares — the
// observed speeds are better evidence than the configured rates. Before
// any install, survivors weight by their configured compute rates on
// heterogeneous clusters, uniformly otherwise.
func (c *Cluster) degradedScheme(live []int) (*partition.Scheme, error) {
	if ratios, gen := c.adaptedRatios(); gen > 0 {
		weights := make([]float64, len(live))
		var sum float64
		for i, r := range live {
			weights[i] = ratios[r]
			sum += ratios[r]
		}
		// A survivor set whose installed shares are all zero (possible when
		// every survivor was squeezed out by the last install) falls through
		// to the static weighting below.
		if sum > 0 {
			return partition.Weighted(weights)
		}
	}
	if c.opts.HeteroDeviceFlops != nil {
		weights := make([]float64, len(live))
		for i, r := range live {
			weights[i] = c.opts.HeteroDeviceFlops[r]
		}
		return partition.Weighted(weights)
	}
	return partition.Even(len(live))
}

// adaptedRatios returns the installed scheme's ratio vector and its
// generation (0 = never re-partitioned).
func (c *Cluster) adaptedRatios() ([]float64, uint64) {
	c.schemeMu.RLock()
	defer c.schemeMu.RUnlock()
	return c.scheme.Ratios(), c.schemeGen
}

// localFallback serves a request on the terminal alone when no worker
// survives — the emulation's terminal holds a full model replica, so the
// request still resolves (unpaced, with no mesh traffic).
func (c *Cluster) localFallback(outer *request) error {
	start := time.Now()
	out, err := c.models[0].ForwardFeatures(outer.x)
	if err != nil {
		return err
	}
	outer.output = out
	outer.latency = time.Since(start)
	outer.perDevice = make([]comm.Stats, c.k+1)
	outer.live = []int{}
	outer.degraded = true
	return nil
}

// removeRank returns live without rank, preserving order.
func removeRank(live []int, rank int) []int {
	out := make([]int, 0, len(live))
	for _, r := range live {
		if r != rank {
			out = append(out, r)
		}
	}
	return out
}
