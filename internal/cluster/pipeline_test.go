package cluster

import (
	"context"
	"testing"

	"voltage/internal/model"
	"voltage/internal/tensor"
)

func TestInferPipelineCorrectness(t *testing.T) {
	c := newTiny(t, 3, Options{})
	ctx := context.Background()
	x1 := embedTiny(t, c, 10)
	single, err := c.Infer(ctx, StrategySingle, x1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.InferPipeline(ctx, []*tensor.Matrix{x1, x1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 2 {
		t.Fatalf("%d outputs", len(res.Outputs))
	}
	for i, out := range res.Outputs {
		if !out.AlmostEqual(single.Output, 1e-2) {
			t.Fatalf("pipeline output %d differs from single device", i)
		}
	}
	if res.FirstLatency <= 0 || res.Makespan < res.FirstLatency {
		t.Fatalf("timings: first %v makespan %v", res.FirstLatency, res.Makespan)
	}
	if res.Throughput() <= 0 {
		t.Fatal("throughput")
	}
}

func TestInferPipelineValidation(t *testing.T) {
	c := newTiny(t, 2, Options{})
	if _, err := c.InferPipeline(context.Background(), nil); err == nil {
		t.Fatal("want error for empty batch")
	}
}

func TestPipelineNoLatencyBenefitAtBatchOne(t *testing.T) {
	if raceEnabled {
		t.Skip("pacing-based timing comparison unreliable under -race")
	}
	// The paper's argument quantified: at batch size 1, the pipelined
	// first-request latency is no better than single-device. The paced
	// rate is far below any plausible real compute time per layer, so the
	// comparison stays deterministic even on loaded hosts.
	const rate = 2e6
	cfg := model.Tiny().Scaled(6)
	c, err := NewMem(cfg, 3, Options{DeviceFlops: rate})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	x := embedTiny(t, c, 32)
	ctx := context.Background()
	single, err := c.Infer(ctx, StrategySingle, x)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := c.InferPipeline(ctx, []*tensor.Matrix{x})
	if err != nil {
		t.Fatal(err)
	}
	// Allow 5% tolerance: identical total compute + transfer overhead.
	if float64(pipe.FirstLatency) < 0.95*float64(single.Latency) {
		t.Fatalf("pipeline batch-1 latency %v unexpectedly beat single device %v",
			pipe.FirstLatency, single.Latency)
	}
	t.Logf("batch-1: single=%v pipeline=%v (pipelining does not help individual latency)",
		single.Latency, pipe.FirstLatency)
}

func TestPipelineThroughputScalesWithBatch(t *testing.T) {
	if raceEnabled {
		t.Skip("pacing-based timing comparison unreliable under -race")
	}
	// With enough microbatches the pipeline's throughput approaches K×
	// a single stage — its actual strength. Slow paced rate: see above.
	const rate = 5e6
	cfg := model.Tiny().Scaled(6)
	c, err := NewMem(cfg, 3, Options{DeviceFlops: rate})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	x := embedTiny(t, c, 32)
	ctx := context.Background()

	one, err := c.InferPipeline(ctx, []*tensor.Matrix{x})
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]*tensor.Matrix, 9)
	for i := range batch {
		batch[i] = x
	}
	many, err := c.InferPipeline(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	if many.Throughput() < 1.5*one.Throughput() {
		t.Fatalf("pipeline throughput did not scale: 1 req %.2f/s vs 9 reqs %.2f/s",
			one.Throughput(), many.Throughput())
	}
	t.Logf("throughput: batch1=%.2f req/s batch9=%.2f req/s", one.Throughput(), many.Throughput())
}

func TestPipelineK1(t *testing.T) {
	c := newTiny(t, 1, Options{})
	x := embedTiny(t, c, 8)
	res, err := c.InferPipeline(context.Background(), []*tensor.Matrix{x})
	if err != nil {
		t.Fatal(err)
	}
	single, err := c.Infer(context.Background(), StrategySingle, x)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outputs[0].AlmostEqual(single.Output, 1e-3) {
		t.Fatal("K=1 pipeline output differs")
	}
}

func TestPipelineMoreDevicesThanLayers(t *testing.T) {
	// 2-layer model over 3 stages: one stage is empty and must still
	// relay correctly.
	c := newTiny(t, 3, Options{}) // Tiny has 2 layers
	x := embedTiny(t, c, 8)
	ctx := context.Background()
	single, err := c.Infer(ctx, StrategySingle, x)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.InferPipeline(ctx, []*tensor.Matrix{x})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outputs[0].AlmostEqual(single.Output, 1e-2) {
		t.Fatal("pipeline with empty stage differs")
	}
}
