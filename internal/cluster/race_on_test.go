//go:build race

package cluster

// raceEnabled reports whether the race detector is active; timing-based
// assertions (device pacing vs real compute) are skipped under -race
// because instrumented math overruns the emulated compute budgets.
const raceEnabled = true
