package cluster

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"voltage/internal/adapt"
	"voltage/internal/model"
	"voltage/internal/partition"
)

// --- chaos slow-rank injector ---------------------------------------------

func TestChaosSlowRankThrottlesDeviceRate(t *testing.T) {
	c := newTinyDecoder(t, 2, Options{DeviceFlops: 8e6, ChaosSlowRank: 1, ChaosSlowFactor: 4})
	if got := c.deviceRate(0); got != 8e6 {
		t.Fatalf("rank 0 rate = %v, want 8e6", got)
	}
	if got := c.deviceRate(1); got != 2e6 {
		t.Fatalf("throttled rank 1 rate = %v, want 2e6", got)
	}
}

func TestChaosSlowRankComposesWithHeteroRates(t *testing.T) {
	c := newTinyDecoder(t, 2, Options{
		HeteroDeviceFlops: []float64{8e6, 4e6},
		ChaosSlowRank:     0, ChaosSlowFactor: 2,
	})
	if got := c.deviceRate(0); got != 4e6 {
		t.Fatalf("throttled rank 0 rate = %v, want 4e6", got)
	}
	if got := c.deviceRate(1); got != 4e6 {
		t.Fatalf("rank 1 rate = %v, want 4e6", got)
	}
}

func TestAdaptAndChaosOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opts Options
	}{
		{"slow factor below one", Options{DeviceFlops: 1e6, ChaosSlowRank: 0, ChaosSlowFactor: 0.5}},
		{"slow factor exactly one", Options{DeviceFlops: 1e6, ChaosSlowRank: 0, ChaosSlowFactor: 1}},
		{"slow rank out of range", Options{DeviceFlops: 1e6, ChaosSlowRank: 2, ChaosSlowFactor: 4}},
		{"slow rank negative", Options{DeviceFlops: 1e6, ChaosSlowRank: -1, ChaosSlowFactor: 4}},
		{"slow rank without pacing", Options{ChaosSlowRank: 0, ChaosSlowFactor: 4}},
		{"negative adapt interval", Options{Adapt: true, AdaptInterval: -time.Second}},
		{"negative adapt threshold", Options{Adapt: true, AdaptThreshold: -0.5}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewMem(model.TinyDecoder(), 2, tc.opts); err == nil {
				t.Fatalf("NewMem accepted %+v", tc.opts)
			}
		})
	}
}

// --- scheme installation ---------------------------------------------------

func TestInstallSchemeValidation(t *testing.T) {
	c := newTinyDecoder(t, 3, Options{})
	if err := c.InstallScheme(nil, adapt.CauseManual, 0); err == nil {
		t.Fatal("nil scheme accepted")
	}
	wrong, err := partition.Even(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.InstallScheme(wrong, adapt.CauseManual, 0); err == nil {
		t.Fatal("scheme with wrong K accepted")
	}
}

func TestInstallSchemeSwapsServingScheme(t *testing.T) {
	c := newTinyDecoder(t, 3, Options{})
	target, err := partition.Weighted([]float64{3, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.InstallScheme(target, adapt.CauseManual, 0.25); err != nil {
		t.Fatal(err)
	}
	got := c.Scheme().Ratios()
	want := target.Ratios()
	for r := range want {
		if math.Abs(got[r]-want[r]) > 1e-12 {
			t.Fatalf("ratios = %v, want %v", got, want)
		}
	}
	snap := c.Metrics()
	if n := snap.Counter(`voltage_repartitions_total{cause="manual"}`); n != 1 {
		t.Fatalf("manual repartitions = %v, want 1", n)
	}
	for r := range want {
		key := fmt.Sprintf("voltage_partition_ratio{rank=%q}", fmt.Sprint(r))
		if g := snap.Gauge(key); math.Abs(g-want[r]) > 1e-12 {
			t.Fatalf("%s = %v, want %v", key, g, want[r])
		}
	}
}

// --- bit-exactness across migration ---------------------------------------

// TestGenerateExactAcrossInstallAtEveryCut re-slices the partition at every
// possible step boundary of a streaming generation and checks the output
// against the single-device oracle each time. The migration machinery
// (park, re-prefill under the new scheme, greedy resume) must be invisible
// in the token stream no matter where the cut lands.
func TestGenerateExactAcrossInstallAtEveryCut(t *testing.T) {
	const steps = 6
	prompt := batchPrompts[0]
	want := soloReference(t, [][]int{prompt}, steps)[0]
	for cut := 0; cut <= steps; cut++ {
		t.Run(fmt.Sprintf("cut%d", cut), func(t *testing.T) {
			c := newTinyDecoder(t, 3, Options{MaxBatch: 2})
			target, err := partition.Weighted([]float64{3, 2, 1})
			if err != nil {
				t.Fatal(err)
			}
			install := func() {
				if err := c.InstallScheme(target, adapt.CauseManual, 0); err != nil {
					t.Errorf("install: %v", err)
				}
			}
			seen := 0
			if cut == 0 {
				install() // before admission: the request pins the new scheme
			}
			res, err := c.GenerateVoltageStream(context.Background(), prompt, steps, func(int) {
				seen++
				if seen == cut {
					install()
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			if !equalTokens(res.Tokens, want) {
				t.Fatalf("cut %d: tokens %v, want %v", cut, res.Tokens, want)
			}
			if cut > 0 && cut < steps {
				// The install landed mid-residency, so the sequence must have
				// migrated (parked and re-prefilled) rather than rolled the
				// old scheme forward.
				if n := c.Metrics().Counter("voltage_batch_migrations_total"); n < 1 {
					t.Fatalf("cut %d: no migration recorded", cut)
				}
			}
			if res.Attempts != 1 {
				t.Fatalf("cut %d: attempts = %d, want 1 (migration must not spend retry budget)", cut, res.Attempts)
			}
		})
	}
}

// TestBatchedGenerateExactAcrossInstall migrates a full fused batch: four
// concurrent sequences at different cache positions, with the re-slice
// triggered from inside one sequence's token stream.
func TestBatchedGenerateExactAcrossInstall(t *testing.T) {
	c := newTinyDecoder(t, 3, Options{MaxBatch: 4, BatchWindow: 30 * time.Millisecond})
	const steps = 6
	want := soloReference(t, batchPrompts, steps)
	target, err := partition.Weighted([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}

	results := make([]*GenerateResult, len(batchPrompts))
	errs := make([]error, len(batchPrompts))
	var wg sync.WaitGroup
	for i := range batchPrompts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var onToken func(int)
			if i == 0 {
				seen := 0
				onToken = func(int) {
					seen++
					if seen == 2 {
						if err := c.InstallScheme(target, adapt.CauseManual, 0); err != nil {
							t.Errorf("install: %v", err)
						}
					}
				}
			}
			results[i], errs[i] = c.GenerateVoltageStream(context.Background(), batchPrompts[i], steps, onToken)
		}(i)
	}
	wg.Wait()
	for i := range batchPrompts {
		if errs[i] != nil {
			t.Fatalf("seq %d: %v", i, errs[i])
		}
		if !equalTokens(results[i].Tokens, want[i]) {
			t.Fatalf("seq %d: tokens %v, want %v", i, results[i].Tokens, want[i])
		}
		if results[i].Attempts != 1 {
			t.Fatalf("seq %d: attempts = %d, want 1", i, results[i].Attempts)
		}
	}
	if n := c.Metrics().Counter("voltage_batch_migrations_total"); n < 1 {
		t.Fatalf("no migration recorded, counter = %v", n)
	}
}

// --- closed-loop acceptance ------------------------------------------------

// TestAdaptConvergesAndOutpacesStaticEven is the end-to-end acceptance run:
// with one of three ranks throttled 4x, the controller must re-slice the
// partition toward the analytic optimum ([4/9 4/9 1/9]) and the adapted
// cluster must clearly outrun a static-even cluster under the identical
// throttle on partition-dominated (prefill-heavy) work. Everything stays
// bit-identical to the single-device oracle throughout.
//
// The measured workload uses a long context (240-position prompts on a
// MaxSeq-256 tiny decoder): prefill's replicated KV-cache build costs a
// fixed ~F/H positions' worth of work per rank per layer, so short
// prompts cap the achievable speedup well below the partition's — at
// N=240 the expected ratio is ~1.75 across the whole band of shares the
// EWMA plausibly converges to, comfortably clear of the 1.5x bar.
func TestAdaptConvergesAndOutpacesStaticEven(t *testing.T) {
	if testing.Short() {
		t.Skip("paced acceptance run")
	}
	const (
		k        = 3
		slowRank = 2
	)
	cfg := model.TinyDecoder()
	cfg.MaxSeq = 256
	mkOpts := func(adaptive bool) Options {
		o := Options{
			// Slow enough that paced compute dominates fixed per-request
			// overhead (sleep overshoot, scheduling) — the speedup ratio
			// then reflects the partition, not the harness.
			DeviceFlops:     16e6,
			ChaosSlowRank:   slowRank,
			ChaosSlowFactor: 4,
			MaxBatch:        4,
			BatchWindow:     5 * time.Millisecond,
		}
		if adaptive {
			o.Adapt = true
			o.AdaptInterval = 10 * time.Millisecond
			o.AdaptEvals = 2
			o.AdaptCooldown = 100 * time.Millisecond
			// A tight threshold lets the controller refine an early
			// half-converged install all the way to the optimum instead of
			// stopping one position short of it.
			o.AdaptThreshold = 0.05
		}
		return o
	}
	mkCluster := func(adaptive bool) *Cluster {
		c, err := NewMem(cfg, k, mkOpts(adaptive))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		return c
	}
	ref, err := model.NewRandom(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	solo := func(prompt []int, steps int) []int {
		w, err := ref.GenerateIncremental(prompt, steps)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	adaptive := mkCluster(true)

	// Sensing burst: fused decode steps are replicated work, so the
	// per-rank step EWMAs read the 4x throttle directly. The burst runs
	// long enough for the profile to settle and the hysteresis to clear;
	// any migration it triggers mid-flight must not perturb the tokens.
	const senseSteps = 24
	var wg sync.WaitGroup
	senseRes := make([]*GenerateResult, len(batchPrompts))
	senseErr := make([]error, len(batchPrompts))
	for i := range batchPrompts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			senseRes[i], senseErr[i] = adaptive.GenerateVoltage(context.Background(), batchPrompts[i], senseSteps)
		}(i)
	}
	wg.Wait()
	for i := range batchPrompts {
		if senseErr[i] != nil {
			t.Fatalf("sense seq %d: %v", i, senseErr[i])
		}
		if !equalTokens(senseRes[i].Tokens, solo(batchPrompts[i], senseSteps)) {
			t.Fatalf("sense seq %d: tokens diverged across adaptation", i)
		}
	}

	// The controller keeps evaluating the stored profile after the burst
	// drains, so poll for the install rather than racing it. An early
	// install from a half-converged EWMA may be refined by a follow-up
	// move one cooldown later, so wait until the scheme has both reached
	// the optimum's neighborhood and stopped moving — a mid-measurement
	// install would bill a full re-prefill to one timed request.
	// Race instrumentation slows host math past the fast ranks' paced
	// budgets, so the measured skew (and thus the converged shares) stops
	// reflecting the emulated 4x rate split — only the loose loop-closure
	// checks hold there.
	shareGate := 0.135
	if raceEnabled {
		shareGate = 0.25
	}
	deadline := time.Now().Add(30 * time.Second)
	var stableSince time.Time
	var prev []float64
	for {
		snap := adaptive.Metrics()
		installed := snap.Counter(`voltage_repartitions_total{cause="straggler"}`) +
			snap.Counter(`voltage_repartitions_total{cause="skew"}`)
		ratios := adaptive.Scheme().Ratios()
		changed := prev == nil || len(prev) != len(ratios)
		for r := range ratios {
			if changed || ratios[r] != prev[r] {
				changed = true
				break
			}
		}
		now := time.Now()
		if changed {
			stableSince = now
			prev = ratios
		}
		if installed >= 1 && ratios[slowRank] < shareGate && now.Sub(stableSince) > 600*time.Millisecond {
			break
		}
		if now.After(deadline) {
			t.Fatalf("controller never converged: repartitions=%v ratios=%v",
				installed, ratios)
		}
		time.Sleep(20 * time.Millisecond)
	}
	ratios := adaptive.Scheme().Ratios()
	// Analytic optimum gives the slow rank 1/9 of the positions; accept
	// anything clearly below its even share.
	if ratios[slowRank] > shareGate {
		t.Fatalf("slow rank share = %.3f, want < %.3f (optimum 1/9)", ratios[slowRank], shareGate)
	}
	if raceEnabled {
		t.Skip("skipping paced throughput comparison under the race detector")
	}
	if math.Abs(ratios[0]-ratios[1]) > 0.15 {
		t.Fatalf("fast ranks should share evenly, got %v", ratios)
	}

	// Measurement: prefill is the partition-dependent phase (decode-step
	// math is replicated), so the payoff workload is long prompts with a
	// single readout step. One untimed warmup request per cluster drains
	// any fused-step backlog the sensing burst left queued on the slow
	// rank's FIFO — the criterion is steady-state throughput.
	prompt := make([]int, 240)
	for i := range prompt {
		prompt[i] = (i*7 + 3) % 100
	}
	const reqs = 3
	measWant := solo(prompt, 1)
	measure := func(c *Cluster) time.Duration {
		t.Helper()
		run := func() {
			res, err := c.GenerateVoltage(context.Background(), prompt, 1)
			if err != nil {
				t.Fatal(err)
			}
			if !equalTokens(res.Tokens, measWant) {
				t.Fatalf("measured tokens %v, want %v", res.Tokens, measWant)
			}
		}
		run() // warmup, untimed
		start := time.Now()
		for i := 0; i < reqs; i++ {
			run()
		}
		return time.Since(start)
	}
	static := mkCluster(false)
	adaptedTime := measure(adaptive)
	staticTime := measure(static)
	speedup := float64(staticTime) / float64(adaptedTime)
	t.Logf("prefill-heavy throughput: static-even %v, adapted %v (%.2fx)", staticTime, adaptedTime, speedup)
	if speedup < 1.5 {
		t.Fatalf("adapted cluster only %.2fx faster than static-even, want >= 1.5x", speedup)
	}
}
