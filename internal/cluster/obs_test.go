package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"voltage/internal/comm"
)

// TestProfileSkewConvergesOnSlowRank is the tentpole acceptance check: one
// rank paced 4x slower than its peers must surface as per-round skew above
// the straggler threshold, flip the rank's persistent-straggler flag, and
// pull the per-rank fused-step and compute-phase EWMAs apart.
func TestProfileSkewConvergesOnSlowRank(t *testing.T) {
	c := newTinyDecoder(t, 3, Options{
		// Rank 2 emulates a device 4x slower: fused-step times ~[1,1,4]x,
		// so per-round skew = max/mean = 4/2 = 2.0, above the 1.5 default.
		// Rates are low enough that the paced interval dominates the real
		// (wall-clock) matmul time, keeping the contrast deterministic.
		HeteroDeviceFlops: []float64{7.5e6, 7.5e6, 1.875e6},
		MaxBatch:          4,
		BatchWindow:       20 * time.Millisecond,
	})
	const steps = 24
	var wg sync.WaitGroup
	for _, p := range batchPrompts[:3] {
		wg.Add(1)
		go func(p []int) {
			defer wg.Done()
			if _, err := c.GenerateVoltage(context.Background(), p, steps); err != nil {
				t.Error(err)
			}
		}(p)
	}
	wg.Wait()

	// The sequences are done, but the slow rank is still draining its
	// FIFO backlog of fused-step frames (the terminal only waits for the
	// reporting rank), and rounds finalize as the last rank reports — poll
	// until enough rounds close.
	p := c.Profile()
	for deadline := time.Now().Add(10 * time.Second); p.Rounds < 15; p = c.Profile() {
		if time.Now().After(deadline) {
			t.Fatalf("only %d fused rounds recorded, want >= 15", p.Rounds)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if p.K != 3 || len(p.Ranks) != 4 {
		t.Fatalf("profile K=%d ranks=%d, want 3/4", p.K, len(p.Ranks))
	}
	// The EWMA and the converged per-rank step estimates must both exceed
	// the threshold; the last round's instantaneous skew compresses as the
	// batch drains (width-1 rounds have little paced work), so it only gets
	// a sanity bound.
	if p.SkewEWMA <= 1.5 {
		t.Errorf("skew EWMA %.2f, want > 1.5 with a 4x-slow rank", p.SkewEWMA)
	}
	if p.Skew <= 1.0 {
		t.Errorf("last-round skew %.2f, want > 1.0", p.Skew)
	}
	if ss := p.StepSkew(); ss <= 1.5 {
		t.Errorf("StepSkew %.2f, want > 1.5", ss)
	}
	slow, fast := p.Ranks[2], p.Ranks[0]
	if !slow.Straggler {
		t.Errorf("rank 2 not flagged straggler after %d rounds: %+v", p.Rounds, slow)
	}
	if fast.Straggler || p.Ranks[1].Straggler {
		t.Errorf("fast ranks flagged straggler")
	}
	if slow.StepEWMASeconds < 2*fast.StepEWMASeconds {
		t.Errorf("step EWMA slow %.6fs vs fast %.6fs, want >= 2x apart",
			slow.StepEWMASeconds, fast.StepEWMASeconds)
	}
	sc, fc := slow.Phases["compute"], fast.Phases["compute"]
	if sc.Samples == 0 || fc.Samples == 0 {
		t.Fatalf("compute phase missing samples: slow %+v fast %+v", sc, fc)
	}
	if sc.EWMASeconds <= fc.EWMASeconds {
		t.Errorf("compute EWMA slow %.6fs <= fast %.6fs; profile did not converge on the slow rank",
			sc.EWMASeconds, fc.EWMASeconds)
	}
	// Skew mirrors into gauges for dashboards/alerts.
	snap := c.Metrics()
	if g := snap.Gauge("voltage_round_skew_ewma"); g <= 1.5 {
		t.Errorf("voltage_round_skew_ewma gauge %.2f, want > 1.5", g)
	}
	if g := snap.Gauge(`voltage_straggler{rank="2"}`); g != 1 {
		// Key format depends on the registry's label rendering; fall back to
		// checking the transition counter.
		if f := snap.Counter(`voltage_straggler_transitions_total{state="flagged"}`); f < 1 {
			t.Errorf("straggler gauge %v and flagged transitions %v; expected rank 2 flagged", g, f)
		}
	}
}

// TestChromeTraceCoversAllRanks is the second acceptance check: the
// exported Chrome trace of a MaxBatch>1 generate run must contain spans
// from every live rank (workers 0..2 plus the terminal).
func TestChromeTraceCoversAllRanks(t *testing.T) {
	c := newTinyDecoder(t, 3, Options{
		MaxBatch:      4,
		BatchWindow:   20 * time.Millisecond,
		TraceRequests: true,
	})
	const steps = 6
	var wg sync.WaitGroup
	for _, p := range batchPrompts[:2] {
		wg.Add(1)
		go func(p []int) {
			defer wg.Done()
			if _, err := c.GenerateVoltage(context.Background(), p, steps); err != nil {
				t.Error(err)
			}
		}(p)
	}
	wg.Wait()

	// The batched-generate request retires (and lands in the flight
	// recorder) shortly after its last sequence leaves; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var doc struct {
			TraceEvents []struct {
				Ph  string `json:"ph"`
				TID int    `json:"tid"`
			} `json:"traceEvents"`
		}
		blob := c.ChromeTrace()
		if err := json.Unmarshal(blob, &doc); err != nil {
			t.Fatalf("ChromeTrace is not valid JSON: %v", err)
		}
		tids := map[int]bool{}
		for _, ev := range doc.TraceEvents {
			if ev.Ph == "X" {
				tids[ev.TID] = true
			}
		}
		if tids[0] && tids[1] && tids[2] && tids[3] {
			return // every worker rank plus the terminal produced spans
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace spans cover tids %v, want ranks 0..2 + terminal 3\n%s", tids, blob)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestFlightRecorderCapturesFailureAndDumps: a request that resolves with
// a fault must log a request_failed event and trigger exactly one
// automatic dump to Options.FlightSink within the cooldown window.
func TestFlightRecorderCapturesFailureAndDumps(t *testing.T) {
	var sink syncBuffer
	c := newTiny(t, 3, Options{
		FlightSink: &sink,
		WrapTransport: wrapRank(1, func(p comm.Peer) comm.Peer {
			return &comm.FlakyPeer{Inner: p, FailSendAfter: 1}
		}),
	})
	x := embedTiny(t, c, 6)
	if _, err := c.Infer(context.Background(), StrategyVoltage, x); err == nil {
		t.Fatal("expected injected failure")
	}
	d := c.FlightDump()
	var failed bool
	for _, ev := range d.Events {
		if ev.Kind == "request_failed" {
			failed = true
		}
	}
	if !failed {
		t.Errorf("no request_failed event in %d events", len(d.Events))
	}
	if d.Profile == nil {
		t.Errorf("dump missing profile")
	}
	if got := sink.String(); !strings.Contains(got, `"request_failed"`) {
		t.Errorf("FlightSink dump missing failure event:\n%s", got)
	}
	// Second failure inside the cooldown: no second dump.
	before := sink.Len()
	if _, err := c.Infer(context.Background(), StrategyVoltage, x); err == nil {
		t.Fatal("expected second injected failure")
	}
	if sink.Len() != before {
		t.Errorf("second dump written inside cooldown window")
	}
}

// TestDebugEndpointsOnAdmin: the admin listener serves /debug/flight and
// /debug/trace next to /metrics.
func TestDebugEndpointsOnAdmin(t *testing.T) {
	c := newTinyDecoder(t, 2, Options{AdminAddr: "127.0.0.1:0", TraceRequests: true})
	c.Serve()
	if _, err := c.GenerateVoltage(context.Background(), []int{4, 8, 15}, 3); err != nil {
		t.Fatal(err)
	}
	base := "http://" + c.AdminAddr()

	resp, err := http.Get(base + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var dump struct {
		Events  []struct{ Kind string } `json:"events"`
		Profile *struct{ K int }        `json:"profile"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatalf("/debug/flight: %v", err)
	}
	if len(dump.Events) == 0 {
		t.Errorf("/debug/flight returned no events")
	}
	if dump.Profile == nil || dump.Profile.K != 2 {
		t.Errorf("/debug/flight profile %+v, want K=2", dump.Profile)
	}

	tresp, err := http.Get(base + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.NewDecoder(tresp.Body).Decode(&doc); err != nil {
		t.Fatalf("/debug/trace: %v", err)
	}
	if doc.TraceEvents == nil {
		t.Errorf("/debug/trace missing traceEvents array")
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer for cross-goroutine sinks.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func (b *syncBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Len()
}
