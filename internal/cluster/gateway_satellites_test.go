package cluster

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"voltage/internal/comm"
	"voltage/internal/model"
)

// Satellite coverage for the gateway PR's serving-runtime changes:
// configurable channel depths, the canceled-in-queue drop + metric, and
// exclusive-fence metering.

func TestConfigurableChannelDepths(t *testing.T) {
	c := newTiny(t, 2, Options{QueueDepth: 1, InflightDepth: 2, AdmitDepth: 3})
	if got := cap(c.queue); got != 1 {
		t.Errorf("queue cap = %d, want 1", got)
	}
	if got := cap(c.collectCh); got != 2 {
		t.Errorf("collect cap = %d, want 2", got)
	}
	for r, ch := range c.admitCh {
		if got := cap(ch); got != 3 {
			t.Errorf("admit cap rank %d = %d, want 3", r, got)
		}
	}
	// Defaults preserved when unset.
	d := newTiny(t, 2, Options{})
	if cap(d.queue) != defaultQueueDepth || cap(d.collectCh) != defaultInflightDepth || cap(d.admitCh[0]) != defaultAdmitDepth {
		t.Errorf("default caps = %d/%d/%d, want %d/%d/%d",
			cap(d.queue), cap(d.collectCh), cap(d.admitCh[0]),
			defaultQueueDepth, defaultInflightDepth, defaultAdmitDepth)
	}
	// The sized cluster still serves.
	if _, err := c.Infer(context.Background(), StrategyVoltage, embedTiny(t, c, 4)); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeChannelDepthRejected(t *testing.T) {
	for _, opts := range []Options{{QueueDepth: -1}, {InflightDepth: -1}, {AdmitDepth: -1}} {
		if _, err := NewMem(model.Tiny(), 2, opts); err == nil {
			t.Errorf("NewMem(%+v) accepted a negative depth", opts)
		}
	}
}

// gatePeer blocks every Send/Recv until released, then delegates — a
// deterministic way to hold a request in flight. entered is closed the
// first time the gate is reached, so tests can order themselves against
// the held request.
type gatePeer struct {
	comm.Peer
	release <-chan struct{}
	entered chan struct{}
	once    sync.Once
}

func (g *gatePeer) gate(ctx context.Context) error {
	g.once.Do(func() { close(g.entered) })
	select {
	case <-g.release:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (g *gatePeer) Send(ctx context.Context, to int, data []byte) error {
	if err := g.gate(ctx); err != nil {
		return err
	}
	return g.Peer.Send(ctx, to, data)
}

func (g *gatePeer) Recv(ctx context.Context, from int) ([]byte, error) {
	if err := g.gate(ctx); err != nil {
		return nil, err
	}
	return g.Peer.Recv(ctx, from)
}

// TestCanceledWhileQueuedDroppedAndCounted holds the dispatcher in an
// exclusive generation fence, cancels a request still sitting in the
// admission queue, and asserts the dispatcher drops it without dispatching
// and counts it under voltage_requests_canceled_total.
func TestCanceledWhileQueuedDroppedAndCounted(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{})
	c := newTinyDecoder(t, 2, Options{
		WrapTransport: func(rank int, p comm.Peer) comm.Peer {
			if rank == 0 {
				return &gatePeer{Peer: p, release: release, entered: entered}
			}
			return p
		},
	})

	// Exclusive generation: the dispatcher fences the queue on it until it
	// resolves, and the gate holds it in flight until we release.
	genErr := make(chan error, 1)
	go func() {
		_, err := c.GenerateVoltage(context.Background(), []int{1, 2, 3}, 2)
		genErr <- err
	}()
	<-entered // the generation is in flight; the queue is fenced

	// Queue a classification behind the fence, then abandon it.
	ctx, cancel := context.WithCancel(context.Background())
	pend, err := c.Submit(ctx, StrategyVoltage, embedTiny(t, c, 4))
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	close(release)

	if err := <-genErr; err != nil {
		t.Fatalf("fenced generation: %v", err)
	}
	if _, err := pend.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled-in-queue request resolved %v, want context.Canceled", err)
	}
	snap := c.Metrics()
	if got := snap.Counter("voltage_requests_canceled_total"); got != 1 {
		t.Errorf("voltage_requests_canceled_total = %v, want 1", got)
	}
	// The drop happened before dispatch: no error attempt was recorded for it.
	if got := snap.Counter(`voltage_requests_total{outcome="error"}`); got != 0 {
		t.Errorf("error requests = %v, want 0 (canceled request must not reach the mesh)", got)
	}
	// The runtime still serves afterwards.
	if _, err := c.Infer(context.Background(), StrategyVoltage, embedTiny(t, c, 4)); err != nil {
		t.Fatal(err)
	}
}

// TestFenceMetering asserts exclusive runs are counted and timed by the
// fence instruments.
func TestFenceMetering(t *testing.T) {
	c := newTinyDecoder(t, 2, Options{})
	start := time.Now()
	if _, err := c.GenerateVoltage(context.Background(), []int{1, 2, 3}, 2); err != nil {
		t.Fatal(err)
	}
	// The fence-duration observation lands when the dispatcher leaves the
	// fence; running one more (unfenced) request through the
	// single-goroutine dispatcher guarantees it has. The elapsed upper
	// bound must be captured after that flush: the dispatcher may leave
	// the fence a beat after GenerateVoltage returns to the caller.
	if _, err := c.Infer(context.Background(), StrategyVoltage, embedTiny(t, c, 4)); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	snap := c.Metrics()
	if got := snap.Counter(`voltage_queue_fences_total{reason="exclusive"}`); got != 1 {
		t.Errorf("exclusive fences = %v, want 1", got)
	}
	h, ok := snap.Histograms["voltage_fence_duration_seconds"]
	if !ok || h.Count != 1 {
		t.Fatalf("fence duration histogram = %+v ok=%v, want 1 observation", h, ok)
	}
	if h.Sum <= 0 || h.Sum > elapsed.Seconds() {
		t.Errorf("fence duration sum = %v s, want within (0, %v]", h.Sum, elapsed.Seconds())
	}
	// Plain classification takes no fence.
	if got := snap.Counter(`voltage_queue_fences_total{reason="fault_isolation"}`); got != 0 {
		t.Errorf("fault_isolation fences = %v, want 0", got)
	}
}

// TestCanceledMetricConcurrent hammers the cancel path under load: many
// queued requests canceled concurrently must neither hang nor dispatch.
func TestCanceledMetricConcurrent(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{})
	c := newTinyDecoder(t, 2, Options{
		WrapTransport: func(rank int, p comm.Peer) comm.Peer {
			if rank == 0 {
				return &gatePeer{Peer: p, release: release, entered: entered}
			}
			return p
		},
	})
	genErr := make(chan error, 1)
	go func() {
		_, err := c.GenerateVoltage(context.Background(), []int{1, 2, 3}, 2)
		genErr <- err
	}()
	<-entered

	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		pend, err := c.Submit(ctx, StrategyVoltage, embedTiny(t, c, 2))
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		cancel()
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = pend.Wait(context.Background())
		}(i)
	}
	close(release)
	if err := <-genErr; err != nil {
		t.Fatalf("fenced generation: %v", err)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Errorf("request %d resolved %v, want context.Canceled", i, err)
		}
	}
	if got := c.Metrics().Counter("voltage_requests_canceled_total"); got != n {
		t.Errorf("canceled total = %v, want %d", got, n)
	}
}
