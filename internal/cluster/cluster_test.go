package cluster

import (
	"context"
	"fmt"
	"testing"
	"time"

	"voltage/internal/model"
	"voltage/internal/netem"
	"voltage/internal/partition"
	"voltage/internal/tensor"
)

func newTiny(t testing.TB, k int, opts Options) *Cluster {
	t.Helper()
	c, err := NewMem(model.Tiny(), k, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func embedTiny(t testing.TB, c *Cluster, n int) *tensor.Matrix {
	t.Helper()
	ids := make([]int, n)
	for i := range ids {
		ids[i] = (i*7 + 3) % c.Config().VocabSize
	}
	x, err := c.Model(0).Embed.EmbedTokens(ids)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestNewMemValidation(t *testing.T) {
	if _, err := NewMem(model.Tiny(), 0, Options{}); err == nil {
		t.Fatal("want error for k=0")
	}
	bad := model.Tiny()
	bad.F = 33
	if _, err := NewMem(bad, 2, Options{}); err == nil {
		t.Fatal("want error for invalid config")
	}
	scheme, _ := partition.Even(3)
	if _, err := NewMem(model.Tiny(), 2, Options{Scheme: scheme}); err == nil {
		t.Fatal("want error for scheme/k mismatch")
	}
}

func TestAllStrategiesAgreeOnOutput(t *testing.T) {
	// Single device, Voltage (K=3) and tensor parallelism (K=3) must all
	// produce (numerically) the same final hidden states.
	c := newTiny(t, 3, Options{})
	x := embedTiny(t, c, 13)
	ctx := context.Background()

	single, err := c.Infer(ctx, StrategySingle, x)
	if err != nil {
		t.Fatal(err)
	}
	voltage, err := c.Infer(ctx, StrategyVoltage, x)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := c.Infer(ctx, StrategyTensorParallel, x)
	if err != nil {
		t.Fatal(err)
	}
	if !voltage.Output.AlmostEqual(single.Output, 1e-2) {
		d, _ := voltage.Output.MaxAbsDiff(single.Output)
		t.Fatalf("voltage differs from single by %v", d)
	}
	if !tp.Output.AlmostEqual(single.Output, 1e-2) {
		d, _ := tp.Output.MaxAbsDiff(single.Output)
		t.Fatalf("tensor parallel differs from single by %v", d)
	}
}

func TestVoltageRingAllGatherAgrees(t *testing.T) {
	c := newTiny(t, 3, Options{RingAllGather: true})
	x := embedTiny(t, c, 9)
	ctx := context.Background()
	single, err := c.Infer(ctx, StrategySingle, x)
	if err != nil {
		t.Fatal(err)
	}
	voltage, err := c.Infer(ctx, StrategyVoltage, x)
	if err != nil {
		t.Fatal(err)
	}
	if !voltage.Output.AlmostEqual(single.Output, 1e-2) {
		t.Fatal("ring all-gather result differs")
	}
}

func TestNaiveAllReduceAgrees(t *testing.T) {
	c := newTiny(t, 2, Options{NaiveAllReduce: true})
	x := embedTiny(t, c, 8)
	ctx := context.Background()
	single, err := c.Infer(ctx, StrategySingle, x)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := c.Infer(ctx, StrategyTensorParallel, x)
	if err != nil {
		t.Fatal(err)
	}
	if !tp.Output.AlmostEqual(single.Output, 1e-2) {
		t.Fatal("naive all-reduce TP result differs")
	}
}

func TestK1Degenerate(t *testing.T) {
	c := newTiny(t, 1, Options{})
	x := embedTiny(t, c, 6)
	ctx := context.Background()
	for _, s := range []Strategy{StrategySingle, StrategyVoltage, StrategyTensorParallel} {
		res, err := c.Infer(ctx, s, x)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if res.Output.Rows() != 6 {
			t.Fatalf("%v output rows %d", s, res.Output.Rows())
		}
	}
}

func TestUnevenScheme(t *testing.T) {
	scheme, err := partition.Weighted([]float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	c := newTiny(t, 2, Options{Scheme: scheme})
	x := embedTiny(t, c, 11)
	ctx := context.Background()
	single, err := c.Infer(ctx, StrategySingle, x)
	if err != nil {
		t.Fatal(err)
	}
	voltage, err := c.Infer(ctx, StrategyVoltage, x)
	if err != nil {
		t.Fatal(err)
	}
	if !voltage.Output.AlmostEqual(single.Output, 1e-2) {
		t.Fatal("uneven scheme result differs")
	}
}

func TestDecoderClusterAgrees(t *testing.T) {
	c, err := NewMem(model.TinyDecoder(), 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	x := embedTiny(t, c, 10)
	ctx := context.Background()
	single, err := c.Infer(ctx, StrategySingle, x)
	if err != nil {
		t.Fatal(err)
	}
	voltage, err := c.Infer(ctx, StrategyVoltage, x)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := c.Infer(ctx, StrategyTensorParallel, x)
	if err != nil {
		t.Fatal(err)
	}
	if !voltage.Output.AlmostEqual(single.Output, 1e-2) || !tp.Output.AlmostEqual(single.Output, 1e-2) {
		t.Fatal("causal distributed inference differs from single device")
	}
}

func TestCommVolumeVoltageVsTP(t *testing.T) {
	// Per worker per layer: Voltage (K−1)NF/K values, TP 4(K−1)NF/K
	// values — the 4× headline. Count payload bytes over a full inference.
	k, n := 4, 16
	c := newTiny(t, k, Options{})
	x := embedTiny(t, c, n)
	f := c.Config().F
	layers := c.Config().Layers
	ctx := context.Background()

	voltage, err := c.Infer(ctx, StrategyVoltage, x)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := c.Infer(ctx, StrategyTensorParallel, x)
	if err != nil {
		t.Fatal(err)
	}

	// Voltage worker egress: (layers−1) all-gathers of its NF/K partition
	// to K−1 peers, plus the final-layer send to the terminal.
	perPartition := int64(4 * n * f / k)
	wantWorker := int64(layers-1)*perPartition*int64(k-1) + perPartition
	for r := 0; r < k; r++ {
		s := voltage.PerDevice[r]
		payload := s.BytesSent - 8*s.MsgsSent // strip codec headers
		if payload != wantWorker {
			t.Fatalf("voltage worker %d sent %d payload bytes, want %d", r, payload, wantWorker)
		}
	}
	// TP worker egress: 2 ring all-reduces per layer at 2(K−1)NF/K values
	// each (+ worker 0's final report).
	wantTP := int64(layers) * int64(4*2*2*(k-1)*n*f/k)
	for r := 1; r < k; r++ {
		if got := tp.PerDevice[r].BytesSent; got != wantTP {
			t.Fatalf("tp worker %d sent %d bytes, want %d", r, got, wantTP)
		}
	}
	// Aggregate ratio: per layer it is exactly 4×; over the whole model the
	// final layer (terminal hand-off instead of All-Gather) shifts it.
	// Compare against the analytic expectation within 10%.
	voltageTotal := float64(k) * float64(wantWorker+8*voltage.PerDevice[0].MsgsSent)
	tpTotal := float64(k)*float64(wantTP) + float64(4*n*f+8) // + worker 0 report
	wantRatio := tpTotal / voltageTotal
	ratio := float64(tp.TotalBytesSent()) / float64(voltage.TotalBytesSent())
	if ratio < 0.9*wantRatio || ratio > 1.1*wantRatio {
		t.Fatalf("TP/Voltage comm ratio %.2f, want ≈%.2f", ratio, wantRatio)
	}
	// And the per-layer steady-state ratio is the paper's 4×.
	perLayerVoltage := float64(perPartition * int64(k-1))
	perLayerTP := float64(4 * 2 * 2 * (k - 1) * n * f / k)
	if r := perLayerTP / perLayerVoltage; r != 4 {
		t.Fatalf("per-layer TP/Voltage ratio %v, want exactly 4", r)
	}
}

func TestBandwidthSlowsInference(t *testing.T) {
	cFast := newTiny(t, 2, Options{})
	x := embedTiny(t, cFast, 32)
	ctx := context.Background()
	fast, err := cFast.Infer(ctx, StrategyVoltage, x)
	if err != nil {
		t.Fatal(err)
	}
	cSlow := newTiny(t, 2, Options{Profile: netem.Profile{BandwidthMbps: 1}})
	slow, err := cSlow.Infer(ctx, StrategyVoltage, x)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Latency <= fast.Latency {
		t.Fatalf("1Mbps latency %v not above unlimited %v", slow.Latency, fast.Latency)
	}
}

func TestSetBandwidth(t *testing.T) {
	c := newTiny(t, 2, Options{Profile: netem.Profile{BandwidthMbps: 100}})
	x := embedTiny(t, c, 24)
	ctx := context.Background()
	r1, err := c.Infer(ctx, StrategyVoltage, x)
	if err != nil {
		t.Fatal(err)
	}
	c.SetBandwidth(0.5)
	r2, err := c.Infer(ctx, StrategyVoltage, x)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Latency <= r1.Latency {
		t.Fatalf("bandwidth cut did not slow inference: %v vs %v", r2.Latency, r1.Latency)
	}
}

func TestInferContextCancel(t *testing.T) {
	c := newTiny(t, 2, Options{Profile: netem.Profile{BandwidthMbps: 0.1}})
	x := embedTiny(t, c, 32)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := c.Infer(ctx, StrategyVoltage, x); err == nil {
		t.Fatal("want error from cancelled inference")
	}
}

func TestUnknownStrategy(t *testing.T) {
	c := newTiny(t, 2, Options{})
	x := embedTiny(t, c, 4)
	if _, err := c.Infer(context.Background(), Strategy(42), x); err == nil {
		t.Fatal("want error for unknown strategy")
	}
	if Strategy(42).String() != "Strategy(42)" {
		t.Fatal("Strategy String")
	}
	for _, s := range []Strategy{StrategySingle, StrategyVoltage, StrategyTensorParallel} {
		if s.String() == "" {
			t.Fatal("empty strategy name")
		}
	}
}

func TestResultLatencyPositive(t *testing.T) {
	c := newTiny(t, 2, Options{})
	x := embedTiny(t, c, 8)
	res, err := c.Infer(context.Background(), StrategyVoltage, x)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency <= 0 {
		t.Fatalf("latency %v", res.Latency)
	}
	if res.Strategy != StrategyVoltage {
		t.Fatal("strategy not echoed")
	}
	if len(res.PerDevice) != 3 {
		t.Fatalf("PerDevice %d entries", len(res.PerDevice))
	}
}

func TestSequentialInfersAccumulateIndependently(t *testing.T) {
	// Stats deltas must be per-inference, not cumulative.
	c := newTiny(t, 2, Options{})
	x := embedTiny(t, c, 8)
	ctx := context.Background()
	r1, err := c.Infer(ctx, StrategyVoltage, x)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Infer(ctx, StrategyVoltage, x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.PerDevice {
		if r1.PerDevice[i].BytesSent != r2.PerDevice[i].BytesSent {
			t.Fatalf("device %d stats differ across identical runs: %d vs %d",
				i, r1.PerDevice[i].BytesSent, r2.PerDevice[i].BytesSent)
		}
	}
}

func TestVisionClusterEndToEnd(t *testing.T) {
	c, err := NewMem(model.TinyVision(), 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	im := model.RandomImage(tensor.NewRNG(9), 3, 16)
	x, err := c.Model(0).Embed.EmbedImage(im)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	single, err := c.Infer(ctx, StrategySingle, x)
	if err != nil {
		t.Fatal(err)
	}
	voltage, err := c.Infer(ctx, StrategyVoltage, x)
	if err != nil {
		t.Fatal(err)
	}
	if !voltage.Output.AlmostEqual(single.Output, 1e-2) {
		t.Fatal("vision distributed result differs")
	}
	// Post-processing parity: classification from either output matches.
	c1, err := c.Model(0).Classifier.Predict(single.Output)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := c.Model(0).Classifier.Predict(voltage.Output)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatalf("predictions diverge: %d vs %d", c1, c2)
	}
}

func TestStrategiesAcrossDeviceCounts(t *testing.T) {
	for _, k := range []int{2, 5} {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			c := newTiny(t, k, Options{})
			x := embedTiny(t, c, 10)
			ctx := context.Background()
			s, err := c.Infer(ctx, StrategySingle, x)
			if err != nil {
				t.Fatal(err)
			}
			v, err := c.Infer(ctx, StrategyVoltage, x)
			if err != nil {
				t.Fatal(err)
			}
			if !v.Output.AlmostEqual(s.Output, 1e-2) {
				t.Fatal("outputs differ")
			}
		})
	}
}
