package cluster

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"voltage/internal/comm"
	"voltage/internal/model"
	"voltage/internal/tensor"
	"voltage/internal/trace"
)

// Continuous batching (vLLM/Orca-style iteration-level scheduling; see
// DESIGN.md "Continuous batching"). Generation no longer dispatches one
// exclusive mesh protocol per request: a batch manager coalesces queued
// sequences into a single long-lived "batched-generate" request whose
// terminal loop alternates three boundaries —
//
//   join:    queued sequences prefill (each an Algorithm-2 round that also
//            builds its K/V caches on every worker), up to MaxBatch live;
//   produce: each live sequence's next token is decoded from its last
//            hidden row; finished or canceled sequences leave;
//   step:    one fused frame carries every live sequence's newest token to
//            the workers, which advance all caches with a single batched
//            matmul per weight per layer and return the fused B×F hidden
//            rows in one message.
//
// K concurrent streams thus pay one broadcast round per token instead of K,
// and the position-wise work fuses across the batch dimension. Per-sequence
// outputs stay bit-identical to solo runs (model.DecodeStepBatch's row-wise
// exactness), membership changes only happen between steps, and a lone
// request degenerates to a batch of one — the old serial protocol.
//
// Compatibility rules: every sequence on a cluster shares the replicated
// model, greedy decoding, and the partition scheme, so any set of decoder
// sequences is batch-compatible; sequences differ only in cache length and
// content, which the fused step handles per sequence.
//
// Terminal→worker frames (FIFO links; first byte is the opcode):
//
//   opPrefill  [1][seqID u32]            then the embedded prompt blob
//   opStep     [2][B u16][B×(seqID u32, token u32)]
//   opLeave    [3][seqID u32]
//   zero-length frame                    batch request shutdown
const (
	opPrefill = 1
	opStep    = 2
	opLeave   = 3
)

// batchSeq is one generate sequence flowing through the batcher. Ownership
// is single-threaded at all times: the batcher owns it (under mu) while
// pending, the terminal step loop owns it while live, and finish hands it
// back to the caller exactly once.
type batchSeq struct {
	ctx     context.Context
	id      uint32
	prompt  []int
	steps   int
	onToken func(int)
	trace   *trace.RequestTrace
	enq     time.Time
	res     *GenerateResult

	// Live-decode state, owned by the terminal loop after join.
	tokens      []int
	produced    int
	last        *tensor.Matrix // final hidden row of the newest position
	decodeStart time.Time
	joinStats   []comm.Stats // per-rank scope snapshot at join

	err  error
	done chan struct{}
}

// finish resolves the sequence for its caller.
func (s *batchSeq) finish(err error) {
	s.err = err
	close(s.done)
}

// batcher coalesces generate sequences into batched-generate requests. At
// most one batch request is in flight per cluster; it keeps running while
// sequences remain and retires when the batch drains.
type batcher struct {
	c *Cluster

	mu      sync.Mutex
	pending []*batchSeq
	live    int // sequences taken by the running batch, not yet left
	running bool
	nextID  uint32
}

// add enqueues a sequence and ensures a batch request is running.
func (b *batcher) add(seq *batchSeq) error {
	b.mu.Lock()
	if b.c.serveCtx.Err() != nil {
		b.mu.Unlock()
		return errServingStopped
	}
	b.nextID++
	seq.id = b.nextID
	seq.trace.SetID(uint64(seq.id))
	b.pending = append(b.pending, seq)
	start := !b.running
	b.running = true
	b.mu.Unlock()
	if start {
		go b.run()
	}
	return nil
}

// take moves up to n pending sequences into the running batch.
func (b *batcher) take(n int) []*batchSeq {
	b.mu.Lock()
	defer b.mu.Unlock()
	if n <= 0 || len(b.pending) == 0 {
		return nil
	}
	if n > len(b.pending) {
		n = len(b.pending)
	}
	taken := b.pending[:n:n]
	b.pending = append([]*batchSeq(nil), b.pending[n:]...)
	b.live += len(taken)
	return taken
}

// release returns n live slots after sequences leave the batch.
func (b *batcher) release(n int) {
	b.mu.Lock()
	b.live -= n
	b.mu.Unlock()
}

// width reports sequences live in or waiting for the batch.
func (b *batcher) width() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.live + len(b.pending)
}

// run drives batch requests through the serving runtime until the batch
// drains. One run owns the "running" flag; a sequence arriving after the
// final drain check starts a fresh run.
func (b *batcher) run() {
	c := b.c
	if w := c.opts.BatchWindow; w > 0 {
		// Let a concurrent burst coalesce into the first fused round
		// instead of starting a batch of one. Later arrivals join a
		// running batch between steps, so only the first round waits.
		select {
		case <-time.After(w):
		case <-c.serveCtx.Done():
		}
	}
	for {
		req := &request{runner: batchRunner{b}, supervised: true, noTimeout: true}
		// Scopes are pre-created so the terminal can snapshot every rank's
		// counters at each sequence's join and leave — per-sequence traffic
		// deltas inside one long-lived mesh request.
		req.scopes = make([]*comm.ScopedPeer, c.k+1)
		for r := range req.scopes {
			req.scopes[r] = comm.Scoped(c.peers[r])
		}
		pend, err := c.submit(context.Background(), req)
		if err == nil {
			// Sequence-level outcomes were already delivered seq by seq;
			// the batch request's own error is the terminal's fatal cause.
			_ = pend.wait(context.Background())
		}
		b.mu.Lock()
		if c.serveCtx.Err() != nil {
			pending := b.pending
			b.pending = nil
			b.running = false
			b.mu.Unlock()
			for _, s := range pending {
				s.finish(errServingStopped)
			}
			return
		}
		if len(b.pending) == 0 {
			b.running = false
			b.mu.Unlock()
			return
		}
		b.mu.Unlock()
	}
}

// batchRunner is the continuous-batching mesh protocol. Its terminal side
// interleaves sends and receives, so it is exclusive like the old
// generation protocol — but one fence now serves every fused sequence.
type batchRunner struct{ b *batcher }

func (batchRunner) name() string    { return "batched-generate" }
func (batchRunner) exclusive() bool { return true }

// admit is unused: exclusive runners run their whole terminal side in
// collect.
func (batchRunner) admit(ctx context.Context, c *Cluster, p comm.Peer, ex *comm.Exchange, req *request) error {
	return nil
}

func (r batchRunner) collect(ctx context.Context, c *Cluster, p comm.Peer, ex *comm.Exchange, req *request) error {
	return r.b.terminal(ctx, p, ex, req)
}

func (batchRunner) worker(ctx context.Context, c *Cluster, p comm.Peer, ex *comm.Exchange, rank int, req *request) error {
	return c.batchWorker(ctx, p, ex, rank)
}

// terminal drives the batch from the terminal device: join, produce, fused
// step, repeat until the batch drains.
func (b *batcher) terminal(ctx context.Context, p comm.Peer, ex *comm.Exchange, req *request) error {
	c := b.c
	m := c.models[0] // pre/post-processing replica
	maxBatch := c.maxBatch()
	var live []*batchSeq
	// fail resolves every live sequence with the batch's fatal error. The
	// workers are released by collect's abort (request-context cancel), so
	// no shutdown frames are attempted on a possibly wedged mesh.
	fail := func(err error) error {
		cause := fmt.Errorf("cluster: batched generate: %w", err)
		for _, s := range live {
			b.leaveLocked(req, s, cause)
		}
		live = nil
		return err
	}
	first := true
	for {
		// Join boundary. The first take is unconditional so a generate
		// burst is never starved; afterwards joins pause while other
		// requests wait in the admission queue, so the exclusive fence
		// ends instead of extending itself indefinitely.
		if want := maxBatch - len(live); want > 0 && (first || len(c.queue) == 0) {
			taken := b.take(want)
			for i, s := range taken {
				joined, err := b.join(ctx, p, ex, req, s)
				if err != nil {
					// Resolve the failed joiner and the not-yet-joined
					// remainder along with the live batch.
					live = append(live, taken[i:]...)
					return fail(err)
				}
				if joined {
					live = append(live, s)
				}
			}
		}
		first = false
		if len(live) == 0 {
			// Batch drained: release the workers and retire the request.
			for r := 0; r < c.k; r++ {
				if err := p.Send(ctx, r, []byte{}); err != nil {
					return err
				}
			}
			return nil
		}

		// Produce boundary: decode each live sequence's next token;
		// finished, canceled, or failed sequences leave without touching
		// the others' caches.
		keep := live[:0]
		for i, s := range live {
			// A mesh fault while notifying a departure is fatal for the
			// batch: the kept sequences plus the not-yet-visited remainder
			// all resolve with it (s itself was resolved by leave).
			lerr := error(nil)
			if err := s.ctx.Err(); err != nil {
				lerr = b.leave(ctx, p, req, s, err)
			} else if err := b.produce(m, s); err != nil || s.exhausted(c) {
				lerr = b.leave(ctx, p, req, s, err)
			} else {
				keep = append(keep, s)
			}
			if lerr != nil {
				live = append(keep, live[i+1:]...)
				return fail(lerr)
			}
		}
		live = keep
		if len(live) == 0 {
			continue // maybe joiners arrived while producing
		}

		// Fused step: one frame out, one fused hidden matrix back.
		frame := stepFrame(live)
		for r := 0; r < c.k; r++ {
			if err := p.Send(ctx, r, frame); err != nil {
				return fail(err)
			}
		}
		got, err := p.Recv(ctx, 0) // worker 0 reports the fused hidden rows
		if err != nil {
			return fail(err)
		}
		rows, _, err := tensor.Decode(got)
		if err != nil {
			return fail(err)
		}
		comm.ReleaseBuffer(got)
		if rows.Rows() != len(live) {
			return fail(fmt.Errorf("fused step returned %d rows for %d sequences", rows.Rows(), len(live)))
		}
		for i, s := range live {
			if s.last, err = rows.RowSlice(i, i+1); err != nil {
				return fail(err)
			}
		}
		c.metrics.observeBatchStep(len(live))
	}
}

// produce decodes one token for s from its last hidden row: exactly the
// solo terminal's logits → argmax → append → stream ordering.
func (b *batcher) produce(m *model.Model, s *batchSeq) error {
	logits, err := m.LM.NextTokenLogits(s.last)
	if err != nil {
		return err
	}
	next := model.Argmax(logits)
	s.tokens = append(s.tokens, next)
	s.produced++
	if s.onToken != nil {
		s.onToken(next)
	}
	return nil
}

// exhausted reports that s has produced all requested tokens or filled the
// model's context window (the solo loop's two break conditions).
func (s *batchSeq) exhausted(c *Cluster) bool {
	return s.produced >= s.steps || len(s.tokens) >= c.cfg.MaxSeq
}

// join admits one pending sequence into the batch: its prompt prefills
// through Algorithm 2 (building caches on every worker) while the rest of
// the batch waits at the step boundary. Prefills of a burst run
// back-to-back, each its own Algorithm-2 round, so the partition math is
// untouched. Returns joined=false for sequence-local failures (resolved
// here); a non-nil error is a mesh fault, fatal for the whole batch.
func (b *batcher) join(ctx context.Context, p comm.Peer, ex *comm.Exchange, req *request, s *batchSeq) (bool, error) {
	c := b.c
	wait := time.Since(s.enq)
	s.res.BatchWait = wait
	s.trace.AddAt(c.terminalRank(), -1, trace.PhaseBatchWait, 0, wait)
	c.metrics.observeBatchWait(wait)
	if err := s.ctx.Err(); err != nil {
		// Abandoned while waiting to join: never dispatched to the mesh,
		// same accounting as the dispatcher's queued-cancel drop.
		c.metrics.canceledInQueue()
		b.release(1)
		s.finish(err)
		return false, nil
	}
	x, err := c.models[0].Embed.EmbedTokens(s.prompt)
	if err != nil {
		b.leaveLocked(req, s, err)
		return false, nil
	}
	s.joinStats = make([]comm.Stats, len(req.scopes))
	for r, sc := range req.scopes {
		s.joinStats[r] = sc.Stats()
	}
	c.metrics.batchJoin()
	start := time.Now()
	var hdr [5]byte
	hdr[0] = opPrefill
	binary.LittleEndian.PutUint32(hdr[1:], s.id)
	blob := ex.Encode(x)
	for r := 0; r < c.k; r++ {
		if err := p.Send(ctx, r, hdr[:]); err != nil {
			return false, err
		}
		if err := p.Send(ctx, r, blob); err != nil {
			return false, err
		}
	}
	out, err := c.collectPartitions(ctx, p, ex, c.allRanks(), x.Rows())
	if err != nil {
		return false, err
	}
	s.res.PrefillLatency = time.Since(start)
	s.trace.Add(c.terminalRank(), -1, trace.PhaseBoundary, s.res.PrefillLatency)
	s.tokens = make([]int, len(s.prompt), len(s.prompt)+s.steps)
	copy(s.tokens, s.prompt)
	if s.last, err = out.RowSlice(out.Rows()-1, out.Rows()); err != nil {
		return false, err
	}
	s.decodeStart = time.Now()
	return true, nil
}

// leave removes a resolved sequence from the batch, telling the workers to
// drop its caches. cause nil is normal completion. The returned error is a
// mesh fault encountered while notifying (the sequence itself is resolved
// either way).
func (b *batcher) leave(ctx context.Context, p comm.Peer, req *request, s *batchSeq, cause error) error {
	c := b.c
	var frame [5]byte
	frame[0] = opLeave
	binary.LittleEndian.PutUint32(frame[1:], s.id)
	var sendErr error
	for r := 0; r < c.k; r++ {
		if err := p.Send(ctx, r, frame[:]); err != nil {
			sendErr = err
			break
		}
	}
	b.leaveLocked(req, s, cause)
	return sendErr
}

// leaveLocked finalizes a sequence's result and accounting without touching
// the mesh (the workers either already dropped it, never held it, or are
// being torn down with the whole batch).
func (b *batcher) leaveLocked(req *request, s *batchSeq, cause error) {
	c := b.c
	if !s.decodeStart.IsZero() {
		s.res.DecodeLatency = time.Since(s.decodeStart)
	}
	s.res.Tokens = s.tokens
	if s.joinStats != nil {
		s.res.PerDevice = make([]comm.Stats, len(req.scopes))
		for r, sc := range req.scopes {
			s.res.PerDevice[r] = sc.Stats().Sub(s.joinStats[r])
		}
	}
	c.metrics.batchLeave()
	c.metrics.observeRequest(1, false, cause)
	b.release(1)
	s.finish(cause)
}

// stepFrame encodes one fused decode step: every live sequence's id and
// newest token, in batch order.
func stepFrame(live []*batchSeq) []byte {
	buf := make([]byte, 3+8*len(live))
	buf[0] = opStep
	binary.LittleEndian.PutUint16(buf[1:3], uint16(len(live)))
	off := 3
	for _, s := range live {
		binary.LittleEndian.PutUint32(buf[off:], s.id)
		binary.LittleEndian.PutUint32(buf[off+4:], uint32(s.tokens[len(s.tokens)-1]))
		off += 8
	}
	return buf
}

// batchWorker serves one device's side of the batch: sequences prefill into
// a cache table, fused step frames advance every listed cache with one
// batched matmul per weight per layer, and leave frames drop caches. Frame
// order on the FIFO link from the terminal is the protocol.
func (c *Cluster) batchWorker(ctx context.Context, p comm.Peer, ex *comm.Exchange, rank int) error {
	term := c.terminalRank()
	m := c.models[rank]
	states := make(map[uint32]*model.DecodeState)
	for {
		frame, err := p.Recv(ctx, term)
		if err != nil {
			return err
		}
		if len(frame) == 0 {
			return nil
		}
		switch frame[0] {
		case opPrefill:
			if len(frame) != 5 {
				return fmt.Errorf("cluster: prefill frame of %d bytes", len(frame))
			}
			id := binary.LittleEndian.Uint32(frame[1:])
			comm.ReleaseBuffer(frame)
			state, err := c.prefillWorker(ctx, p, ex, rank)
			if err != nil {
				return err
			}
			states[id] = state
		case opStep:
			if len(frame) < 3 {
				return fmt.Errorf("cluster: step frame of %d bytes", len(frame))
			}
			n := int(binary.LittleEndian.Uint16(frame[1:3]))
			if len(frame) != 3+8*n {
				return fmt.Errorf("cluster: step frame of %d bytes for %d sequences", len(frame), n)
			}
			sts := make([]*model.DecodeState, n)
			ids := make([]int, n)
			for i := 0; i < n; i++ {
				off := 3 + 8*i
				id := binary.LittleEndian.Uint32(frame[off:])
				st, ok := states[id]
				if !ok {
					return fmt.Errorf("cluster: step for unknown sequence %d", id)
				}
				sts[i] = st
				ids[i] = int(binary.LittleEndian.Uint32(frame[off+4:]))
			}
			comm.ReleaseBuffer(frame)
			start := time.Now()
			rows, err := m.DecodeStepBatch(sts, ids)
			if err != nil {
				return err
			}
			// One paced interval for the whole fused step: the summed Γ of
			// the solo steps it replaces (fusion changes latency, not MACs).
			positions := make([]int, n)
			for i, st := range sts {
				positions[i] = st.Pos
			}
			if err := c.paceRank(ctx, rank, start, decodeStepCost(m, positions...)); err != nil {
				return err
			}
			if rank == 0 {
				if err := p.Send(ctx, term, ex.Encode(rows)); err != nil {
					return err
				}
			}
		case opLeave:
			if len(frame) != 5 {
				return fmt.Errorf("cluster: leave frame of %d bytes", len(frame))
			}
			delete(states, binary.LittleEndian.Uint32(frame[1:]))
			comm.ReleaseBuffer(frame)
		default:
			return fmt.Errorf("cluster: unknown batch opcode %d", frame[0])
		}
	}
}
