package cluster

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"voltage/internal/comm"
	"voltage/internal/model"
	"voltage/internal/partition"
	"voltage/internal/tensor"
	"voltage/internal/trace"
)

// Continuous batching (vLLM/Orca-style iteration-level scheduling; see
// DESIGN.md "Continuous batching"). Generation no longer dispatches one
// exclusive mesh protocol per request: a batch manager coalesces queued
// sequences into a single long-lived "batched-generate" request whose
// terminal loop alternates three boundaries —
//
//	join:    queued sequences prefill (each an Algorithm-2 round that also
//	         builds its K/V caches on every worker), up to MaxBatch live;
//	produce: each live sequence's next token is decoded from its last
//	         hidden row; finished or canceled sequences leave;
//	step:    one fused frame carries every live sequence's newest token to
//	         the workers, which advance all caches with a single batched
//	         matmul per weight per layer and return the fused B×F hidden
//	         rows in one message.
//
// K concurrent streams thus pay one broadcast round per token instead of K,
// and the position-wise work fuses across the batch dimension. Per-sequence
// outputs stay bit-identical to solo runs (model.DecodeStepBatch's row-wise
// exactness), membership changes only happen between steps, and a lone
// request degenerates to a batch of one — the old serial protocol.
//
// Fault tolerance (DESIGN.md "Fault-tolerant batching"): with
// Options.MaxRetries > 0 a mid-batch device failure does not kill the
// co-batched sequences. The failed round's surviving sequences park, the
// blamed rank is recorded with the same health machinery the solo path
// uses, and the next round re-slices the position-wise partition over the
// survivors; each parked sequence resumes by re-prefilling its committed
// prompt+generated prefix, so its greedy continuation is exactly the one an
// uninterrupted run would have produced. Blast radius is isolated the other
// way too: a fault attributable to one sequence (its caller canceling, its
// own decode failing, its prefill partition arriving corrupt) retires that
// sequence alone at a step boundary while the rest of the batch keeps
// decoding. With no surviving worker, sequences fall back to the terminal
// replica one at a time.
//
// Compatibility rules: every sequence on a cluster shares the replicated
// model, greedy decoding, and the partition scheme, so any set of decoder
// sequences is batch-compatible; sequences differ only in cache length and
// content, which the fused step handles per sequence.
//
// Terminal→worker frames (FIFO links; first byte is the opcode):
//
//	opPrefill  [1][seqID u32]            then the embedded prompt blob
//	opStep     [2][B u16][B×(seqID u32, token u32)]
//	opLeave    [3][seqID u32]
//	zero-length frame                    batch request shutdown
const (
	opPrefill = 1
	opStep    = 2
	opLeave   = 3
)

// batchBackoff spaces recovery rounds after a batch fault, scaled by the
// consecutive-fault count, so a flapping mesh is not hammered with
// immediate re-prefills.
const batchBackoff = 2 * time.Millisecond

// batchSeq is one generate sequence flowing through the batcher. Ownership
// is single-threaded at all times: the batcher owns it (under mu) while
// pending, the terminal step loop owns it while live, and finish hands it
// back to the caller exactly once.
type batchSeq struct {
	ctx     context.Context
	id      uint32
	prompt  []int
	steps   int
	onToken func(int)
	trace   *trace.RequestTrace
	enq     time.Time
	res     *GenerateResult

	// Live-decode state, owned by the terminal loop after join.
	tokens      []int
	produced    int
	last        *tensor.Matrix // final hidden row of the newest position
	decodeStart time.Time
	joinStats   []comm.Stats // per-rank scope snapshot at join

	// Fault-recovery state. attempts counts batch rounds this sequence was
	// dispatched into (prefilled or re-prefilled); parkedAt is non-zero
	// while the sequence sits in pending after surviving a batch fault,
	// waiting to resume from its committed tokens. adaptPark marks a park
	// caused by a partition-scheme migration rather than a fault: the
	// resume then costs no retry budget and counts as a migration, not a
	// recovery.
	attempts  int
	parkedAt  time.Time
	adaptPark bool

	err  error
	done chan struct{}
}

// finish resolves the sequence for its caller.
func (s *batchSeq) finish(err error) {
	s.err = err
	close(s.done)
}

// batcher coalesces generate sequences into batched-generate requests. At
// most one batch request is in flight per cluster; it keeps running while
// sequences remain and retires when the batch drains.
type batcher struct {
	c *Cluster

	mu      sync.Mutex
	pending []*batchSeq
	live    int // sequences taken by the running batch, not yet left
	running bool
	nextID  uint32
	// lastPlan remembers the previous round's live-set signature so the
	// flight recorder logs plan changes (degraded entry/recovery), not
	// every round.
	lastPlan string
}

// add enqueues a sequence and ensures a batch request is running.
func (b *batcher) add(seq *batchSeq) error {
	b.mu.Lock()
	if b.c.serveCtx.Err() != nil {
		b.mu.Unlock()
		return errServingStopped
	}
	b.nextID++
	seq.id = b.nextID
	seq.trace.SetID(uint64(seq.id))
	b.pending = append(b.pending, seq)
	start := !b.running
	b.running = true
	b.mu.Unlock()
	if start {
		go b.run()
	}
	return nil
}

// take moves up to n pending sequences into the running batch.
func (b *batcher) take(n int) []*batchSeq {
	b.mu.Lock()
	defer b.mu.Unlock()
	if n <= 0 || len(b.pending) == 0 {
		return nil
	}
	if n > len(b.pending) {
		n = len(b.pending)
	}
	taken := b.pending[:n:n]
	b.pending = append([]*batchSeq(nil), b.pending[n:]...)
	b.live += len(taken)
	return taken
}

// release returns n live slots after sequences leave the batch.
func (b *batcher) release(n int) {
	b.mu.Lock()
	b.live -= n
	b.mu.Unlock()
}

// requeue moves parked sequences back to the front of the pending queue so
// resumed work re-enters before newly arrived sequences.
func (b *batcher) requeue(parked []*batchSeq) {
	if len(parked) == 0 {
		return
	}
	b.mu.Lock()
	b.live -= len(parked)
	next := make([]*batchSeq, 0, len(parked)+len(b.pending))
	next = append(next, parked...)
	next = append(next, b.pending...)
	b.pending = next
	b.mu.Unlock()
}

// width reports sequences live in or waiting for the batch.
func (b *batcher) width() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.live + len(b.pending)
}

// run drives batch requests through the serving runtime until the batch
// drains. One run owns the "running" flag; a sequence arriving after the
// final drain check starts a fresh run. A batch request that dies to a
// retryable fault is re-dispatched over the surviving workers, resuming
// every parked sequence (see adjudicate).
func (b *batcher) run() {
	c := b.c
	if w := c.opts.BatchWindow; w > 0 {
		b.coalesce(w)
	}
	faults := 0
	for {
		if !b.purgeCanceled() {
			return // nothing pending or live: the run retired
		}
		live, scheme, gen, degraded, perr := b.plan()
		if perr != nil {
			b.failPending(perr)
			return
		}
		// Log plan changes — full-strength start, degraded entry, recovery —
		// once per transition rather than per round.
		sig := fmt.Sprintf("degraded=%v live=%v", degraded, live)
		if sig != b.lastPlan {
			b.lastPlan = sig
			if degraded {
				c.flight.Eventf("degraded_entry", -1, "batch plan re-sliced over live ranks %v", live)
			} else {
				c.flight.Eventf("batch_plan", -1, "batch running at full strength (k=%d)", c.k)
			}
		}
		if live != nil && len(live) == 0 {
			// No surviving worker: serve each pending sequence on the
			// terminal replica alone, then re-check for arrivals.
			b.fallbackPending()
			continue
		}
		// Fenced when fault-tolerant: a failed round's residue is flushed
		// before the next round enters, and the abort path preserves the
		// attributed per-rank errors blame voting needs.
		req := &request{
			runner: batchRunner{b}, supervised: true, noTimeout: true,
			live: live, scheme: scheme, schemeGen: gen, degraded: degraded,
			fenced: c.opts.MaxRetries > 0,
		}
		// Scopes are pre-created so the terminal can snapshot every rank's
		// counters at each sequence's join and leave — per-sequence traffic
		// deltas inside one long-lived mesh request.
		req.scopes = make([]*comm.ScopedPeer, c.k+1)
		for r := range req.scopes {
			req.scopes[r] = comm.Scoped(c.peers[r])
		}
		pend, err := c.submit(context.Background(), req)
		if err == nil {
			// Sequence-level outcomes were already delivered seq by seq;
			// the batch request's own error is the terminal's fatal cause.
			_ = pend.wait(context.Background())
		}
		b.mu.Lock()
		if c.serveCtx.Err() != nil {
			pending := b.pending
			b.pending = nil
			b.running = false
			b.mu.Unlock()
			for _, s := range pending {
				s.finish(errServingStopped)
			}
			return
		}
		b.mu.Unlock()
		if err != nil {
			continue // submission failed; the shutdown check above decides
		}
		if req.err != nil {
			faults++
			b.adjudicate(req, faults)
			continue
		}
		faults = 0
		if c.opts.MaxRetries > 0 {
			// A clean round is the probe result for any probing rank.
			c.health.recordSuccess(req.liveRanks(c))
		}
	}
}

// coalesce waits out the batch window so a concurrent burst fuses into the
// first round, waking early when every pending sequence has been canceled —
// an abandoned window must not cost a fenced mesh round for an empty batch.
func (b *batcher) coalesce(w time.Duration) {
	c := b.c
	deadline := time.NewTimer(w)
	defer deadline.Stop()
	for {
		var cancel <-chan struct{}
		b.mu.Lock()
		waiting := len(b.pending)
		for _, s := range b.pending {
			if s.ctx.Err() == nil {
				cancel = s.ctx.Done()
				break
			}
		}
		b.mu.Unlock()
		if waiting > 0 && cancel == nil {
			return // every pending sequence is already canceled
		}
		select {
		case <-deadline.C:
			return
		case <-c.serveCtx.Done():
			return
		case <-cancel:
			// A waiter was abandoned; re-inspect the rest of the window.
		}
	}
}

// purgeCanceled resolves pending sequences whose callers are gone without
// spending a mesh round on them, and reports whether the run continues.
// When nothing is left pending or live it retires the run (clearing the
// running flag under the same lock add() checks) and returns false.
func (b *batcher) purgeCanceled() bool {
	c := b.c
	b.mu.Lock()
	var dropped []*batchSeq
	keep := b.pending[:0]
	for _, s := range b.pending {
		if s.ctx.Err() != nil {
			dropped = append(dropped, s)
		} else {
			keep = append(keep, s)
		}
	}
	b.pending = keep
	idle := len(b.pending) == 0 && b.live == 0
	if idle {
		b.running = false
	}
	b.mu.Unlock()
	for _, s := range dropped {
		c.metrics.canceledInQueue()
		s.finish(s.ctx.Err())
	}
	return !idle
}

// plan picks the worker set and partition scheme for the next batch round.
// With fault tolerance off, every round runs the full mesh (nil live set).
// Otherwise the health tracker decides between a full round, a degraded
// round re-sliced over the survivors, and — empty live set — terminal-local
// fallback. Full rounds pin the installed adaptive scheme and its
// generation, so the terminal loop can migrate at a step boundary when the
// controller installs a newer one.
func (b *batcher) plan() (live []int, scheme *partition.Scheme, gen uint64, degraded bool, err error) {
	c := b.c
	cur, curGen := c.schemeSnapshot()
	if c.opts.MaxRetries == 0 {
		return nil, cur, curGen, false, nil
	}
	hl := c.health.live(time.Now())
	if len(hl) == c.k {
		return nil, cur, curGen, false, nil
	}
	if len(hl) == 0 {
		return []int{}, nil, curGen, true, nil
	}
	s, err := c.degradedScheme(hl)
	if err != nil {
		return nil, nil, curGen, false, err
	}
	return hl, s, curGen, true, nil
}

// failPending resolves every pending sequence with a planning error and
// retires the run.
func (b *batcher) failPending(err error) {
	b.mu.Lock()
	pending := b.pending
	b.pending = nil
	b.running = false
	b.mu.Unlock()
	for _, s := range pending {
		s.finish(err)
	}
}

// adjudicate decides each parked sequence's fate after a batch round died:
// on a retryable fault the blamed rank is marked unhealthy and in-budget
// sequences stay pending to resume next round; exhausted sequences — and
// every parked sequence when the fault is not retryable or fault tolerance
// is off — resolve with the round's error. Fresh sequences that never rode
// the dead round are left untouched.
func (b *batcher) adjudicate(req *request, faults int) {
	c := b.c
	cause := req.err
	recoverable := c.opts.MaxRetries > 0 && retryable(cause)
	if recoverable {
		// req.errs is safe to read here: collect() waits for every worker
		// before resolving the request.
		blamed, bcause := blameRank(req.errs, c.k)
		if blamed >= 0 {
			c.health.recordFailure(blamed, bcause)
		}
		c.metrics.batchRecovery(cause)
		c.flight.Eventf("batch_recovery", blamed, "fused round died (fault %d): %v", faults, cause)
	}
	budget := 1 + c.opts.MaxRetries
	var doomed []*batchSeq
	b.mu.Lock()
	keep := b.pending[:0]
	for _, s := range b.pending {
		switch {
		case s.parkedAt.IsZero(): // never rode the dead round
			keep = append(keep, s)
		case recoverable && s.attempts < budget:
			keep = append(keep, s)
		default:
			doomed = append(doomed, s)
		}
	}
	b.pending = keep
	b.mu.Unlock()
	for _, s := range doomed {
		err := cause
		if recoverable {
			err = fmt.Errorf("cluster: %d attempts exhausted: %w", s.attempts, cause)
		}
		b.resolve(req, s, err)
	}
	if recoverable {
		select {
		case <-time.After(time.Duration(faults) * batchBackoff):
		case <-c.serveCtx.Done():
		}
	}
}

// fallbackPending serves pending sequences on the terminal's own replica
// when no worker rank is eligible — degraded mode's last resort. Each
// sequence re-prefills its committed prefix locally and decodes unpaced,
// with no mesh traffic; resumed streams continue exactly where they
// stopped.
func (b *batcher) fallbackPending() {
	for {
		taken := b.take(1)
		if len(taken) == 0 {
			return
		}
		b.fallbackSeq(taken[0])
	}
}

// fallbackSeq is one sequence's terminal-local serve (see fallbackPending).
func (b *batcher) fallbackSeq(s *batchSeq) {
	c := b.c
	if err := s.ctx.Err(); err != nil {
		c.metrics.canceledInQueue()
		b.release(1)
		s.finish(err)
		return
	}
	s.attempts++
	if !s.parkedAt.IsZero() {
		s.trace.Add(c.terminalRank(), -1, trace.PhaseRecover, time.Since(s.parkedAt))
		c.metrics.phase(trace.PhaseRecover, time.Since(s.parkedAt))
		if s.adaptPark {
			// Migration-parked, but the mesh died before the new scheme
			// could host it: the local resume is a migration, not a fault
			// recovery.
			s.adaptPark = false
			c.metrics.batchSeqMigrated()
		} else {
			c.metrics.batchSeqResumed()
		}
		s.parkedAt = time.Time{}
	}
	s.res.Degraded = true
	done := func(cause error) {
		b.resolve(nil, s, cause)
		b.release(1)
	}
	m := c.models[0]
	prefix := s.prompt
	if len(s.tokens) > 0 {
		prefix = s.tokens
	}
	start := time.Now()
	last, state, err := m.ResumeState(prefix)
	if err != nil {
		done(err)
		return
	}
	s.res.PrefillLatency += time.Since(start)
	if len(s.tokens) == 0 {
		s.tokens = make([]int, len(s.prompt), len(s.prompt)+s.steps)
		copy(s.tokens, s.prompt)
	}
	s.last = last
	s.decodeStart = time.Now()
	c.metrics.fallbackServed()
	for {
		if err := s.ctx.Err(); err != nil {
			done(err)
			return
		}
		if err := b.produce(m, s); err != nil {
			done(err)
			return
		}
		if s.exhausted(c) {
			done(nil)
			return
		}
		if s.last, err = m.DecodeStep(state, s.tokens[len(s.tokens)-1]); err != nil {
			done(err)
			return
		}
	}
}

// batchRunner is the continuous-batching mesh protocol. Its terminal side
// interleaves sends and receives, so it is exclusive like the old
// generation protocol — but one fence now serves every fused sequence.
type batchRunner struct{ b *batcher }

func (batchRunner) name() string    { return "batched-generate" }
func (batchRunner) exclusive() bool { return true }

// admit is unused: exclusive runners run their whole terminal side in
// collect.
func (batchRunner) admit(ctx context.Context, c *Cluster, p comm.Peer, ex *comm.Exchange, req *request) error {
	return nil
}

func (r batchRunner) collect(ctx context.Context, c *Cluster, p comm.Peer, ex *comm.Exchange, req *request) error {
	return r.b.terminal(ctx, p, ex, req)
}

func (batchRunner) worker(ctx context.Context, c *Cluster, p comm.Peer, ex *comm.Exchange, rank int, req *request) error {
	return c.batchWorker(ctx, p, ex, rank, req)
}

// terminal drives the batch from the terminal device: join, produce, fused
// step, repeat until the batch drains. Degraded rounds run over the
// request's live ranks only; the lowest live rank reports the fused rows.
func (b *batcher) terminal(ctx context.Context, p comm.Peer, ex *comm.Exchange, req *request) error {
	c := b.c
	m := c.models[0] // pre/post-processing replica
	maxBatch := c.maxBatch()
	ranks := req.liveRanks(c)
	var live []*batchSeq
	// fail tears the round down on a mesh fault: sequences whose callers
	// are gone resolve with their own context error, the rest park for the
	// next round's resumption — adjudicate (run loop) then blames the rank
	// and decides, with the elected root cause in hand, which parked
	// sequences are still in budget. The workers are released by collect's
	// abort; no shutdown frames are attempted on a possibly wedged mesh.
	fail := func(err error) error {
		var parked []*batchSeq
		for _, s := range live {
			if cerr := s.ctx.Err(); cerr != nil {
				b.leaveLocked(req, s, cerr)
				continue
			}
			parked = append(parked, b.park(req, s))
		}
		b.requeue(parked)
		live = nil
		return err
	}
	first := true
	for {
		// Migration boundary: when the adaptive controller installed a new
		// scheme since this round was planned, retire the round here — a
		// step boundary, where no partition math is in flight — park every
		// live sequence, and release the workers with clean shutdown
		// frames. The run loop re-plans under the new scheme and resumes
		// each sequence by re-prefilling its committed prefix, so the
		// migration is invisible in the token streams. Degraded rounds are
		// exempt: the health path owns their re-planning, and its next
		// full-strength round picks the new scheme up anyway.
		if !req.degraded {
			if _, gen := c.schemeSnapshot(); gen != req.schemeGen {
				var parked []*batchSeq
				for _, s := range live {
					if cerr := s.ctx.Err(); cerr != nil {
						b.leaveLocked(req, s, cerr)
						continue
					}
					ps := b.park(req, s)
					ps.adaptPark = true
					parked = append(parked, ps)
				}
				b.requeue(parked)
				live = nil
				c.flight.Eventf("repartition", -1, "batch migrating to scheme generation %d: %d sequences parked for re-prefill", gen, len(parked))
				for _, r := range ranks {
					if err := p.Send(ctx, r, []byte{}); err != nil {
						return err
					}
				}
				return nil
			}
		}
		// Join boundary. The first take is unconditional so a generate
		// burst is never starved; afterwards joins pause while other
		// requests wait in the admission queue, so the exclusive fence
		// ends instead of extending itself indefinitely.
		if want := maxBatch - len(live); want > 0 && (first || len(c.queue) == 0) {
			taken := b.take(want)
			for i, s := range taken {
				joined, err := b.join(ctx, p, ex, req, s)
				if err != nil {
					// Park or resolve the failed joiner and the not-yet-
					// joined remainder along with the live batch.
					live = append(live, taken[i:]...)
					return fail(err)
				}
				if joined {
					live = append(live, s)
				}
			}
		}
		first = false
		if len(live) == 0 {
			// Batch drained: release the workers and retire the request.
			for _, r := range ranks {
				if err := p.Send(ctx, r, []byte{}); err != nil {
					return err
				}
			}
			return nil
		}

		// Produce boundary: decode each live sequence's next token;
		// finished, canceled, or failed sequences leave without touching
		// the others' caches — per-sequence faults stop here.
		keep := live[:0]
		for i, s := range live {
			// A mesh fault while notifying a departure is fatal for the
			// batch: the kept sequences plus the not-yet-visited remainder
			// all park or resolve with it (s itself was resolved by leave).
			lerr := error(nil)
			if err := s.ctx.Err(); err != nil {
				lerr = b.leave(ctx, p, req, s, err)
			} else if err := b.produce(m, s); err != nil || s.exhausted(c) {
				lerr = b.leave(ctx, p, req, s, err)
			} else {
				keep = append(keep, s)
			}
			if lerr != nil {
				live = append(keep, live[i+1:]...)
				return fail(lerr)
			}
		}
		live = keep
		if len(live) == 0 {
			continue // maybe joiners arrived while producing
		}

		// Fused step: one frame out, one fused hidden matrix back from the
		// lowest live rank.
		frame := c.stepFrame(live)
		for _, r := range ranks {
			if err := p.Send(ctx, r, frame); err != nil {
				return fail(err)
			}
		}
		got, err := p.Recv(ctx, ranks[0])
		if err != nil {
			return fail(err)
		}
		rows, _, err := tensor.Decode(got)
		if err != nil {
			return fail(err)
		}
		comm.ReleaseBuffer(got)
		if rows.Rows() != len(live) {
			return fail(fmt.Errorf("fused step returned %d rows for %d sequences", rows.Rows(), len(live)))
		}
		for i, s := range live {
			if s.last, err = rows.RowSlice(i, i+1); err != nil {
				return fail(err)
			}
		}
		c.metrics.observeBatchStep(len(live))
	}
}

// produce decodes one token for s from its last hidden row: exactly the
// solo terminal's logits → argmax → append → stream ordering.
func (b *batcher) produce(m *model.Model, s *batchSeq) error {
	logits, err := m.LM.NextTokenLogits(s.last)
	if err != nil {
		return err
	}
	next := model.Argmax(logits)
	s.tokens = append(s.tokens, next)
	s.produced++
	if s.onToken != nil {
		s.onToken(next)
	}
	return nil
}

// exhausted reports that s has produced all requested tokens or filled the
// model's context window (the solo loop's two break conditions).
func (s *batchSeq) exhausted(c *Cluster) bool {
	return s.produced >= s.steps || len(s.tokens) >= c.cfg.MaxSeq
}

// join admits one pending sequence into the batch: its prompt — or, when
// resuming after a batch fault, its committed prompt+generated prefix —
// prefills through Algorithm 2 (building caches on every live worker) while
// the rest of the batch waits at the step boundary. Prefills of a burst run
// back-to-back, each its own Algorithm-2 round, so the partition math is
// untouched. Returns joined=false for sequence-local failures (resolved or
// re-parked here); a non-nil error is a mesh fault, fatal for the round.
func (b *batcher) join(ctx context.Context, p comm.Peer, ex *comm.Exchange, req *request, s *batchSeq) (bool, error) {
	c := b.c
	resuming := !s.parkedAt.IsZero()
	if !resuming {
		wait := time.Since(s.enq)
		s.res.BatchWait = wait
		s.trace.AddAt(c.terminalRank(), -1, trace.PhaseBatchWait, 0, wait)
		c.metrics.observeBatchWait(wait)
	}
	if err := s.ctx.Err(); err != nil {
		// Abandoned while waiting to join: never dispatched to the mesh,
		// same accounting as the dispatcher's queued-cancel drop.
		c.metrics.canceledInQueue()
		b.release(1)
		s.finish(err)
		return false, nil
	}
	prefix := s.prompt
	if len(s.tokens) > 0 {
		prefix = s.tokens // resume from the committed prefix
	}
	x, err := c.models[0].Embed.EmbedTokens(prefix)
	if err != nil {
		b.leaveLocked(req, s, err)
		return false, nil
	}
	if resuming && s.adaptPark {
		// Re-prefill forced by a scheme migration, not a fault: it costs
		// no retry budget (attempts unchanged) and counts as a migration.
		s.adaptPark = false
		s.trace.Add(c.terminalRank(), -1, trace.PhaseRecover, time.Since(s.parkedAt))
		c.metrics.phase(trace.PhaseRecover, time.Since(s.parkedAt))
		c.metrics.batchSeqMigrated()
		s.parkedAt = time.Time{}
	} else {
		s.attempts++
		if resuming {
			s.trace.Add(c.terminalRank(), -1, trace.PhaseRecover, time.Since(s.parkedAt))
			c.metrics.phase(trace.PhaseRecover, time.Since(s.parkedAt))
			c.metrics.batchSeqResumed()
			s.parkedAt = time.Time{}
		}
	}
	s.joinStats = make([]comm.Stats, len(req.scopes))
	for r, sc := range req.scopes {
		s.joinStats[r] = sc.Stats()
	}
	c.metrics.batchJoin()
	start := time.Now()
	var hdr [5]byte
	hdr[0] = opPrefill
	binary.LittleEndian.PutUint32(hdr[1:], s.id)
	blob := ex.Encode(x)
	ranks := req.liveRanks(c)
	for _, r := range ranks {
		if err := p.Send(ctx, r, hdr[:]); err != nil {
			return false, err
		}
		if err := p.Send(ctx, r, blob); err != nil {
			return false, err
		}
	}
	out, seqErr, err := b.collectJoin(ctx, p, ex, ranks, x.Rows())
	if err != nil {
		return false, err
	}
	if seqErr != nil {
		// Every live rank delivered (the corrupt partition was consumed, so
		// the streams stay aligned) and every worker holds the new caches:
		// drop them and retire or re-park this joiner alone — the rest of
		// the batch never stops.
		if lerr := b.dropSeq(ctx, p, ranks, s); lerr != nil {
			return false, lerr
		}
		b.retireJoin(req, s, seqErr)
		return false, nil
	}
	s.res.PrefillLatency += time.Since(start)
	s.trace.Add(c.terminalRank(), -1, trace.PhaseBoundary, time.Since(start))
	if len(s.tokens) == 0 {
		s.tokens = make([]int, len(s.prompt), len(s.prompt)+s.steps)
		copy(s.tokens, s.prompt)
	}
	if s.last, err = out.RowSlice(out.Rows()-1, out.Rows()); err != nil {
		return false, err
	}
	s.decodeStart = time.Now()
	return true, nil
}

// collectJoin receives one prefill partition from every live rank, draining
// all of them even after a failure so the FIFO streams stay aligned for the
// rest of the batch. A corrupt or undecodable partition — attributed to its
// sender by the frame checksum — is returned as the sequence-local seqErr;
// any other receive failure is a mesh fault (err), fatal for the round.
func (b *batcher) collectJoin(ctx context.Context, p comm.Peer, ex *comm.Exchange, ranks []int, n int) (*tensor.Matrix, error, error) {
	pool := ex.Pool()
	parts := make([]*tensor.Matrix, 0, len(ranks))
	var seqErr, meshErr error
	for _, r := range ranks {
		got, err := p.Recv(ctx, r)
		if err != nil {
			if errors.Is(err, comm.ErrCorrupt) {
				if seqErr == nil {
					seqErr = err
				}
				continue // frame consumed; keep draining the other ranks
			}
			meshErr = err
			break
		}
		part, _, err := tensor.DecodePooled(pool, got)
		comm.ReleaseBuffer(got)
		if err != nil {
			if seqErr == nil {
				seqErr = err // hostile payload on a delivered frame
			}
			continue
		}
		parts = append(parts, part)
	}
	if meshErr != nil || seqErr != nil {
		for _, part := range parts {
			pool.Put(part)
		}
		return nil, seqErr, meshErr
	}
	out, err := tensor.ConcatRows(parts...)
	if err != nil {
		return nil, nil, err
	}
	for _, part := range parts {
		pool.Put(part)
	}
	if out.Rows() != n {
		return nil, nil, fmt.Errorf("cluster: assembled %d rows, want %d", out.Rows(), n)
	}
	return out, nil, nil
}

// retireJoin handles a sequence-local join failure (its own prefill
// partition arrived corrupt): the blamed sender is recorded with the health
// machinery, and the sequence alone retries next round or resolves — the
// rest of the batch never stops decoding.
func (b *batcher) retireJoin(req *request, s *batchSeq, cause error) {
	c := b.c
	if c.opts.MaxRetries > 0 {
		if r, ok := comm.RemoteRank(cause); ok {
			c.health.recordFailure(r, cause)
		}
		if retryable(cause) && s.attempts < 1+c.opts.MaxRetries {
			b.requeue([]*batchSeq{b.park(req, s)})
			return
		}
	}
	b.leaveLocked(req, s, fmt.Errorf("cluster: batched prefill: %w", cause))
}

// park pulls a surviving sequence out of a dead round: the residency it
// already paid (decode time, traffic) folds into its result, its committed
// tokens stay for the resume prefill, and parkedAt starts the recovery
// span. The caller moves it back to pending via requeue.
func (b *batcher) park(req *request, s *batchSeq) *batchSeq {
	b.accumulate(req, s)
	if req.degraded {
		s.res.Degraded = true
	}
	s.last = nil
	s.parkedAt = time.Now()
	return s
}

// leave removes a resolved sequence from the batch, telling the workers to
// drop its caches. cause nil is normal completion. The returned error is a
// mesh fault encountered while notifying (the sequence itself is resolved
// either way).
func (b *batcher) leave(ctx context.Context, p comm.Peer, req *request, s *batchSeq, cause error) error {
	sendErr := b.dropSeq(ctx, p, req.liveRanks(b.c), s)
	b.leaveLocked(req, s, cause)
	return sendErr
}

// dropSeq tells every live worker to discard one sequence's caches.
func (b *batcher) dropSeq(ctx context.Context, p comm.Peer, ranks []int, s *batchSeq) error {
	var frame [5]byte
	frame[0] = opLeave
	binary.LittleEndian.PutUint32(frame[1:], s.id)
	for _, r := range ranks {
		if err := p.Send(ctx, r, frame[:]); err != nil {
			return err
		}
	}
	return nil
}

// leaveLocked finalizes a live sequence's result and accounting without
// touching the mesh (the workers either already dropped it, never held it,
// or are being torn down with the whole round).
func (b *batcher) leaveLocked(req *request, s *batchSeq, cause error) {
	b.resolve(req, s, cause)
	b.release(1)
}

// resolve hands a sequence back to its caller with its accumulated result.
// req may be nil (terminal-local fallback). Pending sequences resolved by
// adjudicate come through here too — they hold no live slot, so resolve
// itself releases nothing.
func (b *batcher) resolve(req *request, s *batchSeq, cause error) {
	c := b.c
	b.accumulate(req, s)
	s.res.Tokens = s.tokens
	s.res.Attempts = s.attempts
	if s.res.Attempts < 1 {
		s.res.Attempts = 1
	}
	if req != nil && req.degraded {
		s.res.Degraded = true
	}
	if cause != nil && !errors.Is(cause, context.Canceled) {
		c.metrics.batchSeqFailed()
	}
	c.metrics.observeRequest(s.res.Attempts, s.res.Degraded, cause)
	s.finish(cause)
}

// accumulate folds the sequence's current batch residency into its result:
// decode time since join and per-rank traffic deltas. It is idempotent per
// residency (joinStats clears), so a parked-then-resolved sequence counts
// each round exactly once; the batch-leave counter mirrors the join counter
// by firing only for residencies that actually joined.
func (b *batcher) accumulate(req *request, s *batchSeq) {
	c := b.c
	if !s.decodeStart.IsZero() {
		s.res.DecodeLatency += time.Since(s.decodeStart)
		s.decodeStart = time.Time{}
	}
	if s.joinStats == nil {
		return
	}
	if s.res.PerDevice == nil {
		s.res.PerDevice = make([]comm.Stats, len(req.scopes))
	}
	for r, sc := range req.scopes {
		s.res.PerDevice[r] = s.res.PerDevice[r].Add(sc.Stats().Sub(s.joinStats[r]))
	}
	s.joinStats = nil
	c.metrics.batchLeave()
}

// stepFrame encodes one fused decode step: a cluster-global round number
// (so every rank's step time lands in the same skew-detector round, stable
// across degraded transitions), then every live sequence's id and newest
// token, in batch order.
func (c *Cluster) stepFrame(live []*batchSeq) []byte {
	buf := make([]byte, 7+8*len(live))
	buf[0] = opStep
	binary.LittleEndian.PutUint32(buf[1:5], c.stepRound.Add(1))
	binary.LittleEndian.PutUint16(buf[5:7], uint16(len(live)))
	off := 7
	for _, s := range live {
		binary.LittleEndian.PutUint32(buf[off:], s.id)
		binary.LittleEndian.PutUint32(buf[off+4:], uint32(s.tokens[len(s.tokens)-1]))
		off += 8
	}
	return buf
}

// batchWorker serves one device's side of the batch: sequences prefill into
// a cache table, fused step frames advance every listed cache with one
// batched matmul per weight per layer, and leave frames drop caches. Frame
// order on the FIFO link from the terminal is the protocol. Ranks excluded
// from a degraded round idle through the whole request; the lowest live
// rank reports the fused rows.
func (c *Cluster) batchWorker(ctx context.Context, p comm.Peer, ex *comm.Exchange, rank int, req *request) error {
	me := req.liveIndex(c, rank)
	if me < 0 {
		return nil // excluded from this degraded round
	}
	term := c.terminalRank()
	m := c.models[rank]
	states := make(map[uint32]*model.DecodeState)
	for {
		frame, err := p.Recv(ctx, term)
		if err != nil {
			return err
		}
		if len(frame) == 0 {
			return nil
		}
		switch frame[0] {
		case opPrefill:
			if len(frame) != 5 {
				return fmt.Errorf("cluster: prefill frame of %d bytes", len(frame))
			}
			id := binary.LittleEndian.Uint32(frame[1:])
			comm.ReleaseBuffer(frame)
			state, err := c.prefillWorker(ctx, p, ex, rank, req)
			if err != nil {
				return err
			}
			states[id] = state
		case opStep:
			if len(frame) < 7 {
				return fmt.Errorf("cluster: step frame of %d bytes", len(frame))
			}
			round := binary.LittleEndian.Uint32(frame[1:5])
			n := int(binary.LittleEndian.Uint16(frame[5:7]))
			if len(frame) != 7+8*n {
				return fmt.Errorf("cluster: step frame of %d bytes for %d sequences", len(frame), n)
			}
			sts := make([]*model.DecodeState, n)
			ids := make([]int, n)
			for i := 0; i < n; i++ {
				off := 7 + 8*i
				id := binary.LittleEndian.Uint32(frame[off:])
				st, ok := states[id]
				if !ok {
					return fmt.Errorf("cluster: step for unknown sequence %d", id)
				}
				sts[i] = st
				ids[i] = int(binary.LittleEndian.Uint32(frame[off+4:]))
			}
			comm.ReleaseBuffer(frame)
			start := time.Now()
			rows, err := m.DecodeStepBatch(sts, ids)
			if err != nil {
				return err
			}
			// One paced interval for the whole fused step: the summed Γ of
			// the solo steps it replaces (fusion changes latency, not MACs).
			positions := make([]int, n)
			for i, st := range sts {
				positions[i] = st.Pos
			}
			if err := c.paceRank(ctx, rank, start, decodeStepCost(m, positions...)); err != nil {
				return err
			}
			// Pace-inclusive elapsed time is this rank's emulated device time
			// for the fused step — exactly what the skew detector compares.
			elapsed := time.Since(start)
			c.recordPhase(req, rank, -1, trace.PhaseCompute, elapsed)
			c.metrics.observeStepDur(elapsed)
			c.obs.RecordRound(uint64(round), rank, len(req.liveRanks(c)), elapsed)
			if me == 0 {
				if err := p.Send(ctx, term, ex.Encode(rows)); err != nil {
					return err
				}
			}
		case opLeave:
			if len(frame) != 5 {
				return fmt.Errorf("cluster: leave frame of %d bytes", len(frame))
			}
			delete(states, binary.LittleEndian.Uint32(frame[1:]))
			comm.ReleaseBuffer(frame)
		default:
			return fmt.Errorf("cluster: unknown batch opcode %d", frame[0])
		}
	}
}
