package cluster

import (
	"context"
	"testing"

	"voltage/internal/model"
	"voltage/internal/netem"
)

func TestQuantizedCommOutputClose(t *testing.T) {
	// Quantized All-Gathers are lossy but bounded: final hidden states
	// must stay close to the exact run and the prediction must match.
	exact := newTiny(t, 3, Options{})
	quant := newTiny(t, 3, Options{QuantizedComm: true})
	x := embedTiny(t, exact, 16)
	ctx := context.Background()
	re, err := exact.Infer(ctx, StrategyVoltage, x)
	if err != nil {
		t.Fatal(err)
	}
	rq, err := quant.Infer(ctx, StrategyVoltage, x)
	if err != nil {
		t.Fatal(err)
	}
	d, err := rq.Output.MaxAbsDiff(re.Output)
	if err != nil {
		t.Fatal(err)
	}
	// Layer-normed activations are O(1); int8 per-layer error stays well
	// below 0.5 after two layers.
	if d > 0.5 {
		t.Fatalf("quantized output deviates by %v", d)
	}
	pe, err := exact.Model(0).Classifier.Predict(re.Output)
	if err != nil {
		t.Fatal(err)
	}
	pq, err := quant.Model(0).Classifier.Predict(rq.Output)
	if err != nil {
		t.Fatal(err)
	}
	if pe != pq {
		t.Fatalf("quantized comm flipped the prediction: %d vs %d", pe, pq)
	}
}

func TestQuantizedCommReducesTraffic(t *testing.T) {
	exact := newTiny(t, 4, Options{})
	quant := newTiny(t, 4, Options{QuantizedComm: true})
	x := embedTiny(t, exact, 32)
	ctx := context.Background()
	re, err := exact.Infer(ctx, StrategyVoltage, x)
	if err != nil {
		t.Fatal(err)
	}
	rq, err := quant.Infer(ctx, StrategyVoltage, x)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(re.TotalBytesSent()) / float64(rq.TotalBytesSent())
	// All-Gather traffic shrinks ≈4×; the final float32 hand-off to the
	// terminal dilutes the aggregate somewhat.
	if ratio < 2 {
		t.Fatalf("quantized comm ratio %.2f, want ≥2 (≈4 on gathers)", ratio)
	}
	t.Logf("traffic: exact=%dB quantized=%dB (%.1fx reduction)", re.TotalBytesSent(), rq.TotalBytesSent(), ratio)
}

func TestQuantizedCommFasterAtLowBandwidth(t *testing.T) {
	if raceEnabled {
		t.Skip("bandwidth-vs-cpu timing comparison unreliable under -race")
	}
	// At edge bandwidths the 4× smaller gathers translate into latency.
	profile := netem.Profile{BandwidthMbps: 10}
	cfg := model.Tiny().Scaled(4)
	run := func(quantized bool) float64 {
		c, err := NewMem(cfg, 3, Options{Profile: profile, QuantizedComm: quantized})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		x := embedTiny(t, c, 48)
		res, err := c.Infer(context.Background(), StrategyVoltage, x)
		if err != nil {
			t.Fatal(err)
		}
		return res.Latency.Seconds()
	}
	exact := run(false)
	quant := run(true)
	if quant >= exact {
		t.Fatalf("quantized comm (%.4fs) not faster than exact (%.4fs) at 10 Mbps", quant, exact)
	}
	t.Logf("10 Mbps latency: exact=%.4fs quantized=%.4fs", exact, quant)
}

func TestQuantizedCommWithDynamicScheme(t *testing.T) {
	// Extensions compose: dynamic re-balancing over quantized gathers.
	c, err := NewMem(model.Tiny().Scaled(4), 3, Options{QuantizedComm: true, DynamicScheme: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	x := embedTiny(t, c, 24)
	ctx := context.Background()
	single, err := c.Infer(ctx, StrategySingle, x)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Infer(ctx, StrategyVoltage, x)
	if err != nil {
		t.Fatal(err)
	}
	d, err := res.Output.MaxAbsDiff(single.Output)
	if err != nil {
		t.Fatal(err)
	}
	if d > 0.8 {
		t.Fatalf("composed extensions deviate by %v", d)
	}
}
