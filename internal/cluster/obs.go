package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"voltage/internal/obs"
)

// Continuous profiling & diagnostics wiring (see DESIGN.md §14). The
// cluster feeds the always-on obs.Store and obs.FlightRecorder from its
// existing observation points — recordPhase, fused decode rounds, health
// transitions, batch recoveries — and exposes snapshots through Profile,
// FlightDump, ChromeTrace, and the admin listener's /debug endpoints.

// flightDumpCooldown rate-limits automatic failure dumps to FlightSink.
const flightDumpCooldown = 30 * time.Second

// Profile returns the live per-rank profile: per-phase EWMA timings, comm
// bytes, fused-step estimates, and the skew/straggler state. This snapshot
// is the sensing input for adaptive re-partitioning (ROADMAP item 2).
func (c *Cluster) Profile() obs.Profile {
	return c.obs.Profile()
}

// Flight exposes the cluster's flight recorder so embedding layers (the
// gateway, the scheduler's shed hook) can append their own events.
func (c *Cluster) Flight() *obs.FlightRecorder {
	return c.flight
}

// FlightDump snapshots the flight recorder — recent events and request
// traces — with the live profile attached.
func (c *Cluster) FlightDump() obs.Dump {
	d := c.flight.Dump()
	p := c.obs.Profile()
	d.Profile = &p
	return d
}

// ChromeTrace renders the flight recorder's retained request traces as a
// Chrome trace-event JSON document (load it in Perfetto or
// chrome://tracing): one process per request, one thread per device rank.
func (c *Cluster) ChromeTrace() []byte {
	return obs.ChromeTrace(c.flight.Traces(), c.terminalRank())
}

// observeResolved feeds one resolved attempt into the diagnostics layer:
// scoped comm bytes into the profile store, the request's trace into the
// flight recorder, and — on a real failure — a structured event plus the
// automatic FlightSink dump.
func (c *Cluster) observeResolved(req *request, cause error) {
	for r, s := range req.perDevice {
		c.obs.RecordComm(r, int64(s.BytesSent), int64(s.BytesRecv))
	}
	rec := obs.TraceRecord{
		ID:       req.id,
		Kind:     req.runner.name(),
		Start:    req.start,
		Latency:  req.latency,
		Degraded: req.degraded,
		Attempts: req.attempts + 1,
		Spans:    req.trace.Spans(),
	}
	if cause != nil {
		rec.Err = cause.Error()
	}
	c.flight.RecordTrace(rec)
	if cause != nil && !errors.Is(cause, context.Canceled) {
		c.flight.Eventf("request_failed", -1, "request %d (%s): %v", req.id, req.runner.name(), cause)
		c.maybeDumpFlight()
	}
}

// maybeDumpFlight writes one flight dump to Options.FlightSink, at most
// once per cooldown window.
func (c *Cluster) maybeDumpFlight() {
	w := c.opts.FlightSink
	if w == nil || !c.flight.ShouldDump(flightDumpCooldown) {
		return
	}
	blob, err := json.MarshalIndent(c.FlightDump(), "", "  ")
	if err != nil {
		return
	}
	fmt.Fprintf(w, "voltage: flight recorder dump (triggered by request failure):\n%s\n", blob)
}

// flightHandler serves /debug/flight: the flight-recorder dump as JSON.
func (c *Cluster) flightHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(c.FlightDump())
	})
}

// traceHandler serves /debug/trace: the Chrome trace-event export.
func (c *Cluster) traceHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="voltage-trace.json"`)
		_, _ = w.Write(c.ChromeTrace())
	})
}
