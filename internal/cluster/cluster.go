// Package cluster implements the distributed runtime of Section V: a
// terminal device plus K worker devices executing Algorithm 2 (Voltage),
// the tensor-parallelism baseline, or single-device inference over a
// bandwidth-emulated mesh.
//
// The emulation mirrors the paper's testbed: each worker stands in for one
// single-vCPU VM (run experiments with tensor.SetWorkers(1) so each
// device's math is single-threaded; the workers themselves run in parallel
// goroutines exactly as separate machines would), and all traffic flows
// through netem-shaped links.
//
// The runtime is a persistent serving system (see serve.go): Submit admits
// requests to long-lived worker loops through a dispatcher, and the
// blocking Infer/GenerateVoltage/InferPipeline calls are thin wrappers over
// Submit + Wait.
package cluster

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"voltage/internal/adapt"
	"voltage/internal/balance"
	"voltage/internal/comm"
	"voltage/internal/metrics"
	"voltage/internal/model"
	"voltage/internal/netem"
	"voltage/internal/obs"
	"voltage/internal/partition"
	"voltage/internal/tensor"
	"voltage/internal/tparallel"
	"voltage/internal/trace"
)

// Strategy selects how inference work is distributed.
type Strategy int

// Supported strategies.
const (
	// StrategySingle runs the whole model on worker 0 (the paper's
	// single-device baseline).
	StrategySingle Strategy = iota + 1
	// StrategyVoltage is the paper's position-wise partitioning with one
	// All-Gather per layer (Algorithm 2).
	StrategyVoltage
	// StrategyTensorParallel is the Megatron-style baseline with two
	// All-Reduces per layer.
	StrategyTensorParallel
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case StrategySingle:
		return "single"
	case StrategyVoltage:
		return "voltage"
	case StrategyTensorParallel:
		return "tensor-parallel"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Options configures a cluster.
type Options struct {
	// Profile shapes every link (default netem.Unlimited).
	Profile netem.Profile
	// Scheme is the Voltage partition scheme (default Even(k)).
	Scheme *partition.Scheme
	// RingAllGather selects the ring All-Gather for Voltage's layer
	// synchronization (default naive direct exchange, as in the paper's
	// accounting).
	RingAllGather bool
	// NaiveAllReduce downgrades tensor parallelism to the naive All-Reduce
	// (default ring, matching the Megatron figures the paper cites).
	NaiveAllReduce bool
	// Seed derives the replicated model weights (default 1).
	Seed int64
	// DeviceFlops paces every emulated device at this sustained MAC/s
	// rate: after each layer's real math the worker sleeps until the
	// layer's analytic Γ divided by DeviceFlops has elapsed. This makes
	// the emulation faithful even when the host has fewer cores than
	// emulated devices — pick a rate at or below
	// host-per-core-rate × cores ÷ K. Zero disables pacing (latencies
	// then reflect raw host math under whatever contention exists).
	DeviceFlops float64
	// HeteroDeviceFlops, when non-nil, paces worker r at
	// HeteroDeviceFlops[r] instead of DeviceFlops — a heterogeneous edge
	// cluster (§V-B). Length must equal K.
	HeteroDeviceFlops []float64
	// DynamicScheme lets Voltage re-balance the partition scheme per layer
	// at runtime from observed per-position compute times (the paper's
	// §V-B flexibility). Workers exchange their timings inside the
	// existing synchronization point, so the adjustment costs a few bytes
	// per layer.
	DynamicScheme bool
	// Recorder, when non-nil, accumulates per-device compute/comm phase
	// timings for breakdown reporting.
	Recorder *trace.Recorder
	// QuantizedComm int8-quantizes Voltage's All-Gather payloads (≈¼ the
	// traffic) at the cost of a bounded per-layer quantization error —
	// the communication optimization the paper's conclusion points to.
	QuantizedComm bool
	// NoPooling disables the matrix pool on the per-layer hot path, so
	// every activation is freshly allocated (the pre-serving behaviour;
	// kept for A/B benchmarking).
	NoPooling bool

	// Serving-runtime queue sizing. Zero keeps the defaults; negative
	// values are rejected. An inference gateway that maintains its own
	// per-class admission queues (internal/sched) should set QueueDepth
	// low so requests wait in the gateway — where they can be shed, re-
	// ordered by deadline, and withdrawn on cancel — instead of double-
	// buffering in the engine's FIFO.

	// QueueDepth bounds the admission queue (default 64): Submit blocks —
	// or fails its context — once this many requests are waiting.
	QueueDepth int
	// InflightDepth bounds how many dispatched requests may occupy the
	// mesh at once (default 8), which keeps per-link queues well under the
	// transport's limits.
	InflightDepth int
	// AdmitDepth bounds how far each worker loop may lag the dispatcher
	// without blocking it (default 16).
	AdmitDepth int

	// Continuous batching (see DESIGN.md "Continuous batching"). Concurrent
	// generate requests share forward passes: queued prefills coalesce and
	// the KV-cached decode steps of live sequences fuse into one matmul per
	// layer per step, with sequences joining and leaving between steps.
	// Outputs stay bit-identical per sequence to a solo run.

	// MaxBatch caps how many generate sequences may fuse into one decode
	// batch (default 8). 1 restores strictly serial generation — every
	// sequence runs as a degenerate batch of one.
	MaxBatch int
	// BatchWindow is how long the first sequence of a new batch waits for
	// concurrent arrivals to coalesce before its first fused round starts
	// (default 0: start immediately). Sequences can still join a running
	// batch between steps regardless of the window.
	BatchWindow time.Duration

	// Fault tolerance (see DESIGN.md "Fault tolerance"). All knobs default
	// off, preserving the fail-fast behaviour of earlier revisions.

	// RequestTimeout bounds each request (each attempt, when retries are
	// enabled) end-to-end: a request that cannot finish in time — a dropped
	// message, a stalled device — resolves as comm.ErrTimeout instead of
	// hanging forever. Zero disables the deadline.
	RequestTimeout time.Duration
	// OpTimeout is the transport watchdog: every Send/Recv on the mesh is
	// individually bounded (comm.WithOpTimeout), so a single lost message
	// inside a collective resolves as an attributed comm.ErrTimeout. Zero
	// disables per-op deadlines.
	OpTimeout time.Duration
	// MaxRetries enables degraded-mode serving: a request that fails with a
	// retryable fault (comm.ErrInjected/ErrTimeout/ErrCorrupt) is re-
	// dispatched up to MaxRetries more times. The blamed rank is marked
	// unhealthy and the retry re-partitions the positions over the
	// surviving workers (comm.NewSubgroup + a fresh partition scheme); when
	// no worker survives, the terminal computes the request locally. Zero
	// disables retries and supervision entirely.
	MaxRetries int
	// ProbeAfter is the probation window: an unhealthy rank is offered one
	// probing request after this much time, recovering to healthy on
	// success. Zero keeps failed ranks excluded until the cluster restarts.
	ProbeAfter time.Duration
	// WrapTransport, when non-nil, wraps each device's raw mesh peer before
	// the integrity-checking frame layer is applied — the fault-injection
	// hook used by the chaos tests (comm.FlakyPeer). Rank k is the
	// terminal.
	WrapTransport func(rank int, p comm.Peer) comm.Peer

	// Observability (see DESIGN.md "Observability"). Metrics stay off the
	// data path: the serving loops record through pre-resolved atomic
	// instruments, a few loads/adds per request.

	// NoMetrics disables the metrics registry entirely. Metrics() then
	// returns an empty snapshot and an admin listener serves no series;
	// kept for A/B benchmarking of the instrumentation itself.
	NoMetrics bool
	// TraceRequests attaches a span trace to every request, surfaced on
	// Result.Trace: one span per (device, layer, phase) step, so a single
	// slow request can be decomposed without the lifetime aggregates.
	TraceRequests bool
	// AdminAddr, when non-empty, starts an HTTP admin listener on this
	// address (host:port; port 0 picks a free one — read it back with
	// Cluster.AdminAddr) serving Prometheus text on /metrics, a health
	// probe on /healthz, net/http/pprof, the flight recorder on
	// /debug/flight, and Chrome trace-event export on /debug/trace. It
	// closes with the cluster.
	AdminAddr string

	// Continuous profiling (see DESIGN.md "Continuous profiling &
	// diagnostics"). The profile store and flight recorder are always on —
	// they are bounded, lock-cheap, and independent of NoMetrics.

	// SkewThreshold is the per-fused-round max/mean compute-time ratio a
	// rank must sustain to be flagged a persistent straggler (default 1.5);
	// StragglerRounds is how many consecutive rounds over (or back under)
	// the threshold flip the flag (default 4).
	SkewThreshold   float64
	StragglerRounds int
	// FlightSink, when non-nil, receives an automatic flight-recorder dump
	// (JSON) whenever a request resolves with a non-cancellation error, rate-
	// limited to one dump per 30s. voltage-server wires stderr; the library
	// default is off so fault-injection tests stay quiet.
	FlightSink io.Writer

	// Adaptive re-partitioning (see DESIGN.md "Adaptive re-partitioning").
	// The controller closes the loop the profile store opened: it watches
	// per-rank fused-step EWMAs and the straggler flags, derives a
	// speed-proportional candidate scheme, and installs it at a safe
	// boundary when the predicted round-time improvement clears the
	// hysteresis guards. Outputs stay bit-identical across installs.

	// Adapt starts the re-partitioning controller loop.
	Adapt bool
	// AdaptInterval is the controller's evaluation period (default 50ms).
	AdaptInterval time.Duration
	// AdaptThreshold is the minimum predicted fractional round-time
	// improvement required to count an evaluation toward a move
	// (default 0.10 — a candidate must promise rounds at most 90% as long).
	AdaptThreshold float64
	// AdaptEvals is how many consecutive over-threshold evaluations arm a
	// move (default 3), and AdaptCooldown the minimum spacing between
	// installed schemes (default 2s).
	AdaptEvals    int
	AdaptCooldown time.Duration

	// Chaos: deterministic slow-rank fault injection (tests/CI), mirroring
	// the -chaos-kill-* flags. With ChaosSlowFactor > 1, worker
	// ChaosSlowRank's emulated compute rate is divided by the factor — a
	// throttled device the adaptation loop should detect and re-slice
	// around. Requires pacing (DeviceFlops or HeteroDeviceFlops) so there
	// is a rate to throttle; ChaosSlowFactor 0 disables the injector.
	ChaosSlowRank   int
	ChaosSlowFactor float64
}

// Cluster is an in-process emulation of a terminal device plus K workers.
// Every worker holds a full replica of the model (Voltage's design) and a
// tensor-parallel shard (the baseline's design).
//
// Requests flow through the persistent serving runtime in serve.go.
type Cluster struct {
	cfg    model.Config
	k      int
	mesh   []*comm.MemPeer // raw transport; ranks 0..k-1 workers, rank k terminal
	peers  []comm.Peer     // mesh wrapped with fault injection, framing, watchdog
	models []*model.Model
	shards [][]*tparallel.ShardedLayer
	opts   Options
	health *healthTracker

	// The serving partition scheme. It starts as Options.Scheme (or even)
	// and is swapped by InstallScheme — the adaptive controller's actuator
	// — at safe boundaries only: requests pin the scheme at submit, batch
	// rounds pin it at plan, and the fused decode loop migrates to a newer
	// generation at its next step boundary. schemeGen counts installs so
	// readers can detect staleness without comparing ratio vectors.
	schemeMu  sync.RWMutex
	scheme    *partition.Scheme
	schemeGen uint64
	adaptCtl  *adapt.Controller // nil unless Options.Adapt

	// Observability. metrics is nil under Options.NoMetrics — every
	// clusterMetrics method is nil-receiver-safe, so record sites need no
	// guards. admin is nil unless Options.AdminAddr was set. The profile
	// store and flight recorder are always on (bounded, lock-cheap);
	// stepRound numbers fused decode rounds cluster-wide so workers can
	// correlate their per-round step times across degraded transitions.
	metrics   *clusterMetrics
	admin     *metrics.AdminServer
	obs       *obs.Store
	flight    *obs.FlightRecorder
	stepRound atomic.Uint32

	// Serving runtime state.
	batcher     *batcher           // continuous-batching manager for generation
	pool        *tensor.MatrixPool // nil when Options.NoPooling
	serveOnce   sync.Once
	serveCtx    context.Context
	serveCancel context.CancelFunc
	queue       chan *request   // admission queue
	admitCh     []chan *request // per-worker request tagging
	collectCh   chan *request   // in-flight window
	nextID      atomic.Uint64
}

// terminalRank returns the mesh rank of the terminal device.
func (c *Cluster) terminalRank() int { return c.k }

// NewMem builds an in-memory cluster of k workers plus a terminal for the
// given model configuration.
func NewMem(cfg model.Config, k int, opts Options) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("cluster: k = %d < 1", k)
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	scheme := opts.Scheme
	if scheme == nil {
		var err error
		scheme, err = partition.Even(k)
		if err != nil {
			return nil, err
		}
	}
	if scheme.K() != k {
		return nil, fmt.Errorf("cluster: scheme for %d devices, cluster has %d", scheme.K(), k)
	}
	if opts.HeteroDeviceFlops != nil && len(opts.HeteroDeviceFlops) != k {
		return nil, fmt.Errorf("cluster: %d per-device rates for %d workers", len(opts.HeteroDeviceFlops), k)
	}
	if opts.MaxRetries < 0 {
		return nil, fmt.Errorf("cluster: negative MaxRetries %d", opts.MaxRetries)
	}
	if opts.QueueDepth < 0 || opts.InflightDepth < 0 || opts.AdmitDepth < 0 {
		return nil, fmt.Errorf("cluster: negative queue depth (queue %d, inflight %d, admit %d)",
			opts.QueueDepth, opts.InflightDepth, opts.AdmitDepth)
	}
	if opts.MaxBatch < 0 || opts.BatchWindow < 0 {
		return nil, fmt.Errorf("cluster: negative batching knob (max batch %d, window %s)",
			opts.MaxBatch, opts.BatchWindow)
	}
	if opts.AdaptInterval < 0 {
		return nil, fmt.Errorf("cluster: negative adapt interval %s", opts.AdaptInterval)
	}
	if opts.ChaosSlowFactor != 0 {
		if opts.ChaosSlowFactor <= 1 {
			return nil, fmt.Errorf("cluster: chaos slow factor %v must exceed 1", opts.ChaosSlowFactor)
		}
		if opts.ChaosSlowRank < 0 || opts.ChaosSlowRank >= k {
			return nil, fmt.Errorf("cluster: chaos slow rank %d outside [0,%d)", opts.ChaosSlowRank, k)
		}
		if opts.DeviceFlops <= 0 && opts.HeteroDeviceFlops == nil {
			return nil, fmt.Errorf("cluster: chaos slow rank needs pacing (DeviceFlops or HeteroDeviceFlops)")
		}
	}
	mesh, err := comm.NewMemMesh(k+1, opts.Profile)
	if err != nil {
		return nil, err
	}
	var cm *clusterMetrics
	var tap comm.FaultTap
	if !opts.NoMetrics {
		cm = newClusterMetrics(k)
		tap = cm.fault
	}
	// Every payload crossing the mesh is integrity-checked: fault injection
	// (when configured) sits between the raw transport and the frame layer,
	// so injected corruption is caught by the receiver's CRC; the per-op
	// watchdog wraps outermost so even a framed message that never arrives
	// resolves as a typed timeout. Both fault layers report into the
	// metrics tap, counting even faults a later retry masks.
	peers := make([]comm.Peer, k+1)
	for r := range peers {
		var p comm.Peer = mesh[r]
		if opts.WrapTransport != nil {
			p = opts.WrapTransport(r, p)
		}
		p = comm.NewFramed(p, tap)
		peers[r] = comm.WithOpTimeout(p, opts.OpTimeout, tap)
	}
	// Every worker materializes the same weights from the shared seed —
	// Voltage replicates the model instead of shipping weights.
	models := make([]*model.Model, k)
	shards := make([][]*tparallel.ShardedLayer, k)
	for r := 0; r < k; r++ {
		m, err := model.NewRandom(cfg, opts.Seed)
		if err != nil {
			_ = peers[0].Close()
			return nil, err
		}
		models[r] = m
		sh, err := tparallel.ShardModel(m, r, k)
		if err != nil {
			_ = peers[0].Close()
			return nil, err
		}
		shards[r] = sh
	}
	c := &Cluster{
		cfg: cfg, k: k, mesh: mesh, peers: peers,
		models: models, shards: shards,
		scheme: scheme, opts: opts,
		health:    newHealthTracker(k, opts.ProbeAfter),
		metrics:   cm,
		queue:     make(chan *request, depthOr(opts.QueueDepth, defaultQueueDepth)),
		collectCh: make(chan *request, depthOr(opts.InflightDepth, defaultInflightDepth)),
		admitCh:   make([]chan *request, k),
	}
	// The flight recorder and profile store are always on; skew rounds and
	// straggler flips mirror into gauges (nil-receiver-safe under NoMetrics)
	// and the flight-recorder event log.
	c.flight = obs.NewFlightRecorder(0, 0)
	c.obs = obs.NewStore(obs.StoreOptions{
		K:               k,
		SkewThreshold:   opts.SkewThreshold,
		StragglerRounds: opts.StragglerRounds,
		OnRound:         func(_ uint64, skew, ewma float64) { cm.observeSkew(skew, ewma) },
		OnStraggler: func(rank int, flagged bool) {
			cm.stragglerFlag(rank, flagged)
			state := "flagged as persistent straggler"
			if !flagged {
				state = "recovered from straggler state"
			}
			c.flight.Eventf("straggler", rank, "rank %d %s", rank, state)
		},
	})
	// Health transitions mirror into the per-rank gauge and the flight
	// recorder; the tracker invokes this under its own lock, so the handler
	// must not call back into health (both sinks only touch their own state).
	c.health.onTransition = func(rank int, from, to HealthState) {
		cm.healthTransition(rank, from, to)
		c.flight.Eventf("health", rank, "rank %d: %s -> %s", rank, from, to)
	}
	c.batcher = &batcher{c: c}
	for r := range c.admitCh {
		c.admitCh[r] = make(chan *request, depthOr(opts.AdmitDepth, defaultAdmitDepth))
	}
	if !opts.NoPooling {
		c.pool = &tensor.MatrixPool{}
	}
	c.serveCtx, c.serveCancel = context.WithCancel(context.Background())
	cm.setPartitionRatios(scheme.Ratios())
	if opts.Adapt {
		ctl, err := adapt.New(adapt.Config{
			K:         k,
			Threshold: opts.AdaptThreshold,
			Evals:     opts.AdaptEvals,
			Cooldown:  opts.AdaptCooldown,
		})
		if err != nil {
			c.serveCancel()
			_ = peers[0].Close()
			return nil, err
		}
		c.adaptCtl = ctl
		go c.adaptLoop()
	}
	if opts.AdminAddr != "" {
		admin, err := metrics.StartAdmin(opts.AdminAddr, cm.registry(), c.healthCheck,
			metrics.Endpoint{Path: "/debug/flight", Handler: c.flightHandler()},
			metrics.Endpoint{Path: "/debug/trace", Handler: c.traceHandler()})
		if err != nil {
			_ = peers[0].Close()
			return nil, fmt.Errorf("cluster: admin listener: %w", err)
		}
		c.admin = admin
	}
	return c, nil
}

// healthCheck backs the admin listener's /healthz: serving (200) while at
// least one worker rank remains eligible — a degraded cluster still serves
// — and failing (503) only when every rank is Unhealthy. The body carries
// the per-rank detail either way.
func (c *Cluster) healthCheck() metrics.Health {
	snap := c.health.snapshot()
	type rankDetail struct {
		Rank     int    `json:"rank"`
		State    string `json:"state"`
		Failures int    `json:"failures"`
		LastErr  string `json:"last_err,omitempty"`
	}
	detail := make([]rankDetail, len(snap))
	ok := false
	for i, rh := range snap {
		detail[i] = rankDetail{Rank: rh.Rank, State: rh.State.String(), Failures: rh.Failures}
		if rh.LastErr != nil {
			detail[i].LastErr = rh.LastErr.Error()
		}
		if rh.State != Unhealthy {
			ok = true
		}
	}
	return metrics.Health{OK: ok, Detail: detail}
}

// Metrics returns a point-in-time snapshot of every registered series
// (empty under Options.NoMetrics).
func (c *Cluster) Metrics() metrics.Snapshot {
	return c.metrics.registry().Snapshot()
}

// MetricsRegistry exposes the cluster's registry so an embedding process
// can mount it on its own admin surface (nil under Options.NoMetrics).
func (c *Cluster) MetricsRegistry() *metrics.Registry {
	return c.metrics.registry()
}

// AdminAddr returns the admin listener's bound address ("" when none was
// requested) — useful with Options.AdminAddr port 0.
func (c *Cluster) AdminAddr() string {
	if c.admin == nil {
		return ""
	}
	return c.admin.Addr()
}

// K returns the number of worker devices.
func (c *Cluster) K() int { return c.k }

// defaultMaxBatch is the fused decode width cap when Options.MaxBatch is 0.
const defaultMaxBatch = 8

// maxBatch resolves the configured fused-width cap against its default.
// The step frame carries the width as u16, bounding any configuration.
func (c *Cluster) maxBatch() int {
	if c.opts.MaxBatch > 0 {
		if c.opts.MaxBatch > 65535 {
			return 65535
		}
		return c.opts.MaxBatch
	}
	return defaultMaxBatch
}

// BatchWidth reports the generate sequences currently live in or waiting
// for the fused decode batch — the concurrency a batch-aware admission
// estimate should divide service time by.
func (c *Cluster) BatchWidth() int { return c.batcher.width() }

// Config returns the model configuration.
func (c *Cluster) Config() model.Config { return c.cfg }

// Model returns worker r's model replica (terminal-side pre/post-processing
// uses replica 0, which is bit-identical to the others).
func (c *Cluster) Model(r int) *model.Model { return c.models[r] }

// SetBandwidth changes every device's link rate mid-experiment (the Fig. 5
// sweep).
func (c *Cluster) SetBandwidth(mbps float64) {
	for r := 0; r <= c.k; r++ {
		c.mesh[0].NIC(r).SetRate(netem.Mbps(mbps))
	}
}

// Close stops the serving runtime and shuts the mesh down. Every wrapped
// peer is closed so stalled fault-injection receives unblock too, and the
// admin listener (when one was started) stops serving.
func (c *Cluster) Close() {
	c.serveCancel()
	for _, p := range c.peers {
		_ = p.Close()
	}
	c.admin.Close()
}

// Result reports one distributed inference.
type Result struct {
	// ID is the request's cluster-unique admission id.
	ID uint64
	// Output is the final hidden-state matrix (N×F) as assembled at the
	// terminal device.
	Output *tensor.Matrix
	// Latency is the terminal-observed time from input broadcast to
	// result assembly — the paper's measurement.
	Latency time.Duration
	// PerDevice holds each worker's traffic during this inference
	// (index = worker rank; the last entry is the terminal).
	PerDevice []comm.Stats
	// Strategy echoes the strategy requested. A degraded retry always
	// executes Voltage's position-wise partition over the survivors (any
	// contiguous re-slice of positions is a valid plan), regardless of the
	// requested strategy.
	Strategy Strategy
	// Attempts counts dispatches of this request: 1 is a clean first-try
	// success, more means fault-tolerant retries fired.
	Attempts int
	// Degraded reports that the final attempt ran on fewer than K workers
	// (or, with an empty Live set, on the terminal alone).
	Degraded bool
	// Live lists the worker ranks that served the final attempt. Nil means
	// the full cluster.
	Live []int
	// Trace holds the request's per-layer span trace when
	// Options.TraceRequests is set (nil otherwise). Under retries it is the
	// final attempt's trace.
	Trace *trace.RequestTrace
}

// TotalBytesSent sums payload bytes sent by the workers (excluding the
// terminal's input broadcast), the quantity the paper's per-layer
// communication formulas describe.
func (r *Result) TotalBytesSent() int64 {
	var total int64
	for _, s := range r.PerDevice[:len(r.PerDevice)-1] {
		total += s.BytesSent
	}
	return total
}

// Infer runs one distributed inference of the embedded input x under the
// given strategy and reports the terminal-observed latency. x is the N×F
// feature matrix produced by pre-processing (embedding). It is a blocking
// wrapper over Submit; concurrent callers are sequenced by the serving
// runtime.
func (c *Cluster) Infer(ctx context.Context, strategy Strategy, x *tensor.Matrix) (*Result, error) {
	pend, err := c.Submit(ctx, strategy, x)
	if err != nil {
		return nil, err
	}
	return pend.Wait(ctx)
}

// allRanks returns the full worker rank list [0, k).
func (c *Cluster) allRanks() []int {
	ranks := make([]int, c.k)
	for i := range ranks {
		ranks[i] = i
	}
	return ranks
}

// collectPartitions receives one final-layer partition from each of the
// given worker ranks and stacks them in list order, verifying full
// coverage of n rows. A degraded request passes its survivor list; the
// healthy path passes all ranks.
func (c *Cluster) collectPartitions(ctx context.Context, p comm.Peer, ex *comm.Exchange, ranks []int, n int) (*tensor.Matrix, error) {
	pool := ex.Pool()
	parts := make([]*tensor.Matrix, len(ranks))
	for i, r := range ranks {
		got, err := p.Recv(ctx, r)
		if err != nil {
			return nil, err
		}
		part, _, err := tensor.DecodePooled(pool, got)
		if err != nil {
			return nil, err
		}
		comm.ReleaseBuffer(got)
		parts[i] = part
	}
	out, err := tensor.ConcatRows(parts...)
	if err != nil {
		return nil, err
	}
	for _, part := range parts {
		pool.Put(part)
	}
	if out.Rows() != n {
		return nil, fmt.Errorf("cluster: assembled %d rows, want %d", out.Rows(), n)
	}
	return out, nil
}

// rebalance exchanges per-position timings among the workers and derives
// the next layer's partition ranges. Every worker runs identical tracker
// updates on identical inputs, so the resulting schemes agree without any
// extra coordination round beyond the tiny 8-byte all-gather.
func (c *Cluster) rebalance(ctx context.Context, group comm.Peer, tracker *balance.Tracker,
	mine partition.Range, elapsed time.Duration, n int) ([]partition.Range, error) {
	var obs float64
	if pl := mine.Len(); pl > 0 {
		obs = elapsed.Seconds() / float64(pl)
	}
	blobs, err := comm.AllGather(ctx, group, balance.EncodeObservation(obs))
	if err != nil {
		return nil, err
	}
	times := make([]float64, group.Size())
	for r, b := range blobs {
		times[r] = balance.DecodeObservation(b)
	}
	if err := tracker.Update(times); err != nil {
		return nil, err
	}
	scheme, err := tracker.Scheme()
	if err != nil {
		return nil, err
	}
	return scheme.Ranges(n)
}

// deviceRate returns worker rank's emulated compute rate (0 = unpaced).
// The chaos slow-rank injector throttles one rank deterministically by
// dividing its rate — every paced interval on that rank stretches by the
// factor, exactly what a thermally-limited or contended edge device does.
func (c *Cluster) deviceRate(rank int) float64 {
	rate := c.opts.DeviceFlops
	if rank >= 0 && rank < len(c.opts.HeteroDeviceFlops) {
		rate = c.opts.HeteroDeviceFlops[rank]
	}
	if c.opts.ChaosSlowFactor > 1 && rank == c.opts.ChaosSlowRank {
		rate /= c.opts.ChaosSlowFactor
	}
	return rate
}

// pace sleeps until the emulated compute duration flops/DeviceFlops has
// elapsed since start. With DeviceFlops unset it is a no-op and latencies
// reflect raw host math. (Homogeneous rate; per-rank pacing uses paceRank.)
func (c *Cluster) pace(ctx context.Context, start time.Time, flops int64) error {
	return c.paceRank(ctx, -1, start, flops)
}

// paceRank is pace with worker rank's own rate.
func (c *Cluster) paceRank(ctx context.Context, rank int, start time.Time, flops int64) error {
	rate := c.deviceRate(rank)
	if rate <= 0 {
		return nil
	}
	target := time.Duration(float64(flops) / rate * float64(time.Second))
	return netem.SleepUntil(ctx, start.Add(target))
}

// workerGroup returns the collective group over p restricted to the given
// worker ranks (p is a worker's per-request stat scope, so collective
// traffic is attributed to the request). Degraded requests pass their
// survivor list.
func (c *Cluster) workerGroup(p comm.Peer, members []int) (comm.Peer, error) {
	return comm.NewSubgroup(p, members)
}
