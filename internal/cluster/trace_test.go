package cluster

import (
	"context"
	"testing"
	"time"

	"voltage/internal/model"
	"voltage/internal/netem"
	"voltage/internal/trace"
)

func TestRecorderCapturesVoltageBreakdown(t *testing.T) {
	rec, err := trace.NewRecorder(3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewMem(model.Tiny().Scaled(4), 3, Options{
		Profile:  netem.Profile{BandwidthMbps: 100},
		Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	x := embedTiny(t, c, 24)
	if _, err := c.Infer(context.Background(), StrategyVoltage, x); err != nil {
		t.Fatal(err)
	}
	rep := rec.Snapshot()
	for _, d := range rep.Devices {
		if d.Compute <= 0 {
			t.Fatalf("device %d recorded no compute", d.Rank)
		}
		if d.Comm <= 0 {
			t.Fatalf("device %d recorded no comm", d.Rank)
		}
	}
}

func TestRecorderCapturesTPBreakdown(t *testing.T) {
	rec, err := trace.NewRecorder(2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewMem(model.Tiny(), 2, Options{Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	x := embedTiny(t, c, 12)
	if _, err := c.Infer(context.Background(), StrategyTensorParallel, x); err != nil {
		t.Fatal(err)
	}
	rep := rec.Snapshot()
	for _, d := range rep.Devices {
		if d.Compute <= 0 || d.Comm <= 0 {
			t.Fatalf("device %d breakdown incomplete: %+v", d.Rank, d)
		}
	}
}

func TestTPCommFractionExceedsVoltage(t *testing.T) {
	// The crux of the paper in one number: under the same bandwidth, TP
	// spends a larger fraction of its time communicating than Voltage.
	run := func(strategy Strategy) float64 {
		rec, err := trace.NewRecorder(3)
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewMem(model.Tiny().Scaled(4), 3, Options{
			Profile:     netem.Profile{BandwidthMbps: 20, Latency: 200 * time.Microsecond},
			Recorder:    rec,
			DeviceFlops: 2e8,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		x := embedTiny(t, c, 32)
		if _, err := c.Infer(context.Background(), strategy, x); err != nil {
			t.Fatal(err)
		}
		return rec.Snapshot().Mean().CommFraction()
	}
	v := run(StrategyVoltage)
	tp := run(StrategyTensorParallel)
	if tp <= v {
		t.Fatalf("TP comm fraction %.2f not above Voltage %.2f", tp, v)
	}
	t.Logf("comm fraction @20Mbps: voltage=%.2f tensor-parallel=%.2f", v, tp)
}
