package cluster

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"voltage/internal/comm"
)

// Chaos tests for the fault-tolerant batcher: a device dying mid-batch must
// not lose co-batched sequences — survivors park, the rank is blamed, and
// every stream resumes bit-identically on the re-sliced survivor partition
// (or the terminal replica when no worker survives). Sequence-attributable
// faults go the other way: they retire one sequence while the batch keeps
// decoding.

// runBatch fires the prompts concurrently and waits for every stream.
func runBatch(c *Cluster, prompts [][]int, steps int) ([]*GenerateResult, []error) {
	results := make([]*GenerateResult, len(prompts))
	errs := make([]error, len(prompts))
	var wg sync.WaitGroup
	for i, p := range prompts {
		wg.Add(1)
		go func(i int, p []int) {
			defer wg.Done()
			results[i], errs[i] = c.GenerateVoltage(context.Background(), p, steps)
		}(i, p)
	}
	wg.Wait()
	return results, errs
}

func TestBatchedGenerateWorkerKilledMidBatchResumes(t *testing.T) {
	// Rank 1 dies mid-batch: its receive stream is cut after the co-batched
	// prefills have landed (4 joins × 4 receives each, then one receive per
	// fused step frame), killing a fused round under 4 live sequences. The
	// batcher must blame rank 1, re-slice the partition over ranks {0,2},
	// and resume every survivor from its committed prefix — all four token
	// streams stay bit-identical to solo runs.
	c := newTinyDecoder(t, 3, Options{
		MaxBatch: 4, BatchWindow: 60 * time.Millisecond, MaxRetries: 2,
		WrapTransport: wrapRank(1, func(p comm.Peer) comm.Peer {
			return &comm.FlakyPeer{Inner: p, FailRecvAfter: 21}
		}),
	})
	defer c.Close()
	const steps = 8
	want := soloReference(t, batchPrompts, steps)

	results, errs := runBatch(c, batchPrompts, steps)
	resumed := 0
	for i := range batchPrompts {
		if errs[i] != nil {
			t.Fatalf("stream %d: %v", i, errs[i])
		}
		if !equalTokens(results[i].Tokens, want[i]) {
			t.Errorf("stream %d: tokens %v != solo %v", i, results[i].Tokens, want[i])
		}
		if results[i].Attempts > 1 {
			resumed++
			if !results[i].Degraded {
				t.Errorf("stream %d: resumed (%d attempts) but not degraded", i, results[i].Attempts)
			}
		}
	}
	if resumed == 0 {
		t.Error("no stream rode out the fault: the injected failure never hit a batch round")
	}
	if h := c.Health()[1]; h.State != Unhealthy || !errors.Is(h.LastErr, comm.ErrInjected) {
		t.Errorf("rank 1 health = %v (%v), want Unhealthy with ErrInjected", h.State, h.LastErr)
	}
	snap := c.Metrics()
	if got := snap.Counter(`voltage_batch_recoveries_total{cause="injected"}`); got < 1 {
		t.Errorf("injected recoveries = %v, want >= 1", got)
	}
	if got := snap.Counter("voltage_batch_seqs_resumed_total"); got < 1 {
		t.Errorf("sequences resumed = %v, want >= 1", got)
	}
	if got := snap.Counter("voltage_batch_seqs_failed_total"); got != 0 {
		t.Errorf("sequences failed = %v, want 0 (every survivor resumes)", got)
	}
	if joins, leaves := snap.Counter("voltage_batch_joins_total"), snap.Counter("voltage_batch_leaves_total"); joins != leaves {
		t.Errorf("joins %v != leaves %v after recovery", joins, leaves)
	}
}

func TestBatchedGenerateZeroSurvivorsFallsBackLocally(t *testing.T) {
	// The only worker dies on its first prefill send, before any sequence
	// commits a token. With nothing left to re-slice over, both parked
	// sequences must complete on the terminal's own replica — exact tokens,
	// flagged degraded.
	c := newTinyDecoder(t, 1, Options{
		MaxBatch: 2, BatchWindow: 40 * time.Millisecond, MaxRetries: 1,
		WrapTransport: wrapRank(0, func(p comm.Peer) comm.Peer {
			return &comm.FlakyPeer{Inner: p, FailSendAfter: 1}
		}),
	})
	defer c.Close()
	const steps = 5
	prompts := batchPrompts[:2]
	want := soloReference(t, prompts, steps)

	results, errs := runBatch(c, prompts, steps)
	for i := range prompts {
		if errs[i] != nil {
			t.Fatalf("stream %d: %v", i, errs[i])
		}
		if !equalTokens(results[i].Tokens, want[i]) {
			t.Errorf("stream %d: tokens %v != solo %v", i, results[i].Tokens, want[i])
		}
		if !results[i].Degraded {
			t.Errorf("stream %d: terminal-local fallback not flagged degraded", i)
		}
	}
	if h := c.Health()[0]; h.State != Unhealthy {
		t.Errorf("rank 0 health = %v, want Unhealthy", h.State)
	}
	snap := c.Metrics()
	if got := snap.Counter("voltage_local_fallbacks_total"); got != float64(len(prompts)) {
		t.Errorf("local fallbacks = %v, want %d", got, len(prompts))
	}
	if got := snap.Counter(`voltage_batch_recoveries_total{cause="injected"}`); got < 1 {
		t.Errorf("injected recoveries = %v, want >= 1", got)
	}
}

func TestBatchedGenerateCorruptJoinRetiresOneSequence(t *testing.T) {
	// Rank 1's 4th send is the second joiner's prefill partition, corrupted
	// on the wire. The frame checksum blames the sender, and the blast
	// radius must stay sequence-local: the victim alone re-parks and
	// resumes at the next step boundary while the first sequence keeps
	// decoding — no batch recovery round at all.
	c := newTinyDecoder(t, 2, Options{
		MaxBatch: 2, BatchWindow: 50 * time.Millisecond, MaxRetries: 1,
		WrapTransport: wrapRank(1, func(p comm.Peer) comm.Peer {
			return &comm.FlakyPeer{Inner: p, CorruptEvery: 4}
		}),
	})
	defer c.Close()
	const steps = 6
	prompts := batchPrompts[:2]
	want := soloReference(t, prompts, steps)

	results, errs := runBatch(c, prompts, steps)
	retried := 0
	for i := range prompts {
		if errs[i] != nil {
			t.Fatalf("stream %d: %v", i, errs[i])
		}
		if !equalTokens(results[i].Tokens, want[i]) {
			t.Errorf("stream %d: tokens %v != solo %v", i, results[i].Tokens, want[i])
		}
		if results[i].Attempts > 1 {
			retried++
		}
	}
	if retried != 1 {
		t.Errorf("%d streams retried, want exactly the corrupted joiner", retried)
	}
	// Rank 1 was blamed for the corrupt frame, but the retry round it
	// participated in succeeded — recordSuccess may already have recovered
	// it by the time the streams resolve. The blame itself is durable.
	if h := c.Health()[1]; h.Failures < 1 || !errors.Is(h.LastErr, comm.ErrCorrupt) {
		t.Errorf("rank 1 health = %+v, want >=1 failure with ErrCorrupt", h)
	}
	snap := c.Metrics()
	if got := snap.Counter(`voltage_batch_recoveries_total{cause="corrupt"}`); got != 0 {
		t.Errorf("batch recoveries = %v, want 0 (the fault was sequence-local)", got)
	}
	if got := snap.Counter("voltage_batch_seqs_resumed_total"); got != 1 {
		t.Errorf("sequences resumed = %v, want 1", got)
	}
	if joins, leaves := snap.Counter("voltage_batch_joins_total"), snap.Counter("voltage_batch_leaves_total"); joins != 3 || leaves != 3 {
		t.Errorf("joins/leaves = %v/%v, want 3/3 (one rejoin)", joins, leaves)
	}
}

func TestBatchWindowCancelDoesNotDispatchEmptyBatch(t *testing.T) {
	// A sequence canceled while the batch window is still coalescing must
	// be dropped without spending a fenced mesh round on an empty batch,
	// and the batcher must stay usable afterwards.
	c := newTinyDecoder(t, 2, Options{MaxBatch: 4, BatchWindow: 300 * time.Millisecond})
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.GenerateVoltage(ctx, batchPrompts[0], 4)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // inside the window
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled stream returned %v", err)
	}
	// The run goroutine resolves the abandoned sequence asynchronously.
	deadline := time.After(2 * time.Second)
	for {
		if c.Metrics().Counter("voltage_requests_canceled_total") >= 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("abandoned sequence never drained from the window")
		case <-time.After(5 * time.Millisecond):
		}
	}
	snap := c.Metrics()
	if got := snap.Counter("voltage_fused_steps_total"); got != 0 {
		t.Errorf("fused steps = %v, want 0 (no round for an empty batch)", got)
	}
	if got := snap.Counter("voltage_batch_joins_total"); got != 0 {
		t.Errorf("batch joins = %v, want 0", got)
	}
	// A fresh sequence after the abandoned window decodes normally.
	want := soloReference(t, batchPrompts[:1], 4)
	res, err := c.GenerateVoltage(context.Background(), batchPrompts[0], 4)
	if err != nil {
		t.Fatal(err)
	}
	if !equalTokens(res.Tokens, want[0]) {
		t.Errorf("post-cancel tokens %v != solo %v", res.Tokens, want[0])
	}
}
