package cluster

import (
	"context"
	"errors"
	"testing"
	"time"

	"voltage/internal/comm"
	"voltage/internal/model"
	"voltage/internal/netem"
)

// TestConcurrentSubmitsMatchSequential is the serving runtime's core
// correctness claim: ≥8 overlapping requests across all three strategies
// produce bit-identical outputs — and identical per-request traffic stats —
// to the same requests run back-to-back through blocking Infer on an
// identically seeded cluster. Run under -race via scripts/ci.sh.
func TestConcurrentSubmitsMatchSequential(t *testing.T) {
	const k = 3
	strategies := []Strategy{StrategySingle, StrategyVoltage, StrategyTensorParallel}
	lengths := []int{5, 9, 13}

	// Sequential baseline.
	seq := newTiny(t, k, Options{})
	type want struct {
		strategy Strategy
		n        int
		res      *Result
	}
	var wants []want
	for si, s := range strategies {
		for _, n := range lengths {
			x := embedTiny(t, seq, n+si) // distinct shapes per strategy too
			res, err := seq.Infer(context.Background(), s, x)
			if err != nil {
				t.Fatal(err)
			}
			wants = append(wants, want{strategy: s, n: n + si, res: res})
		}
	}

	// Concurrent: submit all nine before waiting on any.
	conc := newTiny(t, k, Options{})
	pends := make([]*Pending, len(wants))
	for i, w := range wants {
		x := embedTiny(t, conc, w.n)
		pend, err := conc.Submit(context.Background(), w.strategy, x)
		if err != nil {
			t.Fatal(err)
		}
		pends[i] = pend
	}
	for i, pend := range pends {
		got, err := pend.Wait(context.Background())
		if err != nil {
			t.Fatalf("request %d (%v): %v", i, wants[i].strategy, err)
		}
		w := wants[i]
		if got.Strategy != w.strategy {
			t.Fatalf("request %d: strategy %v, want %v", i, got.Strategy, w.strategy)
		}
		if !got.Output.Equal(w.res.Output) {
			t.Fatalf("request %d (%v, n=%d): concurrent output differs from sequential", i, w.strategy, w.n)
		}
		if len(got.PerDevice) != k+1 {
			t.Fatalf("request %d: %d PerDevice entries", i, len(got.PerDevice))
		}
		for r := range got.PerDevice {
			if got.PerDevice[r] != w.res.PerDevice[r] {
				t.Fatalf("request %d (%v) rank %d: stats %+v, want %+v",
					i, w.strategy, r, got.PerDevice[r], w.res.PerDevice[r])
			}
		}
		if got.Latency <= 0 {
			t.Fatalf("request %d: latency %v", i, got.Latency)
		}
	}
	// IDs are unique and increasing in admission order.
	for i := 1; i < len(pends); i++ {
		if pends[i].ID() <= pends[i-1].ID() {
			t.Fatalf("ids not increasing: %d then %d", pends[i-1].ID(), pends[i].ID())
		}
	}
}

// TestPooledMatchesUnpooled drives the same requests through a pooled and
// an unpooled cluster; repeated submissions force matrix reuse, which must
// never leak stale values into outputs.
func TestPooledMatchesUnpooled(t *testing.T) {
	pooled := newTiny(t, 3, Options{})
	plain := newTiny(t, 3, Options{NoPooling: true})
	for round := 0; round < 3; round++ {
		for _, n := range []int{6, 11} {
			x := embedTiny(t, pooled, n)
			a, err := pooled.Infer(context.Background(), StrategyVoltage, x)
			if err != nil {
				t.Fatal(err)
			}
			b, err := plain.Infer(context.Background(), StrategyVoltage, x)
			if err != nil {
				t.Fatal(err)
			}
			if !a.Output.Equal(b.Output) {
				t.Fatalf("round %d n=%d: pooled output differs from unpooled", round, n)
			}
		}
	}
}

// TestGenerateBetweenConcurrentInfers interleaves an exclusive request
// (KV-cached generation) with overlapping classification traffic: the
// dispatcher must fence the queue around it without deadlock or
// cross-request corruption.
func TestGenerateBetweenConcurrentInfers(t *testing.T) {
	c, err := NewMem(model.TinyDecoder(), 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	x := embedTiny(t, c, 7)
	before, err := c.Infer(context.Background(), StrategyVoltage, x)
	if err != nil {
		t.Fatal(err)
	}

	var pends []*Pending
	for i := 0; i < 4; i++ {
		pend, err := c.Submit(context.Background(), StrategyVoltage, embedTiny(t, c, 7))
		if err != nil {
			t.Fatal(err)
		}
		pends = append(pends, pend)
	}
	gen, err := c.GenerateVoltage(context.Background(), []int{4, 8, 15}, 4)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := model.NewRandom(model.TinyDecoder(), 1)
	if err != nil {
		t.Fatal(err)
	}
	wantTokens, err := ref.GenerateIncremental([]int{4, 8, 15}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantTokens {
		if gen.Tokens[i] != wantTokens[i] {
			t.Fatalf("generation diverged at %d: %v vs %v", i, gen.Tokens, wantTokens)
		}
	}
	for i, pend := range pends {
		res, err := pend.Wait(context.Background())
		if err != nil {
			t.Fatalf("infer %d: %v", i, err)
		}
		if !res.Output.Equal(before.Output) {
			t.Fatalf("infer %d output corrupted by interleaved generation", i)
		}
	}
}

// TestSubmitAfterClose verifies shutdown semantics: submission to a closed
// cluster fails fast, and already-returned handles do not hang.
func TestSubmitAfterClose(t *testing.T) {
	c, err := NewMem(model.Tiny(), 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	x := embedTiny(t, c, 4)
	if _, err := c.Infer(context.Background(), StrategyVoltage, x); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := c.Submit(context.Background(), StrategyVoltage, x); err == nil {
		t.Fatal("want error submitting to a closed cluster")
	}
	if _, err := c.Infer(context.Background(), StrategyVoltage, x); err == nil {
		t.Fatal("want error from Infer on a closed cluster")
	}
}

// TestScopedStatsSumToMeshTotals cross-checks the per-request attribution:
// the scoped per-device stats of consecutive requests must sum to the
// mesh's cumulative counters.
func TestScopedStatsSumToMeshTotals(t *testing.T) {
	c := newTiny(t, 2, Options{})
	x := embedTiny(t, c, 8)
	var sum [3]comm.Stats // k+1 devices
	const rounds = 3
	for i := 0; i < rounds; i++ {
		res, err := c.Infer(context.Background(), StrategyVoltage, x)
		if err != nil {
			t.Fatal(err)
		}
		for r := range sum {
			sum[r] = sum[r].Add(res.PerDevice[r])
		}
	}
	// The per-request scopes must account for every byte the mesh moved.
	for r := 0; r < 3; r++ {
		got := c.peers[r].Stats()
		if got != sum[r] {
			t.Fatalf("rank %d: mesh counters %+v, scoped sum %+v", r, got, sum[r])
		}
	}
}

// waitCond polls cond until it holds or the deadline passes.
func waitCond(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", d, what)
}

// TestShutdownDuringFencedAttemptFlushesResidue pins the shutdown-path
// fencing fix: when Close lands while a fenced attempt owns the mesh, the
// dispatcher previously returned without flushing, leaving the aborted
// attempt's undelivered messages queued on the FIFO links (pinning their
// pooled buffers) forever. The fixed path resolves the request and flushes
// the residue before the dispatcher exits.
func TestShutdownDuringFencedAttemptFlushesResidue(t *testing.T) {
	c, err := NewMem(model.Tiny(), 2, Options{
		MaxRetries: 1, // supervised → every attempt is fenced
		// Rank 0's first receive hangs forever: its input from the terminal
		// and its peer's collective sends stay queued as residue. No
		// watchdog, so only Close can resolve the attempt.
		WrapTransport: func(rank int, p comm.Peer) comm.Peer {
			if rank == 0 {
				return &comm.FlakyPeer{Inner: p, StallRecvAfter: 1}
			}
			return p
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	pend, err := c.Submit(context.Background(), StrategyVoltage, embedTiny(t, c, 8))
	if err != nil {
		t.Fatal(err)
	}
	waitCond(t, 2*time.Second, "residue on the links", func() bool { return c.mesh[0].Queued() > 0 })
	// Let the remaining roles reach their blocking points so no send races
	// the flush below.
	time.Sleep(50 * time.Millisecond)
	c.Close()
	if _, err := pend.Wait(context.Background()); err == nil {
		t.Fatal("request must fail when shutdown aborts its attempt")
	}
	waitCond(t, 2*time.Second, "residue flushed at shutdown", func() bool { return c.mesh[0].Queued() == 0 })
}

// TestWaitContextCancelLeavesRequestRunning pins the Wait contract: the
// context passed to Wait bounds the wait, not the request. A Wait that
// returns ctx.Err() leaves the request in flight, and a second Wait with a
// fresh context observes its completed result.
func TestWaitContextCancelLeavesRequestRunning(t *testing.T) {
	// Per-message latency keeps the request in flight long enough that the
	// pre-cancelled Wait below deterministically races nothing.
	c := newTiny(t, 2, Options{Profile: netem.Profile{Latency: 20 * time.Millisecond}})
	pend, err := c.Submit(context.Background(), StrategyVoltage, embedTiny(t, c, 8))
	if err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pend.Wait(cancelled); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait with dead context = %v, want context.Canceled", err)
	}
	res, err := pend.Wait(context.Background())
	if err != nil {
		t.Fatalf("second Wait after an abandoned first: %v", err)
	}
	if res.Output == nil || res.ID != pend.ID() {
		t.Fatalf("second Wait result %+v, want the completed request %d", res, pend.ID())
	}
}
