package cluster

import (
	"context"
	"fmt"
	"time"

	"voltage/internal/comm"
	"voltage/internal/model"
	"voltage/internal/tensor"
	"voltage/internal/trace"
)

// Distributed KV-cached generation: the prompt prefill runs under
// Algorithm 2 (position-wise partitions + All-Gather), during which every
// worker also builds a full K/V cache for every layer — it already holds
// each layer's complete input, so the cache costs no extra communication.
// Each decode step then moves only token ids to the workers and one
// F-vector per sequence back: communication per generated token drops from
// L·(K−1)·N·F/K floats to F floats.
//
// Decode-step math is replicated on every worker (it is O(N·F) per layer —
// negligible next to prefill) so the cache stays consistent everywhere and
// any worker could serve the output.
//
// Generation is continuously batched (batch.go): concurrent sequences fuse
// their decode steps into one matmul per layer per step, joining and
// leaving the shared batch between steps. A lone request runs as the
// degenerate batch of one, bit-identical to the old serial protocol.

// GenerateResult reports a distributed generation run.
type GenerateResult struct {
	// Tokens is the prompt plus the generated continuation.
	Tokens []int
	// PrefillLatency is the terminal-observed prompt processing time.
	PrefillLatency time.Duration
	// DecodeLatency is the terminal-observed total decoding time. Under
	// continuous batching it spans the sequence's residency in the shared
	// batch, fused steps included.
	DecodeLatency time.Duration
	// BatchWait is how long the request waited before joining the decode
	// batch (queue-vs-fuse attribution; also a PhaseBatchWait trace span).
	BatchWait time.Duration
	// PerDevice holds each device's traffic while this sequence was
	// resident (workers first, terminal last). Fused steps move traffic on
	// behalf of every co-batched sequence, so overlapping requests share
	// these bytes.
	PerDevice []comm.Stats
	// Attempts counts how many times this sequence was dispatched into a
	// batch round (1 = never interrupted). A mid-batch device failure parks
	// the sequence and re-prefills it on the survivors, costing one attempt
	// from the Options.MaxRetries budget.
	Attempts int
	// Degraded reports that the sequence was resident on fewer than K
	// workers at some point — it rode out a fault on a re-sliced partition
	// or on the terminal's local fallback. Outputs are still exact.
	Degraded bool
	// Trace holds the request's span trace when Options.TraceRequests is
	// set (nil otherwise).
	Trace *trace.RequestTrace
}

// GenerateVoltage decodes steps tokens greedily: distributed prefill
// (Voltage, Algorithm 2) followed by KV-cached decode steps. The model
// must be a decoder.
func (c *Cluster) GenerateVoltage(ctx context.Context, prompt []int, steps int) (*GenerateResult, error) {
	return c.GenerateVoltageStream(ctx, prompt, steps, nil)
}

// GenerateVoltageStream is GenerateVoltage with incremental delivery:
// onToken (when non-nil) is called with each generated token id as soon as
// it is decoded, before the next decode step is issued — the serving
// gateway streams these straight to the client. The callback runs on the
// serving runtime's collector goroutine while the batch owns the mesh, so
// it must not block indefinitely; a canceled request stops calling it.
//
// The sequence executes inside the shared continuous batch: it joins at
// the next step boundary (immediately when the mesh is idle), fuses its
// decode steps with whatever else is live, and leaves when done. Outputs
// are bit-identical to a solo run regardless of co-batched traffic.
func (c *Cluster) GenerateVoltageStream(ctx context.Context, prompt []int, steps int, onToken func(tok int)) (*GenerateResult, error) {
	if c.cfg.Kind != model.KindDecoder {
		return nil, fmt.Errorf("cluster: %s is not a decoder", c.cfg.Name)
	}
	if len(prompt) == 0 {
		return nil, fmt.Errorf("cluster: empty prompt")
	}
	if steps < 0 {
		return nil, fmt.Errorf("cluster: negative steps %d", steps)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	seq := &batchSeq{
		ctx:     ctx,
		prompt:  append([]int(nil), prompt...),
		steps:   steps,
		onToken: onToken,
		enq:     time.Now(),
		res:     &GenerateResult{},
		done:    make(chan struct{}),
	}
	if c.opts.TraceRequests {
		seq.trace = trace.NewRequestTrace()
		seq.res.Trace = seq.trace
	}
	if err := c.batcher.add(seq); err != nil {
		return nil, err
	}
	select {
	case <-seq.done:
	case <-c.serveCtx.Done():
		select {
		case <-seq.done: // resolution raced the shutdown; prefer it
		default:
			return nil, errServingStopped
		}
	case <-ctx.Done():
		// The sequence leaves the batch at its next step boundary; the
		// caller need not wait for that housekeeping.
		return nil, ctx.Err()
	}
	if seq.err != nil {
		// The batcher commits the sequence's accumulated accounting
		// (tokens so far, attempts, degradation, batch wait, decode time)
		// into res before resolving it, so a failed stream still reports
		// what it measured — callers get the partial result alongside the
		// error. The cancel/shutdown paths above return nil instead: there
		// the batcher may still be writing the result concurrently.
		return seq.res, seq.err
	}
	return seq.res, nil
}

// prefillWorker runs the worker side of one sequence's prefill: Algorithm 2
// with cache building. The worker caches every layer's K/V from the layer
// input it holds after each All-Gather. (Activations are not recycled here:
// the prefill state outlives the layer loop.) The partition and gather
// group come from the request, so a degraded batch round — re-sliced over
// the survivors after a device failure — prefills over exactly its live
// ranks.
func (c *Cluster) prefillWorker(ctx context.Context, p comm.Peer, ex *comm.Exchange, rank int, req *request) (*model.DecodeState, error) {
	term := c.terminalRank()
	m := c.models[rank]
	me := req.liveIndex(c, rank)
	blob, err := p.Recv(ctx, term)
	if err != nil {
		return nil, err
	}
	x, _, err := tensor.Decode(blob)
	if err != nil {
		return nil, err
	}
	comm.ReleaseBuffer(blob)
	ranges, err := req.partitionScheme(c).Ranges(x.Rows())
	if err != nil {
		return nil, err
	}
	group, err := c.workerGroup(p, req.liveRanks(c))
	if err != nil {
		return nil, err
	}
	state := &model.DecodeState{Layers: make([]*model.LayerState, len(m.Layers)), Pos: x.Rows()}
	for li, layer := range m.Layers {
		start := time.Now()
		ls, err := layer.PrefillState(x)
		if err != nil {
			return nil, fmt.Errorf("layer %d prefill: %w", li, err)
		}
		state.Layers[li] = ls
		part, _, err := layer.ForwardPartition(x, ranges[me])
		if err != nil {
			return nil, fmt.Errorf("layer %d: %w", li, err)
		}
		if pl := ranges[me].Len(); pl > 0 {
			cost, err := layer.Cost(x.Rows(), pl)
			if err != nil {
				return nil, err
			}
			// Cache building adds the K/V projections over the full
			// sequence: 2·N·F·FH per head.
			cost += 2 * int64(x.Rows()) * int64(layer.F()) * int64(layer.Attn.FH()) * int64(layer.Attn.H())
			if err := c.paceRank(ctx, rank, start, cost); err != nil {
				return nil, err
			}
		}
		c.recordPhase(req, rank, li, trace.PhaseCompute, time.Since(start))
		if li == len(m.Layers)-1 {
			if err := p.Send(ctx, term, ex.Encode(part)); err != nil {
				return nil, err
			}
			break
		}
		commStart := time.Now()
		x, err = comm.AllGatherMatrix(ctx, group, part, ranges, c.opts.RingAllGather)
		if err != nil {
			return nil, fmt.Errorf("layer %d allgather: %w", li, err)
		}
		c.recordPhase(req, rank, li, trace.PhaseComm, time.Since(commStart))
	}
	return state, nil
}

// decodeStepCost is the analytic Γ of one fused KV-cached decode step over
// the whole stack, summed across the batched sequences' cache lengths ts
// (each t is a sequence's position after its token was appended): per layer
// and sequence, H heads at 3·F·FH + 2·t·FH each, the WO projection, the FFN
// and the layer norms. Fusing the batch does not change the MAC count —
// every projection row is one sequence's — so the fused step's Γ is exactly
// the sum of the solo steps it replaces, and the scheduler's per-sequence
// shed-before-service estimate stays the solo Γ rather than B times it.
func decodeStepCost(m *model.Model, ts ...int) int64 {
	cfg := m.Cfg
	f, fh, h, dff := int64(cfg.F), int64(cfg.FH()), int64(cfg.Heads), int64(cfg.FFN)
	var total int64
	for _, t := range ts {
		perLayer := h*(3*f*fh+2*int64(t)*fh) + f*f + 2*f*dff + 4*f
		total += perLayer * int64(cfg.Layers)
	}
	return total
}
