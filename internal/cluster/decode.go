package cluster

import (
	"context"
	"encoding/binary"
	"fmt"
	"time"

	"voltage/internal/comm"
	"voltage/internal/model"
	"voltage/internal/tensor"
)

// Distributed KV-cached generation: the prompt prefill runs under
// Algorithm 2 (position-wise partitions + All-Gather), during which every
// worker also builds a full K/V cache for every layer — it already holds
// each layer's complete input, so the cache costs no extra communication.
// Each decode step then moves only a 4-byte token id to the workers and
// one F-vector back: communication per generated token drops from
// L·(K−1)·N·F/K floats to F floats.
//
// Decode-step math is replicated on every worker (it is O(N·F) per layer —
// negligible next to prefill) so the cache stays consistent everywhere and
// any worker could serve the output.

// GenerateResult reports a distributed generation run.
type GenerateResult struct {
	// Tokens is the prompt plus the generated continuation.
	Tokens []int
	// PrefillLatency is the terminal-observed prompt processing time.
	PrefillLatency time.Duration
	// DecodeLatency is the terminal-observed total decoding time.
	DecodeLatency time.Duration
	// PerDevice holds each device's traffic for the whole run (workers
	// first, terminal last).
	PerDevice []comm.Stats
}

// decodeFrame encodes a decode-step token id.
func decodeFrame(id int) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(id))
	return b[:]
}

// GenerateVoltage decodes steps tokens greedily: distributed prefill
// (Voltage, Algorithm 2) followed by KV-cached decode steps. The model
// must be a decoder.
//
// Generation's terminal protocol interleaves sends and receives, so the
// serving runtime treats it as exclusive: it is sequenced with other
// requests but nothing overlaps it.
func (c *Cluster) GenerateVoltage(ctx context.Context, prompt []int, steps int) (*GenerateResult, error) {
	return c.GenerateVoltageStream(ctx, prompt, steps, nil)
}

// GenerateVoltageStream is GenerateVoltage with incremental delivery:
// onToken (when non-nil) is called with each generated token id as soon as
// it is decoded, before the next decode step is issued — the serving
// gateway streams these straight to the client. The callback runs on the
// serving runtime's collector goroutine while the request fences the
// queue, so it must not block indefinitely; a canceled request stops
// calling it.
func (c *Cluster) GenerateVoltageStream(ctx context.Context, prompt []int, steps int, onToken func(tok int)) (*GenerateResult, error) {
	if c.cfg.Kind != model.KindDecoder {
		return nil, fmt.Errorf("cluster: %s is not a decoder", c.cfg.Name)
	}
	if len(prompt) == 0 {
		return nil, fmt.Errorf("cluster: empty prompt")
	}
	if steps < 0 {
		return nil, fmt.Errorf("cluster: negative steps %d", steps)
	}
	req := &request{
		runner:  generateRunner{},
		prompt:  prompt,
		steps:   steps,
		onToken: onToken,
		genRes:  &GenerateResult{},
	}
	pend, err := c.submit(ctx, req)
	if err != nil {
		return nil, err
	}
	if err := pend.wait(ctx); err != nil {
		return nil, err
	}
	res := req.genRes
	res.PerDevice = append([]comm.Stats(nil), req.perDevice...)
	return res, nil
}

// generateRunner is the KV-cached generation protocol.
type generateRunner struct{}

func (generateRunner) name() string    { return "generate" }
func (generateRunner) exclusive() bool { return true }

// admit is unused: exclusive runners run their whole terminal side in
// collect.
func (generateRunner) admit(ctx context.Context, c *Cluster, p comm.Peer, ex *comm.Exchange, req *request) error {
	return nil
}

func (generateRunner) collect(ctx context.Context, c *Cluster, p comm.Peer, ex *comm.Exchange, req *request) error {
	return c.decodeTerminal(ctx, p, ex, req.prompt, req.steps, req.onToken, req.genRes)
}

func (generateRunner) worker(ctx context.Context, c *Cluster, p comm.Peer, ex *comm.Exchange, rank int, req *request) error {
	return c.decodeWorker(ctx, p, ex, rank)
}

// decodeTerminal drives the generation from the terminal device.
func (c *Cluster) decodeTerminal(ctx context.Context, p comm.Peer, ex *comm.Exchange, prompt []int, steps int, onToken func(int), res *GenerateResult) error {
	m := c.models[0] // pre/post-processing replica
	x, err := m.Embed.EmbedTokens(prompt)
	if err != nil {
		return err
	}
	shutdown := func() {
		for r := 0; r < c.k; r++ {
			_ = p.Send(ctx, r, []byte{})
		}
	}

	// Prefill: broadcast the embedded prompt, collect final partitions.
	start := time.Now()
	blob := ex.Encode(x)
	for r := 0; r < c.k; r++ {
		if err := p.Send(ctx, r, blob); err != nil {
			shutdown()
			return err
		}
	}
	out, err := c.collectPartitions(ctx, p, ex, c.allRanks(), x.Rows())
	if err != nil {
		shutdown()
		return err
	}
	res.PrefillLatency = time.Since(start)

	tokens := make([]int, len(prompt), len(prompt)+steps)
	copy(tokens, prompt)
	last, err := out.RowSlice(out.Rows()-1, out.Rows())
	if err != nil {
		shutdown()
		return err
	}

	// Decode loop.
	start = time.Now()
	for i := 0; i < steps; i++ {
		if len(tokens) >= c.cfg.MaxSeq {
			break
		}
		logits, err := m.LM.NextTokenLogits(last)
		if err != nil {
			shutdown()
			return err
		}
		next := model.Argmax(logits)
		tokens = append(tokens, next)
		if onToken != nil {
			onToken(next)
		}
		if i == steps-1 || len(tokens) >= c.cfg.MaxSeq {
			break
		}
		frame := decodeFrame(next)
		for r := 0; r < c.k; r++ {
			if err := p.Send(ctx, r, frame); err != nil {
				shutdown()
				return err
			}
		}
		got, err := p.Recv(ctx, 0) // worker 0 reports the new hidden row
		if err != nil {
			shutdown()
			return err
		}
		last, _, err = tensor.Decode(got)
		if err != nil {
			shutdown()
			return err
		}
		comm.ReleaseBuffer(got)
	}
	res.DecodeLatency = time.Since(start)
	res.Tokens = tokens
	shutdown()
	return nil
}

// decodeWorker serves the prefill plus decode steps on one device.
func (c *Cluster) decodeWorker(ctx context.Context, p comm.Peer, ex *comm.Exchange, rank int) error {
	term := c.terminalRank()
	m := c.models[rank]

	// Prefill: Algorithm 2 with cache building. The worker caches every
	// layer's K/V from the layer input it holds after each All-Gather.
	// (Activations are not recycled here: the prefill state may outlive the
	// layer loop.)
	blob, err := p.Recv(ctx, term)
	if err != nil {
		return err
	}
	x, _, err := tensor.Decode(blob)
	if err != nil {
		return err
	}
	comm.ReleaseBuffer(blob)
	ranges, err := c.scheme.Ranges(x.Rows())
	if err != nil {
		return err
	}
	group, err := c.workerGroup(p, c.allRanks())
	if err != nil {
		return err
	}
	state := &model.DecodeState{Layers: make([]*model.LayerState, len(m.Layers)), Pos: x.Rows()}
	for li, layer := range m.Layers {
		start := time.Now()
		ls, err := layer.PrefillState(x)
		if err != nil {
			return fmt.Errorf("layer %d prefill: %w", li, err)
		}
		state.Layers[li] = ls
		part, _, err := layer.ForwardPartition(x, ranges[rank])
		if err != nil {
			return fmt.Errorf("layer %d: %w", li, err)
		}
		if pl := ranges[rank].Len(); pl > 0 {
			cost, err := layer.Cost(x.Rows(), pl)
			if err != nil {
				return err
			}
			// Cache building adds the K/V projections over the full
			// sequence: 2·N·F·FH per head.
			cost += 2 * int64(x.Rows()) * int64(layer.F()) * int64(layer.Attn.FH()) * int64(layer.Attn.H())
			if err := c.paceRank(ctx, rank, start, cost); err != nil {
				return err
			}
		}
		if li == len(m.Layers)-1 {
			if err := p.Send(ctx, term, ex.Encode(part)); err != nil {
				return err
			}
			break
		}
		x, err = comm.AllGatherMatrix(ctx, group, part, ranges, c.opts.RingAllGather)
		if err != nil {
			return fmt.Errorf("layer %d allgather: %w", li, err)
		}
	}

	// Decode loop: token frames until the zero-length shutdown frame.
	for {
		frame, err := p.Recv(ctx, term)
		if err != nil {
			return err
		}
		if len(frame) == 0 {
			return nil
		}
		if len(frame) != 4 {
			return fmt.Errorf("cluster: bad decode frame of %d bytes", len(frame))
		}
		id := int(binary.LittleEndian.Uint32(frame))
		comm.ReleaseBuffer(frame)
		start := time.Now()
		row, err := m.DecodeStep(state, id)
		if err != nil {
			return err
		}
		if err := c.paceRank(ctx, rank, start, decodeStepCost(m, state.Pos)); err != nil {
			return err
		}
		if rank == 0 {
			if err := p.Send(ctx, term, ex.Encode(row)); err != nil {
				return err
			}
		}
	}
}

// decodeStepCost is the analytic Γ of one KV-cached decode step over the
// whole stack at cache length t: per layer, H heads at 3·F·FH + 2·t·FH
// each, the WO projection, the FFN and the layer norms.
func decodeStepCost(m *model.Model, t int) int64 {
	cfg := m.Cfg
	f, fh, h, dff := int64(cfg.F), int64(cfg.FH()), int64(cfg.Heads), int64(cfg.FFN)
	perLayer := h*(3*f*fh+2*int64(t)*fh) + f*f + 2*f*dff + 4*f
	return perLayer * int64(cfg.Layers)
}
