package cluster

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"voltage/internal/comm"
	"voltage/internal/model"
)

// soloReference decodes each prompt on a single-device replica — the
// bit-exactness oracle for every batched run.
func soloReference(t *testing.T, prompts [][]int, steps int) [][]int {
	t.Helper()
	ref, err := model.NewRandom(model.TinyDecoder(), 1)
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]int, len(prompts))
	for i, p := range prompts {
		w, err := ref.GenerateIncremental(p, steps)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = w
	}
	return want
}

func equalTokens(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// batchPrompts is a membership-diverse workload: different lengths, so the
// fused sequences sit at different cache positions.
var batchPrompts = [][]int{
	{4, 8, 15},
	{16, 23},
	{42, 4, 8, 15, 16},
	{23, 42, 4, 8},
}

func TestBatchedGenerateConcurrentMatchesSolo(t *testing.T) {
	c := newTinyDecoder(t, 3, Options{MaxBatch: 4, BatchWindow: 30 * time.Millisecond})
	defer c.Close()
	const steps = 6
	want := soloReference(t, batchPrompts, steps)

	results := make([]*GenerateResult, len(batchPrompts))
	errs := make([]error, len(batchPrompts))
	var wg sync.WaitGroup
	for i, p := range batchPrompts {
		wg.Add(1)
		go func(i int, p []int) {
			defer wg.Done()
			results[i], errs[i] = c.GenerateVoltage(context.Background(), p, steps)
		}(i, p)
	}
	wg.Wait()
	for i := range batchPrompts {
		if errs[i] != nil {
			t.Fatalf("stream %d: %v", i, errs[i])
		}
		if !equalTokens(results[i].Tokens, want[i]) {
			t.Errorf("stream %d: batched tokens %v != solo %v", i, results[i].Tokens, want[i])
		}
		if results[i].PrefillLatency <= 0 || results[i].DecodeLatency <= 0 {
			t.Errorf("stream %d: latencies %v/%v", i, results[i].PrefillLatency, results[i].DecodeLatency)
		}
		if len(results[i].PerDevice) != c.K()+1 {
			t.Errorf("stream %d: %d per-device stats, want %d", i, len(results[i].PerDevice), c.K()+1)
		}
	}

	snap := c.Metrics()
	if got := snap.Counter("voltage_batch_joins_total"); got != float64(len(batchPrompts)) {
		t.Errorf("batch joins = %v, want %d", got, len(batchPrompts))
	}
	if got := snap.Counter("voltage_batch_leaves_total"); got != float64(len(batchPrompts)) {
		t.Errorf("batch leaves = %v, want %d", got, len(batchPrompts))
	}
	h, ok := snap.Histograms["voltage_batch_size"]
	if !ok || h.Count == 0 {
		t.Fatalf("batch size histogram = %+v ok=%v, want observations", h, ok)
	}
	// The window coalesced 4 concurrent streams: the mean fused width must
	// exceed one, or the "batch" degenerated to serial.
	if h.Sum <= float64(h.Count) {
		t.Errorf("mean batch width = %v over %d steps, want > 1", h.Sum/float64(h.Count), h.Count)
	}
	if got := snap.Counter("voltage_fused_steps_total"); got != float64(h.Count) {
		t.Errorf("fused steps = %v, batch size count = %d", got, h.Count)
	}
	if wh, ok := snap.Histograms["voltage_batch_wait_seconds"]; !ok || wh.Count != uint64(len(batchPrompts)) {
		t.Errorf("batch wait histogram = %+v ok=%v, want %d observations", wh, ok, len(batchPrompts))
	}
	if w := c.BatchWidth(); w != 0 {
		t.Errorf("idle BatchWidth = %d, want 0", w)
	}
}

func TestBatchedGenerateDegenerateBatchOfOne(t *testing.T) {
	// A lone request is the degenerate batch of one: tokens, latencies and
	// traffic accounting must match the solo oracle with no co-batching.
	c := newTinyDecoder(t, 3, Options{MaxBatch: 1})
	defer c.Close()
	want := soloReference(t, batchPrompts[:1], 6)
	res, err := c.GenerateVoltage(context.Background(), batchPrompts[0], 6)
	if err != nil {
		t.Fatal(err)
	}
	if !equalTokens(res.Tokens, want[0]) {
		t.Fatalf("tokens %v != solo %v", res.Tokens, want[0])
	}
	snap := c.Metrics()
	if h := snap.Histograms["voltage_batch_size"]; h.Sum != float64(h.Count) {
		t.Errorf("serial run fused width sum %v over %d steps, want all ones", h.Sum, h.Count)
	}
}

func TestBatchedGenerateChurnCancelMidBatch(t *testing.T) {
	// A sequence canceled mid-batch leaves at the next step boundary
	// without perturbing the other sequences' tokens.
	c := newTinyDecoder(t, 3, Options{MaxBatch: 4, BatchWindow: 30 * time.Millisecond})
	defer c.Close()
	const steps = 8
	want := soloReference(t, batchPrompts, steps)

	const victim = 1
	results := make([]*GenerateResult, len(batchPrompts))
	errs := make([]error, len(batchPrompts))
	var wg sync.WaitGroup
	for i, p := range batchPrompts {
		wg.Add(1)
		go func(i int, p []int) {
			defer wg.Done()
			if i != victim {
				results[i], errs[i] = c.GenerateVoltage(context.Background(), p, steps)
				return
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			got := 0
			results[i], errs[i] = c.GenerateVoltageStream(ctx, p, steps, func(int) {
				got++
				if got == 2 {
					cancel() // abandon mid-decode, after two streamed tokens
				}
			})
		}(i, p)
	}
	wg.Wait()
	if !errors.Is(errs[victim], context.Canceled) {
		t.Fatalf("victim error = %v, want context.Canceled", errs[victim])
	}
	for i := range batchPrompts {
		if i == victim {
			continue
		}
		if errs[i] != nil {
			t.Fatalf("survivor %d: %v", i, errs[i])
		}
		if !equalTokens(results[i].Tokens, want[i]) {
			t.Errorf("survivor %d: tokens %v != solo %v after churn", i, results[i].Tokens, want[i])
		}
	}
	snap := c.Metrics()
	if got := snap.Counter("voltage_batch_leaves_total"); got < float64(len(batchPrompts)) {
		t.Errorf("batch leaves = %v, want at least %d (canceled sequence must leave)", got, len(batchPrompts))
	}
}

func TestBatchedGenerateChaosDelayedPeerStaysExact(t *testing.T) {
	// A flaky-delay peer slows fused steps but must not perturb a single
	// token: membership and exactness hold under chaos.
	c := newTinyDecoder(t, 3, Options{
		MaxBatch:    4,
		BatchWindow: 30 * time.Millisecond,
		WrapTransport: wrapRank(1, func(p comm.Peer) comm.Peer {
			return &comm.FlakyPeer{Inner: p, DelayEvery: 3, Delay: 2 * time.Millisecond}
		}),
	})
	defer c.Close()
	const steps = 5
	want := soloReference(t, batchPrompts, steps)
	results := make([]*GenerateResult, len(batchPrompts))
	errs := make([]error, len(batchPrompts))
	var wg sync.WaitGroup
	for i, p := range batchPrompts {
		wg.Add(1)
		go func(i int, p []int) {
			defer wg.Done()
			results[i], errs[i] = c.GenerateVoltage(context.Background(), p, steps)
		}(i, p)
	}
	wg.Wait()
	for i := range batchPrompts {
		if errs[i] != nil {
			t.Fatalf("stream %d under delay chaos: %v", i, errs[i])
		}
		if !equalTokens(results[i].Tokens, want[i]) {
			t.Errorf("stream %d: tokens diverged under delay chaos", i)
		}
	}
}

func TestBatchedGenerateSequentialAfterDrain(t *testing.T) {
	// The batch retires when it drains; a later request must start a fresh
	// one. Back-to-back solo requests through the same cluster exercise the
	// batcher's run/retire cycle.
	c := newTinyDecoder(t, 2, Options{})
	defer c.Close()
	want := soloReference(t, batchPrompts[:2], 4)
	for round := 0; round < 2; round++ {
		for i, p := range batchPrompts[:2] {
			res, err := c.GenerateVoltage(context.Background(), p, 4)
			if err != nil {
				t.Fatalf("round %d stream %d: %v", round, i, err)
			}
			if !equalTokens(res.Tokens, want[i]) {
				t.Errorf("round %d stream %d: tokens diverged", round, i)
			}
		}
	}
}
