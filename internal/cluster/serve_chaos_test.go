package cluster

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"voltage/internal/comm"
	"voltage/internal/model"
	"voltage/internal/tensor"
)

// Chaos suite: fault-injected serving. Every test here runs requests over a
// mesh with a deliberately broken transport (drops, corruption, stalls,
// dead devices) and asserts the three fault-tolerance guarantees: every
// request resolves (no hangs), failures carry typed causes
// (comm.ErrTimeout / comm.ErrCorrupt / comm.ErrInjected), and degraded
// retries produce outputs bit-identical to a healthy cluster of the
// surviving size. scripts/ci.sh runs this file under -race -count=2.
//
// Communication-volume assertions are deliberately absent: injected drops
// remove whole messages and retries move extra traffic, so the paper's
// formulas do not hold on a flaky mesh (see comm.FlakyPeer).

// wrapRank returns a WrapTransport hook applying wrap to one rank only.
func wrapRank(target int, wrap func(p comm.Peer) comm.Peer) func(int, comm.Peer) comm.Peer {
	return func(rank int, p comm.Peer) comm.Peer {
		if rank == target {
			return wrap(p)
		}
		return p
	}
}

func containsRank(live []int, rank int) bool {
	for _, r := range live {
		if r == rank {
			return true
		}
	}
	return false
}

// healthyReference computes the expected output of x on a fault-free
// cluster of k workers (identical seed, so identical model replicas). The
// reference cluster is torn down before returning so it never skews the
// chaos tests' goroutine-baseline checks.
func healthyReference(t *testing.T, k, n int) *tensor.Matrix {
	t.Helper()
	c, err := NewMem(model.Tiny(), k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Infer(context.Background(), StrategyVoltage, embedTiny(t, c, n))
	if err != nil {
		t.Fatalf("healthy reference (k=%d): %v", k, err)
	}
	return res.Output
}

func TestKilledWorkerDegradesToSurvivorsBitIdentical(t *testing.T) {
	// Kill worker 2 (every send fails) on a 3-worker cluster: the request
	// must complete transparently on the two survivors, the Result must
	// report the retry and degradation, and the output must match a healthy
	// 2-worker cluster bit for bit.
	const n = 9
	c := newTiny(t, 3, Options{
		MaxRetries:    2,
		WrapTransport: wrapRank(2, func(p comm.Peer) comm.Peer { return &comm.FlakyPeer{Inner: p, FailSendAfter: 1} }),
	})
	res, err := c.Infer(context.Background(), StrategyVoltage, embedTiny(t, c, n))
	if err != nil {
		t.Fatalf("killed worker should degrade, not fail: %v", err)
	}
	if res.Attempts != 2 {
		t.Errorf("attempts = %d, want 2 (one failure, one degraded success)", res.Attempts)
	}
	if !res.Degraded {
		t.Error("result not marked degraded")
	}
	if len(res.Live) != 2 || containsRank(res.Live, 2) {
		t.Errorf("live = %v, want the survivors [0 1]", res.Live)
	}
	if want := healthyReference(t, 2, n); !res.Output.Equal(want) {
		t.Error("degraded output differs from a healthy 2-worker cluster")
	}

	// Health: rank 2 excluded with a typed cause; survivors healthy.
	health := c.Health()
	if health[2].State != Unhealthy || health[2].Failures < 1 {
		t.Errorf("rank 2 health = %+v, want unhealthy with a recorded failure", health[2])
	}
	if !errors.Is(health[2].LastErr, comm.ErrInjected) {
		t.Errorf("rank 2 blamed cause = %v, want ErrInjected", health[2].LastErr)
	}
	for _, r := range []int{0, 1} {
		if health[r].State != Healthy {
			t.Errorf("rank %d health = %v, want healthy", r, health[r].State)
		}
	}

	// Later requests skip the dead rank from the start: no extra attempts.
	res2, err := c.Infer(context.Background(), StrategyVoltage, embedTiny(t, c, n))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Attempts != 1 || !res2.Degraded || containsRank(res2.Live, 2) {
		t.Errorf("follow-up request: attempts=%d degraded=%v live=%v, want a clean first-try run on the survivors",
			res2.Attempts, res2.Degraded, res2.Live)
	}
}

func TestDroppedMessageResolvesAsErrTimeout(t *testing.T) {
	// A lossy link with no transport recovery (every send from rank 0
	// silently vanishes) must resolve the request as a typed ErrTimeout
	// within Options.RequestTimeout — never a hang.
	c := newTiny(t, 2, Options{
		RequestTimeout: 400 * time.Millisecond,
		WrapTransport:  wrapRank(0, func(p comm.Peer) comm.Peer { return &comm.FlakyPeer{Inner: p, DropEvery: 1} }),
	})
	start := time.Now()
	_, err := c.Infer(context.Background(), StrategyVoltage, embedTiny(t, c, 8))
	if !errors.Is(err, comm.ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("deadline took %v to resolve the drop", elapsed)
	}
}

func TestCorruptedFrameResolvesAsErrCorrupt(t *testing.T) {
	// A corrupted payload must be caught by the frame checksum and
	// attributed to its sender — never decoded into wrong results.
	c := newTiny(t, 2, Options{
		WrapTransport: wrapRank(0, func(p comm.Peer) comm.Peer { return &comm.FlakyPeer{Inner: p, CorruptEvery: 1} }),
	})
	_, err := c.Infer(context.Background(), StrategyVoltage, embedTiny(t, c, 8))
	if !errors.Is(err, comm.ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
	if r, ok := comm.RemoteRank(err); !ok || r != 0 {
		t.Fatalf("corruption should blame rank 0, got (%d, %v)", r, ok)
	}
}

func TestStalledWorkerTimesOutAndDegrades(t *testing.T) {
	// A hung device (receives block forever) is caught by the per-op
	// watchdog, blamed by majority vote, and excluded; the request
	// completes on whatever survives, matching a healthy cluster of that
	// size.
	const n = 9
	c := newTiny(t, 3, Options{
		OpTimeout:      150 * time.Millisecond,
		RequestTimeout: 5 * time.Second,
		MaxRetries:     2,
		WrapTransport:  wrapRank(1, func(p comm.Peer) comm.Peer { return &comm.FlakyPeer{Inner: p, StallRecvAfter: 1} }),
	})
	res, err := c.Infer(context.Background(), StrategyVoltage, embedTiny(t, c, n))
	if err != nil {
		t.Fatalf("stalled worker should degrade, not fail: %v", err)
	}
	if !res.Degraded || res.Attempts < 2 {
		t.Errorf("attempts=%d degraded=%v, want a degraded retry", res.Attempts, res.Degraded)
	}
	if containsRank(res.Live, 1) || len(res.Live) == 0 {
		t.Fatalf("live = %v, want survivors excluding the stalled rank 1", res.Live)
	}
	if want := healthyReference(t, len(res.Live), n); !res.Output.Equal(want) {
		t.Errorf("degraded output differs from a healthy %d-worker cluster", len(res.Live))
	}
	if h := c.Health()[1]; h.State != Unhealthy {
		t.Errorf("stalled rank health = %v, want unhealthy", h.State)
	}
}

func TestAllWorkersDeadFallsBackToTerminal(t *testing.T) {
	// With every worker dead the terminal serves the request alone from its
	// own replica: degraded, zero live workers, correct output.
	c := newTiny(t, 1, Options{
		MaxRetries:    2,
		WrapTransport: wrapRank(0, func(p comm.Peer) comm.Peer { return &comm.FlakyPeer{Inner: p, FailSendAfter: 1} }),
	})
	x := embedTiny(t, c, 6)
	res, err := c.Infer(context.Background(), StrategyVoltage, x)
	if err != nil {
		t.Fatalf("terminal fallback should serve the request: %v", err)
	}
	if !res.Degraded || len(res.Live) != 0 || res.Live == nil {
		t.Errorf("degraded=%v live=%v, want degraded with an empty (non-nil) live set", res.Degraded, res.Live)
	}
	want, err := c.Model(0).ForwardFeatures(x)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Output.Equal(want) {
		t.Error("terminal-fallback output differs from a local forward pass")
	}
}

// switchablePeer injects send failures that can be turned off at runtime —
// a device that crashes and later comes back.
type switchablePeer struct {
	comm.Peer
	fail atomic.Bool
}

func (s *switchablePeer) Send(ctx context.Context, to int, data []byte) error {
	if s.fail.Load() {
		return comm.ErrInjected
	}
	return s.Peer.Send(ctx, to, data)
}

func TestProbationRecoversHealedWorker(t *testing.T) {
	// A failed rank is excluded, but after the ProbeAfter window it is
	// offered a probing request; if the fault has cleared it recovers to
	// healthy and full-cluster serving resumes.
	sw := &switchablePeer{}
	c := newTiny(t, 2, Options{
		MaxRetries: 2,
		ProbeAfter: 30 * time.Millisecond,
		WrapTransport: wrapRank(1, func(p comm.Peer) comm.Peer {
			sw.Peer = p
			return sw
		}),
	})
	sw.fail.Store(true)
	res, err := c.Infer(context.Background(), StrategyVoltage, embedTiny(t, c, 7))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || containsRank(res.Live, 1) {
		t.Fatalf("first request should degrade past rank 1: degraded=%v live=%v", res.Degraded, res.Live)
	}
	if h := c.Health()[1]; h.State != Unhealthy {
		t.Fatalf("rank 1 health = %v, want unhealthy", h.State)
	}

	sw.fail.Store(false) // the device heals
	time.Sleep(50 * time.Millisecond)

	res2, err := c.Infer(context.Background(), StrategyVoltage, embedTiny(t, c, 7))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Degraded || res2.Attempts != 1 {
		t.Errorf("probing request: attempts=%d degraded=%v, want a clean full-cluster run", res2.Attempts, res2.Degraded)
	}
	if h := c.Health()[1]; h.State != Healthy {
		t.Errorf("healed rank health = %v, want healthy after a probing success", h.State)
	}
}

func TestOverlappingSubmitsUnderChaosAllResolve(t *testing.T) {
	// Many concurrent requests against a cluster whose worker 1 dies after
	// its first few sends: every request must resolve (no hangs, no lost
	// handles), later ones transparently degraded — and after Close the
	// goroutine count must return to its baseline (no leaked supervisors,
	// workers, or stalled collectives).
	baseline := runtime.NumGoroutine()

	c, err := NewMem(model.Tiny(), 3, Options{
		MaxRetries:     3,
		RequestTimeout: 10 * time.Second,
		OpTimeout:      time.Second,
		WrapTransport:  wrapRank(1, func(p comm.Peer) comm.Peer { return &comm.FlakyPeer{Inner: p, FailSendAfter: 3} }),
	})
	if err != nil {
		t.Fatal(err)
	}

	const requests = 8
	pends := make([]*Pending, requests)
	lengths := make([]int, requests)
	for i := range pends {
		lengths[i] = 5 + i
		pend, err := c.Submit(context.Background(), StrategyVoltage, embedTiny(t, c, lengths[i]))
		if err != nil {
			t.Fatal(err)
		}
		pends[i] = pend
	}
	degraded := 0
	for i, pend := range pends {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		res, err := pend.Wait(ctx)
		cancel()
		if err != nil {
			t.Fatalf("request %d did not survive the chaos: %v", i, err)
		}
		if res.Output == nil || res.Output.Rows() != lengths[i] {
			t.Fatalf("request %d: bad output", i)
		}
		if res.Degraded {
			degraded++
			if containsRank(res.Live, 1) {
				t.Fatalf("request %d degraded but still lists the dead rank: %v", i, res.Live)
			}
			if want := healthyReference(t, len(res.Live), lengths[i]); !res.Output.Equal(want) {
				t.Fatalf("request %d: degraded output differs from a healthy %d-worker cluster", i, len(res.Live))
			}
		}
	}
	if degraded == 0 {
		t.Fatal("fault never fired: no request degraded")
	}

	c.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d now vs %d baseline\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestNonRetryableErrorFailsFast(t *testing.T) {
	// Supervision must not retry logic errors: a shape-mismatch style
	// failure (here: caller cancellation) is final even with retries on.
	c := newTiny(t, 2, Options{MaxRetries: 3})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Infer(ctx, StrategyVoltage, embedTiny(t, c, 5)); err == nil {
		t.Fatal("cancelled request should fail")
	}
	for _, h := range c.Health() {
		if h.State != Healthy || h.Failures != 0 {
			t.Fatalf("caller cancellation blamed a device: %+v", h)
		}
	}
}
