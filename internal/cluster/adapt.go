package cluster

import (
	"fmt"
	"time"

	"voltage/internal/partition"
)

// Closed-loop adaptive re-partitioning (see DESIGN.md "Adaptive
// re-partitioning"). The policy lives in internal/adapt; this file is the
// cluster's half of the loop — sensing input (the profile store snapshot)
// and actuation (swapping the serving scheme at safe boundaries).
//
// Safe boundaries, by serve path:
//
//   - exclusive/solo requests: submit() pins the current scheme on the
//     request, so a scheme installed mid-flight only affects requests
//     admitted after it — "between requests";
//   - fused decode: each batch round pins the scheme (and its generation)
//     at plan(); the terminal loop checks the generation at every step
//     boundary and, on a change, parks the live sequences and retires the
//     round. The next round re-plans under the new scheme and re-prefills
//     each sequence's committed prefix — the same park/resume machinery a
//     mid-batch device failure uses, so greedy continuations stay
//     bit-identical across the migration;
//   - degraded rounds never migrate mid-fault: the health path re-plans
//     them anyway, composing survivor re-slices with the installed ratios
//     (degradedScheme).

// defaultAdaptInterval is the controller's evaluation period when
// Options.AdaptInterval is zero.
const defaultAdaptInterval = 50 * time.Millisecond

// currentScheme returns the installed partition scheme.
func (c *Cluster) currentScheme() *partition.Scheme {
	c.schemeMu.RLock()
	defer c.schemeMu.RUnlock()
	return c.scheme
}

// schemeSnapshot returns the installed scheme together with its
// generation, consistently (an install cannot interleave).
func (c *Cluster) schemeSnapshot() (*partition.Scheme, uint64) {
	c.schemeMu.RLock()
	defer c.schemeMu.RUnlock()
	return c.scheme, c.schemeGen
}

// Scheme returns the partition scheme currently serving new work. It
// starts as Options.Scheme and moves when the adaptive controller (or an
// explicit InstallScheme call) re-slices.
func (c *Cluster) Scheme() *partition.Scheme {
	return c.currentScheme()
}

// InstallScheme swaps the serving partition scheme. The swap itself is
// immediate; work already holding a pinned scheme finishes under it, and
// the fused decode batch migrates at its next step boundary. cause labels
// the repartition counter (adapt.CauseStraggler/CauseSkew/CauseManual);
// predictedGain is the controller's promised fractional round-time
// improvement (0 for manual installs).
func (c *Cluster) InstallScheme(s *partition.Scheme, cause string, predictedGain float64) error {
	if s == nil {
		return fmt.Errorf("cluster: nil scheme")
	}
	if s.K() != c.k {
		return fmt.Errorf("cluster: scheme for %d devices, cluster has %d", s.K(), c.k)
	}
	c.schemeMu.Lock()
	old := c.scheme
	c.scheme = s
	c.schemeGen++
	gen := c.schemeGen
	c.schemeMu.Unlock()
	c.metrics.repartition(cause, s.Ratios(), predictedGain)
	c.flight.Eventf("repartition", -1, "scheme generation %d installed (cause %s, predicted gain %.1f%%): %.3f -> %.3f",
		gen, cause, predictedGain*100, old.Ratios(), s.Ratios())
	return nil
}

// adaptLoop drives the re-partitioning controller until the cluster
// closes: every AdaptInterval it snapshots the profile store, lets the
// policy evaluate it against the installed ratios, and installs the
// candidate scheme when the hysteresis guards pass.
func (c *Cluster) adaptLoop() {
	interval := c.opts.AdaptInterval
	if interval <= 0 {
		interval = defaultAdaptInterval
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-c.serveCtx.Done():
			return
		case now := <-tick.C:
			c.adaptTick(now)
		}
	}
}

// adaptTick is one controller evaluation.
func (c *Cluster) adaptTick(now time.Time) {
	dec, err := c.adaptCtl.Evaluate(now, c.obs.Profile(), c.currentScheme().Ratios())
	if err != nil {
		c.flight.Eventf("repartition", -1, "controller evaluation failed: %v", err)
		return
	}
	if out := dec.Realized; out != nil {
		c.metrics.observeRealizedGain(out.RealizedGain)
		c.flight.Eventf("repartition", -1, "move settled: predicted gain %.1f%%, realized %.1f%%",
			out.PredictedGain*100, out.RealizedGain*100)
	}
	if !dec.Install {
		return
	}
	s, err := partition.New(dec.Ratios)
	if err != nil {
		c.flight.Eventf("repartition", -1, "candidate scheme rejected: %v", err)
		return
	}
	if err := c.InstallScheme(s, dec.Cause, dec.PredictedGain); err != nil {
		c.flight.Eventf("repartition", -1, "install failed: %v", err)
	}
}
