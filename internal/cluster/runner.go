package cluster

import (
	"context"
	"fmt"
	"time"

	"voltage/internal/balance"
	"voltage/internal/comm"
	"voltage/internal/tensor"
	"voltage/internal/trace"
)

// strategyRunner is one distribution strategy's execution protocol, split
// along the serving runtime's three roles:
//
//   - admit: the terminal's request-injection side (input broadcast), run
//     by the dispatcher so the next request can enter the mesh while
//     earlier ones are still computing;
//   - collect: the terminal's result side (drain partitions, assemble), run
//     by the collector;
//   - worker: one device's compute loop, run by that rank's persistent
//     worker goroutine.
//
// Runners whose terminal side interleaves sends and receives (KV-cached
// generation, the pipeline baseline) report exclusive() == true: the
// dispatcher runs their whole terminal protocol in the collector and admits
// nothing else until they finish.
//
// All peers handed to a runner are per-request stat scopes; every byte a
// runner moves is attributed to exactly that request.
type strategyRunner interface {
	name() string
	exclusive() bool
	admit(ctx context.Context, c *Cluster, p comm.Peer, ex *comm.Exchange, req *request) error
	collect(ctx context.Context, c *Cluster, p comm.Peer, ex *comm.Exchange, req *request) error
	worker(ctx context.Context, c *Cluster, p comm.Peer, ex *comm.Exchange, rank int, req *request) error
}

// runnerFor resolves a strategy to its runner.
func runnerFor(s Strategy) (strategyRunner, error) {
	switch s {
	case StrategySingle:
		return singleRunner{}, nil
	case StrategyVoltage:
		return voltageRunner{}, nil
	case StrategyTensorParallel:
		return tpRunner{}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown strategy %v", s)
	}
}

// broadcastInput ships the request's input features to the given workers.
func broadcastInput(ctx context.Context, p comm.Peer, ex *comm.Exchange, x *tensor.Matrix, ranks []int) error {
	blob := ex.Encode(x)
	for _, r := range ranks {
		if err := p.Send(ctx, r, blob); err != nil {
			return err
		}
	}
	return nil
}

// recvOutput receives and decodes the final matrix reported by one worker.
func recvOutput(ctx context.Context, p comm.Peer, from int) (*tensor.Matrix, error) {
	got, err := p.Recv(ctx, from)
	if err != nil {
		return nil, err
	}
	out, _, err := tensor.Decode(got)
	if err != nil {
		return nil, err
	}
	comm.ReleaseBuffer(got)
	return out, nil
}

// ---------------------------------------------------------------- single

// singleRunner runs the whole model on worker 0 (the paper's single-device
// baseline).
type singleRunner struct{}

func (singleRunner) name() string    { return "single" }
func (singleRunner) exclusive() bool { return false }

func (singleRunner) admit(ctx context.Context, c *Cluster, p comm.Peer, ex *comm.Exchange, req *request) error {
	return broadcastInput(ctx, p, ex, req.x, []int{0})
}

func (singleRunner) collect(ctx context.Context, c *Cluster, p comm.Peer, ex *comm.Exchange, req *request) error {
	out, err := recvOutput(ctx, p, 0)
	if err != nil {
		return err
	}
	req.output = out
	return nil
}

func (singleRunner) worker(ctx context.Context, c *Cluster, p comm.Peer, ex *comm.Exchange, rank int, req *request) error {
	if rank != 0 {
		return nil // idle
	}
	term := c.terminalRank()
	blob, err := p.Recv(ctx, term)
	if err != nil {
		return err
	}
	pool := ex.Pool()
	cur, _, err := tensor.DecodePooled(pool, blob)
	if err != nil {
		return err
	}
	comm.ReleaseBuffer(blob)
	for li, layer := range c.models[0].Layers {
		start := time.Now()
		out, err := layer.Forward(cur)
		if err != nil {
			return fmt.Errorf("layer %d: %w", li, err)
		}
		cost, err := layer.Cost(cur.Rows(), cur.Rows())
		if err != nil {
			return err
		}
		if err := c.paceRank(ctx, 0, start, cost); err != nil {
			return err
		}
		c.recordPhase(req, 0, li, trace.PhaseCompute, time.Since(start))
		// Forward never retains its input, so the previous activation can
		// back a later layer or request.
		pool.Put(cur)
		cur = out
	}
	if err := p.Send(ctx, term, ex.Encode(cur)); err != nil {
		return err
	}
	pool.Put(cur)
	return nil
}

// --------------------------------------------------------------- voltage

// voltageRunner is the paper's position-wise partitioning with one
// All-Gather per layer (Algorithm 2).
type voltageRunner struct{}

func (voltageRunner) name() string    { return "voltage" }
func (voltageRunner) exclusive() bool { return false }

func (voltageRunner) admit(ctx context.Context, c *Cluster, p comm.Peer, ex *comm.Exchange, req *request) error {
	return broadcastInput(ctx, p, ex, req.x, req.liveRanks(c))
}

func (voltageRunner) collect(ctx context.Context, c *Cluster, p comm.Peer, ex *comm.Exchange, req *request) error {
	// Collect final-layer partitions from every live worker (Algorithm 2,
	// line 8) and assemble by rank order. Assembly is driven by the
	// received row counts rather than the static scheme so dynamic
	// per-layer re-balancing needs no extra coordination.
	out, err := c.collectPartitions(ctx, p, ex, req.liveRanks(c), req.x.Rows())
	if err != nil {
		return err
	}
	req.output = out
	return nil
}

// worker is Algorithm 2, lines 4–15, for one device. Ranks outside the
// request's live set (excluded from a degraded attempt) idle through it.
func (voltageRunner) worker(ctx context.Context, c *Cluster, p comm.Peer, ex *comm.Exchange, rank int, req *request) error {
	me := req.liveIndex(c, rank)
	if me < 0 {
		return nil // idle: this rank is excluded from the degraded attempt
	}
	live := req.liveRanks(c)
	term := c.terminalRank()
	blob, err := p.Recv(ctx, term)
	if err != nil {
		return err
	}
	pool := ex.Pool()
	x, _, err := tensor.DecodePooled(pool, blob)
	if err != nil {
		return err
	}
	comm.ReleaseBuffer(blob)
	ranges, err := req.partitionScheme(c).Ranges(x.Rows())
	if err != nil {
		return err
	}
	group, err := c.workerGroup(p, live)
	if err != nil {
		return err
	}
	var tracker *balance.Tracker
	if c.opts.DynamicScheme {
		if tracker, err = balance.NewTracker(len(live), 0); err != nil {
			return err
		}
	}
	m := c.models[rank]
	for li, layer := range m.Layers {
		start := time.Now()
		part, _, err := layer.ForwardPartition(x, ranges[me])
		if err != nil {
			return fmt.Errorf("layer %d: %w", li, err)
		}
		if pl := ranges[me].Len(); pl > 0 {
			cost, err := layer.Cost(x.Rows(), pl)
			if err != nil {
				return err
			}
			if err := c.paceRank(ctx, rank, start, cost); err != nil {
				return err
			}
		}
		elapsed := time.Since(start)
		c.recordPhase(req, rank, li, trace.PhaseCompute, elapsed)
		if li == len(m.Layers)-1 {
			// Final layer: ship the partition to the terminal.
			if err := p.Send(ctx, term, ex.Encode(part)); err != nil {
				return err
			}
			pool.Put(part)
			pool.Put(x)
			return nil
		}
		commStart := time.Now()
		var next *tensor.Matrix
		if c.opts.QuantizedComm {
			next, err = comm.AllGatherMatrixQ(ctx, group, part, ranges, c.opts.RingAllGather)
		} else {
			next, err = ex.AllGatherMatrix(ctx, group, part, ranges, c.opts.RingAllGather)
		}
		if err != nil {
			return fmt.Errorf("layer %d allgather: %w", li, err)
		}
		c.recordPhase(req, rank, li, trace.PhaseComm, time.Since(commStart))
		// The gather copied the local partition into the assembled matrix
		// and ForwardPartition never retains its input, so both the
		// partition and the previous activation recycle here — the per-layer
		// steady state allocates nothing.
		pool.Put(part)
		pool.Put(x)
		x = next
		if tracker != nil {
			ranges, err = c.rebalance(ctx, group, tracker, ranges[me], elapsed, x.Rows())
			if err != nil {
				return fmt.Errorf("layer %d rebalance: %w", li, err)
			}
		}
	}
	return nil
}

// ------------------------------------------------------- tensor parallel

// tpRunner is the Megatron-style baseline with two All-Reduces per layer.
type tpRunner struct{}

func (tpRunner) name() string    { return "tensor-parallel" }
func (tpRunner) exclusive() bool { return false }

func (tpRunner) admit(ctx context.Context, c *Cluster, p comm.Peer, ex *comm.Exchange, req *request) error {
	return broadcastInput(ctx, p, ex, req.x, c.allRanks())
}

func (tpRunner) collect(ctx context.Context, c *Cluster, p comm.Peer, ex *comm.Exchange, req *request) error {
	// Every worker holds the full output; worker 0 reports it.
	out, err := recvOutput(ctx, p, 0)
	if err != nil {
		return err
	}
	req.output = out
	return nil
}

func (tpRunner) worker(ctx context.Context, c *Cluster, p comm.Peer, ex *comm.Exchange, rank int, req *request) error {
	term := c.terminalRank()
	blob, err := p.Recv(ctx, term)
	if err != nil {
		return err
	}
	cur, _, err := tensor.DecodePooled(ex.Pool(), blob)
	if err != nil {
		return err
	}
	comm.ReleaseBuffer(blob)
	group, err := c.workerGroup(p, c.allRanks())
	if err != nil {
		return err
	}
	for li, shard := range c.shards[rank] {
		shard.Pace = func(ctx context.Context, start time.Time, flops int64) error {
			if err := c.paceRank(ctx, rank, start, flops); err != nil {
				return err
			}
			c.recordPhase(req, rank, li, trace.PhaseCompute, time.Since(start))
			return nil
		}
		shard.OnComm = func(d time.Duration) {
			c.recordPhase(req, rank, li, trace.PhaseComm, d)
		}
		out, err := shard.Forward(ctx, group, cur, !c.opts.NaiveAllReduce)
		if err != nil {
			return fmt.Errorf("layer %d: %w", li, err)
		}
		cur = out
	}
	if rank == 0 {
		return p.Send(ctx, term, ex.Encode(cur))
	}
	return nil
}
