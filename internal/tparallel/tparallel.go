// Package tparallel implements the tensor-parallelism baseline the paper
// compares against (Megatron-LM style, as used by DeepSpeed-Inference and
// Parallelformers):
//
//   - the attention heads are partitioned across devices; each device
//     computes its heads over the FULL sequence and the partial outputs are
//     merged with an All-Reduce;
//   - the feed-forward network's first weight matrix is column-split and
//     the second row-split, requiring a second All-Reduce.
//
// Per device per layer this moves 4(K−1)NF/K bytes with ring All-Reduce —
// 4× Voltage's single All-Gather — which is exactly the communication gap
// the paper's Figs. 4–5 demonstrate.
package tparallel

import (
	"context"
	"fmt"
	"time"

	"voltage/internal/attention"
	"voltage/internal/comm"
	"voltage/internal/flopcount"
	"voltage/internal/model"
	"voltage/internal/tensor"
)

// ShardedLayer is one device's shard of a transformer layer plus the
// replicated (non-sharded) parameters.
type ShardedLayer struct {
	rank, k int

	heads []*attention.HeadWeights // this device's heads (may be empty)
	wo    *tensor.Matrix           // row-slice of WO for those heads
	bo    []float32                // full output bias (added after reduce)

	w1 *tensor.Matrix // column-slice of W1
	b1 []float32      // matching slice of B1
	w2 *tensor.Matrix // row-slice of W2
	b2 []float32      // full second bias (added after reduce)

	ln1Gain, ln1Bias []float32
	ln2Gain, ln2Bias []float32

	act    tensor.Activation
	eps    float32
	causal bool
	fdim   int

	// Pace, when non-nil, is invoked after each local compute phase with
	// the phase's start time and analytic Γ; the cluster runtime uses it
	// to emulate a fixed device speed. It must return promptly once the
	// emulated duration has elapsed.
	Pace func(ctx context.Context, start time.Time, flops int64) error
	// OnComm, when non-nil, is told how long each All-Reduce blocked.
	OnComm func(d time.Duration)
}

// ShardLayer extracts device `rank`'s shard of layer l in a group of k
// devices. Heads and FFN columns are split into contiguous near-even
// blocks; devices beyond the head count receive empty attention shards.
func ShardLayer(l *model.Layer, rank, k int) (*ShardedLayer, error) {
	if k < 1 || rank < 0 || rank >= k {
		return nil, fmt.Errorf("tparallel: rank %d of %d", rank, k)
	}
	h := l.Attn.H()
	fh := l.Attn.FH()
	hLo, hHi := blockBounds(h, k, rank)
	wo, err := l.Attn.WO.RowSlice(hLo*fh, hHi*fh)
	if err != nil {
		return nil, fmt.Errorf("tparallel: slice WO: %w", err)
	}
	dff := l.W1.Cols()
	fLo, fHi := blockBounds(dff, k, rank)
	w1, err := l.W1.ColSlice(fLo, fHi)
	if err != nil {
		return nil, fmt.Errorf("tparallel: slice W1: %w", err)
	}
	w2, err := l.W2.RowSlice(fLo, fHi)
	if err != nil {
		return nil, fmt.Errorf("tparallel: slice W2: %w", err)
	}
	return &ShardedLayer{
		rank: rank, k: k,
		heads:   l.Attn.Heads[hLo:hHi],
		wo:      wo,
		bo:      l.Attn.BO,
		w1:      w1,
		b1:      l.B1[fLo:fHi],
		w2:      w2,
		b2:      l.B2,
		ln1Gain: l.LN1Gain, ln1Bias: l.LN1Bias,
		ln2Gain: l.LN2Gain, ln2Bias: l.LN2Bias,
		act:    l.Act,
		eps:    l.Eps,
		causal: l.Causal,
		fdim:   l.F(),
	}, nil
}

// blockBounds returns the [lo, hi) block of n items assigned to rank r of k
// (contiguous, near-even).
func blockBounds(n, k, r int) (int, int) {
	return r * n / k, (r + 1) * n / k
}

// PartialAttention computes this device's attention contribution over the
// full sequence: Concat(assigned heads)(x) · WO-slice. Summing the partials
// of all devices yields the complete multi-head attention output (before
// bias).
func (s *ShardedLayer) PartialAttention(x *tensor.Matrix) (*tensor.Matrix, error) {
	if len(s.heads) == 0 {
		return tensor.New(x.Rows(), s.fdim), nil
	}
	outs := make([]*tensor.Matrix, len(s.heads))
	for i, h := range s.heads {
		o, err := attention.ComputeWithOptions(h, x, x, attention.Options{
			Order: flopcount.OrderNaive, Causal: s.causal,
		})
		if err != nil {
			return nil, fmt.Errorf("tparallel: head %d: %w", i, err)
		}
		outs[i] = o
	}
	cat, err := tensor.ConcatCols(outs...)
	if err != nil {
		return nil, err
	}
	return tensor.MatMul(cat, s.wo)
}

// PartialFFN computes this device's feed-forward contribution:
// Act(x·W1-slice + b1-slice)·W2-slice. Summing across devices yields the
// complete FFN output (before the second bias).
func (s *ShardedLayer) PartialFFN(x *tensor.Matrix) (*tensor.Matrix, error) {
	if s.w1.Cols() == 0 {
		return tensor.New(x.Rows(), s.fdim), nil
	}
	h, err := tensor.MatMul(x, s.w1)
	if err != nil {
		return nil, err
	}
	if err := tensor.AddBiasInPlace(h, s.b1); err != nil {
		return nil, err
	}
	s.act.ApplyInPlace(h)
	return tensor.MatMul(h, s.w2)
}

// Forward runs one tensor-parallel layer step on this device: partial
// attention → All-Reduce → bias/residual/LN (replicated) → partial FFN →
// All-Reduce → bias/residual/LN (replicated). Every device returns the
// identical full layer output.
//
// ring selects ring vs naive All-Reduce; the paper's communication figures
// assume ring.
func (s *ShardedLayer) Forward(ctx context.Context, p comm.Peer, x *tensor.Matrix, ring bool) (*tensor.Matrix, error) {
	reduce := comm.AllReduceSum
	if ring {
		reduce = comm.RingAllReduceSum
	}

	start := time.Now()
	partial, err := s.PartialAttention(x)
	if err != nil {
		return nil, err
	}
	if s.Pace != nil {
		if err := s.Pace(ctx, start, s.attnCost(x.Rows())); err != nil {
			return nil, err
		}
	}
	commStart := time.Now()
	attnOut, err := reduce(ctx, p, partial)
	if err != nil {
		return nil, fmt.Errorf("tparallel: attention allreduce: %w", err)
	}
	if s.OnComm != nil {
		s.OnComm(time.Since(commStart))
	}
	if err := tensor.AddBiasInPlace(attnOut, s.bo); err != nil {
		return nil, err
	}
	if err := tensor.AddInPlace(attnOut, x); err != nil {
		return nil, err
	}
	y, err := tensor.LayerNorm(attnOut, s.ln1Gain, s.ln1Bias, s.eps)
	if err != nil {
		return nil, err
	}

	start = time.Now()
	fPartial, err := s.PartialFFN(y)
	if err != nil {
		return nil, err
	}
	if s.Pace != nil {
		if err := s.Pace(ctx, start, s.ffnCost(x.Rows())); err != nil {
			return nil, err
		}
	}
	commStart = time.Now()
	ffnOut, err := reduce(ctx, p, fPartial)
	if err != nil {
		return nil, fmt.Errorf("tparallel: ffn allreduce: %w", err)
	}
	if s.OnComm != nil {
		s.OnComm(time.Since(commStart))
	}
	if err := tensor.AddBiasInPlace(ffnOut, s.b2); err != nil {
		return nil, err
	}
	if err := tensor.AddInPlace(ffnOut, y); err != nil {
		return nil, err
	}
	return tensor.LayerNorm(ffnOut, s.ln2Gain, s.ln2Bias, s.eps)
}

// attnCost is the analytic Γ of PartialAttention for input length n: this
// device's heads over the full sequence (naive order, as computed) plus
// its WO row-slice product.
func (s *ShardedLayer) attnCost(n int) int64 {
	if len(s.heads) == 0 {
		return 0
	}
	shape := flopcount.Shape{N: n, P: n, F: s.fdim, FH: s.heads[0].FH()}
	headCost := flopcount.MustCost(shape, flopcount.OrderNaive)
	proj := int64(n) * int64(s.wo.Rows()) * int64(s.fdim)
	return int64(len(s.heads))*headCost + proj
}

// ffnCost is the analytic Γ of PartialFFN for input length n plus the
// replicated residual/layer-norm work.
func (s *ShardedLayer) ffnCost(n int) int64 {
	nn, f := int64(n), int64(s.fdim)
	ffn := nn*f*int64(s.w1.Cols()) + nn*int64(s.w2.Rows())*f
	return ffn + 4*nn*f
}

// Cost returns the analytic Γ of one Forward call's local math for input
// length n. Used by the cluster's device pacing.
func (s *ShardedLayer) Cost(n int) int64 {
	return s.attnCost(n) + s.ffnCost(n)
}

// ShardModel shards every layer of m for device `rank` of k.
func ShardModel(m *model.Model, rank, k int) ([]*ShardedLayer, error) {
	shards := make([]*ShardedLayer, len(m.Layers))
	for i, l := range m.Layers {
		s, err := ShardLayer(l, rank, k)
		if err != nil {
			return nil, fmt.Errorf("tparallel: layer %d: %w", i, err)
		}
		shards[i] = s
	}
	return shards, nil
}
