package tparallel

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"voltage/internal/comm"
	"voltage/internal/model"
	"voltage/internal/netem"
	"voltage/internal/tensor"
)

func tinyLayer(t testing.TB, cfg model.Config, seed int64) *model.Layer {
	t.Helper()
	l, err := model.NewRandomLayer(cfg, tensor.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestShardLayerValidation(t *testing.T) {
	l := tinyLayer(t, model.Tiny(), 1)
	if _, err := ShardLayer(l, 2, 2); err == nil {
		t.Fatal("want error for rank == k")
	}
	if _, err := ShardLayer(l, -1, 2); err == nil {
		t.Fatal("want error for negative rank")
	}
	if _, err := ShardLayer(l, 0, 0); err == nil {
		t.Fatal("want error for k=0")
	}
}

func TestBlockBounds(t *testing.T) {
	// 10 items over 3 ranks: 3/3/4 or similar near-even contiguous split
	// covering everything.
	total := 0
	prevHi := 0
	for r := 0; r < 3; r++ {
		lo, hi := blockBounds(10, 3, r)
		if lo != prevHi {
			t.Fatalf("gap at rank %d: lo %d, prev hi %d", r, lo, prevHi)
		}
		total += hi - lo
		prevHi = hi
	}
	if total != 10 || prevHi != 10 {
		t.Fatalf("blocks cover %d, end %d", total, prevHi)
	}
}

func TestPartialsSumToFullLayer(t *testing.T) {
	// Summing every device's partial attention (plus bias) must equal the
	// unsharded multi-head output; same for the FFN. This is the algebraic
	// foundation of tensor parallelism.
	for _, k := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			l := tinyLayer(t, model.Tiny(), 7)
			rng := tensor.NewRNG(8)
			x := rng.Normal(10, l.F(), 1)

			full, err := l.Forward(x)
			if err != nil {
				t.Fatal(err)
			}

			// Reconstruct the layer step by step from partials.
			attnSum := tensor.New(10, l.F())
			for r := 0; r < k; r++ {
				s, err := ShardLayer(l, r, k)
				if err != nil {
					t.Fatal(err)
				}
				p, err := s.PartialAttention(x)
				if err != nil {
					t.Fatal(err)
				}
				if err := tensor.AddInPlace(attnSum, p); err != nil {
					t.Fatal(err)
				}
			}
			if err := tensor.AddBiasInPlace(attnSum, l.Attn.BO); err != nil {
				t.Fatal(err)
			}
			if err := tensor.AddInPlace(attnSum, x); err != nil {
				t.Fatal(err)
			}
			y, err := tensor.LayerNorm(attnSum, l.LN1Gain, l.LN1Bias, l.Eps)
			if err != nil {
				t.Fatal(err)
			}
			ffnSum := tensor.New(10, l.F())
			for r := 0; r < k; r++ {
				s, err := ShardLayer(l, r, k)
				if err != nil {
					t.Fatal(err)
				}
				p, err := s.PartialFFN(y)
				if err != nil {
					t.Fatal(err)
				}
				if err := tensor.AddInPlace(ffnSum, p); err != nil {
					t.Fatal(err)
				}
			}
			if err := tensor.AddBiasInPlace(ffnSum, l.B2); err != nil {
				t.Fatal(err)
			}
			if err := tensor.AddInPlace(ffnSum, y); err != nil {
				t.Fatal(err)
			}
			got, err := tensor.LayerNorm(ffnSum, l.LN2Gain, l.LN2Bias, l.Eps)
			if err != nil {
				t.Fatal(err)
			}
			if !got.AlmostEqual(full, 1e-2) {
				d, _ := got.MaxAbsDiff(full)
				t.Fatalf("reassembled TP layer differs from full by %v", d)
			}
		})
	}
}

func TestForwardDistributedMatchesFullLayer(t *testing.T) {
	for _, ring := range []bool{false, true} {
		for _, k := range []int{2, 3} {
			t.Run(fmt.Sprintf("ring=%v/k=%d", ring, k), func(t *testing.T) {
				l := tinyLayer(t, model.Tiny(), 11)
				rng := tensor.NewRNG(12)
				x := rng.Normal(9, l.F(), 1)
				full, err := l.Forward(x)
				if err != nil {
					t.Fatal(err)
				}
				peers, err := comm.NewMemMesh(k, netem.Unlimited)
				if err != nil {
					t.Fatal(err)
				}
				defer peers[0].Close()
				var wg sync.WaitGroup
				outs := make([]*tensor.Matrix, k)
				errs := make([]error, k)
				for r := 0; r < k; r++ {
					wg.Add(1)
					go func(r int) {
						defer wg.Done()
						s, err := ShardLayer(l, r, k)
						if err != nil {
							errs[r] = err
							return
						}
						outs[r], errs[r] = s.Forward(context.Background(), peers[r], x, ring)
					}(r)
				}
				wg.Wait()
				for r := 0; r < k; r++ {
					if errs[r] != nil {
						t.Fatalf("rank %d: %v", r, errs[r])
					}
					if !outs[r].AlmostEqual(full, 1e-2) {
						d, _ := outs[r].MaxAbsDiff(full)
						t.Fatalf("rank %d TP output differs from full by %v", r, d)
					}
				}
			})
		}
	}
}

func TestCausalShardedLayer(t *testing.T) {
	l := tinyLayer(t, model.TinyDecoder(), 21)
	rng := tensor.NewRNG(22)
	x := rng.Normal(8, l.F(), 1)
	full, err := l.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	peers, err := comm.NewMemMesh(2, netem.Unlimited)
	if err != nil {
		t.Fatal(err)
	}
	defer peers[0].Close()
	var wg sync.WaitGroup
	outs := make([]*tensor.Matrix, 2)
	errs := make([]error, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			s, err := ShardLayer(l, r, 2)
			if err != nil {
				errs[r] = err
				return
			}
			outs[r], errs[r] = s.Forward(context.Background(), peers[r], x, true)
		}(r)
	}
	wg.Wait()
	for r := 0; r < 2; r++ {
		if errs[r] != nil {
			t.Fatal(errs[r])
		}
		if !outs[r].AlmostEqual(full, 1e-2) {
			t.Fatalf("rank %d causal TP output differs", r)
		}
	}
}

func TestMoreDevicesThanHeads(t *testing.T) {
	// Tiny has 4 heads; with k=6 two devices get no heads but must still
	// participate correctly.
	l := tinyLayer(t, model.Tiny(), 31)
	rng := tensor.NewRNG(32)
	x := rng.Normal(6, l.F(), 1)
	full, err := l.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	k := 6
	peers, err := comm.NewMemMesh(k, netem.Unlimited)
	if err != nil {
		t.Fatal(err)
	}
	defer peers[0].Close()
	var wg sync.WaitGroup
	outs := make([]*tensor.Matrix, k)
	errs := make([]error, k)
	emptyShards := 0
	for r := 0; r < k; r++ {
		s, err := ShardLayer(l, r, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(s.heads) == 0 {
			emptyShards++
		}
		wg.Add(1)
		go func(r int, s *ShardedLayer) {
			defer wg.Done()
			outs[r], errs[r] = s.Forward(context.Background(), peers[r], x, true)
		}(r, s)
	}
	wg.Wait()
	if emptyShards == 0 {
		t.Fatal("expected some empty attention shards with k > H")
	}
	for r := 0; r < k; r++ {
		if errs[r] != nil {
			t.Fatalf("rank %d: %v", r, errs[r])
		}
		if !outs[r].AlmostEqual(full, 1e-2) {
			t.Fatalf("rank %d output differs", r)
		}
	}
}

func TestShardModel(t *testing.T) {
	m, err := model.NewRandom(model.Tiny(), 41)
	if err != nil {
		t.Fatal(err)
	}
	shards, err := ShardModel(m, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != m.Cfg.Layers {
		t.Fatalf("got %d shards", len(shards))
	}
	if _, err := ShardModel(m, 9, 3); err == nil {
		t.Fatal("want error for bad rank")
	}
}

func TestTPCommVolumeIs4xVoltage(t *testing.T) {
	// The headline claim: per device per layer, tensor parallelism moves
	// 4(K−1)NF/K bytes (two ring All-Reduces) vs Voltage's (K−1)NF/K
	// (one All-Gather of row partitions).
	k, n := 4, 16
	l := tinyLayer(t, model.Tiny(), 51)
	f := l.F()
	x := tensor.NewRNG(52).Normal(n, f, 1)

	peers, err := comm.NewMemMesh(k, netem.Unlimited)
	if err != nil {
		t.Fatal(err)
	}
	defer peers[0].Close()
	var wg sync.WaitGroup
	errs := make([]error, k)
	for r := 0; r < k; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			s, err := ShardLayer(l, r, k)
			if err != nil {
				errs[r] = err
				return
			}
			_, errs[r] = s.Forward(context.Background(), peers[r], x, true)
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	wantTP := int64(4 * 4 * (k - 1) * n * f / k) // bytes: 4 B/elem × 4(K−1)NF/K elems
	for _, p := range peers {
		if got := p.Stats().BytesSent; got != wantTP {
			t.Fatalf("rank %d TP sent %d bytes, want %d", p.Rank(), got, wantTP)
		}
	}
}

func TestShardCostsSumToWholeLayer(t *testing.T) {
	// Sharded analytic costs must partition the full TP layer cost: the
	// per-device Cost values over all ranks sum to the cost of one device
	// holding everything (up to the replicated layer-norm/residual term).
	l := tinyLayer(t, model.Tiny(), 61)
	const n, k = 24, 4
	soloShard, err := ShardLayer(l, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	solo := soloShard.Cost(n)
	var sum int64
	for r := 0; r < k; r++ {
		s, err := ShardLayer(l, r, k)
		if err != nil {
			t.Fatal(err)
		}
		c := s.Cost(n)
		if c < 0 {
			t.Fatalf("negative cost at rank %d", r)
		}
		sum += c
	}
	replicated := int64(4 * n * l.F()) // layer norms + residuals, per device
	want := solo + int64(k-1)*replicated
	if sum != want {
		t.Fatalf("shard costs sum to %d, want %d", sum, want)
	}
}

func TestEmptyShardCostZeroAttention(t *testing.T) {
	// With k > H some shards have no heads: their attention cost must be
	// zero but the FFN slice still counts.
	l := tinyLayer(t, model.Tiny(), 62) // 4 heads over 6 devices
	// blockBounds(4, 6, 3) = [2, 2): rank 3 holds no heads.
	s, err := ShardLayer(l, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.heads) != 0 {
		t.Fatalf("rank 3 of 6 should hold no heads, has %d", len(s.heads))
	}
	if got := s.attnCost(16); got != 0 {
		t.Fatalf("empty shard attention cost %d", got)
	}
	if s.Cost(16) <= 0 {
		t.Fatal("empty-head shard should still have FFN cost")
	}
}
