// Package costmodel predicts the latency of distributed transformer
// inference analytically, combining the paper's FLOP counts (Section IV)
// with its communication-volume formulas (Section V-C) and the half-duplex
// NIC model of the netem emulator.
//
// The model serves two purposes: it regenerates the *shapes* of the
// paper's Figures 4 and 5 in microseconds (no heavy math), and it documents
// exactly which analytic quantities drive each curve. The real cluster
// runtime validates it.
package costmodel

import (
	"fmt"
	"time"

	"voltage/internal/cluster"
	"voltage/internal/flopcount"
	"voltage/internal/model"
	"voltage/internal/netem"
)

// DeviceProfile describes one emulated edge device's compute capability.
type DeviceProfile struct {
	// FlopsPerSec is the device's sustained dense-matmul throughput.
	FlopsPerSec float64
}

// EdgeCPU approximates the paper's single-vCPU VMs running MKL-backed
// PyTorch CPU inference (tens of GFLOP/s of sustained dense math; this
// value reproduces the paper's ≈2.3 s single-device BERT-Large latency at
// N=200).
var EdgeCPU = DeviceProfile{FlopsPerSec: 25e9}

// DefaultCommEfficiency is the fraction of line rate a transfer actually
// sustains (TCP/IP framing, imperfect pipelining, synchronization skew).
const DefaultCommEfficiency = 0.6

// System describes a deployment to be costed.
type System struct {
	Model  model.Config
	N      int // transformer sequence length
	K      int // worker devices
	Net    netem.Profile
	Device DeviceProfile
	// CommEfficiency scales the effective bandwidth (0 → use
	// DefaultCommEfficiency; 1 → ideal line rate).
	CommEfficiency float64
}

// Validate reports whether the system is well-formed.
func (s System) Validate() error {
	if err := s.Model.Validate(); err != nil {
		return err
	}
	switch {
	case s.N < 1:
		return fmt.Errorf("costmodel: N = %d", s.N)
	case s.K < 1:
		return fmt.Errorf("costmodel: K = %d", s.K)
	case s.Device.FlopsPerSec <= 0:
		return fmt.Errorf("costmodel: flops/s = %v", s.Device.FlopsPerSec)
	}
	return nil
}

// Breakdown is a latency prediction split into its components.
type Breakdown struct {
	Compute  time.Duration // per-device critical-path math
	Comm     time.Duration // collective communication between layers
	Boundary time.Duration // input broadcast + output collection
}

// Total returns the predicted end-to-end latency.
func (b Breakdown) Total() time.Duration { return b.Compute + b.Comm + b.Boundary }

// seconds converts a float duration safely.
func seconds(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// bytesOf returns the wire size of an r×c float32 activation.
func bytesOf(r, c int) float64 { return 4 * float64(r) * float64(c) }

// xferTime returns the serialization time of b bytes at the profile's
// effective rate (zero when unshaped).
func (s System) xferTime(b float64) float64 {
	rate := s.Net.Rate()
	if rate <= 0 {
		return 0
	}
	eff := s.CommEfficiency
	if eff <= 0 {
		eff = DefaultCommEfficiency
	}
	if eff > 1 {
		eff = 1
	}
	return b / (rate * eff)
}

// lat returns the per-message propagation delay in seconds.
func (s System) lat() float64 { return s.Net.Latency.Seconds() }

// Predict returns the latency breakdown for a strategy.
func (s System) Predict(strategy cluster.Strategy) (Breakdown, error) {
	if err := s.Validate(); err != nil {
		return Breakdown{}, err
	}
	switch strategy {
	case cluster.StrategySingle:
		return s.single(), nil
	case cluster.StrategyVoltage:
		return s.voltage(), nil
	case cluster.StrategyTensorParallel:
		return s.tensorParallel(), nil
	default:
		return Breakdown{}, fmt.Errorf("costmodel: unknown strategy %v", strategy)
	}
}

// layerFlopsVoltage is Γ(Algorithm 1) for one layer at partition size P.
func (s System) layerFlopsVoltage(p int) float64 {
	shape := flopcount.Shape{N: s.N, P: p, F: s.Model.F, FH: s.Model.FH()}
	c, err := flopcount.LayerCost(shape, s.Model.Heads, s.Model.FFN, flopcount.SelectOrder(shape))
	if err != nil {
		return 0
	}
	return float64(c)
}

// single models the whole stack on one device plus the terminal round trip.
func (s System) single() Breakdown {
	compute := float64(s.Model.Layers) * s.layerFlopsVoltage(s.N) / s.Device.FlopsPerSec
	inOut := 2*s.xferTime(bytesOf(s.N, s.Model.F)) + 2*s.lat()
	return Breakdown{Compute: seconds(compute), Boundary: seconds(inOut)}
}

// voltage models Algorithm 2: per-layer partition compute + one All-Gather,
// with the final layer handing partitions to the terminal.
func (s System) voltage() Breakdown {
	p := (s.N + s.K - 1) / s.K // critical path: the largest partition
	compute := float64(s.Model.Layers) * s.layerFlopsVoltage(p) / s.Device.FlopsPerSec

	// All-Gather under the half-duplex NIC: each device pushes its
	// partition to K−1 peers and pulls K−1 partitions through the same
	// interface → 2(K−1)·part bytes serialized, plus one propagation delay.
	part := bytesOf(s.N, s.Model.F) / float64(s.K)
	perGather := s.xferTime(2*float64(s.K-1)*part) + s.lat()
	comm := float64(s.Model.Layers-1) * perGather
	if s.K == 1 {
		comm = 0 // no synchronization with a single device
	}

	// Boundary: terminal broadcasts x to K workers (serialized on its
	// egress) and collects K final partitions.
	broadcast := s.xferTime(float64(s.K)*bytesOf(s.N, s.Model.F)) + s.lat()
	collect := s.xferTime(bytesOf(s.N, s.Model.F)) + s.lat()
	return Breakdown{
		Compute:  seconds(compute),
		Comm:     seconds(comm),
		Boundary: seconds(broadcast + collect),
	}
}

// tpLayerFlops is one device's math in a tensor-parallel layer: H/K heads
// over the full sequence (naive order, P = N), the sliced output
// projection, the sliced FFN, and the replicated layer norms.
func (s System) tpLayerFlops() float64 {
	shape := flopcount.Shape{N: s.N, P: s.N, F: s.Model.F, FH: s.Model.FH()}
	headCost := float64(flopcount.MustCost(shape, flopcount.OrderNaive))
	heads := float64(s.Model.Heads) / float64(s.K)
	n, f, dff := float64(s.N), float64(s.Model.F), float64(s.Model.FFN)
	proj := n * f * f / float64(s.K)
	ffn := 2 * n * f * dff / float64(s.K)
	rest := 4 * n * f // residuals + layer norms, replicated on every device
	return heads*headCost + proj + ffn + rest
}

// tensorParallel models the Megatron baseline: per-layer sharded compute
// plus two ring All-Reduces.
func (s System) tensorParallel() Breakdown {
	compute := float64(s.Model.Layers) * s.tpLayerFlops() / s.Device.FlopsPerSec

	// Ring All-Reduce: 2(K−1) synchronized steps; each step a device sends
	// and receives one N·F/K chunk through its half-duplex NIC.
	chunk := bytesOf(s.N, s.Model.F) / float64(s.K)
	perStep := s.xferTime(2*chunk) + s.lat()
	perReduce := 2 * float64(s.K-1) * perStep
	comm := float64(s.Model.Layers) * 2 * perReduce
	if s.K == 1 {
		comm = 0
	}

	broadcast := s.xferTime(float64(s.K)*bytesOf(s.N, s.Model.F)) + s.lat()
	collect := s.xferTime(bytesOf(s.N, s.Model.F)) + s.lat()
	return Breakdown{
		Compute:  seconds(compute),
		Comm:     seconds(comm),
		Boundary: seconds(broadcast + collect),
	}
}

// CommBytesPerLayer returns the paper's per-device per-layer communication
// volume in bytes for each strategy (Section V-C): Voltage (K−1)NF/K,
// tensor parallelism 4(K−1)NF/K, single device 0.
func (s System) CommBytesPerLayer(strategy cluster.Strategy) float64 {
	nf := bytesOf(s.N, s.Model.F)
	switch strategy {
	case cluster.StrategyVoltage:
		return float64(s.K-1) * nf / float64(s.K)
	case cluster.StrategyTensorParallel:
		return 4 * float64(s.K-1) * nf / float64(s.K)
	default:
		return 0
	}
}

// SpeedupVsSingle returns predicted single-device latency divided by the
// strategy's latency — >1 means the distribution helps.
func (s System) SpeedupVsSingle(strategy cluster.Strategy) (float64, error) {
	dist, err := s.Predict(strategy)
	if err != nil {
		return 0, err
	}
	single := s.single()
	return float64(single.Total()) / float64(dist.Total()), nil
}
