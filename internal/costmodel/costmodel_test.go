package costmodel

import (
	"testing"
	"time"

	"voltage/internal/cluster"
	"voltage/internal/model"
	"voltage/internal/netem"
)

func bertSystem(k int, mbps float64) System {
	return System{
		Model:  model.BERTLarge(),
		N:      200,
		K:      k,
		Net:    netem.Profile{BandwidthMbps: mbps, Latency: 200 * time.Microsecond},
		Device: EdgeCPU,
	}
}

func TestValidate(t *testing.T) {
	s := bertSystem(2, 500)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := s
	bad.N = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("want error for N=0")
	}
	bad = s
	bad.K = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("want error for K=0")
	}
	bad = s
	bad.Device.FlopsPerSec = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("want error for zero flops")
	}
	if _, err := bad.Predict(cluster.StrategySingle); err == nil {
		t.Fatal("Predict must validate")
	}
	if _, err := s.Predict(cluster.Strategy(99)); err == nil {
		t.Fatal("want error for unknown strategy")
	}
}

func TestFig4ShapeVoltageScalesDown(t *testing.T) {
	// Voltage latency must drop monotonically as K grows at 500 Mbps, and
	// land meaningfully below single device at K=6 (paper: 27.9% for BERT).
	single, err := bertSystem(1, 500).Predict(cluster.StrategySingle)
	if err != nil {
		t.Fatal(err)
	}
	prev := time.Duration(1<<62 - 1)
	for k := 1; k <= 6; k++ {
		b, err := bertSystem(k, 500).Predict(cluster.StrategyVoltage)
		if err != nil {
			t.Fatal(err)
		}
		if b.Total() >= prev {
			t.Fatalf("voltage latency not monotone at K=%d: %v ≥ %v", k, b.Total(), prev)
		}
		prev = b.Total()
	}
	improvement := 1 - float64(prev)/float64(single.Total())
	if improvement < 0.15 || improvement > 0.9 {
		t.Fatalf("K=6 improvement %.1f%%, want a substantial reduction (paper ≈28%%)", 100*improvement)
	}
}

func TestFig4ShapeTPSlowerThanSingleAt500(t *testing.T) {
	// Paper: at 500 Mbps, tensor parallelism is slower than single-device
	// for every K > 1.
	single, err := bertSystem(1, 500).Predict(cluster.StrategySingle)
	if err != nil {
		t.Fatal(err)
	}
	for k := 2; k <= 6; k++ {
		tp, err := bertSystem(k, 500).Predict(cluster.StrategyTensorParallel)
		if err != nil {
			t.Fatal(err)
		}
		if tp.Total() <= single.Total() {
			t.Fatalf("K=%d: TP %v not slower than single %v at 500 Mbps", k, tp.Total(), single.Total())
		}
	}
}

func TestFig4VoltageBeatsTPEverywhere(t *testing.T) {
	for k := 2; k <= 6; k++ {
		v, err := bertSystem(k, 500).Predict(cluster.StrategyVoltage)
		if err != nil {
			t.Fatal(err)
		}
		tp, err := bertSystem(k, 500).Predict(cluster.StrategyTensorParallel)
		if err != nil {
			t.Fatal(err)
		}
		if v.Total() >= tp.Total() {
			t.Fatalf("K=%d: voltage %v not faster than TP %v", k, v.Total(), tp.Total())
		}
	}
}

func TestFig5ShapeBandwidthSweep(t *testing.T) {
	// Paper's Fig. 5 at K=6: TP improves steeply with bandwidth but stays
	// above Voltage; Voltage beats single device from ≈400 Mbps; at 200
	// Mbps both lose to single device.
	single, err := bertSystem(1, 500).Predict(cluster.StrategySingle)
	if err != nil {
		t.Fatal(err)
	}
	singleLat := single.Compute // single-device latency is ~all compute
	_ = singleLat

	var prevTP time.Duration = 1<<62 - 1
	for _, mbps := range []float64{200, 400, 600, 800, 1000} {
		v, err := bertSystem(6, mbps).Predict(cluster.StrategyVoltage)
		if err != nil {
			t.Fatal(err)
		}
		tp, err := bertSystem(6, mbps).Predict(cluster.StrategyTensorParallel)
		if err != nil {
			t.Fatal(err)
		}
		if tp.Total() >= prevTP {
			t.Fatalf("TP latency not improving with bandwidth at %v Mbps", mbps)
		}
		prevTP = tp.Total()
		if v.Total() >= tp.Total() {
			t.Fatalf("voltage slower than TP at %v Mbps", mbps)
		}
	}
	// At 200 Mbps Voltage loses to single device; at 1000 Mbps it wins.
	v200, _ := bertSystem(6, 200).Predict(cluster.StrategyVoltage)
	if v200.Total() <= single.Total() {
		t.Fatalf("voltage at 200 Mbps (%v) should lose to single (%v)", v200.Total(), single.Total())
	}
	v1000, _ := bertSystem(6, 1000).Predict(cluster.StrategyVoltage)
	if v1000.Total() >= single.Total() {
		t.Fatalf("voltage at 1000 Mbps (%v) should beat single (%v)", v1000.Total(), single.Total())
	}
	// TP at 200 Mbps is drastically worse than single (paper: ≈4.2×).
	tp200, _ := bertSystem(6, 200).Predict(cluster.StrategyTensorParallel)
	if ratio := float64(tp200.Total()) / float64(single.Total()); ratio < 2 {
		t.Fatalf("TP at 200 Mbps only %.1f× single, paper shows ≈4×", ratio)
	}
}

func TestCommBytesPerLayerFormulas(t *testing.T) {
	s := bertSystem(4, 500)
	nf := 4.0 * 200 * 1024
	if got := s.CommBytesPerLayer(cluster.StrategyVoltage); got != 3*nf/4 {
		t.Fatalf("voltage comm %v, want %v", got, 3*nf/4)
	}
	if got := s.CommBytesPerLayer(cluster.StrategyTensorParallel); got != 4*3*nf/4 {
		t.Fatalf("tp comm %v, want %v", got, 4*3*nf/4)
	}
	if got := s.CommBytesPerLayer(cluster.StrategySingle); got != 0 {
		t.Fatalf("single comm %v", got)
	}
	ratio := s.CommBytesPerLayer(cluster.StrategyTensorParallel) / s.CommBytesPerLayer(cluster.StrategyVoltage)
	if ratio != 4 {
		t.Fatalf("comm ratio %v, want exactly 4 (the paper's headline)", ratio)
	}
}

func TestSpeedupVsSingle(t *testing.T) {
	sp, err := bertSystem(6, 500).SpeedupVsSingle(cluster.StrategyVoltage)
	if err != nil {
		t.Fatal(err)
	}
	if sp <= 1 {
		t.Fatalf("voltage K=6 speedup %v, want > 1", sp)
	}
	spTP, err := bertSystem(6, 500).SpeedupVsSingle(cluster.StrategyTensorParallel)
	if err != nil {
		t.Fatal(err)
	}
	if spTP >= 1 {
		t.Fatalf("TP K=6 speedup %v, want < 1 at 500 Mbps", spTP)
	}
	bad := bertSystem(6, 500)
	bad.N = 0
	if _, err := bad.SpeedupVsSingle(cluster.StrategyVoltage); err == nil {
		t.Fatal("want error")
	}
}

func TestBreakdownComponents(t *testing.T) {
	b, err := bertSystem(4, 500).Predict(cluster.StrategyVoltage)
	if err != nil {
		t.Fatal(err)
	}
	if b.Compute <= 0 || b.Comm <= 0 || b.Boundary <= 0 {
		t.Fatalf("breakdown has non-positive components: %+v", b)
	}
	if b.Total() != b.Compute+b.Comm+b.Boundary {
		t.Fatal("Total != sum of parts")
	}
	// Unlimited bandwidth → zero comm/boundary serialization (latency
	// only).
	free := System{Model: model.BERTLarge(), N: 200, K: 4, Device: EdgeCPU}
	fb, err := free.Predict(cluster.StrategyVoltage)
	if err != nil {
		t.Fatal(err)
	}
	if fb.Comm != 0 || fb.Boundary != 0 {
		t.Fatalf("unshaped profile has comm %v boundary %v", fb.Comm, fb.Boundary)
	}
}

func TestK1MatchesSingleCompute(t *testing.T) {
	// Voltage with K=1 computes the full sequence on one device: its
	// compute must equal the single-device compute exactly.
	v, err := bertSystem(1, 500).Predict(cluster.StrategyVoltage)
	if err != nil {
		t.Fatal(err)
	}
	s, err := bertSystem(1, 500).Predict(cluster.StrategySingle)
	if err != nil {
		t.Fatal(err)
	}
	if v.Compute != s.Compute {
		t.Fatalf("K=1 voltage compute %v != single %v", v.Compute, s.Compute)
	}
	if v.Comm != 0 {
		t.Fatalf("K=1 voltage comm %v", v.Comm)
	}
	tp, err := bertSystem(1, 500).Predict(cluster.StrategyTensorParallel)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Comm != 0 {
		t.Fatalf("K=1 TP comm %v", tp.Comm)
	}
}

func TestOtherModelsShapeHolds(t *testing.T) {
	// The Fig. 4 shape holds for ViT (N=197) and GPT-2 (N=200) too.
	for _, cfg := range []model.Config{model.ViTBase(), model.GPT2()} {
		n := cfg.SeqLen(200)
		single, err := (System{Model: cfg, N: n, K: 1,
			Net: netem.EdgeDefault, Device: EdgeCPU}).Predict(cluster.StrategySingle)
		if err != nil {
			t.Fatal(err)
		}
		v6, err := (System{Model: cfg, N: n, K: 6,
			Net: netem.EdgeDefault, Device: EdgeCPU}).Predict(cluster.StrategyVoltage)
		if err != nil {
			t.Fatal(err)
		}
		tp6, err := (System{Model: cfg, N: n, K: 6,
			Net: netem.EdgeDefault, Device: EdgeCPU}).Predict(cluster.StrategyTensorParallel)
		if err != nil {
			t.Fatal(err)
		}
		if v6.Total() >= single.Total() {
			t.Fatalf("%s: voltage K=6 (%v) not faster than single (%v)", cfg.Name, v6.Total(), single.Total())
		}
		if tp6.Total() <= single.Total() {
			t.Fatalf("%s: TP K=6 (%v) not slower than single (%v)", cfg.Name, tp6.Total(), single.Total())
		}
	}
}
