// Package quantize implements int8 activation quantization for the
// communication path — the paper's concluding future-work direction
// ("further optimizations to communication protocols and exchange
// mechanisms may help relieve this bottleneck").
//
// Activations are quantized per row with symmetric absmax scaling:
// 8 bits per value instead of 32, shrinking Voltage's All-Gather traffic
// ≈4× at the cost of a bounded, layer-norm-absorbed quantization error.
// The wire format is self-describing so quantized and exact frames can be
// mixed.
package quantize

import (
	"encoding/binary"
	"fmt"
	"math"

	"voltage/internal/tensor"
)

// QMatrix is a per-row symmetrically quantized matrix: value(i,j) ≈
// Scales[i] · Data[i·cols+j].
type QMatrix struct {
	rows, cols int
	Scales     []float32
	Data       []int8
}

// Rows returns the row count.
func (q *QMatrix) Rows() int { return q.rows }

// Cols returns the column count.
func (q *QMatrix) Cols() int { return q.cols }

// Quantize converts m to int8 with per-row absmax scales. All-zero rows
// get scale 0 and decode back to zeros.
func Quantize(m *tensor.Matrix) *QMatrix {
	q := &QMatrix{
		rows:   m.Rows(),
		cols:   m.Cols(),
		Scales: make([]float32, m.Rows()),
		Data:   make([]int8, m.Rows()*m.Cols()),
	}
	for i := 0; i < m.Rows(); i++ {
		row := m.Row(i)
		var absMax float32
		for _, v := range row {
			if a := float32(math.Abs(float64(v))); a > absMax {
				absMax = a
			}
		}
		if absMax == 0 {
			continue
		}
		scale := absMax / 127
		q.Scales[i] = scale
		inv := 1 / scale
		out := q.Data[i*m.Cols() : (i+1)*m.Cols()]
		for j, v := range row {
			out[j] = int8(math.RoundToEven(float64(v * inv)))
		}
	}
	return q
}

// Dequantize reconstructs the float32 matrix.
func (q *QMatrix) Dequantize() *tensor.Matrix {
	m := tensor.New(q.rows, q.cols)
	for i := 0; i < q.rows; i++ {
		scale := q.Scales[i]
		src := q.Data[i*q.cols : (i+1)*q.cols]
		dst := m.Row(i)
		for j, v := range src {
			dst[j] = float32(v) * scale
		}
	}
	return m
}

// MaxError returns the worst-case absolute reconstruction error of
// quantizing m: half a quantization step per row.
func MaxError(m *tensor.Matrix) float64 {
	var worst float64
	for i := 0; i < m.Rows(); i++ {
		var absMax float64
		for _, v := range m.Row(i) {
			if a := math.Abs(float64(v)); a > absMax {
				absMax = a
			}
		}
		if step := absMax / 127 / 2; step > worst {
			worst = step
		}
	}
	return worst
}

// EncodedSize returns the wire size of a rows×cols quantized matrix:
// header + per-row scales + int8 payload — ≈¼ of the float32 encoding for
// wide matrices.
func EncodedSize(rows, cols int) int { return 8 + 4*rows + rows*cols }

// Encode appends the wire representation to buf.
func Encode(buf []byte, q *QMatrix) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(q.rows))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(q.cols))
	for _, s := range q.Scales {
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(s))
	}
	for _, v := range q.Data {
		buf = append(buf, byte(v))
	}
	return buf
}

// Decode parses one quantized matrix, returning it and the bytes consumed.
func Decode(buf []byte) (*QMatrix, int, error) {
	if len(buf) < 8 {
		return nil, 0, fmt.Errorf("quantize: short header (%d bytes)", len(buf))
	}
	rows := int(binary.LittleEndian.Uint32(buf))
	cols := int(binary.LittleEndian.Uint32(buf[4:]))
	const maxElems = 1 << 28
	if rows < 0 || cols < 0 || rows*cols > maxElems {
		return nil, 0, fmt.Errorf("quantize: implausible shape %dx%d", rows, cols)
	}
	need := EncodedSize(rows, cols)
	if len(buf) < need {
		return nil, 0, fmt.Errorf("quantize: need %d bytes, have %d", need, len(buf))
	}
	q := &QMatrix{rows: rows, cols: cols, Scales: make([]float32, rows), Data: make([]int8, rows*cols)}
	off := 8
	for i := range q.Scales {
		q.Scales[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
	}
	for i := range q.Data {
		q.Data[i] = int8(buf[off])
		off++
	}
	return q, need, nil
}

// Roundtrip quantizes and immediately dequantizes m — the exact transform
// the receiving device sees.
func Roundtrip(m *tensor.Matrix) *tensor.Matrix {
	return Quantize(m).Dequantize()
}
