package quantize

import (
	"math"
	"testing"
	"testing/quick"

	"voltage/internal/tensor"
)

func TestQuantizeRoundtripWithinError(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		m := rng.Normal(1+rng.Intn(20), 1+rng.Intn(30), 2)
		back := Roundtrip(m)
		bound := MaxError(m) + 1e-7
		d, err := back.MaxAbsDiff(m)
		if err != nil {
			return false
		}
		return d <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeZeroRow(t *testing.T) {
	m := tensor.New(2, 4)
	m.Set(1, 0, 5)
	q := Quantize(m)
	if q.Scales[0] != 0 {
		t.Fatal("zero row should have zero scale")
	}
	back := q.Dequantize()
	for j := 0; j < 4; j++ {
		if back.At(0, j) != 0 {
			t.Fatal("zero row not preserved")
		}
	}
	if math.Abs(float64(back.At(1, 0))-5) > 0.05 {
		t.Fatalf("nonzero value off: %v", back.At(1, 0))
	}
}

func TestQuantizePreservesExtremes(t *testing.T) {
	m, _ := tensor.NewFromData(1, 3, []float32{-2, 0, 2})
	back := Roundtrip(m)
	if back.At(0, 0) != -2 || back.At(0, 2) != 2 {
		t.Fatalf("absmax endpoints should be exact: %v", back)
	}
	if math.Abs(float64(back.At(0, 1))) > 1e-7 {
		t.Fatal("zero should stay zero")
	}
}

func TestEncodedSizeQuarter(t *testing.T) {
	// For wide rows the quantized encoding is ≈¼ of float32.
	rows, cols := 50, 1024
	qSize := EncodedSize(rows, cols)
	fSize := tensor.EncodedSize(rows, cols)
	ratio := float64(fSize) / float64(qSize)
	if ratio < 3.5 || ratio > 4.1 {
		t.Fatalf("compression ratio %.2f, want ≈4", ratio)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		m := rng.Normal(1+rng.Intn(10), 1+rng.Intn(20), 1)
		q := Quantize(m)
		buf := Encode(nil, q)
		if len(buf) != EncodedSize(q.Rows(), q.Cols()) {
			return false
		}
		back, n, err := Decode(buf)
		if err != nil || n != len(buf) {
			return false
		}
		if back.Rows() != q.Rows() || back.Cols() != q.Cols() {
			return false
		}
		for i := range q.Data {
			if back.Data[i] != q.Data[i] {
				return false
			}
		}
		for i := range q.Scales {
			if back.Scales[i] != q.Scales[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode([]byte{1}); err == nil {
		t.Fatal("want error for short header")
	}
	q := Quantize(tensor.New(3, 3))
	buf := Encode(nil, q)
	if _, _, err := Decode(buf[:len(buf)-1]); err == nil {
		t.Fatal("want error for truncated body")
	}
	var hdr [8]byte
	hdr[3] = 0x40 // enormous rows
	hdr[7] = 0x40
	if _, _, err := Decode(hdr[:]); err == nil {
		t.Fatal("want error for implausible shape")
	}
}

func TestMaxErrorScalesWithMagnitude(t *testing.T) {
	small, _ := tensor.NewFromData(1, 2, []float32{0.1, -0.1})
	big, _ := tensor.NewFromData(1, 2, []float32{100, -100})
	if MaxError(big) <= MaxError(small) {
		t.Fatal("error bound should grow with magnitude")
	}
}
