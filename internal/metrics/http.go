package metrics

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Admin HTTP surface. One listener exposes:
//
//	/metrics       Prometheus text exposition of a Registry
//	/healthz       JSON health report from a HealthFunc (503 when not OK)
//	/debug/pprof/  the standard Go profiling endpoints
//
// The listener lives entirely off the data path: scrapes read atomic
// instrument values and the health callback, never touching the mesh.

// Health is one health probe result: OK selects the HTTP status (200/503)
// and Detail is rendered as the JSON body.
type Health struct {
	OK     bool `json:"ok"`
	Detail any  `json:"detail,omitempty"`
}

// HealthFunc produces the current health report. It must be safe for
// concurrent use; nil means "always OK, no detail".
type HealthFunc func() Health

// Handler returns the /metrics scrape handler for reg.
func Handler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_ = reg.WritePrometheus(w)
	})
}

// healthHandler serves the /healthz probe.
func healthHandler(fn HealthFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		h := Health{OK: true}
		if fn != nil {
			h = fn()
		}
		w.Header().Set("Content-Type", "application/json")
		if !h.OK {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(h)
	})
}

// Endpoint is one extra admin route mounted alongside the built-in ones
// (e.g. the cluster's /debug/flight and /debug/trace).
type Endpoint struct {
	Path    string
	Handler http.Handler
}

// AdminMux assembles the admin endpoints over one registry and health
// probe. The pprof handlers are mounted explicitly (not via the package's
// DefaultServeMux side effect) so multiple admin listeners in one process —
// e.g. the tests — stay independent.
func AdminMux(reg *Registry, health HealthFunc, extra ...Endpoint) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(reg))
	mux.Handle("/healthz", healthHandler(health))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, e := range extra {
		mux.Handle(e.Path, e.Handler)
	}
	return mux
}

// AdminServer is a running admin listener.
type AdminServer struct {
	ln  net.Listener
	srv *http.Server
}

// StartAdmin binds addr (host:port; port 0 picks a free port) and serves
// the admin endpoints in a background goroutine until Close.
func StartAdmin(addr string, reg *Registry, health HealthFunc, extra ...Endpoint) (*AdminServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{
		Handler:           AdminMux(reg, health, extra...),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() { _ = srv.Serve(ln) }()
	return &AdminServer{ln: ln, srv: srv}, nil
}

// Addr returns the bound address (useful with port 0).
func (s *AdminServer) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener and in-flight handlers. Nil-safe and idempotent.
func (s *AdminServer) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
