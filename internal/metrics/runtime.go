package metrics

import (
	"runtime"
	"sync"
	"time"
)

// memStatsCache rate-limits runtime.ReadMemStats: collecting it stops the
// world, so concurrent scrapes and the several gauges below share one
// reading refreshed at most once per second.
type memStatsCache struct {
	mu    sync.Mutex
	at    time.Time
	stats runtime.MemStats
}

func (c *memStatsCache) read() runtime.MemStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.at.IsZero() || time.Since(c.at) > time.Second {
		runtime.ReadMemStats(&c.stats)
		c.at = time.Now()
	}
	return c.stats
}

// RegisterRuntime registers process-level runtime gauges on reg so load
// runs can correlate tail latency with runtime pressure (goroutine count,
// heap in use, GC pause time). Values are collected at scrape time;
// registering twice on the same registry is a no-op.
func RegisterRuntime(reg *Registry) {
	if reg == nil {
		return
	}
	cache := &memStatsCache{}
	reg.GaugeFunc("voltage_process_goroutines",
		"Live goroutines in the process.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("voltage_process_heap_inuse_bytes",
		"Bytes in in-use heap spans (runtime.MemStats.HeapInuse, cached ~1s).",
		func() float64 { return float64(cache.read().HeapInuse) })
	reg.GaugeFunc("voltage_process_heap_objects",
		"Live heap objects (runtime.MemStats.HeapObjects, cached ~1s).",
		func() float64 { return float64(cache.read().HeapObjects) })
	reg.CounterFunc("voltage_process_gc_pause_seconds_total",
		"Cumulative stop-the-world GC pause time.",
		func() float64 { return float64(cache.read().PauseTotalNs) / 1e9 })
	reg.CounterFunc("voltage_process_gc_cycles_total",
		"Completed GC cycles.",
		func() float64 { return float64(cache.read().NumGC) })
}
