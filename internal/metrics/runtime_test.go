package metrics

import (
	"strings"
	"testing"
)

func TestRegisterRuntime(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntime(reg)
	RegisterRuntime(reg) // idempotent

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, name := range []string{
		"voltage_process_goroutines",
		"voltage_process_heap_inuse_bytes",
		"voltage_process_heap_objects",
		"voltage_process_gc_pause_seconds_total",
		"voltage_process_gc_cycles_total",
	} {
		if !strings.Contains(text, name+" ") {
			t.Errorf("scrape missing %s:\n%s", name, text)
		}
	}
	if g := reg.Snapshot().Gauge("voltage_process_goroutines"); g < 1 {
		t.Errorf("goroutines gauge %v, want >= 1", g)
	}
}
