// Package metrics is the observability substrate of the serving runtime: a
// dependency-free registry of atomic counters, gauges and fixed-bucket
// histograms, rendered in the Prometheus text exposition format and
// snapshotted through a plain-data API.
//
// Design constraints, in order:
//
//   - Off the data path. Recording is a handful of atomic operations; no
//     locks, allocations or formatting happen anywhere a request flows.
//     Label resolution (the only map lookup) is done once at wiring time and
//     the resolved instrument is kept, so the hot path is Add/Observe only.
//   - Dependency-free. Standard library only, so the tensor/comm/cluster
//     packages can be instrumented without pulling an exporter ecosystem
//     into a from-scratch reproduction.
//   - Exact accounting elsewhere is untouched: metrics observe comm.Stats
//     and trace phase timings, they never alter them, so the paper's
//     communication-volume assertions hold with metrics enabled.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically non-decreasing float64. The zero value is
// ready to use; all methods are safe for concurrent use and nil-safe so a
// disabled instrument costs one branch.
type Counter struct {
	bits atomic.Uint64
}

// Add increments the counter by v. Negative and NaN increments are ignored
// (counters only go up).
func (c *Counter) Add(v float64) {
	if c == nil || !(v > 0) {
		return
	}
	for {
		old := c.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is an instantaneous float64 value that may go up or down. The zero
// value is ready to use; methods are concurrency- and nil-safe.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta (which may be negative).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram: observations land in the first
// bucket whose upper bound is >= the value, with an implicit +Inf bucket.
// Buckets are fixed at registration, so Observe is two atomic adds plus one
// CAS for the sum — no allocation, no lock.
type Histogram struct {
	bounds []float64 // sorted upper bounds, +Inf implicit at the end
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    Counter
}

// Observe records one value. NaN observations are dropped.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	if v > 0 {
		h.sum.Add(v)
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// snapshot returns per-bucket (non-cumulative) counts.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Buckets: make([]Bucket, len(h.counts)),
		Sum:     h.Sum(),
		Count:   h.count.Load(),
	}
	for i := range h.counts {
		ub := math.Inf(1)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		s.Buckets[i] = Bucket{UpperBound: ub, Count: h.counts[i].Load()}
	}
	return s
}

// LatencyBuckets is the default request-latency bucket layout, in seconds
// (1ms–10s, roughly ×2.5 per step).
var LatencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// StepBuckets is the fused-decode-step bucket layout, in seconds
// (50µs–250ms, roughly ×2 per step). Decode steps on the emulated devices
// complete in tens of microseconds to a few milliseconds — below
// LatencyBuckets' 1ms floor, which would flatten every step into the
// first bucket.
var StepBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25,
}

// DepthBuckets is the default queue-depth bucket layout (powers of two up
// to the admission queue's capacity).
var DepthBuckets = []float64{0, 1, 2, 4, 8, 16, 32, 64}

// AttemptBuckets is the default dispatch-attempt bucket layout.
var AttemptBuckets = []float64{1, 2, 3, 4, 5}

// instrument kinds.
type kind int

const (
	kindCounter kind = iota + 1
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

func (k kind) promType() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// family is one registered metric name: a scalar instrument, a single-label
// vector of instruments, or a read-at-collect-time function.
type family struct {
	name    string
	help    string
	k       kind
	label   string // label key; "" for scalar families
	buckets []float64
	fn      func() float64

	mu       sync.Mutex
	children map[string]any // label value -> instrument; scalar under ""
}

// child returns (creating if needed) the instrument for one label value.
func (f *family) child(labelValue string) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[labelValue]; ok {
		return c
	}
	var c any
	switch f.k {
	case kindCounter:
		c = &Counter{}
	case kindGauge:
		c = &Gauge{}
	case kindHistogram:
		h := &Histogram{bounds: f.buckets}
		h.counts = make([]atomic.Uint64, len(f.buckets)+1)
		c = h
	default:
		panic(fmt.Sprintf("metrics: family %q cannot have children", f.name))
	}
	f.children[labelValue] = c
	return c
}

// sortedValues returns the family's label values in deterministic order.
func (f *family) sortedValues() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	vals := make([]string, 0, len(f.children))
	for v := range f.children {
		vals = append(vals, v)
	}
	sort.Strings(vals)
	return vals
}

// Registry holds a set of metric families. Registration is cheap and
// idempotent by name; recording through the returned instruments is
// lock-free. The zero value is not usable — construct with NewRegistry.
type Registry struct {
	mu     sync.Mutex
	order  []*family
	byName map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// register resolves or creates a family, enforcing name/kind consistency.
// A name collision with a different kind or label is a wiring bug, reported
// by panic at registration (never on the record path).
func (r *Registry) register(name, help string, k kind, label string, buckets []float64, fn func() float64) *family {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	if label != "" && !validName(label) {
		panic(fmt.Sprintf("metrics: invalid label name %q", label))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.k != k || f.label != label {
			panic(fmt.Sprintf("metrics: %q re-registered as a different instrument", name))
		}
		return f
	}
	if k == kindHistogram {
		buckets = append([]float64(nil), buckets...)
		sort.Float64s(buckets)
	}
	f := &family{
		name: name, help: help, k: k, label: label,
		buckets: buckets, fn: fn,
		children: make(map[string]any),
	}
	r.byName[name] = f
	r.order = append(r.order, f)
	return f
}

// Counter registers (or finds) a scalar counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter, "", nil, nil).child("").(*Counter)
}

// Gauge registers (or finds) a scalar gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge, "", nil, nil).child("").(*Gauge)
}

// Histogram registers (or finds) a scalar fixed-bucket histogram. buckets
// are upper bounds; they are copied and sorted, and +Inf is implicit.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if len(buckets) == 0 {
		panic(fmt.Sprintf("metrics: histogram %q needs at least one bucket", name))
	}
	return r.register(name, help, kindHistogram, "", buckets, nil).child("").(*Histogram)
}

// CounterFunc registers a counter whose value is read from fn at collect
// time (rendering and snapshots), e.g. an externally accumulated total.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, kindCounterFunc, "", nil, fn)
}

// GaugeFunc registers a gauge whose value is read from fn at collect time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, kindGaugeFunc, "", nil, fn)
}

// CounterVec is a single-label family of counters.
type CounterVec struct{ f *family }

// With returns the counter for one label value, creating it on first use.
// Resolve once at wiring time and keep the result — With takes the family
// lock.
func (v *CounterVec) With(labelValue string) *Counter {
	return v.f.child(labelValue).(*Counter)
}

// CounterVec registers (or finds) a counter family keyed by one label.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	return &CounterVec{f: r.register(name, help, kindCounter, label, nil, nil)}
}

// HistogramVec is a single-label family of fixed-bucket histograms. All
// children share the family's bucket layout.
type HistogramVec struct{ f *family }

// With returns the histogram for one label value, creating it on first use.
// Resolve once at wiring time and keep the result — With takes the family
// lock.
func (v *HistogramVec) With(labelValue string) *Histogram {
	return v.f.child(labelValue).(*Histogram)
}

// HistogramVec registers (or finds) a histogram family keyed by one label.
func (r *Registry) HistogramVec(name, help, label string, buckets []float64) *HistogramVec {
	if len(buckets) == 0 {
		panic(fmt.Sprintf("metrics: histogram %q needs at least one bucket", name))
	}
	return &HistogramVec{f: r.register(name, help, kindHistogram, label, buckets, nil)}
}

// GaugeVec is a single-label family of gauges.
type GaugeVec struct{ f *family }

// With returns the gauge for one label value, creating it on first use.
func (v *GaugeVec) With(labelValue string) *Gauge {
	return v.f.child(labelValue).(*Gauge)
}

// GaugeVec registers (or finds) a gauge family keyed by one label.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, kindGauge, label, nil, nil)}
}

// validName checks the Prometheus metric/label name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Bucket is one histogram bucket in a snapshot: the count of observations
// that landed in (previous bound, UpperBound].
type Bucket struct {
	UpperBound float64
	Count      uint64
}

// HistogramSnapshot is a point-in-time copy of one histogram. Buckets are
// per-bucket counts (not cumulative) in ascending bound order, ending with
// the +Inf bucket.
type HistogramSnapshot struct {
	Buckets []Bucket
	Sum     float64
	Count   uint64
}

// Snapshot is a point-in-time copy of every registered instrument, keyed by
// `name` for scalar instruments and `name{label="value"}` for vector
// children. Func instruments are evaluated at snapshot time.
type Snapshot struct {
	Counters   map[string]float64
	Gauges     map[string]float64
	Histograms map[string]HistogramSnapshot
}

// Counter returns a counter's snapshotted value (0 when absent).
func (s Snapshot) Counter(key string) float64 { return s.Counters[key] }

// Gauge returns a gauge's snapshotted value (0 when absent).
func (s Snapshot) Gauge(key string) float64 { return s.Gauges[key] }

// Snapshot captures every registered instrument. Nil-safe: a nil registry
// yields an empty snapshot, so callers on a metrics-disabled deployment
// need no special casing.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]float64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	for _, f := range r.families() {
		switch f.k {
		case kindCounterFunc:
			s.Counters[f.name] = f.fn()
		case kindGaugeFunc:
			s.Gauges[f.name] = f.fn()
		default:
			for _, lv := range f.sortedValues() {
				key := f.name
				if f.label != "" {
					key = fmt.Sprintf("%s{%s=%q}", f.name, f.label, lv)
				}
				switch c := f.child(lv).(type) {
				case *Counter:
					s.Counters[key] = c.Value()
				case *Gauge:
					s.Gauges[key] = c.Value()
				case *Histogram:
					s.Histograms[key] = c.snapshot()
				}
			}
		}
	}
	return s
}

// families returns the registration-ordered family list.
func (r *Registry) families() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*family(nil), r.order...)
}
