package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_events_total", "events")
	c.Inc()
	c.Add(2.5)
	c.Add(-1) // ignored: counters only go up
	c.Add(math.NaN())
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	g := r.Gauge("test_depth", "depth")
	g.Set(4)
	g.Add(-1.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
	// Nil instruments are recordable no-ops so disabled metrics need no
	// call-site guards.
	var nc *Counter
	nc.Inc()
	var ng *Gauge
	ng.Set(1)
	var nh *Histogram
	nh.Observe(1)
	if nc.Value() != 0 || ng.Value() != 0 || nh.Count() != 0 {
		t.Fatal("nil instruments must read zero")
	}
}

func TestRegistrationIsIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_total", "h")
	b := r.Counter("test_total", "h")
	if a != b {
		t.Fatal("same name must resolve to the same instrument")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a name as a different kind must panic")
		}
	}()
	r.Gauge("test_total", "h")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	snap := h.snapshot()
	wantCounts := []uint64{2, 1, 1, 1} // le=0.1 gets 0.05 and 0.1; +Inf gets 50
	if len(snap.Buckets) != len(wantCounts) {
		t.Fatalf("bucket count %d, want %d", len(snap.Buckets), len(wantCounts))
	}
	for i, want := range wantCounts {
		if snap.Buckets[i].Count != want {
			t.Errorf("bucket %d count = %d, want %d", i, snap.Buckets[i].Count, want)
		}
	}
	if !math.IsInf(snap.Buckets[3].UpperBound, 1) {
		t.Error("last bucket must be +Inf")
	}
	if snap.Count != 5 || snap.Sum != 55.65 {
		t.Errorf("count/sum = %d/%v, want 5/55.65", snap.Count, snap.Sum)
	}
}

func TestVecChildrenAndSnapshotKeys(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_bytes_total", "bytes", "rank")
	v.With("0").Add(10)
	v.With("1").Add(20)
	if v.With("0") != v.With("0") {
		t.Fatal("With must return a stable child")
	}
	r.GaugeFunc("test_uptime_seconds", "uptime", func() float64 { return 7 })
	snap := r.Snapshot()
	if got := snap.Counter(`test_bytes_total{rank="0"}`); got != 10 {
		t.Errorf("rank 0 = %v, want 10", got)
	}
	if got := snap.Counter(`test_bytes_total{rank="1"}`); got != 20 {
		t.Errorf("rank 1 = %v, want 20", got)
	}
	if got := snap.Gauge("test_uptime_seconds"); got != 7 {
		t.Errorf("func gauge = %v, want 7", got)
	}
	// A nil registry snapshots empty, not nil maps.
	var nr *Registry
	if s := nr.Snapshot(); s.Counters == nil || len(s.Counters) != 0 {
		t.Error("nil registry must snapshot empty")
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_conc_total", "x")
	h := r.Histogram("test_conc_seconds", "x", []float64{1, 2})
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(1.5)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %v, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("voltage_requests_total", "Requests served.").Add(3)
	r.CounterVec("voltage_comm_bytes_sent_total", "Payload bytes sent.", "rank").With("0").Add(64)
	r.Histogram("voltage_request_latency_seconds", "Latency.", []float64{0.5, 1}).Observe(0.7)
	r.GaugeVec("voltage_health_state", "Health.", "rank").With("0").Set(2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE voltage_requests_total counter",
		"voltage_requests_total 3",
		`voltage_comm_bytes_sent_total{rank="0"} 64`,
		"# TYPE voltage_request_latency_seconds histogram",
		`voltage_request_latency_seconds_bucket{le="0.5"} 0`,
		`voltage_request_latency_seconds_bucket{le="1"} 1`,
		`voltage_request_latency_seconds_bucket{le="+Inf"} 1`,
		"voltage_request_latency_seconds_sum 0.7",
		"voltage_request_latency_seconds_count 1",
		`voltage_health_state{rank="0"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Deterministic: two renders are byte-identical.
	var b2 strings.Builder
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Error("consecutive renders differ")
	}
}

func TestValidNames(t *testing.T) {
	for _, bad := range []string{"", "9abc", "a-b", "a b", "a.b"} {
		func() {
			defer func() { recover() }()
			NewRegistry().Counter(bad, "x")
			t.Errorf("name %q must be rejected", bad)
		}()
	}
	NewRegistry().Counter("ok_name:total_9", "x") // must not panic
}
