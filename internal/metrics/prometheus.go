package metrics

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Prometheus text exposition format (version 0.0.4) rendering. Families
// render in registration order, children in sorted label-value order, so
// consecutive scrapes of an idle registry are byte-identical — easy to diff
// and easy to grep in CI.

// ContentType is the HTTP Content-Type of the rendered exposition.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered family to w in the Prometheus
// text format. It holds no locks while formatting beyond per-family child
// listing, so scrapes never stall recording.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b strings.Builder
	for _, f := range r.families() {
		b.Reset()
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.k.promType())
		switch f.k {
		case kindCounterFunc, kindGaugeFunc:
			fmt.Fprintf(&b, "%s %s\n", f.name, formatValue(f.fn()))
		case kindHistogram:
			for _, lv := range f.sortedValues() {
				writeHistogram(&b, f, lv)
			}
		default:
			for _, lv := range f.sortedValues() {
				var v float64
				switch c := f.child(lv).(type) {
				case *Counter:
					v = c.Value()
				case *Gauge:
					v = c.Value()
				}
				fmt.Fprintf(&b, "%s %s\n", seriesName(f, lv, ""), formatValue(v))
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram renders one histogram child: cumulative _bucket series,
// then _sum and _count.
func writeHistogram(b *strings.Builder, f *family, labelValue string) {
	h := f.child(labelValue).(*Histogram)
	snap := h.snapshot()
	var cum uint64
	for _, bucket := range snap.Buckets {
		cum += bucket.Count
		fmt.Fprintf(b, "%s %d\n", bucketSeries(f, labelValue, bucket.UpperBound), cum)
	}
	fmt.Fprintf(b, "%s %s\n", seriesName(f, labelValue, "_sum"), formatValue(snap.Sum))
	fmt.Fprintf(b, "%s %d\n", seriesName(f, labelValue, "_count"), snap.Count)
}

// seriesName renders `name[suffix]{label="value"}`. Go's %q escaping
// (backslash, quote, newline) matches the exposition format's label-value
// escaping.
func seriesName(f *family, labelValue, suffix string) string {
	if f.label == "" {
		return f.name + suffix
	}
	return fmt.Sprintf("%s%s{%s=%q}", f.name, suffix, f.label, labelValue)
}

// bucketSeries renders `name_bucket{...,le="bound"}`.
func bucketSeries(f *family, labelValue string, ub float64) string {
	le := formatBound(ub)
	if f.label == "" {
		return fmt.Sprintf("%s_bucket{le=%q}", f.name, le)
	}
	return fmt.Sprintf("%s_bucket{%s=%q,le=%q}", f.name, f.label, labelValue, le)
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// formatBound renders a bucket upper bound for the le label.
func formatBound(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP line per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
