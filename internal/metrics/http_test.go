package metrics

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestAdminEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_admin_total", "x").Add(5)
	healthy := true
	srv, err := StartAdmin("127.0.0.1:0", r, func() Health {
		return Health{OK: healthy, Detail: map[string]string{"mode": "test"}}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, string(body)
	}

	resp, body := get("/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ContentType {
		t.Errorf("/metrics content type %q", ct)
	}
	if !strings.Contains(body, "test_admin_total 5") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}

	resp, body = get("/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status %d", resp.StatusCode)
	}
	var h Health
	if err := json.Unmarshal([]byte(body), &h); err != nil || !h.OK {
		t.Fatalf("/healthz body %q (err %v)", body, err)
	}

	healthy = false
	resp, _ = get("/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unhealthy /healthz status %d, want 503", resp.StatusCode)
	}

	resp, _ = get("/debug/pprof/cmdline")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", resp.StatusCode)
	}
}

func TestAdminServerNilSafety(t *testing.T) {
	var s *AdminServer
	if s.Addr() != "" {
		t.Error("nil Addr must be empty")
	}
	if err := s.Close(); err != nil {
		t.Error("nil Close must be a no-op")
	}
}
