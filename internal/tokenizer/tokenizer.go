// Package tokenizer provides the lightweight text front-end for the text
// models: a deterministic word-level tokenizer with a hashing vocabulary.
//
// The paper's evaluation feeds BERT and GPT-2 "a random string with 200
// words"; inference latency depends only on the token count, never on
// which ids appear, so a hashing tokenizer preserves every measured
// quantity while avoiding a shipped vocabulary file.
package tokenizer

import (
	"fmt"
	"hash/fnv"
	"strings"
)

// Special token ids, reserved below the hash range.
const (
	// PadID pads batches (unused at batch size 1 but reserved).
	PadID = 0
	// UnknownID is returned for empty words (never produced by Split).
	UnknownID = 1
	// ClsID starts every encoded sequence (BERT-style classification).
	ClsID = 2
	// SepID ends every encoded sequence.
	SepID = 3

	numSpecial = 4
)

// Tokenizer hashes words into a fixed-size vocabulary.
type Tokenizer struct {
	vocabSize int
}

// New returns a tokenizer for a model with the given vocabulary size.
func New(vocabSize int) (*Tokenizer, error) {
	if vocabSize <= numSpecial {
		return nil, fmt.Errorf("tokenizer: vocab size %d too small", vocabSize)
	}
	return &Tokenizer{vocabSize: vocabSize}, nil
}

// VocabSize returns the vocabulary size.
func (t *Tokenizer) VocabSize() int { return t.vocabSize }

// WordID maps one word deterministically into [numSpecial, vocabSize).
func (t *Tokenizer) WordID(word string) int {
	if word == "" {
		return UnknownID
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(strings.ToLower(word)))
	return numSpecial + int(h.Sum32()%uint32(t.vocabSize-numSpecial))
}

// Encode splits text on whitespace and maps each word to a token id,
// wrapping the sequence in [CLS] … [SEP].
func (t *Tokenizer) Encode(text string) []int {
	words := strings.Fields(text)
	ids := make([]int, 0, len(words)+2)
	ids = append(ids, ClsID)
	for _, w := range words {
		ids = append(ids, t.WordID(w))
	}
	return append(ids, SepID)
}

// EncodeWords maps exactly n synthetic words (the paper's random-string
// workload) into a token sequence of length n+2, deterministically from
// the seed.
func (t *Tokenizer) EncodeWords(n int, seed int64) []int {
	ids := make([]int, 0, n+2)
	ids = append(ids, ClsID)
	state := uint64(seed)*6364136223846793005 + 1442695040888963407
	for i := 0; i < n; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		ids = append(ids, numSpecial+int((state>>33)%uint64(t.vocabSize-numSpecial)))
	}
	return append(ids, SepID)
}
