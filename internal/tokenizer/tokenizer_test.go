package tokenizer

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(2); err == nil {
		t.Fatal("want error for tiny vocab")
	}
	tok, err := New(100)
	if err != nil {
		t.Fatal(err)
	}
	if tok.VocabSize() != 100 {
		t.Fatal("VocabSize")
	}
}

func TestEncodeStructure(t *testing.T) {
	tok, _ := New(1000)
	ids := tok.Encode("hello edge world")
	if len(ids) != 5 {
		t.Fatalf("len = %d, want 5", len(ids))
	}
	if ids[0] != ClsID || ids[len(ids)-1] != SepID {
		t.Fatalf("missing CLS/SEP: %v", ids)
	}
	for _, id := range ids {
		if id < 0 || id >= 1000 {
			t.Fatalf("id %d outside vocab", id)
		}
	}
}

func TestEncodeDeterministicCaseInsensitive(t *testing.T) {
	tok, _ := New(1000)
	a := tok.Encode("Hello World")
	b := tok.Encode("hello world")
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("tokenizer case sensitive")
		}
	}
}

func TestWordIDRange(t *testing.T) {
	tok, _ := New(50)
	f := func(word string) bool {
		id := tok.WordID(word)
		return id >= UnknownID && id < 50
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	if tok.WordID("") != UnknownID {
		t.Fatal("empty word should map to UnknownID")
	}
}

func TestEncodeWords(t *testing.T) {
	tok, _ := New(30522)
	ids := tok.EncodeWords(200, 7)
	if len(ids) != 202 {
		t.Fatalf("len = %d, want 202", len(ids))
	}
	again := tok.EncodeWords(200, 7)
	for i := range ids {
		if ids[i] != again[i] {
			t.Fatal("EncodeWords not deterministic")
		}
	}
	other := tok.EncodeWords(200, 8)
	same := true
	for i := range ids {
		if ids[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical sequences")
	}
	for _, id := range ids {
		if id < 0 || id >= 30522 {
			t.Fatalf("id %d outside vocab", id)
		}
	}
}
