package harness

import (
	"runtime"
	"time"

	"voltage/internal/costmodel"
	"voltage/internal/netem"
	"voltage/internal/tensor"
)

// The paper's figures depend on the *ratio* of device compute speed to
// network bandwidth: its VMs sustained tens of GFLOP/s (MKL-backed
// PyTorch) against 200–1000 Mbps links. This repository's pure-Go kernels
// are an order of magnitude slower, so running measured experiments at the
// paper's literal bandwidths would make communication look nearly free and
// invert the comparison (tensor parallelism's perfect compute split would
// win). Calibration rescales the emulated bandwidth by
//
//	measured-kernel-throughput / paper-device-throughput
//
// so one emulated "500 Mbps" buys the same number of per-byte FLOPs as in
// the paper — preserving the compute:communication balance every figure
// shape depends on. See DESIGN.md (substitutions) and EXPERIMENTS.md.

// MeasureDeviceFlops estimates this host's single-threaded sustained
// matmul throughput in multiply-accumulate operations per second — the
// same unit as the paper's Γ(·) and costmodel.DeviceProfile.
func MeasureDeviceFlops() float64 {
	const dim = 192
	rng := tensor.NewRNG(1)
	a := rng.Normal(dim, dim, 1)
	b := rng.Normal(dim, dim, 1)
	// Warm up.
	if _, err := tensor.MatMulSerial(a, b); err != nil {
		return costmodel.EdgeCPU.FlopsPerSec
	}
	const reps = 6
	start := time.Now()
	for i := 0; i < reps; i++ {
		if _, err := tensor.MatMulSerial(a, b); err != nil {
			return costmodel.EdgeCPU.FlopsPerSec
		}
	}
	elapsed := time.Since(start).Seconds()
	if elapsed <= 0 {
		return costmodel.EdgeCPU.FlopsPerSec
	}
	macs := float64(reps) * float64(dim) * float64(dim) * float64(dim)
	return macs / elapsed
}

// BandwidthScale returns the factor that maps paper bandwidths onto this
// host: local kernel throughput divided by the paper's device throughput.
func BandwidthScale(deviceFlops float64) float64 {
	if deviceFlops <= 0 {
		return 1
	}
	return deviceFlops / costmodel.EdgeCPU.FlopsPerSec
}

// CalibratedProfile rescales a paper-scale network profile for measured
// experiments on this host. Latency is kept as-is (it is small relative to
// serialization in every experiment).
func CalibratedProfile(p netem.Profile, deviceFlops float64) netem.Profile {
	scale := BandwidthScale(deviceFlops)
	return netem.Profile{
		BandwidthMbps: p.BandwidthMbps * scale,
		Latency:       p.Latency,
	}
}

// Calibration fixes the emulated device speed and the matching bandwidth
// scale for measured experiments.
type Calibration struct {
	// DeviceFlops is the paced per-device rate (MAC/s). Every emulated
	// device runs at exactly this speed regardless of host load.
	DeviceFlops float64
	// BwScale maps paper bandwidths to emulated ones so bytes-per-FLOP
	// matches the paper's testbed.
	BwScale float64
}

// Zero reports whether the calibration is unset (no pacing, literal
// bandwidths).
func (c Calibration) Zero() bool { return c.DeviceFlops <= 0 }

// Apply rescales a paper-scale profile.
func (c Calibration) Apply(p netem.Profile) netem.Profile {
	if c.Zero() {
		return p
	}
	return netem.Profile{BandwidthMbps: p.BandwidthMbps * c.BwScale, Latency: p.Latency}
}

// Calibrate measures the host and picks a device rate such that maxK paced
// devices fit the available cores with margin — each emulated device then
// genuinely sustains its rate even when the host has fewer cores than
// devices. The bandwidth scale follows so the paper's compute:comm balance
// holds.
func Calibrate(maxK int) Calibration {
	host := MeasureDeviceFlops()
	cores := float64(runtime.NumCPU())
	if maxK < 1 {
		maxK = 1
	}
	d := host * cores / (float64(maxK) * 1.3)
	if d > costmodel.EdgeCPU.FlopsPerSec {
		d = costmodel.EdgeCPU.FlopsPerSec
	}
	return Calibration{DeviceFlops: d, BwScale: BandwidthScale(d)}
}
