// Package harness regenerates every figure and in-text table of the
// paper's evaluation section as printable data series.
//
// Each experiment comes in up to two modes:
//
//   - Predicted: the analytic cost model at the paper's full scale
//     (BERT-Large at 24 layers, etc.) — instant and deterministic.
//   - Measured: real execution on the emulated cluster. The transformer
//     stacks run genuinely (our Go tensor kernels are slower than MKL, so
//     measured mode uses depth-scaled models — the per-layer behaviour,
//     which is what the figures show, is unchanged).
//
// The harness pins the tensor worker count to 1 during measured runs so
// every emulated device computes single-threaded, as in the paper's
// single-vCPU VMs.
package harness

import (
	"context"
	"fmt"
	"time"

	"voltage/internal/attention"
	"voltage/internal/cluster"
	"voltage/internal/costmodel"
	"voltage/internal/flopcount"
	"voltage/internal/model"
	"voltage/internal/netem"
	"voltage/internal/tensor"
)

// DefaultModels returns the paper's three evaluation models.
func DefaultModels() []model.Config {
	return []model.Config{model.BERTLarge(), model.ViTBase(), model.GPT2()}
}

// seqLen mirrors the paper's workloads: a 200-token input for the text
// models (clamped to the model's maximum for small test configurations)
// and a 224×224 image (197 positions) for ViT.
func seqLen(cfg model.Config) int {
	n := cfg.SeqLen(200)
	if cfg.Kind != model.KindVision && n > cfg.MaxSeq {
		n = cfg.MaxSeq
	}
	return n
}

// singleThreaded pins the matmul worker count to 1 for the duration of fn,
// emulating single-vCPU devices.
func singleThreaded(fn func()) {
	prev := tensor.SetWorkers(1)
	defer tensor.SetWorkers(prev)
	fn()
}

// ---------------------------------------------------------------------------
// Fig. 4 — inference latency vs device count.

// Fig4Row is one point of Fig. 4: latencies at a device count.
type Fig4Row struct {
	Model      string
	K          int
	SingleSec  float64
	VoltageSec float64
	TPSec      float64
}

// Fig4Predicted regenerates Fig. 4 from the cost model at full paper scale.
func Fig4Predicted(cfg model.Config, maxK int, bandwidthMbps float64) ([]Fig4Row, error) {
	rows := make([]Fig4Row, 0, maxK)
	for k := 1; k <= maxK; k++ {
		sys := costmodel.System{
			Model: cfg, N: seqLen(cfg), K: k,
			Net:    netem.Profile{BandwidthMbps: bandwidthMbps, Latency: 200 * time.Microsecond},
			Device: costmodel.EdgeCPU,
		}
		single, err := sys.Predict(cluster.StrategySingle)
		if err != nil {
			return nil, err
		}
		v, err := sys.Predict(cluster.StrategyVoltage)
		if err != nil {
			return nil, err
		}
		tp, err := sys.Predict(cluster.StrategyTensorParallel)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig4Row{
			Model: cfg.Name, K: k,
			SingleSec:  single.Total().Seconds(),
			VoltageSec: v.Total().Seconds(),
			TPSec:      tp.Total().Seconds(),
		})
	}
	return rows, nil
}

// Fig4Measured regenerates Fig. 4 by real execution on the emulated
// cluster. cfg should be depth-scaled (e.g. cfg.Scaled(2)) to keep pure-Go
// compute tractable; the relative curve shapes are depth-independent.
// profile carries the paper-scale bandwidth; cal (if non-zero) paces the
// devices and rescales the bandwidth to this host.
func Fig4Measured(ctx context.Context, cfg model.Config, maxK int, profile netem.Profile, cal Calibration, seed int64) ([]Fig4Row, error) {
	var rows []Fig4Row
	var outerErr error
	singleThreaded(func() {
		n := seqLen(cfg)
		for k := 1; k <= maxK; k++ {
			c, err := cluster.NewMem(cfg, k, cluster.Options{
				Profile:     cal.Apply(profile),
				Seed:        seed,
				DeviceFlops: cal.DeviceFlops,
			})
			if err != nil {
				outerErr = err
				return
			}
			x, err := embedWorkload(c, n)
			if err != nil {
				c.Close()
				outerErr = err
				return
			}
			row := Fig4Row{Model: cfg.Name, K: k}
			for _, st := range []cluster.Strategy{cluster.StrategySingle, cluster.StrategyVoltage, cluster.StrategyTensorParallel} {
				res, err := c.Infer(ctx, st, x)
				if err != nil {
					c.Close()
					outerErr = fmt.Errorf("K=%d %v: %w", k, st, err)
					return
				}
				switch st {
				case cluster.StrategySingle:
					row.SingleSec = res.Latency.Seconds()
				case cluster.StrategyVoltage:
					row.VoltageSec = res.Latency.Seconds()
				case cluster.StrategyTensorParallel:
					row.TPSec = res.Latency.Seconds()
				}
			}
			c.Close()
			rows = append(rows, row)
		}
	})
	return rows, outerErr
}

// embedWorkload builds the paper's synthetic request input: a random token
// sequence for text models, a random image for vision models.
func embedWorkload(c *cluster.Cluster, n int) (*tensor.Matrix, error) {
	cfg := c.Config()
	if cfg.Kind == model.KindVision {
		im := model.RandomImage(tensor.NewRNG(12345), cfg.Channels, cfg.ImageSize)
		return c.Model(0).Embed.EmbedImage(im)
	}
	rng := tensor.NewRNG(12345)
	ids := make([]int, n)
	for i := range ids {
		ids[i] = rng.Intn(cfg.VocabSize)
	}
	return c.Model(0).Embed.EmbedTokens(ids)
}

// ---------------------------------------------------------------------------
// Fig. 5 — inference latency vs bandwidth at fixed K.

// Fig5Row is one point of Fig. 5.
type Fig5Row struct {
	Model         string
	BandwidthMbps float64
	SingleSec     float64 // the orange dashed reference line
	VoltageSec    float64
	TPSec         float64
}

// DefaultBandwidths is the paper's sweep.
var DefaultBandwidths = []float64{200, 400, 600, 800, 1000}

// Fig5Predicted regenerates Fig. 5 from the cost model.
func Fig5Predicted(cfg model.Config, k int, bandwidths []float64) ([]Fig5Row, error) {
	singleSys := costmodel.System{
		Model: cfg, N: seqLen(cfg), K: 1,
		Net:    netem.Profile{BandwidthMbps: 500, Latency: 200 * time.Microsecond},
		Device: costmodel.EdgeCPU,
	}
	single, err := singleSys.Predict(cluster.StrategySingle)
	if err != nil {
		return nil, err
	}
	rows := make([]Fig5Row, 0, len(bandwidths))
	for _, bw := range bandwidths {
		sys := costmodel.System{
			Model: cfg, N: seqLen(cfg), K: k,
			Net:    netem.Profile{BandwidthMbps: bw, Latency: 200 * time.Microsecond},
			Device: costmodel.EdgeCPU,
		}
		v, err := sys.Predict(cluster.StrategyVoltage)
		if err != nil {
			return nil, err
		}
		tp, err := sys.Predict(cluster.StrategyTensorParallel)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig5Row{
			Model: cfg.Name, BandwidthMbps: bw,
			SingleSec:  single.Total().Seconds(),
			VoltageSec: v.Total().Seconds(),
			TPSec:      tp.Total().Seconds(),
		})
	}
	return rows, nil
}

// Fig5Measured regenerates Fig. 5 by real execution, sweeping the emulated
// bandwidth on a fixed K-device cluster. cal (if non-zero) paces the
// devices and rescales the swept bandwidths to this host; the rows report
// the paper-scale bandwidths.
func Fig5Measured(ctx context.Context, cfg model.Config, k int, bandwidths []float64, cal Calibration, seed int64) ([]Fig5Row, error) {
	bwScale := cal.BwScale
	if cal.Zero() {
		bwScale = 1
	}
	var rows []Fig5Row
	var outerErr error
	singleThreaded(func() {
		n := seqLen(cfg)
		c, err := cluster.NewMem(cfg, k, cluster.Options{
			Profile:     netem.Profile{BandwidthMbps: 500 * bwScale, Latency: 200 * time.Microsecond},
			Seed:        seed,
			DeviceFlops: cal.DeviceFlops,
		})
		if err != nil {
			outerErr = err
			return
		}
		defer c.Close()
		x, err := embedWorkload(c, n)
		if err != nil {
			outerErr = err
			return
		}
		single, err := c.Infer(ctx, cluster.StrategySingle, x)
		if err != nil {
			outerErr = err
			return
		}
		for _, bw := range bandwidths {
			c.SetBandwidth(bw * bwScale)
			v, err := c.Infer(ctx, cluster.StrategyVoltage, x)
			if err != nil {
				outerErr = fmt.Errorf("bw %v voltage: %w", bw, err)
				return
			}
			tp, err := c.Infer(ctx, cluster.StrategyTensorParallel, x)
			if err != nil {
				outerErr = fmt.Errorf("bw %v tp: %w", bw, err)
				return
			}
			rows = append(rows, Fig5Row{
				Model: cfg.Name, BandwidthMbps: bw,
				SingleSec:  single.Latency.Seconds(),
				VoltageSec: v.Latency.Seconds(),
				TPSec:      tp.Latency.Seconds(),
			})
		}
	})
	return rows, outerErr
}

// ---------------------------------------------------------------------------
// Fig. 6 — self-attention partition speed-up.

// Fig6Setting is one subplot of Fig. 6 (an attention configuration).
type Fig6Setting struct {
	H, FH int
}

// DefaultFig6Settings are the paper's three synthetic layers.
var DefaultFig6Settings = []Fig6Setting{{H: 16, FH: 64}, {H: 8, FH: 128}, {H: 4, FH: 256}}

// DefaultFig6Lengths are the paper's input lengths.
var DefaultFig6Lengths = []int{100, 200, 300}

// Fig6Row is one point of Fig. 6: the speed-up of computing a 1/K output
// partition relative to computing the full output, for the adaptive
// (Voltage) and the naive method.
type Fig6Row struct {
	H, FH, N, K    int
	VoltageSpeedup float64
	NaiveSpeedup   float64
	OrderUsed      flopcount.Order
}

// Fig6Measured regenerates Fig. 6 by timing real multi-head attention
// computations (isolated from the rest of the layer, as in the paper).
func Fig6Measured(settings []Fig6Setting, lengths []int, maxK int, seed int64) ([]Fig6Row, error) {
	var rows []Fig6Row
	var outerErr error
	singleThreaded(func() {
		for _, st := range settings {
			f := st.H * st.FH
			mh, err := attention.RandomMultiHead(tensor.NewRNG(seed), st.H, f, st.FH)
			if err != nil {
				outerErr = err
				return
			}
			for _, n := range lengths {
				x := tensor.NewRNG(seed+int64(n)).Normal(n, f, 1)
				tFull := timeIt(func() {
					if _, err := mh.Forward(x, x, flopcount.OrderNaive); err != nil {
						outerErr = err
					}
				})
				for k := 2; k <= maxK; k++ {
					p := n / k
					if p < 1 {
						p = 1
					}
					xp, err := x.RowSlice(0, p)
					if err != nil {
						outerErr = err
						return
					}
					var order flopcount.Order
					tVoltage := timeIt(func() {
						_, o, err := mh.ForwardAdaptive(x, xp)
						if err != nil {
							outerErr = err
						}
						order = o
					})
					tNaive := timeIt(func() {
						if _, err := mh.Forward(x, xp, flopcount.OrderNaive); err != nil {
							outerErr = err
						}
					})
					if outerErr != nil {
						return
					}
					rows = append(rows, Fig6Row{
						H: st.H, FH: st.FH, N: n, K: k,
						VoltageSpeedup: tFull.Seconds() / tVoltage.Seconds(),
						NaiveSpeedup:   tFull.Seconds() / tNaive.Seconds(),
						OrderUsed:      order,
					})
				}
			}
		}
	})
	return rows, outerErr
}

// Fig6Predicted regenerates Fig. 6 analytically from the FLOP model
// (speed-up = Γ(full)/Γ(partition)).
func Fig6Predicted(settings []Fig6Setting, lengths []int, maxK int) []Fig6Row {
	var rows []Fig6Row
	for _, st := range settings {
		f := st.H * st.FH
		for _, n := range lengths {
			fullShape := flopcount.Shape{N: n, P: n, F: f, FH: st.FH}
			full := float64(flopcount.MustCost(fullShape, flopcount.OrderNaive))
			for k := 2; k <= maxK; k++ {
				p := n / k
				if p < 1 {
					p = 1
				}
				shape := flopcount.Shape{N: n, P: p, F: f, FH: st.FH}
				order := flopcount.SelectOrder(shape)
				rows = append(rows, Fig6Row{
					H: st.H, FH: st.FH, N: n, K: k,
					VoltageSpeedup: full / float64(flopcount.MustCost(shape, order)),
					NaiveSpeedup:   full / float64(flopcount.MustCost(shape, flopcount.OrderNaive)),
					OrderUsed:      order,
				})
			}
		}
	}
	return rows
}

// timeIt measures fn with one warm-up run and reports the faster of two
// timed runs (pure compute, so minimal noise handling suffices).
func timeIt(fn func()) time.Duration {
	fn() // warm-up
	best := time.Duration(1<<62 - 1)
	for i := 0; i < 2; i++ {
		start := time.Now()
		fn()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// ---------------------------------------------------------------------------
// Table A — communication volume.

// CommRow compares measured per-inference worker traffic against the
// paper's analytic formulas.
type CommRow struct {
	K int
	// Measured payload bytes sent by all workers during one inference.
	VoltageBytes, TPBytes int64
	// Analytic per-device per-layer volumes.
	VoltageFormula, TPFormula float64
	Ratio                     float64 // TPBytes / VoltageBytes
}

// CommVolume measures Table A on a real (tiny, unshaped) cluster.
func CommVolume(ctx context.Context, cfg model.Config, maxK int, seed int64) ([]CommRow, error) {
	var rows []CommRow
	n := seqLen(cfg)
	for k := 2; k <= maxK; k++ {
		c, err := cluster.NewMem(cfg, k, cluster.Options{Seed: seed})
		if err != nil {
			return nil, err
		}
		x, err := embedWorkload(c, n)
		if err != nil {
			c.Close()
			return nil, err
		}
		v, err := c.Infer(ctx, cluster.StrategyVoltage, x)
		if err != nil {
			c.Close()
			return nil, err
		}
		tp, err := c.Infer(ctx, cluster.StrategyTensorParallel, x)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.Close()
		sys := costmodel.System{Model: cfg, N: n, K: k, Device: costmodel.EdgeCPU}
		rows = append(rows, CommRow{
			K:              k,
			VoltageBytes:   v.TotalBytesSent(),
			TPBytes:        tp.TotalBytesSent(),
			VoltageFormula: sys.CommBytesPerLayer(cluster.StrategyVoltage),
			TPFormula:      sys.CommBytesPerLayer(cluster.StrategyTensorParallel),
			Ratio:          float64(tp.TotalBytesSent()) / float64(v.TotalBytesSent()),
		})
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Table B — theorem verification.

// TheoremReport summarizes an exhaustive check of Theorem 2 over a shape
// sweep.
type TheoremReport struct {
	ShapesChecked   int
	PredicateErrors int // Theorem 2 pick not the brute-force optimum
	ReorderedWins   int // shapes where the reordered branch was selected
}

// VerifyTheorems sweeps multi-head-consistent shapes and checks that the
// Theorem 2 predicate always picks the brute-force optimal order.
func VerifyTheorems(maxN int) TheoremReport {
	var rep TheoremReport
	for _, h := range []int{2, 4, 8, 16} {
		for _, fh := range []int{16, 64, 128, 256} {
			for n := 10; n <= maxN; n += 29 {
				for p := 1; p <= n; p += 1 + n/17 {
					s := flopcount.Shape{N: n, P: p, F: h * fh, FH: fh}
					rep.ShapesChecked++
					pick := flopcount.SelectOrder(s)
					if pick == flopcount.OrderReordered {
						rep.ReorderedWins++
					}
					_, best, err := flopcount.BestOrderBruteForce(s)
					if err != nil {
						rep.PredicateErrors++
						continue
					}
					if flopcount.MustCost(s, pick) != best {
						rep.PredicateErrors++
					}
				}
			}
		}
	}
	return rep
}
