package harness

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"voltage/internal/cluster"
	"voltage/internal/model"
	"voltage/internal/netem"
	"voltage/internal/tensor"
	"voltage/internal/trace"
)

// This file implements the extension experiments beyond the paper's own
// figures: the compute/communication breakdown, the pipeline-parallelism
// batch study, and the quantized-communication ablation. See DESIGN.md §4.

// ---------------------------------------------------------------------------
// Breakdown — where the time goes, per strategy.

// BreakdownRow is one strategy's measured compute/comm split.
type BreakdownRow struct {
	Strategy     string
	ComputeSec   float64
	CommSec      float64
	CommFraction float64
	LatencySec   float64
}

// BreakdownMeasured measures the per-device mean compute and communication
// time of Voltage and tensor parallelism on a real run.
func BreakdownMeasured(ctx context.Context, cfg model.Config, k int, profile netem.Profile, cal Calibration, seed int64) ([]BreakdownRow, error) {
	var rows []BreakdownRow
	var outerErr error
	singleThreaded(func() {
		for _, strategy := range []cluster.Strategy{cluster.StrategyVoltage, cluster.StrategyTensorParallel} {
			rec, err := trace.NewRecorder(k)
			if err != nil {
				outerErr = err
				return
			}
			c, err := cluster.NewMem(cfg, k, cluster.Options{
				Profile:     cal.Apply(profile),
				Seed:        seed,
				DeviceFlops: cal.DeviceFlops,
				Recorder:    rec,
			})
			if err != nil {
				outerErr = err
				return
			}
			x, err := embedWorkload(c, seqLen(cfg))
			if err != nil {
				c.Close()
				outerErr = err
				return
			}
			res, err := c.Infer(ctx, strategy, x)
			c.Close()
			if err != nil {
				outerErr = fmt.Errorf("%v: %w", strategy, err)
				return
			}
			mean := rec.Snapshot().Mean()
			rows = append(rows, BreakdownRow{
				Strategy:     strategy.String(),
				ComputeSec:   mean.Compute.Seconds(),
				CommSec:      mean.Comm.Seconds(),
				CommFraction: mean.CommFraction(),
				LatencySec:   res.Latency.Seconds(),
			})
		}
	})
	return rows, outerErr
}

// BreakdownTable formats breakdown rows.
func BreakdownTable(title string, rows []BreakdownRow) Table {
	t := Table{Title: title, Header: []string{"strategy", "compute(s)", "comm(s)", "comm-fraction", "latency(s)"}}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Strategy, f3(r.ComputeSec), f3(r.CommSec), f2(r.CommFraction), f3(r.LatencySec),
		})
	}
	return t
}

// ---------------------------------------------------------------------------
// Pipeline — throughput vs individual latency across batch sizes.

// PipelineRow is one batch size's pipeline measurement next to the
// Voltage/single references.
type PipelineRow struct {
	Batch              int
	PipelineFirstSec   float64 // first-request latency
	PipelineThroughput float64 // requests/second over the makespan
	SingleSec          float64
	VoltageSec         float64
}

// PipelineMeasured quantifies the paper's §V-C argument: pipeline
// parallelism never improves an individual request's latency (batch 1) but
// its throughput grows with the batch, while Voltage improves latency at
// batch 1 directly.
func PipelineMeasured(ctx context.Context, cfg model.Config, k int, batches []int, cal Calibration, seed int64) ([]PipelineRow, error) {
	var rows []PipelineRow
	var outerErr error
	singleThreaded(func() {
		c, err := cluster.NewMem(cfg, k, cluster.Options{
			Profile:     cal.Apply(netem.Profile{BandwidthMbps: 500, Latency: 200 * time.Microsecond}),
			Seed:        seed,
			DeviceFlops: cal.DeviceFlops,
		})
		if err != nil {
			outerErr = err
			return
		}
		defer c.Close()
		x, err := embedWorkload(c, seqLen(cfg))
		if err != nil {
			outerErr = err
			return
		}
		single, err := c.Infer(ctx, cluster.StrategySingle, x)
		if err != nil {
			outerErr = err
			return
		}
		voltage, err := c.Infer(ctx, cluster.StrategyVoltage, x)
		if err != nil {
			outerErr = err
			return
		}
		for _, b := range batches {
			if b < 1 {
				continue
			}
			xs := make([]*tensor.Matrix, b)
			for i := range xs {
				xs[i] = x
			}
			res, err := c.InferPipeline(ctx, xs)
			if err != nil {
				outerErr = fmt.Errorf("batch %d: %w", b, err)
				return
			}
			rows = append(rows, PipelineRow{
				Batch:              b,
				PipelineFirstSec:   res.FirstLatency.Seconds(),
				PipelineThroughput: res.Throughput(),
				SingleSec:          single.Latency.Seconds(),
				VoltageSec:         voltage.Latency.Seconds(),
			})
		}
	})
	return rows, outerErr
}

// PipelineTable formats pipeline rows.
func PipelineTable(title string, rows []PipelineRow) Table {
	t := Table{Title: title, Header: []string{
		"batch", "pipeline-first(s)", "pipeline-throughput(req/s)", "single(s)", "voltage(s)",
	}}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(r.Batch), f3(r.PipelineFirstSec), f2(r.PipelineThroughput),
			f3(r.SingleSec), f3(r.VoltageSec),
		})
	}
	return t
}

// ---------------------------------------------------------------------------
// Quantized communication — the future-work ablation.

// QuantRow compares exact and int8-quantized All-Gathers at one bandwidth.
type QuantRow struct {
	BandwidthMbps float64
	ExactSec      float64
	QuantSec      float64
	ExactBytes    int64
	QuantBytes    int64
	MaxDeviation  float64 // max abs difference of the final hidden states
}

// QuantizedCommMeasured sweeps bandwidths comparing exact vs quantized
// Voltage inference.
func QuantizedCommMeasured(ctx context.Context, cfg model.Config, k int, bandwidths []float64, cal Calibration, seed int64) ([]QuantRow, error) {
	var rows []QuantRow
	var outerErr error
	singleThreaded(func() {
		bwScale := cal.BwScale
		if cal.Zero() {
			bwScale = 1
		}
		for _, bw := range bandwidths {
			profile := netem.Profile{BandwidthMbps: bw * bwScale, Latency: 200 * time.Microsecond}
			var exact, quant *cluster.Result
			for _, quantized := range []bool{false, true} {
				c, err := cluster.NewMem(cfg, k, cluster.Options{
					Profile: profile, Seed: seed,
					DeviceFlops: cal.DeviceFlops, QuantizedComm: quantized,
				})
				if err != nil {
					outerErr = err
					return
				}
				x, err := embedWorkload(c, seqLen(cfg))
				if err != nil {
					c.Close()
					outerErr = err
					return
				}
				res, err := c.Infer(ctx, cluster.StrategyVoltage, x)
				c.Close()
				if err != nil {
					outerErr = fmt.Errorf("bw %v quantized=%v: %w", bw, quantized, err)
					return
				}
				if quantized {
					quant = res
				} else {
					exact = res
				}
			}
			dev, err := quant.Output.MaxAbsDiff(exact.Output)
			if err != nil {
				outerErr = err
				return
			}
			rows = append(rows, QuantRow{
				BandwidthMbps: bw,
				ExactSec:      exact.Latency.Seconds(),
				QuantSec:      quant.Latency.Seconds(),
				ExactBytes:    exact.TotalBytesSent(),
				QuantBytes:    quant.TotalBytesSent(),
				MaxDeviation:  dev,
			})
		}
	})
	return rows, outerErr
}

// QuantTable formats quantization rows.
func QuantTable(title string, rows []QuantRow) Table {
	t := Table{Title: title, Header: []string{
		"bandwidth(Mbps)", "exact(s)", "int8(s)", "exact-bytes", "int8-bytes", "max-deviation",
	}}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			strconv.FormatFloat(r.BandwidthMbps, 'f', 0, 64),
			f3(r.ExactSec), f3(r.QuantSec),
			strconv.FormatInt(r.ExactBytes, 10), strconv.FormatInt(r.QuantBytes, 10),
			strconv.FormatFloat(r.MaxDeviation, 'f', 4, 64),
		})
	}
	return t
}
