package harness

import (
	"context"
	"strings"
	"testing"

	"voltage/internal/model"
	"voltage/internal/netem"
)

func TestBreakdownMeasuredTiny(t *testing.T) {
	rows, err := BreakdownMeasured(context.Background(), model.Tiny().Scaled(4), 3,
		netem.Profile{BandwidthMbps: 50}, Calibration{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	var voltageFrac, tpFrac float64
	for _, r := range rows {
		if r.ComputeSec <= 0 || r.CommSec <= 0 || r.LatencySec <= 0 {
			t.Fatalf("incomplete row %+v", r)
		}
		switch r.Strategy {
		case "voltage":
			voltageFrac = r.CommFraction
		case "tensor-parallel":
			tpFrac = r.CommFraction
		}
	}
	if tpFrac <= voltageFrac {
		t.Fatalf("TP comm fraction %.2f not above voltage %.2f", tpFrac, voltageFrac)
	}
	var sb strings.Builder
	if err := BreakdownTable("b", rows).WriteMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "comm-fraction") {
		t.Fatal("table header")
	}
}

func TestPipelineMeasuredTiny(t *testing.T) {
	rows, err := PipelineMeasured(context.Background(), model.Tiny().Scaled(4), 2,
		[]int{1, 4}, Calibration{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[1].PipelineThroughput <= rows[0].PipelineThroughput {
		t.Fatalf("throughput did not grow with batch: %v vs %v",
			rows[0].PipelineThroughput, rows[1].PipelineThroughput)
	}
	var sb strings.Builder
	if err := PipelineTable("p", rows).WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "batch,") {
		t.Fatal("csv header")
	}
}

func TestQuantizedCommMeasuredTiny(t *testing.T) {
	rows, err := QuantizedCommMeasured(context.Background(), model.Tiny().Scaled(2), 3,
		[]float64{20}, Calibration{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("%d rows", len(rows))
	}
	r := rows[0]
	if r.QuantBytes >= r.ExactBytes {
		t.Fatalf("quantized bytes %d not below exact %d", r.QuantBytes, r.ExactBytes)
	}
	if r.MaxDeviation <= 0 || r.MaxDeviation > 1 {
		t.Fatalf("deviation %v implausible", r.MaxDeviation)
	}
	var sb strings.Builder
	if err := QuantTable("q", rows).WriteMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "int8-bytes") {
		t.Fatal("table header")
	}
}
