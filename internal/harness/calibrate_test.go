package harness

import (
	"context"
	"testing"
	"time"

	"voltage/internal/cluster"
	"voltage/internal/costmodel"
	"voltage/internal/model"
	"voltage/internal/netem"
)

func TestMeasureDeviceFlops(t *testing.T) {
	flops := MeasureDeviceFlops()
	// Sanity: between 10 MMAC/s and 1 TMAC/s on any machine this runs on.
	if flops < 1e7 || flops > 1e12 {
		t.Fatalf("implausible throughput %v MAC/s", flops)
	}
}

func TestBandwidthScale(t *testing.T) {
	if got := BandwidthScale(costmodel.EdgeCPU.FlopsPerSec); got != 1 {
		t.Fatalf("scale at paper speed = %v, want 1", got)
	}
	if got := BandwidthScale(costmodel.EdgeCPU.FlopsPerSec / 2); got != 0.5 {
		t.Fatalf("scale at half speed = %v, want 0.5", got)
	}
	if got := BandwidthScale(0); got != 1 {
		t.Fatalf("scale at 0 = %v, want fallback 1", got)
	}
}

func TestCalibratedProfile(t *testing.T) {
	p := netem.Profile{BandwidthMbps: 500, Latency: time.Millisecond}
	c := CalibratedProfile(p, costmodel.EdgeCPU.FlopsPerSec/10)
	if c.BandwidthMbps != 50 {
		t.Fatalf("calibrated bandwidth %v, want 50", c.BandwidthMbps)
	}
	if c.Latency != time.Millisecond {
		t.Fatal("latency should be preserved")
	}
}

// TestMeasuredShapeMatchesPaper is the repository's headline integration
// test: on a real (depth-scaled) BERT-Large over six emulated devices with
// calibrated bandwidth, the measured latencies must reproduce the paper's
// Fig. 4 ordering — Voltage beats single device, tensor parallelism does
// not.
func TestMeasuredShapeMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second integration experiment")
	}
	// K=4 and N=128 keep the suite fast on small hosts; the full K=6,
	// N=200 run is `voltage-bench -experiment fig4 -mode measured`.
	const k, n = 4, 128
	cal := Calibrate(k)
	profile := cal.Apply(netem.Profile{BandwidthMbps: 500, Latency: 200 * time.Microsecond})

	cfg := model.BERTLarge().Scaled(2)
	var singleLat, voltageLat, tpLat time.Duration
	var fail string
	singleThreaded(func() {
		c, err := cluster.NewMem(cfg, k, cluster.Options{Profile: profile, DeviceFlops: cal.DeviceFlops})
		if err != nil {
			fail = err.Error()
			return
		}
		defer c.Close()
		x, err := embedWorkload(c, n)
		if err != nil {
			fail = err.Error()
			return
		}
		ctx := context.Background()
		for _, st := range []cluster.Strategy{cluster.StrategySingle, cluster.StrategyVoltage, cluster.StrategyTensorParallel} {
			res, err := c.Infer(ctx, st, x)
			if err != nil {
				fail = err.Error()
				return
			}
			switch st {
			case cluster.StrategySingle:
				singleLat = res.Latency
			case cluster.StrategyVoltage:
				voltageLat = res.Latency
			case cluster.StrategyTensorParallel:
				tpLat = res.Latency
			}
		}
	})
	if fail != "" {
		t.Fatal(fail)
	}
	t.Logf("measured @K=%d calibrated 500Mbps: single=%v voltage=%v tp=%v", k, singleLat, voltageLat, tpLat)
	if voltageLat >= singleLat {
		t.Errorf("voltage (%v) did not beat single device (%v)", voltageLat, singleLat)
	}
	if tpLat <= voltageLat {
		t.Errorf("tensor parallelism (%v) unexpectedly beat voltage (%v)", tpLat, voltageLat)
	}
}
