package harness

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// WriteMarkdown renders the table as GitHub-flavoured markdown.
func (t Table) WriteMarkdown(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "### %s\n\n", t.Title); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(t.Header, " | ")); err != nil {
		return err
	}
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | ")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | ")); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV renders the table as CSV (simple fields; no quoting needed for
// the harness's numeric output).
func (t Table) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Header, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func f3(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
func f2(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }

// Fig4Table formats Fig. 4 rows.
func Fig4Table(title string, rows []Fig4Row) Table {
	t := Table{Title: title, Header: []string{"model", "K", "single(s)", "voltage(s)", "tensor-parallel(s)"}}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Model, strconv.Itoa(r.K), f3(r.SingleSec), f3(r.VoltageSec), f3(r.TPSec),
		})
	}
	return t
}

// Fig5Table formats Fig. 5 rows.
func Fig5Table(title string, rows []Fig5Row) Table {
	t := Table{Title: title, Header: []string{"model", "bandwidth(Mbps)", "single(s)", "voltage(s)", "tensor-parallel(s)"}}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Model, strconv.FormatFloat(r.BandwidthMbps, 'f', 0, 64),
			f3(r.SingleSec), f3(r.VoltageSec), f3(r.TPSec),
		})
	}
	return t
}

// Fig6Table formats Fig. 6 rows.
func Fig6Table(title string, rows []Fig6Row) Table {
	t := Table{Title: title, Header: []string{"H", "FH", "N", "K", "voltage-speedup", "naive-speedup", "order"}}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(r.H), strconv.Itoa(r.FH), strconv.Itoa(r.N), strconv.Itoa(r.K),
			f2(r.VoltageSpeedup), f2(r.NaiveSpeedup), r.OrderUsed.String(),
		})
	}
	return t
}

// CommTable formats Table A rows.
func CommTable(title string, rows []CommRow) Table {
	t := Table{Title: title, Header: []string{
		"K", "voltage-bytes", "tp-bytes", "ratio",
		"voltage-formula(B/layer/dev)", "tp-formula(B/layer/dev)",
	}}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(r.K),
			strconv.FormatInt(r.VoltageBytes, 10),
			strconv.FormatInt(r.TPBytes, 10),
			f2(r.Ratio),
			strconv.FormatFloat(r.VoltageFormula, 'f', 0, 64),
			strconv.FormatFloat(r.TPFormula, 'f', 0, 64),
		})
	}
	return t
}

// TheoremTable formats Table B.
func TheoremTable(title string, rep TheoremReport) Table {
	return Table{
		Title:  title,
		Header: []string{"shapes-checked", "predicate-errors", "reordered-wins"},
		Rows: [][]string{{
			strconv.Itoa(rep.ShapesChecked),
			strconv.Itoa(rep.PredicateErrors),
			strconv.Itoa(rep.ReorderedWins),
		}},
	}
}
