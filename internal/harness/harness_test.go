package harness

import (
	"context"
	"strings"
	"testing"

	"voltage/internal/flopcount"
	"voltage/internal/model"
	"voltage/internal/netem"
)

func TestFig4PredictedShape(t *testing.T) {
	rows, err := Fig4Predicted(model.BERTLarge(), 6, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	// Voltage monotone decreasing, TP above single for K ≥ 2.
	for i := 1; i < len(rows); i++ {
		if rows[i].VoltageSec >= rows[i-1].VoltageSec {
			t.Fatalf("voltage not decreasing at K=%d", rows[i].K)
		}
		if rows[i].TPSec <= rows[i].SingleSec {
			t.Fatalf("TP below single at K=%d", rows[i].K)
		}
	}
	if _, err := Fig4Predicted(model.Config{}, 2, 500); err == nil {
		t.Fatal("want error for invalid config")
	}
}

func TestFig4MeasuredTiny(t *testing.T) {
	rows, err := Fig4Measured(context.Background(), model.Tiny(), 3, netem.Unlimited, Calibration{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.SingleSec <= 0 || r.VoltageSec <= 0 || r.TPSec <= 0 {
			t.Fatalf("non-positive latency in %+v", r)
		}
	}
}

func TestFig5PredictedShape(t *testing.T) {
	rows, err := Fig5Predicted(model.BERTLarge(), 6, DefaultBandwidths)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(DefaultBandwidths) {
		t.Fatalf("%d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].TPSec >= rows[i-1].TPSec {
			t.Fatal("TP not improving with bandwidth")
		}
		if rows[i].VoltageSec >= rows[i].TPSec {
			t.Fatal("voltage not below TP")
		}
	}
	if _, err := Fig5Predicted(model.Config{}, 6, DefaultBandwidths); err == nil {
		t.Fatal("want error for invalid config")
	}
}

func TestFig5MeasuredTiny(t *testing.T) {
	// Bandwidths far enough apart that serialization dominates timing
	// noise on the tiny model.
	rows, err := Fig5Measured(context.Background(), model.Tiny(), 2, []float64{2, 1000}, Calibration{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].VoltageSec <= 1.5*rows[1].VoltageSec {
		t.Fatalf("2 Mbps (%v) not clearly slower than 1000 Mbps (%v)", rows[0].VoltageSec, rows[1].VoltageSec)
	}
}

func TestFig6PredictedShape(t *testing.T) {
	rows := Fig6Predicted(DefaultFig6Settings, DefaultFig6Lengths, 10)
	if len(rows) != 3*3*9 {
		t.Fatalf("%d rows", len(rows))
	}
	// For every (setting, N): Voltage speed-up at K=10 must substantially
	// exceed the naive speed-up, and naive must plateau (bounded).
	byKey := map[[3]int][]Fig6Row{}
	for _, r := range rows {
		k := [3]int{r.H, r.FH, r.N}
		byKey[k] = append(byKey[k], r)
	}
	for key, series := range byKey {
		last := series[len(series)-1] // K = 10
		if last.VoltageSpeedup <= last.NaiveSpeedup {
			t.Fatalf("%v: voltage %v not above naive %v at K=10", key, last.VoltageSpeedup, last.NaiveSpeedup)
		}
		// Theorem 1: naive speed-up is bounded by Γ(full)/2NFFH ≈
		// (constant); check it stops growing: gain from K=5 to K=10 < 25%.
		var k5, k10 float64
		for _, r := range series {
			if r.K == 5 {
				k5 = r.NaiveSpeedup
			}
			if r.K == 10 {
				k10 = r.NaiveSpeedup
			}
		}
		if k10 > 1.25*k5 {
			t.Fatalf("%v: naive speedup still growing %v → %v", key, k5, k10)
		}
	}
	// The FH effect: the voltage/naive gap at K=10 grows with FH.
	gap := func(fh int) float64 {
		for _, r := range rows {
			if r.FH == fh && r.N == 300 && r.K == 10 {
				return r.VoltageSpeedup / r.NaiveSpeedup
			}
		}
		return 0
	}
	if !(gap(256) > gap(128) && gap(128) > gap(64)) {
		t.Fatalf("gap not increasing with FH: %v %v %v", gap(64), gap(128), gap(256))
	}
}

func TestFig6MeasuredSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	rows, err := Fig6Measured([]Fig6Setting{{H: 4, FH: 16}}, []int{64}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.VoltageSpeedup <= 0 || r.NaiveSpeedup <= 0 {
			t.Fatalf("non-positive speedup %+v", r)
		}
	}
}

func TestCommVolume(t *testing.T) {
	rows, err := CommVolume(context.Background(), model.Tiny(), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Ratio < 3 {
			t.Fatalf("K=%d ratio %v, want well above 3 (paper: 4×)", r.K, r.Ratio)
		}
		if r.TPFormula/r.VoltageFormula != 4 {
			t.Fatalf("formula ratio %v", r.TPFormula/r.VoltageFormula)
		}
	}
}

func TestVerifyTheorems(t *testing.T) {
	rep := VerifyTheorems(150)
	if rep.ShapesChecked == 0 {
		t.Fatal("no shapes checked")
	}
	if rep.PredicateErrors != 0 {
		t.Fatalf("%d predicate errors out of %d shapes", rep.PredicateErrors, rep.ShapesChecked)
	}
	if rep.ReorderedWins == 0 {
		t.Fatal("sweep never selected the reordered order — sweep too narrow")
	}
}

func TestTablesRender(t *testing.T) {
	f4, err := Fig4Predicted(model.GPT2(), 2, 500)
	if err != nil {
		t.Fatal(err)
	}
	var md, csv strings.Builder
	tab := Fig4Table("Fig 4 (predicted)", f4)
	if err := tab.WriteMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "### Fig 4 (predicted)") || !strings.Contains(md.String(), "| gpt2 |") {
		t.Fatalf("markdown output malformed:\n%s", md.String())
	}
	if err := tab.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "model,K,") {
		t.Fatalf("csv output malformed:\n%s", csv.String())
	}

	f5, err := Fig5Predicted(model.GPT2(), 3, []float64{200})
	if err != nil {
		t.Fatal(err)
	}
	if tab := Fig5Table("f5", f5); len(tab.Rows) != 1 {
		t.Fatal("fig5 table rows")
	}
	f6 := Fig6Predicted([]Fig6Setting{{H: 2, FH: 8}}, []int{50}, 3)
	if tab := Fig6Table("f6", f6); len(tab.Rows) != len(f6) {
		t.Fatal("fig6 table rows")
	}
	comm := []CommRow{{K: 2, VoltageBytes: 10, TPBytes: 40, Ratio: 4, VoltageFormula: 10, TPFormula: 40}}
	if tab := CommTable("comm", comm); len(tab.Rows) != 1 {
		t.Fatal("comm table rows")
	}
	rep := TheoremReport{ShapesChecked: 5, ReorderedWins: 2}
	if tab := TheoremTable("thm", rep); len(tab.Rows) != 1 {
		t.Fatal("theorem table rows")
	}
}

func TestDefaultModels(t *testing.T) {
	ms := DefaultModels()
	if len(ms) != 3 {
		t.Fatalf("%d models", len(ms))
	}
	for _, m := range ms {
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFig6PredictedOrdersMatchTheorem(t *testing.T) {
	rows := Fig6Predicted(DefaultFig6Settings, []int{200}, 10)
	for _, r := range rows {
		p := r.N / r.K
		if p < 1 {
			p = 1
		}
		want := flopcount.SelectOrder(flopcount.Shape{N: r.N, P: p, F: r.H * r.FH, FH: r.FH})
		if r.OrderUsed != want {
			t.Fatalf("row %+v used %v, theorem says %v", r, r.OrderUsed, want)
		}
	}
}
