// Package core is the Voltage engine: the end-to-end distributed inference
// pipeline of the paper's Fig. 3. It ties together pre-processing
// (embedding on the terminal device), the distributed transformer stack
// (Algorithm 2 over the cluster runtime), and post-processing
// (classification / next-token prediction), for all three strategies.
package core

import (
	"context"
	"fmt"

	"voltage/internal/cluster"
	"voltage/internal/metrics"
	"voltage/internal/model"
	"voltage/internal/obs"
	"voltage/internal/tensor"
)

// Engine is a ready-to-serve distributed inference deployment: a model
// replicated over a cluster of emulated edge devices.
type Engine struct {
	cluster *cluster.Cluster
	// terminal is the model replica used by the terminal device for pre-
	// and post-processing (identical weights to every worker replica).
	terminal *model.Model
}

// New builds an engine for the configuration over k emulated devices.
func New(cfg model.Config, k int, opts cluster.Options) (*Engine, error) {
	c, err := cluster.NewMem(cfg, k, opts)
	if err != nil {
		return nil, err
	}
	return &Engine{cluster: c, terminal: c.Model(0)}, nil
}

// Close releases the cluster.
func (e *Engine) Close() { e.cluster.Close() }

// Cluster exposes the underlying cluster for experiments (bandwidth
// sweeps, stats).
func (e *Engine) Cluster() *cluster.Cluster { return e.cluster }

// Config returns the model configuration.
func (e *Engine) Config() model.Config { return e.cluster.Config() }

// Health returns a snapshot of every worker device's health state — which
// ranks are serving, on probation, or excluded after blamed failures.
func (e *Engine) Health() []cluster.RankHealth { return e.cluster.Health() }

// Metrics returns a point-in-time snapshot of every metric series the
// serving runtime maintains (empty under ClusterOptions.NoMetrics).
func (e *Engine) Metrics() metrics.Snapshot { return e.cluster.Metrics() }

// AdminAddr returns the bound address of the engine's HTTP admin listener,
// or "" when ClusterOptions.AdminAddr did not request one. With a port-0
// address this is how the chosen port is discovered.
func (e *Engine) AdminAddr() string { return e.cluster.AdminAddr() }

// Profile returns the continuous profiler's rolling per-rank estimates:
// EWMA phase and fused-step times, comm bytes, round skew, and straggler
// flags. This is the input a re-partitioning policy would consume.
func (e *Engine) Profile() obs.Profile { return e.cluster.Profile() }

// Flight returns the engine's always-on flight recorder (never nil).
func (e *Engine) Flight() *obs.FlightRecorder { return e.cluster.Flight() }

// FlightDump snapshots the flight recorder — recent cluster events and
// retired request traces — together with the current profile.
func (e *Engine) FlightDump() obs.Dump { return e.cluster.FlightDump() }

// ChromeTrace exports the flight recorder's retired request traces as
// Chrome trace-event JSON, loadable in chrome://tracing or Perfetto.
func (e *Engine) ChromeTrace() []byte { return e.cluster.ChromeTrace() }

// Prediction is the result of one end-to-end classification request.
type Prediction struct {
	Class  int
	Logits []float32
	Run    *cluster.Result
}

// Serve starts the engine's persistent serving runtime. It is idempotent
// and implied by the first request; call it eagerly to pay the goroutine
// start-up before the first request arrives.
func (e *Engine) Serve() { e.cluster.Serve() }

// Submit admits one raw inference request (pre-embedded features) without
// blocking; the returned handle resolves when the distributed run
// completes. Overlapping submissions are sequenced by the cluster's
// dispatcher, pipelining the terminal's I/O for one request with the
// workers' compute for another.
func (e *Engine) Submit(ctx context.Context, strategy cluster.Strategy, x *tensor.Matrix) (*cluster.Pending, error) {
	return e.cluster.Submit(ctx, strategy, x)
}

// PendingPrediction is an admitted classification request; Wait performs
// the terminal-side post-processing once the distributed run resolves.
type PendingPrediction struct {
	eng  *Engine
	pend *cluster.Pending
}

// ID returns the underlying request id.
func (p *PendingPrediction) ID() uint64 { return p.pend.ID() }

// Done is closed when the distributed run has completed.
func (p *PendingPrediction) Done() <-chan struct{} { return p.pend.Done() }

// Wait blocks until the request completes, then classifies the output.
func (p *PendingPrediction) Wait(ctx context.Context) (*Prediction, error) {
	res, err := p.pend.Wait(ctx)
	if err != nil {
		return nil, err
	}
	return p.eng.postprocess(res)
}

// SubmitTokens admits one text-classification request without blocking:
// embedding runs on the terminal now, the distributed run is sequenced by
// the dispatcher, and Wait post-processes.
func (e *Engine) SubmitTokens(ctx context.Context, strategy cluster.Strategy, ids []int) (*PendingPrediction, error) {
	x, err := e.terminal.Embed.EmbedTokens(ids)
	if err != nil {
		return nil, fmt.Errorf("core: pre-process: %w", err)
	}
	pend, err := e.cluster.Submit(ctx, strategy, x)
	if err != nil {
		return nil, err
	}
	return &PendingPrediction{eng: e, pend: pend}, nil
}

// SubmitImage admits one image-classification request (ViT path) without
// blocking.
func (e *Engine) SubmitImage(ctx context.Context, strategy cluster.Strategy, im *model.Image) (*PendingPrediction, error) {
	x, err := e.terminal.Embed.EmbedImage(im)
	if err != nil {
		return nil, fmt.Errorf("core: pre-process: %w", err)
	}
	pend, err := e.cluster.Submit(ctx, strategy, x)
	if err != nil {
		return nil, err
	}
	return &PendingPrediction{eng: e, pend: pend}, nil
}

// ClassifyTokens serves one text-classification request: embed on the
// terminal, run the transformer stack distributed, classify the output.
// It is a blocking wrapper over SubmitTokens + Wait.
func (e *Engine) ClassifyTokens(ctx context.Context, strategy cluster.Strategy, ids []int) (*Prediction, error) {
	pend, err := e.SubmitTokens(ctx, strategy, ids)
	if err != nil {
		return nil, err
	}
	return pend.Wait(ctx)
}

// ClassifyImage serves one image-classification request (ViT path).
func (e *Engine) ClassifyImage(ctx context.Context, strategy cluster.Strategy, im *model.Image) (*Prediction, error) {
	pend, err := e.SubmitImage(ctx, strategy, im)
	if err != nil {
		return nil, err
	}
	return pend.Wait(ctx)
}

// postprocess classifies a completed run's output. The classifier head is
// read-only, so concurrent Waits may post-process in parallel.
func (e *Engine) postprocess(res *cluster.Result) (*Prediction, error) {
	logits, err := e.terminal.Classifier.Logits(res.Output)
	if err != nil {
		return nil, fmt.Errorf("core: post-process: %w", err)
	}
	return &Prediction{Class: model.Argmax(logits), Logits: logits, Run: res}, nil
}

// Generation is the result of an autoregressive decoding request.
type Generation struct {
	Tokens []int // prompt + generated continuation
	Runs   []*cluster.Result
}

// GenerateCached decodes with the distributed KV cache: one Voltage
// prefill over the prompt, then per-token steps that move only a token id
// to the workers and one hidden row back. Orders of magnitude less
// traffic and compute per token than Generate's full recompute; the
// greedy decodings are identical.
func (e *Engine) GenerateCached(ctx context.Context, prompt []int, steps int) (*cluster.GenerateResult, error) {
	return e.cluster.GenerateVoltage(ctx, prompt, steps)
}

// GenerateStream is GenerateCached with incremental delivery: onToken is
// called with each generated token id as soon as it is decoded, before the
// next decode step runs — the serving gateway's streaming endpoint rides on
// this. The callback runs on the serving runtime's collector goroutine and
// must not block indefinitely.
func (e *Engine) GenerateStream(ctx context.Context, prompt []int, steps int, onToken func(tok int)) (*cluster.GenerateResult, error) {
	return e.cluster.GenerateVoltageStream(ctx, prompt, steps, onToken)
}

// BatchWidth reports how many generate sequences are currently live in or
// waiting for the cluster's fused decode batch — the gateway's batch-aware
// admission estimate divides serial service time by it.
func (e *Engine) BatchWidth() int { return e.cluster.BatchWidth() }

// Generate decodes `steps` tokens autoregressively with the decoder model,
// running every forward pass distributed under the given strategy. Greedy
// (argmax) decoding keeps the result deterministic.
func (e *Engine) Generate(ctx context.Context, strategy cluster.Strategy, prompt []int, steps int) (*Generation, error) {
	if e.Config().Kind != model.KindDecoder {
		return nil, fmt.Errorf("core: %s is not a decoder model", e.Config().Name)
	}
	if len(prompt) == 0 {
		return nil, fmt.Errorf("core: empty prompt")
	}
	if steps < 0 {
		return nil, fmt.Errorf("core: negative steps %d", steps)
	}
	tokens := make([]int, len(prompt), len(prompt)+steps)
	copy(tokens, prompt)
	gen := &Generation{}
	for i := 0; i < steps; i++ {
		if len(tokens) >= e.Config().MaxSeq {
			break
		}
		x, err := e.terminal.Embed.EmbedTokens(tokens)
		if err != nil {
			return nil, fmt.Errorf("core: step %d embed: %w", i, err)
		}
		res, err := e.cluster.Infer(ctx, strategy, x)
		if err != nil {
			return nil, fmt.Errorf("core: step %d: %w", i, err)
		}
		gen.Runs = append(gen.Runs, res)
		logits, err := e.terminal.LM.NextTokenLogits(res.Output)
		if err != nil {
			return nil, fmt.Errorf("core: step %d head: %w", i, err)
		}
		tokens = append(tokens, model.Argmax(logits))
	}
	gen.Tokens = tokens
	return gen, nil
}
