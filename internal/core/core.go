// Package core is the Voltage engine: the end-to-end distributed inference
// pipeline of the paper's Fig. 3. It ties together pre-processing
// (embedding on the terminal device), the distributed transformer stack
// (Algorithm 2 over the cluster runtime), and post-processing
// (classification / next-token prediction), for all three strategies.
package core

import (
	"context"
	"fmt"

	"voltage/internal/cluster"
	"voltage/internal/model"
	"voltage/internal/tensor"
)

// Engine is a ready-to-serve distributed inference deployment: a model
// replicated over a cluster of emulated edge devices.
type Engine struct {
	cluster *cluster.Cluster
	// terminal is the model replica used by the terminal device for pre-
	// and post-processing (identical weights to every worker replica).
	terminal *model.Model
}

// New builds an engine for the configuration over k emulated devices.
func New(cfg model.Config, k int, opts cluster.Options) (*Engine, error) {
	c, err := cluster.NewMem(cfg, k, opts)
	if err != nil {
		return nil, err
	}
	return &Engine{cluster: c, terminal: c.Model(0)}, nil
}

// Close releases the cluster.
func (e *Engine) Close() { e.cluster.Close() }

// Cluster exposes the underlying cluster for experiments (bandwidth
// sweeps, stats).
func (e *Engine) Cluster() *cluster.Cluster { return e.cluster }

// Config returns the model configuration.
func (e *Engine) Config() model.Config { return e.cluster.Config() }

// Prediction is the result of one end-to-end classification request.
type Prediction struct {
	Class  int
	Logits []float32
	Run    *cluster.Result
}

// ClassifyTokens serves one text-classification request: embed on the
// terminal, run the transformer stack distributed, classify the output.
func (e *Engine) ClassifyTokens(ctx context.Context, strategy cluster.Strategy, ids []int) (*Prediction, error) {
	x, err := e.terminal.Embed.EmbedTokens(ids)
	if err != nil {
		return nil, fmt.Errorf("core: pre-process: %w", err)
	}
	return e.classify(ctx, strategy, x)
}

// ClassifyImage serves one image-classification request (ViT path).
func (e *Engine) ClassifyImage(ctx context.Context, strategy cluster.Strategy, im *model.Image) (*Prediction, error) {
	x, err := e.terminal.Embed.EmbedImage(im)
	if err != nil {
		return nil, fmt.Errorf("core: pre-process: %w", err)
	}
	return e.classify(ctx, strategy, x)
}

func (e *Engine) classify(ctx context.Context, strategy cluster.Strategy, x *tensor.Matrix) (*Prediction, error) {
	res, err := e.cluster.Infer(ctx, strategy, x)
	if err != nil {
		return nil, err
	}
	logits, err := e.terminal.Classifier.Logits(res.Output)
	if err != nil {
		return nil, fmt.Errorf("core: post-process: %w", err)
	}
	return &Prediction{Class: model.Argmax(logits), Logits: logits, Run: res}, nil
}

// Generation is the result of an autoregressive decoding request.
type Generation struct {
	Tokens []int // prompt + generated continuation
	Runs   []*cluster.Result
}

// GenerateCached decodes with the distributed KV cache: one Voltage
// prefill over the prompt, then per-token steps that move only a token id
// to the workers and one hidden row back. Orders of magnitude less
// traffic and compute per token than Generate's full recompute; the
// greedy decodings are identical.
func (e *Engine) GenerateCached(ctx context.Context, prompt []int, steps int) (*cluster.GenerateResult, error) {
	return e.cluster.GenerateVoltage(ctx, prompt, steps)
}

// Generate decodes `steps` tokens autoregressively with the decoder model,
// running every forward pass distributed under the given strategy. Greedy
// (argmax) decoding keeps the result deterministic.
func (e *Engine) Generate(ctx context.Context, strategy cluster.Strategy, prompt []int, steps int) (*Generation, error) {
	if e.Config().Kind != model.KindDecoder {
		return nil, fmt.Errorf("core: %s is not a decoder model", e.Config().Name)
	}
	if len(prompt) == 0 {
		return nil, fmt.Errorf("core: empty prompt")
	}
	if steps < 0 {
		return nil, fmt.Errorf("core: negative steps %d", steps)
	}
	tokens := make([]int, len(prompt), len(prompt)+steps)
	copy(tokens, prompt)
	gen := &Generation{}
	for i := 0; i < steps; i++ {
		if len(tokens) >= e.Config().MaxSeq {
			break
		}
		x, err := e.terminal.Embed.EmbedTokens(tokens)
		if err != nil {
			return nil, fmt.Errorf("core: step %d embed: %w", i, err)
		}
		res, err := e.cluster.Infer(ctx, strategy, x)
		if err != nil {
			return nil, fmt.Errorf("core: step %d: %w", i, err)
		}
		gen.Runs = append(gen.Runs, res)
		logits, err := e.terminal.LM.NextTokenLogits(res.Output)
		if err != nil {
			return nil, fmt.Errorf("core: step %d head: %w", i, err)
		}
		tokens = append(tokens, model.Argmax(logits))
	}
	gen.Tokens = tokens
	return gen, nil
}
