package core

import (
	"context"
	"testing"

	"voltage/internal/cluster"
	"voltage/internal/model"
	"voltage/internal/tensor"
)

func newTinyEngine(t testing.TB, cfg model.Config, k int) *Engine {
	t.Helper()
	e, err := New(cfg, k, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

func TestNewValidates(t *testing.T) {
	bad := model.Tiny()
	bad.F = 33
	if _, err := New(bad, 2, cluster.Options{}); err == nil {
		t.Fatal("want error for invalid config")
	}
}

func TestClassifyTokensAllStrategiesAgree(t *testing.T) {
	e := newTinyEngine(t, model.Tiny(), 3)
	ids := []int{4, 8, 15, 16, 23, 42}
	ctx := context.Background()
	var classes []int
	for _, s := range []cluster.Strategy{cluster.StrategySingle, cluster.StrategyVoltage, cluster.StrategyTensorParallel} {
		p, err := e.ClassifyTokens(ctx, s, ids)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if p.Run == nil || len(p.Logits) != e.Config().NumClasses {
			t.Fatalf("%v: incomplete prediction", s)
		}
		classes = append(classes, p.Class)
	}
	if classes[0] != classes[1] || classes[1] != classes[2] {
		t.Fatalf("strategies disagree on class: %v", classes)
	}
}

func TestClassifyTokensBadInput(t *testing.T) {
	e := newTinyEngine(t, model.Tiny(), 2)
	if _, err := e.ClassifyTokens(context.Background(), cluster.StrategyVoltage, nil); err == nil {
		t.Fatal("want error for empty input")
	}
	if _, err := e.ClassifyTokens(context.Background(), cluster.StrategyVoltage, []int{99999}); err == nil {
		t.Fatal("want error for OOV token")
	}
}

func TestClassifyImage(t *testing.T) {
	e := newTinyEngine(t, model.TinyVision(), 2)
	im := model.RandomImage(tensor.NewRNG(3), 3, 16)
	ctx := context.Background()
	pv, err := e.ClassifyImage(ctx, cluster.StrategyVoltage, im)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := e.ClassifyImage(ctx, cluster.StrategySingle, im)
	if err != nil {
		t.Fatal(err)
	}
	if pv.Class != ps.Class {
		t.Fatalf("distributed class %d != single %d", pv.Class, ps.Class)
	}
	// Wrong modality.
	if _, err := e.ClassifyTokens(ctx, cluster.StrategyVoltage, []int{1}); err == nil {
		t.Fatal("want error for tokens into vision engine")
	}
	et := newTinyEngine(t, model.Tiny(), 2)
	if _, err := et.ClassifyImage(ctx, cluster.StrategyVoltage, im); err == nil {
		t.Fatal("want error for image into token engine")
	}
}

func TestGenerateDeterministicAcrossStrategies(t *testing.T) {
	e := newTinyEngine(t, model.TinyDecoder(), 3)
	ctx := context.Background()
	prompt := []int{1, 2, 3}
	gv, err := e.Generate(ctx, cluster.StrategyVoltage, prompt, 4)
	if err != nil {
		t.Fatal(err)
	}
	gs, err := e.Generate(ctx, cluster.StrategySingle, prompt, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(gv.Tokens) != 7 {
		t.Fatalf("generated %d tokens, want 7", len(gv.Tokens))
	}
	for i := range gv.Tokens {
		if gv.Tokens[i] != gs.Tokens[i] {
			t.Fatalf("voltage and single diverge at %d: %v vs %v", i, gv.Tokens, gs.Tokens)
		}
	}
	if len(gv.Runs) != 4 {
		t.Fatalf("expected 4 runs, got %d", len(gv.Runs))
	}
}

func TestGenerateValidation(t *testing.T) {
	e := newTinyEngine(t, model.Tiny(), 2) // encoder, not decoder
	ctx := context.Background()
	if _, err := e.Generate(ctx, cluster.StrategyVoltage, []int{1}, 2); err == nil {
		t.Fatal("want error for generation on encoder")
	}
	d := newTinyEngine(t, model.TinyDecoder(), 2)
	if _, err := d.Generate(ctx, cluster.StrategyVoltage, nil, 2); err == nil {
		t.Fatal("want error for empty prompt")
	}
	if _, err := d.Generate(ctx, cluster.StrategyVoltage, []int{1}, -1); err == nil {
		t.Fatal("want error for negative steps")
	}
}

func TestGenerateStopsAtMaxSeq(t *testing.T) {
	cfg := model.TinyDecoder()
	cfg.MaxSeq = 5
	e := newTinyEngine(t, cfg, 2)
	g, err := e.Generate(context.Background(), cluster.StrategySingle, []int{1, 2, 3}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Tokens) != 5 {
		t.Fatalf("tokens %d, want capped at MaxSeq 5", len(g.Tokens))
	}
}

func TestEngineAccessors(t *testing.T) {
	e := newTinyEngine(t, model.Tiny(), 2)
	if e.Cluster() == nil {
		t.Fatal("Cluster nil")
	}
	if e.Config().Name != "tiny" {
		t.Fatalf("Config = %v", e.Config().Name)
	}
}

func TestGenerateCachedMatchesGenerate(t *testing.T) {
	e := newTinyEngine(t, model.TinyDecoder(), 3)
	ctx := context.Background()
	prompt := []int{7, 11, 13}
	slow, err := e.Generate(ctx, cluster.StrategyVoltage, prompt, 5)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := e.GenerateCached(ctx, prompt, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(fast.Tokens) != len(slow.Tokens) {
		t.Fatalf("lengths differ: %v vs %v", fast.Tokens, slow.Tokens)
	}
	for i := range fast.Tokens {
		if fast.Tokens[i] != slow.Tokens[i] {
			t.Fatalf("cached and recompute decoding diverge at %d", i)
		}
	}
	// The cached path must move far less data per generated token.
	var slowBytes int64
	for _, r := range slow.Runs {
		slowBytes += r.TotalBytesSent()
	}
	var fastBytes int64
	for _, s := range fast.PerDevice[:3] {
		fastBytes += s.BytesSent
	}
	if fastBytes >= slowBytes {
		t.Fatalf("cached decode moved %d bytes, recompute %d", fastBytes, slowBytes)
	}
}
