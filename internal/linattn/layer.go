package linattn

import (
	"fmt"

	"voltage/internal/attention"
	"voltage/internal/partition"
	"voltage/internal/tensor"
)

// Layer is a complete transformer layer whose attention is the kernelized
// linear variant: multi-head linear attention with output projection,
// followed by the standard position-wise FFN with residuals and layer
// norms. It mirrors model.Layer's partitioned interface, demonstrating
// that a whole linear-attention transformer distributes under Voltage
// exactly like a softmax one — with an even better profile, because the
// per-layer global state is only H·FH² values.
type Layer struct {
	Heads []*LinearHead
	WO    *tensor.Matrix
	BO    []float32

	W1 *tensor.Matrix
	B1 []float32
	W2 *tensor.Matrix
	B2 []float32

	LN1Gain, LN1Bias []float32
	LN2Gain, LN2Bias []float32

	Act tensor.Activation
	Eps float32
}

// NewRandomLayer builds a deterministic linear-attention layer with H
// heads, model width f (= H·fh) and FFN width dff.
func NewRandomLayer(rng *tensor.RNG, h, f, fh, dff int, act tensor.Activation) (*Layer, error) {
	if h < 1 || f != h*fh || dff < 1 {
		return nil, fmt.Errorf("linattn: invalid layer H=%d F=%d FH=%d Dff=%d", h, f, fh, dff)
	}
	heads := make([]*LinearHead, h)
	for i := range heads {
		base, err := attention.NewHeadWeights(
			rng.XavierNormal(f, fh), rng.XavierNormal(f, fh), rng.XavierNormal(f, fh))
		if err != nil {
			return nil, err
		}
		heads[i] = &LinearHead{Base: base}
	}
	return &Layer{
		Heads:   heads,
		WO:      rng.XavierNormal(h*fh, f),
		BO:      tensor.Zeros(f),
		W1:      rng.XavierNormal(f, dff),
		B1:      tensor.Zeros(dff),
		W2:      rng.XavierNormal(dff, f),
		B2:      tensor.Zeros(f),
		LN1Gain: tensor.Ones(f), LN1Bias: tensor.Zeros(f),
		LN2Gain: tensor.Ones(f), LN2Bias: tensor.Zeros(f),
		Act: act,
		Eps: 1e-5,
	}, nil
}

// F returns the layer's feature dimensionality.
func (l *Layer) F() int { return l.Heads[0].Base.F() }

// Forward computes the full layer output (single-device path).
func (l *Layer) Forward(x *tensor.Matrix) (*tensor.Matrix, error) {
	return l.ForwardPartition(x, partition.Range{From: 0, To: x.Rows()})
}

// ForwardPartition computes the layer output partition for the position
// range r — Algorithm 1 with the customized attention procedure swapped
// in, as the paper's related-work section describes.
func (l *Layer) ForwardPartition(x *tensor.Matrix, r partition.Range) (*tensor.Matrix, error) {
	if r.From < 0 || r.To > x.Rows() || r.From > r.To {
		return nil, fmt.Errorf("%w: partition %v of %d rows", tensor.ErrShape, r, x.Rows())
	}
	if r.Empty() {
		return tensor.New(0, x.Cols()), nil
	}
	xp, err := x.RowSlice(r.From, r.To)
	if err != nil {
		return nil, err
	}
	outs := make([]*tensor.Matrix, len(l.Heads))
	for i, h := range l.Heads {
		o, err := h.Compute(x, xp)
		if err != nil {
			return nil, fmt.Errorf("linattn: head %d: %w", i, err)
		}
		outs[i] = o
	}
	cat, err := tensor.ConcatCols(outs...)
	if err != nil {
		return nil, err
	}
	attnOut, err := tensor.MatMul(cat, l.WO)
	if err != nil {
		return nil, err
	}
	if err := tensor.AddBiasInPlace(attnOut, l.BO); err != nil {
		return nil, err
	}
	if err := tensor.AddInPlace(attnOut, xp); err != nil {
		return nil, err
	}
	y, err := tensor.LayerNorm(attnOut, l.LN1Gain, l.LN1Bias, l.Eps)
	if err != nil {
		return nil, err
	}
	h1, err := tensor.MatMul(y, l.W1)
	if err != nil {
		return nil, err
	}
	if err := tensor.AddBiasInPlace(h1, l.B1); err != nil {
		return nil, err
	}
	l.Act.ApplyInPlace(h1)
	f, err := tensor.MatMul(h1, l.W2)
	if err != nil {
		return nil, err
	}
	if err := tensor.AddBiasInPlace(f, l.B2); err != nil {
		return nil, err
	}
	if err := tensor.AddInPlace(f, y); err != nil {
		return nil, err
	}
	return tensor.LayerNorm(f, l.LN2Gain, l.LN2Bias, l.Eps)
}
