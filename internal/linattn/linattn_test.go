package linattn

import (
	"math"
	"testing"
	"testing/quick"

	"voltage/internal/attention"
	"voltage/internal/tensor"
)

func newBase(t testing.TB, seed int64, f, fh int) *attention.HeadWeights {
	t.Helper()
	rng := tensor.NewRNG(seed)
	h, err := attention.NewHeadWeights(rng.XavierNormal(f, fh), rng.XavierNormal(f, fh), rng.XavierNormal(f, fh))
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNewLinformerHeadValidation(t *testing.T) {
	base := newBase(t, 1, 16, 4)
	rng := tensor.NewRNG(2)
	if _, err := NewLinformerHead(base, 0, 32, rng); err == nil {
		t.Fatal("want error for rank 0")
	}
	if _, err := NewLinformerHead(base, 4, 0, rng); err == nil {
		t.Fatal("want error for maxN 0")
	}
	l, err := NewLinformerHead(base, 4, 32, rng)
	if err != nil {
		t.Fatal(err)
	}
	if l.Rank() != 4 {
		t.Fatalf("Rank = %d", l.Rank())
	}
}

func TestLinformerPartitionEqualsFullSlice(t *testing.T) {
	// The extension claim: position-wise partitioning stays exact for the
	// customized attention — each partition equals the rows of the full
	// output.
	base := newBase(t, 3, 24, 8)
	l, err := NewLinformerHead(base, 6, 64, tensor.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewRNG(5).Normal(20, 24, 1)
	full, err := l.Compute(x, x)
	if err != nil {
		t.Fatal(err)
	}
	if full.Rows() != 20 || full.Cols() != 8 {
		t.Fatalf("full shape %dx%d", full.Rows(), full.Cols())
	}
	for _, r := range [][2]int{{0, 7}, {7, 13}, {13, 20}} {
		xp, _ := x.RowSlice(r[0], r[1])
		part, err := l.Compute(x, xp)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := full.RowSlice(r[0], r[1])
		if !part.AlmostEqual(want, 1e-4) {
			t.Fatalf("linformer partition [%d,%d) differs", r[0], r[1])
		}
	}
}

func TestLinformerValidation(t *testing.T) {
	base := newBase(t, 6, 16, 4)
	l, err := NewLinformerHead(base, 4, 8, tensor.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	tooLong := tensor.New(9, 16)
	if _, err := l.Compute(tooLong, tooLong); err == nil {
		t.Fatal("want error for input beyond maxN")
	}
	wrong := tensor.New(4, 5)
	if _, err := l.Compute(wrong, wrong); err == nil {
		t.Fatal("want error for wrong feature size")
	}
}

func TestLinearPartitionEqualsFullSlice(t *testing.T) {
	base := newBase(t, 8, 24, 6)
	l := &LinearHead{Base: base}
	x := tensor.NewRNG(9).Normal(18, 24, 1)
	full, err := l.Compute(x, x)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][2]int{{0, 5}, {5, 18}} {
		xp, _ := x.RowSlice(r[0], r[1])
		part, err := l.Compute(x, xp)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := full.RowSlice(r[0], r[1])
		if !part.AlmostEqual(want, 1e-4) {
			t.Fatalf("linear attention partition [%d,%d) differs", r[0], r[1])
		}
	}
}

func TestLinearAttentionRowsAreConvexCombos(t *testing.T) {
	// With φ > 0, each output row is a convex combination of value rows:
	// it must lie within the min/max envelope of V's columns.
	base := newBase(t, 10, 16, 4)
	l := &LinearHead{Base: base}
	x := tensor.NewRNG(11).Normal(12, 16, 1)
	out, err := l.Compute(x, x)
	if err != nil {
		t.Fatal(err)
	}
	v, err := tensor.MatMul(x, base.WV)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < v.Cols(); j++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < v.Rows(); i++ {
			val := float64(v.At(i, j))
			lo = math.Min(lo, val)
			hi = math.Max(hi, val)
		}
		for i := 0; i < out.Rows(); i++ {
			got := float64(out.At(i, j))
			if got < lo-1e-4 || got > hi+1e-4 {
				t.Fatalf("output[%d][%d] = %v outside value envelope [%v, %v]", i, j, got, lo, hi)
			}
		}
	}
}

func TestPhiPositive(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		m := rng.Normal(4, 4, 3)
		phi(m)
		for _, v := range m.Data() {
			if v <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLinearValidation(t *testing.T) {
	base := newBase(t, 12, 16, 4)
	l := &LinearHead{Base: base}
	wrong := tensor.New(3, 5)
	if _, err := l.Compute(wrong, wrong); err == nil {
		t.Fatal("want error for wrong feature size")
	}
}

func TestLinearPartitionCostIsLinearInP(t *testing.T) {
	base := newBase(t, 13, 64, 16)
	l := &LinearHead{Base: base}
	n := 1000
	c1 := l.PartitionCost(n, 10)
	c2 := l.PartitionCost(n, 20)
	perPos := c2 - c1 // 10 positions' worth
	if perPos <= 0 {
		t.Fatal("cost not increasing in P")
	}
	// The summary term is shared: cost(P) = base + P·per.
	want := l.PartitionCost(n, 0) + 20*(perPos/10)
	if c2 != want {
		t.Fatalf("cost not affine in P: %d vs %d", c2, want)
	}
	// And no quadratic N² term: doubling N at fixed P scales the summary
	// linearly.
	d1 := l.PartitionCost(1000, 10)
	d2 := l.PartitionCost(2000, 10)
	summary1 := d1 - 10*(perPos/10)
	summary2 := d2 - 10*(perPos/10)
	if summary2 != 2*summary1 {
		t.Fatalf("summary not linear in N: %d vs %d", summary1, summary2)
	}
}

func TestLinformerCompressionShrinksScores(t *testing.T) {
	// Sanity: with rank R ≪ N, the score matrix is P×R not P×N — verify
	// via cost proxy by ensuring compute succeeds at small rank and large
	// N without shape errors.
	base := newBase(t, 14, 16, 4)
	l, err := NewLinformerHead(base, 2, 256, tensor.NewRNG(15))
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewRNG(16).Normal(200, 16, 1)
	xp, _ := x.RowSlice(0, 5)
	out, err := l.Compute(x, xp)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 5 || out.Cols() != 4 {
		t.Fatalf("shape %dx%d", out.Rows(), out.Cols())
	}
}
