package linattn

import (
	"testing"

	"voltage/internal/partition"
	"voltage/internal/tensor"
)

func newLayer(t testing.TB, seed int64) *Layer {
	t.Helper()
	l, err := NewRandomLayer(tensor.NewRNG(seed), 4, 32, 8, 64, tensor.GELU)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewRandomLayerValidation(t *testing.T) {
	rng := tensor.NewRNG(1)
	if _, err := NewRandomLayer(rng, 0, 32, 8, 64, tensor.GELU); err == nil {
		t.Fatal("want error for H=0")
	}
	if _, err := NewRandomLayer(rng, 4, 30, 8, 64, tensor.GELU); err == nil {
		t.Fatal("want error for F != H·FH")
	}
	if _, err := NewRandomLayer(rng, 4, 32, 8, 0, tensor.GELU); err == nil {
		t.Fatal("want error for Dff=0")
	}
	l := newLayer(t, 2)
	if l.F() != 32 {
		t.Fatalf("F = %d", l.F())
	}
}

func TestLayerPartitionEqualsFullSlice(t *testing.T) {
	// The full extension claim at the layer level: a linear-attention
	// transformer layer partitions position-wise exactly.
	l := newLayer(t, 3)
	x := tensor.NewRNG(4).Normal(18, 32, 1)
	full, err := l.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []partition.Range{{From: 0, To: 6}, {From: 6, To: 11}, {From: 11, To: 18}} {
		part, err := l.ForwardPartition(x, r)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := full.RowSlice(r.From, r.To)
		if !part.AlmostEqual(want, 1e-3) {
			d, _ := part.MaxAbsDiff(want)
			t.Fatalf("linear layer partition %v differs by %v", r, d)
		}
	}
}

func TestLayerMultiLayerStackDistributes(t *testing.T) {
	// Stack three linear-attention layers with Algorithm 2 semantics
	// (partition → assemble → next layer) and compare with single-device.
	layers := []*Layer{newLayer(t, 5), newLayer(t, 6), newLayer(t, 7)}
	x := tensor.NewRNG(8).Normal(15, 32, 1)
	want := x
	var err error
	for _, l := range layers {
		want, err = l.Forward(want)
		if err != nil {
			t.Fatal(err)
		}
	}
	scheme, _ := partition.Even(3)
	cur := x
	for _, l := range layers {
		ranges, err := scheme.Ranges(cur.Rows())
		if err != nil {
			t.Fatal(err)
		}
		next := tensor.New(cur.Rows(), 32)
		for _, r := range ranges {
			part, err := l.ForwardPartition(cur, r)
			if err != nil {
				t.Fatal(err)
			}
			if err := next.SetRowSlice(r.From, part); err != nil {
				t.Fatal(err)
			}
		}
		cur = next
	}
	if !cur.AlmostEqual(want, 1e-2) {
		d, _ := cur.MaxAbsDiff(want)
		t.Fatalf("distributed linear stack differs by %v", d)
	}
}

func TestLayerPartitionValidation(t *testing.T) {
	l := newLayer(t, 9)
	x := tensor.NewRNG(10).Normal(8, 32, 1)
	if _, err := l.ForwardPartition(x, partition.Range{From: -1, To: 2}); err == nil {
		t.Fatal("want error for negative range")
	}
	if _, err := l.ForwardPartition(x, partition.Range{From: 0, To: 99}); err == nil {
		t.Fatal("want error for overflow range")
	}
	out, err := l.ForwardPartition(x, partition.Range{From: 3, To: 3})
	if err != nil || out.Rows() != 0 {
		t.Fatalf("empty range: %v rows %d", err, out.Rows())
	}
}
