// Package linattn implements two efficient-attention variants from the
// paper's related-work discussion — Linformer-style low-rank attention and
// kernelized linear attention (Katharopoulos et al.) — together with their
// position-wise partitioned computation.
//
// The paper claims "Voltage can be easily extended to distribute them with
// minor changes to the customized attention procedures"; this package is
// that extension. Both variants keep the transformer's position-wise
// structure, and their global component (the projected K/V or the
// kernelized summary matrix) is a small O(r·FH) or O(FH²) object that each
// device recomputes locally, so the per-device cost of an output partition
// is O(P) — there is no equivalent of the softmax-attention K/V bottleneck
// at all, and even the naive partition scales linearly.
package linattn

import (
	"fmt"
	"math"

	"voltage/internal/attention"
	"voltage/internal/tensor"
)

// LinformerHead is one attention head with Linformer's sequence-dimension
// projections: K and V are compressed from N positions to R rows by
// learned projections E, F ∈ R^{R×MaxN} before the softmax.
type LinformerHead struct {
	Base *attention.HeadWeights
	// E and Fproj are the R×MaxN K- and V-compression projections; only
	// the first N columns are used for a length-N input.
	E, Fproj *tensor.Matrix
}

// NewLinformerHead wraps a head with rank-r projections for inputs up to
// maxN positions, deterministically initialized.
func NewLinformerHead(base *attention.HeadWeights, r, maxN int, rng *tensor.RNG) (*LinformerHead, error) {
	if r < 1 || maxN < 1 {
		return nil, fmt.Errorf("linattn: rank %d maxN %d", r, maxN)
	}
	return &LinformerHead{
		Base:  base,
		E:     rng.Normal(r, maxN, 1/math.Sqrt(float64(maxN))),
		Fproj: rng.Normal(r, maxN, 1/math.Sqrt(float64(maxN))),
	}, nil
}

// Rank returns the compression rank R.
func (l *LinformerHead) Rank() int { return l.E.Rows() }

// project compresses an N×FH matrix to R×FH with the first N columns of
// proj.
func project(proj, m *tensor.Matrix) (*tensor.Matrix, error) {
	sub, err := proj.ColSlice(0, m.Rows())
	if err != nil {
		return nil, err
	}
	return tensor.MatMul(sub, m)
}

// Compute returns the head's output partition for the rows of xp within
// the full input x:
//
//	Ap = softmax(Qp·(E·K)ᵀ/√FH) · (F·V)
//
// The compressed K', V' are R×FH regardless of N, so the partition cost is
// O(P·(F·FH + R·FH) + N·F·FH/R-ish) with the N-dependent work shrinking by
// the compression factor.
func (l *LinformerHead) Compute(x, xp *tensor.Matrix) (*tensor.Matrix, error) {
	if x.Rows() > l.E.Cols() {
		return nil, fmt.Errorf("linattn: input length %d exceeds projection max %d", x.Rows(), l.E.Cols())
	}
	if x.Cols() != l.Base.F() || xp.Cols() != l.Base.F() {
		return nil, fmt.Errorf("%w: input cols %d/%d vs F %d",
			tensor.ErrShape, x.Cols(), xp.Cols(), l.Base.F())
	}
	k, err := tensor.MatMul(x, l.Base.WK)
	if err != nil {
		return nil, err
	}
	v, err := tensor.MatMul(x, l.Base.WV)
	if err != nil {
		return nil, err
	}
	kc, err := project(l.E, k) // R×FH
	if err != nil {
		return nil, err
	}
	vc, err := project(l.Fproj, v) // R×FH
	if err != nil {
		return nil, err
	}
	q, err := tensor.MatMul(xp, l.Base.WQ)
	if err != nil {
		return nil, err
	}
	scores, err := tensor.MatMulT(q, kc) // P×R
	if err != nil {
		return nil, err
	}
	tensor.ScaleInPlace(scores, float32(1/math.Sqrt(float64(l.Base.FH()))))
	tensor.SoftmaxRowsInPlace(scores)
	return tensor.MatMul(scores, vc)
}

// LinearHead is one attention head under the kernelized linear attention of
// Katharopoulos et al.: softmax is replaced by the feature map
// φ(u) = elu(u)+1, allowing the associativity rewrite
//
//	A = φ(Q)·(φ(K)ᵀ·V) / (φ(Q)·(φ(K)ᵀ·1))
//
// whose global component φ(K)ᵀ·V is a tiny FH×FH summary.
type LinearHead struct {
	Base *attention.HeadWeights
}

// phi applies the elu(u)+1 feature map in place (strictly positive, which
// keeps the normalizer nonzero).
func phi(m *tensor.Matrix) {
	data := m.Data()
	for i, v := range data {
		if v < 0 {
			data[i] = float32(math.Exp(float64(v))) // elu(v)+1 = e^v for v<0
		} else {
			data[i] = v + 1
		}
	}
}

// summary computes the global FH×FH matrix S = φ(K)ᵀ·V and the FH
// normalizer z = φ(K)ᵀ·1 from the full input.
func (l *LinearHead) summary(x *tensor.Matrix) (*tensor.Matrix, []float32, error) {
	k, err := tensor.MatMul(x, l.Base.WK)
	if err != nil {
		return nil, nil, err
	}
	phi(k)
	v, err := tensor.MatMul(x, l.Base.WV)
	if err != nil {
		return nil, nil, err
	}
	s, err := tensor.MatMul(k.T(), v) // FH×FH
	if err != nil {
		return nil, nil, err
	}
	z := make([]float32, k.Cols())
	for i := 0; i < k.Rows(); i++ {
		row := k.Row(i)
		for j, kv := range row {
			z[j] += kv
		}
	}
	return s, z, nil
}

// Compute returns the head's output partition: each row i is
// φ(q_i)·S / (φ(q_i)·z). The only input-length-dependent work is the
// one-time summary (O(N·F·FH)); the per-position work is O(F·FH), so the
// partition is exactly position-wise.
func (l *LinearHead) Compute(x, xp *tensor.Matrix) (*tensor.Matrix, error) {
	if x.Cols() != l.Base.F() || xp.Cols() != l.Base.F() {
		return nil, fmt.Errorf("%w: input cols %d/%d vs F %d",
			tensor.ErrShape, x.Cols(), xp.Cols(), l.Base.F())
	}
	s, z, err := l.summary(x)
	if err != nil {
		return nil, err
	}
	q, err := tensor.MatMul(xp, l.Base.WQ)
	if err != nil {
		return nil, err
	}
	phi(q)
	num, err := tensor.MatMul(q, s) // P×FH
	if err != nil {
		return nil, err
	}
	for i := 0; i < q.Rows(); i++ {
		qi := q.Row(i)
		var denom float32
		for j, qv := range qi {
			denom += qv * z[j]
		}
		if denom == 0 {
			return nil, fmt.Errorf("linattn: zero normalizer at row %d", i)
		}
		out := num.Row(i)
		inv := 1 / denom
		for j := range out {
			out[j] *= inv
		}
	}
	return num, nil
}

// PartitionCost returns the analytic Γ of a linear-attention partition:
// the one-time summary N·F·FH + N·FH·FH plus P·(F·FH + FH·FH).
func (l *LinearHead) PartitionCost(n, p int) int64 {
	f, fh := int64(l.Base.F()), int64(l.Base.FH())
	summary := int64(n)*f*fh + int64(n)*fh*fh
	per := int64(p) * (f*fh + fh*fh)
	return summary + per
}
