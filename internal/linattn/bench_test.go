package linattn

import (
	"fmt"
	"testing"

	"voltage/internal/attention"
	"voltage/internal/flopcount"
	"voltage/internal/tensor"
)

// BenchmarkLinearVsSoftmaxScaling shows the O(N) vs O(N²) gap: the linear
// head's full-output time grows linearly with N while softmax attention
// grows quadratically.
func BenchmarkLinearVsSoftmaxScaling(b *testing.B) {
	prev := tensor.SetWorkers(1)
	defer tensor.SetWorkers(prev)
	const f, fh = 256, 64
	rng := tensor.NewRNG(1)
	base, err := attention.NewHeadWeights(rng.XavierNormal(f, fh), rng.XavierNormal(f, fh), rng.XavierNormal(f, fh))
	if err != nil {
		b.Fatal(err)
	}
	lin := &LinearHead{Base: base}
	for _, n := range []int{128, 512} {
		x := tensor.NewRNG(2).Normal(n, f, 1)
		b.Run(fmt.Sprintf("linear/N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := lin.Compute(x, x); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("softmax/N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := attention.Compute(base, x, x, flopcount.OrderNaive); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLinformerPartition measures the compressed-attention partition
// at growing rank.
func BenchmarkLinformerPartition(b *testing.B) {
	prev := tensor.SetWorkers(1)
	defer tensor.SetWorkers(prev)
	const f, fh, n, p = 256, 64, 256, 32
	rng := tensor.NewRNG(3)
	base, err := attention.NewHeadWeights(rng.XavierNormal(f, fh), rng.XavierNormal(f, fh), rng.XavierNormal(f, fh))
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.NewRNG(4).Normal(n, f, 1)
	xp, err := x.RowSlice(0, p)
	if err != nil {
		b.Fatal(err)
	}
	for _, rank := range []int{16, 64} {
		l, err := NewLinformerHead(base, rank, n, tensor.NewRNG(5))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("rank=%d", rank), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := l.Compute(x, xp); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
