package loadgen

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"
)

// sample is one issued request's measurement.
type sample struct {
	interactive bool
	status      int
	shedCause   string // non-empty when the request was rejected/shed
	e2e         time.Duration
	ttft        time.Duration // generate: first token line (0 = none seen)
	tokens      int           // generate: token lines streamed
	perTokenMS  float64       // generate: mean gap between token lines
	queueMS     float64
	batchWaitMS float64
	retries     int
	degraded    bool
	failed      bool // transport error or in-band stream error
}

// Runner replays a planned trace against one gateway base URL.
type Runner struct {
	cfg    TraceConfig
	base   string
	client *http.Client
}

// NewRunner builds a runner for the gateway at base (e.g.
// "http://127.0.0.1:8080"). The runner owns its HTTP client; keep-alives
// are sized to the trace's concurrency bound.
func NewRunner(cfg TraceConfig, base string) *Runner {
	cfg = cfg.withDefaults()
	tr := &http.Transport{
		MaxIdleConns:        cfg.MaxInflight,
		MaxIdleConnsPerHost: cfg.MaxInflight,
	}
	return &Runner{
		cfg:    cfg,
		base:   strings.TrimRight(base, "/"),
		client: &http.Client{Transport: tr},
	}
}

// Run plans the trace, replays it, and summarizes what came back. The
// context aborts the whole run (in-flight requests are canceled).
func (r *Runner) Run(ctx context.Context) (*Summary, error) {
	reqs, err := Plan(r.cfg)
	if err != nil {
		return nil, err
	}
	before, beforeOK := r.scrapeServer()

	start := time.Now()
	samples := make([]sample, 0, len(reqs))
	var mu sync.Mutex
	record := func(s sample) {
		mu.Lock()
		samples = append(samples, s)
		mu.Unlock()
	}

	var wg sync.WaitGroup
	switch r.cfg.Arrival {
	case ArrivalClosed:
		byWorker := make([][]Request, r.cfg.Concurrency)
		for _, q := range reqs {
			byWorker[q.Worker] = append(byWorker[q.Worker], q)
		}
		window := time.Duration(r.cfg.DurationMS) * time.Millisecond
		think := time.Duration(r.cfg.ThinkMS) * time.Millisecond
		for w := 0; w < r.cfg.Concurrency; w++ {
			wg.Add(1)
			go func(seq []Request) {
				defer wg.Done()
				for _, q := range seq {
					if ctx.Err() != nil || time.Since(start) >= window {
						return
					}
					record(r.issue(ctx, q))
					if think > 0 {
						select {
						case <-time.After(think):
						case <-ctx.Done():
							return
						}
					}
				}
			}(byWorker[w])
		}
	default: // open-loop: fire at each planned offset, bounded in flight
		sem := make(chan struct{}, r.cfg.MaxInflight)
		for _, q := range reqs {
			if ctx.Err() != nil {
				break
			}
			if wait := q.At - time.Since(start); wait > 0 {
				select {
				case <-time.After(wait):
				case <-ctx.Done():
				}
			}
			if ctx.Err() != nil {
				break
			}
			sem <- struct{}{}
			wg.Add(1)
			go func(q Request) {
				defer wg.Done()
				defer func() { <-sem }()
				record(r.issue(ctx, q))
			}(q)
		}
	}
	wg.Wait()
	wall := time.Since(start)

	after, afterOK := r.scrapeServer()
	sum := summarize(r.cfg, samples, wall)
	if beforeOK && afterOK {
		sum.Server = diffServer(before, after)
	}
	return sum, nil
}

// issue sends one planned request and measures it.
func (r *Runner) issue(ctx context.Context, q Request) sample {
	if q.Interactive {
		return r.issueClassify(ctx, q)
	}
	return r.issueGenerate(ctx, q)
}

// classifyReply mirrors the fields of /v1/classify the harness reads.
type classifyReply struct {
	QueueMS  float64 `json:"queue_ms"`
	Attempts int     `json:"attempts"`
	Degraded bool    `json:"degraded"`
}

// shedReply mirrors the error envelope of shed responses.
type shedReply struct {
	Error string `json:"error"`
	Shed  bool   `json:"shed"`
}

func (r *Runner) issueClassify(ctx context.Context, q Request) sample {
	s := sample{interactive: true}
	body, _ := json.Marshal(map[string]any{"tokens": q.Prompt, "timeout_ms": q.TimeoutMS})
	start := time.Now()
	resp, err := r.post(ctx, "/v1/classify", body)
	if err != nil {
		s.failed = true
		s.shedCause = "transport"
		s.e2e = time.Since(start)
		return s
	}
	defer resp.Body.Close()
	s.status = resp.StatusCode
	if resp.StatusCode != http.StatusOK {
		s.shedCause = shedCauseOf(resp)
		s.failed = true
		s.e2e = time.Since(start)
		return s
	}
	var rep classifyReply
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		s.failed = true
		s.shedCause = "bad_response"
	}
	s.e2e = time.Since(start)
	s.queueMS = rep.QueueMS
	s.retries = max(rep.Attempts-1, 0)
	s.degraded = rep.Degraded
	return s
}

// streamChunk mirrors the /v1/generate ndjson line fields the harness
// reads (token lines and the final summary line).
type streamChunk struct {
	Token       *int    `json:"token"`
	Done        bool    `json:"done"`
	QueueMS     float64 `json:"queue_ms"`
	BatchWaitMS float64 `json:"batch_wait_ms"`
	Retries     int     `json:"retries"`
	Degraded    bool    `json:"degraded"`
	Error       string  `json:"error"`
	Streamed    int     `json:"streamed"`
}

func (r *Runner) issueGenerate(ctx context.Context, q Request) sample {
	s := sample{}
	body, _ := json.Marshal(map[string]any{"prompt": q.Prompt, "steps": q.Steps, "timeout_ms": q.TimeoutMS})
	start := time.Now()
	resp, err := r.post(ctx, "/v1/generate", body)
	if err != nil {
		s.failed = true
		s.shedCause = "transport"
		s.e2e = time.Since(start)
		return s
	}
	defer resp.Body.Close()
	s.status = resp.StatusCode
	if resp.StatusCode != http.StatusOK {
		s.shedCause = shedCauseOf(resp)
		s.failed = true
		s.e2e = time.Since(start)
		return s
	}
	var lastToken time.Time
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		var chunk streamChunk
		if err := json.Unmarshal(sc.Bytes(), &chunk); err != nil {
			s.failed = true
			s.shedCause = "bad_response"
			break
		}
		switch {
		case chunk.Done:
			s.queueMS = chunk.QueueMS
			s.batchWaitMS = chunk.BatchWaitMS
			s.retries = chunk.Retries
			s.degraded = chunk.Degraded
			if chunk.Error != "" {
				s.failed = true
				s.shedCause = "stream_error"
			}
		case chunk.Token != nil:
			now := time.Now()
			if s.tokens == 0 {
				s.ttft = now.Sub(start)
			}
			lastToken = now
			s.tokens++
		}
	}
	if err := sc.Err(); err != nil {
		s.failed = true
		s.shedCause = "transport"
	}
	s.e2e = time.Since(start)
	if s.tokens > 1 && !lastToken.IsZero() {
		s.perTokenMS = float64(lastToken.Sub(start)-s.ttft) / float64(s.tokens-1) / float64(time.Millisecond)
	}
	return s
}

// post issues one POST with the request's context.
func (r *Runner) post(ctx context.Context, path string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return r.client.Do(req)
}

// shedCauseOf labels a non-200 response for the shed-by-cause breakdown:
// the error body's text when it names a known cause, else the status code.
func shedCauseOf(resp *http.Response) string {
	var rep shedReply
	_ = json.NewDecoder(resp.Body).Decode(&rep)
	msg := strings.ToLower(rep.Error)
	switch {
	case strings.Contains(msg, "queue full"):
		return "queue_full"
	case strings.Contains(msg, "deadline"):
		return "deadline"
	case strings.Contains(msg, "draining"):
		return "draining"
	case strings.Contains(msg, "degraded"):
		return "degraded"
	case resp.StatusCode == http.StatusRequestEntityTooLarge:
		return "body_limit"
	default:
		return fmt.Sprintf("http_%d", resp.StatusCode)
	}
}
