package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// FetchChromeTrace downloads the gateway's Chrome trace-event export
// (/debug/trace) and validates it is a well-formed trace document,
// returning the raw JSON and the number of trace events it carries. The
// endpoint only exists when the backend exposes a flight recorder (the
// in-process engine does); a 404 target reports an error the caller can
// surface.
func FetchChromeTrace(client *http.Client, base string) ([]byte, int, error) {
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Get(base + "/debug/trace")
	if err != nil {
		return nil, 0, fmt.Errorf("loadgen: fetch trace: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, fmt.Errorf("loadgen: /debug/trace: HTTP %d", resp.StatusCode)
	}
	blob, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, 0, fmt.Errorf("loadgen: read trace: %w", err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(blob, &doc); err != nil {
		return nil, 0, fmt.Errorf("loadgen: /debug/trace is not valid trace JSON: %w", err)
	}
	if doc.TraceEvents == nil {
		return nil, 0, fmt.Errorf("loadgen: /debug/trace missing traceEvents array")
	}
	return blob, len(doc.TraceEvents), nil
}
