package loadgen

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"voltage/internal/cluster"
	"voltage/internal/core"
	"voltage/internal/metrics"
	"voltage/internal/model"
	"voltage/internal/sched"
	"voltage/internal/server"
)

// TestPlanDeterministic is the reproducibility contract: the same config
// plans the same trace, bit for bit; a different seed plans a different
// one.
func TestPlanDeterministic(t *testing.T) {
	cfg := TraceConfig{Seed: 42, DurationMS: 500, Arrival: ArrivalPoisson, RatePerSec: 80}
	a, err := Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("planned no requests")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config planned different traces")
	}
	cfg.Seed = 43
	c, err := Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds planned identical traces")
	}
	// The mix holds both classes and the planned sizes respect bounds.
	var interactive, generate int
	for _, q := range a {
		if q.Interactive {
			interactive++
			if q.Steps != 0 {
				t.Fatal("interactive request carries decode steps")
			}
		} else {
			generate++
			if q.Steps < 2 || q.Steps > 12 {
				t.Fatalf("steps %d outside default pareto bounds [2,12]", q.Steps)
			}
		}
		if len(q.Prompt) < 2 || len(q.Prompt) > 24 {
			t.Fatalf("prompt length %d outside default pareto bounds [2,24]", len(q.Prompt))
		}
	}
	if interactive == 0 || generate == 0 {
		t.Fatalf("mix degenerate: %d interactive, %d generate", interactive, generate)
	}
}

func TestPlanArrivalShapes(t *testing.T) {
	onoff := TraceConfig{Seed: 7, DurationMS: 800, Arrival: ArrivalOnOff, RatePerSec: 200, OnMS: 100, OffMS: 100}
	reqs, err := Plan(onoff)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range reqs {
		phase := q.At % (200 * time.Millisecond)
		if phase >= 100*time.Millisecond {
			t.Fatalf("on/off arrival at %v lands in an off phase", q.At)
		}
	}
	closed := TraceConfig{Seed: 7, DurationMS: 300, Arrival: ArrivalClosed, Concurrency: 3}
	reqs, err = Plan(closed)
	if err != nil {
		t.Fatal(err)
	}
	workers := map[int]bool{}
	for _, q := range reqs {
		workers[q.Worker] = true
	}
	if len(workers) != 3 {
		t.Fatalf("closed plan spans %d workers, want 3", len(workers))
	}
	if _, err := Plan(TraceConfig{Arrival: "warp"}); err == nil {
		t.Fatal("unknown arrival accepted")
	}
}

func TestLengthDistBounds(t *testing.T) {
	cfg := TraceConfig{Seed: 1, DurationMS: 400, Arrival: ArrivalPoisson, RatePerSec: 300,
		Prompt: LengthDist{Dist: "pareto", Min: 3, Max: 9, Alpha: 1.1},
		Steps:  LengthDist{Dist: "uniform", Min: 2, Max: 4}}
	reqs, err := Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range reqs {
		if n := len(q.Prompt); n < 3 || n > 9 {
			t.Fatalf("pareto prompt length %d outside [3,9]", n)
		}
		if !q.Interactive && (q.Steps < 2 || q.Steps > 4) {
			t.Fatalf("uniform steps %d outside [2,4]", q.Steps)
		}
	}
}

// startGateway brings up a hermetic in-process gateway and returns its
// base URL.
func startGateway(t *testing.T, k int, schedOpts sched.Options) string {
	t.Helper()
	eng, err := core.New(model.TinyDecoder().Scaled(1), k, cluster.Options{MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	registry := eng.Cluster().MetricsRegistry()
	if registry == nil {
		registry = metrics.NewRegistry()
	}
	gw, err := server.New(eng, server.Options{Registry: registry, Sched: schedOpts})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: gw.Handler()}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return "http://" + ln.Addr().String()
}

// TestRunHermetic drives a seeded mixed-class trace through an in-process
// gateway and checks every summary field the BENCH contract depends on.
func TestRunHermetic(t *testing.T) {
	base := startGateway(t, 2, sched.Options{Workers: 4})
	cfg := TraceConfig{Seed: 11, DurationMS: 600, Arrival: ArrivalPoisson, RatePerSec: 50,
		Steps: LengthDist{Dist: "uniform", Min: 2, Max: 4}}
	sum, err := NewRunner(cfg, base).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Planned == 0 || sum.WallMS <= 0 {
		t.Fatalf("degenerate run: planned=%d wall=%v", sum.Planned, sum.WallMS)
	}
	if sum.Interactive.OK == 0 || sum.Generate.OK == 0 {
		t.Fatalf("served counts interactive=%d generate=%d, want both > 0", sum.Interactive.OK, sum.Generate.OK)
	}
	if sum.Generate.Tokens == 0 || sum.TokensPerSec <= 0 {
		t.Fatalf("no token throughput: tokens=%d tok/s=%v", sum.Generate.Tokens, sum.TokensPerSec)
	}
	if sum.AchievedRPS <= 0 {
		t.Fatalf("achieved rps %v", sum.AchievedRPS)
	}
	if c := sum.Generate.TTFTMS.Count; c == 0 {
		t.Fatal("no TTFT samples for streamed generates")
	}
	if sum.Generate.E2EMS.P99 < sum.Generate.E2EMS.P50 {
		t.Fatalf("p99 %v < p50 %v", sum.Generate.E2EMS.P99, sum.Generate.E2EMS.P50)
	}
	// Server-truth counters were scraped and agree with the client view.
	if sum.Server == nil {
		t.Fatal("no server counters scraped")
	}
	if got := sum.Server.Served["interactive"]; got != uint64(sum.Interactive.OK) {
		t.Fatalf("server served[interactive] = %d, client ok = %d", got, sum.Interactive.OK)
	}
	if got := sum.Server.Served["batch"]; got != uint64(sum.Generate.OK) {
		t.Fatalf("server served[batch] = %d, client ok = %d", got, sum.Generate.OK)
	}
	// The written summary passes the CI schema gate.
	path := filepath.Join(t.TempDir(), "summary.json")
	blob, err := json.Marshal(sum)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := CheckFile(path); err != nil {
		t.Fatal(err)
	}
}

// TestRunShedAccounting overloads a cap-1 queue and requires the sheds to
// be visible both client-side (by cause) and in the scraped scheduler
// counters.
func TestRunShedAccounting(t *testing.T) {
	base := startGateway(t, 2, sched.Options{Workers: 1, InteractiveDepth: 1, BatchDepth: 1})
	one := 1.0
	cfg := TraceConfig{Seed: 5, DurationMS: 400, Arrival: ArrivalOnOff, RatePerSec: 400,
		OnMS: 100, OffMS: 50, InteractiveFraction: &one,
		Prompt: LengthDist{Dist: "fixed", Min: 8}}
	sum, err := NewRunner(cfg, base).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Interactive.Failed == 0 {
		t.Fatal("overload produced no client-visible sheds")
	}
	if sum.Interactive.ShedByCause["queue_full"] == 0 {
		t.Fatalf("shed causes %v, want queue_full > 0", sum.Interactive.ShedByCause)
	}
	if sum.Server == nil || sum.Server.Shed["queue_full"] == 0 {
		t.Fatalf("server shed counters %+v, want queue_full > 0", sum.Server)
	}
}

// TestGridEmitsBenchContract runs a tiny grid end to end: cells for every
// swept configuration, a well-formed BENCH file plus CSV, and a working
// compare against both schema generations.
func TestGridEmitsBenchContract(t *testing.T) {
	if testing.Short() {
		t.Skip("grid run in -short mode")
	}
	cfg := GridConfig{
		Name: "test-grid", Issue: 8, Layers: 1,
		LocalWorkers: []int{2}, MaxBatch: []int{1, 4}, OfferedRPS: []float64{40},
		Repeats: 2, GatewayWorkers: 4,
		Trace: TraceConfig{Seed: 3, DurationMS: 300, Arrival: ArrivalPoisson,
			Steps: LengthDist{Dist: "uniform", Min: 2, Max: 3}},
	}
	bench, err := RunGrid(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := 1 * 2 * 1 * 2; len(bench.Cells) != want {
		t.Fatalf("grid ran %d cells, want %d", len(bench.Cells), want)
	}
	if bench.Aggregate.TokensPerSec <= 0 || bench.Aggregate.BestConfig == "" {
		t.Fatalf("degenerate aggregate %+v", bench.Aggregate)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_test.json")
	if err := WriteBench(bench, path); err != nil {
		t.Fatal(err)
	}
	if err := CheckFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "BENCH_test.csv")); err != nil {
		t.Fatalf("no sibling CSV: %v", err)
	}

	// Compare: current bench against itself passes; against an inflated
	// legacy baseline fails with the regression verdict.
	if _, err := Compare(bench, path, 0.10); err != nil {
		t.Fatalf("self-compare regressed: %v", err)
	}
	legacy := filepath.Join(dir, "BENCH_legacy.json")
	inflated := map[string]any{"after": map[string]any{"tokens_per_sec": bench.Aggregate.TokensPerSec * 10}}
	blob, _ := json.Marshal(inflated)
	if err := os.WriteFile(legacy, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Compare(bench, legacy, 0.10); err == nil {
		t.Fatal("10x-inflated legacy baseline not flagged as a regression")
	}
	deflated := map[string]any{"after": map[string]any{"tokens_per_sec": bench.Aggregate.TokensPerSec / 10}}
	blob, _ = json.Marshal(deflated)
	if err := os.WriteFile(legacy, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Compare(bench, legacy, 0.10); err != nil {
		t.Fatalf("faster-than-baseline run flagged: %v", err)
	}
}

// TestCheckFileRejectsMalformed guards the CI schema gate itself.
func TestCheckFileRejectsMalformed(t *testing.T) {
	dir := t.TempDir()
	for name, body := range map[string]string{
		"not-json.json":    "{nope",
		"empty-cells.json": `{"schema":"voltage-load/v1","cells":[],"aggregate":{}}`,
		"no-tok.json":      `{"schema":"voltage-load/v1","cells":[{"label":"x","summary":{"planned":1,"wall_ms":1,"interactive":{"requests":1,"ok":1,"e2e_ms":{"count":1}},"generate":{"e2e_ms":{}}}}],"aggregate":{"tokens_per_sec":0}}`,
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := CheckFile(path); err == nil {
			t.Errorf("%s accepted, want schema error", name)
		}
	}
}
