package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
)

// Baseline is a recorded benchmark's headline throughput, extracted from
// either schema generation.
type Baseline struct {
	Path         string
	Schema       string // BenchSchema, or "legacy" for pre-harness files
	TokensPerSec float64
}

// LoadBaseline reads a BENCH_*.json file of either generation:
//
//   - voltage-load/v1 (this harness): aggregate.tokens_per_sec
//   - legacy one-off benchmark records (BENCH_6.json): after.tokens_per_sec
func LoadBaseline(path string) (Baseline, error) {
	b := Baseline{Path: path}
	blob, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	var probe struct {
		Schema    string `json:"schema"`
		Aggregate struct {
			TokensPerSec float64 `json:"tokens_per_sec"`
		} `json:"aggregate"`
		After struct {
			TokensPerSec float64 `json:"tokens_per_sec"`
		} `json:"after"`
	}
	if err := json.Unmarshal(blob, &probe); err != nil {
		return b, fmt.Errorf("loadgen: parse baseline %s: %w", path, err)
	}
	switch {
	case probe.Schema == BenchSchema:
		b.Schema = BenchSchema
		b.TokensPerSec = probe.Aggregate.TokensPerSec
	case probe.After.TokensPerSec > 0:
		b.Schema = "legacy"
		b.TokensPerSec = probe.After.TokensPerSec
	default:
		return b, fmt.Errorf("loadgen: %s: neither a %s bench nor a legacy record with after.tokens_per_sec", path, BenchSchema)
	}
	if b.TokensPerSec <= 0 {
		return b, fmt.Errorf("loadgen: %s: baseline tokens_per_sec %v not positive", path, b.TokensPerSec)
	}
	return b, nil
}

// Compare checks current against the baseline at baselinePath: an error is
// returned when current's aggregate tok/s falls more than threshold
// (fractional, e.g. 0.10) below the baseline. Comparisons are only
// meaningful between runs of the same grid on the same hardware — the
// caller owns that discipline; Compare owns the arithmetic.
func Compare(current *Bench, baselinePath string, threshold float64) (string, error) {
	base, err := LoadBaseline(baselinePath)
	if err != nil {
		return "", err
	}
	cur := current.Aggregate.TokensPerSec
	floor := base.TokensPerSec * (1 - threshold)
	verdict := fmt.Sprintf("aggregate tok/s %.1f vs baseline %.1f (%s, %s): floor at -%.0f%% is %.1f",
		cur, base.TokensPerSec, base.Path, base.Schema, threshold*100, floor)
	if cur < floor {
		return verdict, fmt.Errorf("loadgen: throughput regression: %s", verdict)
	}
	return verdict, nil
}

// CheckFile validates a harness output file's shape — the CI smoke's
// dependency-free schema gate. It accepts both a grid bench
// (schema voltage-load/v1, cells + aggregate) and a single-trace summary
// (interactive/generate classes + wall clock).
func CheckFile(path string) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var probe struct {
		Schema string          `json:"schema"`
		Cells  json.RawMessage `json:"cells"`
	}
	if err := json.Unmarshal(blob, &probe); err != nil {
		return fmt.Errorf("loadgen: %s: not JSON: %w", path, err)
	}
	if probe.Schema == BenchSchema || probe.Cells != nil {
		return checkBench(path, blob)
	}
	var sum Summary
	if err := json.Unmarshal(blob, &sum); err != nil {
		return fmt.Errorf("loadgen: %s: not a summary: %w", path, err)
	}
	return checkSummary(path, &sum)
}

// checkBench validates the BENCH_<pr>.json contract.
func checkBench(path string, blob []byte) error {
	var b Bench
	if err := json.Unmarshal(blob, &b); err != nil {
		return fmt.Errorf("loadgen: %s: not a bench: %w", path, err)
	}
	if b.Schema != BenchSchema {
		return fmt.Errorf("loadgen: %s: schema %q, want %q", path, b.Schema, BenchSchema)
	}
	if len(b.Cells) == 0 {
		return fmt.Errorf("loadgen: %s: no cells", path)
	}
	for _, c := range b.Cells {
		if c.Summary == nil {
			return fmt.Errorf("loadgen: %s: cell %q has no summary", path, c.Label)
		}
		if err := checkSummary(fmt.Sprintf("%s cell %q", path, c.Label), c.Summary); err != nil {
			return err
		}
	}
	if b.Aggregate.TokensPerSec <= 0 {
		return fmt.Errorf("loadgen: %s: aggregate tokens_per_sec %v not positive", path, b.Aggregate.TokensPerSec)
	}
	if b.Aggregate.BestConfig == "" {
		return fmt.Errorf("loadgen: %s: aggregate names no best_config", path)
	}
	return nil
}

// checkSummary validates one trace summary's shape.
func checkSummary(what string, s *Summary) error {
	if s.WallMS <= 0 {
		return fmt.Errorf("loadgen: %s: wall_ms %v not positive", what, s.WallMS)
	}
	if s.Planned <= 0 {
		return fmt.Errorf("loadgen: %s: no planned requests", what)
	}
	total := s.Interactive.Requests + s.Generate.Requests
	if total != s.Planned {
		return fmt.Errorf("loadgen: %s: classes account for %d of %d planned requests", what, total, s.Planned)
	}
	for _, cs := range []struct {
		name string
		c    ClassSummary
	}{{"interactive", s.Interactive}, {"generate", s.Generate}} {
		if cs.c.OK+cs.c.Failed != cs.c.Requests {
			return fmt.Errorf("loadgen: %s: %s ok+failed = %d, want %d", what, cs.name, cs.c.OK+cs.c.Failed, cs.c.Requests)
		}
		if cs.c.E2EMS.Count != cs.c.OK {
			return fmt.Errorf("loadgen: %s: %s e2e population %d, want %d", what, cs.name, cs.c.E2EMS.Count, cs.c.OK)
		}
	}
	return nil
}
