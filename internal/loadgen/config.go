// Package loadgen is the trace-driven load harness: it replays
// configurable traffic traces against a running gateway (an HTTP base URL
// — a voltage-server process or an in-process server.Server handler on a
// loopback listener) and measures what the serving stack actually
// delivered: queue wait, batch wait, time-to-first-token, per-token and
// end-to-end latency percentiles, shed counts by cause and class, and
// achieved request and token throughput.
//
// Traces are planned up front from a seeded PRNG, so the offered workload
// — arrival times, class mix, heavy-tailed prompt and step lengths — is
// bit-reproducible under the same TraceConfig. Measured latencies are of
// course wall-clock, but what was *asked* of the server never varies
// between runs, which is what makes BENCH_<pr>.json files comparable
// across PRs.
//
// The grid runner (grid.go) sweeps offered load × MaxBatch × worker count
// with N repeats over hermetic in-process gateways and emits the
// BENCH_<pr>.json every subsequent PR is held to; compare.go checks a new
// bench file against a recorded baseline and fails on regression.
package loadgen

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"time"
)

// Arrival processes.
const (
	// ArrivalPoisson is open-loop: exponential inter-arrival times at
	// RatePerSec, independent of how the server keeps up.
	ArrivalPoisson = "poisson"
	// ArrivalOnOff is bursty open-loop: Poisson at RatePerSec during
	// OnMS-long bursts, silence for OffMS between them.
	ArrivalOnOff = "onoff"
	// ArrivalClosed is closed-loop: Concurrency workers each issue their
	// next request ThinkMS after the previous response lands.
	ArrivalClosed = "closed"
)

// LengthDist draws request sizes (prompt tokens, decode steps). The
// zero value is "fixed" at Min.
type LengthDist struct {
	// Dist is "fixed" (Min), "uniform" (Min..Max inclusive), or "pareto"
	// (bounded Pareto over Min..Max with shape Alpha — the heavy-tailed
	// mix real prompt traffic shows: mostly short, occasionally huge).
	Dist string `json:"dist,omitempty"`
	Min  int    `json:"min"`
	Max  int    `json:"max,omitempty"`
	// Alpha is the Pareto shape (default 1.5; smaller = heavier tail).
	Alpha float64 `json:"alpha,omitempty"`
}

// draw samples one length from the distribution.
func (d LengthDist) draw(rng *rand.Rand) int {
	min, max := d.Min, d.Max
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	switch d.Dist {
	case "", "fixed":
		return min
	case "uniform":
		return min + rng.Intn(max-min+1)
	case "pareto":
		alpha := d.Alpha
		if alpha <= 0 {
			alpha = 1.5
		}
		// Bounded Pareto via inverse transform: heavy tail, hard cap.
		lo, hi := float64(min), float64(max)+1
		u := rng.Float64()
		x := math.Pow(math.Pow(lo, -alpha)-u*(math.Pow(lo, -alpha)-math.Pow(hi, -alpha)), -1/alpha)
		n := int(x)
		if n < min {
			n = min
		}
		if n > max {
			n = max
		}
		return n
	default:
		return min
	}
}

// validate rejects unknown distributions at config-load time.
func (d LengthDist) validate(what string) error {
	switch d.Dist {
	case "", "fixed", "uniform", "pareto":
		return nil
	default:
		return fmt.Errorf("loadgen: %s: unknown dist %q", what, d.Dist)
	}
}

// TraceConfig describes one reproducible traffic trace.
type TraceConfig struct {
	// Seed makes the planned trace deterministic.
	Seed int64 `json:"seed"`
	// DurationMS bounds the arrival window (closed-loop: the run window).
	DurationMS int `json:"duration_ms"`
	// Arrival selects the process: poisson | onoff | closed.
	Arrival string `json:"arrival"`
	// RatePerSec is the offered load for open-loop processes (during the
	// on-phase for onoff).
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// OnMS/OffMS shape the onoff process (defaults 200/200).
	OnMS  int `json:"on_ms,omitempty"`
	OffMS int `json:"off_ms,omitempty"`
	// Concurrency is the closed-loop worker count (default 4).
	Concurrency int `json:"concurrency,omitempty"`
	// ThinkMS is the closed-loop pause between a response and the worker's
	// next request (default 0).
	ThinkMS int `json:"think_ms,omitempty"`
	// InteractiveFraction is the probability an arrival is a /v1/classify
	// request (the rest stream /v1/generate). Default 0.5.
	InteractiveFraction *float64 `json:"interactive_fraction,omitempty"`
	// Prompt and Steps size each request (defaults: pareto 2..24 α1.5 and
	// pareto 2..12 α1.2 — mostly short, occasionally long).
	Prompt LengthDist `json:"prompt"`
	Steps  LengthDist `json:"steps"`
	// VocabSize bounds the random token ids drawn for prompts (default 100,
	// the tiny presets' vocabulary).
	VocabSize int `json:"vocab_size,omitempty"`
	// TimeoutMS, when set, rides on every request as its SLO deadline.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// MaxInflight bounds open-loop concurrency so a stalled server cannot
	// leak unbounded goroutines (default 512).
	MaxInflight int `json:"max_inflight,omitempty"`
}

// withDefaults fills unset fields.
func (c TraceConfig) withDefaults() TraceConfig {
	if c.DurationMS <= 0 {
		c.DurationMS = 1000
	}
	if c.Arrival == "" {
		c.Arrival = ArrivalPoisson
	}
	if c.RatePerSec <= 0 {
		c.RatePerSec = 20
	}
	if c.OnMS <= 0 {
		c.OnMS = 200
	}
	if c.OffMS <= 0 {
		c.OffMS = 200
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 4
	}
	if c.InteractiveFraction == nil {
		f := 0.5
		c.InteractiveFraction = &f
	}
	if c.Prompt == (LengthDist{}) {
		c.Prompt = LengthDist{Dist: "pareto", Min: 2, Max: 24, Alpha: 1.5}
	}
	if c.Steps == (LengthDist{}) {
		c.Steps = LengthDist{Dist: "pareto", Min: 2, Max: 12, Alpha: 1.2}
	}
	if c.VocabSize <= 0 {
		c.VocabSize = 100
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 512
	}
	return c
}

// Validate rejects malformed trace configs.
func (c TraceConfig) Validate() error {
	switch c.Arrival {
	case "", ArrivalPoisson, ArrivalOnOff, ArrivalClosed:
	default:
		return fmt.Errorf("loadgen: unknown arrival process %q", c.Arrival)
	}
	if c.InteractiveFraction != nil && (*c.InteractiveFraction < 0 || *c.InteractiveFraction > 1) {
		return fmt.Errorf("loadgen: interactive_fraction %v outside [0,1]", *c.InteractiveFraction)
	}
	if err := c.Prompt.validate("prompt"); err != nil {
		return err
	}
	return c.Steps.validate("steps")
}

// Request is one planned request of the trace.
type Request struct {
	// At is the arrival offset from trace start (open-loop only; closed-
	// loop workers pace themselves).
	At time.Duration
	// Worker is the issuing closed-loop worker (-1 for open-loop).
	Worker int
	// Interactive selects /v1/classify (true) vs streaming /v1/generate.
	Interactive bool
	// Prompt is the token-id payload.
	Prompt []int
	// Steps is the decode budget (generate only).
	Steps int
	// TimeoutMS is the request SLO (0 = none).
	TimeoutMS int64
}

// Plan expands the config into its deterministic request list: same
// config, same trace, every time. Open-loop plans are ordered by arrival
// offset; closed-loop plans hold Concurrency per-worker sequences (enough
// to outlast the run window) tagged with Worker.
func Plan(cfg TraceConfig) ([]Request, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	window := time.Duration(cfg.DurationMS) * time.Millisecond

	mk := func(worker int, at time.Duration) Request {
		r := Request{
			At:          at,
			Worker:      worker,
			Interactive: rng.Float64() < *cfg.InteractiveFraction,
			TimeoutMS:   cfg.TimeoutMS,
		}
		n := cfg.Prompt.draw(rng)
		r.Prompt = make([]int, n)
		for i := range r.Prompt {
			r.Prompt[i] = 1 + rng.Intn(cfg.VocabSize-1)
		}
		if !r.Interactive {
			r.Steps = cfg.Steps.draw(rng)
		}
		return r
	}

	var reqs []Request
	switch cfg.Arrival {
	case ArrivalPoisson:
		for at := expDelay(rng, cfg.RatePerSec); at < window; at += expDelay(rng, cfg.RatePerSec) {
			reqs = append(reqs, mk(-1, at))
		}
	case ArrivalOnOff:
		on := time.Duration(cfg.OnMS) * time.Millisecond
		off := time.Duration(cfg.OffMS) * time.Millisecond
		for phase := time.Duration(0); phase < window; phase += on + off {
			burstEnd := phase + on
			if burstEnd > window {
				burstEnd = window
			}
			for at := phase + expDelay(rng, cfg.RatePerSec); at < burstEnd; at += expDelay(rng, cfg.RatePerSec) {
				reqs = append(reqs, mk(-1, at))
			}
		}
	case ArrivalClosed:
		// Each worker gets a generous sequence; the runner stops issuing
		// when the window closes, so unused tail entries just never fire.
		perWorker := cfg.DurationMS/10 + 16
		for w := 0; w < cfg.Concurrency; w++ {
			for i := 0; i < perWorker; i++ {
				reqs = append(reqs, mk(w, 0))
			}
		}
	}
	return reqs, nil
}

// expDelay draws one exponential inter-arrival gap.
func expDelay(rng *rand.Rand, ratePerSec float64) time.Duration {
	return time.Duration(rng.ExpFloat64() / ratePerSec * float64(time.Second))
}

// LoadTraceConfig reads a TraceConfig JSON file.
func LoadTraceConfig(path string) (TraceConfig, error) {
	var cfg TraceConfig
	b, err := os.ReadFile(path)
	if err != nil {
		return cfg, err
	}
	if err := json.Unmarshal(b, &cfg); err != nil {
		return cfg, fmt.Errorf("loadgen: parse %s: %w", path, err)
	}
	return cfg, cfg.Validate()
}
