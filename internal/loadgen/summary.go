package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Pctiles summarizes one latency population in milliseconds.
type Pctiles struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// pctiles computes the summary of a millisecond population.
func pctiles(ms []float64) Pctiles {
	p := Pctiles{Count: len(ms)}
	if len(ms) == 0 {
		return p
	}
	sort.Float64s(ms)
	var sum float64
	for _, v := range ms {
		sum += v
	}
	at := func(q float64) float64 {
		i := int(q * float64(len(ms)-1))
		return ms[i]
	}
	p.Mean = sum / float64(len(ms))
	p.P50, p.P95, p.P99 = at(0.50), at(0.95), at(0.99)
	p.Max = ms[len(ms)-1]
	return p
}

// ClassSummary is one request class's client-side view of the run.
type ClassSummary struct {
	Requests int `json:"requests"`
	OK       int `json:"ok"`
	Failed   int `json:"failed"`
	// ShedByCause counts non-OK outcomes by client-visible cause
	// (queue_full, deadline, draining, degraded, body_limit, transport,
	// stream_error, http_<code>).
	ShedByCause map[string]int `json:"shed_by_cause,omitempty"`
	// Retried / DegradedRuns count OK requests that reported mid-run
	// retries or degraded service.
	Retried      int `json:"retried,omitempty"`
	DegradedRuns int `json:"degraded_runs,omitempty"`

	E2EMS   Pctiles `json:"e2e_ms"`
	QueueMS Pctiles `json:"queue_ms"`
	// Generate-only populations (zero Count for interactive).
	TTFTMS      Pctiles `json:"ttft_ms,omitempty"`
	PerTokenMS  Pctiles `json:"per_token_ms,omitempty"`
	BatchWaitMS Pctiles `json:"batch_wait_ms,omitempty"`
	// Tokens is the total token lines streamed by this class.
	Tokens int `json:"tokens,omitempty"`
}

// ServerCounters is the server-truth view scraped from /v1/queue and
// /metrics, reported as the delta across the run.
type ServerCounters struct {
	// Shed is the scheduler's shed-by-cause delta (queue_full, deadline,
	// degraded, draining, canceled).
	Shed map[string]uint64 `json:"shed,omitempty"`
	// Served / Failed are per-class completion deltas.
	Served map[string]uint64 `json:"served,omitempty"`
	Failed map[string]uint64 `json:"failed,omitempty"`
	// FusedSteps and MeanBatchWidth report how much decode work actually
	// co-batched (zero when the backend exposes no batch metrics).
	FusedSteps     uint64  `json:"fused_steps,omitempty"`
	MeanBatchWidth float64 `json:"mean_batch_width,omitempty"`
}

// Summary is one trace run's full measurement.
type Summary struct {
	Config TraceConfig `json:"config"`
	// Planned is how many requests the trace offered; WallMS the run's
	// wall-clock span.
	Planned int     `json:"planned"`
	WallMS  float64 `json:"wall_ms"`
	// OfferedRPS is the planned arrival rate, AchievedRPS the completed-OK
	// rate, TokensPerSec the aggregate streamed-token throughput.
	OfferedRPS   float64 `json:"offered_rps"`
	AchievedRPS  float64 `json:"achieved_rps"`
	TokensPerSec float64 `json:"tokens_per_sec"`

	Interactive ClassSummary `json:"interactive"`
	Generate    ClassSummary `json:"generate"`

	Server *ServerCounters `json:"server,omitempty"`
}

// summarize folds the samples into the run report.
func summarize(cfg TraceConfig, samples []sample, wall time.Duration) *Summary {
	cfg = cfg.withDefaults()
	sum := &Summary{
		Config:  cfg,
		Planned: len(samples),
		WallMS:  float64(wall) / float64(time.Millisecond),
	}
	if cfg.Arrival != ArrivalClosed {
		sum.OfferedRPS = cfg.RatePerSec
	}

	type pop struct{ e2e, queue, ttft, perTok, batchWait []float64 }
	var pops [2]pop
	class := func(interactive bool) (*ClassSummary, *pop) {
		if interactive {
			return &sum.Interactive, &pops[0]
		}
		return &sum.Generate, &pops[1]
	}
	for _, s := range samples {
		cs, p := class(s.interactive)
		cs.Requests++
		if s.failed {
			cs.Failed++
			if cs.ShedByCause == nil {
				cs.ShedByCause = make(map[string]int)
			}
			cause := s.shedCause
			if cause == "" {
				cause = "unknown"
			}
			cs.ShedByCause[cause]++
			continue
		}
		cs.OK++
		if s.retries > 0 {
			cs.Retried++
		}
		if s.degraded {
			cs.DegradedRuns++
		}
		p.e2e = append(p.e2e, float64(s.e2e)/float64(time.Millisecond))
		p.queue = append(p.queue, s.queueMS)
		if !s.interactive {
			cs.Tokens += s.tokens
			if s.ttft > 0 {
				p.ttft = append(p.ttft, float64(s.ttft)/float64(time.Millisecond))
			}
			if s.perTokenMS > 0 {
				p.perTok = append(p.perTok, s.perTokenMS)
			}
			p.batchWait = append(p.batchWait, s.batchWaitMS)
		}
	}
	for i, cs := range []*ClassSummary{&sum.Interactive, &sum.Generate} {
		p := &pops[i]
		cs.E2EMS = pctiles(p.e2e)
		cs.QueueMS = pctiles(p.queue)
		cs.TTFTMS = pctiles(p.ttft)
		cs.PerTokenMS = pctiles(p.perTok)
		cs.BatchWaitMS = pctiles(p.batchWait)
	}
	if wall > 0 {
		secs := wall.Seconds()
		sum.AchievedRPS = float64(sum.Interactive.OK+sum.Generate.OK) / secs
		sum.TokensPerSec = float64(sum.Generate.Tokens) / secs
	}
	return sum
}

// serverSnapshot is one scrape of /v1/queue plus /metrics.
type serverSnapshot struct {
	shed       map[string]uint64
	served     map[string]uint64
	failed     map[string]uint64
	batchSum   float64
	batchCount float64
	fusedSteps uint64
}

// scrapeServer reads the gateway's own counters. Best-effort: a target
// without /v1/queue (or mid-restart) reports ok=false and the summary
// simply omits the server-truth section.
func (r *Runner) scrapeServer() (serverSnapshot, bool) {
	snap := serverSnapshot{
		shed:   make(map[string]uint64),
		served: make(map[string]uint64),
		failed: make(map[string]uint64),
	}
	resp, err := r.client.Get(r.base + "/v1/queue")
	if err != nil {
		return snap, false
	}
	defer resp.Body.Close()
	var queue struct {
		Scheduler struct {
			Shed    map[string]uint64 `json:"shed"`
			Classes []struct {
				Class  string `json:"class"`
				Served uint64 `json:"served"`
				Failed uint64 `json:"failed"`
			} `json:"classes"`
		} `json:"scheduler"`
	}
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&queue) != nil {
		return snap, false
	}
	for cause, n := range queue.Scheduler.Shed {
		snap.shed[cause] = n
	}
	for _, c := range queue.Scheduler.Classes {
		snap.served[c.Class] = c.Served
		snap.failed[c.Class] = c.Failed
	}
	// /metrics is optional (no registry wired): ignore scrape failures.
	if mresp, err := r.client.Get(r.base + "/metrics"); err == nil {
		defer mresp.Body.Close()
		if mresp.StatusCode == http.StatusOK {
			body, _ := io.ReadAll(io.LimitReader(mresp.Body, 4<<20))
			snap.batchSum = promValue(body, "voltage_batch_size_sum")
			snap.batchCount = promValue(body, "voltage_batch_size_count")
			snap.fusedSteps = uint64(promValue(body, "voltage_fused_steps_total"))
		}
	}
	return snap, true
}

// promValue extracts one un-labeled sample value from Prometheus text.
func promValue(body []byte, family string) float64 {
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, family+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err == nil {
				return v
			}
		}
	}
	return 0
}

// diffServer reports the across-run delta of two snapshots.
func diffServer(before, after serverSnapshot) *ServerCounters {
	sc := &ServerCounters{
		Shed:   make(map[string]uint64),
		Served: make(map[string]uint64),
		Failed: make(map[string]uint64),
	}
	for cause, n := range after.shed {
		if d := n - before.shed[cause]; d > 0 {
			sc.Shed[cause] = d
		}
	}
	for class, n := range after.served {
		if d := n - before.served[class]; d > 0 {
			sc.Served[class] = d
		}
	}
	for class, n := range after.failed {
		if d := n - before.failed[class]; d > 0 {
			sc.Failed[class] = d
		}
	}
	if after.fusedSteps >= before.fusedSteps {
		sc.FusedSteps = after.fusedSteps - before.fusedSteps
	}
	if dc := after.batchCount - before.batchCount; dc > 0 {
		sc.MeanBatchWidth = (after.batchSum - before.batchSum) / dc
	}
	return sc
}

// TableRow renders the one-line fixed-width summary the grid runner
// prints per cell.
func (s *Summary) TableRow(label string) string {
	return fmt.Sprintf("%-28s ok %4d/%4d  shed %3d  rps %7.1f  tok/s %8.1f  e2e p50/p95/p99 %6.1f/%6.1f/%6.1f ms  ttft p95 %6.1f ms",
		label,
		s.Interactive.OK+s.Generate.OK,
		s.Interactive.Requests+s.Generate.Requests,
		s.Interactive.Failed+s.Generate.Failed,
		s.AchievedRPS, s.TokensPerSec,
		mergedP(s, func(p Pctiles) float64 { return p.P50 }),
		mergedP(s, func(p Pctiles) float64 { return p.P95 }),
		mergedP(s, func(p Pctiles) float64 { return p.P99 }),
		s.Generate.TTFTMS.P95,
	)
}

// mergedP blends the two classes' percentile weighted by population —
// display only; per-class JSON keeps the exact populations.
func mergedP(s *Summary, f func(Pctiles) float64) float64 {
	ni, ng := s.Interactive.E2EMS.Count, s.Generate.E2EMS.Count
	if ni+ng == 0 {
		return 0
	}
	return (f(s.Interactive.E2EMS)*float64(ni) + f(s.Generate.E2EMS)*float64(ng)) / float64(ni+ng)
}
