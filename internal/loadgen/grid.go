package loadgen

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"time"

	"voltage/internal/cluster"
	"voltage/internal/core"
	"voltage/internal/metrics"
	"voltage/internal/model"
	"voltage/internal/netem"
	"voltage/internal/sched"
	"voltage/internal/server"
)

// BenchSchema tags the grid runner's output files; compare/check sniff it.
const BenchSchema = "voltage-load/v1"

// GridConfig describes one experiment grid: the cross product of offered
// load × MaxBatch × worker count, each cell repeated Repeats times over a
// hermetic in-process gateway.
type GridConfig struct {
	Name  string `json:"name"`
	Issue int    `json:"issue,omitempty"`
	// Model/Layers/Seed build the in-process engine (defaults:
	// tiny-decoder, 1 layer, seed 1).
	Model  string `json:"model,omitempty"`
	Layers int    `json:"layers,omitempty"`
	Seed   int64  `json:"seed,omitempty"`
	// Swept dimensions (defaults: workers [3], max_batch [1,8],
	// offered_rps [20,60], repeats 2).
	LocalWorkers []int     `json:"local_workers,omitempty"`
	MaxBatch     []int     `json:"max_batch,omitempty"`
	OfferedRPS   []float64 `json:"offered_rps,omitempty"`
	Repeats      int       `json:"repeats,omitempty"`
	// Fixed serving parameters.
	GatewayWorkers int     `json:"gateway_workers,omitempty"`
	BatchWindowMS  int     `json:"batch_window_ms,omitempty"`
	DeviceFlops    float64 `json:"device_flops,omitempty"`
	BandwidthMbps  float64 `json:"bandwidth_mbps,omitempty"`
	// Trace is the base trace; each cell overrides its RatePerSec with the
	// cell's offered load (open-loop arrivals).
	Trace TraceConfig `json:"trace"`
}

// withDefaults fills unset grid fields.
func (g GridConfig) withDefaults() GridConfig {
	if g.Name == "" {
		g.Name = "voltage-load"
	}
	if g.Model == "" {
		g.Model = "tiny-decoder"
	}
	if g.Layers == 0 {
		g.Layers = 1
	}
	if g.Seed == 0 {
		g.Seed = 1
	}
	if len(g.LocalWorkers) == 0 {
		g.LocalWorkers = []int{3}
	}
	if len(g.MaxBatch) == 0 {
		g.MaxBatch = []int{1, 8}
	}
	if len(g.OfferedRPS) == 0 {
		g.OfferedRPS = []float64{20, 60}
	}
	if g.Repeats <= 0 {
		g.Repeats = 2
	}
	if g.GatewayWorkers <= 0 {
		g.GatewayWorkers = 8
	}
	if g.BatchWindowMS < 0 {
		g.BatchWindowMS = 0
	}
	return g
}

// LoadGridConfig reads a GridConfig JSON file.
func LoadGridConfig(path string) (GridConfig, error) {
	var cfg GridConfig
	b, err := os.ReadFile(path)
	if err != nil {
		return cfg, err
	}
	if err := json.Unmarshal(b, &cfg); err != nil {
		return cfg, fmt.Errorf("loadgen: parse %s: %w", path, err)
	}
	return cfg, cfg.Trace.Validate()
}

// BenchCell is one grid cell's result.
type BenchCell struct {
	Label      string   `json:"label"`
	OfferedRPS float64  `json:"offered_rps"`
	MaxBatch   int      `json:"max_batch"`
	Workers    int      `json:"workers"`
	Repeat     int      `json:"repeat"`
	Summary    *Summary `json:"summary"`
}

// BenchAggregate is the headline number later PRs are compared against:
// the best sustained throughput over the swept configurations, with each
// configuration's repeats averaged first.
type BenchAggregate struct {
	TokensPerSec  float64 `json:"tokens_per_sec"`
	ReqPerSec     float64 `json:"req_per_sec"`
	P99EndToEndMS float64 `json:"p99_e2e_ms"`
	BestConfig    string  `json:"best_config"`
}

// Bench is the BENCH_<pr>.json contract.
type Bench struct {
	Schema    string         `json:"schema"`
	Issue     int            `json:"issue,omitempty"`
	Name      string         `json:"name"`
	Host      string         `json:"host"`
	Grid      GridConfig     `json:"grid"`
	Cells     []BenchCell    `json:"cells"`
	Aggregate BenchAggregate `json:"aggregate"`
}

// RunGrid executes every cell of the grid over hermetic in-process
// gateways, streaming one table row per cell to progress (when non-nil).
func RunGrid(ctx context.Context, cfg GridConfig, progress io.Writer) (*Bench, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Trace.Validate(); err != nil {
		return nil, err
	}
	mcfg, err := model.Presets(cfg.Model)
	if err != nil {
		return nil, err
	}
	if cfg.Layers > 0 {
		mcfg = mcfg.Scaled(cfg.Layers)
	}
	bench := &Bench{
		Schema: BenchSchema,
		Issue:  cfg.Issue,
		Name:   cfg.Name,
		Host:   runtime.GOOS + "/" + runtime.GOARCH,
		Grid:   cfg,
	}
	for _, workers := range cfg.LocalWorkers {
		for _, maxBatch := range cfg.MaxBatch {
			for _, rps := range cfg.OfferedRPS {
				for rep := 0; rep < cfg.Repeats; rep++ {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
					cell := BenchCell{
						Label:      fmt.Sprintf("k=%d mb=%d rps=%g r=%d", workers, maxBatch, rps, rep),
						OfferedRPS: rps,
						MaxBatch:   maxBatch,
						Workers:    workers,
						Repeat:     rep,
					}
					sum, err := runCell(ctx, cfg, mcfg, workers, maxBatch, rps)
					if err != nil {
						return nil, fmt.Errorf("cell %s: %w", cell.Label, err)
					}
					cell.Summary = sum
					bench.Cells = append(bench.Cells, cell)
					if progress != nil {
						fmt.Fprintln(progress, sum.TableRow(cell.Label))
					}
				}
			}
		}
	}
	bench.Aggregate = aggregate(bench.Cells)
	return bench, nil
}

// runCell brings up one in-process gateway with the cell's serving
// parameters, replays the trace at the cell's offered load, and tears the
// gateway down.
func runCell(ctx context.Context, cfg GridConfig, mcfg model.Config, workers, maxBatch int, rps float64) (*Summary, error) {
	eng, err := core.New(mcfg, workers, cluster.Options{
		Seed:        cfg.Seed,
		MaxBatch:    maxBatch,
		BatchWindow: time.Duration(cfg.BatchWindowMS) * time.Millisecond,
		DeviceFlops: cfg.DeviceFlops,
		Profile:     netem.Profile{BandwidthMbps: cfg.BandwidthMbps},
	})
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	registry := eng.Cluster().MetricsRegistry()
	if registry == nil {
		registry = metrics.NewRegistry()
	}
	gw, err := server.New(eng, server.Options{
		Registry: registry,
		Sched:    sched.Options{Workers: cfg.GatewayWorkers},
	})
	if err != nil {
		return nil, err
	}
	defer gw.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: gw.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	defer func() {
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutCtx)
		<-serveErr
	}()

	trace := cfg.Trace
	trace.RatePerSec = rps
	return NewRunner(trace, "http://"+ln.Addr().String()).Run(ctx)
}

// aggregate picks the best configuration: cells grouped by everything but
// the repeat index, repeats averaged, best mean tok/s wins. Request
// throughput and tail latency are the winner's own means, so the headline
// numbers all describe one real configuration.
func aggregate(cells []BenchCell) BenchAggregate {
	type acc struct {
		n              int
		tokPerSec, rps float64
		p99MS          float64
		label          string
	}
	groups := map[string]*acc{}
	for _, c := range cells {
		key := fmt.Sprintf("k=%d mb=%d rps=%g", c.Workers, c.MaxBatch, c.OfferedRPS)
		g := groups[key]
		if g == nil {
			g = &acc{label: key}
			groups[key] = g
		}
		g.n++
		g.tokPerSec += c.Summary.TokensPerSec
		g.rps += c.Summary.AchievedRPS
		p99 := c.Summary.Generate.E2EMS.P99
		if ip99 := c.Summary.Interactive.E2EMS.P99; ip99 > p99 {
			p99 = ip99
		}
		g.p99MS += p99
	}
	var best BenchAggregate
	for _, g := range groups {
		tok := g.tokPerSec / float64(g.n)
		if tok > best.TokensPerSec {
			best = BenchAggregate{
				TokensPerSec:  tok,
				ReqPerSec:     g.rps / float64(g.n),
				P99EndToEndMS: g.p99MS / float64(g.n),
				BestConfig:    g.label,
			}
		}
	}
	return best
}

// WriteBench writes the bench JSON and a sibling per-cell CSV
// (<path minus .json>.csv).
func WriteBench(b *Bench, path string) error {
	blob, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	csvPath := path
	if len(csvPath) > 5 && csvPath[len(csvPath)-5:] == ".json" {
		csvPath = csvPath[:len(csvPath)-5]
	}
	return writeCellCSV(b, csvPath+".csv")
}

// writeCellCSV renders one row per cell for spreadsheet digestion.
func writeCellCSV(b *Bench, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	cw := csv.NewWriter(f)
	defer cw.Flush()
	if err := cw.Write([]string{
		"workers", "max_batch", "offered_rps", "repeat",
		"achieved_rps", "tokens_per_sec",
		"interactive_ok", "interactive_shed", "interactive_e2e_p50_ms", "interactive_e2e_p99_ms",
		"generate_ok", "generate_shed", "generate_ttft_p95_ms", "generate_e2e_p99_ms",
		"server_shed_total",
	}); err != nil {
		return err
	}
	for _, c := range cells(b) {
		s := c.Summary
		var serverShed uint64
		if s.Server != nil {
			for _, n := range s.Server.Shed {
				serverShed += n
			}
		}
		row := []string{
			fmt.Sprint(c.Workers), fmt.Sprint(c.MaxBatch), fmt.Sprint(c.OfferedRPS), fmt.Sprint(c.Repeat),
			fmt.Sprintf("%.2f", s.AchievedRPS), fmt.Sprintf("%.2f", s.TokensPerSec),
			fmt.Sprint(s.Interactive.OK), fmt.Sprint(s.Interactive.Failed),
			fmt.Sprintf("%.2f", s.Interactive.E2EMS.P50), fmt.Sprintf("%.2f", s.Interactive.E2EMS.P99),
			fmt.Sprint(s.Generate.OK), fmt.Sprint(s.Generate.Failed),
			fmt.Sprintf("%.2f", s.Generate.TTFTMS.P95), fmt.Sprintf("%.2f", s.Generate.E2EMS.P99),
			fmt.Sprint(serverShed),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	return nil
}

// cells guards against nil summaries (skipped cells never emit).
func cells(b *Bench) []BenchCell {
	out := b.Cells[:0:0]
	for _, c := range b.Cells {
		if c.Summary != nil {
			out = append(out, c)
		}
	}
	return out
}
