package loadgen

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestFetchChromeTrace(t *testing.T) {
	good := `{"traceEvents":[{"ph":"X","ts":0,"dur":5,"pid":1,"tid":0}],"displayTimeUnit":"ms"}`
	cases := []struct {
		name       string
		status     int
		body       string
		wantEvents int
		wantErr    string
	}{
		{"valid trace", http.StatusOK, good, 1, ""},
		{"empty trace", http.StatusOK, `{"traceEvents":[]}`, 0, ""},
		{"missing endpoint", http.StatusNotFound, "not here", 0, "HTTP 404"},
		{"not json", http.StatusOK, "<html>", 0, "not valid trace JSON"},
		{"missing array", http.StatusOK, `{"other":1}`, 0, "missing traceEvents"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.URL.Path != "/debug/trace" {
					t.Errorf("fetched %s, want /debug/trace", r.URL.Path)
				}
				w.WriteHeader(tc.status)
				_, _ = w.Write([]byte(tc.body))
			}))
			defer ts.Close()
			blob, events, err := FetchChromeTrace(nil, ts.URL)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err = %v, want %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if events != tc.wantEvents {
				t.Fatalf("%d events, want %d", events, tc.wantEvents)
			}
			if string(blob) != tc.body {
				t.Fatalf("blob altered: %s", blob)
			}
		})
	}
}
