package balance

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewTrackerValidation(t *testing.T) {
	if _, err := NewTracker(0, 0.5); err == nil {
		t.Fatal("want error for k=0")
	}
	if _, err := NewTracker(2, 1.5); err == nil {
		t.Fatal("want error for alpha > 1")
	}
	tr, err := NewTracker(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.K() != 3 {
		t.Fatal("K")
	}
}

func TestUpdateLengthCheck(t *testing.T) {
	tr, _ := NewTracker(2, 0.5)
	if err := tr.Update([]float64{1}); err == nil {
		t.Fatal("want error for wrong length")
	}
}

func TestSchemeEvenWithoutObservations(t *testing.T) {
	tr, _ := NewTracker(4, 0.5)
	s, err := tr.Scheme()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range s.Ratios() {
		if r != 0.25 {
			t.Fatalf("ratio %v, want even", r)
		}
	}
}

func TestSchemeProportionalToSpeed(t *testing.T) {
	tr, _ := NewTracker(2, 1) // alpha 1: latest observation wins
	// Device 0 takes 1 ms/position, device 1 takes 3 ms/position →
	// device 0 should get 3/4 of the work.
	if err := tr.Update([]float64{0.001, 0.003}); err != nil {
		t.Fatal(err)
	}
	s, err := tr.Scheme()
	if err != nil {
		t.Fatal(err)
	}
	r := s.Ratios()
	if math.Abs(r[0]-0.75) > 1e-9 || math.Abs(r[1]-0.25) > 1e-9 {
		t.Fatalf("ratios %v, want [0.75 0.25]", r)
	}
}

func TestUpdateEWMA(t *testing.T) {
	tr, _ := NewTracker(1, 0.5)
	_ = tr.Update([]float64{2})
	_ = tr.Update([]float64{4})
	// 0.5·4 + 0.5·2 = 3
	if got := tr.PerPosition()[0]; math.Abs(got-3) > 1e-12 {
		t.Fatalf("EWMA = %v, want 3", got)
	}
}

func TestUpdateSkipsNonObservations(t *testing.T) {
	tr, _ := NewTracker(2, 0.5)
	_ = tr.Update([]float64{2, 0})
	_ = tr.Update([]float64{2, math.NaN()})
	_ = tr.Update([]float64{2, math.Inf(1)})
	_ = tr.Update([]float64{2, -1})
	pp := tr.PerPosition()
	if pp[1] != 0 {
		t.Fatalf("non-observations should not update: %v", pp)
	}
	// Unknown device gets the mean observed seconds-per-position → even
	// split with one observed peer.
	s, err := tr.Scheme()
	if err != nil {
		t.Fatal(err)
	}
	r := s.Ratios()
	if math.Abs(r[0]-0.5) > 1e-9 {
		t.Fatalf("unknown device ratio %v", r)
	}
}

func TestSchemeColdStartImputesMeanPerPosition(t *testing.T) {
	// Regression: an unobserved rank must be treated as the mean observed
	// seconds-per-position, not the mean observed *speed*. With devices at
	// 1 ms and 3 ms per position the mean perPos is 2 ms → speeds
	// [1000, 333.3, 500] → ratios ∝ [6, 2, 3]. Mean-speed imputation would
	// hand the unobserved rank 666.7 (ratios ∝ [3, 1, 2]), over-slicing it
	// by a third before it has done any work.
	tr, _ := NewTracker(3, 1)
	if err := tr.Update([]float64{0.001, 0.003, 0}); err != nil {
		t.Fatal(err)
	}
	s, err := tr.Scheme()
	if err != nil {
		t.Fatal(err)
	}
	r := s.Ratios()
	want := []float64{6.0 / 11, 2.0 / 11, 3.0 / 11}
	for i := range want {
		if math.Abs(r[i]-want[i]) > 1e-9 {
			t.Fatalf("ratios %v, want %v", r, want)
		}
	}
}

func TestObservationRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		v := math.Abs(float64(seed%100000)) / 777.7
		if v == 0 {
			v = 1
		}
		got := DecodeObservation(EncodeObservation(v))
		return got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeObservationMalformed(t *testing.T) {
	if DecodeObservation([]byte{1, 2, 3}) != 0 {
		t.Fatal("short frame should decode as no-observation")
	}
	if DecodeObservation(EncodeObservation(math.NaN())) != 0 {
		t.Fatal("NaN should decode as no-observation")
	}
	if DecodeObservation(EncodeObservation(-1)) != 0 {
		t.Fatal("negative should decode as no-observation")
	}
}

func TestTrackerDeterminism(t *testing.T) {
	// Two trackers fed identical observation streams must derive
	// identical schemes — the property the distributed protocol relies
	// on (every worker runs its own tracker).
	a, _ := NewTracker(3, 0.5)
	b, _ := NewTracker(3, 0.5)
	streams := [][]float64{
		{0.002, 0.001, 0.004},
		{0.0021, 0.0012, 0.0038},
		{0, 0.0011, 0.0040},
	}
	for _, obs := range streams {
		_ = a.Update(obs)
		_ = b.Update(obs)
	}
	sa, err := a.Scheme()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.Scheme()
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := sa.Ratios(), sb.Ratios()
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("trackers diverged: %v vs %v", ra, rb)
		}
	}
}
