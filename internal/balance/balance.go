// Package balance implements runtime partition-scheme adaptation — the
// flexibility Section V-B of the Voltage paper points out: every device
// holds the full layer input after synchronization, so the scheme can
// change per layer "without any penalty".
//
// A Tracker keeps an exponentially weighted estimate of every device's
// seconds-per-position and derives the scheme that equalizes predicted
// finish times (ratios proportional to device speed). Workers feed it with
// timings exchanged at the existing synchronization point; because every
// worker applies identical updates to identical state, all devices derive
// the same scheme deterministically with no extra coordination round.
package balance

import (
	"encoding/binary"
	"fmt"
	"math"

	"voltage/internal/partition"
)

// DefaultAlpha is the EWMA smoothing factor: high enough to adapt within a
// few layers, low enough to ride out timing noise.
const DefaultAlpha = 0.5

// Tracker estimates per-device compute speed and derives schemes.
type Tracker struct {
	k      int
	alpha  float64
	perPos []float64 // EWMA seconds per position; 0 = no observation yet
}

// NewTracker returns a tracker for k devices. alpha ≤ 0 selects
// DefaultAlpha.
func NewTracker(k int, alpha float64) (*Tracker, error) {
	if k < 1 {
		return nil, fmt.Errorf("balance: k = %d", k)
	}
	if alpha <= 0 {
		alpha = DefaultAlpha
	}
	if alpha > 1 {
		return nil, fmt.Errorf("balance: alpha = %v > 1", alpha)
	}
	return &Tracker{k: k, alpha: alpha, perPos: make([]float64, k)}, nil
}

// K returns the tracked device count.
func (t *Tracker) K() int { return t.k }

// Update folds one round of observations in: times[r] is device r's
// measured seconds per position this layer, with values ≤ 0 (or NaN/Inf)
// meaning "no observation" (e.g. an empty partition), which keeps the
// previous estimate.
func (t *Tracker) Update(times []float64) error {
	if len(times) != t.k {
		return fmt.Errorf("balance: %d observations for %d devices", len(times), t.k)
	}
	for r, v := range times {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		if t.perPos[r] == 0 {
			t.perPos[r] = v
			continue
		}
		t.perPos[r] = t.alpha*v + (1-t.alpha)*t.perPos[r]
	}
	return nil
}

// PerPosition returns a copy of the current estimates (0 = unknown).
func (t *Tracker) PerPosition() []float64 {
	cp := make([]float64, t.k)
	copy(cp, t.perPos)
	return cp
}

// Scheme derives the speed-proportional partition scheme: device r's ratio
// ∝ 1/perPos[r]. Devices without observations are imputed the mean
// seconds-per-position of the observed ones — imputing mean *speed* (the
// old behaviour) skews the ratios toward the fast devices whenever the
// observed set is itself skewed, because 1/mean(perPos) ≠ mean(1/perPos).
// With no observations at all the scheme is even.
func (t *Tracker) Scheme() (*partition.Scheme, error) {
	est := t.Imputed()
	if est == nil {
		return partition.Even(t.k)
	}
	speeds := make([]float64, t.k)
	for r, pp := range est {
		speeds[r] = 1 / pp
	}
	return partition.Weighted(speeds)
}

// Imputed returns the per-device seconds-per-position estimates with
// unobserved devices filled in at the mean of the observed ones, or nil
// when nothing has been observed yet. It is what Scheme derives ratios
// from, exposed so a controller can predict round times under the same
// estimates.
func (t *Tracker) Imputed() []float64 {
	var sum float64
	var seen int
	for _, pp := range t.perPos {
		if pp > 0 {
			sum += pp
			seen++
		}
	}
	if seen == 0 {
		return nil
	}
	mean := sum / float64(seen)
	est := make([]float64, t.k)
	for r, pp := range t.perPos {
		if pp <= 0 {
			pp = mean
		}
		est[r] = pp
	}
	return est
}

// EncodeObservation serializes one device's seconds-per-position for the
// timing exchange (8 bytes, little-endian float64 bits).
func EncodeObservation(secPerPos float64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(secPerPos))
	return b[:]
}

// DecodeObservation parses an exchanged observation; malformed frames
// decode as "no observation" so one corrupt peer cannot poison the scheme.
func DecodeObservation(b []byte) float64 {
	if len(b) != 8 {
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(b))
	if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}
