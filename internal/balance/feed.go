package balance

import "voltage/internal/obs"

// FeedProfile folds an obs.Profile snapshot into the tracker: each worker
// rank's fused-decode-step EWMA becomes one seconds-per-position
// observation. The fused step runs the same replicated math on every
// worker, so step time measures each device's speed on identical work —
// it is each rank's seconds-per-unit-compute up to a common constant,
// which Weighted normalizes away. Ranks with fewer than minSamples step
// samples (or none) are skipped and keep their previous estimate; the
// terminal never contributes. Returns how many ranks contributed.
func FeedProfile(t *Tracker, p obs.Profile, minSamples uint64) (int, error) {
	times := make([]float64, t.k)
	n := 0
	for _, r := range p.Ranks {
		if r.Terminal || r.Rank < 0 || r.Rank >= t.k {
			continue
		}
		if r.StepSamples < minSamples || r.StepEWMASeconds <= 0 {
			continue
		}
		times[r.Rank] = r.StepEWMASeconds
		n++
	}
	if n == 0 {
		return 0, nil
	}
	return n, t.Update(times)
}
