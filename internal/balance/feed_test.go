package balance

import (
	"math"
	"testing"

	"voltage/internal/obs"
)

// profileWith builds a K=3 profile snapshot with the given per-worker step
// EWMAs and sample counts (terminal appended with no step samples).
func profileWith(ewmas []float64, samples []uint64) obs.Profile {
	p := obs.Profile{K: len(ewmas)}
	for r := range ewmas {
		p.Ranks = append(p.Ranks, obs.RankProfile{
			Rank: r, StepEWMASeconds: ewmas[r], StepSamples: samples[r],
		})
	}
	p.Ranks = append(p.Ranks, obs.RankProfile{Rank: len(ewmas), Terminal: true})
	return p
}

func TestFeedProfileUpdatesTracker(t *testing.T) {
	tr, _ := NewTracker(3, 1)
	p := profileWith([]float64{0.010, 0.010, 0.040}, []uint64{8, 8, 8})
	n, err := FeedProfile(tr, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("fed %d ranks, want 3", n)
	}
	s, err := tr.Scheme()
	if err != nil {
		t.Fatal(err)
	}
	// Speeds ∝ [1/0.01, 1/0.01, 1/0.04] → ratios [4/9, 4/9, 1/9]: the 4x
	// slower rank gets a quarter of a fast rank's positions.
	r := s.Ratios()
	want := []float64{4.0 / 9, 4.0 / 9, 1.0 / 9}
	for i := range want {
		if math.Abs(r[i]-want[i]) > 1e-9 {
			t.Fatalf("ratios %v, want %v", r, want)
		}
	}
}

func TestFeedProfileSkipsThinAndTerminalRanks(t *testing.T) {
	tr, _ := NewTracker(2, 1)
	// Rank 1 has too few samples; the terminal must never contribute.
	p := profileWith([]float64{0.010, 0.020}, []uint64{8, 2})
	p.Ranks[2].StepEWMASeconds = 0.5
	p.Ranks[2].StepSamples = 100
	n, err := FeedProfile(tr, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("fed %d ranks, want 1", n)
	}
	pp := tr.PerPosition()
	if pp[0] != 0.010 || pp[1] != 0 {
		t.Fatalf("perPos %v, want [0.01 0]", pp)
	}
}

func TestFeedProfileEmptySnapshot(t *testing.T) {
	tr, _ := NewTracker(2, 1)
	n, err := FeedProfile(tr, obs.Profile{}, 1)
	if err != nil || n != 0 {
		t.Fatalf("n=%d err=%v, want 0 ranks and no error", n, err)
	}
}
