// Package server is the inference gateway's network front door: a
// standard-library net/http JSON API over the admission scheduler
// (internal/sched) and the serving engine.
//
// Endpoints:
//
//	POST /v1/classify  one classification request (tokens or text);
//	                   scheduled in the interactive class
//	POST /v1/generate  KV-cached autoregressive generation with chunked
//	                   streaming token output (one JSON line per token);
//	                   scheduled in the batch class
//	GET  /v1/queue     scheduler introspection: per-class depths, shed
//	                   counts, inflight
//	GET  /healthz      worker health (503 when no rank serves)
//	GET  /metrics      Prometheus text exposition (when a registry is
//	                   wired)
//
// Shed decisions map onto transport status codes: a full queue or an
// unmeetable deadline is the caller's signal to back off (429), draining
// and degradation are the service's own unavailability (503). Request
// deadlines plumb from the client's timeout_ms straight into the
// scheduler's EDF ordering and the engine's request context.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"voltage/internal/cluster"
	"voltage/internal/core"
	"voltage/internal/metrics"
	"voltage/internal/model"
	"voltage/internal/obs"
	"voltage/internal/sched"
	"voltage/internal/tokenizer"
	"voltage/internal/trace"
)

// Backend is the inference engine the gateway fronts. *core.Engine
// implements it; the voltage-server binary also provides a TCP-mesh
// terminal backend.
type Backend interface {
	// Config returns the served model's configuration.
	Config() model.Config
	// ClassifyTokens serves one classification request.
	ClassifyTokens(ctx context.Context, strategy cluster.Strategy, ids []int) (*core.Prediction, error)
	// GenerateStream decodes steps tokens, calling onToken as each is
	// produced. Backends without generation support return an error. A
	// mid-stream failure may return a non-nil partial result alongside
	// the error, carrying the accounting accumulated before the failure.
	GenerateStream(ctx context.Context, prompt []int, steps int, onToken func(tok int)) (*cluster.GenerateResult, error)
	// Health reports per-worker serving eligibility (empty when the
	// backend has no health tracking).
	Health() []cluster.RankHealth
}

// Backend conformance of the in-process engine.
var _ Backend = (*core.Engine)(nil)

// Options configures a gateway server.
type Options struct {
	// Sched configures the admission scheduler. Sched.Health defaults to a
	// policy derived from Backend.Health (degraded when any rank is
	// unhealthy, dead when all are); Sched.Registry defaults to Registry.
	Sched sched.Options
	// Registry, when non-nil, is mounted at /metrics and receives the
	// gateway metric families.
	Registry *metrics.Registry
	// DefaultSteps bounds /v1/generate when the request names no step
	// count (default 16).
	DefaultSteps int
	// MaxSteps caps /v1/generate step counts (default 256).
	MaxSteps int
	// MaxBody caps request body size in bytes (default 1 MiB).
	MaxBody int64
	// EstimateInteractive / EstimateBatch are the expected service times
	// used for the deadline-before-service shed check (0 sheds only
	// already-expired deadlines).
	EstimateInteractive time.Duration
	EstimateBatch       time.Duration
}

// Server is a running gateway: an admission scheduler plus the HTTP
// handlers that feed it.
type Server struct {
	backend Backend
	sch     *sched.Scheduler
	tok     *tokenizer.Tokenizer
	opts    Options
	mux     *http.ServeMux
}

// New builds a gateway over backend and starts its scheduler.
func New(backend Backend, opts Options) (*Server, error) {
	if opts.DefaultSteps <= 0 {
		opts.DefaultSteps = 16
	}
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = 256
	}
	if opts.MaxBody <= 0 {
		opts.MaxBody = 1 << 20
	}
	if opts.Sched.Health == nil {
		opts.Sched.Health = func() sched.ClusterState { return healthState(backend.Health()) }
	}
	if opts.Sched.Registry == nil {
		opts.Sched.Registry = opts.Registry
	}
	fs, _ := backend.(flightSource)
	if opts.Sched.OnShed == nil && fs != nil {
		// Shed decisions are diagnostics gold: route them into the engine's
		// flight recorder so a post-incident dump shows what the gateway
		// turned away. Eventf only appends to a ring, so it is safe under
		// the scheduler's lock.
		flight := fs.Flight()
		opts.Sched.OnShed = func(class sched.Class, cause string) {
			flight.Eventf("shed", -1, "gateway shed %s request: %s", class, cause)
		}
	}
	tok, err := tokenizer.New(backend.Config().VocabSize)
	if err != nil {
		return nil, fmt.Errorf("server: tokenizer: %w", err)
	}
	s := &Server{
		backend: backend,
		sch:     sched.New(opts.Sched),
		tok:     tok,
		opts:    opts,
		mux:     http.NewServeMux(),
	}
	s.mux.HandleFunc("/v1/classify", s.handleClassify)
	s.mux.HandleFunc("/v1/generate", s.handleGenerate)
	s.mux.HandleFunc("/v1/queue", s.handleQueue)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	if opts.Registry != nil {
		s.mux.Handle("/metrics", metrics.Handler(opts.Registry))
	}
	if fs != nil {
		// Mirror the engine's debug surface on the gateway so load clients
		// reach the flight recorder and timeline export through the same
		// base URL they send inference to.
		s.mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(fs.FlightDump())
		})
		s.mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Content-Disposition", `attachment; filename="voltage-trace.json"`)
			_, _ = w.Write(fs.ChromeTrace())
		})
	}
	return s, nil
}

// flightSource is the optional backend capability behind the gateway's
// /debug/flight and /debug/trace endpoints and the shed → flight-event
// bridge. *core.Engine implements it; backends without a flight recorder
// (e.g. a remote TCP terminal) simply lack the endpoints.
type flightSource interface {
	Flight() *obs.FlightRecorder
	FlightDump() obs.Dump
	ChromeTrace() []byte
}

// healthState folds per-rank health into the scheduler's shed signal.
func healthState(ranks []cluster.RankHealth) sched.ClusterState {
	if len(ranks) == 0 {
		return sched.ClusterState{}
	}
	var down int
	for _, rh := range ranks {
		if rh.State == cluster.Unhealthy {
			down++
		}
	}
	return sched.ClusterState{Degraded: down > 0, Dead: down == len(ranks)}
}

// Handler returns the gateway's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Scheduler exposes the admission scheduler (introspection, tests).
func (s *Server) Scheduler() *sched.Scheduler { return s.sch }

// Drain stops admission and waits for in-flight work, bounded by ctx.
func (s *Server) Drain(ctx context.Context) error { return s.sch.Drain(ctx) }

// Close abandons queued work and stops the scheduler.
func (s *Server) Close() { s.sch.Close() }

// StatusFor maps a request error onto its HTTP status: shed decisions the
// caller should retry after backoff are 429, the service's own
// unavailability is 503, an expired deadline that reached the engine is
// 504, anything else is a 500.
func StatusFor(err error) int {
	switch {
	case errors.Is(err, sched.ErrQueueFull), errors.Is(err, sched.ErrDeadlineBeforeService):
		return http.StatusTooManyRequests
	case errors.Is(err, sched.ErrDraining), errors.Is(err, sched.ErrDegraded):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request (nginx convention)
	default:
		return http.StatusInternalServerError
	}
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
	Shed  bool   `json:"shed,omitempty"`
}

// writeError renders err as its mapped status with a JSON body. Shed
// responses carry Retry-After so well-behaved clients back off.
func writeError(w http.ResponseWriter, err error) {
	status := StatusFor(err)
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	shed := status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
	_ = json.NewEncoder(w).Encode(errorBody{Error: err.Error(), Shed: shed})
}

// classifyRequest is the /v1/classify body. Exactly one of Tokens or Text
// must be set.
type classifyRequest struct {
	Tokens    []int  `json:"tokens,omitempty"`
	Text      string `json:"text,omitempty"`
	Strategy  string `json:"strategy,omitempty"`
	Class     string `json:"class,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// classifyResponse is the /v1/classify result.
type classifyResponse struct {
	ID        uint64    `json:"id"`
	Class     int       `json:"class"`
	Logits    []float32 `json:"logits"`
	Strategy  string    `json:"strategy"`
	Tokens    int       `json:"tokens"`
	QueueMS   float64   `json:"queue_ms"`
	LatencyMS float64   `json:"latency_ms"`
	Attempts  int       `json:"attempts"`
	Degraded  bool      `json:"degraded,omitempty"`
}

// decodeBody parses a bounded JSON request body.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// writeBodyError renders a decodeBody failure. A body tripping the
// MaxBytesReader limit is a size-limit violation, not a malformed request:
// it answers 413 so load-test clients can tell the two apart; everything
// else is the usual 400.
func writeBodyError(w http.ResponseWriter, err error) {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		http.Error(w, fmt.Sprintf("request body exceeds %d bytes", mbe.Limit), http.StatusRequestEntityTooLarge)
		return
	}
	http.Error(w, err.Error(), http.StatusBadRequest)
}

// resolveTokens maps a request's tokens-or-text onto token ids.
func (s *Server) resolveTokens(tokens []int, text string) ([]int, error) {
	switch {
	case len(tokens) > 0 && text != "":
		return nil, fmt.Errorf("set tokens or text, not both")
	case len(tokens) > 0:
		return tokens, nil
	case text != "":
		return s.tok.Encode(text), nil
	default:
		return nil, fmt.Errorf("empty request: set tokens or text")
	}
}

// parseStrategy maps the wire strategy name (default voltage).
func parseStrategy(name string) (cluster.Strategy, error) {
	switch name {
	case "", "voltage":
		return cluster.StrategyVoltage, nil
	case "single":
		return cluster.StrategySingle, nil
	case "tensor-parallel", "tp":
		return cluster.StrategyTensorParallel, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", name)
	}
}

// deadlineFor resolves a request's deadline from its timeout field.
func deadlineFor(timeoutMS int64) time.Time {
	if timeoutMS <= 0 {
		return time.Time{}
	}
	return time.Now().Add(time.Duration(timeoutMS) * time.Millisecond)
}

// handleClassify serves POST /v1/classify through the interactive queue.
func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req classifyRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeBodyError(w, err)
		return
	}
	ids, err := s.resolveTokens(req.Tokens, req.Text)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	strat, err := parseStrategy(req.Strategy)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	class := sched.Interactive
	if req.Class != "" {
		if class, err = sched.ParseClass(req.Class); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	est := s.opts.EstimateInteractive
	if class == sched.Batch {
		est = s.opts.EstimateBatch
	}

	var resp classifyResponse
	err = s.sch.Do(r.Context(), sched.Job{
		Class:    class,
		Deadline: deadlineFor(req.TimeoutMS),
		Est:      est,
		Run: func(ctx context.Context, waited time.Duration) error {
			pred, err := s.backend.ClassifyTokens(ctx, strat, ids)
			if err != nil {
				return err
			}
			// The queue wait precedes the engine's trace: pin it at offset 0
			// so the span timeline reads queue → boundary → compute.
			pred.Run.Trace.AddAt(-1, -1, trace.PhaseQueue, 0, waited)
			resp = classifyResponse{
				ID:        pred.Run.ID,
				Class:     pred.Class,
				Logits:    pred.Logits,
				Strategy:  pred.Run.Strategy.String(),
				Tokens:    len(ids),
				QueueMS:   float64(waited) / float64(time.Millisecond),
				LatencyMS: float64(pred.Run.Latency) / float64(time.Millisecond),
				Attempts:  pred.Run.Attempts,
				Degraded:  pred.Run.Degraded,
			}
			return nil
		},
	})
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// generateRequest is the /v1/generate body.
type generateRequest struct {
	Prompt    []int  `json:"prompt,omitempty"`
	Text      string `json:"text,omitempty"`
	Steps     int    `json:"steps,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// generateChunk is one streamed line of /v1/generate: token lines while
// decoding, then a final summary line.
type generateChunk struct {
	Token       *int    `json:"token,omitempty"`
	Index       int     `json:"index,omitempty"`
	Done        bool    `json:"done,omitempty"`
	Tokens      []int   `json:"tokens,omitempty"`
	QueueMS     float64 `json:"queue_ms,omitempty"`
	BatchWaitMS float64 `json:"batch_wait_ms,omitempty"`
	PrefillMS   float64 `json:"prefill_ms,omitempty"`
	DecodeMS    float64 `json:"decode_ms,omitempty"`
	// Retries counts mid-stream batch recoveries the sequence rode out
	// (re-prefills after a device failure); Degraded reports it spent time
	// on fewer than the full worker set. Tokens are exact either way.
	Retries  int    `json:"retries,omitempty"`
	Degraded bool   `json:"degraded,omitempty"`
	Error    string `json:"error,omitempty"`
	// Streamed is set on an error summary line: how many token lines the
	// client received before the failure, so partial streams measure.
	Streamed int `json:"streamed,omitempty"`
}

// handleGenerate serves POST /v1/generate through the batch queue,
// streaming one JSON line per decoded token over a chunked response.
func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req generateRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeBodyError(w, err)
		return
	}
	prompt, err := s.resolveTokens(req.Prompt, req.Text)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	steps := req.Steps
	if steps <= 0 {
		steps = s.opts.DefaultSteps
	}
	if steps > s.opts.MaxSteps {
		http.Error(w, fmt.Sprintf("steps %d exceeds limit %d", steps, s.opts.MaxSteps), http.StatusBadRequest)
		return
	}

	// Everything after the first token line is committed to a 200 chunked
	// stream; failures before it map onto the shed status codes.
	started := false
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	emit := func(chunk generateChunk) {
		if !started {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			started = true
		}
		_ = enc.Encode(chunk)
		if flusher != nil {
			flusher.Flush()
		}
	}

	// The Run closure publishes its measurements here so a failed stream
	// can still account for itself on the error summary line. sch.Do only
	// returns after Run has resolved, so the reads below are ordered.
	var (
		streamed int
		waited   time.Duration
		partial  *cluster.GenerateResult
	)
	err = s.sch.Do(r.Context(), sched.Job{
		Class:    sched.Batch,
		Deadline: deadlineFor(req.TimeoutMS),
		Est:      s.opts.EstimateBatch,
		EstFn:    s.generateEst(),
		Run: func(ctx context.Context, w time.Duration) error {
			waited = w
			res, err := s.backend.GenerateStream(ctx, prompt, steps, func(tok int) {
				t := tok
				emit(generateChunk{Token: &t, Index: streamed})
				streamed++
			})
			if err != nil {
				// A mid-stream failure may carry the partial result with
				// its committed accounting (attempts, degradation, waits).
				partial = res
				return err
			}
			emit(generateChunk{
				Done:        true,
				Tokens:      res.Tokens,
				QueueMS:     float64(waited) / float64(time.Millisecond),
				BatchWaitMS: float64(res.BatchWait) / float64(time.Millisecond),
				PrefillMS:   float64(res.PrefillLatency) / float64(time.Millisecond),
				DecodeMS:    float64(res.DecodeLatency) / float64(time.Millisecond),
				Retries:     max(res.Attempts-1, 0),
				Degraded:    res.Degraded,
			})
			return nil
		},
	})
	if err != nil {
		if started {
			// The stream is already committed: report the failure in-band,
			// with the accounting the request accumulated before dying —
			// queue wait, tokens already streamed, and (when the backend
			// returned a partial result) its retry/degradation history.
			chunk := generateChunk{
				Done:     true,
				Error:    err.Error(),
				QueueMS:  float64(waited) / float64(time.Millisecond),
				Streamed: streamed,
			}
			if partial != nil {
				chunk.BatchWaitMS = float64(partial.BatchWait) / float64(time.Millisecond)
				chunk.PrefillMS = float64(partial.PrefillLatency) / float64(time.Millisecond)
				chunk.DecodeMS = float64(partial.DecodeLatency) / float64(time.Millisecond)
				chunk.Retries = max(partial.Attempts-1, 0)
				chunk.Degraded = partial.Degraded
			}
			emit(chunk)
			return
		}
		writeError(w, err)
	}
}

// batchWidther is the optional backend capability behind batch-aware
// admission estimates: a continuously-batching engine reports how many
// generate sequences currently share fused decode steps.
type batchWidther interface {
	BatchWidth() int
}

// generateEst returns the batch-aware service-time estimator for generate
// jobs, or nil when the backend cannot report its fused-batch width (the
// static Est then applies). A sequence joining a width-w batch shares each
// fused step's round trip with w others, so the serial estimate divided by
// the width is the shed-before-service bound — without this, the scheduler
// would overestimate fused service time and shed work it could have served.
func (s *Server) generateEst() func() time.Duration {
	bw, ok := s.backend.(batchWidther)
	if !ok || s.opts.EstimateBatch <= 0 {
		return nil
	}
	est := s.opts.EstimateBatch
	return func() time.Duration {
		if w := bw.BatchWidth(); w > 1 {
			return est / time.Duration(w)
		}
		return est
	}
}

// queueResponse is the /v1/queue report.
type queueResponse struct {
	Scheduler sched.Stats    `json:"scheduler"`
	Health    map[string]any `json:"health"`
}

// handleQueue serves GET /v1/queue.
func (s *Server) handleQueue(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	state := healthState(s.backend.Health())
	resp := queueResponse{
		Scheduler: s.sch.Stats(),
		Health: map[string]any{
			"degraded": state.Degraded,
			"dead":     state.Dead,
		},
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// handleHealthz mirrors the admin listener's health contract: 200 while
// any rank serves, 503 when none does, per-rank detail either way.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	ranks := s.backend.Health()
	state := healthState(ranks)
	type rankDetail struct {
		Rank     int    `json:"rank"`
		State    string `json:"state"`
		Failures int    `json:"failures"`
	}
	detail := make([]rankDetail, len(ranks))
	for i, rh := range ranks {
		detail[i] = rankDetail{Rank: rh.Rank, State: rh.State.String(), Failures: rh.Failures}
	}
	w.Header().Set("Content-Type", "application/json")
	if state.Dead {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	_ = json.NewEncoder(w).Encode(map[string]any{"ok": !state.Dead, "detail": detail})
}
