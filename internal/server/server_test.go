package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"voltage/internal/cluster"
	"voltage/internal/core"
	"voltage/internal/metrics"
	"voltage/internal/model"
	"voltage/internal/sched"
)

// newEngine builds a small in-process engine for end-to-end gateway tests.
func newEngine(t *testing.T, cfg model.Config, k int) *core.Engine {
	t.Helper()
	eng, err := core.New(cfg, k, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	return eng
}

// newGateway mounts a gateway over backend on an httptest server.
func newGateway(t *testing.T, backend Backend, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(backend, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeInto(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// TestClassifyMatchesDirectSubmit is the acceptance criterion: a request
// admitted through the gateway resolves byte-identically to calling the
// engine directly.
func TestClassifyMatchesDirectSubmit(t *testing.T) {
	eng := newEngine(t, model.Tiny(), 2)
	_, ts := newGateway(t, eng, Options{})

	ids := []int{3, 1, 4, 1, 5, 9, 2, 6}
	direct, err := eng.ClassifyTokens(context.Background(), cluster.StrategyVoltage, ids)
	if err != nil {
		t.Fatal(err)
	}

	var got classifyResponse
	resp := postJSON(t, ts.URL+"/v1/classify", map[string]any{"tokens": ids})
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("classify status = %d: %s", resp.StatusCode, body)
	}
	decodeInto(t, resp, &got)

	if got.Class != direct.Class {
		t.Errorf("class = %d, want %d", got.Class, direct.Class)
	}
	if len(got.Logits) != len(direct.Logits) {
		t.Fatalf("logit count = %d, want %d", len(got.Logits), len(direct.Logits))
	}
	for i := range got.Logits {
		if got.Logits[i] != direct.Logits[i] {
			// float32 → JSON → float32 round-trips exactly (shortest repr),
			// so any difference is a real data-plane divergence.
			t.Fatalf("logit %d = %v, want %v (gateway must be byte-identical to direct Submit)",
				i, got.Logits[i], direct.Logits[i])
		}
	}
	if got.Tokens != len(ids) || got.Strategy != cluster.StrategyVoltage.String() {
		t.Errorf("echo fields = %d/%q, want %d/%q", got.Tokens, got.Strategy, len(ids), cluster.StrategyVoltage)
	}
}

// TestClassifyText covers the text path end to end.
func TestClassifyText(t *testing.T) {
	eng := newEngine(t, model.Tiny(), 2)
	_, ts := newGateway(t, eng, Options{})
	var got classifyResponse
	resp := postJSON(t, ts.URL+"/v1/classify", map[string]any{"text": "the edge meets transformers"})
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("classify status = %d: %s", resp.StatusCode, body)
	}
	decodeInto(t, resp, &got)
	if got.Tokens == 0 || len(got.Logits) == 0 {
		t.Errorf("text classify = %+v, want tokens and logits", got)
	}
}

// TestGenerateStreamsIncrementally asserts /v1/generate delivers one
// ndjson token line per decoded token before the final summary line, and
// that the decoded sequence matches the engine's direct result.
func TestGenerateStreamsIncrementally(t *testing.T) {
	eng := newEngine(t, model.TinyDecoder(), 2)
	_, ts := newGateway(t, eng, Options{})

	prompt := []int{1, 2, 3}
	const steps = 4
	direct, err := eng.GenerateCached(context.Background(), prompt, steps)
	if err != nil {
		t.Fatal(err)
	}

	resp := postJSON(t, ts.URL+"/v1/generate", map[string]any{"prompt": prompt, "steps": steps})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("generate status = %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type = %q, want ndjson", ct)
	}

	var tokens []int
	var final *generateChunk
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var chunk generateChunk
		if err := json.Unmarshal(sc.Bytes(), &chunk); err != nil {
			t.Fatalf("bad chunk %q: %v", sc.Text(), err)
		}
		if chunk.Done {
			c := chunk
			final = &c
			continue
		}
		if final != nil {
			t.Fatal("token line after the final summary line")
		}
		if chunk.Token == nil || chunk.Index != len(tokens) {
			t.Fatalf("chunk %+v, want token with index %d", chunk, len(tokens))
		}
		tokens = append(tokens, *chunk.Token)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if final == nil {
		t.Fatal("stream ended without a summary line")
	}
	if final.Error != "" {
		t.Fatalf("stream error: %s", final.Error)
	}
	generated := len(direct.Tokens) - len(prompt)
	if len(tokens) != generated {
		t.Fatalf("streamed %d tokens, want %d", len(tokens), generated)
	}
	for i, tok := range tokens {
		if want := direct.Tokens[len(prompt)+i]; tok != want {
			t.Fatalf("streamed token %d = %d, want %d", i, tok, want)
		}
	}
	if len(final.Tokens) != len(direct.Tokens) {
		t.Fatalf("final tokens = %v, want %v", final.Tokens, direct.Tokens)
	}
	for i := range final.Tokens {
		if final.Tokens[i] != direct.Tokens[i] {
			t.Fatalf("final tokens = %v, want %v", final.Tokens, direct.Tokens)
		}
	}
}

// fakeBackend is a controllable Backend for shed-policy tests.
type fakeBackend struct {
	cfg   model.Config
	gate  chan struct{} // when non-nil, requests park here
	enter chan struct{} // one tick per request reaching the backend

	mu     sync.Mutex
	health []cluster.RankHealth
}

func newFakeBackend() *fakeBackend {
	return &fakeBackend{cfg: model.Tiny(), enter: make(chan struct{}, 64)}
}

func (f *fakeBackend) Config() model.Config { return f.cfg }

func (f *fakeBackend) Health() []cluster.RankHealth {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]cluster.RankHealth(nil), f.health...)
}

func (f *fakeBackend) setHealth(states ...cluster.HealthState) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.health = f.health[:0]
	for r, st := range states {
		f.health = append(f.health, cluster.RankHealth{Rank: r, State: st})
	}
}

func (f *fakeBackend) wait(ctx context.Context) error {
	select {
	case f.enter <- struct{}{}:
	default:
	}
	if f.gate == nil {
		return nil
	}
	select {
	case <-f.gate:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (f *fakeBackend) ClassifyTokens(ctx context.Context, strategy cluster.Strategy, ids []int) (*core.Prediction, error) {
	if err := f.wait(ctx); err != nil {
		return nil, err
	}
	return &core.Prediction{
		Class:  len(ids) % 2,
		Logits: []float32{0.25, 0.75},
		Run:    &cluster.Result{ID: 1, Strategy: strategy, Latency: time.Millisecond, Attempts: 1},
	}, nil
}

func (f *fakeBackend) GenerateStream(ctx context.Context, prompt []int, steps int, onToken func(tok int)) (*cluster.GenerateResult, error) {
	if err := f.wait(ctx); err != nil {
		return nil, err
	}
	tokens := append([]int(nil), prompt...)
	for i := 0; i < steps; i++ {
		tok := (len(tokens)*3 + 1) % f.cfg.VocabSize
		tokens = append(tokens, tok)
		if onToken != nil {
			onToken(tok)
		}
	}
	return &cluster.GenerateResult{Tokens: tokens}, nil
}

// TestOversizedBody413 is the PR-8 body-limit regression: a request body
// tripping http.MaxBytesReader must answer 413 Request Entity Too Large,
// not a generic 400, so clients can tell size limits from protocol errors.
func TestOversizedBody413(t *testing.T) {
	fb := newFakeBackend()
	_, ts := newGateway(t, fb, Options{MaxBody: 64})

	big := map[string]any{"tokens": make([]int, 512)}
	for _, path := range []string{"/v1/classify", "/v1/generate"} {
		resp := postJSON(t, ts.URL+path, big)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s oversized body status = %d, want 413", path, resp.StatusCode)
		}
	}
	// A malformed-but-small body is still the caller's 400.
	resp, err := http.Post(ts.URL+"/v1/classify", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body status = %d, want 400", resp.StatusCode)
	}
}

// failingBackend streams a few tokens then fails, returning a partial
// result the way the cluster's batcher does for a sequence that died
// mid-batch past its retry budget.
type failingBackend struct {
	*fakeBackend
	failAfter int
	err       error
}

func (f *failingBackend) GenerateStream(_ context.Context, prompt []int, _ int, onToken func(tok int)) (*cluster.GenerateResult, error) {
	tokens := append([]int(nil), prompt...)
	for i := 0; i < f.failAfter; i++ {
		tok := i + 1
		tokens = append(tokens, tok)
		onToken(tok)
	}
	return &cluster.GenerateResult{
		Tokens:         tokens,
		BatchWait:      3 * time.Millisecond,
		PrefillLatency: 2 * time.Millisecond,
		DecodeLatency:  5 * time.Millisecond,
		Attempts:       3,
		Degraded:       true,
	}, f.err
}

// TestErrorChunkCarriesPartialStats is the PR-8 stream-accounting
// regression: a /v1/generate failure after the stream committed must not
// answer with a bare {"done":true,"error":...} — the summary line carries
// the queue wait, the number of tokens already streamed, and the partial
// result's retry/degradation accounting, so harness measurements of failed
// streams aren't blind.
func TestErrorChunkCarriesPartialStats(t *testing.T) {
	fb := &failingBackend{
		fakeBackend: newFakeBackend(),
		failAfter:   2,
		err:         errors.New("device lost mid-stream"),
	}
	_, ts := newGateway(t, fb, Options{})

	resp := postJSON(t, ts.URL+"/v1/generate", map[string]any{"prompt": []int{1, 2}, "steps": 8})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 (stream committed before the failure)", resp.StatusCode)
	}

	var tokenLines int
	var final *generateChunk
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var chunk generateChunk
		if err := json.Unmarshal(sc.Bytes(), &chunk); err != nil {
			t.Fatalf("bad chunk %q: %v", sc.Text(), err)
		}
		if chunk.Done {
			c := chunk
			final = &c
			continue
		}
		tokenLines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if tokenLines != 2 {
		t.Fatalf("streamed %d token lines, want 2", tokenLines)
	}
	if final == nil {
		t.Fatal("stream ended without a summary line")
	}
	if final.Error == "" {
		t.Fatal("summary line carries no error")
	}
	if final.Streamed != 2 {
		t.Errorf("error chunk streamed = %d, want 2", final.Streamed)
	}
	if final.Retries != 2 {
		t.Errorf("error chunk retries = %d, want 2 (attempts 3)", final.Retries)
	}
	if !final.Degraded {
		t.Error("error chunk degraded = false, want true")
	}
	if final.QueueMS <= 0 {
		t.Errorf("error chunk queue_ms = %v, want > 0", final.QueueMS)
	}
	if final.BatchWaitMS != 3 {
		t.Errorf("error chunk batch_wait_ms = %v, want 3", final.BatchWaitMS)
	}
	if final.DecodeMS != 5 {
		t.Errorf("error chunk decode_ms = %v, want 5", final.DecodeMS)
	}
}

// TestShedQueueFull429 is the chaos satellite: under a burst that exceeds
// worker + queue capacity, surplus requests shed with typed 429s carrying
// Retry-After, admitted ones all succeed, the shed is visible on /metrics,
// and no goroutines leak.
func TestShedQueueFull429(t *testing.T) {
	baseline := runtime.NumGoroutine()

	fb := newFakeBackend()
	fb.gate = make(chan struct{})
	reg := metrics.NewRegistry()
	_, ts := newGateway(t, fb, Options{
		Registry: reg,
		Sched:    sched.Options{Workers: 1, InteractiveDepth: 1, BatchDepth: 1},
	})

	// One request occupies the worker, one fills the queue; the rest of the
	// burst must shed with 429.
	const burst = 8
	codes := make(chan int, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b, _ := json.Marshal(map[string]any{"tokens": []int{1, 2}})
			resp, err := http.Post(ts.URL+"/v1/classify", "application/json", bytes.NewReader(b))
			if err != nil {
				t.Error(err)
				codes <- 0
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusTooManyRequests {
				if resp.Header.Get("Retry-After") == "" {
					t.Error("429 without Retry-After")
				}
				var eb errorBody
				if err := json.Unmarshal(body, &eb); err != nil || !eb.Shed || !strings.Contains(eb.Error, "queue full") {
					t.Errorf("429 body = %s (%v), want shed queue-full error", body, err)
				}
			}
			codes <- resp.StatusCode
		}()
	}
	// Release the gate once the burst has fully landed: the worker parks on
	// the first request, everything else queues or sheds.
	deadline := time.Now().Add(5 * time.Second)
	for len(codes)+2 < burst { // all but worker-held + queued have resolved
		if time.Now().After(deadline) {
			t.Fatalf("burst stuck: %d/%d responses", len(codes), burst)
		}
		time.Sleep(time.Millisecond)
	}
	close(fb.gate)
	wg.Wait()
	close(codes)

	var ok, shed int
	for code := range codes {
		switch code {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
		default:
			t.Errorf("unexpected status %d", code)
		}
	}
	if ok != 2 || shed != burst-2 {
		t.Errorf("burst resolved %d ok / %d shed, want 2 / %d", ok, shed, burst-2)
	}

	// The shed is observable on /metrics.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	if !strings.Contains(text, `voltage_gateway_shed_total{cause="queue_full"} `+fmt.Sprint(burst-2)) {
		t.Errorf("/metrics missing shed count:\n%s", grepLines(text, "shed"))
	}
	if !strings.Contains(text, `voltage_gateway_queue_depth{class="interactive"}`) {
		t.Errorf("/metrics missing per-class queue depth:\n%s", grepLines(text, "queue_depth"))
	}

	// No goroutine leak: everything the burst spawned winds down.
	waitGoroutines(t, baseline)
}

// grepLines filters text to lines containing substr (test diagnostics).
func grepLines(text, substr string) string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// waitGoroutines polls until the goroutine count returns near baseline.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		// Client keep-alive connections pin server-side goroutines; drop
		// them so only a real leak keeps the count up.
		http.DefaultClient.CloseIdleConnections()
		if n := runtime.NumGoroutine(); n <= baseline+8 {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutines = %d, baseline %d: leak suspected", runtime.NumGoroutine(), baseline)
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDegradedSheds503 exercises the health-driven shed policy end to end.
func TestDegradedSheds503(t *testing.T) {
	fb := newFakeBackend()
	_, ts := newGateway(t, fb, Options{})

	// Partially degraded: batch (generate) sheds, interactive serves.
	fb.setHealth(cluster.Healthy, cluster.Unhealthy)
	resp := postJSON(t, ts.URL+"/v1/generate", map[string]any{"prompt": []int{1}, "steps": 2})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded generate status = %d, want 503", resp.StatusCode)
	}
	var eb errorBody
	decodeInto(t, resp, &eb)
	if !eb.Shed {
		t.Errorf("degraded 503 body = %+v, want shed", eb)
	}
	resp = postJSON(t, ts.URL+"/v1/classify", map[string]any{"tokens": []int{1}})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded classify status = %d, want 200", resp.StatusCode)
	}

	// Dead: everything sheds, /healthz flips to 503.
	fb.setHealth(cluster.Unhealthy, cluster.Unhealthy)
	resp = postJSON(t, ts.URL+"/v1/classify", map[string]any{"tokens": []int{1}})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("dead classify status = %d, want 503", resp.StatusCode)
	}
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hz.Body)
	hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("dead /healthz = %d, want 503", hz.StatusCode)
	}
}

// TestGracefulDrain is the drain satellite: in-flight work completes,
// new requests shed with 503, Drain returns once idle.
func TestGracefulDrain(t *testing.T) {
	fb := newFakeBackend()
	fb.gate = make(chan struct{})
	s, ts := newGateway(t, fb, Options{Sched: sched.Options{Workers: 1}})

	inflight := make(chan *http.Response, 1)
	go func() {
		inflight <- postJSON(t, ts.URL+"/v1/classify", map[string]any{"tokens": []int{1}})
	}()
	// Wait for the request to reach the backend.
	select {
	case <-fb.enter:
	case <-time.After(5 * time.Second):
		t.Fatal("request never reached the backend")
	}

	drainErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainErr <- s.Drain(ctx)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for !s.Scheduler().Stats().Draining {
		if time.Now().After(deadline) {
			t.Fatal("scheduler never reported draining")
		}
		time.Sleep(time.Millisecond)
	}

	resp := postJSON(t, ts.URL+"/v1/classify", map[string]any{"tokens": []int{1}})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("request during drain = %d, want 503", resp.StatusCode)
	}

	close(fb.gate)
	if err := <-drainErr; err != nil {
		t.Fatalf("Drain = %v, want nil", err)
	}
	in := <-inflight
	io.Copy(io.Discard, in.Body)
	in.Body.Close()
	if in.StatusCode != http.StatusOK {
		t.Fatalf("in-flight request during drain = %d, want 200", in.StatusCode)
	}
}

// TestDeadlineBeforeService429 asserts an unmeetable client timeout sheds
// up front.
func TestDeadlineBeforeService429(t *testing.T) {
	fb := newFakeBackend()
	_, ts := newGateway(t, fb, Options{EstimateInteractive: 10 * time.Second})
	resp := postJSON(t, ts.URL+"/v1/classify", map[string]any{"tokens": []int{1}, "timeout_ms": 5})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("unmeetable deadline status = %d, want 429", resp.StatusCode)
	}
	var eb errorBody
	decodeInto(t, resp, &eb)
	if !strings.Contains(eb.Error, "deadline") {
		t.Errorf("body = %+v, want deadline shed", eb)
	}
}

func TestQueueIntrospection(t *testing.T) {
	fb := newFakeBackend()
	_, ts := newGateway(t, fb, Options{})
	resp := postJSON(t, ts.URL+"/v1/classify", map[string]any{"tokens": []int{1}})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	var q queueResponse
	get, err := http.Get(ts.URL + "/v1/queue")
	if err != nil {
		t.Fatal(err)
	}
	decodeInto(t, get, &q)
	if len(q.Scheduler.Classes) != 2 {
		t.Fatalf("queue classes = %+v, want interactive and batch", q.Scheduler.Classes)
	}
	var served uint64
	for _, cs := range q.Scheduler.Classes {
		served += cs.Served
	}
	if served != 1 {
		t.Errorf("served = %d, want 1", served)
	}
}

func TestBadRequests(t *testing.T) {
	fb := newFakeBackend()
	_, ts := newGateway(t, fb, Options{})
	cases := []struct {
		name string
		body map[string]any
	}{
		{"empty", map[string]any{}},
		{"both", map[string]any{"tokens": []int{1}, "text": "x"}},
		{"strategy", map[string]any{"tokens": []int{1}, "strategy": "wat"}},
		{"class", map[string]any{"tokens": []int{1}, "class": "wat"}},
		{"unknown field", map[string]any{"tokens": []int{1}, "bogus": true}},
	}
	for _, tc := range cases {
		resp := postJSON(t, ts.URL+"/v1/classify", tc.body)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, resp.StatusCode)
		}
	}
	get, err := http.Get(ts.URL + "/v1/classify")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, get.Body)
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET classify = %d, want 405", get.StatusCode)
	}
	resp := postJSON(t, ts.URL+"/v1/generate", map[string]any{"prompt": []int{1}, "steps": 100000})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized steps = %d, want 400", resp.StatusCode)
	}
}

func TestStatusForMapping(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{sched.ErrQueueFull, http.StatusTooManyRequests},
		{sched.ErrDeadlineBeforeService, http.StatusTooManyRequests},
		{fmt.Errorf("wrap: %w", sched.ErrDraining), http.StatusServiceUnavailable},
		{fmt.Errorf("wrap: %w", sched.ErrDegraded), http.StatusServiceUnavailable},
		{context.DeadlineExceeded, http.StatusGatewayTimeout},
		{context.Canceled, 499},
		{errors.New("boom"), http.StatusInternalServerError},
	}
	for _, tc := range cases {
		if got := StatusFor(tc.err); got != tc.want {
			t.Errorf("StatusFor(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}

// TestDebugEndpointsAndShedEvents: a flight-recording backend surfaces its
// debug endpoints on the gateway mux, and scheduler shed decisions land in
// the flight recorder as events.
func TestDebugEndpointsAndShedEvents(t *testing.T) {
	eng, err := core.New(model.TinyDecoder(), 2, cluster.Options{TraceRequests: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	var dead atomic.Bool
	_, ts := newGateway(t, eng, Options{Sched: sched.Options{Health: func() sched.ClusterState {
		if dead.Load() {
			return sched.ClusterState{Dead: true}
		}
		return sched.ClusterState{}
	}}})

	// One successful generate so the flight recorder retires a traced
	// request.
	resp := postJSON(t, ts.URL+"/v1/generate", map[string]any{"prompt": []int{1, 2, 3}, "steps": 3})
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("generate status %d", resp.StatusCode)
	}

	// A dead cluster sheds the next request; the shed must flow through
	// sched.Options.OnShed into the engine's flight recorder.
	dead.Store(true)
	resp = postJSON(t, ts.URL+"/v1/classify", map[string]any{"tokens": []int{1, 2}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed status %d, want 503", resp.StatusCode)
	}

	fresp, err := http.Get(ts.URL + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Events []struct {
			Kind string `json:"kind"`
			Msg  string `json:"msg"`
		} `json:"events"`
	}
	decodeInto(t, fresp, &dump)
	var shed bool
	for _, ev := range dump.Events {
		if ev.Kind == "shed" && strings.Contains(ev.Msg, "degraded") {
			shed = true
		}
	}
	if !shed {
		t.Errorf("no shed event in /debug/flight dump: %+v", dump.Events)
	}

	// The batched-generate request retires into the flight recorder shortly
	// after its last sequence leaves; poll the trace export until its spans
	// appear.
	deadline := time.Now().Add(5 * time.Second)
	for {
		tresp, err := http.Get(ts.URL + "/debug/trace")
		if err != nil {
			t.Fatal(err)
		}
		var doc struct {
			TraceEvents []json.RawMessage `json:"traceEvents"`
		}
		decodeInto(t, tresp, &doc)
		if doc.TraceEvents == nil {
			t.Fatal("/debug/trace missing traceEvents array")
		}
		if len(doc.TraceEvents) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/debug/trace never produced events for the traced generate")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
