package pipeline

import (
	"context"
	"sync"
	"testing"

	"voltage/internal/comm"
	"voltage/internal/model"
	"voltage/internal/netem"
	"voltage/internal/tensor"
)

func TestShardLayersValidation(t *testing.T) {
	m, err := model.NewRandom(model.Tiny(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ShardLayers(m, 2, 2); err == nil {
		t.Fatal("want error for rank == k")
	}
	if _, err := ShardLayers(m, -1, 2); err == nil {
		t.Fatal("want error for negative rank")
	}
	if _, err := ShardLayers(m, 0, 0); err == nil {
		t.Fatal("want error for k=0")
	}
}

func TestShardLayersCoverAllLayersOnce(t *testing.T) {
	m, err := model.NewRandom(model.Tiny().Scaled(7), 1)
	if err != nil {
		t.Fatal(err)
	}
	covered := 0
	prevEnd := 0
	for r := 0; r < 3; r++ {
		st, err := ShardLayers(m, r, 3)
		if err != nil {
			t.Fatal(err)
		}
		if st.First != prevEnd {
			t.Fatalf("stage %d starts at %d, want %d", r, st.First, prevEnd)
		}
		covered += len(st.Layers)
		prevEnd = st.First + len(st.Layers)
	}
	if covered != 7 || prevEnd != 7 {
		t.Fatalf("stages cover %d layers ending at %d", covered, prevEnd)
	}
}

func TestStageForwardEqualsStackedLayers(t *testing.T) {
	m, err := model.NewRandom(model.Tiny().Scaled(4), 2)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewRNG(3).Normal(6, m.Cfg.F, 1)
	full, err := m.ForwardFeatures(x)
	if err != nil {
		t.Fatal(err)
	}
	cur := x
	for r := 0; r < 2; r++ {
		st, err := ShardLayers(m, r, 2)
		if err != nil {
			t.Fatal(err)
		}
		cur, err = st.Forward(cur)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !cur.AlmostEqual(full, 1e-3) {
		t.Fatal("chained stages differ from full forward")
	}
}

func TestStageCost(t *testing.T) {
	m, err := model.NewRandom(model.Tiny().Scaled(4), 2)
	if err != nil {
		t.Fatal(err)
	}
	st, err := ShardLayers(m, 0, 2) // 2 layers
	if err != nil {
		t.Fatal(err)
	}
	c, err := st.Cost(16)
	if err != nil {
		t.Fatal(err)
	}
	per, err := m.Layers[0].Cost(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if c != 2*per {
		t.Fatalf("stage cost %d, want %d", c, 2*per)
	}
	empty := &Stage{}
	if ec, err := empty.Cost(16); err != nil || ec != 0 {
		t.Fatalf("empty stage cost %d err %v", ec, err)
	}
}

func TestRunStageRelay(t *testing.T) {
	// Two stages + a terminal on a 3-mesh: results must match the full
	// model, two requests in order.
	m, err := model.NewRandom(model.Tiny().Scaled(4), 5)
	if err != nil {
		t.Fatal(err)
	}
	peers, err := comm.NewMemMesh(3, netem.Unlimited)
	if err != nil {
		t.Fatal(err)
	}
	defer peers[0].Close()
	x := tensor.NewRNG(6).Normal(5, m.Cfg.F, 1)
	want, err := m.ForwardFeatures(x)
	if err != nil {
		t.Fatal(err)
	}
	const term, k, reqs = 2, 2, 2
	var wg sync.WaitGroup
	errs := make([]error, k)
	for r := 0; r < k; r++ {
		st, err := ShardLayers(m, r, k)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(r int, st *Stage) {
			defer wg.Done()
			errs[r] = RunStage(context.Background(), peers[r], term, st, r, k, reqs, nil)
		}(r, st)
	}
	ctx := context.Background()
	for i := 0; i < reqs; i++ {
		if err := peers[term].Send(ctx, 0, tensor.Encode(nil, x)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < reqs; i++ {
		blob, err := peers[term].Recv(ctx, k-1)
		if err != nil {
			t.Fatal(err)
		}
		out, _, err := tensor.Decode(blob)
		if err != nil {
			t.Fatal(err)
		}
		if !out.AlmostEqual(want, 1e-3) {
			t.Fatalf("request %d output differs", i)
		}
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("stage %d: %v", r, err)
		}
	}
}
