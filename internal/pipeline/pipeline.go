// Package pipeline implements the pipeline-parallelism baseline the paper
// discusses (and declines to benchmark): the transformer stack is split
// layer-wise across devices and requests stream through the stages
// (GPipe/PipeEdge style).
//
// The paper's argument is that pipelining optimizes *throughput* given
// enough concurrent microbatches but cannot reduce the *latency* of an
// individual request — at batch size 1 the pipeline is a relay race: every
// stage computes sequentially and inter-stage transfers are added on top.
// This package lets the experiment harness demonstrate that quantitatively
// (see the "pipeline" experiment): single-request latency ≥ single-device
// latency, while throughput approaches K× once the pipeline fills.
package pipeline

import (
	"context"
	"fmt"
	"time"

	"voltage/internal/comm"
	"voltage/internal/model"
	"voltage/internal/tensor"
)

// Stage is one device's contiguous slice of the layer stack.
type Stage struct {
	Layers []*model.Layer
	// First is the index of the stage's first layer in the full stack.
	First int
}

// ShardLayers assigns device rank (of k) its contiguous near-even block of
// m's layers. Every device must hold a model replica (as in Voltage) or at
// least its own block; replicas make the assignment trivial.
func ShardLayers(m *model.Model, rank, k int) (*Stage, error) {
	if k < 1 || rank < 0 || rank >= k {
		return nil, fmt.Errorf("pipeline: rank %d of %d", rank, k)
	}
	l := len(m.Layers)
	lo, hi := rank*l/k, (rank+1)*l/k
	return &Stage{Layers: m.Layers[lo:hi], First: lo}, nil
}

// Forward runs the stage's layers on x (full positions — pipeline
// parallelism does not partition within a layer).
func (s *Stage) Forward(x *tensor.Matrix) (*tensor.Matrix, error) {
	cur := x
	for i, l := range s.Layers {
		out, err := l.Forward(cur)
		if err != nil {
			return nil, fmt.Errorf("pipeline: layer %d: %w", s.First+i, err)
		}
		cur = out
	}
	return cur, nil
}

// Cost returns the analytic Γ of Forward for input length n (used for
// device pacing).
func (s *Stage) Cost(n int) (int64, error) {
	var total int64
	for _, l := range s.Layers {
		c, err := l.Cost(n, n)
		if err != nil {
			return 0, err
		}
		total += c
	}
	return total, nil
}

// Pacer matches the cluster's device-pacing hook.
type Pacer func(ctx context.Context, start time.Time, flops int64) error

// RunStage serves one device's pipeline stage: it receives microbatch
// activations from the upstream peer (the terminal for stage 0), runs its
// layers, and forwards downstream (the terminal for the last stage). It
// processes exactly `requests` microbatches, in order.
func RunStage(ctx context.Context, p comm.Peer, terminalRank int, stage *Stage, rank, k, requests int, pace Pacer) error {
	upstream := terminalRank
	if rank > 0 {
		upstream = rank - 1
	}
	downstream := terminalRank
	if rank < k-1 {
		downstream = rank + 1
	}
	for req := 0; req < requests; req++ {
		blob, err := p.Recv(ctx, upstream)
		if err != nil {
			return fmt.Errorf("pipeline: stage %d recv req %d: %w", rank, req, err)
		}
		x, _, err := tensor.Decode(blob)
		if err != nil {
			return err
		}
		start := time.Now()
		out, err := stage.Forward(x)
		if err != nil {
			return err
		}
		if pace != nil {
			cost, err := stage.Cost(x.Rows())
			if err != nil {
				return err
			}
			if err := pace(ctx, start, cost); err != nil {
				return err
			}
		}
		if err := p.Send(ctx, downstream, tensor.Encode(nil, out)); err != nil {
			return fmt.Errorf("pipeline: stage %d send req %d: %w", rank, req, err)
		}
	}
	return nil
}
