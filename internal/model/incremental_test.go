package model

import (
	"testing"

	"voltage/internal/tensor"
)

func TestLayerIncrementalMatchesFullCausal(t *testing.T) {
	l, err := NewRandomLayer(TinyDecoder(), tensor.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(2)
	x := rng.Normal(9, l.F(), 1)
	full, err := l.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	prefix, _ := x.RowSlice(0, 4)
	state, err := l.PrefillState(prefix)
	if err != nil {
		t.Fatal(err)
	}
	for pos := 4; pos < 9; pos++ {
		row, _ := x.RowSlice(pos, pos+1)
		out, err := l.ForwardIncremental(state, row)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := full.RowSlice(pos, pos+1)
		if !out.AlmostEqual(want, 1e-3) {
			d, _ := out.MaxAbsDiff(want)
			t.Fatalf("incremental layer position %d differs by %v", pos, d)
		}
	}
}

func TestPrefillRequiresDecoder(t *testing.T) {
	m, err := NewRandom(Tiny(), 3)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewRNG(4).Normal(4, m.Cfg.F, 1)
	if _, _, err := m.Prefill(x); err == nil {
		t.Fatal("want error for prefill on encoder")
	}
}

func TestEmbedTokenAtMatchesEmbedTokens(t *testing.T) {
	m, err := NewRandom(TinyDecoder(), 5)
	if err != nil {
		t.Fatal(err)
	}
	ids := []int{3, 14, 15, 92}
	full, err := m.Embed.EmbedTokens(ids)
	if err != nil {
		t.Fatal(err)
	}
	for pos, id := range ids {
		row, err := m.Embed.EmbedTokenAt(id, pos)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := full.RowSlice(pos, pos+1)
		if !row.AlmostEqual(want, 1e-6) {
			t.Fatalf("EmbedTokenAt(%d,%d) differs from EmbedTokens row", id, pos)
		}
	}
}

func TestEmbedTokenAtValidation(t *testing.T) {
	m, err := NewRandom(TinyDecoder(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Embed.EmbedTokenAt(-1, 0); err == nil {
		t.Fatal("want error for bad id")
	}
	if _, err := m.Embed.EmbedTokenAt(0, 9999); err == nil {
		t.Fatal("want error for bad position")
	}
	vm, err := NewRandom(TinyVision(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm.Embed.EmbedTokenAt(0, 0); err == nil {
		t.Fatal("want error for vision model")
	}
}

func TestDecodeStepMatchesFullRecompute(t *testing.T) {
	// Pushing tokens through the cache must give the same hidden state as
	// re-running the whole stack on the extended sequence.
	m, err := NewRandom(TinyDecoder(), 8)
	if err != nil {
		t.Fatal(err)
	}
	prompt := []int{5, 9, 27}
	x, err := m.Embed.EmbedTokens(prompt)
	if err != nil {
		t.Fatal(err)
	}
	_, state, err := m.Prefill(x)
	if err != nil {
		t.Fatal(err)
	}
	seq := append([]int(nil), prompt...)
	for _, next := range []int{41, 7, 63} {
		got, err := m.DecodeStep(state, next)
		if err != nil {
			t.Fatal(err)
		}
		seq = append(seq, next)
		fullX, err := m.Embed.EmbedTokens(seq)
		if err != nil {
			t.Fatal(err)
		}
		full, err := m.ForwardFeatures(fullX)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := full.RowSlice(full.Rows()-1, full.Rows())
		if !got.AlmostEqual(want, 1e-2) {
			d, _ := got.MaxAbsDiff(want)
			t.Fatalf("decode step for token %d differs from recompute by %v", next, d)
		}
	}
	if state.Pos != 6 {
		t.Fatalf("state.Pos = %d, want 6", state.Pos)
	}
}

func TestDecodeStepLayerMismatch(t *testing.T) {
	m, err := NewRandom(TinyDecoder(), 9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.DecodeStep(&DecodeState{}, 1); err == nil {
		t.Fatal("want error for empty cache")
	}
}

func TestGenerateIncrementalMatchesFullGenerate(t *testing.T) {
	m, err := NewRandom(TinyDecoder(), 10)
	if err != nil {
		t.Fatal(err)
	}
	prompt := []int{1, 2, 3}
	const steps = 5
	fast, err := m.GenerateIncremental(prompt, steps)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: naive full-recompute greedy decoding.
	slow := append([]int(nil), prompt...)
	for i := 0; i < steps; i++ {
		next, err := m.NextToken(slow)
		if err != nil {
			t.Fatal(err)
		}
		slow = append(slow, next)
	}
	if len(fast) != len(slow) {
		t.Fatalf("lengths differ: %d vs %d", len(fast), len(slow))
	}
	for i := range fast {
		if fast[i] != slow[i] {
			t.Fatalf("incremental and full decoding diverge at %d: %v vs %v", i, fast, slow)
		}
	}
}

func TestGenerateIncrementalValidation(t *testing.T) {
	m, err := NewRandom(TinyDecoder(), 11)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.GenerateIncremental(nil, 3); err == nil {
		t.Fatal("want error for empty prompt")
	}
	enc, err := NewRandom(Tiny(), 12)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := enc.GenerateIncremental([]int{1}, 3); err == nil {
		t.Fatal("want error for encoder")
	}
}

func TestGenerateIncrementalRespectsMaxSeq(t *testing.T) {
	cfg := TinyDecoder()
	cfg.MaxSeq = 5
	m, err := NewRandom(cfg, 13)
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.GenerateIncremental([]int{1, 2, 3}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) > 5 {
		t.Fatalf("generated %d tokens past MaxSeq", len(out))
	}
}

func TestResumeStateContinuesExactly(t *testing.T) {
	// A decode interrupted at any point must continue bit-identically (at
	// the token level) after re-prefilling its committed prefix: the resumed
	// greedy stream is the tail of the uninterrupted one. This is the
	// exactness argument behind the batcher's mid-batch fault recovery.
	m, err := NewRandom(TinyDecoder(), 14)
	if err != nil {
		t.Fatal(err)
	}
	prompt := []int{5, 9, 2, 7}
	const steps = 10
	want, err := m.GenerateIncremental(prompt, steps)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < steps; cut++ {
		prefix := append([]int(nil), want[:len(prompt)+cut]...)
		last, state, err := m.ResumeState(prefix)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		tokens := prefix
		for len(tokens) < len(want) {
			logits, err := m.LM.NextTokenLogits(last)
			if err != nil {
				t.Fatalf("cut %d: %v", cut, err)
			}
			tokens = append(tokens, Argmax(logits))
			if len(tokens) == len(want) {
				break
			}
			last, err = m.DecodeStep(state, tokens[len(tokens)-1])
			if err != nil {
				t.Fatalf("cut %d: %v", cut, err)
			}
		}
		for i := range want {
			if tokens[i] != want[i] {
				t.Fatalf("cut %d: token %d = %d, want %d (resumed stream diverged)", cut, i, tokens[i], want[i])
			}
		}
	}
}

func TestResumeStateValidation(t *testing.T) {
	m, err := NewRandom(TinyDecoder(), 15)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.ResumeState(nil); err == nil {
		t.Fatal("want error for empty prefix")
	}
}
