package model

import (
	"testing"

	"voltage/internal/partition"
	"voltage/internal/tensor"
)

func TestNewRandomDeterministic(t *testing.T) {
	a, err := NewRandom(Tiny(), 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRandom(Tiny(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Layers[0].W1.Equal(b.Layers[0].W1) {
		t.Fatal("same seed produced different weights")
	}
	c, err := NewRandom(Tiny(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Layers[0].W1.Equal(c.Layers[0].W1) {
		t.Fatal("different seeds produced identical weights")
	}
}

func TestNewRandomRejectsInvalid(t *testing.T) {
	bad := Tiny()
	bad.F = 33
	if _, err := NewRandom(bad, 1); err == nil {
		t.Fatal("want error")
	}
}

func TestClassifyTokensEndToEnd(t *testing.T) {
	m, err := NewRandom(Tiny(), 3)
	if err != nil {
		t.Fatal(err)
	}
	ids := []int{5, 17, 3, 99, 42}
	cls, err := m.ClassifyTokens(ids)
	if err != nil {
		t.Fatal(err)
	}
	if cls < 0 || cls >= m.Cfg.NumClasses {
		t.Fatalf("class %d outside [0,%d)", cls, m.Cfg.NumClasses)
	}
	// Deterministic: same input, same prediction.
	cls2, err := m.ClassifyTokens(ids)
	if err != nil {
		t.Fatal(err)
	}
	if cls != cls2 {
		t.Fatal("classification not deterministic")
	}
}

func TestClassifyImageEndToEnd(t *testing.T) {
	m, err := NewRandom(TinyVision(), 4)
	if err != nil {
		t.Fatal(err)
	}
	im := RandomImage(tensor.NewRNG(5), 3, 16)
	cls, err := m.ClassifyImage(im)
	if err != nil {
		t.Fatal(err)
	}
	if cls < 0 || cls >= 10 {
		t.Fatalf("class %d", cls)
	}
	if m.LM != nil {
		t.Fatal("vision model should have no LM head")
	}
}

func TestNextToken(t *testing.T) {
	m, err := NewRandom(TinyDecoder(), 6)
	if err != nil {
		t.Fatal(err)
	}
	tok, err := m.NextToken([]int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if tok < 0 || tok >= m.Cfg.VocabSize {
		t.Fatalf("token %d", tok)
	}
	// Causality: appending a token must not change what the model would
	// have predicted from the shorter prefix... (it changes the prediction
	// made *at* the new position, not before it). Verify hidden-state
	// prefix stability instead.
	x1, err := m.Embed.EmbedTokens([]int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	h1, err := m.ForwardFeatures(x1)
	if err != nil {
		t.Fatal(err)
	}
	x2, err := m.Embed.EmbedTokens([]int{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := m.ForwardFeatures(x2)
	if err != nil {
		t.Fatal(err)
	}
	prefix, _ := h2.RowSlice(0, 3)
	if !prefix.AlmostEqual(h1, 1e-3) {
		t.Fatal("causal model's prefix states changed when a token was appended")
	}
	vision, _ := NewRandom(TinyVision(), 7)
	if _, err := vision.NextToken([]int{1}); err == nil {
		t.Fatal("want error for NextToken on vision model")
	}
}

func TestNonCausalEncoderPrefixChanges(t *testing.T) {
	// Sanity check of the causality test above: for a bidirectional
	// encoder the prefix states DO change.
	m, err := NewRandom(Tiny(), 8)
	if err != nil {
		t.Fatal(err)
	}
	x1, _ := m.Embed.EmbedTokens([]int{1, 2, 3})
	h1, err := m.ForwardFeatures(x1)
	if err != nil {
		t.Fatal(err)
	}
	x2, _ := m.Embed.EmbedTokens([]int{1, 2, 3, 4})
	h2, err := m.ForwardFeatures(x2)
	if err != nil {
		t.Fatal(err)
	}
	prefix, _ := h2.RowSlice(0, 3)
	if prefix.AlmostEqual(h1, 1e-3) {
		t.Fatal("encoder prefix unexpectedly invariant")
	}
}

func TestForwardLayerPartition(t *testing.T) {
	m, err := NewRandom(Tiny(), 9)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewRNG(10).Normal(12, m.Cfg.F, 1)
	out, err := m.ForwardLayerPartition(0, x, partition.Range{From: 0, To: 6})
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 6 || out.Cols() != m.Cfg.F {
		t.Fatalf("partition shape %dx%d", out.Rows(), out.Cols())
	}
	if _, err := m.ForwardLayerPartition(99, x, partition.Range{From: 0, To: 6}); err == nil {
		t.Fatal("want error for bad layer index")
	}
}

func TestMultiLayerPartitionedEqualsSingleDevice(t *testing.T) {
	// Simulate Algorithm 2 in-process: partition each layer across 3
	// "devices", all-gather by assembling rows, feed the next layer. The
	// result must equal the single-device forward pass.
	m, err := NewRandom(Tiny(), 11)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(12)
	x := rng.Normal(15, m.Cfg.F, 1)
	want, err := m.ForwardFeatures(x)
	if err != nil {
		t.Fatal(err)
	}
	scheme, _ := partition.Even(3)
	cur := x
	for li := range m.Layers {
		ranges, err := scheme.Ranges(cur.Rows())
		if err != nil {
			t.Fatal(err)
		}
		next := tensor.New(cur.Rows(), m.Cfg.F)
		for _, r := range ranges {
			part, err := m.ForwardLayerPartition(li, cur, r)
			if err != nil {
				t.Fatal(err)
			}
			if err := next.SetRowSlice(r.From, part); err != nil {
				t.Fatal(err)
			}
		}
		cur = next
	}
	if !cur.AlmostEqual(want, 1e-2) {
		d, _ := cur.MaxAbsDiff(want)
		t.Fatalf("distributed result differs from single device by %v", d)
	}
}

func TestTotalCost(t *testing.T) {
	m, err := NewRandom(Tiny(), 13)
	if err != nil {
		t.Fatal(err)
	}
	per, err := m.CostPerLayer(64, 16)
	if err != nil {
		t.Fatal(err)
	}
	total, err := m.TotalCost(64, 16)
	if err != nil {
		t.Fatal(err)
	}
	if total != per*int64(m.Cfg.Layers) {
		t.Fatalf("TotalCost = %d, want %d", total, per*int64(m.Cfg.Layers))
	}
}
