package model

import (
	"fmt"

	"voltage/internal/tensor"
)

// Embedding converts raw inputs (token ids or images) into the N×F feature
// sequence consumed by the transformer stack. It plays the role of the
// paper's terminal-device "pre-processing" step.
type Embedding struct {
	cfg Config

	// Token models.
	tokenTable *tensor.Matrix // VocabSize×F
	posTable   *tensor.Matrix // MaxSeq×F

	// Vision models.
	patchProj  *tensor.Matrix // (PatchSize²·Channels)×F
	patchBias  []float32
	classToken []float32      // F
	posVision  *tensor.Matrix // (numPatches+1)×F

	lnGain, lnBias []float32 // embedding layer norm (BERT-style)
}

// NewRandomEmbedding builds a deterministic embedding block for cfg.
func NewRandomEmbedding(cfg Config, rng *tensor.RNG) (*Embedding, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Embedding{
		cfg:    cfg,
		lnGain: tensor.Ones(cfg.F),
		lnBias: tensor.Zeros(cfg.F),
	}
	if cfg.Kind == KindVision {
		patchDim := cfg.PatchSize * cfg.PatchSize * cfg.Channels
		side := cfg.ImageSize / cfg.PatchSize
		e.patchProj = rng.XavierNormal(patchDim, cfg.F)
		e.patchBias = tensor.Zeros(cfg.F)
		e.classToken = rng.NormalVec(cfg.F, 0.02)
		e.posVision = rng.Normal(side*side+1, cfg.F, 0.02)
		return e, nil
	}
	e.tokenTable = rng.Normal(cfg.VocabSize, cfg.F, 0.02)
	e.posTable = rng.Normal(cfg.MaxSeq, cfg.F, 0.02)
	return e, nil
}

// EmbedTokens maps token ids to the N×F input features (token embedding +
// position embedding, layer-normalized).
func (e *Embedding) EmbedTokens(ids []int) (*tensor.Matrix, error) {
	if e.cfg.Kind == KindVision {
		return nil, fmt.Errorf("model: %s is a vision model; use EmbedImage", e.cfg.Name)
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("model: empty token sequence")
	}
	if len(ids) > e.cfg.MaxSeq {
		return nil, fmt.Errorf("model: sequence length %d exceeds max %d", len(ids), e.cfg.MaxSeq)
	}
	out := tensor.New(len(ids), e.cfg.F)
	for i, id := range ids {
		if id < 0 || id >= e.cfg.VocabSize {
			return nil, fmt.Errorf("model: token id %d outside vocab %d", id, e.cfg.VocabSize)
		}
		dst := out.Row(i)
		tok := e.tokenTable.Row(id)
		pos := e.posTable.Row(i)
		for j := range dst {
			dst[j] = tok[j] + pos[j]
		}
	}
	return tensor.LayerNorm(out, e.lnGain, e.lnBias, e.cfg.Eps())
}

// Image is a dense Channels×Height×Width image in [0,1] stored
// channel-major.
type Image struct {
	Channels, Height, Width int
	Pixels                  []float32
}

// NewImage allocates a zero image.
func NewImage(channels, height, width int) *Image {
	return &Image{
		Channels: channels, Height: height, Width: width,
		Pixels: make([]float32, channels*height*width),
	}
}

// At returns the pixel at (channel c, row y, column x).
func (im *Image) At(c, y, x int) float32 {
	return im.Pixels[(c*im.Height+y)*im.Width+x]
}

// Set assigns the pixel at (channel c, row y, column x).
func (im *Image) Set(c, y, x int, v float32) {
	im.Pixels[(c*im.Height+y)*im.Width+x] = v
}

// RandomImage generates a deterministic synthetic image, standing in for
// the paper's "224 × 224 image" test input.
func RandomImage(rng *tensor.RNG, channels, size int) *Image {
	im := NewImage(channels, size, size)
	for i := range im.Pixels {
		im.Pixels[i] = float32(rng.Float64())
	}
	return im
}

// EmbedImage converts an image into the ViT input sequence: non-overlapping
// PatchSize×PatchSize patches are flattened, linearly projected to F, a
// learned class token is prepended and position embeddings added. For
// 224×224/16 this yields the paper's N = 197.
func (e *Embedding) EmbedImage(im *Image) (*tensor.Matrix, error) {
	if e.cfg.Kind != KindVision {
		return nil, fmt.Errorf("model: %s is a token model; use EmbedTokens", e.cfg.Name)
	}
	if im.Channels != e.cfg.Channels || im.Height != e.cfg.ImageSize || im.Width != e.cfg.ImageSize {
		return nil, fmt.Errorf("model: image %dx%dx%d, want %dx%dx%d",
			im.Channels, im.Height, im.Width, e.cfg.Channels, e.cfg.ImageSize, e.cfg.ImageSize)
	}
	ps := e.cfg.PatchSize
	side := e.cfg.ImageSize / ps
	patchDim := ps * ps * im.Channels
	patches := tensor.New(side*side, patchDim)
	for py := 0; py < side; py++ {
		for px := 0; px < side; px++ {
			row := patches.Row(py*side + px)
			idx := 0
			for c := 0; c < im.Channels; c++ {
				for dy := 0; dy < ps; dy++ {
					for dx := 0; dx < ps; dx++ {
						row[idx] = im.At(c, py*ps+dy, px*ps+dx)
						idx++
					}
				}
			}
		}
	}
	proj, err := tensor.MatMul(patches, e.patchProj)
	if err != nil {
		return nil, err
	}
	if err := tensor.AddBiasInPlace(proj, e.patchBias); err != nil {
		return nil, err
	}
	// Prepend class token.
	out := tensor.New(side*side+1, e.cfg.F)
	copy(out.Row(0), e.classToken)
	for i := 0; i < side*side; i++ {
		copy(out.Row(i+1), proj.Row(i))
	}
	// Position embeddings.
	if err := tensor.AddInPlace(out, e.posVision); err != nil {
		return nil, err
	}
	return out, nil
}
