package model

import (
	"fmt"

	"voltage/internal/attention"
	"voltage/internal/tensor"
)

// Iteration-level batched decoding over the full stack: DecodeStepBatch
// advances B independent sequences (each with its own KV cache and
// position) by one token in a single pass per layer. The position-wise
// work — Q/K/V/WO projections, the FFN, the layer norms — fuses across the
// batch dimension into one matmul per weight per layer; only the attention
// scores stay per-sequence (see attention.StepBatch). Row i of every
// intermediate is bit-identical to a solo DecodeStep on sequence i, so the
// continuous-batching serving path inherits the repo's exactness
// discipline with sequences free to join and leave between steps.

// ForwardIncrementalBatch computes the layer output (B×F) for one new
// position of each of B sequences given their caches, appending each
// position to its cache. Row i of xNew is sequence i's input.
func (l *Layer) ForwardIncrementalBatch(states []*LayerState, xNew *tensor.Matrix) (*tensor.Matrix, error) {
	attnStates := make([]*attention.MultiHeadState, len(states))
	for i, s := range states {
		attnStates[i] = s.Attn
	}
	attnOut, err := l.Attn.StepBatch(attnStates, xNew)
	if err != nil {
		return nil, err
	}
	if err := tensor.AddInPlace(attnOut, xNew); err != nil {
		return nil, err
	}
	y, err := tensor.LayerNorm(attnOut, l.LN1Gain, l.LN1Bias, l.Eps)
	if err != nil {
		return nil, err
	}
	f, err := l.ffn(y)
	if err != nil {
		return nil, err
	}
	if err := tensor.AddInPlace(f, y); err != nil {
		return nil, err
	}
	return tensor.LayerNorm(f, l.LN2Gain, l.LN2Bias, l.Eps)
}

// DecodeStepBatch pushes one token through the cached stack for each of B
// sequences, returning the final hidden states (B×F, row i = sequence i)
// and advancing every cache. ids[i] is sequence i's token; states[i] its
// cache. Sequences may sit at different positions — each row is embedded
// at its own cache length.
func (m *Model) DecodeStepBatch(states []*DecodeState, ids []int) (*tensor.Matrix, error) {
	b := len(states)
	if b == 0 {
		return nil, fmt.Errorf("model: empty decode batch")
	}
	if len(ids) != b {
		return nil, fmt.Errorf("model: %d tokens for %d sequences", len(ids), b)
	}
	x := tensor.New(b, m.Cfg.F)
	for i, s := range states {
		if len(s.Layers) != len(m.Layers) {
			return nil, fmt.Errorf("model: cache %d has %d layers, model %d", i, len(s.Layers), len(m.Layers))
		}
		row, err := m.Embed.EmbedTokenAt(ids[i], s.Pos)
		if err != nil {
			return nil, err
		}
		copy(x.Row(i), row.Row(0))
	}
	layerStates := make([]*LayerState, b)
	for li, l := range m.Layers {
		for i, s := range states {
			layerStates[i] = s.Layers[li]
		}
		out, err := l.ForwardIncrementalBatch(layerStates, x)
		if err != nil {
			return nil, fmt.Errorf("layer %d: %w", li, err)
		}
		x = out
	}
	for _, s := range states {
		s.Pos++
	}
	return x, nil
}
