package model

import (
	"testing"

	"voltage/internal/tensor"
)

func TestClassifierLogitsShape(t *testing.T) {
	cfg := Tiny()
	c, err := NewRandomClassifier(cfg, tensor.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	hidden := tensor.NewRNG(2).Normal(5, cfg.F, 1)
	logits, err := c.Logits(hidden)
	if err != nil {
		t.Fatal(err)
	}
	if len(logits) != cfg.NumClasses {
		t.Fatalf("logits length %d", len(logits))
	}
}

func TestClassifierPoolingPosition(t *testing.T) {
	// Encoder pools the first row; decoder pools the last. Construct
	// hidden states where they differ.
	enc, err := NewRandomClassifier(Tiny(), tensor.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewRandomClassifier(TinyDecoder(), tensor.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	hidden := tensor.NewRNG(4).Normal(6, 32, 1)
	le, err := enc.Logits(hidden)
	if err != nil {
		t.Fatal(err)
	}
	ld, err := dec.Logits(hidden)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range le {
		if le[i] != ld[i] {
			same = false
		}
	}
	if same {
		t.Fatal("encoder and decoder pooled the same position")
	}
	// First-row-only dependence for the encoder.
	h2 := hidden.Clone()
	for j := 0; j < 32; j++ {
		h2.Set(5, j, 0)
	}
	le2, err := enc.Logits(h2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range le {
		if le[i] != le2[i] {
			t.Fatal("encoder logits depend on non-first rows")
		}
	}
}

func TestClassifierErrors(t *testing.T) {
	bad := Tiny()
	bad.NumClasses = 0
	if _, err := NewRandomClassifier(bad, tensor.NewRNG(5)); err == nil {
		t.Fatal("want error for zero classes")
	}
	c, err := NewRandomClassifier(Tiny(), tensor.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Logits(tensor.New(0, 32)); err == nil {
		t.Fatal("want error for empty hidden")
	}
	if _, err := c.Logits(tensor.New(3, 7)); err == nil {
		t.Fatal("want error for wrong width")
	}
	if _, err := c.Predict(tensor.New(3, 7)); err == nil {
		t.Fatal("want error from Predict on bad shape")
	}
}

func TestArgmax(t *testing.T) {
	cases := []struct {
		in   []float32
		want int
	}{
		{nil, -1},
		{[]float32{1}, 0},
		{[]float32{1, 3, 2}, 1},
		{[]float32{2, 2}, 0}, // first on ties
		{[]float32{-5, -1, -9}, 1},
	}
	for _, c := range cases {
		if got := Argmax(c.in); got != c.want {
			t.Errorf("Argmax(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestLMHead(t *testing.T) {
	cfg := TinyDecoder()
	h, err := NewRandomLMHead(cfg, tensor.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	hidden := tensor.NewRNG(8).Normal(4, cfg.F, 1)
	logits, err := h.NextTokenLogits(hidden)
	if err != nil {
		t.Fatal(err)
	}
	if len(logits) != cfg.VocabSize {
		t.Fatalf("logits length %d", len(logits))
	}
	// Depends only on the last row.
	h2 := hidden.Clone()
	for j := 0; j < cfg.F; j++ {
		h2.Set(0, j, 0)
	}
	logits2, err := h.NextTokenLogits(h2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range logits {
		if logits[i] != logits2[i] {
			t.Fatal("LM head depends on non-final rows")
		}
	}
	if _, err := h.NextTokenLogits(tensor.New(0, cfg.F)); err == nil {
		t.Fatal("want error on empty hidden")
	}
	if _, err := NewRandomLMHead(TinyVision(), tensor.NewRNG(9)); err == nil {
		t.Fatal("want error for vision LM head")
	}
}
