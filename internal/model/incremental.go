package model

import (
	"fmt"

	"voltage/internal/attention"
	"voltage/internal/tensor"
)

// This file implements KV-cached incremental decoding over the full
// transformer stack: prefill once over the prompt (optionally distributed
// with Algorithm 2), then decode each token with O(N) attention per layer
// instead of re-running the whole stack.

// LayerState is the decoding cache of one transformer layer.
type LayerState struct {
	Attn *attention.MultiHeadState
}

// DecodeState is the decoding cache of a whole model plus the running
// position counter.
type DecodeState struct {
	Layers []*LayerState
	// Pos is the number of positions processed so far (cache length).
	Pos int
}

// PrefillState builds a layer's cache from its full prefill input x.
func (l *Layer) PrefillState(x *tensor.Matrix) (*LayerState, error) {
	s, err := l.Attn.Prefill(x)
	if err != nil {
		return nil, err
	}
	return &LayerState{Attn: s}, nil
}

// ForwardIncremental computes the layer output for one new position (1×F)
// given the cache, appending the position to the cache.
func (l *Layer) ForwardIncremental(s *LayerState, xNew *tensor.Matrix) (*tensor.Matrix, error) {
	attnOut, err := l.Attn.Step(s.Attn, xNew)
	if err != nil {
		return nil, err
	}
	if err := tensor.AddInPlace(attnOut, xNew); err != nil {
		return nil, err
	}
	y, err := tensor.LayerNorm(attnOut, l.LN1Gain, l.LN1Bias, l.Eps)
	if err != nil {
		return nil, err
	}
	f, err := l.ffn(y)
	if err != nil {
		return nil, err
	}
	if err := tensor.AddInPlace(f, y); err != nil {
		return nil, err
	}
	return tensor.LayerNorm(f, l.LN2Gain, l.LN2Bias, l.Eps)
}

// Prefill runs the full stack over the embedded prompt x, returning the
// final hidden states and a decode cache holding every layer's K/V.
func (m *Model) Prefill(x *tensor.Matrix) (*tensor.Matrix, *DecodeState, error) {
	if m.Cfg.Kind != KindDecoder {
		return nil, nil, fmt.Errorf("model: %s is not a decoder", m.Cfg.Name)
	}
	state := &DecodeState{Layers: make([]*LayerState, len(m.Layers)), Pos: x.Rows()}
	cur := x
	for i, l := range m.Layers {
		ls, err := l.PrefillState(cur)
		if err != nil {
			return nil, nil, fmt.Errorf("layer %d prefill: %w", i, err)
		}
		state.Layers[i] = ls
		out, err := l.Forward(cur)
		if err != nil {
			return nil, nil, fmt.Errorf("layer %d: %w", i, err)
		}
		cur = out
	}
	return cur, state, nil
}

// EmbedTokenAt embeds a single token at an absolute position — the decode
// step's input. The embedding layer norm is position-wise, so the row is
// identical to what EmbedTokens would produce at that index.
func (e *Embedding) EmbedTokenAt(id, pos int) (*tensor.Matrix, error) {
	if e.cfg.Kind == KindVision {
		return nil, fmt.Errorf("model: %s is a vision model", e.cfg.Name)
	}
	if id < 0 || id >= e.cfg.VocabSize {
		return nil, fmt.Errorf("model: token id %d outside vocab %d", id, e.cfg.VocabSize)
	}
	if pos < 0 || pos >= e.cfg.MaxSeq {
		return nil, fmt.Errorf("model: position %d outside max %d", pos, e.cfg.MaxSeq)
	}
	out := tensor.New(1, e.cfg.F)
	dst := out.Row(0)
	tok := e.tokenTable.Row(id)
	posRow := e.posTable.Row(pos)
	for j := range dst {
		dst[j] = tok[j] + posRow[j]
	}
	return tensor.LayerNorm(out, e.lnGain, e.lnBias, e.cfg.Eps())
}

// DecodeStep pushes one token through the cached stack, returning the
// final hidden state of the new position (1×F) and advancing the cache.
func (m *Model) DecodeStep(state *DecodeState, id int) (*tensor.Matrix, error) {
	if len(state.Layers) != len(m.Layers) {
		return nil, fmt.Errorf("model: cache has %d layers, model %d", len(state.Layers), len(m.Layers))
	}
	x, err := m.Embed.EmbedTokenAt(id, state.Pos)
	if err != nil {
		return nil, err
	}
	for i, l := range m.Layers {
		out, err := l.ForwardIncremental(state.Layers[i], x)
		if err != nil {
			return nil, fmt.Errorf("layer %d: %w", i, err)
		}
		x = out
	}
	state.Pos++
	return x, nil
}

// ResumeState rebuilds a decode cache from an already-committed token
// prefix — prompt plus any generated continuation — returning the final
// hidden row (1×F) the next token decodes from, along with the rebuilt
// cache. The prefix is exact integers, so greedy decoding from the rebuilt
// state continues the token stream exactly where an uninterrupted run would
// have: this is what lets the fault-tolerant batcher re-prefill a surviving
// sequence onto a re-partitioned mesh (or the terminal replica) after a
// mid-batch device failure without perturbing its output.
func (m *Model) ResumeState(tokens []int) (*tensor.Matrix, *DecodeState, error) {
	if len(tokens) == 0 {
		return nil, nil, fmt.Errorf("model: empty resume prefix")
	}
	x, err := m.Embed.EmbedTokens(tokens)
	if err != nil {
		return nil, nil, err
	}
	hidden, state, err := m.Prefill(x)
	if err != nil {
		return nil, nil, err
	}
	last, err := hidden.RowSlice(hidden.Rows()-1, hidden.Rows())
	if err != nil {
		return nil, nil, err
	}
	return last, state, nil
}

// GenerateIncremental decodes steps tokens greedily with the KV cache,
// single-device. It is the reference the distributed decoder is tested
// against.
func (m *Model) GenerateIncremental(prompt []int, steps int) ([]int, error) {
	if len(prompt) == 0 {
		return nil, fmt.Errorf("model: empty prompt")
	}
	x, err := m.Embed.EmbedTokens(prompt)
	if err != nil {
		return nil, err
	}
	hidden, state, err := m.Prefill(x)
	if err != nil {
		return nil, err
	}
	tokens := make([]int, len(prompt), len(prompt)+steps)
	copy(tokens, prompt)
	// First next-token from the prefill output.
	last, err := hidden.RowSlice(hidden.Rows()-1, hidden.Rows())
	if err != nil {
		return nil, err
	}
	for i := 0; i < steps; i++ {
		if len(tokens) >= m.Cfg.MaxSeq {
			break
		}
		logits, err := m.lmLogits(last)
		if err != nil {
			return nil, err
		}
		next := Argmax(logits)
		tokens = append(tokens, next)
		if i == steps-1 || len(tokens) >= m.Cfg.MaxSeq {
			break
		}
		last, err = m.DecodeStep(state, next)
		if err != nil {
			return nil, err
		}
	}
	return tokens, nil
}

// lmLogits projects a single hidden row through the LM head.
func (m *Model) lmLogits(row *tensor.Matrix) ([]float32, error) {
	if m.LM == nil {
		return nil, fmt.Errorf("model: %s has no LM head", m.Cfg.Name)
	}
	return m.LM.NextTokenLogits(row)
}
