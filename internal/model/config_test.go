package model

import (
	"strings"
	"testing"

	"voltage/internal/tensor"
)

func TestPresetShapesMatchPaper(t *testing.T) {
	cases := []struct {
		cfg    Config
		layers int
		f      int
		heads  int
		fh     int
	}{
		{BERTLarge(), 24, 1024, 16, 64},
		{GPT2(), 12, 768, 12, 64},
		{ViTBase(), 12, 768, 12, 64},
	}
	for _, c := range cases {
		t.Run(c.cfg.Name, func(t *testing.T) {
			if err := c.cfg.Validate(); err != nil {
				t.Fatal(err)
			}
			if c.cfg.Layers != c.layers || c.cfg.F != c.f || c.cfg.Heads != c.heads || c.cfg.FH() != c.fh {
				t.Fatalf("preset %s = %d layers F=%d H=%d FH=%d", c.cfg.Name,
					c.cfg.Layers, c.cfg.F, c.cfg.Heads, c.cfg.FH())
			}
		})
	}
}

func TestViTSeqLenIs197(t *testing.T) {
	// 224/16 = 14 → 14² + [CLS] = 197, the paper's ViT sequence length.
	if got := ViTBase().SeqLen(0); got != 197 {
		t.Fatalf("ViT SeqLen = %d, want 197", got)
	}
	if got := BERTLarge().SeqLen(200); got != 200 {
		t.Fatalf("BERT SeqLen = %d, want 200", got)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"no layers", func(c *Config) { c.Layers = 0 }},
		{"indivisible heads", func(c *Config) { c.F = 33 }},
		{"no ffn", func(c *Config) { c.FFN = 0 }},
		{"no vocab", func(c *Config) { c.VocabSize = 0 }},
		{"no maxseq", func(c *Config) { c.MaxSeq = 0 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := Tiny()
			c.mut(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatalf("Validate accepted %s", c.name)
			}
		})
	}
	bad := TinyVision()
	bad.PatchSize = 5 // 16 % 5 != 0
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate accepted indivisible patch size")
	}
}

func TestPresetsLookup(t *testing.T) {
	for _, name := range []string{"bert", "bert-large", "gpt2", "vit", "tiny", "tiny-decoder", "tiny-vision"} {
		if _, err := Presets(name); err != nil {
			t.Errorf("Presets(%q): %v", name, err)
		}
	}
	if _, err := Presets("nope"); err == nil || !strings.Contains(err.Error(), "unknown preset") {
		t.Fatalf("Presets(nope) = %v", err)
	}
}

func TestScaled(t *testing.T) {
	c := BERTLarge().Scaled(2)
	if c.Layers != 2 || c.F != 1024 {
		t.Fatalf("Scaled = %+v", c)
	}
}

func TestEpsDefault(t *testing.T) {
	c := Config{}
	if c.Eps() != 1e-5 {
		t.Fatalf("Eps default = %v", c.Eps())
	}
	c.LayerNormEps = 1e-6
	if c.Eps() != 1e-6 {
		t.Fatalf("Eps override = %v", c.Eps())
	}
}

func TestKindString(t *testing.T) {
	if KindEncoder.String() != "encoder" || KindDecoder.String() != "decoder" || KindVision.String() != "vision" {
		t.Fatal("Kind String broken")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Fatal("unknown Kind String")
	}
}

func TestActivationsPreset(t *testing.T) {
	if BERTLarge().Act != tensor.GELU || GPT2().Act != tensor.GELU {
		t.Fatal("presets should use GELU")
	}
}
