package model

import (
	"errors"
	"testing"
	"testing/quick"

	"voltage/internal/flopcount"
	"voltage/internal/partition"
	"voltage/internal/tensor"
)

func tinyLayer(t testing.TB, seed int64) *Layer {
	t.Helper()
	l, err := NewRandomLayer(Tiny(), tensor.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewRandomLayerRejectsInvalidConfig(t *testing.T) {
	bad := Tiny()
	bad.Layers = 0
	if _, err := NewRandomLayer(bad, tensor.NewRNG(1)); err == nil {
		t.Fatal("want error")
	}
}

func TestLayerPartitionEqualsFullSlice(t *testing.T) {
	// The core claim of §III: a partitioned layer computes exactly the
	// corresponding rows of the full layer output.
	f := func(seed int64) bool {
		l := tinyLayer(t, seed)
		rng := tensor.NewRNG(seed + 1)
		n := 4 + rng.Intn(28)
		x := rng.Normal(n, l.F(), 1)
		full, err := l.Forward(x)
		if err != nil {
			return false
		}
		from := rng.Intn(n)
		to := from + 1 + rng.Intn(n-from)
		part, order, err := l.ForwardPartition(x, partition.Range{From: from, To: to})
		if err != nil {
			t.Logf("ForwardPartition: %v", err)
			return false
		}
		want, err := full.RowSlice(from, to)
		if err != nil {
			return false
		}
		if !part.AlmostEqual(want, 1e-3) {
			d, _ := part.MaxAbsDiff(want)
			t.Logf("partition [%d,%d) order %v differs by %v", from, to, order, d)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestCausalLayerPartitionEqualsFullSlice(t *testing.T) {
	l, err := NewRandomLayer(TinyDecoder(), tensor.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	if !l.Causal {
		t.Fatal("decoder layer not causal")
	}
	rng := tensor.NewRNG(6)
	x := rng.Normal(16, l.F(), 1)
	full, err := l.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	part, _, err := l.ForwardPartition(x, partition.Range{From: 5, To: 12})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := full.RowSlice(5, 12)
	if !part.AlmostEqual(want, 1e-3) {
		t.Fatal("causal partition differs from full slice")
	}
}

func TestForwardPartitionEmptyRange(t *testing.T) {
	l := tinyLayer(t, 9)
	x := tensor.NewRNG(10).Normal(8, l.F(), 1)
	out, _, err := l.ForwardPartition(x, partition.Range{From: 3, To: 3})
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 0 || out.Cols() != l.F() {
		t.Fatalf("empty partition shape %dx%d", out.Rows(), out.Cols())
	}
}

func TestForwardPartitionRangeValidation(t *testing.T) {
	l := tinyLayer(t, 11)
	x := tensor.NewRNG(12).Normal(8, l.F(), 1)
	for _, r := range []partition.Range{{From: -1, To: 2}, {From: 0, To: 9}, {From: 5, To: 2}} {
		if _, _, err := l.ForwardPartition(x, r); !errors.Is(err, tensor.ErrShape) {
			t.Fatalf("range %v: want ErrShape, got %v", r, err)
		}
		if _, err := l.ForwardPartitionFixedOrder(x, r, flopcount.OrderNaive); !errors.Is(err, tensor.ErrShape) {
			t.Fatalf("fixed order range %v: want ErrShape, got %v", r, err)
		}
	}
}

func TestFixedOrderMatchesAdaptive(t *testing.T) {
	l := tinyLayer(t, 13)
	x := tensor.NewRNG(14).Normal(20, l.F(), 1)
	r := partition.Range{From: 2, To: 7}
	adaptive, order, err := l.ForwardPartition(x, r)
	if err != nil {
		t.Fatal(err)
	}
	same, err := l.ForwardPartitionFixedOrder(x, r, order)
	if err != nil {
		t.Fatal(err)
	}
	if !adaptive.Equal(same) {
		t.Fatal("fixed order with the adaptive pick differs")
	}
	other, err := l.ForwardPartitionFixedOrder(x, r, flopcount.OrderNaive)
	if err != nil {
		t.Fatal(err)
	}
	if !adaptive.AlmostEqual(other, 1e-3) {
		t.Fatal("different orders give numerically different layers")
	}
	emptyOut, err := l.ForwardPartitionFixedOrder(x, partition.Range{From: 4, To: 4}, flopcount.OrderNaive)
	if err != nil || emptyOut.Rows() != 0 {
		t.Fatalf("empty fixed order: %v rows %d", err, emptyOut.Rows())
	}
}

func TestPartitionsAssembleToFullLayerOutput(t *testing.T) {
	// ∪ Tpi(x) = T(x) across an uneven 3-way scheme.
	l := tinyLayer(t, 15)
	rng := tensor.NewRNG(16)
	x := rng.Normal(17, l.F(), 1)
	full, err := l.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	scheme, err := partition.Weighted([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	ranges, err := scheme.Ranges(17)
	if err != nil {
		t.Fatal(err)
	}
	assembled := tensor.New(17, l.F())
	for _, r := range ranges {
		part, _, err := l.ForwardPartition(x, r)
		if err != nil {
			t.Fatal(err)
		}
		if err := assembled.SetRowSlice(r.From, part); err != nil {
			t.Fatal(err)
		}
	}
	if !assembled.AlmostEqual(full, 1e-3) {
		t.Fatal("scheme partitions do not assemble to the full output")
	}
}

func TestLayerCost(t *testing.T) {
	l := tinyLayer(t, 17)
	c, err := l.Cost(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	if c <= 0 {
		t.Fatalf("Cost = %d", c)
	}
	cFull, err := l.Cost(64, 64)
	if err != nil {
		t.Fatal(err)
	}
	if cFull <= c {
		t.Fatal("full-partition cost should exceed 1/8 partition cost")
	}
}
