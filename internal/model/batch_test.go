package model

import (
	"testing"
)

// decodeStates prefills one DecodeState per prompt on m.
func decodeStates(t *testing.T, m *Model, prompts [][]int) []*DecodeState {
	t.Helper()
	states := make([]*DecodeState, len(prompts))
	for i, p := range prompts {
		x, err := m.Embed.EmbedTokens(p)
		if err != nil {
			t.Fatal(err)
		}
		_, s, err := m.Prefill(x)
		if err != nil {
			t.Fatal(err)
		}
		states[i] = s
	}
	return states
}

func TestDecodeStepBatchBitIdenticalToSolo(t *testing.T) {
	m, err := NewRandom(TinyDecoder(), 7)
	if err != nil {
		t.Fatal(err)
	}
	prompts := [][]int{{1, 2, 3}, {9, 8, 7, 6, 5}, {4}}
	batched := decodeStates(t, m, prompts)
	solo := decodeStates(t, m, prompts)
	ids := []int{2, 11, 5}
	for round := 0; round < 4; round++ {
		got, err := m.DecodeStepBatch(batched, ids)
		if err != nil {
			t.Fatal(err)
		}
		for i := range solo {
			want, err := m.DecodeStep(solo[i], ids[i])
			if err != nil {
				t.Fatal(err)
			}
			gotRow, err := got.RowSlice(i, i+1)
			if err != nil {
				t.Fatal(err)
			}
			if !gotRow.Equal(want) {
				t.Fatalf("round %d sequence %d: batched decode not bit-identical", round, i)
			}
			if batched[i].Pos != solo[i].Pos {
				t.Fatalf("round %d sequence %d: pos %d vs %d", round, i, batched[i].Pos, solo[i].Pos)
			}
			// Advance each sequence with a distinct next token.
			ids[i] = (ids[i]*3 + i + 1) % m.Cfg.VocabSize
		}
	}
}

func TestDecodeStepBatchMembershipChurn(t *testing.T) {
	// A sequence leaving the batch must not perturb the survivors: decode
	// three together, drop the middle one, keep stepping the other two and
	// compare against solo decoding throughout.
	m, err := NewRandom(TinyDecoder(), 13)
	if err != nil {
		t.Fatal(err)
	}
	prompts := [][]int{{3, 1, 4}, {1, 5, 9, 2}, {6, 5, 3, 5, 8}}
	batched := decodeStates(t, m, prompts)
	solo := decodeStates(t, m, prompts)
	ids := []int{1, 2, 3}
	step := func(states []*DecodeState, tokens []int, keep []int) {
		t.Helper()
		got, err := m.DecodeStepBatch(states, tokens)
		if err != nil {
			t.Fatal(err)
		}
		for bi, si := range keep {
			want, err := m.DecodeStep(solo[si], tokens[bi])
			if err != nil {
				t.Fatal(err)
			}
			gotRow, err := got.RowSlice(bi, bi+1)
			if err != nil {
				t.Fatal(err)
			}
			if !gotRow.Equal(want) {
				t.Fatalf("sequence %d diverged after churn", si)
			}
		}
	}
	step(batched, ids, []int{0, 1, 2})
	// Sequence 1 leaves; 0 and 2 continue fused.
	survivors := []*DecodeState{batched[0], batched[2]}
	step(survivors, []int{7, 8}, []int{0, 2})
	step(survivors, []int{9, 10}, []int{0, 2})
}

func TestDecodeStepBatchValidation(t *testing.T) {
	m, err := NewRandom(TinyDecoder(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.DecodeStepBatch(nil, nil); err == nil {
		t.Fatal("want error for empty batch")
	}
	states := decodeStates(t, m, [][]int{{1, 2}})
	if _, err := m.DecodeStepBatch(states, []int{1, 2}); err == nil {
		t.Fatal("want error for id/state count mismatch")
	}
	if _, err := m.DecodeStepBatch(states, []int{m.Cfg.VocabSize}); err == nil {
		t.Fatal("want error for out-of-vocab token")
	}
	bad := []*DecodeState{{Layers: []*LayerState{nil}}}
	if _, err := m.DecodeStepBatch(bad, []int{1}); err == nil {
		t.Fatal("want error for layer-count mismatch")
	}
}
