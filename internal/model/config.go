// Package model implements complete transformer models — configuration,
// weights, embeddings, transformer layers (full and partitioned per
// Algorithm 1 of the Voltage paper) and task heads — on top of the tensor
// substrate. The three presets mirror the models the paper evaluates:
// BERT-Large-Uncased, GPT-2 and ViT-Base.
package model

import (
	"fmt"

	"voltage/internal/tensor"
)

// Kind distinguishes the input modality / attention style of a model.
type Kind int

// Supported model kinds.
const (
	// KindEncoder is a bidirectional encoder over token sequences (BERT).
	KindEncoder Kind = iota + 1
	// KindDecoder is a causal decoder over token sequences (GPT-2).
	KindDecoder
	// KindVision is an encoder over image patch sequences (ViT).
	KindVision
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindEncoder:
		return "encoder"
	case KindDecoder:
		return "decoder"
	case KindVision:
		return "vision"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Config describes a transformer model architecture.
type Config struct {
	Name       string
	Kind       Kind
	Layers     int               // number of stacked transformer layers
	F          int               // model feature dimensionality (hidden size)
	Heads      int               // attention heads H
	FFN        int               // feed-forward inner dimensionality
	Act        tensor.Activation // FFN activation
	VocabSize  int               // token vocabulary (encoder/decoder)
	MaxSeq     int               // maximum sequence length (position table)
	NumClasses int               // classifier output classes
	// Vision-only fields.
	ImageSize int // input image side length in pixels
	PatchSize int // square patch side length
	Channels  int // image channels
	// LayerNormEps is the layer-norm stabilizer; 0 means 1e-5.
	LayerNormEps float32
}

// FH returns the per-head feature dimensionality F/H.
func (c Config) FH() int { return c.F / c.Heads }

// Eps returns the effective layer-norm epsilon.
func (c Config) Eps() float32 {
	if c.LayerNormEps == 0 {
		return 1e-5
	}
	return c.LayerNormEps
}

// SeqLen returns the transformer sequence length for the given raw input
// length: for vision models it is the patch count plus the class token and
// ignores the argument; for token models it is the token count itself.
func (c Config) SeqLen(tokens int) int {
	if c.Kind == KindVision {
		side := c.ImageSize / c.PatchSize
		return side*side + 1 // +1 class token
	}
	return tokens
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	switch {
	case c.Layers < 1:
		return fmt.Errorf("model: %s: layers %d < 1", c.Name, c.Layers)
	case c.F < 1 || c.Heads < 1 || c.F%c.Heads != 0:
		return fmt.Errorf("model: %s: F %d not divisible by heads %d", c.Name, c.F, c.Heads)
	case c.FFN < 1:
		return fmt.Errorf("model: %s: FFN %d < 1", c.Name, c.FFN)
	case c.Kind == KindVision && (c.PatchSize < 1 || c.ImageSize%c.PatchSize != 0 || c.Channels < 1):
		return fmt.Errorf("model: %s: image %d patch %d channels %d inconsistent",
			c.Name, c.ImageSize, c.PatchSize, c.Channels)
	case c.Kind != KindVision && (c.VocabSize < 1 || c.MaxSeq < 1):
		return fmt.Errorf("model: %s: vocab %d maxseq %d", c.Name, c.VocabSize, c.MaxSeq)
	}
	return nil
}

// BERTLarge returns the BERT-Large-Uncased architecture used in the paper's
// text-classification experiments: 24 layers, F=1024, H=16, FFN=4096, GELU.
func BERTLarge() Config {
	return Config{
		Name: "bert-large-uncased", Kind: KindEncoder,
		Layers: 24, F: 1024, Heads: 16, FFN: 4096, Act: tensor.GELU,
		VocabSize: 30522, MaxSeq: 512, NumClasses: 2,
	}
}

// GPT2 returns the GPT-2 (small, 124M) architecture: 12 layers, F=768,
// H=12, FFN=3072, GELU, causal attention.
func GPT2() Config {
	return Config{
		Name: "gpt2", Kind: KindDecoder,
		Layers: 12, F: 768, Heads: 12, FFN: 3072, Act: tensor.GELU,
		VocabSize: 50257, MaxSeq: 1024, NumClasses: 2,
	}
}

// ViTBase returns the ViT-Base/16 architecture for 224×224 images: 12
// layers, F=768, H=12, FFN=3072, GELU, sequence length 197 (196 patches +
// class token).
func ViTBase() Config {
	return Config{
		Name: "vit-base-patch16-224", Kind: KindVision,
		Layers: 12, F: 768, Heads: 12, FFN: 3072, Act: tensor.GELU,
		NumClasses: 1000, ImageSize: 224, PatchSize: 16, Channels: 3,
	}
}

// Tiny returns a small encoder configuration for fast tests: 2 layers,
// F=32, H=4, FFN=64.
func Tiny() Config {
	return Config{
		Name: "tiny", Kind: KindEncoder,
		Layers: 2, F: 32, Heads: 4, FFN: 64, Act: tensor.GELU,
		VocabSize: 100, MaxSeq: 64, NumClasses: 2,
	}
}

// TinyDecoder returns a small causal decoder configuration for fast tests.
func TinyDecoder() Config {
	c := Tiny()
	c.Name = "tiny-decoder"
	c.Kind = KindDecoder
	return c
}

// TinyVision returns a small vision configuration for fast tests: 16×16
// images in 4×4 patches (17 positions with the class token).
func TinyVision() Config {
	return Config{
		Name: "tiny-vision", Kind: KindVision,
		Layers: 2, F: 32, Heads: 4, FFN: 64, Act: tensor.GELU,
		NumClasses: 10, ImageSize: 16, PatchSize: 4, Channels: 3,
	}
}

// Presets returns the named architecture, matching the paper's model set.
func Presets(name string) (Config, error) {
	switch name {
	case "bert", "bert-large", "bert-large-uncased":
		return BERTLarge(), nil
	case "gpt2":
		return GPT2(), nil
	case "vit", "vit-base", "vit-base-patch16-224":
		return ViTBase(), nil
	case "tiny":
		return Tiny(), nil
	case "tiny-decoder":
		return TinyDecoder(), nil
	case "tiny-vision":
		return TinyVision(), nil
	default:
		return Config{}, fmt.Errorf("model: unknown preset %q", name)
	}
}

// Scaled returns a copy of c with the layer count replaced, used by the
// benchmark harness to run paper-shaped models at laptop-tractable depth.
func (c Config) Scaled(layers int) Config {
	c.Layers = layers
	return c
}
