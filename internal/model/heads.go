package model

import (
	"fmt"

	"voltage/internal/tensor"
)

// Classifier is the post-processing head that maps the transformer stack's
// output to class logits. Encoder and vision models classify from the first
// position (the [CLS]/class token); decoders classify from the last
// position, matching common fine-tuning practice.
type Classifier struct {
	cfg Config
	W   *tensor.Matrix // F×NumClasses
	B   []float32
}

// NewRandomClassifier builds a deterministic classifier head for cfg.
func NewRandomClassifier(cfg Config, rng *tensor.RNG) (*Classifier, error) {
	if cfg.NumClasses < 1 {
		return nil, fmt.Errorf("model: %s: classes %d < 1", cfg.Name, cfg.NumClasses)
	}
	return &Classifier{
		cfg: cfg,
		W:   rng.XavierNormal(cfg.F, cfg.NumClasses),
		B:   tensor.Zeros(cfg.NumClasses),
	}, nil
}

// Logits maps the N×F final hidden states to class logits.
func (c *Classifier) Logits(hidden *tensor.Matrix) ([]float32, error) {
	if hidden.Rows() == 0 || hidden.Cols() != c.cfg.F {
		return nil, fmt.Errorf("%w: hidden %dx%d, want ?x%d",
			tensor.ErrShape, hidden.Rows(), hidden.Cols(), c.cfg.F)
	}
	row := 0
	if c.cfg.Kind == KindDecoder {
		row = hidden.Rows() - 1
	}
	pooled, err := hidden.RowSlice(row, row+1)
	if err != nil {
		return nil, err
	}
	logits, err := tensor.MatMul(pooled, c.W)
	if err != nil {
		return nil, err
	}
	if err := tensor.AddBiasInPlace(logits, c.B); err != nil {
		return nil, err
	}
	out := make([]float32, c.cfg.NumClasses)
	copy(out, logits.Row(0))
	return out, nil
}

// Predict returns the argmax class of Logits.
func (c *Classifier) Predict(hidden *tensor.Matrix) (int, error) {
	logits, err := c.Logits(hidden)
	if err != nil {
		return 0, err
	}
	return Argmax(logits), nil
}

// Argmax returns the index of the largest value (first on ties, -1 for an
// empty slice).
func Argmax(v []float32) int {
	if len(v) == 0 {
		return -1
	}
	best := 0
	for i, x := range v[1:] {
		if x > v[best] {
			best = i + 1
		}
	}
	return best
}

// LMHead projects the final hidden state of the last position onto the
// vocabulary for next-token prediction (GPT-2 generation).
type LMHead struct {
	cfg Config
	W   *tensor.Matrix // F×VocabSize
}

// NewRandomLMHead builds a deterministic LM head for cfg.
func NewRandomLMHead(cfg Config, rng *tensor.RNG) (*LMHead, error) {
	if cfg.Kind == KindVision {
		return nil, fmt.Errorf("model: %s: LM head on a vision model", cfg.Name)
	}
	return &LMHead{cfg: cfg, W: rng.XavierNormal(cfg.F, cfg.VocabSize)}, nil
}

// NextTokenLogits returns the vocabulary logits for the position after the
// final one.
func (h *LMHead) NextTokenLogits(hidden *tensor.Matrix) ([]float32, error) {
	if hidden.Rows() == 0 || hidden.Cols() != h.cfg.F {
		return nil, fmt.Errorf("%w: hidden %dx%d, want ?x%d",
			tensor.ErrShape, hidden.Rows(), hidden.Cols(), h.cfg.F)
	}
	last, err := hidden.RowSlice(hidden.Rows()-1, hidden.Rows())
	if err != nil {
		return nil, err
	}
	logits, err := tensor.MatMul(last, h.W)
	if err != nil {
		return nil, err
	}
	out := make([]float32, h.cfg.VocabSize)
	copy(out, logits.Row(0))
	return out, nil
}
