package model

import (
	"testing"

	"voltage/internal/tensor"
)

func TestEmbedTokensShape(t *testing.T) {
	e, err := NewRandomEmbedding(Tiny(), tensor.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	x, err := e.EmbedTokens([]int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if x.Rows() != 3 || x.Cols() != 32 {
		t.Fatalf("shape %dx%d", x.Rows(), x.Cols())
	}
}

func TestEmbedTokensPositionDependence(t *testing.T) {
	e, err := NewRandomEmbedding(Tiny(), tensor.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	x, err := e.EmbedTokens([]int{7, 7})
	if err != nil {
		t.Fatal(err)
	}
	// Same token at different positions must differ (position embedding).
	r0, _ := x.RowSlice(0, 1)
	r1, _ := x.RowSlice(1, 2)
	if r0.AlmostEqual(r1, 1e-6) {
		t.Fatal("position embedding missing")
	}
}

func TestEmbedTokensErrors(t *testing.T) {
	e, err := NewRandomEmbedding(Tiny(), tensor.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.EmbedTokens(nil); err == nil {
		t.Fatal("want error on empty sequence")
	}
	if _, err := e.EmbedTokens([]int{-1}); err == nil {
		t.Fatal("want error on negative id")
	}
	if _, err := e.EmbedTokens([]int{1000}); err == nil {
		t.Fatal("want error on OOV id")
	}
	long := make([]int, 100) // Tiny MaxSeq = 64
	if _, err := e.EmbedTokens(long); err == nil {
		t.Fatal("want error on over-long sequence")
	}
	ev, err := NewRandomEmbedding(TinyVision(), tensor.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.EmbedTokens([]int{1}); err == nil {
		t.Fatal("want error on token input to vision model")
	}
}

func TestEmbedImageShape(t *testing.T) {
	cfg := TinyVision()
	e, err := NewRandomEmbedding(cfg, tensor.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	im := RandomImage(tensor.NewRNG(6), 3, 16)
	x, err := e.EmbedImage(im)
	if err != nil {
		t.Fatal(err)
	}
	// 16/4 = 4 → 16 patches + class token = 17 positions.
	if x.Rows() != 17 || x.Cols() != cfg.F {
		t.Fatalf("shape %dx%d, want 17x%d", x.Rows(), x.Cols(), cfg.F)
	}
}

func TestEmbedImageErrors(t *testing.T) {
	e, err := NewRandomEmbedding(TinyVision(), tensor.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	wrong := NewImage(3, 8, 8)
	if _, err := e.EmbedImage(wrong); err == nil {
		t.Fatal("want error on wrong image size")
	}
	et, err := NewRandomEmbedding(Tiny(), tensor.NewRNG(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := et.EmbedImage(RandomImage(tensor.NewRNG(9), 3, 16)); err == nil {
		t.Fatal("want error on image input to token model")
	}
}

func TestImageAccessors(t *testing.T) {
	im := NewImage(2, 3, 4)
	im.Set(1, 2, 3, 0.5)
	if im.At(1, 2, 3) != 0.5 {
		t.Fatal("Image At/Set broken")
	}
	if im.At(0, 0, 0) != 0 {
		t.Fatal("Image not zeroed")
	}
}

func TestPatchExtractionIsLossless(t *testing.T) {
	// Two images differing in exactly one pixel must produce different
	// patch rows in exactly one patch position.
	cfg := TinyVision()
	e, err := NewRandomEmbedding(cfg, tensor.NewRNG(10))
	if err != nil {
		t.Fatal(err)
	}
	im1 := RandomImage(tensor.NewRNG(11), 3, 16)
	im2 := NewImage(3, 16, 16)
	copy(im2.Pixels, im1.Pixels)
	im2.Set(0, 5, 9, im1.At(0, 5, 9)+1) // patch (1,2) → sequence row 1 + 1*4+2
	x1, err := e.EmbedImage(im1)
	if err != nil {
		t.Fatal(err)
	}
	x2, err := e.EmbedImage(im2)
	if err != nil {
		t.Fatal(err)
	}
	changed := 0
	for i := 0; i < x1.Rows(); i++ {
		r1, _ := x1.RowSlice(i, i+1)
		r2, _ := x2.RowSlice(i, i+1)
		if !r1.Equal(r2) {
			changed++
			if i != 1+1*4+2 {
				t.Fatalf("unexpected changed row %d", i)
			}
		}
	}
	if changed != 1 {
		t.Fatalf("%d rows changed, want 1", changed)
	}
}

func TestRandomImagePixelRange(t *testing.T) {
	im := RandomImage(tensor.NewRNG(12), 3, 16)
	for _, p := range im.Pixels {
		if p < 0 || p >= 1 {
			t.Fatalf("pixel %v outside [0,1)", p)
		}
	}
}
