package model

import (
	"fmt"

	"voltage/internal/partition"
	"voltage/internal/tensor"
)

// Model is a complete transformer: embedding, a stack of transformer
// layers, and task heads. Weights are deterministic functions of (config,
// seed), so every device in a cluster can materialize an identical replica
// locally — the property Voltage exploits to avoid shipping weights.
type Model struct {
	Cfg        Config
	Embed      *Embedding
	Layers     []*Layer
	Classifier *Classifier
	LM         *LMHead // nil for vision models
}

// NewRandom builds the model for cfg with weights derived from seed.
func NewRandom(cfg Config, seed int64) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := tensor.NewRNG(seed)
	embed, err := NewRandomEmbedding(cfg, rng)
	if err != nil {
		return nil, err
	}
	layers := make([]*Layer, cfg.Layers)
	for i := range layers {
		l, err := NewRandomLayer(cfg, rng)
		if err != nil {
			return nil, fmt.Errorf("layer %d: %w", i, err)
		}
		layers[i] = l
	}
	cls, err := NewRandomClassifier(cfg, rng)
	if err != nil {
		return nil, err
	}
	m := &Model{Cfg: cfg, Embed: embed, Layers: layers, Classifier: cls}
	if cfg.Kind != KindVision {
		lm, err := NewRandomLMHead(cfg, rng)
		if err != nil {
			return nil, err
		}
		m.LM = lm
	}
	return m, nil
}

// ForwardFeatures runs the full transformer stack on the embedded input x,
// single-device (every layer computes all positions).
func (m *Model) ForwardFeatures(x *tensor.Matrix) (*tensor.Matrix, error) {
	cur := x
	for i, l := range m.Layers {
		out, err := l.Forward(cur)
		if err != nil {
			return nil, fmt.Errorf("layer %d: %w", i, err)
		}
		cur = out
	}
	return cur, nil
}

// ClassifyTokens embeds a token sequence, runs the stack, and returns the
// predicted class — the end-to-end single-device text path.
func (m *Model) ClassifyTokens(ids []int) (int, error) {
	x, err := m.Embed.EmbedTokens(ids)
	if err != nil {
		return 0, err
	}
	h, err := m.ForwardFeatures(x)
	if err != nil {
		return 0, err
	}
	return m.Classifier.Predict(h)
}

// ClassifyImage embeds an image, runs the stack, and returns the predicted
// class — the end-to-end single-device vision path.
func (m *Model) ClassifyImage(im *Image) (int, error) {
	x, err := m.Embed.EmbedImage(im)
	if err != nil {
		return 0, err
	}
	h, err := m.ForwardFeatures(x)
	if err != nil {
		return 0, err
	}
	return m.Classifier.Predict(h)
}

// NextToken returns the argmax next token for a decoder model, used by the
// autoregressive generation example.
func (m *Model) NextToken(ids []int) (int, error) {
	if m.LM == nil {
		return 0, fmt.Errorf("model: %s has no LM head", m.Cfg.Name)
	}
	x, err := m.Embed.EmbedTokens(ids)
	if err != nil {
		return 0, err
	}
	h, err := m.ForwardFeatures(x)
	if err != nil {
		return 0, err
	}
	logits, err := m.LM.NextTokenLogits(h)
	if err != nil {
		return 0, err
	}
	return Argmax(logits), nil
}

// ForwardLayerPartition computes layer i's output partition T_p(x) for the
// position range r — the unit of work Voltage assigns to one device.
func (m *Model) ForwardLayerPartition(layer int, x *tensor.Matrix, r partition.Range) (*tensor.Matrix, error) {
	if layer < 0 || layer >= len(m.Layers) {
		return nil, fmt.Errorf("model: layer %d of %d", layer, len(m.Layers))
	}
	out, _, err := m.Layers[layer].ForwardPartition(x, r)
	return out, err
}

// CostPerLayer returns the analytic Γ of one layer for input length n and
// partition length p.
func (m *Model) CostPerLayer(n, p int) (int64, error) {
	if len(m.Layers) == 0 {
		return 0, fmt.Errorf("model: no layers")
	}
	return m.Layers[0].Cost(n, p)
}

// TotalCost returns the analytic Γ of the whole stack for input length n
// and per-device partition length p.
func (m *Model) TotalCost(n, p int) (int64, error) {
	per, err := m.CostPerLayer(n, p)
	if err != nil {
		return 0, err
	}
	return per * int64(len(m.Layers)), nil
}
