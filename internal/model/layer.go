package model

import (
	"fmt"

	"voltage/internal/attention"
	"voltage/internal/flopcount"
	"voltage/internal/partition"
	"voltage/internal/tensor"
)

// Layer is one transformer layer: multi-head self-attention with residual
// and layer norm, followed by a position-wise feed-forward network with
// residual and layer norm (post-LN, as in the original transformer and
// BERT).
type Layer struct {
	Attn *attention.MultiHead

	// Feed-forward network: Act(x·W1 + b1)·W2 + b2.
	W1 *tensor.Matrix
	B1 []float32
	W2 *tensor.Matrix
	B2 []float32

	// Layer norm parameters after attention (1) and after FFN (2).
	LN1Gain, LN1Bias []float32
	LN2Gain, LN2Bias []float32

	Act    tensor.Activation
	Eps    float32
	Causal bool // decoder layers mask future positions
}

// NewRandomLayer builds a deterministic layer for the given architecture.
func NewRandomLayer(cfg Config, rng *tensor.RNG) (*Layer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	mh, err := attention.RandomMultiHead(rng, cfg.Heads, cfg.F, cfg.FH())
	if err != nil {
		return nil, err
	}
	return &Layer{
		Attn:    mh,
		W1:      rng.XavierNormal(cfg.F, cfg.FFN),
		B1:      tensor.Zeros(cfg.FFN),
		W2:      rng.XavierNormal(cfg.FFN, cfg.F),
		B2:      tensor.Zeros(cfg.F),
		LN1Gain: tensor.Ones(cfg.F),
		LN1Bias: tensor.Zeros(cfg.F),
		LN2Gain: tensor.Ones(cfg.F),
		LN2Bias: tensor.Zeros(cfg.F),
		Act:     cfg.Act,
		Eps:     cfg.Eps(),
		Causal:  cfg.Kind == KindDecoder,
	}, nil
}

// F returns the layer's feature dimensionality.
func (l *Layer) F() int { return l.Attn.F() }

// ffn applies the position-wise feed-forward network to m.
func (l *Layer) ffn(m *tensor.Matrix) (*tensor.Matrix, error) {
	h, err := tensor.MatMul(m, l.W1)
	if err != nil {
		return nil, err
	}
	if err := tensor.AddBiasInPlace(h, l.B1); err != nil {
		return nil, err
	}
	l.Act.ApplyInPlace(h)
	out, err := tensor.MatMul(h, l.W2)
	if err != nil {
		return nil, err
	}
	if err := tensor.AddBiasInPlace(out, l.B2); err != nil {
		return nil, err
	}
	return out, nil
}

// Forward computes the full layer output T(x) for all positions (the
// single-device path).
func (l *Layer) Forward(x *tensor.Matrix) (*tensor.Matrix, error) {
	out, _, err := l.ForwardPartition(x, partition.Range{From: 0, To: x.Rows()})
	return out, err
}

// ForwardPartition implements Algorithm 1: it computes the layer output
// partition T_p(x) for the position range r, choosing the self-attention
// computation order by Theorem 2, and returns the order used.
func (l *Layer) ForwardPartition(x *tensor.Matrix, r partition.Range) (*tensor.Matrix, flopcount.Order, error) {
	if r.From < 0 || r.To > x.Rows() || r.From > r.To {
		return nil, 0, fmt.Errorf("%w: partition %v of %d rows", tensor.ErrShape, r, x.Rows())
	}
	if r.Empty() {
		return tensor.New(0, x.Cols()), flopcount.OrderNaive, nil
	}
	xp, err := x.RowSlice(r.From, r.To)
	if err != nil {
		return nil, 0, err
	}

	// Line 3 of Algorithm 1: the Theorem 2 test. All heads share the same
	// shape so one selection covers every head.
	shape := flopcount.Shape{N: x.Rows(), P: r.Len(), F: l.Attn.F(), FH: l.Attn.FH()}
	order := flopcount.SelectOrder(shape)

	// Lines 2–9: per-head attention in the selected order, concatenated
	// and projected by WO.
	attnOut, err := l.Attn.ForwardWithOptions(x, xp, attention.Options{
		Order: order, Causal: l.Causal, RowOffset: r.From,
	})
	if err != nil {
		return nil, 0, err
	}

	// Line 10: Y ← LayerNorm(R + x_p).
	if err := tensor.AddInPlace(attnOut, xp); err != nil {
		return nil, 0, err
	}
	y, err := tensor.LayerNorm(attnOut, l.LN1Gain, l.LN1Bias, l.Eps)
	if err != nil {
		return nil, 0, err
	}

	// Line 11: T_p(x) ← LayerNorm(Y + FFN(Y)).
	f, err := l.ffn(y)
	if err != nil {
		return nil, 0, err
	}
	if err := tensor.AddInPlace(f, y); err != nil {
		return nil, 0, err
	}
	out, err := tensor.LayerNorm(f, l.LN2Gain, l.LN2Bias, l.Eps)
	if err != nil {
		return nil, 0, err
	}
	return out, order, nil
}

// ForwardPartitionFixedOrder is ForwardPartition with the attention
// computation order forced (used by the naive-partition baseline in the
// Fig. 6 experiment and by ablations).
func (l *Layer) ForwardPartitionFixedOrder(x *tensor.Matrix, r partition.Range, order flopcount.Order) (*tensor.Matrix, error) {
	if r.From < 0 || r.To > x.Rows() || r.From > r.To {
		return nil, fmt.Errorf("%w: partition %v of %d rows", tensor.ErrShape, r, x.Rows())
	}
	if r.Empty() {
		return tensor.New(0, x.Cols()), nil
	}
	xp, err := x.RowSlice(r.From, r.To)
	if err != nil {
		return nil, err
	}
	attnOut, err := l.Attn.ForwardWithOptions(x, xp, attention.Options{
		Order: order, Causal: l.Causal, RowOffset: r.From,
	})
	if err != nil {
		return nil, err
	}
	if err := tensor.AddInPlace(attnOut, xp); err != nil {
		return nil, err
	}
	y, err := tensor.LayerNorm(attnOut, l.LN1Gain, l.LN1Bias, l.Eps)
	if err != nil {
		return nil, err
	}
	f, err := l.ffn(y)
	if err != nil {
		return nil, err
	}
	if err := tensor.AddInPlace(f, y); err != nil {
		return nil, err
	}
	return tensor.LayerNorm(f, l.LN2Gain, l.LN2Bias, l.Eps)
}

// Cost returns the analytic Γ of computing a partition of length p of this
// layer for input length n under Algorithm 1's selected order.
func (l *Layer) Cost(n, p int) (int64, error) {
	shape := flopcount.Shape{N: n, P: p, F: l.Attn.F(), FH: l.Attn.FH()}
	return flopcount.LayerCost(shape, l.Attn.H(), l.W1.Cols(), flopcount.SelectOrder(shape))
}
