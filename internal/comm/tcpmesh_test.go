package comm

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"voltage/internal/netem"
)

// freeAddrs reserves n loopback ports and returns their addresses.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		_ = l.Close()
	}
	return addrs
}

func TestNewTCPMeshValidation(t *testing.T) {
	if _, err := NewTCPMesh(context.Background(), 0, nil, netem.Unlimited); err == nil {
		t.Fatal("want error for empty addrs")
	}
	if _, err := NewTCPMesh(context.Background(), 3, []string{"a", "b"}, netem.Unlimited); err == nil {
		t.Fatal("want error for rank OOB")
	}
}

func TestNewTCPMeshSinglePeer(t *testing.T) {
	p, err := NewTCPMesh(context.Background(), 0, []string{"127.0.0.1:0"}, netem.Unlimited)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Size() != 1 {
		t.Fatal("size")
	}
}

func TestNewTCPMeshCrossGoroutine(t *testing.T) {
	// Emulate 3 processes joining the mesh concurrently (with rank 2
	// starting late to exercise dial retry).
	addrs := freeAddrs(t, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	peers := make([]*TCPPeer, 3)
	errs := make([]error, 3)
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			if r == 2 {
				time.Sleep(100 * time.Millisecond)
			}
			peers[r], errs[r] = NewTCPMesh(ctx, r, addrs, netem.Unlimited)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	defer func() {
		for _, p := range peers {
			_ = p.Close()
		}
	}()
	// Exercise a collective over the assembled mesh.
	results := make(chan error, 3)
	for r := 0; r < 3; r++ {
		go func(r int) {
			out, err := AllGather(ctx, peers[r], []byte{byte(r + 10)})
			if err == nil {
				for i, b := range out {
					if b[0] != byte(i+10) {
						err = fmt.Errorf("rank %d: out[%d] = %d", r, i, b[0])
						break
					}
				}
			}
			results <- err
		}(r)
	}
	for i := 0; i < 3; i++ {
		if err := <-results; err != nil {
			t.Fatal(err)
		}
	}
}

func TestNewTCPMeshDialTimeout(t *testing.T) {
	// Rank 1 dials rank 0 which never listens: must give up at ctx expiry.
	addrs := freeAddrs(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := NewTCPMesh(ctx, 1, addrs, netem.Unlimited)
	if err == nil {
		t.Fatal("want error when peer never appears")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("dial retry did not honor context deadline")
	}
}
