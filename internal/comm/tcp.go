package comm

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"voltage/internal/netem"
)

// TCPPeer is a peer whose links are real TCP connections, one per remote
// rank, with length-prefixed frames. Optional egress shaping emulates a
// bandwidth-capped NIC even on loopback.
//
// Frame format: uint32 little-endian payload length, then the payload.
type TCPPeer struct {
	rank    int
	size    int
	conns   []net.Conn // conns[r] for r != rank
	egress  *netem.NIC
	latency time.Duration

	sendMu []sync.Mutex // per-destination write locks
	recvMu []sync.Mutex // per-source read locks

	closeOnce sync.Once
	done      chan struct{}
	stats     counters
}

var _ Peer = (*TCPPeer)(nil)

// maxFrame bounds a frame payload to protect against corrupt length
// prefixes (1 GiB).
const maxFrame = 1 << 30

// Transient-send retry policy, mirroring dialRetry's backoff: a send that
// fails before any frame byte reaches the wire is retried with exponential
// backoff; once part of the frame is out, retrying would corrupt the
// stream, so the error is final.
const (
	sendRetries      = 3
	sendBackoffStart = 50 * time.Millisecond
	sendBackoffMax   = 2 * time.Second
)

// transientNetErr reports whether a send failure is worth retrying on the
// same connection: transport-level timeouts while the caller's context is
// still live. Stream-breaking errors (resets, closed pipes) are final.
func transientNetErr(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// Rank implements Peer.
func (p *TCPPeer) Rank() int { return p.rank }

// Size implements Peer.
func (p *TCPPeer) Size() int { return p.size }

// Send implements Peer.
func (p *TCPPeer) Send(ctx context.Context, to int, data []byte) error {
	if to < 0 || to >= p.size || to == p.rank {
		return fmt.Errorf("comm: send to invalid rank %d from %d", to, p.rank)
	}
	select {
	case <-p.done:
		return ErrClosed
	default:
	}
	if p.egress != nil {
		end := p.egress.Reserve(time.Now(), len(data))
		if err := netem.SleepUntil(ctx, end); err != nil {
			return err
		}
	}
	backoff := sendBackoffStart
	for attempt := 0; ; attempt++ {
		wrote, err := p.writeFrame(ctx, to, data)
		if err == nil {
			p.stats.sent(len(data))
			return nil
		}
		if wrote || attempt >= sendRetries-1 || ctx.Err() != nil || !transientNetErr(err) {
			return err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-p.done:
			return ErrClosed
		case <-time.After(backoff):
		}
		if backoff < sendBackoffMax {
			backoff *= 2
		}
	}
}

// writeFrame writes one length-prefixed frame to rank `to`, reporting
// whether any bytes reached the connection (after which a retry is unsafe).
func (p *TCPPeer) writeFrame(ctx context.Context, to int, data []byte) (wrote bool, err error) {
	p.sendMu[to].Lock()
	defer p.sendMu[to].Unlock()
	conn := p.conns[to]
	if dl, ok := ctx.Deadline(); ok {
		_ = conn.SetWriteDeadline(dl)
		defer conn.SetWriteDeadline(time.Time{})
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(data)))
	if n, err := conn.Write(hdr[:]); err != nil {
		return n > 0, fmt.Errorf("comm: write header to %d: %w", to, err)
	}
	if _, err := conn.Write(data); err != nil {
		return true, fmt.Errorf("comm: write body to %d: %w", to, err)
	}
	return true, nil
}

// Recv implements Peer.
func (p *TCPPeer) Recv(ctx context.Context, from int) ([]byte, error) {
	if from < 0 || from >= p.size || from == p.rank {
		return nil, fmt.Errorf("comm: recv from invalid rank %d at %d", from, p.rank)
	}
	select {
	case <-p.done:
		return nil, ErrClosed
	default:
	}
	p.recvMu[from].Lock()
	defer p.recvMu[from].Unlock()
	conn := p.conns[from]
	if dl, ok := ctx.Deadline(); ok {
		_ = conn.SetReadDeadline(dl)
		defer conn.SetReadDeadline(time.Time{})
	}
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return nil, fmt.Errorf("comm: read header from %d: %w", from, err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("comm: frame from %d too large: %d bytes", from, n)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(conn, data); err != nil {
		return nil, fmt.Errorf("comm: read body from %d: %w", from, err)
	}
	if p.latency > 0 {
		if err := netem.SleepUntil(ctx, time.Now().Add(p.latency)); err != nil {
			return nil, err
		}
	}
	p.stats.received(len(data))
	return data, nil
}

// Stats implements Peer.
func (p *TCPPeer) Stats() Stats { return p.stats.snapshot() }

// Close implements Peer, closing every connection.
func (p *TCPPeer) Close() error {
	var err error
	p.closeOnce.Do(func() {
		close(p.done)
		for _, c := range p.conns {
			if c != nil {
				if cerr := c.Close(); cerr != nil && err == nil {
					err = cerr
				}
			}
		}
	})
	return err
}

// NewLocalTCPMesh builds a fully connected group of k TCP peers over
// loopback, with optional egress shaping per the profile. It is used by
// integration tests and by single-host multi-process experiments.
func NewLocalTCPMesh(ctx context.Context, k int, profile netem.Profile) ([]*TCPPeer, error) {
	if k < 1 {
		return nil, fmt.Errorf("comm: mesh size %d < 1", k)
	}
	listeners := make([]net.Listener, k)
	addrs := make([]string, k)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			closeAll(listeners)
			return nil, fmt.Errorf("comm: listen: %w", err)
		}
		listeners[i] = l
		addrs[i] = l.Addr().String()
	}
	peers := make([]*TCPPeer, k)
	for i := range peers {
		peers[i] = newTCPPeer(i, k, profile)
	}

	var wg sync.WaitGroup
	errs := make(chan error, k*k)
	// Accept side: rank i accepts connections from every higher rank; the
	// dialer introduces itself with a 4-byte rank header.
	for i := 0; i < k; i++ {
		expected := k - 1 - i
		wg.Add(1)
		go func(i, expected int) {
			defer wg.Done()
			for c := 0; c < expected; c++ {
				conn, err := listeners[i].Accept()
				if err != nil {
					errs <- fmt.Errorf("comm: accept at %d: %w", i, err)
					return
				}
				var hdr [4]byte
				if _, err := io.ReadFull(conn, hdr[:]); err != nil {
					errs <- fmt.Errorf("comm: handshake at %d: %w", i, err)
					return
				}
				from := int(binary.LittleEndian.Uint32(hdr[:]))
				if from <= i || from >= k {
					errs <- fmt.Errorf("comm: bad handshake rank %d at %d", from, i)
					return
				}
				peers[i].conns[from] = conn
			}
		}(i, expected)
	}
	// Dial side: rank j dials every lower rank.
	for j := 1; j < k; j++ {
		for i := 0; i < j; i++ {
			wg.Add(1)
			go func(i, j int) {
				defer wg.Done()
				var d net.Dialer
				conn, err := d.DialContext(ctx, "tcp", addrs[i])
				if err != nil {
					errs <- fmt.Errorf("comm: dial %d→%d: %w", j, i, err)
					return
				}
				var hdr [4]byte
				binary.LittleEndian.PutUint32(hdr[:], uint32(j))
				if _, err := conn.Write(hdr[:]); err != nil {
					errs <- fmt.Errorf("comm: handshake %d→%d: %w", j, i, err)
					return
				}
				peers[j].conns[i] = conn
			}(i, j)
		}
	}
	wg.Wait()
	closeAll(listeners)
	select {
	case err := <-errs:
		for _, p := range peers {
			_ = p.Close()
		}
		return nil, err
	default:
	}
	return peers, nil
}

func newTCPPeer(rank, size int, profile netem.Profile) *TCPPeer {
	p := &TCPPeer{
		rank:    rank,
		size:    size,
		conns:   make([]net.Conn, size),
		sendMu:  make([]sync.Mutex, size),
		recvMu:  make([]sync.Mutex, size),
		latency: profile.Latency,
		done:    make(chan struct{}),
	}
	if profile.Rate() > 0 {
		p.egress = netem.NewNIC(profile.Rate())
	}
	return p
}

func closeAll(ls []net.Listener) {
	for _, l := range ls {
		if l != nil {
			_ = l.Close()
		}
	}
}
