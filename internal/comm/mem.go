package comm

import (
	"context"
	"fmt"
	"sync"
	"time"

	"voltage/internal/netem"
)

// memMessage carries a payload plus the emulated time at which the last
// byte clears the network.
type memMessage struct {
	data    []byte
	readyAt time.Time
}

// MemPeer is an in-process peer connected to its group through Go channels,
// with netem-emulated bandwidth and latency. It is the transport used by
// the experiment harness: one goroutine per emulated device, real wall
// clock, shaped links.
type MemPeer struct {
	rank      int
	links     [][]chan memMessage // links[from][to]
	nics      []*netem.NIC        // one per rank
	lat       time.Duration
	done      chan struct{}
	closeOnce *sync.Once // shared across the mesh
	stats     counters
}

var _ Peer = (*MemPeer)(nil)

// memLinkDepth bounds in-flight messages per directed link. All protocols
// in this repository alternate send/recv per layer, so a shallow queue
// suffices; the depth only has to exceed the collectives' fan-out.
const memLinkDepth = 64

// NewMemMesh builds a fully connected in-memory group of k peers whose
// traffic is shaped by the given network profile. Closing any peer shuts
// down the whole mesh.
func NewMemMesh(k int, profile netem.Profile) ([]*MemPeer, error) {
	if k < 1 {
		return nil, fmt.Errorf("comm: mesh size %d < 1", k)
	}
	links := make([][]chan memMessage, k)
	for i := range links {
		links[i] = make([]chan memMessage, k)
		for j := range links[i] {
			if i != j {
				links[i][j] = make(chan memMessage, memLinkDepth)
			}
		}
	}
	nics := make([]*netem.NIC, k)
	for i := range nics {
		nics[i] = netem.NewNIC(profile.Rate())
	}
	done := make(chan struct{})
	var once sync.Once
	peers := make([]*MemPeer, k)
	for i := range peers {
		peers[i] = &MemPeer{
			rank:      i,
			links:     links,
			nics:      nics,
			lat:       profile.Latency,
			done:      done,
			closeOnce: &once,
		}
	}
	return peers, nil
}

// Rank implements Peer.
func (p *MemPeer) Rank() int { return p.rank }

// Size implements Peer.
func (p *MemPeer) Size() int { return len(p.nics) }

// Send implements Peer. The emulated transfer reserves the sender's egress
// and the receiver's ingress; Send itself returns as soon as the message is
// queued (the NIC reservation, not the caller, carries the delay).
//
// The payload is copied into a pooled buffer, so the caller keeps ownership
// of data (per the Peer contract) and the receiver gets an exclusively
// owned slice it may ReleaseBuffer.
func (p *MemPeer) Send(ctx context.Context, to int, data []byte) error {
	if to < 0 || to >= p.Size() || to == p.rank {
		return fmt.Errorf("comm: send to invalid rank %d from %d", to, p.rank)
	}
	end := netem.Transfer(time.Now(), p.nics[p.rank], p.nics[to], len(data))
	buf := GetBuffer(len(data))
	copy(buf, data)
	msg := memMessage{data: buf, readyAt: end.Add(p.lat)}
	select {
	case p.links[p.rank][to] <- msg:
		p.stats.sent(len(data))
		return nil
	case <-p.done:
		ReleaseBuffer(buf)
		return ErrClosed
	case <-ctx.Done():
		ReleaseBuffer(buf)
		return ctx.Err()
	}
}

// Recv implements Peer, blocking until the emulated arrival time of the
// next message from the given rank.
func (p *MemPeer) Recv(ctx context.Context, from int) ([]byte, error) {
	if from < 0 || from >= p.Size() || from == p.rank {
		return nil, fmt.Errorf("comm: recv from invalid rank %d at %d", from, p.rank)
	}
	select {
	case msg := <-p.links[from][p.rank]:
		if err := netem.SleepUntil(ctx, msg.readyAt); err != nil {
			ReleaseBuffer(msg.data)
			return nil, err
		}
		p.stats.received(len(msg.data))
		return msg.data, nil
	case <-p.done:
		return nil, ErrClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Stats implements Peer.
func (p *MemPeer) Stats() Stats { return p.stats.snapshot() }

// Close implements Peer; it shuts down the entire mesh. Closing twice is
// safe.
func (p *MemPeer) Close() error {
	p.closeOnce.Do(func() { close(p.done) })
	return nil
}

// NIC exposes rank r's emulated interface so experiments can change
// bandwidth mid-run (the Fig. 5 sweep).
func (p *MemPeer) NIC(r int) *netem.NIC {
	return p.nics[r]
}

// Flush discards every message buffered on the mesh's links, releasing
// their pooled buffers, and implements the optional Flusher capability
// (always true: the in-memory links are flushable even when empty). It is
// the recovery hook for a protocol aborted mid-flight: a failed collective
// leaves undelivered messages queued on the FIFO links, which would
// misalign the next protocol's stream. The caller must guarantee no rank
// is concurrently sending or receiving (the cluster fences the mesh around
// fault-tolerant attempts before flushing).
func (p *MemPeer) Flush() bool {
	for _, row := range p.links {
		for _, ch := range row {
			if ch == nil {
				continue
			}
			for drained := false; !drained; {
				select {
				case msg := <-ch:
					ReleaseBuffer(msg.data)
				default:
					drained = true
				}
			}
		}
	}
	return true
}

// Queued reports the number of undelivered messages buffered across every
// link of the mesh — the residue Flush would discard. Like Flush, it is
// only meaningful while no rank is mid-operation.
func (p *MemPeer) Queued() int {
	n := 0
	for _, row := range p.links {
		for _, ch := range row {
			if ch != nil {
				n += len(ch)
			}
		}
	}
	return n
}

var _ Flusher = (*MemPeer)(nil)
