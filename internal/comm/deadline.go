package comm

import (
	"context"
	"fmt"
	"time"
)

// TimeoutPeer is the transport-level watchdog: every Send and Recv runs
// under its own deadline, so a silently dropped message (a lossy link with
// no transport recovery) or a stalled device resolves as a typed ErrTimeout
// instead of a permanent hang. Collectives built on a TimeoutPeer inherit
// the bound step by step — each exchange of an All-Gather or ring
// All-Reduce is individually watched.
//
// The deadline applies per operation, not per request; callers that need an
// end-to-end budget combine this with a request context deadline (the
// cluster's Options.RequestTimeout).
type TimeoutPeer struct {
	base Peer
	d    time.Duration
	taps []FaultTap
}

var _ Peer = (*TimeoutPeer)(nil)
var _ Flusher = (*TimeoutPeer)(nil)

// WithOpTimeout bounds every operation on base at d. A non-positive d
// returns base unchanged. Optional taps observe every watchdog expiry
// (blaming the remote rank); nil taps are skipped.
func WithOpTimeout(base Peer, d time.Duration, taps ...FaultTap) Peer {
	if d <= 0 {
		return base
	}
	return &TimeoutPeer{base: base, d: d, taps: nonNilTaps(taps)}
}

// Rank implements Peer.
func (p *TimeoutPeer) Rank() int { return p.base.Rank() }

// Size implements Peer.
func (p *TimeoutPeer) Size() int { return p.base.Size() }

// Send implements Peer under the per-op deadline. A timeout blames the
// destination rank (conservatively — the local egress may equally be at
// fault, but the destination is the link the caller should avoid).
func (p *TimeoutPeer) Send(ctx context.Context, to int, data []byte) error {
	opCtx, cancel := context.WithTimeout(ctx, p.d)
	defer cancel()
	err := p.base.Send(opCtx, to, data)
	return p.mapErr(ctx, opCtx, err, to, "send to")
}

// Recv implements Peer under the per-op deadline. A timeout blames the
// source rank: the expected message never arrived.
func (p *TimeoutPeer) Recv(ctx context.Context, from int) ([]byte, error) {
	opCtx, cancel := context.WithTimeout(ctx, p.d)
	defer cancel()
	blob, err := p.base.Recv(opCtx, from)
	if err != nil {
		return nil, p.mapErr(ctx, opCtx, err, from, "recv from")
	}
	return blob, nil
}

// mapErr converts a failure caused by the op's own timer — rather than the
// caller's context — into an attributed ErrTimeout. The inner error is
// matched loosely (TCP reports deadline expiry as a net timeout, the
// in-memory mesh as opCtx.Err()), so expiry of the op timer is the signal.
func (p *TimeoutPeer) mapErr(ctx, opCtx context.Context, err error, rank int, op string) error {
	if err == nil {
		return nil
	}
	if opCtx.Err() == context.DeadlineExceeded && ctx.Err() == nil {
		for _, tap := range p.taps {
			tap(FaultTimeout, rank)
		}
		return &RemoteError{Rank: rank, Err: fmt.Errorf("%w: %s %d after %v", ErrTimeout, op, rank, p.d)}
	}
	return err
}

// Flush delegates the optional Flusher capability to the wrapped peer, so
// fencing through a watchdog-wrapped peer reaches the mesh's buffered
// links.
func (p *TimeoutPeer) Flush() bool { return TryFlush(p.base) }

// Stats implements Peer, delegating to the wrapped transport.
func (p *TimeoutPeer) Stats() Stats { return p.base.Stats() }

// Close implements Peer.
func (p *TimeoutPeer) Close() error { return p.base.Close() }
