package comm

import (
	"context"
	"errors"
	"testing"
	"time"

	"voltage/internal/netem"
)

func TestOpTimeoutDisabled(t *testing.T) {
	peers := memPair(t, 2, netem.Unlimited)
	if p := WithOpTimeout(peers[0], 0); p != Peer(peers[0]) {
		t.Fatal("zero timeout should return the base peer unchanged")
	}
	if p := WithOpTimeout(peers[0], -time.Second); p != Peer(peers[0]) {
		t.Fatal("negative timeout should return the base peer unchanged")
	}
}

func TestOpTimeoutDropResolvesAsErrTimeout(t *testing.T) {
	// A message that never arrives (dropped upstream) must resolve as a
	// typed ErrTimeout blaming the silent source, not hang.
	peers := memPair(t, 2, netem.Unlimited)
	receiver := WithOpTimeout(peers[1], 30*time.Millisecond)
	start := time.Now()
	_, err := receiver.Recv(context.Background(), 0)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if r, ok := RemoteRank(err); !ok || r != 0 {
		t.Fatalf("timeout should blame source rank 0, got (%d, %v)", r, ok)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline took %v to fire", elapsed)
	}
}

func TestOpTimeoutPassesCleanTraffic(t *testing.T) {
	peers := memPair(t, 2, netem.Unlimited)
	a := WithOpTimeout(peers[0], time.Second)
	b := WithOpTimeout(peers[1], time.Second)
	ctx := context.Background()
	go func() { _ = a.Send(ctx, 1, []byte("on time")) }()
	got, err := b.Recv(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "on time" {
		t.Fatalf("got %q", got)
	}
	if a.Stats().BytesSent != int64(len("on time")) {
		t.Fatal("stats not delegated through the watchdog")
	}
}

func TestOpTimeoutDoesNotMaskCallerCancel(t *testing.T) {
	// A failure caused by the caller's own context must come back as that
	// context's error, never as an attributed ErrTimeout.
	peers := memPair(t, 2, netem.Unlimited)
	receiver := WithOpTimeout(peers[1], time.Minute)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	_, err := receiver.Recv(ctx, 0)
	if errors.Is(err, ErrTimeout) {
		t.Fatalf("caller cancellation misreported as ErrTimeout: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestOpTimeoutOverFlakyDelay(t *testing.T) {
	// Late delivery within the deadline passes; beyond it, times out.
	peers := memPair(t, 2, netem.Unlimited)
	flaky := &FlakyPeer{Inner: peers[1], DelayEvery: 1, Delay: 5 * time.Millisecond}
	receiver := WithOpTimeout(flaky, 500*time.Millisecond)
	ctx := context.Background()
	go func() { _ = peers[0].Send(ctx, 1, []byte("late")) }()
	if _, err := receiver.Recv(ctx, 0); err != nil {
		t.Fatalf("delay within deadline should deliver: %v", err)
	}

	slow := &FlakyPeer{Inner: peers[1], DelayEvery: 1, Delay: time.Minute}
	strict := WithOpTimeout(slow, 20*time.Millisecond)
	go func() { _ = peers[0].Send(ctx, 1, []byte("too late")) }()
	if _, err := strict.Recv(ctx, 0); !errors.Is(err, ErrTimeout) {
		t.Fatalf("delay past deadline: want ErrTimeout, got %v", err)
	}
}
