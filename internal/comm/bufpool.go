package comm

import (
	"math/bits"
	"sync"
)

// Message-buffer recycling for the in-memory transport. Steady-state serving
// moves the same-sized activation blobs every layer of every request, so the
// mesh draws payload copies from size-classed pools instead of allocating.
//
// Ownership protocol: MemPeer.Send copies the caller's payload into a pooled
// buffer; Recv hands that buffer to the receiver, which then owns it
// exclusively and MAY return it with ReleaseBuffer once the payload has been
// decoded. Releasing is optional — a buffer that is never released is simply
// garbage collected.

// maxBufClass bounds the pooled size classes at 2^30 bytes; larger buffers
// bypass the pool.
const maxBufClass = 30

var bufPools [maxBufClass + 1]sync.Pool

// GetBuffer returns a length-n byte slice with unspecified contents, drawn
// from the pool when a large-enough buffer is available.
func GetBuffer(n int) []byte {
	if n <= 0 {
		return []byte{}
	}
	// Smallest class c with 1<<c >= n; every buffer stored in class c has
	// capacity >= 1<<c, so any hit can hold n bytes.
	c := bits.Len(uint(n - 1))
	if c > maxBufClass {
		return make([]byte, n)
	}
	if v := bufPools[c].Get(); v != nil {
		return (*v.(*[]byte))[:n]
	}
	return make([]byte, n, 1<<c)
}

// ReleaseBuffer recycles b's storage. The caller must not use b (or any
// alias of its backing array) afterwards.
func ReleaseBuffer(b []byte) {
	if cap(b) == 0 {
		return
	}
	// Largest class c with 1<<c <= cap(b), preserving the invariant that
	// class c only holds buffers of capacity >= 1<<c.
	c := bits.Len(uint(cap(b))) - 1
	if c > maxBufClass {
		return
	}
	b = b[:cap(b)]
	bufPools[c].Put(&b)
}
