package comm

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"voltage/internal/tensor"
)

// This file implements the collectives used by the two inference
// strategies:
//
//   - AllGather: Voltage's between-layer synchronization. Per-device
//     traffic: each device sends its NF/K-row partition to K−1 peers and
//     receives K−1 partitions — (K−1)·N·F/K values each way, the paper's
//     "(K−1)NF/K per layer".
//   - AllReduceSum: tensor parallelism's head/FFN merge. The ring variant
//     moves 2·(K−1)·N·F/K values per device per call; two calls per layer
//     give the paper's 4(K−1)NF/K.
//
// All collectives are SPMD: every rank must call the same operation in the
// same order with compatible arguments.
//
// Deadlines: collectives inherit per-step watchdog deadlines from a
// WithOpTimeout-wrapped peer — every individual exchange of an All-Gather
// or ring All-Reduce is then bounded, so one dropped message resolves as an
// attributed ErrTimeout instead of hanging the whole collective. When a
// collective fails on several links at once (one dead rank cancels the
// request, which aborts the healthy links too), the error returned is the
// most diagnostic one: rank-attributed failures beat plain transport
// errors, which beat secondary context cancellations.

// firstError selects the most diagnostic error from a collective's
// per-link results: RemoteError (names the culprit rank) over other
// non-context errors over context cancellations.
func firstError(errs []error) error {
	var fallback, plain error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if _, ok := RemoteRank(err); ok {
			return err
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if fallback == nil {
				fallback = err
			}
			continue
		}
		if plain == nil {
			plain = err
		}
	}
	if plain != nil {
		return plain
	}
	return fallback
}

// Broadcast sends root's blob to every peer; non-root ranks receive and
// return it. Root returns its own data unchanged.
func Broadcast(ctx context.Context, p Peer, root int, data []byte) ([]byte, error) {
	if root < 0 || root >= p.Size() {
		return nil, fmt.Errorf("comm: broadcast root %d of %d", root, p.Size())
	}
	if p.Rank() == root {
		if err := sendToAll(ctx, p, data); err != nil {
			return nil, err
		}
		return data, nil
	}
	return p.Recv(ctx, root)
}

// Gather collects every rank's blob at root. Root receives all blobs
// (result[i] = rank i's contribution, result[root] = own data); other
// ranks send and return nil.
func Gather(ctx context.Context, p Peer, root int, data []byte) ([][]byte, error) {
	if root < 0 || root >= p.Size() {
		return nil, fmt.Errorf("comm: gather root %d of %d", root, p.Size())
	}
	if p.Rank() != root {
		return nil, p.Send(ctx, root, data)
	}
	out := make([][]byte, p.Size())
	out[root] = data
	var wg sync.WaitGroup
	errs := make([]error, p.Size())
	for r := 0; r < p.Size(); r++ {
		if r == root {
			continue
		}
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			blob, err := p.Recv(ctx, r)
			if err != nil {
				errs[r] = err
				return
			}
			out[r] = blob
		}(r)
	}
	wg.Wait()
	if err := firstError(errs); err != nil {
		return nil, err
	}
	return out, nil
}

// AllGather exchanges blobs so every rank ends with result[i] = rank i's
// contribution. This is the naive (direct-exchange) algorithm: each rank
// sends its blob to the K−1 others.
func AllGather(ctx context.Context, p Peer, data []byte) ([][]byte, error) {
	out := make([][]byte, p.Size())
	out[p.Rank()] = data
	var wg sync.WaitGroup
	errs := make([]error, 2*p.Size())
	for r := 0; r < p.Size(); r++ {
		if r == p.Rank() {
			continue
		}
		wg.Add(2)
		go func(r int) {
			defer wg.Done()
			errs[r] = p.Send(ctx, r, data)
		}(r)
		go func(r int) {
			defer wg.Done()
			blob, err := p.Recv(ctx, r)
			if err != nil {
				errs[p.Size()+r] = err
				return
			}
			out[r] = blob
		}(r)
	}
	wg.Wait()
	if err := firstError(errs); err != nil {
		return nil, err
	}
	return out, nil
}

// RingAllGather is the bandwidth-optimal ring variant: K−1 steps, each
// forwarding one blob to the next rank. Per-device traffic equals the
// naive variant ((K−1) blobs each way) but transfers pipeline around the
// ring instead of fanning out.
func RingAllGather(ctx context.Context, p Peer, data []byte) ([][]byte, error) {
	k := p.Size()
	out := make([][]byte, k)
	out[p.Rank()] = data
	if k == 1 {
		return out, nil
	}
	next := (p.Rank() + 1) % k
	prev := (p.Rank() - 1 + k) % k
	carry := data
	carrySrc := p.Rank()
	for step := 0; step < k-1; step++ {
		var wg sync.WaitGroup
		var sendErr, recvErr error
		var incoming []byte
		wg.Add(2)
		go func(blob []byte) {
			defer wg.Done()
			sendErr = p.Send(ctx, next, blob)
		}(carry)
		go func() {
			defer wg.Done()
			incoming, recvErr = p.Recv(ctx, prev)
		}()
		wg.Wait()
		if err := firstError([]error{sendErr, recvErr}); err != nil {
			return nil, err
		}
		carrySrc = (carrySrc - 1 + k) % k
		out[carrySrc] = incoming
		carry = incoming
	}
	return out, nil
}

// AllReduceSum sums the peers' matrices element-wise, leaving every rank
// with the total. The naive algorithm all-gathers full matrices and
// reduces locally: per-device traffic (K−1)·N·F each way — the overhead
// that makes tensor parallelism impractical at the edge.
func AllReduceSum(ctx context.Context, p Peer, m *tensor.Matrix) (*tensor.Matrix, error) {
	blobs, err := AllGather(ctx, p, tensor.Encode(nil, m))
	if err != nil {
		return nil, err
	}
	sum := m.Clone()
	for r, blob := range blobs {
		if r == p.Rank() {
			continue
		}
		other, _, err := tensor.Decode(blob)
		if err != nil {
			return nil, fmt.Errorf("comm: allreduce decode from %d: %w", r, err)
		}
		if err := tensor.AddInPlace(sum, other); err != nil {
			return nil, fmt.Errorf("comm: allreduce from %d: %w", r, err)
		}
	}
	return sum, nil
}

// RingAllReduceSum is the bandwidth-optimal ring all-reduce
// (reduce-scatter followed by all-gather): per-device traffic
// 2·(K−1)·N·F/K values each way, the figure the paper cites from
// Megatron-LM. The matrix is chunked along its flat backing array.
func RingAllReduceSum(ctx context.Context, p Peer, m *tensor.Matrix) (*tensor.Matrix, error) {
	k := p.Size()
	out := m.Clone()
	if k == 1 {
		return out, nil
	}
	data := out.Data()
	bounds := chunkBounds(len(data), k)
	next := (p.Rank() + 1) % k
	prev := (p.Rank() - 1 + k) % k

	// Phase 1: reduce-scatter. After step s, rank r holds the partial sum
	// of chunk (r−s) accumulated over s+1 ranks.
	for step := 0; step < k-1; step++ {
		sendChunk := (p.Rank() - step + k) % k
		recvChunk := (p.Rank() - step - 1 + k) % k
		incoming, err := exchangeChunk(ctx, p, next, prev, data, bounds, sendChunk)
		if err != nil {
			return nil, err
		}
		lo, hi := bounds[recvChunk], bounds[recvChunk+1]
		if len(incoming) != (hi-lo)*4 {
			return nil, fmt.Errorf("comm: ring allreduce chunk size %d, want %d", len(incoming), (hi-lo)*4)
		}
		addFloatBytes(data[lo:hi], incoming)
	}
	// Phase 2: all-gather the reduced chunks around the ring.
	for step := 0; step < k-1; step++ {
		sendChunk := (p.Rank() + 1 - step + k) % k
		recvChunk := (p.Rank() - step + k) % k
		incoming, err := exchangeChunk(ctx, p, next, prev, data, bounds, sendChunk)
		if err != nil {
			return nil, err
		}
		lo, hi := bounds[recvChunk], bounds[recvChunk+1]
		if len(incoming) != (hi-lo)*4 {
			return nil, fmt.Errorf("comm: ring allgather chunk size %d, want %d", len(incoming), (hi-lo)*4)
		}
		copyFloatBytes(data[lo:hi], incoming)
	}
	return out, nil
}

// chunkBounds splits n elements into k nearly equal contiguous chunks,
// returning k+1 boundary indices.
func chunkBounds(n, k int) []int {
	bounds := make([]int, k+1)
	for i := 0; i <= k; i++ {
		bounds[i] = i * n / k
	}
	return bounds
}

// exchangeChunk concurrently sends data[bounds[c]:bounds[c+1]] to next and
// receives one chunk from prev.
func exchangeChunk(ctx context.Context, p Peer, next, prev int, data []float32, bounds []int, c int) ([]byte, error) {
	lo, hi := bounds[c], bounds[c+1]
	blob := floatsToBytes(data[lo:hi])
	var wg sync.WaitGroup
	var sendErr, recvErr error
	var incoming []byte
	wg.Add(2)
	go func() {
		defer wg.Done()
		sendErr = p.Send(ctx, next, blob)
	}()
	go func() {
		defer wg.Done()
		incoming, recvErr = p.Recv(ctx, prev)
	}()
	wg.Wait()
	if err := firstError([]error{sendErr, recvErr}); err != nil {
		return nil, err
	}
	return incoming, nil
}

func sendToAll(ctx context.Context, p Peer, data []byte) error {
	var wg sync.WaitGroup
	errs := make([]error, p.Size())
	for r := 0; r < p.Size(); r++ {
		if r == p.Rank() {
			continue
		}
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = p.Send(ctx, r, data)
		}(r)
	}
	wg.Wait()
	return firstError(errs)
}
