package comm

import (
	"context"
	"testing"
	"time"

	"voltage/internal/netem"
)

func memPair(t testing.TB, k int, profile netem.Profile) []*MemPeer {
	t.Helper()
	peers, err := NewMemMesh(k, profile)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = peers[0].Close() })
	return peers
}

func TestMemMeshValidation(t *testing.T) {
	if _, err := NewMemMesh(0, netem.Unlimited); err == nil {
		t.Fatal("want error for k=0")
	}
}

func TestMemSendRecv(t *testing.T) {
	peers := memPair(t, 2, netem.Unlimited)
	ctx := context.Background()
	go func() {
		_ = peers[0].Send(ctx, 1, []byte("hello"))
	}()
	got, err := peers[1].Recv(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
	if peers[0].Rank() != 0 || peers[0].Size() != 2 {
		t.Fatal("rank/size broken")
	}
}

func TestMemInvalidRanks(t *testing.T) {
	peers := memPair(t, 2, netem.Unlimited)
	ctx := context.Background()
	if err := peers[0].Send(ctx, 0, nil); err == nil {
		t.Fatal("want error sending to self")
	}
	if err := peers[0].Send(ctx, 5, nil); err == nil {
		t.Fatal("want error sending to OOB rank")
	}
	if _, err := peers[0].Recv(ctx, 0); err == nil {
		t.Fatal("want error receiving from self")
	}
	if _, err := peers[0].Recv(ctx, -1); err == nil {
		t.Fatal("want error receiving from negative rank")
	}
}

func TestMemStats(t *testing.T) {
	peers := memPair(t, 2, netem.Unlimited)
	ctx := context.Background()
	payload := make([]byte, 1000)
	go func() { _ = peers[0].Send(ctx, 1, payload) }()
	if _, err := peers[1].Recv(ctx, 0); err != nil {
		t.Fatal(err)
	}
	s0, s1 := peers[0].Stats(), peers[1].Stats()
	if s0.BytesSent != 1000 || s0.MsgsSent != 1 {
		t.Fatalf("sender stats %+v", s0)
	}
	if s1.BytesRecv != 1000 || s1.MsgsRecv != 1 {
		t.Fatalf("receiver stats %+v", s1)
	}
	sum := s0.Add(s1)
	if sum.BytesSent != 1000 || sum.BytesRecv != 1000 {
		t.Fatalf("Add = %+v", sum)
	}
}

func TestMemBandwidthDelaysDelivery(t *testing.T) {
	// 1 MB at 80 Mbps (10 MB/s) should take ~100 ms.
	peers := memPair(t, 2, netem.Profile{BandwidthMbps: 80})
	ctx := context.Background()
	payload := make([]byte, 1<<20)
	start := time.Now()
	go func() { _ = peers[0].Send(ctx, 1, payload) }()
	if _, err := peers[1].Recv(ctx, 0); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 80*time.Millisecond {
		t.Fatalf("1MB at 80Mbps delivered in %v, want ≥~100ms", elapsed)
	}
	if elapsed > 500*time.Millisecond {
		t.Fatalf("delivery took %v, shaping too slow", elapsed)
	}
}

func TestMemLatencyApplied(t *testing.T) {
	peers := memPair(t, 2, netem.Profile{Latency: 50 * time.Millisecond})
	ctx := context.Background()
	start := time.Now()
	go func() { _ = peers[0].Send(ctx, 1, []byte("x")) }()
	if _, err := peers[1].Recv(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 45*time.Millisecond {
		t.Fatal("latency not applied")
	}
}

func TestMemRecvContextCancel(t *testing.T) {
	peers := memPair(t, 2, netem.Unlimited)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := peers[1].Recv(ctx, 0); err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestMemCloseUnblocks(t *testing.T) {
	peers := memPair(t, 2, netem.Unlimited)
	done := make(chan error, 1)
	go func() {
		_, err := peers[1].Recv(context.Background(), 0)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	_ = peers[0].Close()
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Recv not unblocked by Close")
	}
	// Operations after close fail fast.
	if err := peers[0].Send(context.Background(), 1, []byte("x")); err != ErrClosed {
		// Send may enqueue if the link has space, but done is closed so it
		// must not hang; accept ErrClosed or nil-after-enqueue.
		if err != nil {
			t.Fatalf("Send after close: %v", err)
		}
	}
	// Double close is safe.
	_ = peers[1].Close()
	_ = peers[1].Close()
}

func TestMemNICAccessor(t *testing.T) {
	peers := memPair(t, 2, netem.Profile{BandwidthMbps: 100})
	if peers[0].NIC(0).Rate() != netem.Mbps(100) {
		t.Fatal("NIC rate not set from profile")
	}
	peers[0].NIC(0).SetRate(netem.Mbps(200))
	if peers[1].NIC(0).Rate() != netem.Mbps(200) {
		t.Fatal("NICs not shared across peers")
	}
}

func TestMemMessagesOrderedPerLink(t *testing.T) {
	peers := memPair(t, 2, netem.Unlimited)
	ctx := context.Background()
	go func() {
		for i := byte(0); i < 10; i++ {
			_ = peers[0].Send(ctx, 1, []byte{i})
		}
	}()
	for i := byte(0); i < 10; i++ {
		got, err := peers[1].Recv(ctx, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != i {
			t.Fatalf("message %d arrived as %d", i, got[0])
		}
	}
}
