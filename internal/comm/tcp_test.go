package comm

import (
	"context"
	"fmt"
	"testing"
	"time"

	"voltage/internal/netem"
	"voltage/internal/tensor"
)

func tcpMesh(t testing.TB, k int, profile netem.Profile) []*TCPPeer {
	t.Helper()
	peers, err := NewLocalTCPMesh(context.Background(), k, profile)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, p := range peers {
			_ = p.Close()
		}
	})
	return peers
}

func TestTCPMeshValidation(t *testing.T) {
	if _, err := NewLocalTCPMesh(context.Background(), 0, netem.Unlimited); err == nil {
		t.Fatal("want error for k=0")
	}
}

func TestTCPSendRecv(t *testing.T) {
	peers := tcpMesh(t, 3, netem.Unlimited)
	ctx := context.Background()
	go func() {
		_ = peers[2].Send(ctx, 0, []byte("over tcp"))
	}()
	got, err := peers[0].Recv(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "over tcp" {
		t.Fatalf("got %q", got)
	}
	if peers[1].Rank() != 1 || peers[1].Size() != 3 {
		t.Fatal("rank/size broken")
	}
}

func TestTCPInvalidRanks(t *testing.T) {
	peers := tcpMesh(t, 2, netem.Unlimited)
	ctx := context.Background()
	if err := peers[0].Send(ctx, 0, nil); err == nil {
		t.Fatal("want error sending to self")
	}
	if _, err := peers[0].Recv(ctx, 7); err == nil {
		t.Fatal("want error receiving from OOB rank")
	}
}

func TestTCPCollectives(t *testing.T) {
	peers := tcpMesh(t, 3, netem.Unlimited)
	base := tensor.NewRNG(3).Normal(6, 6, 1)
	want := tensor.Scale(base, 6) // 1+2+3
	errs := make(chan error, 3)
	for _, p := range peers {
		go func(p Peer) {
			mine := tensor.Scale(base, float32(p.Rank()+1))
			got, err := RingAllReduceSum(context.Background(), p, mine)
			if err == nil && !got.AlmostEqual(want, 1e-3) {
				err = fmt.Errorf("rank %d wrong sum", p.Rank())
			}
			errs <- err
		}(p)
	}
	for i := 0; i < 3; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestTCPEgressShaping(t *testing.T) {
	// 1 MB at 160 Mbps (20 MB/s) ≈ 50 ms.
	peers := tcpMesh(t, 2, netem.Profile{BandwidthMbps: 160})
	ctx := context.Background()
	payload := make([]byte, 1<<20)
	start := time.Now()
	go func() { _ = peers[0].Send(ctx, 1, payload) }()
	if _, err := peers[1].Recv(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("shaped send finished in %v, want ≥~50ms", elapsed)
	}
}

func TestTCPStats(t *testing.T) {
	peers := tcpMesh(t, 2, netem.Unlimited)
	ctx := context.Background()
	go func() { _ = peers[0].Send(ctx, 1, make([]byte, 512)) }()
	if _, err := peers[1].Recv(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if s := peers[0].Stats(); s.BytesSent != 512 || s.MsgsSent != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestTCPCloseUnblocksRecv(t *testing.T) {
	peers := tcpMesh(t, 2, netem.Unlimited)
	done := make(chan error, 1)
	go func() {
		_, err := peers[1].Recv(context.Background(), 0)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	_ = peers[1].Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Recv returned nil after close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv not unblocked by Close")
	}
	if err := peers[1].Send(context.Background(), 0, []byte("x")); err == nil {
		t.Fatal("Send after close should fail")
	}
	_ = peers[1].Close() // double close safe
}

func TestTCPRecvDeadline(t *testing.T) {
	peers := tcpMesh(t, 2, netem.Unlimited)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := peers[0].Recv(ctx, 1); err == nil {
		t.Fatal("want timeout error")
	}
}

func TestTCPLargeMessage(t *testing.T) {
	peers := tcpMesh(t, 2, netem.Unlimited)
	ctx := context.Background()
	big := make([]byte, 4<<20)
	for i := range big {
		big[i] = byte(i)
	}
	go func() { _ = peers[0].Send(ctx, 1, big) }()
	got, err := peers[1].Recv(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(big) {
		t.Fatalf("got %d bytes", len(got))
	}
	for i := 0; i < len(big); i += 99991 {
		if got[i] != big[i] {
			t.Fatalf("corruption at %d", i)
		}
	}
}
