package comm

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"voltage/internal/netem"
)

// TestWrappedPeerStillFlushes pins the fencing bugfix: Flush must survive
// the full wrapper stack the cluster actually builds (fault injection →
// framing → stat scope → watchdog), not just the concrete *MemPeer. Before
// the Flusher interface, fencing flushed the raw mesh directly and any
// wrapper-level view of the transport was bypassed.
func TestWrappedPeerStillFlushes(t *testing.T) {
	mesh, err := NewMemMesh(2, netem.Profile{})
	if err != nil {
		t.Fatal(err)
	}
	defer mesh[0].Close()
	// The cluster's exact stack: WrapTransport → Framed → (per-request
	// Scoped) → watchdog.
	var wrapped Peer = &FlakyPeer{Inner: mesh[0]}
	wrapped = NewFramed(wrapped)
	wrapped = Scoped(wrapped)
	wrapped = WithOpTimeout(wrapped, time.Minute)

	// Queue residue the way an aborted protocol would: a sent frame nobody
	// received.
	if err := wrapped.Send(context.Background(), 1, []byte("residue")); err != nil {
		t.Fatal(err)
	}
	if got := mesh[0].Queued(); got != 1 {
		t.Fatalf("queued = %d, want 1 before flush", got)
	}
	if !TryFlush(wrapped) {
		t.Fatal("TryFlush through the wrapper stack must reach the mesh")
	}
	if got := mesh[0].Queued(); got != 0 {
		t.Fatalf("queued = %d, want 0 after flush through wrappers", got)
	}
}

// TestTryFlushNoopFallback pins the documented no-op: a peer stack with no
// Flusher anywhere reports false and flushes nothing.
func TestTryFlushNoopFallback(t *testing.T) {
	mesh, err := NewMemMesh(2, netem.Profile{})
	if err != nil {
		t.Fatal(err)
	}
	defer mesh[0].Close()
	// A wrapper that hides every optional capability.
	opaque := &opaquePeer{base: mesh[0]}
	if TryFlush(opaque) {
		t.Fatal("TryFlush over a non-Flusher must report false")
	}
	// Delegating wrappers over the opaque peer also report false (nothing
	// below them can flush), instead of pretending the flush happened.
	if TryFlush(NewFramed(opaque)) {
		t.Fatal("a delegating wrapper over a non-Flusher must report false")
	}
}

// opaquePeer forwards Peer only, deliberately hiding optional interfaces.
type opaquePeer struct{ base Peer }

func (o *opaquePeer) Rank() int { return o.base.Rank() }
func (o *opaquePeer) Size() int { return o.base.Size() }
func (o *opaquePeer) Send(ctx context.Context, to int, data []byte) error {
	return o.base.Send(ctx, to, data)
}
func (o *opaquePeer) Recv(ctx context.Context, from int) ([]byte, error) {
	return o.base.Recv(ctx, from)
}
func (o *opaquePeer) Stats() Stats { return o.base.Stats() }
func (o *opaquePeer) Close() error { return o.base.Close() }

// TestFaultTapsObserveCorruptAndTimeout pins the metrics error taps: a
// corrupt frame fires FaultCorrupt blaming the sender, a watchdog expiry
// fires FaultTimeout blaming the silent remote, and clean traffic fires
// nothing.
func TestFaultTapsObserveCorruptAndTimeout(t *testing.T) {
	mesh, err := NewMemMesh(2, netem.Profile{})
	if err != nil {
		t.Fatal(err)
	}
	defer mesh[0].Close()

	var corrupt, timeout atomic.Int64
	var blamed atomic.Int64
	tap := func(kind FaultKind, rank int) {
		switch kind {
		case FaultCorrupt:
			corrupt.Add(1)
		case FaultTimeout:
			timeout.Add(1)
		}
		blamed.Store(int64(rank))
	}

	sender := NewFramed(&FlakyPeer{Inner: mesh[0], CorruptEvery: 2})
	receiver := WithOpTimeout(NewFramed(mesh[1], tap), 50*time.Millisecond, tap)
	ctx := context.Background()

	// Clean round trip: no tap fires.
	if err := sender.Send(ctx, 1, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if _, err := receiver.Recv(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if corrupt.Load() != 0 || timeout.Load() != 0 {
		t.Fatal("taps fired on clean traffic")
	}

	// Corrupted frame: FaultCorrupt blaming sender rank 0.
	if err := sender.Send(ctx, 1, []byte("bad")); err != nil {
		t.Fatal(err)
	}
	if _, err := receiver.Recv(ctx, 0); err == nil {
		t.Fatal("corrupted frame must fail")
	}
	if corrupt.Load() != 1 || blamed.Load() != 0 {
		t.Fatalf("corrupt taps = %d (blamed %d), want 1 blaming rank 0", corrupt.Load(), blamed.Load())
	}

	// Silent source: FaultTimeout blaming rank 0.
	if _, err := receiver.Recv(ctx, 0); err == nil {
		t.Fatal("watchdog must expire")
	}
	if timeout.Load() != 1 || blamed.Load() != 0 {
		t.Fatalf("timeout taps = %d (blamed %d), want 1 blaming rank 0", timeout.Load(), blamed.Load())
	}
}
