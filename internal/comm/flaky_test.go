package comm

import (
	"context"
	"errors"
	"testing"
	"time"

	"voltage/internal/netem"
	"voltage/internal/partition"
	"voltage/internal/tensor"
)

func TestFlakyFailSendAfter(t *testing.T) {
	peers := memPair(t, 2, netem.Unlimited)
	f := &FlakyPeer{Inner: peers[0], FailSendAfter: 2}
	ctx := context.Background()
	if err := f.Send(ctx, 1, []byte("ok")); err != nil {
		t.Fatalf("first send should pass: %v", err)
	}
	if err := f.Send(ctx, 1, []byte("boom")); !errors.Is(err, ErrInjected) {
		t.Fatalf("second send: want ErrInjected, got %v", err)
	}
	if _, err := peers[1].Recv(ctx, 0); err != nil {
		t.Fatal(err)
	}
}

func TestFlakyFailRecvAfter(t *testing.T) {
	// The scheduled receive fault is deterministic: receives before the
	// threshold deliver normally, the n-th and every later one fail — the
	// knob chaos tests use to kill a rank at an exact protocol step.
	peers := memPair(t, 2, netem.Unlimited)
	f := &FlakyPeer{Inner: peers[1], FailRecvAfter: 2}
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := peers[0].Send(ctx, 1, []byte("msg")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.Recv(ctx, 0); err != nil {
		t.Fatalf("first recv should pass: %v", err)
	}
	for i := 0; i < 2; i++ {
		if _, err := f.Recv(ctx, 0); !errors.Is(err, ErrInjected) {
			t.Fatalf("recv %d past threshold: want ErrInjected, got %v", i+2, err)
		}
	}
}

func TestFlakyCorruptionDetectedByDecoder(t *testing.T) {
	// A corrupted tensor frame must surface as a decode error in
	// AllGatherMatrix, not silent wrong results or a hang.
	peers := memPair(t, 2, netem.Unlimited)
	full := tensor.NewRNG(1).Normal(4, 2, 1)
	scheme, _ := partition.Even(2)
	ranges, _ := scheme.Ranges(4)

	flaky := &FlakyPeer{Inner: peers[0], CorruptEvery: 1} // corrupt everything
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	errs := make(chan error, 2)
	go func() {
		mine, _ := full.RowSlice(0, 2)
		_, err := AllGatherMatrix(ctx, flaky, mine, ranges, false)
		errs <- err
	}()
	go func() {
		mine, _ := full.RowSlice(2, 4)
		_, err := AllGatherMatrix(ctx, peers[1], mine, ranges, false)
		errs <- err
	}()
	sawError := false
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			sawError = true
		}
	}
	if !sawError {
		t.Fatal("corruption went undetected")
	}
}

func TestFlakyDropCausesTimeoutNotHang(t *testing.T) {
	peers := memPair(t, 2, netem.Unlimited)
	flaky := &FlakyPeer{Inner: peers[0], DropEvery: 1}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := flaky.Send(ctx, 1, []byte("vanishes")); err != nil {
		t.Fatalf("dropped send should report success: %v", err)
	}
	if _, err := peers[1].Recv(ctx, 0); err == nil {
		t.Fatal("recv of dropped message should time out")
	}
}

func TestFlakyDelegation(t *testing.T) {
	peers := memPair(t, 2, netem.Unlimited)
	f := &FlakyPeer{Inner: peers[0]}
	if f.Rank() != 0 || f.Size() != 2 {
		t.Fatal("delegation broken")
	}
	ctx := context.Background()
	go func() { _ = f.Send(ctx, 1, []byte("x")) }()
	if _, err := peers[1].Recv(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if f.Stats().BytesSent != 1 {
		t.Fatal("stats not delegated")
	}
	_ = f.Close()
	if _, err := f.Recv(ctx, 1); err != ErrClosed {
		t.Fatalf("recv after close: %v", err)
	}
}

func TestFlakyCorruptionDoesNotMutateCallerBuffer(t *testing.T) {
	peers := memPair(t, 2, netem.Unlimited)
	f := &FlakyPeer{Inner: peers[0], CorruptEvery: 1}
	ctx := context.Background()
	payload := []byte{0x42, 0x43}
	go func() { _ = f.Send(ctx, 1, payload) }()
	got, err := peers[1].Recv(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0x42^0xFF {
		t.Fatalf("payload not corrupted on the wire: %x", got[0])
	}
	if payload[0] != 0x42 {
		t.Fatal("caller's buffer mutated")
	}
}

func TestFlakyStallRecvRespectsContext(t *testing.T) {
	peers := memPair(t, 2, netem.Unlimited)
	f := &FlakyPeer{Inner: peers[1], StallRecvAfter: 1}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	go func() { _ = peers[0].Send(context.Background(), 1, []byte("never seen")) }()
	if _, err := f.Recv(ctx, 0); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stalled recv should resolve with the context error, got %v", err)
	}
}

func TestFlakyStallRecvReleasedByClose(t *testing.T) {
	peers := memPair(t, 2, netem.Unlimited)
	f := &FlakyPeer{Inner: peers[1], StallRecvAfter: 1}
	errCh := make(chan error, 1)
	go func() {
		_, err := f.Recv(context.Background(), 0)
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	_ = f.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("want ErrClosed, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stalled recv leaked past Close")
	}
}

func TestFlakyDelayEvery(t *testing.T) {
	peers := memPair(t, 2, netem.Unlimited)
	const delay = 30 * time.Millisecond
	f := &FlakyPeer{Inner: peers[1], DelayEvery: 2, Delay: delay}
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		go func() { _ = peers[0].Send(ctx, 1, []byte("x")) }()
	}
	start := time.Now()
	if _, err := f.Recv(ctx, 0); err != nil { // 1st recv: undelayed
		t.Fatal(err)
	}
	undelayed := time.Since(start)
	start = time.Now()
	if _, err := f.Recv(ctx, 0); err != nil { // 2nd recv: delayed
		t.Fatal(err)
	}
	if delayed := time.Since(start); delayed < delay {
		t.Fatalf("2nd recv took %v, want >= %v (1st took %v)", delayed, delay, undelayed)
	}
}

func TestFlakyCorruptKeepsCleanByteAccounting(t *testing.T) {
	// A corrupted send must count exactly the bytes the clean send would
	// have, so per-request stat scopes stay consistent under fault injection.
	peers := memPair(t, 2, netem.Unlimited)
	f := &FlakyPeer{Inner: peers[0], CorruptEvery: 1}
	payload := make([]byte, 64)
	ctx := context.Background()
	go func() { _ = f.Send(ctx, 1, payload) }()
	if _, err := peers[1].Recv(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if got := f.Stats().BytesSent; got != int64(len(payload)) {
		t.Fatalf("corrupted send counted %d bytes, want clean-path %d", got, len(payload))
	}
}
