// Package comm provides the communication substrate of the distributed
// runtime: point-to-point messaging between ranked peers plus the
// collectives the two inference strategies need — All-Gather for Voltage's
// layer synchronization and All-Reduce for the tensor-parallelism baseline.
//
// Two transports implement the Peer interface: an in-memory mesh with
// emulated bandwidth/latency (the default for experiments, mirroring the
// paper's bandwidth-capped VMs) and a TCP mesh for genuinely distributed
// deployments.
package comm

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrClosed is returned by operations on a closed peer.
var ErrClosed = errors.New("comm: peer closed")

// ErrCorrupt marks a payload whose integrity check failed: the frame header
// was malformed or the CRC32 did not match (see FramedPeer). The message is
// unusable but the link itself may still be healthy.
var ErrCorrupt = errors.New("comm: corrupt frame")

// ErrTimeout marks an operation that exceeded its watchdog deadline (see
// WithOpTimeout and the cluster's Options.RequestTimeout): the expected
// message never arrived, modeling a dropped packet or a stalled device.
var ErrTimeout = errors.New("comm: deadline exceeded")

// RemoteError attributes a failure to a specific remote rank, so the
// cluster's health tracker can blame the right device: a corrupt frame
// blames its sender, a receive timeout blames the silent source.
type RemoteError struct {
	// Rank is the base-mesh rank of the peer held responsible.
	Rank int
	// Err is the underlying failure.
	Err error
}

// Error implements error.
func (e *RemoteError) Error() string { return fmt.Sprintf("peer %d: %v", e.Rank, e.Err) }

// Unwrap supports errors.Is/As against the underlying cause.
func (e *RemoteError) Unwrap() error { return e.Err }

// RemoteRank extracts the blamed rank from an error chain. The second
// return is false when no RemoteError is present (the failure cannot be
// attributed to a specific peer).
func RemoteRank(err error) (int, bool) {
	var re *RemoteError
	if errors.As(err, &re) {
		return re.Rank, true
	}
	return -1, false
}

// Peer is one ranked endpoint of a fully connected group of Size devices.
// Implementations must be safe for concurrent use; Send and Recv on
// distinct (peer, direction) pairs may proceed in parallel, but callers
// must not issue concurrent Recv calls for the same source rank.
type Peer interface {
	// Rank returns this peer's index in [0, Size).
	Rank() int
	// Size returns the number of peers in the group.
	Size() int
	// Send delivers data to peer `to`. The callee does not retain data
	// after Send returns (it copies or fully transmits the payload first),
	// so callers may reuse their encode buffers immediately.
	Send(ctx context.Context, to int, data []byte) error
	// Recv returns the next message from peer `from`, blocking until one
	// arrives, the context is cancelled, or the peer is closed. The
	// returned slice is owned exclusively by the caller, which may hand it
	// back to the transport with ReleaseBuffer after decoding.
	Recv(ctx context.Context, from int) ([]byte, error)
	// Stats returns a snapshot of this peer's traffic counters.
	Stats() Stats
	// Close releases the peer's resources and unblocks pending operations.
	Close() error
}

// Flusher is an optional Peer capability: discard any buffered,
// undelivered traffic so the next protocol's streams start aligned. The
// in-memory mesh implements it (its FIFO links hold frames an aborted
// collective never drained); wrappers delegate it so the capability
// survives the wrapper stack — a wrapper that swallowed it would silently
// turn mesh fencing into a no-op (the classic wrapper-hides-optional-
// interface bug). Flush reports whether buffered traffic was actually
// discardable: a delegating wrapper over a transport with no flush support
// (e.g. TCP, whose in-flight bytes live in kernel buffers) returns false.
//
// Callers must guarantee no rank is concurrently sending or receiving (the
// cluster fences the mesh around fault-tolerant attempts before flushing).
type Flusher interface {
	Flush() bool
}

// TryFlush flushes p when it (or, through wrapper delegation, the peer it
// wraps) supports flushing. It is the safe way to flush a wrapped peer:
// no-op, returning false, when nothing in the stack can flush.
func TryFlush(p Peer) bool {
	if f, ok := p.(Flusher); ok {
		return f.Flush()
	}
	return false
}

// FaultKind classifies a transport-level fault observed by a FaultTap.
type FaultKind int

// Fault kinds.
const (
	// FaultCorrupt is a frame that failed its integrity check on receive.
	FaultCorrupt FaultKind = iota + 1
	// FaultTimeout is an operation that exceeded its watchdog deadline.
	FaultTimeout
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultCorrupt:
		return "corrupt"
	case FaultTimeout:
		return "timeout"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// FaultTap observes transport-level faults for metrics: rank is the peer
// blamed (a corrupt frame's sender, a timeout's silent remote). Taps run on
// the error path only — never on a successful operation — and must be safe
// for concurrent use.
type FaultTap func(kind FaultKind, rank int)

// Stats counts a peer's traffic. The byte counts are payload bytes (what
// the paper calls communication size); framing overhead is excluded so the
// numbers are directly comparable with the analytic formulas.
type Stats struct {
	BytesSent, BytesRecv int64
	MsgsSent, MsgsRecv   int64
}

// Add returns the element-wise sum of two stats snapshots.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		BytesSent: s.BytesSent + o.BytesSent,
		BytesRecv: s.BytesRecv + o.BytesRecv,
		MsgsSent:  s.MsgsSent + o.MsgsSent,
		MsgsRecv:  s.MsgsRecv + o.MsgsRecv,
	}
}

// Sub returns the element-wise difference s−o — the traffic between two
// snapshots of one scope (o taken earlier than s).
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		BytesSent: s.BytesSent - o.BytesSent,
		BytesRecv: s.BytesRecv - o.BytesRecv,
		MsgsSent:  s.MsgsSent - o.MsgsSent,
		MsgsRecv:  s.MsgsRecv - o.MsgsRecv,
	}
}

// counters is the shared atomic implementation of Stats tracking.
type counters struct {
	bytesSent, bytesRecv atomic.Int64
	msgsSent, msgsRecv   atomic.Int64
}

func (c *counters) sent(n int) {
	c.bytesSent.Add(int64(n))
	c.msgsSent.Add(1)
}

func (c *counters) received(n int) {
	c.bytesRecv.Add(int64(n))
	c.msgsRecv.Add(1)
}

func (c *counters) snapshot() Stats {
	return Stats{
		BytesSent: c.bytesSent.Load(),
		BytesRecv: c.bytesRecv.Load(),
		MsgsSent:  c.msgsSent.Load(),
		MsgsRecv:  c.msgsRecv.Load(),
	}
}
