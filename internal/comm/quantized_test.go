package comm

import (
	"context"
	"fmt"
	"testing"

	"voltage/internal/netem"
	"voltage/internal/partition"
	"voltage/internal/quantize"
	"voltage/internal/tensor"
)

func TestAllGatherMatrixQAssembles(t *testing.T) {
	for _, ring := range []bool{false, true} {
		t.Run(fmt.Sprintf("ring=%v", ring), func(t *testing.T) {
			peers := memPair(t, 3, netem.Unlimited)
			full := tensor.NewRNG(21).Normal(12, 8, 1)
			scheme, _ := partition.Even(3)
			ranges, _ := scheme.Ranges(12)
			// Reference: what every rank should see — the quantization
			// round trip of each partition.
			want := tensor.New(12, 8)
			for _, r := range ranges {
				part, _ := full.RowSlice(r.From, r.To)
				if err := want.SetRowSlice(r.From, quantize.Roundtrip(part)); err != nil {
					t.Fatal(err)
				}
			}
			runSPMD(t, peers, func(p Peer) error {
				r := ranges[p.Rank()]
				mine, err := full.RowSlice(r.From, r.To)
				if err != nil {
					return err
				}
				got, err := AllGatherMatrixQ(context.Background(), p, mine, ranges, ring)
				if err != nil {
					return err
				}
				if !got.Equal(want) {
					return fmt.Errorf("rank %d: quantized assembly differs from reference", p.Rank())
				}
				d, err := got.MaxAbsDiff(full)
				if err != nil {
					return err
				}
				if d > quantize.MaxError(full)+1e-6 {
					return fmt.Errorf("rank %d: deviation %v beyond bound", p.Rank(), d)
				}
				return nil
			})
		})
	}
}

func TestAllGatherMatrixQConsistentAcrossRanks(t *testing.T) {
	// The critical consistency property: every rank must assemble the
	// SAME matrix (including the quantized view of its own partition), or
	// the devices' layer inputs would drift apart.
	peers := memPair(t, 2, netem.Unlimited)
	full := tensor.NewRNG(22).Normal(6, 4, 1)
	scheme, _ := partition.Even(2)
	ranges, _ := scheme.Ranges(6)
	results := make([]*tensor.Matrix, 2)
	runSPMD(t, peers, func(p Peer) error {
		mine, err := full.RowSlice(ranges[p.Rank()].From, ranges[p.Rank()].To)
		if err != nil {
			return err
		}
		got, err := AllGatherMatrixQ(context.Background(), p, mine, ranges, false)
		if err != nil {
			return err
		}
		results[p.Rank()] = got
		return nil
	})
	if !results[0].Equal(results[1]) {
		t.Fatal("ranks assembled different matrices")
	}
}

func TestAllGatherMatrixQValidation(t *testing.T) {
	peers := memPair(t, 2, netem.Unlimited)
	m := tensor.New(3, 2)
	if _, err := AllGatherMatrixQ(context.Background(), peers[0], m, []partition.Range{{From: 0, To: 3}}, false); err == nil {
		t.Fatal("want error for range count mismatch")
	}
	ranges := []partition.Range{{From: 0, To: 5}, {From: 5, To: 10}}
	if _, err := AllGatherMatrixQ(context.Background(), peers[0], m, ranges, false); err == nil {
		t.Fatal("want error for row mismatch")
	}
}

func TestAllGatherMatrixQTrafficQuarter(t *testing.T) {
	k, n, f := 4, 64, 128
	peers := memPair(t, k, netem.Unlimited)
	full := tensor.NewRNG(23).Normal(n, f, 1)
	scheme, _ := partition.Even(k)
	ranges, _ := scheme.Ranges(n)
	runSPMD(t, peers, func(p Peer) error {
		mine, err := full.RowSlice(ranges[p.Rank()].From, ranges[p.Rank()].To)
		if err != nil {
			return err
		}
		_, err = AllGatherMatrixQ(context.Background(), p, mine, ranges, false)
		return err
	})
	floatBytes := int64((k - 1) * tensor.EncodedSize(n/k, f))
	for _, p := range peers {
		sent := p.Stats().BytesSent
		ratio := float64(floatBytes) / float64(sent)
		if ratio < 3.5 || ratio > 4.2 {
			t.Fatalf("rank %d traffic reduction %.2f, want ≈4", p.Rank(), ratio)
		}
	}
}

func TestSubgroupClose(t *testing.T) {
	peers := memPair(t, 2, netem.Unlimited)
	s, err := NewSubgroup(peers[0], []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := peers[1].Recv(context.Background(), 0); err != ErrClosed {
		t.Fatalf("base mesh not closed through subgroup: %v", err)
	}
}
