package comm

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"

	"voltage/internal/partition"
	"voltage/internal/tensor"
)

// floatsToBytes copies a float32 slice into a fresh little-endian byte
// slice (copied, because Send transfers ownership of its argument).
func floatsToBytes(v []float32) []byte {
	out := make([]byte, 4*len(v))
	for i, f := range v {
		binary.LittleEndian.PutUint32(out[i*4:], math.Float32bits(f))
	}
	return out
}

// addFloatBytes adds the little-endian float32 payload into dst.
func addFloatBytes(dst []float32, payload []byte) {
	for i := range dst {
		dst[i] += math.Float32frombits(binary.LittleEndian.Uint32(payload[i*4:]))
	}
}

// copyFloatBytes overwrites dst with the little-endian float32 payload.
func copyFloatBytes(dst []float32, payload []byte) {
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[i*4:]))
	}
}

// AllGatherMatrix runs Voltage's between-layer synchronization: every rank
// contributes its output partition `mine` (rows ranges[rank] of the full
// matrix) and receives the assembled full matrix. ranges must be the
// partition scheme's ranges for the current sequence length, identical on
// every rank.
//
// When ring is true the ring all-gather is used; otherwise the naive
// direct exchange.
func AllGatherMatrix(ctx context.Context, p Peer, mine *tensor.Matrix, ranges []partition.Range, ring bool) (*tensor.Matrix, error) {
	if len(ranges) != p.Size() {
		return nil, fmt.Errorf("comm: %d ranges for %d peers", len(ranges), p.Size())
	}
	r := ranges[p.Rank()]
	if mine.Rows() != r.Len() {
		return nil, fmt.Errorf("comm: partition has %d rows, range %v wants %d", mine.Rows(), r, r.Len())
	}
	total := 0
	cols := mine.Cols()
	for _, rr := range ranges {
		total += rr.Len()
	}

	gather := AllGather
	if ring {
		gather = RingAllGather
	}
	blobs, err := gather(ctx, p, tensor.Encode(nil, mine))
	if err != nil {
		return nil, err
	}
	out := tensor.New(total, cols)
	for rank, blob := range blobs {
		var part *tensor.Matrix
		if rank == p.Rank() {
			part = mine
		} else {
			decoded, _, err := tensor.Decode(blob)
			if err != nil {
				return nil, fmt.Errorf("comm: allgather decode from %d: %w", rank, err)
			}
			part = decoded
		}
		rr := ranges[rank]
		if part.Rows() != rr.Len() || part.Cols() != cols {
			return nil, fmt.Errorf("comm: partition from %d is %dx%d, range %v wants %dx%d",
				rank, part.Rows(), part.Cols(), rr, rr.Len(), cols)
		}
		if rr.Empty() {
			continue
		}
		if err := out.SetRowSlice(rr.From, part); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// BroadcastMatrix sends root's matrix to every rank.
func BroadcastMatrix(ctx context.Context, p Peer, root int, m *tensor.Matrix) (*tensor.Matrix, error) {
	var blob []byte
	if p.Rank() == root {
		blob = tensor.Encode(nil, m)
	}
	got, err := Broadcast(ctx, p, root, blob)
	if err != nil {
		return nil, err
	}
	if p.Rank() == root {
		return m, nil
	}
	decoded, _, err := tensor.Decode(got)
	if err != nil {
		return nil, fmt.Errorf("comm: broadcast decode: %w", err)
	}
	return decoded, nil
}
