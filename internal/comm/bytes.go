package comm

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"

	"voltage/internal/partition"
	"voltage/internal/tensor"
)

// floatsToBytes copies a float32 slice into a fresh little-endian byte
// slice.
func floatsToBytes(v []float32) []byte {
	out := make([]byte, 4*len(v))
	for i, f := range v {
		binary.LittleEndian.PutUint32(out[i*4:], math.Float32bits(f))
	}
	return out
}

// addFloatBytes adds the little-endian float32 payload into dst.
func addFloatBytes(dst []float32, payload []byte) {
	for i := range dst {
		dst[i] += math.Float32frombits(binary.LittleEndian.Uint32(payload[i*4:]))
	}
}

// copyFloatBytes overwrites dst with the little-endian float32 payload.
func copyFloatBytes(dst []float32, payload []byte) {
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[i*4:]))
	}
}

// AllGatherMatrix runs Voltage's between-layer synchronization: every rank
// contributes its output partition `mine` (rows ranges[rank] of the full
// matrix) and receives the assembled full matrix. ranges must be the
// partition scheme's ranges for the current sequence length, identical on
// every rank.
//
// When ring is true the ring all-gather is used; otherwise the naive
// direct exchange. This convenience wrapper allocates per call; the serving
// hot path holds a long-lived Exchange instead.
func AllGatherMatrix(ctx context.Context, p Peer, mine *tensor.Matrix, ranges []partition.Range, ring bool) (*tensor.Matrix, error) {
	return NewExchange(nil).AllGatherMatrix(ctx, p, mine, ranges, ring)
}

// BroadcastMatrix sends root's matrix to every rank.
func BroadcastMatrix(ctx context.Context, p Peer, root int, m *tensor.Matrix) (*tensor.Matrix, error) {
	var blob []byte
	if p.Rank() == root {
		blob = tensor.Encode(nil, m)
	}
	got, err := Broadcast(ctx, p, root, blob)
	if err != nil {
		return nil, err
	}
	if p.Rank() == root {
		return m, nil
	}
	decoded, _, err := tensor.Decode(got)
	if err != nil {
		return nil, fmt.Errorf("comm: broadcast decode: %w", err)
	}
	return decoded, nil
}
