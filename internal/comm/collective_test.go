package comm

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"voltage/internal/netem"
	"voltage/internal/partition"
	"voltage/internal/tensor"
)

// runSPMD runs fn concurrently on every peer and returns the first error.
func runSPMD(t testing.TB, peers []*MemPeer, fn func(p Peer) error) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, len(peers))
	for i, p := range peers {
		wg.Add(1)
		go func(i int, p Peer) {
			defer wg.Done()
			errs[i] = fn(p)
		}(i, p)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
}

func TestBroadcast(t *testing.T) {
	for _, k := range []int{1, 2, 5} {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			peers := memPair(t, k, netem.Unlimited)
			want := []byte("payload")
			runSPMD(t, peers, func(p Peer) error {
				var in []byte
				if p.Rank() == 0 {
					in = want
				}
				got, err := Broadcast(context.Background(), p, 0, in)
				if err != nil {
					return err
				}
				if string(got) != string(want) {
					return fmt.Errorf("rank %d got %q", p.Rank(), got)
				}
				return nil
			})
		})
	}
}

func TestBroadcastBadRoot(t *testing.T) {
	peers := memPair(t, 2, netem.Unlimited)
	if _, err := Broadcast(context.Background(), peers[0], 9, nil); err == nil {
		t.Fatal("want error for bad root")
	}
}

func TestGather(t *testing.T) {
	peers := memPair(t, 4, netem.Unlimited)
	runSPMD(t, peers, func(p Peer) error {
		blob := []byte{byte(p.Rank())}
		out, err := Gather(context.Background(), p, 2, blob)
		if err != nil {
			return err
		}
		if p.Rank() != 2 {
			if out != nil {
				return fmt.Errorf("non-root got result")
			}
			return nil
		}
		for r, b := range out {
			if len(b) != 1 || b[0] != byte(r) {
				return fmt.Errorf("root out[%d] = %v", r, b)
			}
		}
		return nil
	})
	if _, err := Gather(context.Background(), peers[0], -1, nil); err == nil {
		t.Fatal("want error for bad root")
	}
}

func TestAllGatherVariants(t *testing.T) {
	for _, ring := range []bool{false, true} {
		for _, k := range []int{1, 2, 3, 6} {
			t.Run(fmt.Sprintf("ring=%v/k=%d", ring, k), func(t *testing.T) {
				peers := memPair(t, k, netem.Unlimited)
				runSPMD(t, peers, func(p Peer) error {
					blob := []byte{byte(p.Rank()), byte(p.Rank() * 2)}
					gather := AllGather
					if ring {
						gather = RingAllGather
					}
					out, err := gather(context.Background(), p, blob)
					if err != nil {
						return err
					}
					if len(out) != k {
						return fmt.Errorf("got %d blobs", len(out))
					}
					for r, b := range out {
						if len(b) != 2 || b[0] != byte(r) || b[1] != byte(r*2) {
							return fmt.Errorf("rank %d out[%d] = %v", p.Rank(), r, b)
						}
					}
					return nil
				})
			})
		}
	}
}

func TestAllReduceSumVariants(t *testing.T) {
	for _, ring := range []bool{false, true} {
		for _, k := range []int{1, 2, 3, 5} {
			t.Run(fmt.Sprintf("ring=%v/k=%d", ring, k), func(t *testing.T) {
				peers := memPair(t, k, netem.Unlimited)
				rows, cols := 7, 9
				// want[i] = sum over ranks of (rank+1) * base[i]
				base := tensor.NewRNG(42).Normal(rows, cols, 1)
				factor := float32(0)
				for r := 0; r < k; r++ {
					factor += float32(r + 1)
				}
				want := tensor.Scale(base, factor)
				runSPMD(t, peers, func(p Peer) error {
					mine := tensor.Scale(base, float32(p.Rank()+1))
					reduce := AllReduceSum
					if ring {
						reduce = RingAllReduceSum
					}
					got, err := reduce(context.Background(), p, mine)
					if err != nil {
						return err
					}
					if !got.AlmostEqual(want, 1e-3) {
						d, _ := got.MaxAbsDiff(want)
						return fmt.Errorf("rank %d allreduce off by %v", p.Rank(), d)
					}
					return nil
				})
			})
		}
	}
}

func TestRingAllReduceDoesNotMutateInput(t *testing.T) {
	peers := memPair(t, 3, netem.Unlimited)
	base := tensor.NewRNG(7).Normal(4, 4, 1)
	runSPMD(t, peers, func(p Peer) error {
		mine := base.Clone()
		snapshot := mine.Clone()
		if _, err := RingAllReduceSum(context.Background(), p, mine); err != nil {
			return err
		}
		if !mine.Equal(snapshot) {
			return fmt.Errorf("input mutated")
		}
		return nil
	})
}

func TestAllGatherMatrix(t *testing.T) {
	for _, ring := range []bool{false, true} {
		t.Run(fmt.Sprintf("ring=%v", ring), func(t *testing.T) {
			peers := memPair(t, 3, netem.Unlimited)
			full := tensor.NewRNG(11).Normal(10, 4, 1)
			scheme, err := partition.Weighted([]float64{2, 5, 3})
			if err != nil {
				t.Fatal(err)
			}
			ranges, err := scheme.Ranges(10)
			if err != nil {
				t.Fatal(err)
			}
			runSPMD(t, peers, func(p Peer) error {
				r := ranges[p.Rank()]
				mine, err := full.RowSlice(r.From, r.To)
				if err != nil {
					return err
				}
				got, err := AllGatherMatrix(context.Background(), p, mine, ranges, ring)
				if err != nil {
					return err
				}
				if !got.Equal(full) {
					return fmt.Errorf("rank %d assembled wrong matrix", p.Rank())
				}
				return nil
			})
		})
	}
}

func TestAllGatherMatrixValidation(t *testing.T) {
	peers := memPair(t, 2, netem.Unlimited)
	m := tensor.New(3, 2)
	// Wrong number of ranges.
	if _, err := AllGatherMatrix(context.Background(), peers[0], m, []partition.Range{{From: 0, To: 3}}, false); err == nil {
		t.Fatal("want error for range count")
	}
	// Partition rows disagree with own range.
	ranges := []partition.Range{{From: 0, To: 5}, {From: 5, To: 10}}
	if _, err := AllGatherMatrix(context.Background(), peers[0], m, ranges, false); err == nil {
		t.Fatal("want error for row mismatch")
	}
}

func TestBroadcastMatrix(t *testing.T) {
	peers := memPair(t, 3, netem.Unlimited)
	want := tensor.NewRNG(13).Normal(5, 6, 1)
	runSPMD(t, peers, func(p Peer) error {
		var in *tensor.Matrix
		if p.Rank() == 0 {
			in = want
		}
		got, err := BroadcastMatrix(context.Background(), p, 0, in)
		if err != nil {
			return err
		}
		if !got.Equal(want) {
			return fmt.Errorf("rank %d matrix mismatch", p.Rank())
		}
		return nil
	})
}

func TestAllGatherCommVolumeMatchesPaperFormula(t *testing.T) {
	// Table A: Voltage's per-device All-Gather traffic is (K−1)·N·F/K
	// values, i.e. 4(K−1)NF/K bytes (+8-byte headers), vs tensor
	// parallelism's ring All-Reduce at 2·(K−1)·N·F/K values per call and
	// two calls per layer.
	k, n, f := 4, 64, 32
	peers := memPair(t, k, netem.Unlimited)
	full := tensor.NewRNG(17).Normal(n, f, 1)
	scheme, _ := partition.Even(k)
	ranges, _ := scheme.Ranges(n)
	runSPMD(t, peers, func(p Peer) error {
		r := ranges[p.Rank()]
		mine, err := full.RowSlice(r.From, r.To)
		if err != nil {
			return err
		}
		_, err = AllGatherMatrix(context.Background(), p, mine, ranges, false)
		return err
	})
	wantBytes := int64(4 * (k - 1) * n * f / k)
	for _, p := range peers {
		s := p.Stats()
		overhead := s.MsgsSent * 8 // codec headers
		if got := s.BytesSent - overhead; got != wantBytes {
			t.Fatalf("rank %d sent %d payload bytes, paper formula %d", p.Rank(), got, wantBytes)
		}
	}

	// Ring All-Reduce volume: 2·(K−1)·N·F/K values per device.
	peers2 := memPair(t, k, netem.Unlimited)
	runSPMD(t, peers2, func(p Peer) error {
		m := tensor.NewRNG(18).Normal(n, f, 1)
		_, err := RingAllReduceSum(context.Background(), p, m)
		return err
	})
	wantReduce := int64(4 * 2 * (k - 1) * n * f / k)
	for _, p := range peers2 {
		if got := p.Stats().BytesSent; got != wantReduce {
			t.Fatalf("rank %d ring allreduce sent %d bytes, want %d", p.Rank(), got, wantReduce)
		}
	}
}

func TestChunkBounds(t *testing.T) {
	f := func(seed int64) bool {
		n := int(uint64(seed) % 1000)
		k := 1 + int(uint64(seed)>>32%16)
		b := chunkBounds(n, k)
		if len(b) != k+1 || b[0] != 0 || b[k] != n {
			return false
		}
		for i := 0; i < k; i++ {
			if b[i+1] < b[i] {
				return false
			}
			// Near-even: chunk sizes differ by at most 1.
			if d := (b[i+1] - b[i]) - n/k; d < 0 || d > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFloatBytesHelpers(t *testing.T) {
	v := []float32{1.5, -2.25, 3}
	b := floatsToBytes(v)
	dst := make([]float32, 3)
	copyFloatBytes(dst, b)
	for i := range v {
		if dst[i] != v[i] {
			t.Fatalf("copyFloatBytes[%d] = %v", i, dst[i])
		}
	}
	addFloatBytes(dst, b)
	for i := range v {
		if dst[i] != 2*v[i] {
			t.Fatalf("addFloatBytes[%d] = %v", i, dst[i])
		}
	}
}
