package comm

import (
	"context"
	"fmt"
	"testing"

	"voltage/internal/netem"
)

func TestNewSubgroupValidation(t *testing.T) {
	peers := memPair(t, 4, netem.Unlimited)
	if _, err := NewSubgroup(peers[0], nil); err == nil {
		t.Fatal("want error for empty subgroup")
	}
	if _, err := NewSubgroup(peers[0], []int{0, 9}); err == nil {
		t.Fatal("want error for OOB member")
	}
	if _, err := NewSubgroup(peers[0], []int{0, 0}); err == nil {
		t.Fatal("want error for duplicate member")
	}
	if _, err := NewSubgroup(peers[0], []int{1, 2}); err == nil {
		t.Fatal("want error when base rank not a member")
	}
}

func TestSubgroupRankTranslation(t *testing.T) {
	peers := memPair(t, 4, netem.Unlimited)
	// Subgroup of base ranks {1, 3}: local ranks 0 and 1.
	s1, err := NewSubgroup(peers[1], []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	s3, err := NewSubgroup(peers[3], []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if s1.Rank() != 0 || s3.Rank() != 1 || s1.Size() != 2 {
		t.Fatalf("ranks %d/%d size %d", s1.Rank(), s3.Rank(), s1.Size())
	}
	ctx := context.Background()
	go func() { _ = s1.Send(ctx, 1, []byte("via subgroup")) }()
	got, err := s3.Recv(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "via subgroup" {
		t.Fatalf("got %q", got)
	}
}

func TestSubgroupRankBounds(t *testing.T) {
	peers := memPair(t, 3, netem.Unlimited)
	s, err := NewSubgroup(peers[0], []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Send(context.Background(), 5, nil); err == nil {
		t.Fatal("want error for OOB subgroup send")
	}
	if _, err := s.Recv(context.Background(), -1); err == nil {
		t.Fatal("want error for OOB subgroup recv")
	}
}

func TestSubgroupCollectives(t *testing.T) {
	// An All-Gather inside a 3-member subgroup of a 5-mesh must involve
	// only the members.
	peers := memPair(t, 5, netem.Unlimited)
	members := []int{0, 2, 4}
	errs := make(chan error, len(members))
	for _, m := range members {
		go func(m int) {
			s, err := NewSubgroup(peers[m], members)
			if err != nil {
				errs <- err
				return
			}
			out, err := AllGather(context.Background(), s, []byte{byte(m)})
			if err != nil {
				errs <- err
				return
			}
			for i, b := range out {
				if b[0] != byte(members[i]) {
					errs <- fmt.Errorf("member %d: out[%d] = %d", m, i, b[0])
					return
				}
			}
			errs <- nil
		}(m)
	}
	for range members {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	// Non-members saw no traffic.
	for _, outside := range []int{1, 3} {
		if s := peers[outside].Stats(); s.BytesRecv != 0 || s.BytesSent != 0 {
			t.Fatalf("non-member %d has traffic %+v", outside, s)
		}
	}
}

func TestSubgroupStatsDelegate(t *testing.T) {
	peers := memPair(t, 2, netem.Unlimited)
	s0, _ := NewSubgroup(peers[0], []int{0, 1})
	s1, _ := NewSubgroup(peers[1], []int{0, 1})
	ctx := context.Background()
	go func() { _ = s0.Send(ctx, 1, make([]byte, 10)) }()
	if _, err := s1.Recv(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if s0.Stats().BytesSent != 10 {
		t.Fatal("stats not delegated")
	}
}
