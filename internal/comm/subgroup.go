package comm

import (
	"context"
	"fmt"
)

// Subgroup is a view of a Peer restricted to a subset of the mesh: ranks
// are renumbered 0..len(members)-1 in member order. Collectives run on a
// Subgroup involve only its members — the cluster runtime uses this to run
// worker-only All-Gathers in a mesh that also contains the terminal device.
type Subgroup struct {
	base    Peer
	members []int // members[i] = base rank of subgroup rank i
	rank    int   // this peer's subgroup rank
}

var _ Peer = (*Subgroup)(nil)

// NewSubgroup wraps base so that only the given base ranks participate.
// base's own rank must be one of the members.
func NewSubgroup(base Peer, members []int) (*Subgroup, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("comm: empty subgroup")
	}
	seen := make(map[int]bool, len(members))
	self := -1
	for i, m := range members {
		if m < 0 || m >= base.Size() {
			return nil, fmt.Errorf("comm: subgroup member %d outside mesh of %d", m, base.Size())
		}
		if seen[m] {
			return nil, fmt.Errorf("comm: duplicate subgroup member %d", m)
		}
		seen[m] = true
		if m == base.Rank() {
			self = i
		}
	}
	if self < 0 {
		return nil, fmt.Errorf("comm: base rank %d not in subgroup %v", base.Rank(), members)
	}
	cp := make([]int, len(members))
	copy(cp, members)
	return &Subgroup{base: base, members: cp, rank: self}, nil
}

// Rank implements Peer (subgroup-local rank).
func (s *Subgroup) Rank() int { return s.rank }

// Size implements Peer (subgroup size).
func (s *Subgroup) Size() int { return len(s.members) }

// Send implements Peer, translating the subgroup rank to the base mesh.
func (s *Subgroup) Send(ctx context.Context, to int, data []byte) error {
	if to < 0 || to >= len(s.members) {
		return fmt.Errorf("comm: subgroup send to %d of %d", to, len(s.members))
	}
	return s.base.Send(ctx, s.members[to], data)
}

// Recv implements Peer, translating the subgroup rank to the base mesh.
func (s *Subgroup) Recv(ctx context.Context, from int) ([]byte, error) {
	if from < 0 || from >= len(s.members) {
		return nil, fmt.Errorf("comm: subgroup recv from %d of %d", from, len(s.members))
	}
	return s.base.Recv(ctx, s.members[from])
}

// Stats implements Peer, delegating to the base peer (traffic is counted
// once, on the underlying mesh).
func (s *Subgroup) Stats() Stats { return s.base.Stats() }

// Flush delegates the optional Flusher capability to the base peer. Note
// the mesh-wide flush is not restricted to the subgroup's links.
func (s *Subgroup) Flush() bool { return TryFlush(s.base) }

// Close implements Peer. Closing a subgroup closes the underlying peer.
func (s *Subgroup) Close() error { return s.base.Close() }
