package comm

import (
	"context"
	"sync"
	"testing"

	"voltage/internal/netem"
	"voltage/internal/partition"
	"voltage/internal/tensor"
)

// gatherAll runs fn (an Exchange-based all-gather round) on every rank of a
// fresh mesh and returns the per-rank results.
func runAllGatherRound(t *testing.T, peers []*MemPeer, exs []*Exchange, parts []*tensor.Matrix, ranges []partition.Range, ring bool) []*tensor.Matrix {
	t.Helper()
	k := len(peers)
	outs := make([]*tensor.Matrix, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for r := 0; r < k; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			outs[r], errs[r] = exs[r].AllGatherMatrix(context.Background(), peers[r], parts[r], ranges, ring)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return outs
}

func TestExchangeAllGatherMatrixMatchesPlain(t *testing.T) {
	for _, ring := range []bool{false, true} {
		const k, n, cols = 3, 8, 4
		peers, err := NewMemMesh(k, netem.Profile{})
		if err != nil {
			t.Fatal(err)
		}
		defer peers[0].Close()
		scheme, err := partition.Even(k)
		if err != nil {
			t.Fatal(err)
		}
		ranges, err := scheme.Ranges(n)
		if err != nil {
			t.Fatal(err)
		}
		pool := &tensor.MatrixPool{}
		exs := make([]*Exchange, k)
		for r := range exs {
			exs[r] = NewExchange(pool)
		}
		// Two rounds with different values: the second reuses scratch
		// buffers and pooled matrices from the first, and must still be
		// exact.
		for round := 0; round < 2; round++ {
			full := tensor.New(n, cols)
			for i := 0; i < n; i++ {
				for j := 0; j < cols; j++ {
					full.Set(i, j, float32(round*1000+i*cols+j))
				}
			}
			parts := make([]*tensor.Matrix, k)
			for r := 0; r < k; r++ {
				part, err := full.RowSlice(ranges[r].From, ranges[r].To)
				if err != nil {
					t.Fatal(err)
				}
				parts[r] = part
			}
			outs := runAllGatherRound(t, peers, exs, parts, ranges, ring)
			for r, out := range outs {
				if !out.Equal(full) {
					t.Fatalf("ring=%v round %d rank %d: assembled matrix differs", ring, round, r)
				}
				pool.Put(out)
			}
		}
	}
}

func TestScopedPeerCountsOnlyScopeTraffic(t *testing.T) {
	peers, err := NewMemMesh(2, netem.Profile{})
	if err != nil {
		t.Fatal(err)
	}
	defer peers[0].Close()
	ctx := context.Background()

	// Pre-scope traffic lands on the base counters only.
	if err := peers[0].Send(ctx, 1, []byte("warmup")); err != nil {
		t.Fatal(err)
	}
	if _, err := peers[1].Recv(ctx, 0); err != nil {
		t.Fatal(err)
	}

	s0 := Scoped(peers[0])
	s1 := Scoped(peers[1])
	if err := s0.Send(ctx, 1, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	got, err := s1.Recv(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "abc" {
		t.Fatalf("payload %q", got)
	}
	if st := s0.Stats(); st.BytesSent != 3 || st.MsgsSent != 1 || st.BytesRecv != 0 {
		t.Fatalf("sender scope %+v", st)
	}
	if st := s1.Stats(); st.BytesRecv != 3 || st.MsgsRecv != 1 || st.BytesSent != 0 {
		t.Fatalf("receiver scope %+v", st)
	}
	// The base peer still accumulates everything, warmup included.
	if st := peers[0].Stats(); st.BytesSent != 9 || st.MsgsSent != 2 {
		t.Fatalf("base stats %+v", st)
	}
}

func TestMemSendKeepsCallerBuffer(t *testing.T) {
	// The Peer contract: Send does not retain the caller's slice, so a
	// scratch buffer may be rewritten immediately after Send returns.
	peers, err := NewMemMesh(2, netem.Profile{})
	if err != nil {
		t.Fatal(err)
	}
	defer peers[0].Close()
	ctx := context.Background()
	scratch := []byte{1, 2, 3}
	if err := peers[0].Send(ctx, 1, scratch); err != nil {
		t.Fatal(err)
	}
	scratch[0], scratch[1], scratch[2] = 9, 9, 9 // caller reuses the buffer
	got, err := peers[1].Recv(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("receiver saw the caller's overwrite: %v", got)
	}
	ReleaseBuffer(got)
}
