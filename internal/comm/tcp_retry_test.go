package comm

import (
	"bytes"
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

// stubTimeoutErr satisfies net.Error with Timeout() == true.
type stubTimeoutErr struct{}

func (stubTimeoutErr) Error() string   { return "stub: i/o timeout" }
func (stubTimeoutErr) Timeout() bool   { return true }
func (stubTimeoutErr) Temporary() bool { return true }

// stubConn fails the first `failures` writes before any byte hits the wire
// (when partial is false) or after the 4-byte header (when partial is true).
type stubConn struct {
	net.Conn // panics if an unstubbed method is called

	mu       sync.Mutex
	failures int
	partial  bool
	fail     error
	writes   int
	buf      bytes.Buffer
}

func (c *stubConn) Write(b []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.writes++
	if c.failures > 0 {
		c.failures--
		if c.partial {
			n, _ := c.buf.Write(b)
			return n, c.fail
		}
		return 0, c.fail
	}
	return c.buf.Write(b)
}

func (c *stubConn) SetWriteDeadline(time.Time) error { return nil }
func (c *stubConn) Close() error                     { return nil }

func (c *stubConn) writeCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writes
}

func stubTCPPeer(conn net.Conn) *TCPPeer {
	return &TCPPeer{
		rank:   0,
		size:   2,
		conns:  []net.Conn{nil, conn},
		sendMu: make([]sync.Mutex, 2),
		recvMu: make([]sync.Mutex, 2),
		done:   make(chan struct{}),
	}
}

func TestTCPSendRetriesTransientTimeout(t *testing.T) {
	// A net timeout before any frame byte is out retries on the same
	// connection and succeeds; the payload lands exactly once.
	conn := &stubConn{failures: 1, fail: stubTimeoutErr{}}
	p := stubTCPPeer(conn)
	payload := []byte("retried")
	start := time.Now()
	if err := p.Send(context.Background(), 1, payload); err != nil {
		t.Fatalf("send should succeed after retry: %v", err)
	}
	if elapsed := time.Since(start); elapsed < sendBackoffStart {
		t.Fatalf("retry skipped the backoff: %v", elapsed)
	}
	if got := conn.buf.Len(); got != 4+len(payload) {
		t.Fatalf("wire carries %d bytes, want one frame of %d", got, 4+len(payload))
	}
	if p.Stats().BytesSent != int64(len(payload)) {
		t.Fatalf("stats counted %d, want %d", p.Stats().BytesSent, len(payload))
	}
}

func TestTCPSendNoRetryAfterPartialWrite(t *testing.T) {
	// Once part of a frame is on the wire, a retry would corrupt the byte
	// stream for every later frame — the error must be final.
	conn := &stubConn{failures: 1, partial: true, fail: stubTimeoutErr{}}
	p := stubTCPPeer(conn)
	err := p.Send(context.Background(), 1, []byte("broken"))
	if err == nil {
		t.Fatal("partial write should fail the send")
	}
	if got := conn.writeCount(); got != 1 {
		t.Fatalf("send retried after partial write (%d writes)", got)
	}
}

func TestTCPSendNoRetryOnFatalError(t *testing.T) {
	conn := &stubConn{failures: 10, fail: errors.New("connection reset by peer")}
	p := stubTCPPeer(conn)
	if err := p.Send(context.Background(), 1, []byte("x")); err == nil {
		t.Fatal("fatal error should fail the send")
	}
	if got := conn.writeCount(); got != 1 {
		t.Fatalf("send retried a non-transient error (%d writes)", got)
	}
}

func TestTCPSendRetryBudgetExhausts(t *testing.T) {
	conn := &stubConn{failures: sendRetries + 1, fail: stubTimeoutErr{}}
	p := stubTCPPeer(conn)
	if err := p.Send(context.Background(), 1, []byte("x")); !transientNetErr(err) {
		t.Fatalf("exhausted retries should surface the net timeout, got %v", err)
	}
	if got := conn.writeCount(); got != sendRetries {
		t.Fatalf("made %d attempts, want %d", got, sendRetries)
	}
}
