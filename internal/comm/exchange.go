package comm

import (
	"context"
	"fmt"

	"voltage/internal/partition"
	"voltage/internal/tensor"
)

// Exchange bundles the per-goroutine reusable resources of the matrix
// collectives: an encode scratch buffer and a matrix pool. One Exchange
// belongs to exactly one goroutine (a worker loop, the dispatcher, or the
// collector); the pool it references may be shared across goroutines.
//
// The scratch reuse relies on the Peer contract that Send does not retain
// the payload after it returns — the in-memory mesh copies on send, the TCP
// transport writes to the socket before returning.
type Exchange struct {
	buf  []byte
	pool *tensor.MatrixPool
}

// NewExchange returns an Exchange drawing matrices from pool (nil disables
// matrix pooling but still reuses the encode scratch).
func NewExchange(pool *tensor.MatrixPool) *Exchange {
	return &Exchange{pool: pool}
}

// Pool returns the matrix pool (possibly nil).
func (ex *Exchange) Pool() *tensor.MatrixPool { return ex.pool }

// Encode serializes m into the exchange's scratch buffer and returns it.
// The returned slice is invalidated by the next Encode on this Exchange, so
// it must be handed to Send (which does not retain it) before then.
func (ex *Exchange) Encode(m *tensor.Matrix) []byte {
	ex.buf = tensor.Encode(ex.buf[:0], m)
	return ex.buf
}

// AllGatherMatrix is Voltage's between-layer synchronization with buffer
// reuse: every rank contributes its output partition `mine` (rows
// ranges[rank] of the full matrix) and receives the assembled full matrix,
// drawn from the exchange's pool. Received blobs are released back to the
// transport's buffer pool and decoded partitions are recycled, so the
// steady-state cost is one pooled matrix per call.
//
// ranges must be the partition scheme's ranges for the current sequence
// length, identical on every rank. When ring is true the ring all-gather is
// used; otherwise the naive direct exchange.
func (ex *Exchange) AllGatherMatrix(ctx context.Context, p Peer, mine *tensor.Matrix, ranges []partition.Range, ring bool) (*tensor.Matrix, error) {
	if len(ranges) != p.Size() {
		return nil, fmt.Errorf("comm: %d ranges for %d peers", len(ranges), p.Size())
	}
	r := ranges[p.Rank()]
	if mine.Rows() != r.Len() {
		return nil, fmt.Errorf("comm: partition has %d rows, range %v wants %d", mine.Rows(), r, r.Len())
	}
	total := 0
	cols := mine.Cols()
	contiguous := true
	for _, rr := range ranges {
		if rr.From != total {
			contiguous = false
		}
		total += rr.Len()
	}

	gather := AllGather
	if ring {
		gather = RingAllGather
	}
	blobs, err := gather(ctx, p, ex.Encode(mine))
	if err != nil {
		return nil, err
	}
	// A pooled matrix has unspecified contents, so it is only safe when the
	// ranges tile [0, total) exactly (which partition schemes guarantee);
	// otherwise fall back to a zeroed allocation, preserving the historical
	// semantics for irregular range sets.
	var out *tensor.Matrix
	if contiguous {
		out = ex.pool.Get(total, cols)
	} else {
		out = tensor.New(total, cols)
	}
	for rank, blob := range blobs {
		var part *tensor.Matrix
		if rank == p.Rank() {
			part = mine
		} else {
			decoded, _, err := tensor.DecodePooled(ex.pool, blob)
			if err != nil {
				return nil, fmt.Errorf("comm: allgather decode from %d: %w", rank, err)
			}
			part = decoded
		}
		rr := ranges[rank]
		if part.Rows() != rr.Len() || part.Cols() != cols {
			return nil, fmt.Errorf("comm: partition from %d is %dx%d, range %v wants %dx%d",
				rank, part.Rows(), part.Cols(), rr, rr.Len(), cols)
		}
		if !rr.Empty() {
			if err := out.SetRowSlice(rr.From, part); err != nil {
				return nil, err
			}
		}
		if rank != p.Rank() {
			ex.pool.Put(part)
			ReleaseBuffer(blob)
		}
	}
	return out, nil
}
