package comm

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"voltage/internal/netem"
)

// NewTCPMesh joins a cross-process full mesh: the caller is rank `rank` of
// len(addrs) peers, listens on addrs[rank], accepts connections from every
// higher rank and dials every lower rank (retrying until the remote
// listener is up or ctx expires). All processes must share the same addrs
// list.
//
// This is the transport behind cmd/voltage-worker: each edge device runs
// one process and the mesh assembles itself from the shared address list.
func NewTCPMesh(ctx context.Context, rank int, addrs []string, profile netem.Profile) (*TCPPeer, error) {
	k := len(addrs)
	if k < 1 {
		return nil, fmt.Errorf("comm: empty address list")
	}
	if rank < 0 || rank >= k {
		return nil, fmt.Errorf("comm: rank %d of %d", rank, k)
	}
	p := newTCPPeer(rank, k, profile)
	if k == 1 {
		return p, nil
	}

	l, err := net.Listen("tcp", addrs[rank])
	if err != nil {
		return nil, fmt.Errorf("comm: listen %s: %w", addrs[rank], err)
	}
	defer l.Close()

	var wg sync.WaitGroup
	errCh := make(chan error, k)

	// Accept from higher ranks.
	expected := k - 1 - rank
	if expected > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := 0; c < expected; c++ {
				if dl, ok := ctx.Deadline(); ok {
					type deadliner interface{ SetDeadline(time.Time) error }
					if d, ok := l.(deadliner); ok {
						_ = d.SetDeadline(dl)
					}
				}
				conn, err := l.Accept()
				if err != nil {
					errCh <- fmt.Errorf("comm: accept: %w", err)
					return
				}
				var hdr [4]byte
				if _, err := io.ReadFull(conn, hdr[:]); err != nil {
					errCh <- fmt.Errorf("comm: handshake read: %w", err)
					return
				}
				from := int(binary.LittleEndian.Uint32(hdr[:]))
				if from <= rank || from >= k || p.conns[from] != nil {
					errCh <- fmt.Errorf("comm: unexpected handshake rank %d", from)
					return
				}
				p.conns[from] = conn
			}
		}()
	}

	// Dial lower ranks with retry (peers may start in any order).
	for to := 0; to < rank; to++ {
		wg.Add(1)
		go func(to int) {
			defer wg.Done()
			conn, err := dialRetry(ctx, addrs[to])
			if err != nil {
				errCh <- fmt.Errorf("comm: dial rank %d (%s): %w", to, addrs[to], err)
				return
			}
			var hdr [4]byte
			binary.LittleEndian.PutUint32(hdr[:], uint32(rank))
			if _, err := conn.Write(hdr[:]); err != nil {
				errCh <- fmt.Errorf("comm: handshake write to %d: %w", to, err)
				return
			}
			p.conns[to] = conn
		}(to)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		_ = p.Close()
		return nil, err
	default:
	}
	return p, nil
}

// dialRetry dials with exponential backoff until success or ctx expiry.
func dialRetry(ctx context.Context, addr string) (net.Conn, error) {
	var d net.Dialer
	backoff := 50 * time.Millisecond
	for {
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			return conn, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(backoff):
		}
		if backoff < 2*time.Second {
			backoff *= 2
		}
	}
}
