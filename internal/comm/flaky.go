package comm

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"voltage/internal/netem"
)

// ErrInjected marks failures produced by the fault-injection wrapper.
var ErrInjected = errors.New("comm: injected failure")

// FlakyPeer wraps a Peer with deterministic fault injection for robustness
// tests: it can fail sends after a countdown, corrupt payloads, drop
// messages silently, stall receives (a hung device), or deliver late. All
// counters are global across links so tests can target "the n-th
// operation".
//
// Stats note: injected faults keep the clean path's byte accounting — a
// corrupted payload counts exactly the bytes the clean send would have
// counted, and a dropped message counts nothing on either side (it never
// reached the transport). Chaos runs must therefore not assert the paper's
// communication-volume formulas against a flaky mesh: drops remove whole
// messages from the totals and retried requests move extra traffic.
type FlakyPeer struct {
	// Inner is the wrapped peer.
	Inner Peer
	// FailSendAfter makes the (n+1)-th Send return ErrInjected (0 =
	// disabled; 1 means the first send fails).
	FailSendAfter int64
	// CorruptEvery corrupts every n-th sent payload by flipping its first
	// byte (0 = disabled). Zero-length payloads pass through.
	CorruptEvery int64
	// DropEvery silently discards every n-th sent message (0 = disabled):
	// the send "succeeds" but nothing arrives, modeling a lossy link with
	// no transport-level recovery.
	DropEvery int64
	// FailRecvAfter makes the n-th Recv (and every later one) return
	// ErrInjected — a device that dies at a scheduled operation (0 =
	// disabled; 1 means the first receive fails). Counted on the same
	// global receive counter as StallRecvAfter and DelayEvery, so chaos
	// tests can kill a rank at an exact protocol step: during batched
	// decoding a worker receives one frame per fused step, making the
	// fault's step index deterministic.
	FailRecvAfter int64
	// StallRecvAfter makes the (n+1)-th Recv (and every later one) block
	// until the context is cancelled or the peer is closed — a hung device
	// (0 = disabled; 1 means the first receive stalls).
	StallRecvAfter int64
	// DelayEvery delays every n-th Recv by Delay before delivering (0 =
	// disabled) — late delivery, for exercising deadline slack.
	DelayEvery int64
	// Delay is the extra latency applied by DelayEvery.
	Delay time.Duration

	sends atomic.Int64
	recvs atomic.Int64

	closeOnce sync.Once
	closedMu  sync.Mutex
	closed    chan struct{}
}

var _ Peer = (*FlakyPeer)(nil)

// Rank implements Peer.
func (f *FlakyPeer) Rank() int { return f.Inner.Rank() }

// Size implements Peer.
func (f *FlakyPeer) Size() int { return f.Inner.Size() }

// Send implements Peer with the configured fault behaviour.
func (f *FlakyPeer) Send(ctx context.Context, to int, data []byte) error {
	n := f.sends.Add(1)
	if f.FailSendAfter > 0 && n >= f.FailSendAfter {
		return ErrInjected
	}
	if f.DropEvery > 0 && n%f.DropEvery == 0 {
		return nil // swallowed
	}
	if f.CorruptEvery > 0 && n%f.CorruptEvery == 0 && len(data) > 0 {
		// The corrupted copy is pooled and released after the transport has
		// taken ownership, and its length equals the clean payload's, so
		// Stats() scopes above and below the wrapper count the corrupted
		// send identically to a clean one.
		corrupted := GetBuffer(len(data))
		copy(corrupted, data)
		corrupted[0] ^= 0xFF
		err := f.Inner.Send(ctx, to, corrupted)
		ReleaseBuffer(corrupted)
		return err
	}
	return f.Inner.Send(ctx, to, data)
}

// Recv implements Peer with the configured fault behaviour.
func (f *FlakyPeer) Recv(ctx context.Context, from int) ([]byte, error) {
	n := f.recvs.Add(1)
	if f.FailRecvAfter > 0 && n >= f.FailRecvAfter {
		return nil, ErrInjected
	}
	if f.StallRecvAfter > 0 && n >= f.StallRecvAfter {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-f.closedCh():
			return nil, ErrClosed
		}
	}
	if f.DelayEvery > 0 && n%f.DelayEvery == 0 && f.Delay > 0 {
		if err := netem.SleepUntil(ctx, time.Now().Add(f.Delay)); err != nil {
			return nil, err
		}
	}
	return f.Inner.Recv(ctx, from)
}

// closedCh lazily initializes the close-notification channel so the zero
// value of FlakyPeer stays usable, matching the existing tests.
func (f *FlakyPeer) closedCh() chan struct{} {
	f.closedMu.Lock()
	defer f.closedMu.Unlock()
	if f.closed == nil {
		f.closed = make(chan struct{})
	}
	return f.closed
}

// Stats implements Peer.
func (f *FlakyPeer) Stats() Stats { return f.Inner.Stats() }

// Flush delegates the optional Flusher capability to the wrapped peer, so
// chaos-wrapped meshes still flush fenced-attempt residue.
func (f *FlakyPeer) Flush() bool { return TryFlush(f.Inner) }

// Close implements Peer, also releasing any stalled receives.
func (f *FlakyPeer) Close() error {
	f.closeOnce.Do(func() { close(f.closedCh()) })
	return f.Inner.Close()
}
