package comm

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrInjected marks failures produced by the fault-injection wrapper.
var ErrInjected = errors.New("comm: injected failure")

// FlakyPeer wraps a Peer with deterministic fault injection for robustness
// tests: it can fail sends after a countdown, corrupt payloads, or drop
// messages silently. All counters are global across links so tests can
// target "the n-th operation".
type FlakyPeer struct {
	// Inner is the wrapped peer.
	Inner Peer
	// FailSendAfter makes the (n+1)-th Send return ErrInjected (0 =
	// disabled; 1 means the first send fails).
	FailSendAfter int64
	// CorruptEvery corrupts every n-th sent payload by flipping its first
	// byte (0 = disabled). Zero-length payloads pass through.
	CorruptEvery int64
	// DropEvery silently discards every n-th sent message (0 = disabled):
	// the send "succeeds" but nothing arrives, modeling a lossy link with
	// no transport-level recovery.
	DropEvery int64

	sends atomic.Int64
}

var _ Peer = (*FlakyPeer)(nil)

// Rank implements Peer.
func (f *FlakyPeer) Rank() int { return f.Inner.Rank() }

// Size implements Peer.
func (f *FlakyPeer) Size() int { return f.Inner.Size() }

// Send implements Peer with the configured fault behaviour.
func (f *FlakyPeer) Send(ctx context.Context, to int, data []byte) error {
	n := f.sends.Add(1)
	if f.FailSendAfter > 0 && n >= f.FailSendAfter {
		return ErrInjected
	}
	if f.DropEvery > 0 && n%f.DropEvery == 0 {
		return nil // swallowed
	}
	if f.CorruptEvery > 0 && n%f.CorruptEvery == 0 && len(data) > 0 {
		corrupted := make([]byte, len(data))
		copy(corrupted, data)
		corrupted[0] ^= 0xFF
		return f.Inner.Send(ctx, to, corrupted)
	}
	return f.Inner.Send(ctx, to, data)
}

// Recv implements Peer.
func (f *FlakyPeer) Recv(ctx context.Context, from int) ([]byte, error) {
	return f.Inner.Recv(ctx, from)
}

// Stats implements Peer.
func (f *FlakyPeer) Stats() Stats { return f.Inner.Stats() }

// Close implements Peer.
func (f *FlakyPeer) Close() error { return f.Inner.Close() }
