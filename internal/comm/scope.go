package comm

import "context"

// ScopedPeer wraps a Peer and counts only the traffic that flows through
// the wrapper. The serving runtime opens one scope per (request, device) and
// reads per-request comm.Stats straight off it — no more diffing the mesh's
// cumulative counters, which breaks down as soon as two requests overlap.
//
// A Subgroup built over a ScopedPeer delegates its transfers to the scope,
// so collective traffic inside a request is attributed to that request.
type ScopedPeer struct {
	base  Peer
	stats counters
}

var _ Peer = (*ScopedPeer)(nil)

// Scoped returns a fresh stat scope over base. The base peer's own counters
// keep accumulating; the scope starts at zero.
func Scoped(base Peer) *ScopedPeer { return &ScopedPeer{base: base} }

// Rank implements Peer.
func (s *ScopedPeer) Rank() int { return s.base.Rank() }

// Size implements Peer.
func (s *ScopedPeer) Size() int { return s.base.Size() }

// Send implements Peer, counting successful sends into the scope.
func (s *ScopedPeer) Send(ctx context.Context, to int, data []byte) error {
	if err := s.base.Send(ctx, to, data); err != nil {
		return err
	}
	s.stats.sent(len(data))
	return nil
}

// Recv implements Peer, counting successful receives into the scope.
func (s *ScopedPeer) Recv(ctx context.Context, from int) ([]byte, error) {
	blob, err := s.base.Recv(ctx, from)
	if err != nil {
		return nil, err
	}
	s.stats.received(len(blob))
	return blob, nil
}

// Stats returns the traffic counted through this scope only.
func (s *ScopedPeer) Stats() Stats { return s.stats.snapshot() }

// Flush delegates the optional Flusher capability to the wrapped peer;
// flushed residue is traffic that never reached a receiver, so no scope
// counters change.
func (s *ScopedPeer) Flush() bool { return TryFlush(s.base) }

// Close implements Peer by closing the underlying peer.
func (s *ScopedPeer) Close() error { return s.base.Close() }
