package comm

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Integrity-checked framing. Every payload crossing a FramedPeer carries a
// fixed 12-byte header:
//
//	offset  size  field
//	0       2     magic (0x564C, "VL")
//	2       1     version (currently 1)
//	3       1     flags (reserved, must be 0)
//	4       4     payload length, little-endian uint32
//	8       4     CRC32-Castagnoli of the payload, little-endian uint32
//
// A receiver that sees a bad magic, an unknown version, a length that
// disagrees with the message size, or a CRC mismatch returns ErrCorrupt
// (wrapped in a RemoteError naming the sender) instead of handing garbage
// bytes to the tensor decoder. The transports below already preserve
// message boundaries, so the length field is pure cross-validation.
//
// Stats discipline: FramedPeer keeps its own counters over payload bytes
// only — the 12-byte header is framing overhead and, per the Stats
// contract, excluded so the numbers stay comparable with the paper's
// communication formulas.

const (
	frameMagic   = 0x564C
	frameVersion = 1
	frameHeader  = 12
)

// frameTable is the CRC32 polynomial used for payload checksums.
var frameTable = crc32.MakeTable(crc32.Castagnoli)

// FramedPeer wraps a transport with the checksummed frame format above.
// Both ends of every link must be framed symmetrically.
type FramedPeer struct {
	base  Peer
	stats counters
	taps  []FaultTap
}

var _ Peer = (*FramedPeer)(nil)
var _ Flusher = (*FramedPeer)(nil)

// NewFramed wraps base so every payload is integrity-checked in transit.
// Optional taps observe every corrupt frame (blaming its sender); nil taps
// are skipped.
func NewFramed(base Peer, taps ...FaultTap) *FramedPeer {
	return &FramedPeer{base: base, taps: nonNilTaps(taps)}
}

// nonNilTaps drops nil entries so variadic call sites can pass a possibly
// unset tap without guarding.
func nonNilTaps(taps []FaultTap) []FaultTap {
	out := taps[:0]
	for _, t := range taps {
		if t != nil {
			out = append(out, t)
		}
	}
	return out
}

// Rank implements Peer.
func (p *FramedPeer) Rank() int { return p.base.Rank() }

// Size implements Peer.
func (p *FramedPeer) Size() int { return p.base.Size() }

// Send implements Peer, prepending the frame header. The framed copy is a
// pooled buffer released after the inner Send returns (the Peer contract
// guarantees the transport does not retain it).
func (p *FramedPeer) Send(ctx context.Context, to int, data []byte) error {
	buf := GetBuffer(frameHeader + len(data))
	binary.LittleEndian.PutUint16(buf, frameMagic)
	buf[2] = frameVersion
	buf[3] = 0
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(data)))
	binary.LittleEndian.PutUint32(buf[8:], crc32.Checksum(data, frameTable))
	copy(buf[frameHeader:], data)
	err := p.base.Send(ctx, to, buf)
	ReleaseBuffer(buf)
	if err != nil {
		return err
	}
	p.stats.sent(len(data))
	return nil
}

// Recv implements Peer, validating the frame before releasing the payload
// to the caller. Corruption resolves as ErrCorrupt attributed to the
// sender; the returned payload aliases the transport's buffer past the
// header, so callers may still ReleaseBuffer it after decoding.
func (p *FramedPeer) Recv(ctx context.Context, from int) ([]byte, error) {
	blob, err := p.base.Recv(ctx, from)
	if err != nil {
		return nil, err
	}
	if err := verifyFrame(blob); err != nil {
		ReleaseBuffer(blob)
		for _, tap := range p.taps {
			tap(FaultCorrupt, from)
		}
		return nil, &RemoteError{Rank: from, Err: err}
	}
	payload := blob[frameHeader:]
	p.stats.received(len(payload))
	return payload, nil
}

// verifyFrame checks one framed message, returning an ErrCorrupt-wrapped
// description of the first violation.
func verifyFrame(blob []byte) error {
	if len(blob) < frameHeader {
		return fmt.Errorf("%w: short frame (%d bytes)", ErrCorrupt, len(blob))
	}
	if m := binary.LittleEndian.Uint16(blob); m != frameMagic {
		return fmt.Errorf("%w: bad magic %#04x", ErrCorrupt, m)
	}
	if v := blob[2]; v != frameVersion {
		return fmt.Errorf("%w: unsupported frame version %d", ErrCorrupt, v)
	}
	if blob[3] != 0 {
		return fmt.Errorf("%w: reserved flags %#02x", ErrCorrupt, blob[3])
	}
	n := binary.LittleEndian.Uint32(blob[4:])
	if int(n) != len(blob)-frameHeader {
		return fmt.Errorf("%w: declared %d payload bytes, frame carries %d", ErrCorrupt, n, len(blob)-frameHeader)
	}
	want := binary.LittleEndian.Uint32(blob[8:])
	if got := crc32.Checksum(blob[frameHeader:], frameTable); got != want {
		return fmt.Errorf("%w: crc %#08x, want %#08x", ErrCorrupt, got, want)
	}
	return nil
}

// Stats implements Peer with payload-only counters (framing overhead
// excluded, matching the paper's communication-size accounting).
func (p *FramedPeer) Stats() Stats { return p.stats.snapshot() }

// Flush delegates the optional Flusher capability to the wrapped transport,
// so fencing through a framed peer reaches the mesh's buffered links.
func (p *FramedPeer) Flush() bool { return TryFlush(p.base) }

// Close implements Peer by closing the underlying transport.
func (p *FramedPeer) Close() error { return p.base.Close() }
