package comm

import (
	"context"
	"fmt"

	"voltage/internal/partition"
	"voltage/internal/quantize"
	"voltage/internal/tensor"
)

// AllGatherMatrixQ is AllGatherMatrix with int8 activation quantization on
// the wire: each rank quantizes its partition (per-row absmax), the blobs
// are exchanged at ≈¼ the float32 size, and every rank dequantizes into
// the assembled matrix. The result is approximate within
// quantize.MaxError of each contribution; the surrounding layer norms keep
// the error from compounding across layers.
func AllGatherMatrixQ(ctx context.Context, p Peer, mine *tensor.Matrix, ranges []partition.Range, ring bool) (*tensor.Matrix, error) {
	if len(ranges) != p.Size() {
		return nil, fmt.Errorf("comm: %d ranges for %d peers", len(ranges), p.Size())
	}
	r := ranges[p.Rank()]
	if mine.Rows() != r.Len() {
		return nil, fmt.Errorf("comm: partition has %d rows, range %v wants %d", mine.Rows(), r, r.Len())
	}
	total := 0
	cols := mine.Cols()
	for _, rr := range ranges {
		total += rr.Len()
	}

	gather := AllGather
	if ring {
		gather = RingAllGather
	}
	blobs, err := gather(ctx, p, quantize.Encode(nil, quantize.Quantize(mine)))
	if err != nil {
		return nil, err
	}
	out := tensor.New(total, cols)
	for rank, blob := range blobs {
		q, _, err := quantize.Decode(blob)
		if err != nil {
			return nil, fmt.Errorf("comm: quantized allgather decode from %d: %w", rank, err)
		}
		part := q.Dequantize()
		rr := ranges[rank]
		if part.Rows() != rr.Len() || part.Cols() != cols {
			return nil, fmt.Errorf("comm: partition from %d is %dx%d, range %v wants %dx%d",
				rank, part.Rows(), part.Cols(), rr, rr.Len(), cols)
		}
		if rr.Empty() {
			continue
		}
		if err := out.SetRowSlice(rr.From, part); err != nil {
			return nil, err
		}
	}
	return out, nil
}
