package comm

import (
	"context"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	"voltage/internal/netem"
)

// framedPair wraps both ends of a two-peer mem mesh symmetrically.
func framedPair(t *testing.T) (*FramedPeer, *FramedPeer) {
	t.Helper()
	peers := memPair(t, 2, netem.Unlimited)
	return NewFramed(peers[0]), NewFramed(peers[1])
}

func TestFramedRoundTrip(t *testing.T) {
	a, b := framedPair(t)
	ctx := context.Background()
	for _, payload := range [][]byte{
		[]byte("hello"),
		{},  // zero-payload frames are valid (generation shutdown uses them)
		{0}, // single byte
	} {
		go func() { _ = a.Send(ctx, 1, payload) }()
		got, err := b.Recv(ctx, 0)
		if err != nil {
			t.Fatalf("recv %q: %v", payload, err)
		}
		if string(got) != string(payload) {
			t.Fatalf("round trip: got %q, want %q", got, payload)
		}
	}
}

func TestFramedDetectsCorruption(t *testing.T) {
	// A bit flip anywhere in the framed message (here: the first byte, via
	// FlakyPeer) must resolve as ErrCorrupt attributed to the sender.
	peers := memPair(t, 2, netem.Unlimited)
	sender := NewFramed(&FlakyPeer{Inner: peers[0], CorruptEvery: 1})
	receiver := NewFramed(peers[1])
	ctx := context.Background()
	go func() { _ = sender.Send(ctx, 1, []byte("payload")) }()
	_, err := receiver.Recv(ctx, 0)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
	if r, ok := RemoteRank(err); !ok || r != 0 {
		t.Fatalf("corruption should blame sender rank 0, got (%d, %v)", r, ok)
	}
}

func TestFramedStatsCountPayloadOnly(t *testing.T) {
	a, b := framedPair(t)
	ctx := context.Background()
	payload := make([]byte, 100)
	go func() { _ = a.Send(ctx, 1, payload) }()
	if _, err := b.Recv(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if got := a.Stats().BytesSent; got != int64(len(payload)) {
		t.Fatalf("framed sender counted %d bytes, want payload-only %d", got, len(payload))
	}
	if got := b.Stats().BytesRecv; got != int64(len(payload)) {
		t.Fatalf("framed receiver counted %d bytes, want payload-only %d", got, len(payload))
	}
}

// buildFrame assembles a valid frame for direct verifyFrame tests.
func buildFrame(payload []byte) []byte {
	buf := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint16(buf, frameMagic)
	buf[2] = frameVersion
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[8:], crc32.Checksum(payload, frameTable))
	copy(buf[frameHeader:], payload)
	return buf
}

func TestVerifyFrameViolations(t *testing.T) {
	payload := []byte("abcdef")
	mutate := map[string]func([]byte) []byte{
		"short frame":     func(f []byte) []byte { return f[:frameHeader-1] },
		"bad magic":       func(f []byte) []byte { f[0] ^= 0xFF; return f },
		"bad version":     func(f []byte) []byte { f[2] = 99; return f },
		"nonzero flags":   func(f []byte) []byte { f[3] = 1; return f },
		"length mismatch": func(f []byte) []byte { binary.LittleEndian.PutUint32(f[4:], 3); return f },
		"payload flip":    func(f []byte) []byte { f[frameHeader] ^= 0x01; return f },
		"crc flip":        func(f []byte) []byte { f[8] ^= 0x01; return f },
	}
	if err := verifyFrame(buildFrame(payload)); err != nil {
		t.Fatalf("clean frame rejected: %v", err)
	}
	if err := verifyFrame(buildFrame(nil)); err != nil {
		t.Fatalf("clean empty frame rejected: %v", err)
	}
	for name, m := range mutate {
		if err := verifyFrame(m(buildFrame(payload))); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: want ErrCorrupt, got %v", name, err)
		}
	}
}

func TestFramedOverTCP(t *testing.T) {
	// The frame survives the TCP transport's own length-prefixed framing.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	raw, err := NewLocalTCPMesh(ctx, 2, netem.Unlimited)
	if err != nil {
		t.Fatal(err)
	}
	a, b := NewFramed(raw[0]), NewFramed(raw[1])
	defer a.Close()
	defer b.Close()
	payload := []byte("over tcp")
	go func() { _ = a.Send(ctx, 1, payload) }()
	got, err := b.Recv(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("got %q, want %q", got, payload)
	}
}
