// Package sched is the inference gateway's admission scheduler: the tier
// that turns the cluster's raw Submit API into a *served* workload with
// throughput and latency SLOs.
//
// The cluster's own admission queue is a single bounded FIFO — it blocks
// an overloaded caller, lets a prefill-heavy generation request fence
// cheap classification traffic behind it, and keeps no notion of
// deadlines. The scheduler sits in front of the engine and adds the
// serving policy the cluster deliberately does not have:
//
//   - bounded per-class queues (interactive vs. batch) with explicit load
//     shedding: a full queue rejects immediately with ErrQueueFull instead
//     of blocking the caller;
//   - per-request deadlines with deadline-aware ordering: within a class,
//     the request that will miss its SLO first runs first (EDF), and a
//     request whose deadline would expire before it could be served is
//     shed up front with ErrDeadlineBeforeService rather than wasting mesh
//     time on an answer nobody can use;
//   - fairness between classes: interactive requests are preferred, but
//     batch work is guaranteed one dispatch per InteractiveBurst
//     interactive dispatches, so generation never starves and
//     classification never waits behind an unbounded batch backlog;
//   - eager shedding on cluster degradation: when the health tracker
//     reports lost workers, batch traffic is shed at the door (and all
//     traffic once no worker survives) so the surviving capacity serves
//     the interactive SLO;
//   - graceful drain: Drain stops admission (new requests shed with
//     ErrDraining), lets queued and in-flight requests finish, and bounds
//     the wait with a context.
//
// Queued requests whose caller gives up are withdrawn: Do returns the
// caller's context error immediately and the entry is dropped from the
// queue — it never reaches the engine (mirroring the cluster dispatcher's
// own canceled-in-queue drop).
package sched

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"voltage/internal/metrics"
)

// Typed shed errors. The HTTP gateway maps these onto 429/503; embedders
// match them with errors.Is.
var (
	// ErrQueueFull rejects a request whose class queue is at capacity —
	// the caller should back off and retry (HTTP 429).
	ErrQueueFull = errors.New("sched: queue full")
	// ErrDeadlineBeforeService rejects a request whose deadline would
	// expire before the scheduler could serve it — running it would waste
	// mesh time on an answer nobody can use (HTTP 429).
	ErrDeadlineBeforeService = errors.New("sched: deadline expires before service")
	// ErrDraining rejects new requests while the scheduler drains for
	// shutdown (HTTP 503).
	ErrDraining = errors.New("sched: draining")
	// ErrDegraded sheds load because the cluster lost workers: batch
	// traffic under partial degradation, everything once no worker
	// survives (HTTP 503).
	ErrDegraded = errors.New("sched: cluster degraded")
)

// Class is a request's SLO class.
type Class int

// SLO classes.
const (
	// Interactive is latency-sensitive work: classification, single
	// embeddings — cheap, non-exclusive requests the mesh can pipeline.
	Interactive Class = iota
	// Batch is throughput work: prefill-heavy generation and pipeline
	// runs, which fence the mesh and are first to shed under pressure.
	Batch
	numClasses
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Interactive:
		return "interactive"
	case Batch:
		return "batch"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// ParseClass resolves a class name ("interactive", "batch").
func ParseClass(s string) (Class, error) {
	switch s {
	case "interactive", "":
		return Interactive, nil
	case "batch":
		return Batch, nil
	default:
		return 0, fmt.Errorf("sched: unknown class %q", s)
	}
}

// ClusterState is the health summary the scheduler sheds on.
type ClusterState struct {
	// Degraded reports at least one worker excluded from serving.
	Degraded bool
	// Dead reports no worker surviving at all.
	Dead bool
}

// Options configures a Scheduler. The zero value is usable: defaults are
// applied by New.
type Options struct {
	// InteractiveDepth bounds the interactive queue (default 64).
	InteractiveDepth int
	// BatchDepth bounds the batch queue (default 16).
	BatchDepth int
	// Workers is how many requests may be in service concurrently
	// (default 4). The engine beneath pipelines them through the mesh;
	// this bounds how many occupy its admission queue.
	Workers int
	// InteractiveBurst is the fairness ratio: at most this many
	// consecutive interactive dispatches while batch work waits
	// (default 4). 1 alternates strictly.
	InteractiveBurst int
	// DefaultDeadline is applied to jobs that carry none (default 0 =
	// unbounded).
	DefaultDeadline time.Duration
	// Health, when non-nil, is consulted at admission: Degraded sheds
	// batch work, Dead sheds everything (ErrDegraded).
	Health func() ClusterState
	// Registry, when non-nil, receives the gateway metric families
	// (per-class queue depth, time-in-queue, shed counts by cause).
	Registry *metrics.Registry
	// OnShed, when non-nil, observes every shed decision (the gateway
	// feeds these to the flight recorder). Called under the scheduler's
	// lock: it must be fast and must not call back into the scheduler.
	OnShed func(class Class, cause string)
}

// Job is one unit of admitted work.
type Job struct {
	// Class selects the queue and shed policy.
	Class Class
	// Deadline, when non-zero, is the caller's SLO: jobs are ordered
	// earliest-deadline-first and shed when it cannot be met. The job's
	// context is additionally bounded by it.
	Deadline time.Time
	// Est is the expected service time, used for the
	// deadline-before-service check (0 skips the estimate and sheds only
	// already-expired deadlines).
	Est time.Duration
	// EstFn, when non-nil, supersedes Est at each check (admission and the
	// pre-dispatch recheck). A batch-aware backend divides its serial
	// estimate by the current fused-batch width here, so shed-before-
	// service does not overestimate service time for fused decode steps.
	EstFn func() time.Duration
	// Run executes the request. waited is the time the job spent queued —
	// the gateway turns it into a queue span on the request trace. The
	// context carries the job's deadline and the caller's cancellation.
	Run func(ctx context.Context, waited time.Duration) error
}

// est resolves the job's service-time estimate at check time.
func (j Job) est() time.Duration {
	if j.EstFn != nil {
		return j.EstFn()
	}
	return j.Est
}

// item is one queued job.
type item struct {
	job  Job
	ctx  context.Context
	seq  uint64
	enq  time.Time
	dl   time.Time // zero = none
	idx  int       // heap index; -1 once dequeued or withdrawn
	err  error
	done chan struct{}
}

// classQueue is one class's bounded EDF heap. Jobs with deadlines order
// before jobs without; ties and deadline-free jobs fall back to admission
// order.
type classQueue struct {
	cap   int
	items []*item
}

func (q *classQueue) Len() int { return len(q.items) }

func (q *classQueue) Less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	switch {
	case a.dl.IsZero() != b.dl.IsZero():
		return !a.dl.IsZero() // deadlines first
	case !a.dl.IsZero() && !a.dl.Equal(b.dl):
		return a.dl.Before(b.dl)
	default:
		return a.seq < b.seq
	}
}

func (q *classQueue) Swap(i, j int) {
	q.items[i], q.items[j] = q.items[j], q.items[i]
	q.items[i].idx = i
	q.items[j].idx = j
}

func (q *classQueue) Push(x any) {
	it := x.(*item)
	it.idx = len(q.items)
	q.items = append(q.items, it)
}

func (q *classQueue) Pop() any {
	n := len(q.items)
	it := q.items[n-1]
	q.items[n-1] = nil
	q.items = q.items[:n-1]
	it.idx = -1
	return it
}

// shed causes, used both as metric label values and Stats keys.
const (
	shedFull     = "queue_full"
	shedDeadline = "deadline"
	shedDegraded = "degraded"
	shedDraining = "draining"
	shedCanceled = "canceled"
)

// Scheduler is the admission scheduler. Construct with New; all methods
// are safe for concurrent use.
type Scheduler struct {
	opts Options

	mu       sync.Mutex
	cond     *sync.Cond
	queues   [numClasses]*classQueue
	seq      uint64
	draining bool
	closed   bool
	inflight int
	// interactiveRun counts consecutive interactive dispatches since the
	// last batch dispatch — the fairness state.
	interactiveRun int

	// Lifetime accounting (mirrored into the metrics registry when one is
	// wired; kept here too so Stats works without metrics).
	admitted [numClasses]uint64
	served   [numClasses]uint64
	failed   [numClasses]uint64
	shed     map[string]uint64

	workers sync.WaitGroup

	m *gatewayMetrics
}

// New builds a scheduler and starts its worker pool.
func New(opts Options) *Scheduler {
	if opts.InteractiveDepth <= 0 {
		opts.InteractiveDepth = 64
	}
	if opts.BatchDepth <= 0 {
		opts.BatchDepth = 16
	}
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	if opts.InteractiveBurst <= 0 {
		opts.InteractiveBurst = 4
	}
	s := &Scheduler{
		opts: opts,
		shed: make(map[string]uint64),
		m:    newGatewayMetrics(opts.Registry),
	}
	s.cond = sync.NewCond(&s.mu)
	s.queues[Interactive] = &classQueue{cap: opts.InteractiveDepth}
	s.queues[Batch] = &classQueue{cap: opts.BatchDepth}
	s.workers.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go s.worker()
	}
	return s
}

// Do admits job and blocks until it has run (returning Run's error) or was
// shed (returning the typed shed error). A caller context that ends while
// the job is still queued withdraws it — the job never runs and Do returns
// the context's error.
func (s *Scheduler) Do(ctx context.Context, job Job) error {
	if job.Run == nil {
		return fmt.Errorf("sched: nil Run")
	}
	if job.Class < 0 || job.Class >= numClasses {
		return fmt.Errorf("sched: unknown class %d", int(job.Class))
	}
	it, err := s.admit(ctx, job)
	if err != nil {
		return err
	}
	select {
	case <-it.done:
		return it.err
	case <-ctx.Done():
		if s.withdraw(it) {
			return ctx.Err()
		}
		// Already dispatched: the run sees the canceled context and
		// resolves shortly.
		<-it.done
		return it.err
	}
}

// admit applies the shed policy and enqueues the job.
func (s *Scheduler) admit(ctx context.Context, job Job) (*item, error) {
	now := time.Now()
	dl := job.Deadline
	if dl.IsZero() && s.opts.DefaultDeadline > 0 {
		dl = now.Add(s.opts.DefaultDeadline)
	}
	// The caller's context deadline is an SLO too: fold the tighter one in.
	if cdl, ok := ctx.Deadline(); ok && (dl.IsZero() || cdl.Before(dl)) {
		dl = cdl
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.draining || s.closed:
		s.shedLocked(job.Class, shedDraining)
		return nil, ErrDraining
	case ctx.Err() != nil:
		s.shedLocked(job.Class, shedCanceled)
		return nil, ctx.Err()
	}
	if h := s.opts.Health; h != nil {
		state := h()
		if state.Dead || (state.Degraded && job.Class == Batch) {
			s.shedLocked(job.Class, shedDegraded)
			if state.Dead {
				return nil, fmt.Errorf("%w: no worker serving", ErrDegraded)
			}
			return nil, fmt.Errorf("%w: batch traffic shed while degraded", ErrDegraded)
		}
	}
	if !dl.IsZero() && now.Add(job.est()).After(dl) {
		s.shedLocked(job.Class, shedDeadline)
		return nil, ErrDeadlineBeforeService
	}
	q := s.queues[job.Class]
	if q.Len() >= q.cap {
		s.shedLocked(job.Class, shedFull)
		return nil, ErrQueueFull
	}
	s.seq++
	it := &item{
		job: job, ctx: ctx, seq: s.seq, enq: now, dl: dl,
		done: make(chan struct{}),
	}
	heap.Push(q, it)
	s.admitted[job.Class]++
	s.m.admitted(job.Class, q.Len())
	s.cond.Signal()
	return it, nil
}

// withdraw removes a still-queued item after its caller gave up. Returns
// false when the item was already dequeued (it will resolve via done).
func (s *Scheduler) withdraw(it *item) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if it.idx < 0 {
		return false
	}
	q := s.queues[it.job.Class]
	heap.Remove(q, it.idx)
	s.shedLocked(it.job.Class, shedCanceled)
	s.m.depth(it.job.Class, q.Len())
	it.err = it.ctx.Err()
	close(it.done)
	return true
}

// shedLocked counts one shed decision. Callers hold s.mu.
func (s *Scheduler) shedLocked(class Class, cause string) {
	s.shed[cause]++
	s.m.shed(class, cause)
	if s.opts.OnShed != nil {
		s.opts.OnShed(class, cause)
	}
}

// next pops the job to run per the dispatch policy, blocking until one is
// available or the scheduler is done. Returns nil when the worker should
// exit (closed, or draining with empty queues).
func (s *Scheduler) next() *item {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return nil
		}
		if it := s.pickLocked(); it != nil {
			s.inflight++
			s.m.inflight(1)
			return it
		}
		if s.draining {
			return nil
		}
		s.cond.Wait()
	}
}

// pickLocked applies the fairness policy: interactive first, but after
// InteractiveBurst consecutive interactive dispatches that made batch work
// wait, a waiting batch job takes the slot. Within a class the EDF heap
// orders the pop.
//
// The burst counter only measures interactive dispatches issued while
// batch work was actually queued behind them: it stays zero through an
// interactive-only stretch, so a batch job arriving fresh cannot cash in a
// stale "burst credit" and preempt interactive traffic it never waited
// behind.
func (s *Scheduler) pickLocked() *item {
	qi, qb := s.queues[Interactive], s.queues[Batch]
	if qb.Len() == 0 {
		s.interactiveRun = 0
	}
	var class Class
	switch {
	case qi.Len() == 0 && qb.Len() == 0:
		return nil
	case qi.Len() == 0:
		class = Batch
	case qb.Len() == 0:
		class = Interactive
	case s.interactiveRun >= s.opts.InteractiveBurst:
		class = Batch
	default:
		class = Interactive
	}
	if class == Interactive {
		if qb.Len() > 0 {
			s.interactiveRun++
		}
	} else {
		s.interactiveRun = 0
	}
	it := heap.Pop(s.queues[class]).(*item)
	s.m.depth(class, s.queues[class].Len())
	return it
}

// worker is one dispatch loop: pick, check, run, resolve.
func (s *Scheduler) worker() {
	defer s.workers.Done()
	for {
		it := s.next()
		if it == nil {
			return
		}
		s.run(it)
		s.mu.Lock()
		s.inflight--
		s.m.inflight(-1)
		s.mu.Unlock()
		s.cond.Broadcast() // wake Drain waiters and idle peers
	}
}

// run executes one dequeued job, applying the last-moment shed checks.
func (s *Scheduler) run(it *item) {
	waited := time.Since(it.enq)
	s.m.waited(it.job.Class, waited)
	var err error
	switch {
	case it.ctx.Err() != nil:
		// Withdrawn races aside, the caller is gone: don't touch the mesh.
		s.mu.Lock()
		s.shedLocked(it.job.Class, shedCanceled)
		s.mu.Unlock()
		err = it.ctx.Err()
	case !it.dl.IsZero() && time.Now().Add(it.job.est()).After(it.dl):
		// The queue wait consumed the deadline's slack: shed now instead
		// of starting work that cannot finish in time.
		s.mu.Lock()
		s.shedLocked(it.job.Class, shedDeadline)
		s.mu.Unlock()
		err = ErrDeadlineBeforeService
	default:
		ctx := it.ctx
		if !it.dl.IsZero() {
			var cancel context.CancelFunc
			ctx, cancel = context.WithDeadline(ctx, it.dl)
			defer cancel()
		}
		err = it.job.Run(ctx, waited)
		s.mu.Lock()
		if err == nil {
			s.served[it.job.Class]++
		} else {
			s.failed[it.job.Class]++
		}
		s.m.served(it.job.Class, err)
		s.mu.Unlock()
	}
	it.err = err
	close(it.done)
}

// Drain stops admission and waits for queued plus in-flight work to
// finish. New requests shed with ErrDraining from the moment it is called.
// The context bounds the wait; on expiry the remaining queued jobs are
// failed with ErrDraining and ctx.Err() is returned. Drain is idempotent;
// after it returns the scheduler's workers have exited.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.cond.Broadcast()
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Budget exhausted: fail what is still queued and stop admitting.
		// In-flight jobs are abandoned to their own contexts — waiting for
		// them here could block past the caller's budget.
		s.mu.Lock()
		s.closed = true
		for _, q := range s.queues {
			for q.Len() > 0 {
				it := heap.Pop(q).(*item)
				s.shedLocked(it.job.Class, shedDraining)
				it.err = ErrDraining
				close(it.done)
			}
		}
		s.m.depth(Interactive, 0)
		s.m.depth(Batch, 0)
		s.cond.Broadcast()
		s.mu.Unlock()
		return ctx.Err()
	}
}

// Close abandons everything: queued jobs fail with ErrDraining, workers
// exit once their current job finishes. Prefer Drain for graceful
// shutdown.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.draining = true
	s.closed = true
	for _, q := range s.queues {
		for q.Len() > 0 {
			it := heap.Pop(q).(*item)
			s.shedLocked(it.job.Class, shedDraining)
			it.err = ErrDraining
			close(it.done)
		}
	}
	s.m.depth(Interactive, 0)
	s.m.depth(Batch, 0)
	s.cond.Broadcast()
	s.mu.Unlock()
	s.workers.Wait()
}

// ClassStats is one class's point-in-time queue report.
type ClassStats struct {
	Class    string `json:"class"`
	Depth    int    `json:"depth"`
	Capacity int    `json:"capacity"`
	Admitted uint64 `json:"admitted"`
	Served   uint64 `json:"served"`
	Failed   uint64 `json:"failed"`
}

// Stats is the scheduler's point-in-time report, served on /v1/queue.
type Stats struct {
	Draining bool              `json:"draining"`
	Inflight int               `json:"inflight"`
	Workers  int               `json:"workers"`
	Classes  []ClassStats      `json:"classes"`
	Shed     map[string]uint64 `json:"shed,omitempty"`
}

// Stats reports the scheduler's current state.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Draining: s.draining,
		Inflight: s.inflight,
		Workers:  s.opts.Workers,
		Shed:     make(map[string]uint64, len(s.shed)),
	}
	for cause, n := range s.shed {
		st.Shed[cause] = n
	}
	for c := Class(0); c < numClasses; c++ {
		st.Classes = append(st.Classes, ClassStats{
			Class:    c.String(),
			Depth:    s.queues[c].Len(),
			Capacity: s.queues[c].cap,
			Admitted: s.admitted[c],
			Served:   s.served[c],
			Failed:   s.failed[c],
		})
	}
	return st
}
