package sched

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"voltage/internal/metrics"
)

// blockOne returns a job that parks in Run until release is closed,
// recording its start on started.
func blockOne(class Class, started chan<- struct{}, release <-chan struct{}) Job {
	return Job{Class: class, Run: func(ctx context.Context, _ time.Duration) error {
		if started != nil {
			started <- struct{}{}
		}
		select {
		case <-release:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}}
}

// occupy fills the scheduler's single worker with a parked job and returns
// its release function plus the Do error channel.
func occupy(t *testing.T, s *Scheduler, class Class) (release func(), errCh <-chan error) {
	t.Helper()
	started := make(chan struct{}, 1)
	rel := make(chan struct{})
	ch := make(chan error, 1)
	go func() { ch <- s.Do(context.Background(), blockOne(class, started, rel)) }()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never picked up the occupying job")
	}
	var once sync.Once
	return func() { once.Do(func() { close(rel) }) }, ch
}

func TestRunsAndReturnsErrors(t *testing.T) {
	s := New(Options{})
	defer s.Close()
	ran := false
	if err := s.Do(context.Background(), Job{Run: func(context.Context, time.Duration) error {
		ran = true
		return nil
	}}); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("job never ran")
	}
	boom := errors.New("boom")
	if err := s.Do(context.Background(), Job{Run: func(context.Context, time.Duration) error {
		return boom
	}}); !errors.Is(err, boom) {
		t.Fatalf("Do = %v, want boom", err)
	}
	if err := s.Do(context.Background(), Job{}); err == nil {
		t.Fatal("nil Run accepted")
	}
}

func TestQueueFullSheds(t *testing.T) {
	s := New(Options{Workers: 1, InteractiveDepth: 1})
	defer s.Close()
	release, occ := occupy(t, s, Interactive)

	// One fits in the queue, the second is shed immediately.
	queuedErr := make(chan error, 1)
	queued := Job{Run: func(context.Context, time.Duration) error { return nil }}
	go func() { queuedErr <- s.Do(context.Background(), queued) }()
	waitDepth(t, s, Interactive, 1)

	start := time.Now()
	err := s.Do(context.Background(), Job{Run: func(context.Context, time.Duration) error { return nil }})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Do on full queue = %v, want ErrQueueFull", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("shed took %v, want immediate rejection", d)
	}

	release()
	if err := <-occ; err != nil {
		t.Fatal(err)
	}
	if err := <-queuedErr; err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Shed[shedFull] != 1 {
		t.Errorf("shed[queue_full] = %d, want 1", st.Shed[shedFull])
	}
}

// waitDepth polls until class's queue depth reaches want.
func waitDepth(t *testing.T, s *Scheduler, class Class, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, cs := range s.Stats().Classes {
			if cs.Class == class.String() && cs.Depth >= want {
				return
			}
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("queue %v never reached depth %d", class, want)
}

func TestDeadlineBeforeServiceSheds(t *testing.T) {
	s := New(Options{})
	defer s.Close()
	err := s.Do(context.Background(), Job{
		Deadline: time.Now().Add(10 * time.Millisecond),
		Est:      time.Second,
		Run:      func(context.Context, time.Duration) error { t.Error("doomed job ran"); return nil },
	})
	if !errors.Is(err, ErrDeadlineBeforeService) {
		t.Fatalf("Do = %v, want ErrDeadlineBeforeService", err)
	}
	// The caller's context deadline is folded in as the job deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err = s.Do(ctx, Job{Est: time.Second, Run: func(context.Context, time.Duration) error {
		t.Error("doomed job ran")
		return nil
	}})
	if !errors.Is(err, ErrDeadlineBeforeService) {
		t.Fatalf("Do with tight ctx = %v, want ErrDeadlineBeforeService", err)
	}
}

func TestEstFnSupersedesEst(t *testing.T) {
	s := New(Options{})
	defer s.Close()
	// The static estimate alone would shed this job; a batch-aware EstFn
	// (serial estimate over the fused width) fits inside the deadline, so
	// the job must run.
	ran := false
	err := s.Do(context.Background(), Job{
		Deadline: time.Now().Add(500 * time.Millisecond),
		Est:      time.Second,
		EstFn:    func() time.Duration { return time.Second / 8 },
		Run:      func(context.Context, time.Duration) error { ran = true; return nil },
	})
	if err != nil {
		t.Fatalf("Do = %v, want nil", err)
	}
	if !ran {
		t.Fatal("job never ran")
	}
	// And the dynamic estimate can also shed where the static one would
	// not: a width collapse between submissions re-inflates service time.
	err = s.Do(context.Background(), Job{
		Deadline: time.Now().Add(100 * time.Millisecond),
		Est:      time.Millisecond,
		EstFn:    func() time.Duration { return time.Second },
		Run:      func(context.Context, time.Duration) error { t.Error("doomed job ran"); return nil },
	})
	if !errors.Is(err, ErrDeadlineBeforeService) {
		t.Fatalf("Do = %v, want ErrDeadlineBeforeService", err)
	}
}

func TestEDFOrderingWithinClass(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Close()
	release, occ := occupy(t, s, Interactive)

	// Enqueue with deadlines out of order plus one deadline-free job; the
	// run order must be earliest-deadline-first, deadline-free last.
	var mu sync.Mutex
	var order []string
	now := time.Now()
	mk := func(name string, dl time.Time) chan error {
		ch := make(chan error, 1)
		go func() {
			ch <- s.Do(context.Background(), Job{Deadline: dl, Run: func(context.Context, time.Duration) error {
				mu.Lock()
				order = append(order, name)
				mu.Unlock()
				return nil
			}})
		}()
		return ch
	}
	late := mk("late", now.Add(time.Hour))
	waitDepth(t, s, Interactive, 1)
	none := mk("none", time.Time{})
	waitDepth(t, s, Interactive, 2)
	soon := mk("soon", now.Add(time.Minute))
	waitDepth(t, s, Interactive, 3)

	release()
	<-occ
	for _, ch := range []chan error{late, none, soon} {
		if err := <-ch; err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"soon", "late", "none"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("run order = %v, want %v", order, want)
		}
	}
}

func TestWithdrawOnCallerCancel(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Close()
	release, occ := occupy(t, s, Interactive)
	defer release()

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		errCh <- s.Do(ctx, Job{Run: func(context.Context, time.Duration) error {
			t.Error("withdrawn job ran")
			return nil
		}})
	}()
	waitDepth(t, s, Interactive, 1)
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Do = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("withdraw did not resolve while the worker stayed busy")
	}
	if st := s.Stats(); st.Shed[shedCanceled] != 1 {
		t.Errorf("shed[canceled] = %d, want 1", st.Shed[shedCanceled])
	}
	release()
	<-occ
}

func TestFairnessBatchNotStarved(t *testing.T) {
	s := New(Options{Workers: 1, InteractiveBurst: 2, InteractiveDepth: 64, BatchDepth: 4})
	defer s.Close()
	release, occ := occupy(t, s, Interactive)

	var mu sync.Mutex
	var order []Class
	mk := func(class Class) chan error {
		ch := make(chan error, 1)
		go func() {
			ch <- s.Do(context.Background(), Job{Class: class, Run: func(context.Context, time.Duration) error {
				mu.Lock()
				order = append(order, class)
				mu.Unlock()
				return nil
			}})
		}()
		return ch
	}
	// 6 interactive + 1 batch all queued before the worker frees up.
	var waits []chan error
	for i := 0; i < 6; i++ {
		waits = append(waits, mk(Interactive))
		waitDepth(t, s, Interactive, i+1)
	}
	waits = append(waits, mk(Batch))
	waitDepth(t, s, Batch, 1)

	release()
	<-occ
	for _, ch := range waits {
		if err := <-ch; err != nil {
			t.Fatal(err)
		}
	}
	// The batch job must run after at most InteractiveBurst interactive
	// dispatches (the occupying job already counted one toward the run).
	pos := -1
	for i, c := range order {
		if c == Batch {
			pos = i
			break
		}
	}
	if pos < 0 || pos > 2 {
		t.Fatalf("batch ran at position %d of %v, want within the first 3 dispatches", pos, order)
	}
}

// TestFairnessNoStaleBurstCredit is the PR-8 fairness regression: the
// burst counter must only advance while batch work is actually waiting. A
// batch job arriving after a long interactive-only stretch starts from a
// clean slate — it must NOT instantly preempt interactive work queued
// ahead of it on the strength of dispatches it never waited behind.
func TestFairnessNoStaleBurstCredit(t *testing.T) {
	s := New(Options{Workers: 1, InteractiveBurst: 2, InteractiveDepth: 64, BatchDepth: 4})
	defer s.Close()

	// Build a long interactive-only history: every one of these dispatches
	// happens with an empty batch queue, so none may earn burst credit.
	for i := 0; i < 6; i++ {
		if err := s.Do(context.Background(), Job{Class: Interactive, Run: func(context.Context, time.Duration) error {
			return nil
		}}); err != nil {
			t.Fatal(err)
		}
	}

	// Park the worker, then queue one interactive job followed by the
	// first batch job this scheduler has ever seen.
	release, occ := occupy(t, s, Interactive)
	var mu sync.Mutex
	var order []Class
	record := func(class Class) chan error {
		ch := make(chan error, 1)
		go func() {
			ch <- s.Do(context.Background(), Job{Class: class, Run: func(context.Context, time.Duration) error {
				mu.Lock()
				order = append(order, class)
				mu.Unlock()
				return nil
			}})
		}()
		return ch
	}
	iCh := record(Interactive)
	waitDepth(t, s, Interactive, 1)
	bCh := record(Batch)
	waitDepth(t, s, Batch, 1)

	release()
	<-occ
	if err := <-iCh; err != nil {
		t.Fatal(err)
	}
	if err := <-bCh; err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != Interactive || order[1] != Batch {
		t.Fatalf("dispatch order = %v, want [interactive batch]: the batch job consumed a stale burst credit", order)
	}
}

func TestDegradedSheds(t *testing.T) {
	var mu sync.Mutex
	state := ClusterState{}
	s := New(Options{Health: func() ClusterState {
		mu.Lock()
		defer mu.Unlock()
		return state
	}})
	defer s.Close()

	ok := func(class Class) error {
		return s.Do(context.Background(), Job{Class: class, Run: func(context.Context, time.Duration) error { return nil }})
	}
	// Healthy: both classes serve.
	if err := ok(Interactive); err != nil {
		t.Fatal(err)
	}
	if err := ok(Batch); err != nil {
		t.Fatal(err)
	}
	// Degraded: batch shed, interactive serves.
	mu.Lock()
	state = ClusterState{Degraded: true}
	mu.Unlock()
	if err := ok(Batch); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded batch = %v, want ErrDegraded", err)
	}
	if err := ok(Interactive); err != nil {
		t.Fatalf("degraded interactive = %v, want served", err)
	}
	// Dead: everything shed.
	mu.Lock()
	state = ClusterState{Degraded: true, Dead: true}
	mu.Unlock()
	if err := ok(Interactive); !errors.Is(err, ErrDegraded) {
		t.Fatalf("dead interactive = %v, want ErrDegraded", err)
	}
	if st := s.Stats(); st.Shed[shedDegraded] != 2 {
		t.Errorf("shed[degraded] = %d, want 2", st.Shed[shedDegraded])
	}
}

func TestDrainFinishesInFlightAndRejectsNew(t *testing.T) {
	s := New(Options{Workers: 1})
	release, occ := occupy(t, s, Interactive)

	queuedErr := make(chan error, 1)
	go func() {
		queuedErr <- s.Do(context.Background(), Job{Run: func(context.Context, time.Duration) error { return nil }})
	}()
	waitDepth(t, s, Interactive, 1)

	drainErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainErr <- s.Drain(ctx)
	}()
	// New admissions shed with ErrDraining from the moment Drain starts.
	deadline := time.Now().Add(5 * time.Second)
	for !s.Stats().Draining {
		if time.Now().After(deadline) {
			t.Fatal("scheduler never reported draining")
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Do(context.Background(), Job{Run: func(context.Context, time.Duration) error { return nil }}); !errors.Is(err, ErrDraining) {
		t.Fatalf("Do during drain = %v, want ErrDraining", err)
	}

	release()
	if err := <-occ; err != nil {
		t.Fatalf("in-flight job during drain = %v, want nil", err)
	}
	if err := <-queuedErr; err != nil {
		t.Fatalf("queued job during drain = %v, want served", err)
	}
	if err := <-drainErr; err != nil {
		t.Fatalf("Drain = %v, want nil", err)
	}
}

func TestDrainTimeoutFailsQueued(t *testing.T) {
	s := New(Options{Workers: 1})
	release, occ := occupy(t, s, Interactive)
	defer release()

	queuedErr := make(chan error, 1)
	go func() {
		queuedErr <- s.Do(context.Background(), Job{Run: func(context.Context, time.Duration) error { return nil }})
	}()
	waitDepth(t, s, Interactive, 1)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain with stuck worker = %v, want DeadlineExceeded", err)
	}
	if err := <-queuedErr; !errors.Is(err, ErrDraining) {
		t.Fatalf("queued job after drain timeout = %v, want ErrDraining", err)
	}
	release()
	if err := <-occ; err != nil {
		t.Fatalf("stuck job resolved %v, want nil once released", err)
	}
}

func TestMetricsMirror(t *testing.T) {
	reg := metrics.NewRegistry()
	s := New(Options{Workers: 1, InteractiveDepth: 1, Registry: reg})
	defer s.Close()
	release, occ := occupy(t, s, Interactive)

	queuedErr := make(chan error, 1)
	go func() {
		queuedErr <- s.Do(context.Background(), Job{Run: func(context.Context, time.Duration) error { return nil }})
	}()
	waitDepth(t, s, Interactive, 1)
	if err := s.Do(context.Background(), Job{Run: func(context.Context, time.Duration) error { return nil }}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("expected ErrQueueFull, got %v", err)
	}
	release()
	<-occ
	if err := <-queuedErr; err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if got := snap.Counter(`voltage_gateway_admitted_total{class="interactive"}`); got != 2 {
		t.Errorf("admitted interactive = %v, want 2", got)
	}
	if got := snap.Counter(`voltage_gateway_shed_total{cause="queue_full"}`); got != 1 {
		t.Errorf("shed queue_full = %v, want 1", got)
	}
	if got := snap.Counter(`voltage_gateway_served_total{class="interactive"}`); got != 2 {
		t.Errorf("served interactive = %v, want 2", got)
	}
	if h, ok := snap.Histograms[`voltage_gateway_queue_wait_seconds{class="interactive"}`]; !ok || h.Count != 2 {
		t.Errorf("queue wait histogram = %+v ok=%v, want 2 observations", h, ok)
	}
}
