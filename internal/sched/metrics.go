package sched

import (
	"time"

	"voltage/internal/metrics"
)

// gatewayMetrics mirrors the scheduler's accounting into a metrics
// registry, following the cluster's instrumentation discipline: every
// instrument is resolved once at construction and every method is
// nil-receiver-safe, so a registry-less scheduler records nothing and
// costs one branch per site.
type gatewayMetrics struct {
	depthGauge   [numClasses]*metrics.Gauge
	waitHist     [numClasses]*metrics.Histogram
	admittedCnt  [numClasses]*metrics.Counter
	servedOK     [numClasses]*metrics.Counter
	servedErr    [numClasses]*metrics.Counter
	inflightG    *metrics.Gauge
	shedByCause  map[string]*metrics.Counter
	shedByClass  [numClasses]*metrics.Counter
	depthHistVec [numClasses]*metrics.Histogram
}

// newGatewayMetrics registers the gateway families on reg (nil reg → nil
// metrics, every record site no-ops).
func newGatewayMetrics(reg *metrics.Registry) *gatewayMetrics {
	if reg == nil {
		return nil
	}
	m := &gatewayMetrics{shedByCause: make(map[string]*metrics.Counter)}
	depth := reg.GaugeVec("voltage_gateway_queue_depth",
		"Requests currently waiting in each gateway class queue.", "class")
	depthHist := reg.HistogramVec("voltage_gateway_queue_depth_observed",
		"Class-queue depth observed at each admission.", "class", metrics.DepthBuckets)
	wait := reg.HistogramVec("voltage_gateway_queue_wait_seconds",
		"Time each dispatched request spent in its gateway queue.", "class",
		metrics.LatencyBuckets)
	admitted := reg.CounterVec("voltage_gateway_admitted_total",
		"Requests admitted to a gateway queue, by class.", "class")
	served := reg.CounterVec("voltage_gateway_served_total",
		"Requests the gateway ran to completion, by class.", "class")
	failedV := reg.CounterVec("voltage_gateway_failed_total",
		"Requests the gateway ran that resolved with an error, by class.", "class")
	shedCause := reg.CounterVec("voltage_gateway_shed_total",
		"Requests shed by the gateway, by cause (queue_full, deadline, degraded, draining, canceled).",
		"cause")
	shedClass := reg.CounterVec("voltage_gateway_shed_by_class_total",
		"Requests shed by the gateway, by class.", "class")
	for c := Class(0); c < numClasses; c++ {
		lbl := c.String()
		m.depthGauge[c] = depth.With(lbl)
		m.depthHistVec[c] = depthHist.With(lbl)
		m.waitHist[c] = wait.With(lbl)
		m.admittedCnt[c] = admitted.With(lbl)
		m.servedOK[c] = served.With(lbl)
		m.servedErr[c] = failedV.With(lbl)
		m.shedByClass[c] = shedClass.With(lbl)
	}
	for _, cause := range []string{shedFull, shedDeadline, shedDegraded, shedDraining, shedCanceled} {
		m.shedByCause[cause] = shedCause.With(cause)
	}
	m.inflightG = reg.Gauge("voltage_gateway_inflight",
		"Requests the gateway currently has in service against the engine.")
	return m
}

// admitted records one admission and the resulting queue depth.
func (m *gatewayMetrics) admitted(c Class, depth int) {
	if m == nil {
		return
	}
	m.admittedCnt[c].Inc()
	m.depthGauge[c].Set(float64(depth))
	m.depthHistVec[c].Observe(float64(depth))
}

// depth tracks a class queue's depth after a dequeue or withdrawal.
func (m *gatewayMetrics) depth(c Class, depth int) {
	if m == nil {
		return
	}
	m.depthGauge[c].Set(float64(depth))
}

// waited records one dispatched request's time in queue.
func (m *gatewayMetrics) waited(c Class, d time.Duration) {
	if m == nil {
		return
	}
	m.waitHist[c].Observe(d.Seconds())
}

// shed counts one shed decision.
func (m *gatewayMetrics) shed(c Class, cause string) {
	if m == nil {
		return
	}
	if cnt, ok := m.shedByCause[cause]; ok {
		cnt.Inc()
	}
	m.shedByClass[c].Inc()
}

// served counts one completed run by outcome.
func (m *gatewayMetrics) served(c Class, err error) {
	if m == nil {
		return
	}
	if err == nil {
		m.servedOK[c].Inc()
	} else {
		m.servedErr[c].Inc()
	}
}

// inflight tracks requests in service.
func (m *gatewayMetrics) inflight(delta float64) {
	if m == nil {
		return
	}
	m.inflightG.Add(delta)
}
