package adapt

import (
	"math"
	"testing"
	"time"

	"voltage/internal/obs"
)

// profileAt builds a K-worker profile with the given per-rank step EWMAs,
// all with plenty of samples, plus the terminal entry.
func profileAt(rounds uint64, ewmas ...float64) obs.Profile {
	p := obs.Profile{K: len(ewmas), Rounds: rounds}
	for r, e := range ewmas {
		p.Ranks = append(p.Ranks, obs.RankProfile{Rank: r, StepEWMASeconds: e, StepSamples: 100})
	}
	p.Ranks = append(p.Ranks, obs.RankProfile{Rank: len(ewmas), Terminal: true})
	return p
}

func even(k int) []float64 {
	r := make([]float64, k)
	for i := range r {
		r[i] = 1 / float64(k)
	}
	return r
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{K: 0}); err == nil {
		t.Fatal("want error for k=0")
	}
	if _, err := New(Config{K: 2, Threshold: -1}); err == nil {
		t.Fatal("want error for negative threshold")
	}
	c, err := New(Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if c.cfg.Threshold != DefaultThreshold || c.cfg.Evals != DefaultEvals ||
		c.cfg.Cooldown != DefaultCooldown || c.cfg.MinStepSamples != DefaultMinStepSamples {
		t.Fatalf("defaults not resolved: %+v", c.cfg)
	}
}

func TestEvaluateRequiresConsecutiveEvals(t *testing.T) {
	// A 4x-slow rank under an even split predicts a big gain, but the
	// move must wait for Evals consecutive confirmations.
	c, err := New(Config{K: 3, Evals: 3, Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(0, 0)
	p := profileAt(10, 0.010, 0.010, 0.040)
	for i := 1; i < 3; i++ {
		dec, err := c.Evaluate(now, p, even(3))
		if err != nil {
			t.Fatal(err)
		}
		if dec.Install {
			t.Fatalf("installed after %d evaluations, want 3", i)
		}
		if dec.Streak != i {
			t.Fatalf("streak %d after evaluation %d", dec.Streak, i)
		}
	}
	dec, err := c.Evaluate(now, p, even(3))
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Install {
		t.Fatal("third consecutive over-threshold evaluation must install")
	}
	// Even split: round gated by the slow rank at (1/3)·0.04. Weighted
	// [4/9 4/9 1/9]: every rank finishes in (4/9)·0.01 ≈ (1/9)·0.04 —
	// a 3x improvement, gain 2/3.
	if math.Abs(dec.PredictedGain-2.0/3) > 1e-9 {
		t.Fatalf("predicted gain %v, want 2/3", dec.PredictedGain)
	}
	want := []float64{4.0 / 9, 4.0 / 9, 1.0 / 9}
	for i := range want {
		if math.Abs(dec.Ratios[i]-want[i]) > 1e-9 {
			t.Fatalf("ratios %v, want %v", dec.Ratios, want)
		}
	}
	if dec.Cause != CauseSkew {
		t.Fatalf("cause %q, want %q (no straggler flagged)", dec.Cause, CauseSkew)
	}
}

func TestEvaluateStreakResetsOnSubThresholdGain(t *testing.T) {
	c, err := New(Config{K: 2, Evals: 2, Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(0, 0)
	skewed := profileAt(10, 0.010, 0.030)
	balanced := profileAt(11, 0.010, 0.010)
	if dec, _ := c.Evaluate(now, skewed, even(2)); dec.Streak != 1 {
		t.Fatalf("streak %d, want 1", dec.Streak)
	}
	// The skew heals itself: the streak must reset, not carry over.
	if dec, _ := c.Evaluate(now, balanced, even(2)); dec.Streak != 0 || dec.Install {
		t.Fatalf("streak %d install %v after balanced round, want reset", dec.Streak, dec.Install)
	}
	if dec, _ := c.Evaluate(now, skewed, even(2)); dec.Install {
		t.Fatal("single over-threshold evaluation after reset must not install")
	}
}

func TestEvaluateCooldownBlocksBackToBackMoves(t *testing.T) {
	c, err := New(Config{K: 2, Evals: 1, Cooldown: time.Second, Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(0, 0)
	p := profileAt(10, 0.010, 0.040)
	dec, err := c.Evaluate(now, p, even(2))
	if err != nil || !dec.Install {
		t.Fatalf("first move: install=%v err=%v", dec.Install, err)
	}
	// Against the installed ratios the same estimates still predict a gain
	// for any further drift — but the cooldown gates it.
	drifted := profileAt(11, 0.010, 0.080)
	dec, err = c.Evaluate(now.Add(500*time.Millisecond), drifted, even(2))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Install {
		t.Fatal("move inside cooldown window must be held")
	}
	dec, err = c.Evaluate(now.Add(1100*time.Millisecond), drifted, even(2))
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Install {
		t.Fatal("move after cooldown expiry must install")
	}
}

func TestEvaluateNoMoveWhenBalanced(t *testing.T) {
	c, err := New(Config{K: 3, Evals: 1, Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(0, 0)
	p := profileAt(10, 0.010, 0.0102, 0.0099)
	for i := 0; i < 5; i++ {
		dec, err := c.Evaluate(now, p, even(3))
		if err != nil {
			t.Fatal(err)
		}
		if dec.Install {
			t.Fatalf("installed on a balanced cluster (gain %v)", dec.PredictedGain)
		}
	}
}

func TestEvaluateColdStartNoEvidence(t *testing.T) {
	// Thin samples (below MinStepSamples) must not move the partition.
	c, err := New(Config{K: 2, Evals: 1, MinStepSamples: 8})
	if err != nil {
		t.Fatal(err)
	}
	p := profileAt(2, 0.010, 0.040)
	for i := range p.Ranks {
		p.Ranks[i].StepSamples = 2
	}
	dec, err := c.Evaluate(time.Unix(0, 0), p, even(2))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Install || dec.Streak != 0 || dec.PredictedGain != 0 {
		t.Fatalf("decision %+v on no evidence, want inert", dec)
	}
}

func TestEvaluateStragglerCause(t *testing.T) {
	c, err := New(Config{K: 2, Evals: 1, Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := profileAt(10, 0.010, 0.040)
	p.Ranks[1].Straggler = true
	dec, err := c.Evaluate(time.Unix(0, 0), p, even(2))
	if err != nil || !dec.Install {
		t.Fatalf("install=%v err=%v", dec.Install, err)
	}
	if dec.Cause != CauseStraggler {
		t.Fatalf("cause %q, want %q", dec.Cause, CauseStraggler)
	}
}

func TestEvaluateRealizedGainSettlesAfterMove(t *testing.T) {
	c, err := New(Config{K: 2, Evals: 1, MinStepSamples: 4, Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(0, 0)
	p := profileAt(10, 0.010, 0.030)
	dec, err := c.Evaluate(now, p, even(2))
	if err != nil || !dec.Install {
		t.Fatalf("install=%v err=%v", dec.Install, err)
	}
	predicted := dec.PredictedGain
	// Not enough fresh rounds yet: the move must not settle.
	dec, err = c.Evaluate(now, profileAt(12, 0.010, 0.030), even(2))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Realized != nil {
		t.Fatal("move settled before MinStepSamples fresh rounds")
	}
	// After 4 more rounds with the estimates unchanged, realized gain
	// should match the prediction (same d, same ratio comparison).
	dec, err = c.Evaluate(now, profileAt(14, 0.010, 0.030), even(2))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Realized == nil {
		t.Fatal("move did not settle")
	}
	if dec.Realized.PredictedGain != predicted {
		t.Fatalf("settled predicted %v, want %v", dec.Realized.PredictedGain, predicted)
	}
	if math.Abs(dec.Realized.RealizedGain-predicted) > 1e-9 {
		t.Fatalf("realized %v, want %v under unchanged estimates", dec.Realized.RealizedGain, predicted)
	}
	if c.pending != nil {
		t.Fatal("pending move must clear once settled")
	}
}

func TestEvaluateCurrentLengthCheck(t *testing.T) {
	c, _ := New(Config{K: 3})
	if _, err := c.Evaluate(time.Unix(0, 0), profileAt(1, 0.01, 0.01, 0.01), even(2)); err == nil {
		t.Fatal("want error for ratio/K mismatch")
	}
}
