// Package adapt is the closed-loop re-partitioning controller: it turns
// the profile store's live per-rank estimates (internal/obs) into
// partition-scheme decisions. The Voltage paper's §V-B observes that the
// position-wise partition can change at any synchronization boundary
// "without any penalty"; this package supplies the policy half of that
// loop — sensing and deciding — while the cluster owns actuation
// (installing the scheme at a safe boundary).
//
// The controller is deliberately conservative. Re-slicing is free at the
// partition level but not at the serving level: migrating a fused decode
// batch re-prefills every live sequence's committed prefix. Three guards
// keep the loop from thrashing on noise:
//
//   - threshold: a candidate scheme must predict a round-time improvement
//     over the installed one of more than Threshold (default 10%);
//   - hysteresis: the prediction must clear the threshold on Evals
//     consecutive evaluations (default 3) — one noisy EWMA excursion
//     never moves the partition;
//   - cooldown: at least Cooldown (default 2s) must pass between installed
//     schemes, bounding migration churn even under oscillating load.
//
// Evaluate is a pure function of the injected clock and profile snapshot,
// so the policy is deterministic and testable without a cluster.
package adapt

import (
	"fmt"
	"time"

	"voltage/internal/balance"
	"voltage/internal/obs"
)

// Defaults for Config zero values.
const (
	// DefaultThreshold is the minimum predicted fractional round-time
	// improvement required to count an evaluation toward a move.
	DefaultThreshold = 0.10
	// DefaultEvals is how many consecutive over-threshold evaluations
	// arm a move.
	DefaultEvals = 3
	// DefaultCooldown is the minimum spacing between installed schemes.
	DefaultCooldown = 2 * time.Second
	// DefaultMinStepSamples is how many fused-step samples a rank needs
	// before its EWMA is trusted as a speed estimate.
	DefaultMinStepSamples = 4
)

// Decision causes, used as the metrics label on installed re-partitions.
const (
	// CauseStraggler marks a move while the skew detector flagged a
	// persistent straggler.
	CauseStraggler = "straggler"
	// CauseSkew marks a move on EWMA skew alone, below the straggler
	// detector's trigger.
	CauseSkew = "skew"
	// CauseManual marks an externally requested install (tests, ops).
	CauseManual = "manual"
)

// Config tunes the controller.
type Config struct {
	// K is the worker count; candidate schemes span all K ranks.
	K int
	// Threshold, Evals, Cooldown are the hysteresis guards (zero values
	// select the defaults above). Threshold is a fraction: 0.10 requires
	// a predicted round time at most 90% of the current one.
	Threshold float64
	Evals     int
	Cooldown  time.Duration
	// MinStepSamples gates how much evidence a rank needs before its step
	// EWMA feeds the tracker (0 = DefaultMinStepSamples).
	MinStepSamples uint64
	// Alpha is the tracker's EWMA smoothing factor (0 = balance default).
	Alpha float64
}

// Outcome reports how a previously installed move actually played out,
// measured from fresh estimates once the move has settled.
type Outcome struct {
	// PredictedGain is the fractional improvement promised at install time.
	PredictedGain float64
	// RealizedGain is the improvement recomputed from post-move estimates:
	// 1 − T(new ratios)/T(old ratios) under the fresh per-rank speeds.
	// Negative means the move made rounds slower.
	RealizedGain float64
}

// Decision is one evaluation's output.
type Decision struct {
	// Install is true when the hysteresis and cooldown guards all passed;
	// Ratios then holds the candidate scheme to install.
	Install       bool
	Ratios        []float64
	PredictedGain float64
	// Cause classifies the move (CauseStraggler or CauseSkew).
	Cause string
	// Streak is the consecutive over-threshold evaluation count after
	// this evaluation (diagnostic).
	Streak int
	// Realized, when non-nil, settles the previous move (see Outcome). It
	// can accompany any evaluation, including non-installing ones.
	Realized *Outcome
}

// pendingMove tracks an installed-but-unsettled move for realized-gain
// measurement.
type pendingMove struct {
	oldRatios []float64
	newRatios []float64
	predicted float64
	roundsAt  uint64
}

// Controller derives candidate schemes from profile snapshots and applies
// the hysteresis policy. Not safe for concurrent use; the cluster's adapt
// loop is its single caller.
type Controller struct {
	cfg     Config
	tracker *balance.Tracker
	streak  int
	moved   bool
	lastAt  time.Time
	pending *pendingMove
}

// New builds a controller, resolving Config defaults.
func New(cfg Config) (*Controller, error) {
	if cfg.K < 1 {
		return nil, fmt.Errorf("adapt: k = %d < 1", cfg.K)
	}
	if cfg.Threshold < 0 || cfg.Evals < 0 || cfg.Cooldown < 0 {
		return nil, fmt.Errorf("adapt: negative hysteresis knob (threshold %v, evals %d, cooldown %s)",
			cfg.Threshold, cfg.Evals, cfg.Cooldown)
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = DefaultThreshold
	}
	if cfg.Evals == 0 {
		cfg.Evals = DefaultEvals
	}
	if cfg.Cooldown == 0 {
		cfg.Cooldown = DefaultCooldown
	}
	if cfg.MinStepSamples == 0 {
		cfg.MinStepSamples = DefaultMinStepSamples
	}
	tracker, err := balance.NewTracker(cfg.K, cfg.Alpha)
	if err != nil {
		return nil, err
	}
	return &Controller{cfg: cfg, tracker: tracker}, nil
}

// roundTime predicts the fused-round finish time of a ratio split under
// per-rank seconds-per-position estimates d: the slowest rank's share,
// max_r ratios[r]·d[r] (positions are what the scheme hands out; the round
// ends when the last rank finishes its share).
func roundTime(ratios, d []float64) float64 {
	var worst float64
	for r := range ratios {
		if t := ratios[r] * d[r]; t > worst {
			worst = t
		}
	}
	return worst
}

// Evaluate runs one control iteration: fold the profile into the speed
// tracker, settle any pending move against the fresh estimates, derive the
// candidate scheme, and decide — under threshold, hysteresis, and cooldown
// — whether to install it. current is the installed scheme's ratio vector.
func (c *Controller) Evaluate(now time.Time, p obs.Profile, current []float64) (Decision, error) {
	var dec Decision
	if len(current) != c.cfg.K {
		return dec, fmt.Errorf("adapt: %d current ratios for %d ranks", len(current), c.cfg.K)
	}
	fed, err := balance.FeedProfile(c.tracker, p, c.cfg.MinStepSamples)
	if err != nil {
		return dec, err
	}
	d := c.tracker.Imputed()
	if fed == 0 || d == nil {
		// No usable evidence yet: keep the streak at zero so stale
		// pre-silence excursions cannot arm a move.
		c.streak = 0
		dec.Streak = 0
		return dec, nil
	}
	// Settle the previous move once enough post-move rounds have refreshed
	// the estimates — comparing old vs new ratios under the same fresh d
	// isolates the move's effect from concurrent speed drift.
	if pm := c.pending; pm != nil && p.Rounds >= pm.roundsAt+uint64(c.cfg.MinStepSamples) {
		oldT, newT := roundTime(pm.oldRatios, d), roundTime(pm.newRatios, d)
		out := &Outcome{PredictedGain: pm.predicted}
		if oldT > 0 {
			out.RealizedGain = 1 - newT/oldT
		}
		dec.Realized = out
		c.pending = nil
	}
	scheme, err := c.tracker.Scheme()
	if err != nil {
		return dec, err
	}
	cand := scheme.Ratios()
	curT := roundTime(current, d)
	if curT <= 0 {
		c.streak = 0
		return dec, nil
	}
	gain := 1 - roundTime(cand, d)/curT
	dec.PredictedGain = gain
	if gain <= c.cfg.Threshold {
		c.streak = 0
		return dec, nil
	}
	c.streak++
	dec.Streak = c.streak
	if c.streak < c.cfg.Evals {
		return dec, nil
	}
	if c.moved && now.Sub(c.lastAt) < c.cfg.Cooldown {
		return dec, nil // armed, but inside the cooldown window
	}
	dec.Install = true
	dec.Ratios = cand
	dec.Cause = CauseSkew
	for _, r := range p.Ranks {
		if !r.Terminal && r.Straggler {
			dec.Cause = CauseStraggler
			break
		}
	}
	c.streak = 0
	c.moved = true
	c.lastAt = now
	c.pending = &pendingMove{
		oldRatios: append([]float64(nil), current...),
		newRatios: append([]float64(nil), cand...),
		predicted: gain,
		roundsAt:  p.Rounds,
	}
	return dec, nil
}
