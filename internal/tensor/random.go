package tensor

import (
	"math"
	"math/rand"
)

// RNG is a deterministic random source for weight initialization. A fixed
// seed yields bit-identical models across runs and devices, which lets the
// distributed runtime replicate weights locally instead of shipping them.
type RNG struct {
	src *rand.Rand
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{src: rand.New(rand.NewSource(seed))}
}

// Normal returns a rows×cols matrix with entries drawn i.i.d. from
// N(0, std²).
func (r *RNG) Normal(rows, cols int, std float64) *Matrix {
	m := New(rows, cols)
	for i := range m.data {
		m.data[i] = float32(r.src.NormFloat64() * std)
	}
	return m
}

// Uniform returns a rows×cols matrix with entries drawn i.i.d. from
// U[lo, hi).
func (r *RNG) Uniform(rows, cols int, lo, hi float64) *Matrix {
	m := New(rows, cols)
	span := hi - lo
	for i := range m.data {
		m.data[i] = float32(lo + r.src.Float64()*span)
	}
	return m
}

// XavierNormal returns a rows×cols matrix initialized with the Glorot/Xavier
// normal scheme, std = sqrt(2/(fanIn+fanOut)). It keeps activations in a
// numerically well-behaved range through deep stacks.
func (r *RNG) XavierNormal(rows, cols int) *Matrix {
	std := math.Sqrt(2 / float64(rows+cols))
	return r.Normal(rows, cols, std)
}

// NormalVec returns a length-n vector drawn i.i.d. from N(0, std²).
func (r *RNG) NormalVec(n int, std float64) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = float32(r.src.NormFloat64() * std)
	}
	return v
}

// Ones returns a length-n vector of ones (layer-norm gain init).
func Ones(n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// Zeros returns a length-n zero vector (bias init).
func Zeros(n int) []float32 {
	return make([]float32, n)
}

// Intn returns a deterministic pseudo-random int in [0, n).
func (r *RNG) Intn(n int) int { return r.src.Intn(n) }

// Float64 returns a deterministic pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 { return r.src.Float64() }
