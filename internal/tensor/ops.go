package tensor

import "fmt"

// Add returns a + b element-wise.
func Add(a, b *Matrix) (*Matrix, error) {
	if a.rows != b.rows || a.cols != b.cols {
		return nil, fmt.Errorf("%w: add %dx%d + %dx%d", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	out := New(a.rows, a.cols)
	for i, v := range a.data {
		out.data[i] = v + b.data[i]
	}
	return out, nil
}

// AddInPlace computes a += b element-wise, mutating a.
func AddInPlace(a, b *Matrix) error {
	if a.rows != b.rows || a.cols != b.cols {
		return fmt.Errorf("%w: add %dx%d + %dx%d", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	for i, v := range b.data {
		a.data[i] += v
	}
	return nil
}

// Sub returns a - b element-wise.
func Sub(a, b *Matrix) (*Matrix, error) {
	if a.rows != b.rows || a.cols != b.cols {
		return nil, fmt.Errorf("%w: sub %dx%d - %dx%d", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	out := New(a.rows, a.cols)
	for i, v := range a.data {
		out.data[i] = v - b.data[i]
	}
	return out, nil
}

// Scale returns m * alpha as a new matrix.
func Scale(m *Matrix, alpha float32) *Matrix {
	out := New(m.rows, m.cols)
	for i, v := range m.data {
		out.data[i] = v * alpha
	}
	return out
}

// ScaleInPlace multiplies every element of m by alpha.
func ScaleInPlace(m *Matrix, alpha float32) {
	for i := range m.data {
		m.data[i] *= alpha
	}
}

// AddBias adds the 1×cols bias row vector to every row of m, returning a new
// matrix.
func AddBias(m *Matrix, bias []float32) (*Matrix, error) {
	if len(bias) != m.cols {
		return nil, fmt.Errorf("%w: bias length %d for %d cols", ErrShape, len(bias), m.cols)
	}
	out := New(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		orow := out.Row(i)
		for j, v := range row {
			orow[j] = v + bias[j]
		}
	}
	return out, nil
}

// AddBiasInPlace adds the bias row vector to every row of m in place.
func AddBiasInPlace(m *Matrix, bias []float32) error {
	if len(bias) != m.cols {
		return fmt.Errorf("%w: bias length %d for %d cols", ErrShape, len(bias), m.cols)
	}
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] += bias[j]
		}
	}
	return nil
}

// ConcatCols concatenates matrices with equal row counts side by side. It is
// used to merge per-head attention outputs: Concat(A1, ..., AH).
func ConcatCols(ms ...*Matrix) (*Matrix, error) {
	if len(ms) == 0 {
		return nil, fmt.Errorf("%w: concat of zero matrices", ErrShape)
	}
	rows := ms[0].rows
	total := 0
	for _, m := range ms {
		if m.rows != rows {
			return nil, fmt.Errorf("%w: concat rows %d vs %d", ErrShape, m.rows, rows)
		}
		total += m.cols
	}
	out := New(rows, total)
	for i := 0; i < rows; i++ {
		dst := out.Row(i)
		off := 0
		for _, m := range ms {
			copy(dst[off:off+m.cols], m.Row(i))
			off += m.cols
		}
	}
	return out, nil
}

// ConcatRows stacks matrices with equal column counts vertically. It is used
// to assemble output partitions from different devices into the full layer
// output.
func ConcatRows(ms ...*Matrix) (*Matrix, error) {
	if len(ms) == 0 {
		return nil, fmt.Errorf("%w: concat of zero matrices", ErrShape)
	}
	cols := ms[0].cols
	total := 0
	for _, m := range ms {
		if m.cols != cols {
			return nil, fmt.Errorf("%w: concat cols %d vs %d", ErrShape, m.cols, cols)
		}
		total += m.rows
	}
	out := New(total, cols)
	off := 0
	for _, m := range ms {
		copy(out.data[off:], m.data)
		off += len(m.data)
	}
	return out, nil
}

// ColSlice returns a deep copy of columns [from, to). Tensor parallelism
// uses it to split weight matrices head-wise.
func (m *Matrix) ColSlice(from, to int) (*Matrix, error) {
	if from < 0 || to > m.cols || from > to {
		return nil, fmt.Errorf("%w: col slice [%d,%d) of %d cols", ErrShape, from, to, m.cols)
	}
	out := New(m.rows, to-from)
	for i := 0; i < m.rows; i++ {
		copy(out.Row(i), m.Row(i)[from:to])
	}
	return out, nil
}
