package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// parallelThreshold is the minimum number of result rows per goroutine; below
// this the goroutine fan-out overhead dominates.
const parallelThreshold = 16

// MatMul returns a × b. It panics on shape mismatch only via the error; use
// MustMatMul in contexts where shapes are known correct.
//
// The implementation is an i-k-j loop order (streaming over b's rows) which
// is cache-friendly for row-major storage, optionally fanned out over rows
// when parallel workers are configured via SetWorkers.
func MatMul(a, b *Matrix) (*Matrix, error) {
	if a.cols != b.rows {
		return nil, fmt.Errorf("%w: matmul %dx%d × %dx%d", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	out := New(a.rows, b.cols)
	matMulInto(out, a, b, workerCount())
	return out, nil
}

// MustMatMul is MatMul for statically known-compatible shapes; it panics on
// mismatch. Used internally where shapes are guaranteed by construction.
func MustMatMul(a, b *Matrix) *Matrix {
	out, err := MatMul(a, b)
	if err != nil {
		panic(err)
	}
	return out
}

// MatMulSerial multiplies using exactly one goroutine regardless of the
// configured worker count. Device emulation uses it so that each simulated
// edge device has single-CPU compute as in the paper's testbed.
func MatMulSerial(a, b *Matrix) (*Matrix, error) {
	if a.cols != b.rows {
		return nil, fmt.Errorf("%w: matmul %dx%d × %dx%d", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	out := New(a.rows, b.cols)
	matMulInto(out, a, b, 1)
	return out, nil
}

var (
	workersMu sync.RWMutex
	workers   = runtime.GOMAXPROCS(0)
)

// SetWorkers sets the goroutine fan-out used by MatMul. n < 1 resets to
// GOMAXPROCS. It returns the previous value.
func SetWorkers(n int) int {
	workersMu.Lock()
	defer workersMu.Unlock()
	prev := workers
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	workers = n
	return prev
}

func workerCount() int {
	workersMu.RLock()
	defer workersMu.RUnlock()
	return workers
}

func matMulInto(out, a, b *Matrix, nworkers int) {
	rows := a.rows
	if nworkers <= 1 || rows < 2*parallelThreshold {
		matMulRows(out, a, b, 0, rows)
		return
	}
	chunk := (rows + nworkers - 1) / nworkers
	if chunk < parallelThreshold {
		chunk = parallelThreshold
	}
	var wg sync.WaitGroup
	for start := 0; start < rows; start += chunk {
		end := min(start+chunk, rows)
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			matMulRows(out, a, b, s, e)
		}(start, end)
	}
	wg.Wait()
}

// matMulRows computes rows [rowStart,rowEnd) of out = a×b using the ikj loop
// order: for each a[i][k] it streams b's k-th row into out's i-th row.
func matMulRows(out, a, b *Matrix, rowStart, rowEnd int) {
	n := b.cols
	for i := rowStart; i < rowEnd; i++ {
		ai := a.data[i*a.cols : (i+1)*a.cols]
		oi := out.data[i*n : (i+1)*n]
		for k, av := range ai {
			if av == 0 {
				continue
			}
			bk := b.data[k*n : (k+1)*n]
			axpy(oi, bk, av)
		}
	}
}

// axpy computes dst += alpha * src with 4-way unrolling.
func axpy(dst, src []float32, alpha float32) {
	n := len(dst)
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] += alpha * src[i]
		dst[i+1] += alpha * src[i+1]
		dst[i+2] += alpha * src[i+2]
		dst[i+3] += alpha * src[i+3]
	}
	for ; i < n; i++ {
		dst[i] += alpha * src[i]
	}
}

// MatMulT returns a × bᵀ without materializing the transpose. This is the
// natural shape for attention scores Q·Kᵀ.
func MatMulT(a, bT *Matrix) (*Matrix, error) {
	if a.cols != bT.cols {
		return nil, fmt.Errorf("%w: matmulT %dx%d × (%dx%d)ᵀ", ErrShape, a.rows, a.cols, bT.rows, bT.cols)
	}
	out := New(a.rows, bT.rows)
	rows := a.rows
	nw := workerCount()
	if nw <= 1 || rows < 2*parallelThreshold {
		matMulTRows(out, a, bT, 0, rows)
		return out, nil
	}
	chunk := (rows + nw - 1) / nw
	if chunk < parallelThreshold {
		chunk = parallelThreshold
	}
	var wg sync.WaitGroup
	for start := 0; start < rows; start += chunk {
		end := min(start+chunk, rows)
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			matMulTRows(out, a, bT, s, e)
		}(start, end)
	}
	wg.Wait()
	return out, nil
}

func matMulTRows(out, a, bT *Matrix, rowStart, rowEnd int) {
	k := a.cols
	for i := rowStart; i < rowEnd; i++ {
		ai := a.data[i*k : (i+1)*k]
		oi := out.data[i*bT.rows : (i+1)*bT.rows]
		for j := 0; j < bT.rows; j++ {
			bj := bT.data[j*k : (j+1)*k]
			oi[j] = dot(ai, bj)
		}
	}
}

// dot computes the inner product of equally sized slices with 4-way
// unrolling.
func dot(a, b []float32) float32 {
	var s0, s1, s2, s3 float32
	n := len(a)
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := s0 + s1 + s2 + s3
	for ; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}
