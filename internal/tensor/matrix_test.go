package tensor

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 || m.Size() != 12 {
		t.Fatalf("unexpected shape %dx%d size %d", m.Rows(), m.Cols(), m.Size())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("At(%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewFromData(t *testing.T) {
	m, err := NewFromData(2, 2, []float32{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatalf("row-major layout broken: %v", m)
	}
	if _, err := NewFromData(2, 2, []float32{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	m := New(5, 7)
	m.Set(4, 6, 3.5)
	if m.At(4, 6) != 3.5 {
		t.Fatalf("At after Set = %v", m.At(4, 6))
	}
	if m.Row(4)[6] != 3.5 {
		t.Fatalf("Row alias broken")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m, _ := NewFromData(1, 2, []float32{1, 2})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestRowSlice(t *testing.T) {
	m, _ := NewFromData(4, 2, []float32{0, 1, 10, 11, 20, 21, 30, 31})
	s, err := m.RowSlice(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := NewFromData(2, 2, []float32{10, 11, 20, 21})
	if !s.Equal(want) {
		t.Fatalf("RowSlice = %v, want %v", s, want)
	}
	// Deep copy: mutating the slice must not touch the source.
	s.Set(0, 0, -1)
	if m.At(1, 0) != 10 {
		t.Fatal("RowSlice aliases source")
	}
	if _, err := m.RowSlice(3, 1); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape for inverted range, got %v", err)
	}
	if _, err := m.RowSlice(0, 5); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape for overflow, got %v", err)
	}
}

func TestSetRowSlice(t *testing.T) {
	m := New(4, 2)
	part, _ := NewFromData(2, 2, []float32{1, 2, 3, 4})
	if err := m.SetRowSlice(1, part); err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 1 || m.At(2, 1) != 4 || m.At(0, 0) != 0 {
		t.Fatalf("SetRowSlice wrote wrong cells: %v", m)
	}
	bad := New(2, 3)
	if err := m.SetRowSlice(0, bad); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
	if err := m.SetRowSlice(3, part); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape on overflow, got %v", err)
	}
}

func TestRowSliceSetRowSliceRoundTrip(t *testing.T) {
	rng := NewRNG(7)
	m := rng.Normal(9, 5, 1)
	rebuilt := New(9, 5)
	for _, r := range [][2]int{{0, 3}, {3, 7}, {7, 9}} {
		part, err := m.RowSlice(r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		if err := rebuilt.SetRowSlice(r[0], part); err != nil {
			t.Fatal(err)
		}
	}
	if !rebuilt.Equal(m) {
		t.Fatal("partition/reassembly is not the identity")
	}
}

func TestTranspose(t *testing.T) {
	m, _ := NewFromData(2, 3, []float32{1, 2, 3, 4, 5, 6})
	mt := m.T()
	if mt.Rows() != 3 || mt.Cols() != 2 {
		t.Fatalf("T shape %dx%d", mt.Rows(), mt.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Fatalf("T[%d][%d] mismatch", j, i)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := NewRNG(seed)
		r := 1 + rng.Intn(40)
		c := 1 + rng.Intn(40)
		m := rng.Normal(r, c, 1)
		return m.T().T().Equal(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAlmostEqual(t *testing.T) {
	a, _ := NewFromData(1, 2, []float32{1, 1000})
	b, _ := NewFromData(1, 2, []float32{1.0000001, 1000.0001})
	if !a.AlmostEqual(b, 1e-5) {
		t.Fatal("AlmostEqual too strict")
	}
	c, _ := NewFromData(1, 2, []float32{2, 1000})
	if a.AlmostEqual(c, 1e-5) {
		t.Fatal("AlmostEqual too loose")
	}
	d := New(2, 1)
	if a.AlmostEqual(d, 1) {
		t.Fatal("AlmostEqual ignores shape")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a, _ := NewFromData(1, 3, []float32{1, 2, 3})
	b, _ := NewFromData(1, 3, []float32{1, 4, 3})
	d, err := a.MaxAbsDiff(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-2) > 1e-9 {
		t.Fatalf("MaxAbsDiff = %v, want 2", d)
	}
	if _, err := a.MaxAbsDiff(New(3, 1)); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestStringFormats(t *testing.T) {
	small, _ := NewFromData(1, 2, []float32{1, 2})
	if got := small.String(); got != "Matrix(1x2)[1 2]" {
		t.Fatalf("small String = %q", got)
	}
	big := New(100, 100)
	if got := big.String(); got != "Matrix(100x100)" {
		t.Fatalf("big String = %q", got)
	}
}
