package tensor

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Wire format: uint32 rows, uint32 cols, then rows*cols little-endian
// float32 values. The encoded size is what the paper counts as
// "communication size" (4·N·F bytes for an N×F activation).

// EncodedSize returns the number of bytes Encode will produce for a
// rows×cols matrix.
func EncodedSize(rows, cols int) int { return 8 + 4*rows*cols }

// Encode appends the wire representation of m to buf and returns the
// extended slice. The slice grows at most once, so callers that keep a
// scratch buffer across messages (comm.Exchange) amortize the allocation
// away entirely.
func Encode(buf []byte, m *Matrix) []byte {
	need := EncodedSize(m.rows, m.cols)
	off := len(buf)
	if cap(buf)-off < need {
		grown := make([]byte, off, off+need)
		copy(grown, buf)
		buf = grown
	}
	buf = buf[:off+need]
	binary.LittleEndian.PutUint32(buf[off:], uint32(m.rows))
	binary.LittleEndian.PutUint32(buf[off+4:], uint32(m.cols))
	o := off + 8
	for _, v := range m.data {
		binary.LittleEndian.PutUint32(buf[o:], math.Float32bits(v))
		o += 4
	}
	return buf
}

// Decode parses one matrix from buf, returning the matrix and the number of
// bytes consumed.
func Decode(buf []byte) (*Matrix, int, error) {
	return DecodePooled(nil, buf)
}

// maxDecodeElems bounds the element count a decoded header may declare
// (2^28 float32s = 1 GiB), the first line of defense against corrupt or
// adversarial headers triggering unbounded allocations.
const maxDecodeElems = 1 << 28

// checkShape validates a decoded rows×cols header. Each dimension is
// bounded before the product is formed so a hostile header cannot overflow
// rows*cols into an innocent-looking small (or negative) value.
func checkShape(rows, cols int) error {
	if rows < 0 || cols < 0 || rows > maxDecodeElems || cols > maxDecodeElems ||
		(rows > 0 && cols > maxDecodeElems/rows) {
		return fmt.Errorf("tensor: decode: implausible shape %dx%d", rows, cols)
	}
	return nil
}

// DecodePooled is Decode with the output matrix drawn from pool (plain
// allocation when pool is nil). Every element is overwritten, so recycled
// storage never leaks stale values.
//
// The declared shape is validated against both an absolute bound and the
// actual payload length before any allocation happens, so a corrupt frame
// declaring billions of elements resolves as an error, not an OOM.
func DecodePooled(pool *MatrixPool, buf []byte) (*Matrix, int, error) {
	if len(buf) < 8 {
		return nil, 0, fmt.Errorf("tensor: decode: short header (%d bytes)", len(buf))
	}
	rows := int(binary.LittleEndian.Uint32(buf))
	cols := int(binary.LittleEndian.Uint32(buf[4:]))
	if err := checkShape(rows, cols); err != nil {
		return nil, 0, err
	}
	need := EncodedSize(rows, cols)
	if len(buf) < need {
		return nil, 0, fmt.Errorf("tensor: decode: need %d bytes, have %d", need, len(buf))
	}
	m := pool.Get(rows, cols)
	off := 8
	for i := range m.data {
		m.data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
	}
	return m, need, nil
}

// WriteTo encodes m to w, returning the byte count written.
func WriteTo(w io.Writer, m *Matrix) (int64, error) {
	buf := Encode(make([]byte, 0, EncodedSize(m.rows, m.cols)), m)
	n, err := w.Write(buf)
	return int64(n), err
}

// ReadFrom decodes one matrix from r.
func ReadFrom(r io.Reader) (*Matrix, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("tensor: read header: %w", err)
	}
	rows := int(binary.LittleEndian.Uint32(hdr[:]))
	cols := int(binary.LittleEndian.Uint32(hdr[4:]))
	if err := checkShape(rows, cols); err != nil {
		return nil, err
	}
	body := make([]byte, 4*rows*cols)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("tensor: read body: %w", err)
	}
	m := New(rows, cols)
	for i := range m.data {
		m.data[i] = math.Float32frombits(binary.LittleEndian.Uint32(body[i*4:]))
	}
	return m, nil
}
