package tensor

import "testing"

// poisoned returns a rows×cols matrix filled with a sentinel value, used to
// prove that recycled storage is fully overwritten on reuse.
func poisoned(rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.data {
		m.data[i] = 9999.25
	}
	return m
}

func TestDecodePooledOverwritesRecycledStorage(t *testing.T) {
	src := New(3, 4)
	for i := range src.data {
		src.data[i] = float32(i) * 0.5
	}
	blob := Encode(nil, src)

	want, n, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(blob) {
		t.Fatalf("consumed %d of %d bytes", n, len(blob))
	}

	pool := &MatrixPool{}
	pool.Put(poisoned(3, 4))
	got, _, err := DecodePooled(pool, blob)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("pooled decode differs from unpooled reference:\n%v\nvs\n%v", got, want)
	}
}

func TestMatrixPoolSharesStorageByElementCount(t *testing.T) {
	pool := &MatrixPool{}
	pool.Put(poisoned(2, 6)) // 12 elements
	m := pool.Get(3, 4)      // same element count, different shape
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("got %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	// Contents are unspecified after Get; overwrite and verify no cross-talk
	// with a second acquisition.
	for i := range m.data {
		m.data[i] = float32(i)
	}
	other := pool.Get(3, 4) // pool is empty again: fresh storage
	for i := range other.data {
		other.data[i] = -1
	}
	for i := range m.data {
		if m.data[i] != float32(i) {
			t.Fatalf("aliased storage: element %d = %v", i, m.data[i])
		}
	}
}

func TestMatrixPoolNilReceiver(t *testing.T) {
	var pool *MatrixPool
	m := pool.Get(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("nil pool Get: %dx%d", m.Rows(), m.Cols())
	}
	for _, v := range m.data {
		if v != 0 {
			t.Fatalf("nil pool Get must behave like New (zeroed), got %v", v)
		}
	}
	pool.Put(m) // must not panic
	blob := Encode(nil, New(2, 2))
	if _, _, err := DecodePooled(nil, blob); err != nil {
		t.Fatal(err)
	}
}
