package tensor

import "sync"

// MatrixPool recycles matrix storage for the distributed runtime's per-layer
// hot path: decoded activations and All-Gather assemblies are the same shape
// every layer of every request, so steady-state serving can stop allocating
// N×F backing arrays entirely.
//
// Storage is keyed by element count, not shape, so an N×F buffer freed by
// one request can back an F×N (or any same-size) matrix of the next. The
// zero value is ready to use; a nil *MatrixPool degrades to plain
// allocation, which is how the runtime disables pooling.
//
// Contract: Get returns a matrix with UNSPECIFIED contents (stale values
// from a previous user are expected) — callers must fully overwrite it.
// Put transfers ownership to the pool: the caller must not retain any
// reference to the matrix or aliases of its storage.
type MatrixPool struct {
	mu    sync.Mutex
	pools map[int]*sync.Pool // element count -> pool of *Matrix
}

// pool returns the sync.Pool for element count n, creating it on first use.
// A plain int-keyed map under a mutex (rather than sync.Map) keeps the
// steady-state Get/Put cycle allocation-free: sync.Map would box the int
// key on every lookup.
func (p *MatrixPool) pool(n int) *sync.Pool {
	p.mu.Lock()
	sp := p.pools[n]
	if sp == nil {
		if p.pools == nil {
			p.pools = make(map[int]*sync.Pool)
		}
		sp = new(sync.Pool)
		p.pools[n] = sp
	}
	p.mu.Unlock()
	return sp
}

// Get returns a rows×cols matrix whose contents are unspecified. The caller
// must overwrite every element before reading any.
//
// The Matrix header is recycled along with its storage (no per-Get boxing),
// so a steady-state Get/Put cycle is allocation-free.
func (p *MatrixPool) Get(rows, cols int) *Matrix {
	n := rows * cols
	if p == nil || n <= 0 {
		return New(rows, cols)
	}
	if m, ok := p.pool(n).Get().(*Matrix); ok {
		m.rows, m.cols = rows, cols
		return m
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float32, n)}
}

// Put recycles m. m must not be used (nor any alias of its backing array)
// after the call: both the header and the storage go back to the pool. Nil
// pools and empty matrices are no-ops.
func (p *MatrixPool) Put(m *Matrix) {
	if p == nil || m == nil || len(m.data) == 0 {
		return
	}
	p.pool(len(m.data)).Put(m)
}
