package tensor

import (
	"errors"
	"testing"
	"testing/quick"
)

// naiveMatMul is the reference ijk implementation used to validate the
// optimized kernels.
func naiveMatMul(a, b *Matrix) *Matrix {
	out := New(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		for j := 0; j < b.cols; j++ {
			var s float64
			for k := 0; k < a.cols; k++ {
				s += float64(a.At(i, k)) * float64(b.At(k, j))
			}
			out.Set(i, j, float32(s))
		}
	}
	return out
}

func TestMatMulSmall(t *testing.T) {
	a, _ := NewFromData(2, 3, []float32{1, 2, 3, 4, 5, 6})
	b, _ := NewFromData(3, 2, []float32{7, 8, 9, 10, 11, 12})
	got, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := NewFromData(2, 2, []float32{58, 64, 139, 154})
	if !got.Equal(want) {
		t.Fatalf("MatMul = %v, want %v", got, want)
	}
}

func TestMatMulShapeError(t *testing.T) {
	if _, err := MatMul(New(2, 3), New(2, 3)); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
	if _, err := MatMulSerial(New(2, 3), New(2, 3)); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
	if _, err := MatMulT(New(2, 3), New(2, 4)); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestMatMulMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := NewRNG(seed)
		m := 1 + rng.Intn(50)
		k := 1 + rng.Intn(50)
		n := 1 + rng.Intn(50)
		a := rng.Normal(m, k, 1)
		b := rng.Normal(k, n, 1)
		got, err := MatMul(a, b)
		if err != nil {
			return false
		}
		return got.AlmostEqual(naiveMatMul(a, b), 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulParallelMatchesSerial(t *testing.T) {
	rng := NewRNG(42)
	a := rng.Normal(200, 64, 1)
	b := rng.Normal(64, 96, 1)
	prev := SetWorkers(8)
	defer SetWorkers(prev)
	par, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ser, err := MatMulSerial(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !par.Equal(ser) {
		t.Fatal("parallel and serial matmul disagree")
	}
}

func TestMatMulTMatchesExplicitTranspose(t *testing.T) {
	f := func(seed int64) bool {
		rng := NewRNG(seed)
		m := 1 + rng.Intn(40)
		k := 1 + rng.Intn(40)
		n := 1 + rng.Intn(40)
		a := rng.Normal(m, k, 1)
		bT := rng.Normal(n, k, 1)
		got, err := MatMulT(a, bT)
		if err != nil {
			return false
		}
		want, err := MatMul(a, bT.T())
		if err != nil {
			return false
		}
		return got.AlmostEqual(want, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulAssociativity(t *testing.T) {
	// (AB)C == A(BC) numerically within float tolerance. This property is
	// the foundation of the paper's computation-order rewrites.
	rng := NewRNG(3)
	a := rng.Normal(8, 16, 0.5)
	b := rng.Normal(16, 12, 0.5)
	c := rng.Normal(12, 10, 0.5)
	left := MustMatMul(MustMatMul(a, b), c)
	right := MustMatMul(a, MustMatMul(b, c))
	if !left.AlmostEqual(right, 1e-3) {
		d, _ := left.MaxAbsDiff(right)
		t.Fatalf("associativity violated beyond tolerance: max diff %v", d)
	}
}

func TestSetWorkers(t *testing.T) {
	prev := SetWorkers(3)
	if workerCount() != 3 {
		t.Fatalf("workerCount = %d, want 3", workerCount())
	}
	SetWorkers(0) // resets to GOMAXPROCS
	if workerCount() < 1 {
		t.Fatal("workerCount < 1 after reset")
	}
	SetWorkers(prev)
}

func TestMustMatMulPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustMatMul did not panic on shape mismatch")
		}
	}()
	MustMatMul(New(2, 3), New(2, 3))
}

func BenchmarkMatMul128(b *testing.B) {
	rng := NewRNG(1)
	x := rng.Normal(128, 128, 1)
	y := rng.Normal(128, 128, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MatMul(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatMulSerial128(b *testing.B) {
	rng := NewRNG(1)
	x := rng.Normal(128, 128, 1)
	y := rng.Normal(128, 128, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MatMulSerial(x, y); err != nil {
			b.Fatal(err)
		}
	}
}
