package tensor

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestReLU(t *testing.T) {
	m, _ := NewFromData(1, 4, []float32{-1, 0, 2, -0.5})
	out := ReLU.Apply(m)
	want, _ := NewFromData(1, 4, []float32{0, 0, 2, 0})
	if !out.Equal(want) {
		t.Fatalf("ReLU = %v", out)
	}
	if m.At(0, 0) != -1 {
		t.Fatal("Apply mutated input")
	}
}

func TestGELUValues(t *testing.T) {
	// Reference values from the tanh approximation.
	cases := []struct{ in, want float64 }{
		{0, 0},
		{1, 0.8411920},
		{-1, -0.1588080},
		{3, 2.9963627},
	}
	for _, c := range cases {
		got := float64(gelu(float32(c.in)))
		if math.Abs(got-c.want) > 1e-4 {
			t.Errorf("gelu(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestGELUMonotoneAbovePositive(t *testing.T) {
	for x := float32(0); x < 5; x += 0.1 {
		if gelu(x+0.1) < gelu(x) {
			t.Fatalf("gelu not monotone at %v", x)
		}
	}
}

func TestActivationString(t *testing.T) {
	if ReLU.String() != "relu" || GELU.String() != "gelu" {
		t.Fatal("Activation String broken")
	}
	if Activation(99).String() != "Activation(99)" {
		t.Fatalf("unknown activation String = %q", Activation(99).String())
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := NewRNG(seed)
		m := rng.Normal(1+rng.Intn(20), 1+rng.Intn(20), 3)
		s := SoftmaxRows(m)
		for i := 0; i < s.Rows(); i++ {
			var sum float64
			for _, v := range s.Row(i) {
				if v < 0 || v > 1 {
					return false
				}
				sum += float64(v)
			}
			if math.Abs(sum-1) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxStableUnderLargeInputs(t *testing.T) {
	m, _ := NewFromData(1, 3, []float32{1000, 1001, 1002})
	s := SoftmaxRows(m)
	var sum float64
	for _, v := range s.Row(0) {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("softmax overflowed: %v", s)
		}
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-4 {
		t.Fatalf("softmax sum = %v", sum)
	}
	// Shift invariance: softmax(x) == softmax(x + c).
	m2, _ := NewFromData(1, 3, []float32{0, 1, 2})
	if !SoftmaxRows(m2).AlmostEqual(s, 1e-5) {
		t.Fatal("softmax not shift invariant")
	}
}

func TestSoftmaxRowsInPlace(t *testing.T) {
	m, _ := NewFromData(2, 2, []float32{1, 2, 3, 3})
	want := SoftmaxRows(m)
	SoftmaxRowsInPlace(m)
	if !m.Equal(want) {
		t.Fatal("in-place softmax differs from pure version")
	}
}

func TestSoftmaxEmptyRow(t *testing.T) {
	m := New(0, 0)
	s := SoftmaxRows(m)
	if s.Rows() != 0 || s.Cols() != 0 {
		t.Fatal("empty softmax shape")
	}
}

func TestLayerNorm(t *testing.T) {
	m, _ := NewFromData(1, 4, []float32{1, 2, 3, 4})
	out, err := LayerNorm(m, Ones(4), Zeros(4), 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	// Normalized rows have mean 0 and variance 1 (up to eps).
	var mean, variance float64
	for _, v := range out.Row(0) {
		mean += float64(v)
	}
	mean /= 4
	for _, v := range out.Row(0) {
		variance += (float64(v) - mean) * (float64(v) - mean)
	}
	variance /= 4
	if math.Abs(mean) > 1e-5 || math.Abs(variance-1) > 1e-3 {
		t.Fatalf("layernorm mean %v var %v", mean, variance)
	}
}

func TestLayerNormGainBias(t *testing.T) {
	m, _ := NewFromData(1, 2, []float32{-1, 1})
	out, err := LayerNorm(m, []float32{2, 2}, []float32{5, 5}, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	// x normalizes to (-1, 1); ×2 +5 → (3, 7).
	if math.Abs(float64(out.At(0, 0))-3) > 1e-2 || math.Abs(float64(out.At(0, 1))-7) > 1e-2 {
		t.Fatalf("layernorm affine = %v", out)
	}
	if _, err := LayerNorm(m, Ones(3), Zeros(2), 1e-5); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestLayerNormRowIndependence(t *testing.T) {
	// Changing one row must not affect another row's normalization: the
	// operation is position-wise, the property Voltage's partitioning
	// relies on.
	rng := NewRNG(11)
	m := rng.Normal(4, 8, 1)
	gain, bias := Ones(8), Zeros(8)
	full, err := LayerNorm(m, gain, bias, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	m2 := m.Clone()
	for j := 0; j < 8; j++ {
		m2.Set(0, j, 100)
	}
	out2, err := LayerNorm(m2, gain, bias, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 4; i++ {
		for j := 0; j < 8; j++ {
			if full.At(i, j) != out2.At(i, j) {
				t.Fatal("layernorm leaked across rows")
			}
		}
	}
}
