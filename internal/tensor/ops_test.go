package tensor

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestAddSub(t *testing.T) {
	a, _ := NewFromData(2, 2, []float32{1, 2, 3, 4})
	b, _ := NewFromData(2, 2, []float32{10, 20, 30, 40})
	sum, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := NewFromData(2, 2, []float32{11, 22, 33, 44})
	if !sum.Equal(want) {
		t.Fatalf("Add = %v", sum)
	}
	diff, err := Sub(sum, b)
	if err != nil {
		t.Fatal(err)
	}
	if !diff.Equal(a) {
		t.Fatalf("Sub = %v", diff)
	}
	if _, err := Add(a, New(1, 2)); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
	if _, err := Sub(a, New(1, 2)); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestAddInPlace(t *testing.T) {
	a, _ := NewFromData(1, 2, []float32{1, 2})
	b, _ := NewFromData(1, 2, []float32{5, 6})
	if err := AddInPlace(a, b); err != nil {
		t.Fatal(err)
	}
	want, _ := NewFromData(1, 2, []float32{6, 8})
	if !a.Equal(want) {
		t.Fatalf("AddInPlace = %v", a)
	}
	if err := AddInPlace(a, New(2, 1)); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestScale(t *testing.T) {
	a, _ := NewFromData(1, 3, []float32{1, -2, 3})
	s := Scale(a, 2)
	want, _ := NewFromData(1, 3, []float32{2, -4, 6})
	if !s.Equal(want) {
		t.Fatalf("Scale = %v", s)
	}
	ScaleInPlace(a, -1)
	want2, _ := NewFromData(1, 3, []float32{-1, 2, -3})
	if !a.Equal(want2) {
		t.Fatalf("ScaleInPlace = %v", a)
	}
}

func TestAddBias(t *testing.T) {
	a, _ := NewFromData(2, 2, []float32{1, 2, 3, 4})
	out, err := AddBias(a, []float32{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := NewFromData(2, 2, []float32{11, 22, 13, 24})
	if !out.Equal(want) {
		t.Fatalf("AddBias = %v", out)
	}
	if err := AddBiasInPlace(a, []float32{10, 20}); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(want) {
		t.Fatalf("AddBiasInPlace = %v", a)
	}
	if _, err := AddBias(a, []float32{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
	if err := AddBiasInPlace(a, []float32{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestConcatCols(t *testing.T) {
	a, _ := NewFromData(2, 1, []float32{1, 2})
	b, _ := NewFromData(2, 2, []float32{3, 4, 5, 6})
	out, err := ConcatCols(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := NewFromData(2, 3, []float32{1, 3, 4, 2, 5, 6})
	if !out.Equal(want) {
		t.Fatalf("ConcatCols = %v", out)
	}
	if _, err := ConcatCols(a, New(3, 1)); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
	if _, err := ConcatCols(); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape on empty, got %v", err)
	}
}

func TestConcatRows(t *testing.T) {
	a, _ := NewFromData(1, 2, []float32{1, 2})
	b, _ := NewFromData(2, 2, []float32{3, 4, 5, 6})
	out, err := ConcatRows(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := NewFromData(3, 2, []float32{1, 2, 3, 4, 5, 6})
	if !out.Equal(want) {
		t.Fatalf("ConcatRows = %v", out)
	}
	if _, err := ConcatRows(a, New(1, 3)); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
	if _, err := ConcatRows(); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape on empty, got %v", err)
	}
}

func TestConcatRowsInverseOfRowSlice(t *testing.T) {
	f := func(seed int64) bool {
		rng := NewRNG(seed)
		rows := 2 + rng.Intn(30)
		cols := 1 + rng.Intn(10)
		m := rng.Normal(rows, cols, 1)
		cut := 1 + rng.Intn(rows-1)
		top, err := m.RowSlice(0, cut)
		if err != nil {
			return false
		}
		bottom, err := m.RowSlice(cut, rows)
		if err != nil {
			return false
		}
		rebuilt, err := ConcatRows(top, bottom)
		if err != nil {
			return false
		}
		return rebuilt.Equal(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestColSlice(t *testing.T) {
	m, _ := NewFromData(2, 3, []float32{1, 2, 3, 4, 5, 6})
	s, err := m.ColSlice(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := NewFromData(2, 2, []float32{2, 3, 5, 6})
	if !s.Equal(want) {
		t.Fatalf("ColSlice = %v", s)
	}
	if _, err := m.ColSlice(2, 1); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
	// ColSlices concatenated must reproduce the original.
	left, _ := m.ColSlice(0, 1)
	right, _ := m.ColSlice(1, 3)
	back, err := ConcatCols(left, right)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(m) {
		t.Fatal("ColSlice/ConcatCols not inverse")
	}
}
