// Package tensor implements the dense linear-algebra substrate used by the
// Voltage distributed inference engine.
//
// The package provides a row-major float32 matrix type with the operations a
// transformer forward pass needs: matrix multiplication (blocked and
// optionally parallel), transposition, row-wise softmax, layer
// normalization, activation functions, concatenation and position (row)
// slicing. Everything is implemented from scratch on the standard library so
// the repository has no external dependencies.
//
// All operations either return new matrices or write into a caller-supplied
// destination; input matrices are never mutated unless the method name makes
// it explicit (e.g. AddInPlace).
package tensor

import (
	"errors"
	"fmt"
	"math"
)

// ErrShape is returned (wrapped) whenever the shapes of the operands of an
// operation are incompatible.
var ErrShape = errors.New("tensor: shape mismatch")

// Matrix is a dense, row-major matrix of float32 values.
//
// The zero value is an empty 0×0 matrix. Matrices are created with New,
// NewFromData or the random constructors in random.go.
type Matrix struct {
	rows, cols int
	data       []float32
}

// New returns a zeroed rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float32, rows*cols)}
}

// NewFromData wraps data as a rows×cols matrix. The slice is used directly
// (not copied); callers that need isolation should pass a fresh slice.
func NewFromData(rows, cols int, data []float32) (*Matrix, error) {
	if len(data) != rows*cols {
		return nil, fmt.Errorf("%w: data length %d != %d*%d", ErrShape, len(data), rows, cols)
	}
	return &Matrix{rows: rows, cols: cols, data: data}, nil
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// Size returns the number of elements (rows*cols).
func (m *Matrix) Size() int { return m.rows * m.cols }

// Data returns the underlying row-major backing slice. Mutating it mutates
// the matrix; it is exposed for codecs and hot loops.
func (m *Matrix) Data() []float32 { return m.data }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float32 { return m.data[i*m.cols+j] }

// Set assigns v to the element at row i, column j.
func (m *Matrix) Set(i, j int, v float32) { m.data[i*m.cols+j] = v }

// Row returns the i-th row as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float32 { return m.data[i*m.cols : (i+1)*m.cols] }

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	out := New(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// RowSlice returns a deep copy of rows [from, to) as a new (to-from)×cols
// matrix. It corresponds to selecting an input partition x_p for a position
// range in the paper.
func (m *Matrix) RowSlice(from, to int) (*Matrix, error) {
	if from < 0 || to > m.rows || from > to {
		return nil, fmt.Errorf("%w: row slice [%d,%d) of %d rows", ErrShape, from, to, m.rows)
	}
	out := New(to-from, m.cols)
	copy(out.data, m.data[from*m.cols:to*m.cols])
	return out, nil
}

// SetRowSlice copies src into rows [from, from+src.rows) of m. It is the
// inverse of RowSlice and is used to assemble All-Gather results.
func (m *Matrix) SetRowSlice(from int, src *Matrix) error {
	if src.cols != m.cols || from < 0 || from+src.rows > m.rows {
		return fmt.Errorf("%w: set rows [%d,%d) cols %d into %dx%d",
			ErrShape, from, from+src.rows, src.cols, m.rows, m.cols)
	}
	copy(m.data[from*m.cols:], src.data)
	return nil
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	out := New(m.cols, m.rows)
	const block = 32
	for i0 := 0; i0 < m.rows; i0 += block {
		iMax := min(i0+block, m.rows)
		for j0 := 0; j0 < m.cols; j0 += block {
			jMax := min(j0+block, m.cols)
			for i := i0; i < iMax; i++ {
				row := m.data[i*m.cols:]
				for j := j0; j < jMax; j++ {
					out.data[j*m.rows+i] = row[j]
				}
			}
		}
	}
	return out
}

// Equal reports whether m and other have identical shape and elements.
func (m *Matrix) Equal(other *Matrix) bool {
	if m.rows != other.rows || m.cols != other.cols {
		return false
	}
	for i, v := range m.data {
		if v != other.data[i] {
			return false
		}
	}
	return true
}

// AlmostEqual reports whether m and other have the same shape and all
// elements within tol of each other (absolute or relative, whichever is
// looser). NaNs never compare equal.
func (m *Matrix) AlmostEqual(other *Matrix, tol float64) bool {
	if m.rows != other.rows || m.cols != other.cols {
		return false
	}
	for i, v := range m.data {
		a, b := float64(v), float64(other.data[i])
		diff := math.Abs(a - b)
		if diff <= tol {
			continue
		}
		scale := math.Max(math.Abs(a), math.Abs(b))
		if diff > tol*scale {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the maximum absolute element-wise difference between m
// and other, or an error if shapes differ.
func (m *Matrix) MaxAbsDiff(other *Matrix) (float64, error) {
	if m.rows != other.rows || m.cols != other.cols {
		return 0, fmt.Errorf("%w: %dx%d vs %dx%d", ErrShape, m.rows, m.cols, other.rows, other.cols)
	}
	var maxd float64
	for i, v := range m.data {
		d := math.Abs(float64(v) - float64(other.data[i]))
		if d > maxd {
			maxd = d
		}
	}
	return maxd, nil
}

// String renders small matrices fully and large ones as a shape summary.
func (m *Matrix) String() string {
	if m.Size() > 64 {
		return fmt.Sprintf("Matrix(%dx%d)", m.rows, m.cols)
	}
	s := fmt.Sprintf("Matrix(%dx%d)[", m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(i, j))
		}
	}
	return s + "]"
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
