package tensor

import (
	"fmt"
	"math"
)

// Activation identifies a position-wise non-linearity used in the
// feed-forward network of a transformer layer.
type Activation int

// Supported activation functions. ReLU follows the original transformer
// paper; GELU follows BERT/GPT-2.
const (
	ReLU Activation = iota + 1
	GELU
)

// String implements fmt.Stringer.
func (a Activation) String() string {
	switch a {
	case ReLU:
		return "relu"
	case GELU:
		return "gelu"
	default:
		return fmt.Sprintf("Activation(%d)", int(a))
	}
}

// Apply returns the activation applied element-wise to m as a new matrix.
func (a Activation) Apply(m *Matrix) *Matrix {
	out := m.Clone()
	a.ApplyInPlace(out)
	return out
}

// ApplyInPlace applies the activation element-wise, mutating m.
func (a Activation) ApplyInPlace(m *Matrix) {
	switch a {
	case GELU:
		for i, v := range m.data {
			m.data[i] = gelu(v)
		}
	default: // ReLU, also the fallback for unknown values.
		for i, v := range m.data {
			if v < 0 {
				m.data[i] = 0
			}
		}
	}
}

// gelu is the tanh approximation of the Gaussian Error Linear Unit used by
// BERT and GPT-2: 0.5x(1 + tanh(√(2/π)(x + 0.044715x³))).
func gelu(x float32) float32 {
	const c = 0.7978845608028654 // sqrt(2/pi)
	xf := float64(x)
	return float32(0.5 * xf * (1 + math.Tanh(c*(xf+0.044715*xf*xf*xf))))
}

// SoftmaxRows applies a numerically stable softmax independently to each row
// of m, returning a new matrix. It implements the softmax(QKᵀ/√FH) step of
// self-attention.
func SoftmaxRows(m *Matrix) *Matrix {
	out := New(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		softmaxRow(out.Row(i), m.Row(i))
	}
	return out
}

// SoftmaxRowsInPlace applies the row-wise softmax mutating m.
func SoftmaxRowsInPlace(m *Matrix) {
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		softmaxRow(row, row)
	}
}

func softmaxRow(dst, src []float32) {
	if len(src) == 0 {
		return
	}
	maxv := src[0]
	for _, v := range src[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for j, v := range src {
		e := math.Exp(float64(v - maxv))
		dst[j] = float32(e)
		sum += e
	}
	inv := float32(1 / sum)
	for j := range dst {
		dst[j] *= inv
	}
}

// LayerNorm applies layer normalization to each row of m with learned gain
// and bias vectors, returning a new matrix:
//
//	y = (x - mean(x)) / sqrt(var(x) + eps) * gain + bias
func LayerNorm(m *Matrix, gain, bias []float32, eps float32) (*Matrix, error) {
	if len(gain) != m.cols || len(bias) != m.cols {
		return nil, fmt.Errorf("%w: layernorm gain %d bias %d for %d cols",
			ErrShape, len(gain), len(bias), m.cols)
	}
	out := New(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		src := m.Row(i)
		dst := out.Row(i)
		var mean float64
		for _, v := range src {
			mean += float64(v)
		}
		mean /= float64(len(src))
		var variance float64
		for _, v := range src {
			d := float64(v) - mean
			variance += d * d
		}
		variance /= float64(len(src))
		invStd := float32(1 / math.Sqrt(variance+float64(eps)))
		for j, v := range src {
			dst[j] = (v-float32(mean))*invStd*gain[j] + bias[j]
		}
	}
	return out, nil
}
