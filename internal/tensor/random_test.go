package tensor

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(99).Normal(10, 10, 1)
	b := NewRNG(99).Normal(10, 10, 1)
	if !a.Equal(b) {
		t.Fatal("same seed produced different matrices")
	}
	c := NewRNG(100).Normal(10, 10, 1)
	if a.Equal(c) {
		t.Fatal("different seeds produced identical matrices")
	}
}

func TestNormalMoments(t *testing.T) {
	rng := NewRNG(7)
	m := rng.Normal(200, 200, 2)
	var sum, sumsq float64
	for _, v := range m.Data() {
		sum += float64(v)
		sumsq += float64(v) * float64(v)
	}
	n := float64(m.Size())
	mean := sum / n
	std := math.Sqrt(sumsq/n - mean*mean)
	if math.Abs(mean) > 0.05 {
		t.Fatalf("mean = %v, want ~0", mean)
	}
	if math.Abs(std-2) > 0.05 {
		t.Fatalf("std = %v, want ~2", std)
	}
}

func TestUniformRange(t *testing.T) {
	rng := NewRNG(7)
	m := rng.Uniform(50, 50, -0.5, 0.5)
	for _, v := range m.Data() {
		if v < -0.5 || v >= 0.5 {
			t.Fatalf("uniform value %v outside [-0.5, 0.5)", v)
		}
	}
}

func TestXavierNormalStd(t *testing.T) {
	rng := NewRNG(13)
	rows, cols := 300, 100
	m := rng.XavierNormal(rows, cols)
	var sumsq float64
	for _, v := range m.Data() {
		sumsq += float64(v) * float64(v)
	}
	std := math.Sqrt(sumsq / float64(m.Size()))
	want := math.Sqrt(2 / float64(rows+cols))
	if math.Abs(std-want)/want > 0.1 {
		t.Fatalf("xavier std = %v, want ~%v", std, want)
	}
}

func TestOnesZeros(t *testing.T) {
	o := Ones(4)
	z := Zeros(4)
	for i := range o {
		if o[i] != 1 || z[i] != 0 {
			t.Fatal("Ones/Zeros broken")
		}
	}
}

func TestNormalVec(t *testing.T) {
	v := NewRNG(1).NormalVec(16, 0.02)
	if len(v) != 16 {
		t.Fatalf("len = %d", len(v))
	}
	w := NewRNG(1).NormalVec(16, 0.02)
	for i := range v {
		if v[i] != w[i] {
			t.Fatal("NormalVec not deterministic")
		}
	}
}
