package tensor

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func TestCodecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := NewRNG(seed)
		m := rng.Normal(1+rng.Intn(20), 1+rng.Intn(20), 2)
		buf := Encode(nil, m)
		if len(buf) != EncodedSize(m.Rows(), m.Cols()) {
			return false
		}
		back, n, err := Decode(buf)
		if err != nil || n != len(buf) {
			return false
		}
		return back.Equal(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeShortBuffer(t *testing.T) {
	if _, _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Fatal("want error on short header")
	}
	m := New(4, 4)
	buf := Encode(nil, m)
	if _, _, err := Decode(buf[:len(buf)-1]); err == nil {
		t.Fatal("want error on truncated body")
	}
}

func TestDecodeImplausibleShape(t *testing.T) {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:], 1<<30)
	binary.LittleEndian.PutUint32(hdr[4:], 1<<30)
	if _, _, err := Decode(hdr[:]); err == nil {
		t.Fatal("want error on implausible shape")
	}
	if _, err := ReadFrom(bytes.NewReader(hdr[:])); err == nil {
		t.Fatal("want error on implausible shape via ReadFrom")
	}
}

func TestWriteToReadFrom(t *testing.T) {
	rng := NewRNG(5)
	m := rng.Normal(7, 3, 1)
	var buf bytes.Buffer
	n, err := WriteTo(&buf, m)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(EncodedSize(7, 3)) {
		t.Fatalf("WriteTo wrote %d bytes, want %d", n, EncodedSize(7, 3))
	}
	back, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(m) {
		t.Fatal("WriteTo/ReadFrom round trip mismatch")
	}
}

func TestReadFromShortStream(t *testing.T) {
	if _, err := ReadFrom(strings.NewReader("ab")); err == nil {
		t.Fatal("want error on short stream")
	}
	// Valid header but truncated body.
	m := New(3, 3)
	full := Encode(nil, m)
	if _, err := ReadFrom(bytes.NewReader(full[:10])); err == nil {
		t.Fatal("want error on truncated body stream")
	}
}

func TestReadFromEOF(t *testing.T) {
	_, err := ReadFrom(bytes.NewReader(nil))
	if err == nil {
		t.Fatal("want error on empty stream")
	}
	if !strings.Contains(err.Error(), io.EOF.Error()) {
		t.Logf("error does not mention EOF (acceptable but noted): %v", err)
	}
}

func TestEncodedSizeMatchesPaperFormula(t *testing.T) {
	// The paper counts an N×F float32 activation as 4NF bytes on the wire;
	// our codec adds only a fixed 8-byte header.
	n, f := 200, 1024
	if got := EncodedSize(n, f); got != 4*n*f+8 {
		t.Fatalf("EncodedSize = %d, want %d", got, 4*n*f+8)
	}
}

func TestEncodeAppendsToExisting(t *testing.T) {
	prefix := []byte{0xAA, 0xBB}
	m, _ := NewFromData(1, 1, []float32{1})
	buf := Encode(prefix, m)
	if buf[0] != 0xAA || buf[1] != 0xBB {
		t.Fatal("Encode clobbered prefix")
	}
	back, n, err := Decode(buf[2:])
	if err != nil || n != len(buf)-2 || back.At(0, 0) != 1 {
		t.Fatalf("Decode after prefix: %v %d %v", back, n, err)
	}
}

func BenchmarkEncode(b *testing.B) {
	rng := NewRNG(1)
	m := rng.Normal(200, 256, 1)
	buf := make([]byte, 0, EncodedSize(200, 256))
	b.SetBytes(int64(EncodedSize(200, 256)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = Encode(buf[:0], m)
	}
}

func BenchmarkDecode(b *testing.B) {
	rng := NewRNG(1)
	m := rng.Normal(200, 256, 1)
	buf := Encode(nil, m)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDecodeHostileOverflowHeader(t *testing.T) {
	// Two huge dimensions whose product overflows int64 into an
	// innocent-looking value must still be rejected before any allocation —
	// the per-dimension bounds, not the product, are the gate.
	hostile := [][2]uint32{
		{1 << 31, 1 << 31},       // product overflows to a small value
		{0xFFFFFFFF, 0xFFFFFFFF}, // max dims
		{0xFFFFFFFF, 1},          // negative after int truncation on 32-bit
		{1 << 29, 8},             // single dim over the element bound
		{3, (1 << 28) / 3 * 2},   // product over the bound, dims under
	}
	for _, dims := range hostile {
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[:], dims[0])
		binary.LittleEndian.PutUint32(hdr[4:], dims[1])
		if _, _, err := Decode(hdr[:]); err == nil {
			t.Errorf("Decode accepted hostile header %dx%d", dims[0], dims[1])
		}
		if _, err := ReadFrom(bytes.NewReader(hdr[:])); err == nil {
			t.Errorf("ReadFrom accepted hostile header %dx%d", dims[0], dims[1])
		}
	}
}

func TestDecodeDeclaredSizeBeyondPayload(t *testing.T) {
	// A plausible shape whose declared size exceeds the actual payload must
	// be rejected without reading out of bounds.
	var buf [16]byte
	binary.LittleEndian.PutUint32(buf[:], 1000)
	binary.LittleEndian.PutUint32(buf[4:], 1000)
	if _, _, err := Decode(buf[:]); err == nil {
		t.Fatal("want error when payload is shorter than the declared shape")
	}
}
